//! Quickstart: approximate multipliers, error metrics, hardware cost, and
//! the difference-based gradient in ~60 lines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use appmult::circuit::CostModel;
use appmult::mult::{ErrorMetrics, Multiplier, TruncatedMultiplier};
use appmult::retrain::{GradientLut, GradientMode};

fn main() {
    // The paper's Fig. 2 multiplier: 7-bit unsigned, rightmost 6
    // partial-product columns removed.
    let mult = TruncatedMultiplier::new(7, 6);
    println!("multiplier: {}", mult.name());
    println!("  10 x 100 = {} (exact: 1000)", mult.multiply(10, 100));

    // Exhaustive error metrics under uniform inputs (Eq. 2).
    let lut = mult.to_lut();
    let metrics = ErrorMetrics::exhaustive(&lut);
    println!("  {metrics}");

    // Hardware cost from the ASAP7-calibrated gate-level model.
    let model = CostModel::asap7();
    if let Some(circuit) = mult.circuit() {
        let cost = model.estimate(&circuit);
        let exact = model.estimate(&appmult::circuit::MultiplierCircuit::array(7));
        println!("  hardware: {cost}");
        println!(
            "  vs exact 7-bit: {:.0}% area, {:.0}% power",
            100.0 * cost.area_um2 / exact.area_um2,
            100.0 * cost.power_uw / exact.power_uw,
        );
    }

    // The paper's contribution: smooth the staircase (Eq. 4) and take
    // central differences (Eqs. 5-6) instead of the STE gradient.
    let ours = GradientLut::build(&lut, GradientMode::difference_based(4));
    let ste = GradientLut::build(&lut, GradientMode::Ste);
    println!("\ngradients of AM(W_f = 10, X) wrt X:");
    println!("  X     AM(10,X)  dAM/dX (ours)  dAM/dX (STE)");
    for x in [20u32, 31, 32, 50, 63, 64, 95, 100] {
        println!(
            "  {:3}   {:5}     {:8.2}       {:8.2}",
            x,
            lut.product(10, x),
            ours.wrt_x(10, x),
            ste.wrt_x(10, x),
        );
    }
    println!("\nNote the peaks at the staircase jumps (X = 31, 63, 95) that");
    println!("the constant STE gradient cannot see — Fig. 3 of the paper.");
}
