//! Beyond the paper: multiplier error under *real* DNN operand
//! distributions instead of the uniform assumption of Eq. 2.
//!
//! ```text
//! cargo run --release --example operand_profile
//! ```
//!
//! Table I measures ER/NMED/MaxED with uniformly distributed operands, but
//! a convolution's quantized weights are bell-shaped and its activations
//! are ReLU-skewed. This example trains a small approximate model, reads
//! the operand-code histograms its conv layer actually saw, and re-scores
//! the multiplier under those marginals.

use std::sync::Arc;

use appmult::data::{DatasetConfig, SyntheticDataset};
use appmult::mult::{zoo, ErrorMetrics, Multiplier};
use appmult::nn::Module;
use appmult::retrain::{ApproxConv2d, GradientLut, GradientMode, QuantConfig};

fn main() {
    let entry = zoo::entry("mul8u_rm8").expect("Table I name");
    let lut = Arc::new(entry.multiplier.to_lut());
    let grads = Arc::new(GradientLut::build(&lut, GradientMode::difference_based(16)));

    // A conv layer fed with realistic (image-like) activations.
    let mut conv = ApproxConv2d::new(
        3,
        16,
        3,
        1,
        1,
        7,
        lut.clone(),
        grads,
        QuantConfig::default(),
    );
    let data = SyntheticDataset::generate(&DatasetConfig::small(10, 16, 4));
    let (images, _) = &data.train_batches(32)[0];
    let _ = conv.forward(images, true);

    let (w_hist, x_hist) = conv
        .operand_histograms()
        .expect("histograms exist after a forward pass");

    let uniform = ErrorMetrics::exhaustive(&lut);
    let profiled = ErrorMetrics::with_marginals(&lut, &w_hist, &x_hist);

    println!("multiplier: {}", entry.name);
    println!("  uniform operands  : {uniform}");
    println!("  profiled operands : {profiled}");
    println!(
        "  NMED ratio (profiled / uniform): {:.2}",
        profiled.nmed / uniform.nmed
    );

    // Where does the probability mass actually sit?
    let mass = |h: &[f64], lo: usize, hi: usize| -> f64 { h[lo..hi].iter().sum() };
    println!("\noperand mass in the low quarter of the code range:");
    println!("  weights    : {:.1}%", 100.0 * mass(&w_hist, 0, 64));
    println!("  activations: {:.1}%", 100.0 * mass(&x_hist, 0, 64));
    println!("\nTruncation-style AppMults concentrate their error distance in");
    println!("high-magnitude products, so bell-shaped weights and ReLU-skewed");
    println!("activations usually see a *different* effective NMED than the");
    println!("uniform Table I figure — worth checking before picking a");
    println!("multiplier for a given network.");
}
