//! Survey the whole Table I multiplier zoo: measured error metrics and
//! hardware cost for every design, plus the paper's published values.
//!
//! ```text
//! cargo run --release --example explore_multipliers
//! cargo run --release --example explore_multipliers -- --skip-syn
//! ```
//!
//! (`--skip-syn` avoids the few-second ALS runs for the `_syn` entries.)

use appmult::circuit::{CostModel, MultiplierCircuit};
use appmult::mult::{zoo, ErrorMetrics, Multiplier};

fn main() {
    let skip_syn = std::env::args().any(|a| a == "--skip-syn");
    let model = CostModel::asap7();
    let reference = model.estimate(&MultiplierCircuit::array(8));

    println!(
        "{:<12} {:>9} {:>7} {:>8} {:>8} {:>7} {:>7}  fidelity",
        "name", "ER%", "NMED%", "MaxED", "area", "power", "norm.P"
    );
    for name in zoo::names() {
        if skip_syn && name.contains("_syn") {
            continue;
        }
        let entry = zoo::entry(name).expect("known Table I name");
        let metrics = ErrorMetrics::exhaustive(&entry.multiplier.to_lut());
        let (area, power, src) = match entry.multiplier.circuit() {
            Some(c) => {
                let cost = model.estimate(&c);
                (cost.area_um2, cost.power_uw, "")
            }
            None => (entry.paper.area_um2, entry.paper.power_uw, "*"),
        };
        println!(
            "{:<12} {:>9.1} {:>7.2} {:>8} {:>7.1}{src} {:>6.2}{src} {:>7.2}  {:?}",
            entry.name,
            metrics.er_pct(),
            metrics.nmed_pct(),
            metrics.max_ed,
            area,
            power,
            power / reference.power_uw,
            entry.fidelity,
        );
    }
    println!("\n(*) hardware from the paper's published row (behavioural-only surrogate)");
}
