//! Retrain a LeNet with an aggressive approximate multiplier, comparing
//! the STE baseline against the paper's difference-based gradient.
//!
//! ```text
//! cargo run --release --example retrain_lenet
//! ```
//!
//! Flow (Fig. 1 of the paper): pretrain a float model, transplant its
//! weights into an AppMult version, measure the degraded initial accuracy,
//! then retrain with each gradient rule.

use std::sync::Arc;

use appmult::data::{DatasetConfig, SyntheticDataset};
use appmult::models::{copy_params, lenet5, ConvMode, ModelConfig};
use appmult::mult::{zoo, Multiplier};
use appmult::nn::optim::{Adam, StepSchedule};
use appmult::retrain::{evaluate, retrain, GradientLut, GradientMode, RetrainConfig};

fn main() {
    // A noisy 10-class synthetic task (stand-in for CIFAR-10).
    let mut data_cfg = DatasetConfig::small(10, 48, 32);
    data_cfg.noise = 1.0;
    let data = SyntheticDataset::generate(&data_cfg);
    let train = data.train_batches(32);
    let test = data.test_batches(32);

    let model_cfg = ModelConfig {
        input_hw: (16, 16),
        ..ModelConfig::cifar10()
    };

    // 1. Pretrain the float model.
    println!("pretraining float LeNet...");
    let mut float_model = lenet5(&model_cfg);
    let mut opt = Adam::new(2e-3);
    let pre_cfg = RetrainConfig {
        epochs: 8,
        schedule: StepSchedule::new(vec![(1, 2e-3)]),
        eval_every: 8,
        resilience: None,
        ..RetrainConfig::default()
    };
    let pre = retrain(&mut float_model, &mut opt, &pre_cfg, &train, &test);
    println!("float accuracy: {:.2}%\n", pre.final_top1() * 100.0);

    // 2. Replace conv multipliers with the large-error mul8u_rm8 and
    //    retrain once per gradient rule.
    let entry = zoo::entry("mul8u_rm8").expect("Table I name");
    let lut = Arc::new(entry.multiplier.to_lut());
    for (label, mode) in [
        ("STE (baseline)", GradientMode::Ste),
        (
            "difference-based (ours)",
            GradientMode::difference_based(entry.recommended_hws()),
        ),
    ] {
        let grads = Arc::new(GradientLut::build(&lut, mode));
        let approx_cfg = model_cfg
            .clone()
            .with_conv(ConvMode::approximate(lut.clone(), grads));
        let mut model = lenet5(&approx_cfg);
        copy_params(&mut float_model, &mut model);
        let (initial, _) = evaluate(&mut model, &test);
        let mut opt = Adam::new(1e-3);
        let cfg = RetrainConfig {
            epochs: 6,
            schedule: StepSchedule::new(vec![(1, 1e-3), (4, 5e-4)]),
            eval_every: 1,
            resilience: None,
            ..RetrainConfig::default()
        };
        let history = retrain(&mut model, &mut opt, &cfg, &train, &test);
        println!(
            "{label}: initial {:.2}% -> retrained {:.2}%",
            initial * 100.0,
            history.final_top1() * 100.0
        );
    }
}
