//! Generate an approximate multiplier with the built-in approximate logic
//! synthesis (ALS) pass and inspect the accuracy/hardware trade-off across
//! error budgets.
//!
//! ```text
//! cargo run --release --example als_synthesis
//! ```

use appmult::circuit::{synthesize, AlsConfig, CostModel, MultiplierCircuit};
use appmult::mult::{ErrorMetrics, Multiplier, MultiplierLut};

fn main() {
    let bits = 7;
    let model = CostModel::asap7();
    let exact = MultiplierCircuit::array(bits);
    let exact_cost = model.estimate(&exact);
    println!("exact {bits}-bit array multiplier: {exact_cost}");
    println!(
        "\n{:>10} {:>9} {:>9} {:>9} {:>9} {:>8} {:>8}",
        "budget", "rewrites", "gates", "NMED%", "MaxED", "area%", "power%"
    );

    for budget in [0.0005, 0.001, 0.002, 0.004, 0.008] {
        let cfg = AlsConfig {
            nmed_budget: budget,
            seed: 7,
            ..AlsConfig::default()
        };
        let outcome = synthesize(&exact, &cfg);
        let cost = model.estimate(&outcome.circuit);
        let products: Vec<u32> = outcome
            .circuit
            .exhaustive_products()
            .into_iter()
            .map(|p| p as u32)
            .collect();
        let lut = MultiplierLut::from_entries("als", bits, products);
        let metrics = ErrorMetrics::exhaustive(&lut);
        println!(
            "{:>10.4} {:>9} {:>9} {:>9.3} {:>9} {:>8.1} {:>8.1}",
            budget,
            outcome.rewrites.len(),
            outcome.gates_after,
            metrics.nmed_pct(),
            metrics.max_ed,
            100.0 * cost.area_um2 / exact_cost.area_um2,
            100.0 * cost.power_uw / exact_cost.power_uw,
        );
    }

    println!("\nEach row is a synthesized multiplier like the paper's `_syn`");
    println!("designs: netlist rewrites accepted cheapest-error-first until");
    println!("the NMED budget is spent (ALSRAC-style, Sec. V-A / Table I).");
    // The synthesized LUTs drop straight into the retraining framework via
    // appmult::mult::SynthesizedMultiplier or MultiplierLut::from_entries.
    let syn = appmult::mult::SynthesizedMultiplier::generate(bits, 0.0028, 1);
    println!(
        "\nready-made Table I entry: {} (NMED {:.3}%)",
        syn.name(),
        syn.nmed() * 100.0
    );
}
