//! Integration tests for the beyond-the-paper extensions.

use appmult::circuit::{to_blif, to_verilog, MultiplierCircuit};
use appmult::mult::{
    CompressorMultiplier, ErrorMetrics, Multiplier, SignMagnitudeMultiplier, TruncatedMultiplier,
};
use appmult::nn::layers::{Flatten, Linear, Sequential};
use appmult::nn::serialize::{load_params, save_params};
use appmult::nn::Module;
use appmult::retrain::{GradientLut, GradientMode};

#[test]
fn netlist_export_flows_from_multiplier_designs() {
    // Any design with a gate-level structure can be shipped to an EDA tool.
    let m = TruncatedMultiplier::new(6, 4);
    let circuit = m.circuit().expect("rm-k designs have netlists");
    let verilog = to_verilog(circuit.netlist(), "mul6u_rm4");
    let blif = to_blif(circuit.netlist(), "mul6u_rm4");
    assert!(verilog.contains("module mul6u_rm4"));
    assert!(blif.contains(".model mul6u_rm4"));
    // 12 ports in, 12 out.
    assert!(verilog.matches("input ").count() == 12);
    assert!(blif.contains(".outputs"));
}

#[test]
fn signed_wrapper_drives_the_gradient_builder() {
    // The offset-binary LUT of a signed AppMult feeds the standard
    // difference-based gradient machinery.
    let signed = SignMagnitudeMultiplier::new(TruncatedMultiplier::new(6, 4));
    let lut = signed.to_offset_lut();
    let grads = GradientLut::build(&lut, GradientMode::difference_based(4));
    // The offset encoding makes the product increase with the w-code on
    // the positive half and decrease on the negative half; around the
    // centre code the gradient wrt the x-code flips sign accordingly.
    let w_pos = 32 + 20; // value +20
    let w_neg = 32 - 20; // value -20
    let x_mid = 40;
    assert!(grads.wrt_x(w_pos, x_mid) > 0.0);
    assert!(grads.wrt_x(w_neg, x_mid) < 0.0);
}

#[test]
fn compressor_family_is_a_first_class_zoo_citizen() {
    let m = CompressorMultiplier::new(7, 8);
    let lut = m.to_lut();
    let metrics = ErrorMetrics::exhaustive(&lut);
    assert!(metrics.nmed > 0.0, "approximate by construction");
    // Gradient tables build cleanly on the structural LUT.
    let g = GradientLut::build(&lut, GradientMode::difference_based(4));
    assert!(g.wrt_w(100, 64).is_finite());
    // And it carries hardware cost like the closed-form designs.
    let cost = appmult::circuit::CostModel::asap7().estimate(&m.circuit().expect("structural"));
    let exact = appmult::circuit::CostModel::asap7().estimate(&MultiplierCircuit::array(7));
    assert!(cost.area_um2 < exact.area_um2);
}

#[test]
fn checkpoint_round_trip_through_the_facade() {
    let mut model = Sequential::new()
        .push(Flatten::new())
        .push(Linear::new(8, 4, 11));
    let mut buf = Vec::new();
    save_params(&mut model, &mut buf).expect("save");
    let mut restored = Sequential::new()
        .push(Flatten::new())
        .push(Linear::new(8, 4, 99));
    load_params(&mut restored, buf.as_slice()).expect("load");
    let x = appmult::nn::Tensor::from_vec((0..16).map(|i| i as f32 * 0.1).collect(), &[2, 8]);
    assert_eq!(model.forward(&x, false), restored.forward(&x, false));
}
