//! Acceptance test of the static verification layer: the full zoo sweep
//! must lint clean, prove the exact designs, and report concrete
//! counterexamples for the faulty negative controls — verified by parsing
//! the machine-readable `results/LINT.json` report.

/// Minimal line-oriented parse of one design block of the
/// `appmult-lint/v2` schema.
#[derive(Debug, Default, Clone)]
struct DesignRecord {
    name: String,
    bits: u32,
    kind: String,
    errors: u32,
    status: String,
    exhaustive: bool,
    counterexample_fields: u32,
}

fn field<'l>(line: &'l str, key: &str) -> Option<&'l str> {
    let prefix = format!("\"{key}\": ");
    let rest = line.trim().strip_prefix(&prefix)?;
    Some(rest.trim_end_matches(','))
}

fn parse_designs(json: &str) -> Vec<DesignRecord> {
    let mut designs = Vec::new();
    let mut current: Option<DesignRecord> = None;
    for line in json.lines() {
        if let Some(v) = field(line, "name") {
            if let Some(done) = current.take() {
                designs.push(done);
            }
            current = Some(DesignRecord {
                name: v.trim_matches('"').to_string(),
                ..DesignRecord::default()
            });
        }
        let Some(d) = current.as_mut() else { continue };
        if let Some(v) = field(line, "bits") {
            d.bits = v.parse().expect("bits is an integer");
        }
        if let Some(v) = field(line, "kind") {
            d.kind = v.trim_matches('"').to_string();
        }
        if let Some(v) = field(line, "errors") {
            d.errors = v.parse().expect("errors is an integer");
        }
        if let Some(v) = field(line, "status") {
            d.status = v.trim_matches('"').to_string();
        }
        if let Some(v) = field(line, "exhaustive") {
            d.exhaustive = v == "true";
        }
        for key in ["w", "x", "got", "expected"] {
            if field(line, key).map(|v| v.parse::<u64>().is_ok()) == Some(true) {
                d.counterexample_fields += 1;
            }
        }
    }
    designs.extend(current);
    designs
}

#[test]
fn zoo_lint_report_meets_the_acceptance_criteria() {
    // The `_syn` entries run approximate logic synthesis, which dominates
    // unoptimized runtimes; as in zoo_coverage.rs they are covered by
    // `appmult-mult`'s own tests and by the release-mode CI sweep.
    let include_syn = !cfg!(debug_assertions);
    let report = appmult_verify::lint_zoo_filtered(include_syn);
    let json = report.to_json();

    // Persist the same artefact the appmult-lint binary writes, so the
    // assertions below genuinely go through the serialized report.
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/LINT.json", &json).expect("write LINT.json");
    let json = std::fs::read_to_string("results/LINT.json").expect("read LINT.json");

    assert!(json.contains("\"schema\": \"appmult-lint/v2\""));
    // v2: gate-level designs carry the static-analysis summary, and STA
    // agrees bitwise with the cost model on every one of them.
    assert!(json.contains("\"sta_matches_cost_model\": true"));
    assert!(
        !json.contains("\"sta_matches_cost_model\": false"),
        "STA disagreed with the cost model on some design"
    );
    // No design may carry an error diagnostic.
    assert!(
        !json.contains("\"severity\": \"error\""),
        "error diagnostics in LINT.json"
    );

    let designs = parse_designs(&json);
    // 14 (18 minus the four `_syn`) zoo entries + stuck-at control +
    // corrupted-LUT control + sampled-equivalence control.
    let floor = if include_syn { 21 } else { 17 };
    assert!(
        designs.len() >= floor,
        "only {} designs parsed",
        designs.len()
    );
    assert!(designs.iter().all(|d| d.errors == 0), "{designs:?}");

    // Every exact design up to 8x8 is *proved* equivalent (exhaustive
    // miter over all 2^(2B) patterns); wider exact checks may sample.
    let exact: Vec<_> = designs.iter().filter(|d| d.kind == "exact").collect();
    assert!(exact.len() >= 3);
    for d in &exact {
        assert_eq!(d.status, "equivalent", "{}", d.name);
        if d.bits <= 8 {
            assert!(d.exhaustive, "{} must be proved, not sampled", d.name);
        }
    }

    // Approximate designs all differ from the exact multiplier.
    let approx: Vec<_> = designs.iter().filter(|d| d.kind == "approximate").collect();
    assert!(approx.len() >= if include_syn { 15 } else { 11 });
    for d in &approx {
        assert_eq!(d.status, "counterexample", "{}", d.name);
    }

    // At least one deliberately faulty design reports a concrete
    // counterexample (all four operand/product fields present).
    let faulty: Vec<_> = designs.iter().filter(|d| d.kind == "faulty").collect();
    assert!(faulty.len() >= 2);
    assert!(
        faulty
            .iter()
            .any(|d| d.status == "counterexample" && d.counterexample_fields == 4),
        "{faulty:?}"
    );
}
