//! Acceptance test of the observability layer: the `obs_demo` run must
//! produce an `appmult-obs/v1` report with per-layer forward/backward
//! latency histograms, per-epoch loss/gradient-norm events, and resilience
//! intervention counts — verified by parsing the serialized
//! `results/OBS.json`, the same artifact the `obs_demo` binary writes.

/// Both tests in this file install a process-global recording `ObsSink`
/// (`run_obs_demo` and `run_serve_bench` each call
/// `appmult_obs::set_global`), so they must not run concurrently in the
/// same test binary.
fn obs_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Minimal line-oriented field extraction, as in `lint_zoo.rs`.
fn field<'l>(line: &'l str, key: &str) -> Option<&'l str> {
    let prefix = format!("\"{key}\": ");
    let rest = line.trim().strip_prefix(&prefix)?;
    Some(rest.trim_end_matches(','))
}

/// Extracts `"key": <u64>` from a single-line JSON object.
fn inline_u64(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[test]
fn obs_demo_report_meets_the_acceptance_criteria() {
    let _guard = obs_lock();
    let demo = appmult_bench::run_obs_demo();

    // Persist the same artifacts the obs_demo binary writes, then go
    // through the serialized report for every assertion below.
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/OBS.json", &demo.report_json).expect("write OBS.json");
    std::fs::write("results/OBS_events.jsonl", &demo.events_jsonl).expect("write events");
    let json = std::fs::read_to_string("results/OBS.json").expect("read OBS.json");

    assert!(json.contains("\"schema\": \"appmult-obs/v1\""));
    assert!(json.contains("\"recording\": true"));

    // The report header embeds the run configuration (additive `config`
    // object): resolved thread count and active kernel label.
    assert!(json.contains("\"config\": {"), "config header missing");
    let threads = json
        .lines()
        .find_map(|l| field(l, "threads"))
        .expect("config.threads present");
    assert!(threads.parse::<u64>().expect("threads is an integer") >= 1);
    let kernel = json
        .lines()
        .find_map(|l| field(l, "kernel"))
        .expect("config.kernel present");
    assert!(
        kernel.contains("naive") || kernel.contains("tiled"),
        "unrecognized kernel label {kernel}"
    );

    // Counters: LUT traffic plus the full resilience-intervention
    // inventory. The demo's learning-rate spike must have fired the policy.
    let mut counters = std::collections::BTreeMap::new();
    for line in json.lines() {
        for key in [
            "lut.lookups",
            "gradlut.lookups",
            "gradient_lut.builds",
            "resilience.rollbacks",
            "resilience.scrubbed_grads",
            "resilience.norm_clips",
            "observer.rejections",
        ] {
            if let Some(v) = field(line, key) {
                counters.insert(key, v.parse::<u64>().expect("counter is an integer"));
            }
        }
    }
    for key in [
        "lut.lookups",
        "gradlut.lookups",
        "gradient_lut.builds",
        "resilience.rollbacks",
        "resilience.scrubbed_grads",
        "resilience.norm_clips",
        "observer.rejections",
    ] {
        assert!(counters.contains_key(key), "missing counter {key}");
    }
    assert!(counters["lut.lookups"] > 0);
    assert!(counters["gradlut.lookups"] > 0);
    assert!(counters["gradient_lut.builds"] >= 1);
    assert!(
        counters["resilience.rollbacks"] >= 1,
        "the LR spike must trigger a rollback: {counters:?}"
    );
    assert!(counters["resilience.norm_clips"] >= 1);

    // Histograms: per-layer forward and backward latency, gradient norms,
    // and weight-update magnitudes, each with log2 buckets.
    let hist_names: Vec<&str> = json
        .lines()
        .filter_map(|l| field(l, "name"))
        .map(|v| v.trim_matches('"'))
        .collect();
    assert!(
        hist_names.iter().any(|n| n.ends_with("linear.forward")),
        "no per-layer forward latency histogram in {hist_names:?}"
    );
    assert!(
        hist_names.iter().any(|n| n.ends_with("linear.backward")),
        "no per-layer backward latency histogram in {hist_names:?}"
    );
    assert!(hist_names.contains(&"grad_norm"));
    assert!(hist_names.contains(&"weight_update_magnitude"));
    assert!(hist_names.iter().any(|n| n.ends_with("pool.worker")));
    assert!(json.contains("\"log2\": "), "histograms must carry buckets");
    assert!(
        json.contains("\"busy_us\": "),
        "per-thread busy time missing"
    );

    // Events: one per epoch, each carrying loss and gradient-norm fields,
    // plus at least one rollback event; identical in the report and the
    // JSONL stream.
    let epoch_lines: Vec<&str> = json
        .lines()
        .filter(|l| l.contains("\"kind\": \"epoch\""))
        .collect();
    assert_eq!(
        epoch_lines.len(),
        demo.history.epochs.len(),
        "one epoch event per epoch"
    );
    for (i, line) in epoch_lines.iter().enumerate() {
        assert_eq!(inline_u64(line, "epoch"), Some(i as u64 + 1));
        assert!(line.contains("\"train_loss\": "), "{line}");
        assert!(line.contains("\"grad_norm\": "), "{line}");
        assert!(line.contains("\"lr\": "), "{line}");
        assert!(line.contains("\"scrubbed_grads\": "), "{line}");
        assert!(line.contains("\"rollbacks\": "), "{line}");
    }
    assert!(
        json.lines().any(|l| l.contains("\"kind\": \"rollback\"")),
        "rollback event missing"
    );
    let jsonl_epochs = demo
        .events_jsonl
        .lines()
        .filter(|l| l.contains("\"kind\": \"epoch\""))
        .count();
    assert_eq!(jsonl_epochs, epoch_lines.len());

    // The summary table mentions the same signals.
    for needle in ["counters:", "histograms", "thread busy time:", "events: "] {
        assert!(demo.summary.contains(needle), "summary missing {needle}");
    }

    // And the run itself stayed healthy: the rollback recovered it.
    assert!(demo.history.final_train_loss().is_finite());
    assert!(demo.history.total_rollbacks() >= 1);
}

/// Locks the extended `BENCH_serve.json` schema: the fairness object
/// (per-model throughput shares of the multimodel phase) and the
/// per-phase latency/SLO-budget array are additive, CI-consumed fields —
/// a miniature bench run must always emit them, well-formed and free of
/// non-JSON values like `NaN`.
#[test]
fn bench_serve_schema_locks_fairness_and_latency_fields() {
    let _guard = obs_lock();
    let opts = appmult_bench::serve_driver::ServeBenchOptions {
        duration: std::time::Duration::from_millis(40),
        overload_x: 2.0,
        chaos: 0,
        assert_overload: false,
        assert_fairness: false,
    };
    let report = appmult_bench::serve_driver::run_serve_bench(&opts);
    let json = &report.json;

    // Never emit non-JSON float spellings, even for empty percentile sets.
    for bad in ["NaN", "inf"] {
        assert!(!json.contains(bad), "{bad} leaked into BENCH_serve.json");
    }

    // Config header and the five driving phases.
    assert!(json.contains("\"config\": {"), "config header missing");
    assert!(json.contains("\"drr_quantum_macs\": "), "DRR knob missing");
    for phase in ["estimate", "steady", "overload", "recovery", "multimodel"] {
        assert!(
            json.contains(&format!("\"phase\": \"{phase}\"")),
            "phase {phase} missing"
        );
    }

    // Per-phase latency entries: p50/p99 plus the SLO budget verdict.
    assert!(json.contains("\"phase_latency_ms\": ["));
    let latency_lines: Vec<&str> = json
        .lines()
        .filter(|l| l.contains("\"budget_p99\": "))
        .collect();
    assert_eq!(latency_lines.len(), 5, "one latency entry per phase");
    for line in &latency_lines {
        for key in ["ok_p50", "ok_p99", "budget_p99", "within_budget"] {
            assert!(
                line.contains(&format!("\"{key}\": ")),
                "{key} missing: {line}"
            );
        }
    }

    // The fairness object: bound is half the fair share, and every model
    // row carries share + latency percentiles.
    assert!(json.contains("\"fairness\": {\"phase\": \"multimodel\""));
    for key in ["fair_share", "bound", "min_share", "holds", "models"] {
        assert!(
            json.contains(&format!("\"{key}\": ")),
            "fairness.{key} missing"
        );
    }
    let model_lines: Vec<&str> = json
        .lines()
        .filter(|l| l.contains("\"ok_p50_ms\": "))
        .collect();
    assert_eq!(model_lines.len(), 2, "one fairness row per model");
    for line in &model_lines {
        for key in [
            "model",
            "submitted",
            "served",
            "share",
            "ok_p50_ms",
            "ok_p99_ms",
        ] {
            assert!(
                line.contains(&format!("\"{key}\": ")),
                "{key} missing: {line}"
            );
        }
    }

    // The books balanced and the warm-prefetch path fired for both LUTs.
    assert!(json.contains("\"lost\": 0"));
    assert!(json.contains("\"luts_prefetched\": "));
    assert_eq!(report.lost, 0);
    assert_eq!(report.shares.len(), 2);
    assert!((report.share_bound - 0.25).abs() < 1e-9);
    assert!(report.phase_p99_ms.iter().all(|ms| ms.is_finite()));
}
