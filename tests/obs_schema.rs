//! Acceptance test of the observability layer: the `obs_demo` run must
//! produce an `appmult-obs/v1` report with per-layer forward/backward
//! latency histograms, per-epoch loss/gradient-norm events, and resilience
//! intervention counts — verified by parsing the serialized
//! `results/OBS.json`, the same artifact the `obs_demo` binary writes.

/// Minimal line-oriented field extraction, as in `lint_zoo.rs`.
fn field<'l>(line: &'l str, key: &str) -> Option<&'l str> {
    let prefix = format!("\"{key}\": ");
    let rest = line.trim().strip_prefix(&prefix)?;
    Some(rest.trim_end_matches(','))
}

/// Extracts `"key": <u64>` from a single-line JSON object.
fn inline_u64(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[test]
fn obs_demo_report_meets_the_acceptance_criteria() {
    let demo = appmult_bench::run_obs_demo();

    // Persist the same artifacts the obs_demo binary writes, then go
    // through the serialized report for every assertion below.
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/OBS.json", &demo.report_json).expect("write OBS.json");
    std::fs::write("results/OBS_events.jsonl", &demo.events_jsonl).expect("write events");
    let json = std::fs::read_to_string("results/OBS.json").expect("read OBS.json");

    assert!(json.contains("\"schema\": \"appmult-obs/v1\""));
    assert!(json.contains("\"recording\": true"));

    // The report header embeds the run configuration (additive `config`
    // object): resolved thread count and active kernel label.
    assert!(json.contains("\"config\": {"), "config header missing");
    let threads = json
        .lines()
        .find_map(|l| field(l, "threads"))
        .expect("config.threads present");
    assert!(threads.parse::<u64>().expect("threads is an integer") >= 1);
    let kernel = json
        .lines()
        .find_map(|l| field(l, "kernel"))
        .expect("config.kernel present");
    assert!(
        kernel.contains("naive") || kernel.contains("tiled"),
        "unrecognized kernel label {kernel}"
    );

    // Counters: LUT traffic plus the full resilience-intervention
    // inventory. The demo's learning-rate spike must have fired the policy.
    let mut counters = std::collections::BTreeMap::new();
    for line in json.lines() {
        for key in [
            "lut.lookups",
            "gradlut.lookups",
            "gradient_lut.builds",
            "resilience.rollbacks",
            "resilience.scrubbed_grads",
            "resilience.norm_clips",
            "observer.rejections",
        ] {
            if let Some(v) = field(line, key) {
                counters.insert(key, v.parse::<u64>().expect("counter is an integer"));
            }
        }
    }
    for key in [
        "lut.lookups",
        "gradlut.lookups",
        "gradient_lut.builds",
        "resilience.rollbacks",
        "resilience.scrubbed_grads",
        "resilience.norm_clips",
        "observer.rejections",
    ] {
        assert!(counters.contains_key(key), "missing counter {key}");
    }
    assert!(counters["lut.lookups"] > 0);
    assert!(counters["gradlut.lookups"] > 0);
    assert!(counters["gradient_lut.builds"] >= 1);
    assert!(
        counters["resilience.rollbacks"] >= 1,
        "the LR spike must trigger a rollback: {counters:?}"
    );
    assert!(counters["resilience.norm_clips"] >= 1);

    // Histograms: per-layer forward and backward latency, gradient norms,
    // and weight-update magnitudes, each with log2 buckets.
    let hist_names: Vec<&str> = json
        .lines()
        .filter_map(|l| field(l, "name"))
        .map(|v| v.trim_matches('"'))
        .collect();
    assert!(
        hist_names.iter().any(|n| n.ends_with("linear.forward")),
        "no per-layer forward latency histogram in {hist_names:?}"
    );
    assert!(
        hist_names.iter().any(|n| n.ends_with("linear.backward")),
        "no per-layer backward latency histogram in {hist_names:?}"
    );
    assert!(hist_names.contains(&"grad_norm"));
    assert!(hist_names.contains(&"weight_update_magnitude"));
    assert!(hist_names.iter().any(|n| n.ends_with("pool.worker")));
    assert!(json.contains("\"log2\": "), "histograms must carry buckets");
    assert!(
        json.contains("\"busy_us\": "),
        "per-thread busy time missing"
    );

    // Events: one per epoch, each carrying loss and gradient-norm fields,
    // plus at least one rollback event; identical in the report and the
    // JSONL stream.
    let epoch_lines: Vec<&str> = json
        .lines()
        .filter(|l| l.contains("\"kind\": \"epoch\""))
        .collect();
    assert_eq!(
        epoch_lines.len(),
        demo.history.epochs.len(),
        "one epoch event per epoch"
    );
    for (i, line) in epoch_lines.iter().enumerate() {
        assert_eq!(inline_u64(line, "epoch"), Some(i as u64 + 1));
        assert!(line.contains("\"train_loss\": "), "{line}");
        assert!(line.contains("\"grad_norm\": "), "{line}");
        assert!(line.contains("\"lr\": "), "{line}");
        assert!(line.contains("\"scrubbed_grads\": "), "{line}");
        assert!(line.contains("\"rollbacks\": "), "{line}");
    }
    assert!(
        json.lines().any(|l| l.contains("\"kind\": \"rollback\"")),
        "rollback event missing"
    );
    let jsonl_epochs = demo
        .events_jsonl
        .lines()
        .filter(|l| l.contains("\"kind\": \"epoch\""))
        .count();
    assert_eq!(jsonl_epochs, epoch_lines.len());

    // The summary table mentions the same signals.
    for needle in ["counters:", "histograms", "thread busy time:", "events: "] {
        assert!(demo.summary.contains(needle), "summary missing {needle}");
    }

    // And the run itself stayed healthy: the rollback recovered it.
    assert!(demo.history.final_train_loss().is_finite());
    assert!(demo.history.total_rollbacks() >= 1);
}
