//! Schema lock for the `results/DSE.json` design-space-exploration
//! report (`appmult-dse/v1`): the config header must carry the full run
//! provenance (seed, threads, kernel), and every frontier entry must
//! carry the complete record — objective bits, cost/error fields with
//! their IEEE-754 twins, lineage, a nonempty critical path, and a
//! re-parseable netlist export.

/// Minimal line-oriented parse of one frontier entry of the
/// `appmult-dse/v1` schema.
#[derive(Debug, Default, Clone)]
struct FrontierRecord {
    name: String,
    id: u64,
    bits: u32,
    has_objective: bool,
    objective_bits: u32,
    delay_ps: f64,
    has_delay_bits: bool,
    nmed: f64,
    has_nmed_bits: bool,
    hws: u32,
    depth: u32,
    live_gates: u32,
    path_gates: u32,
    netlist: String,
}

/// The machine-provenance header of the full document.
#[derive(Debug, Default, Clone)]
struct Header {
    schema: String,
    seed: Option<u64>,
    threads: Option<usize>,
    kernel: Option<String>,
}

fn field<'l>(line: &'l str, key: &str) -> Option<&'l str> {
    let prefix = format!("\"{key}\": ");
    let rest = line.trim().strip_prefix(&prefix)?;
    Some(rest.trim_end_matches(','))
}

fn parse(json: &str) -> (Header, Vec<FrontierRecord>) {
    let mut header = Header::default();
    let mut records: Vec<FrontierRecord> = Vec::new();
    let mut current: Option<FrontierRecord> = None;
    for line in json.lines() {
        if let Some(v) = field(line, "name") {
            records.extend(current.take());
            current = Some(FrontierRecord {
                name: v.trim_matches('"').to_string(),
                ..FrontierRecord::default()
            });
        }
        let Some(r) = current.as_mut() else {
            // Still in the config header.
            if let Some(v) = field(line, "schema") {
                header.schema = v.trim_matches('"').to_string();
            }
            if let Some(v) = field(line, "seed") {
                header.seed = v.parse().ok();
            }
            if let Some(v) = field(line, "threads") {
                header.threads = v.parse().ok();
            }
            if let Some(v) = field(line, "kernel") {
                header.kernel = Some(v.trim_matches('"').to_string());
            }
            continue;
        };
        if let Some(v) = field(line, "id") {
            r.id = v.parse().expect("id is an integer");
        }
        if let Some(v) = field(line, "bits") {
            r.bits = v.parse().expect("bits is an integer");
        }
        if field(line, "objective").is_some() {
            r.has_objective = true;
        }
        if let Some(v) = field(line, "objective_bits") {
            r.objective_bits = v
                .trim_start_matches('[')
                .trim_end_matches(']')
                .split(", ")
                .filter(|s| !s.is_empty())
                .count() as u32;
        }
        if let Some(v) = field(line, "delay_ps") {
            r.delay_ps = v.parse().expect("delay_ps is a number");
        }
        if field(line, "delay_ps_bits").is_some() {
            r.has_delay_bits = true;
        }
        if let Some(v) = field(line, "nmed") {
            r.nmed = v.parse().expect("nmed is a number");
        }
        if field(line, "nmed_bits").is_some() {
            r.has_nmed_bits = true;
        }
        if let Some(v) = field(line, "hws") {
            r.hws = v.parse().expect("hws is an integer");
        }
        if let Some(v) = field(line, "depth") {
            r.depth = v.parse().expect("depth is an integer");
        }
        if let Some(v) = field(line, "live_gates") {
            r.live_gates = v.parse().expect("live_gates is an integer");
        }
        if line.trim_start().starts_with("{\"signal\":") {
            r.path_gates += 1;
        }
        if let Some(v) = field(line, "netlist") {
            r.netlist = v.trim_matches('"').replace("\\n", "\n");
        }
    }
    records.extend(current);
    (header, records)
}

#[test]
fn dse_report_meets_the_schema_contract() {
    // A deliberately small run: the schema shape is identical at every
    // scale, and tier-1 runs this in debug.
    let mut cfg = appmult_bench::dse_driver::DseBenchConfig::smoke(1);
    cfg.mu = 4;
    cfg.lambda = 8;
    cfg.generations = 2;
    let outcome = appmult_bench::dse_driver::run_dse_bench(&cfg);

    // Persist the same artefact the dse binary writes, so the assertions
    // below genuinely go through the serialized report.
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/DSE.json", &outcome.json).expect("write DSE.json");
    let json = std::fs::read_to_string("results/DSE.json").expect("read DSE.json");

    assert!(json.contains("\"schema\": \"appmult-dse/v1\""));
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert_eq!(json.matches('[').count(), json.matches(']').count());

    let (header, records) = parse(&json);
    assert_eq!(header.schema, "appmult-dse/v1");
    assert_eq!(header.seed, Some(cfg.seed));
    let threads = header.threads.expect("config header carries threads");
    assert!(threads >= 1);
    assert!(
        !header
            .kernel
            .expect("config header carries kernel")
            .is_empty(),
        "kernel label must be recorded"
    );

    assert_eq!(
        records.len(),
        outcome.result.frontier.len(),
        "one record per frontier member"
    );
    assert!(!records.is_empty(), "smoke search found an empty frontier");
    for r in &records {
        assert!(r.name.starts_with("dse6u_c"), "{r:?}");
        assert_eq!(r.bits, cfg.bits, "{r:?}");
        assert!(r.has_objective, "{r:?}");
        assert_eq!(r.objective_bits, 3, "{r:?}");
        assert!(r.delay_ps > 0.0, "{r:?}");
        assert!(r.has_delay_bits, "{r:?}");
        assert!(r.nmed >= 0.0, "{r:?}");
        assert!(r.has_nmed_bits, "{r:?}");
        assert!(r.hws >= 1, "{r:?}");
        assert!(r.depth > 0, "{r:?}");
        assert!(r.live_gates > 0, "{r:?}");
        assert!(r.path_gates > 0, "{r:?}");
        assert!(r.path_gates <= r.depth + 1, "{r:?}");
        // The embedded netlist must parse back and expose the 2B-bit bus.
        let netlist =
            appmult_circuit::from_netlist_text(&r.netlist).expect("embedded netlist export parses");
        assert_eq!(netlist.num_inputs(), 2 * cfg.bits as usize, "{}", r.name);
    }

    // Record ids are unique and ascending (the canonical frontier order).
    let ids: Vec<u64> = records.iter().map(|r| r.id).collect();
    let mut sorted = ids.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(ids, sorted, "frontier records must be id-ordered");

    // The frontier-only document shares the same entries, minus the
    // machine-dependent header.
    assert!(outcome
        .frontier_json
        .contains("\"schema\": \"appmult-dse/v1\""));
    assert!(!outcome.frontier_json.contains("\"threads\""));
    assert!(!outcome.frontier_json.contains("\"kernel\""));
    for r in &records {
        assert!(outcome.frontier_json.contains(&r.name), "{}", r.name);
    }
}
