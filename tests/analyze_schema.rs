//! Schema lock for the `results/ANALYZE.json` static-analysis report
//! (`appmult-analyze/v1`): every gate-level design must carry the full
//! record — calibrated cost, depth, liveness, strash/ternary counts, STA
//! agreement, the slack histogram, and a nonempty critical path.

/// Minimal line-oriented parse of one design block of the
/// `appmult-analyze/v1` schema.
#[derive(Debug, Default, Clone)]
struct AnalysisRecord {
    name: String,
    kind: String,
    delay_ps: f64,
    area_um2: f64,
    depth: u32,
    live_gates: u32,
    duplicate_gates: u32,
    sta_matches: bool,
    histogram_entries: u32,
    path_gates: u32,
}

fn field<'l>(line: &'l str, key: &str) -> Option<&'l str> {
    let prefix = format!("\"{key}\": ");
    let rest = line.trim().strip_prefix(&prefix)?;
    Some(rest.trim_end_matches(','))
}

fn parse_records(json: &str) -> Vec<AnalysisRecord> {
    let mut records = Vec::new();
    let mut current: Option<AnalysisRecord> = None;
    for line in json.lines() {
        if let Some(v) = field(line, "name") {
            if let Some(done) = current.take() {
                records.push(done);
            }
            current = Some(AnalysisRecord {
                name: v.trim_matches('"').to_string(),
                ..AnalysisRecord::default()
            });
        }
        let Some(r) = current.as_mut() else { continue };
        if let Some(v) = field(line, "kind") {
            r.kind = v.trim_matches('"').to_string();
        }
        if let Some(v) = field(line, "delay_ps") {
            r.delay_ps = v.parse().expect("delay_ps is a number");
        }
        if let Some(v) = field(line, "area_um2") {
            r.area_um2 = v.parse().expect("area_um2 is a number");
        }
        if let Some(v) = field(line, "depth") {
            r.depth = v.parse().expect("depth is an integer");
        }
        if let Some(v) = field(line, "live_gates") {
            r.live_gates = v.parse().expect("live_gates is an integer");
        }
        if let Some(v) = field(line, "duplicate_gates") {
            r.duplicate_gates = v.parse().expect("duplicate_gates is an integer");
        }
        if let Some(v) = field(line, "sta_matches_cost_model") {
            r.sta_matches = v == "true";
        }
        if let Some(v) = field(line, "slack_histogram") {
            r.histogram_entries = v
                .trim_start_matches('[')
                .trim_end_matches(']')
                .split(", ")
                .filter(|s| !s.is_empty())
                .count() as u32;
        }
        // Critical-path entries are inline objects with a "signal" key.
        if line.trim_start().starts_with("{\"signal\":") {
            r.path_gates += 1;
        }
    }
    records.extend(current);
    records
}

#[test]
fn analyze_report_meets_the_schema_contract() {
    // As in lint_zoo.rs, debug runs skip the synthesis-heavy `_syn`
    // entries; the release CI sweep covers them.
    let include_syn = !cfg!(debug_assertions);
    let report = appmult_verify::lint_zoo_filtered(include_syn);
    let json = report.analysis_json();

    // Persist the same artefact the appmult-lint binary writes, so the
    // assertions below genuinely go through the serialized report.
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/ANALYZE.json", &json).expect("write ANALYZE.json");
    let json = std::fs::read_to_string("results/ANALYZE.json").expect("read ANALYZE.json");

    assert!(json.contains("\"schema\": \"appmult-analyze/v1\""));
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert_eq!(json.matches('[').count(), json.matches(']').count());

    let records = parse_records(&json);
    // Every zoo design with a netlist plus the stuck-at and sampled
    // controls; the corrupted-LUT control is LUT-only and omitted.
    assert!(records.len() >= 10, "only {} records", records.len());
    let known = report
        .designs
        .iter()
        .filter(|d| d.analysis.is_some())
        .count();
    assert_eq!(records.len(), known);

    for r in &records {
        assert!(!r.kind.is_empty(), "{r:?}");
        assert!(r.delay_ps > 0.0, "{r:?}");
        assert!(r.area_um2 > 0.0, "{r:?}");
        assert!(r.depth > 0, "{r:?}");
        assert!(r.live_gates > 0, "{r:?}");
        assert!(r.sta_matches, "STA must match the cost model: {r:?}");
        assert_eq!(r.histogram_entries, 8, "{r:?}");
        assert!(r.path_gates > 0, "{r:?}");
        // The levelized depth bounds the critical path (which adds the
        // level-0 starting input to the chain).
        assert!(r.path_gates <= r.depth + 1, "{r:?}");
    }

    // The calibration design pins the Table I reference delay.
    let cal = records
        .iter()
        .find(|r| r.name == "mul8u_acc")
        .expect("calibration design present");
    assert!((cal.delay_ps - 730.1).abs() < 1e-6, "{cal:?}");
    assert_eq!(cal.depth, 111);
    assert_eq!(cal.path_gates, 112);

    // Generated multipliers carry no duplicate logic.
    for r in records.iter().filter(|r| r.kind == "exact") {
        assert_eq!(r.duplicate_gates, 0, "{r:?}");
    }
}
