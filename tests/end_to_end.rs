//! Cross-crate integration tests: the full Fig. 1 flow at miniature scale.

use std::sync::Arc;

use appmult::data::{DatasetConfig, SyntheticDataset};
use appmult::models::{
    copy_params, lenet5, resnet, vgg, ConvMode, ModelConfig, ResNetDepth, VggDepth,
};
use appmult::mult::{zoo, Multiplier};
use appmult::nn::optim::{Adam, StepSchedule};
use appmult::nn::Module;
use appmult::retrain::{evaluate, retrain, GradientLut, GradientMode, RetrainConfig};

fn tiny_workload() -> (Vec<appmult::retrain::Batch>, Vec<appmult::retrain::Batch>) {
    let mut cfg = DatasetConfig::small(4, 12, 8);
    cfg.noise = 0.5;
    let data = SyntheticDataset::generate(&cfg);
    (data.train_batches(16), data.test_batches(16))
}

fn quick_cfg(epochs: usize) -> RetrainConfig {
    RetrainConfig {
        epochs,
        schedule: StepSchedule::new(vec![(1, 2e-3)]),
        eval_every: 1,
        resilience: None,
        obs: appmult_obs::ObsSink::null(),
    }
}

#[test]
fn float_lenet_learns_the_synthetic_task() {
    let (train, test) = tiny_workload();
    let model_cfg = ModelConfig {
        num_classes: 4,
        input_hw: (16, 16),
        ..ModelConfig::quick_test()
    };
    let mut model = lenet5(&model_cfg);
    let mut opt = Adam::new(2e-3);
    let history = retrain(&mut model, &mut opt, &quick_cfg(6), &train, &test);
    assert!(
        history.final_top1() > 0.6,
        "accuracy only {:.2}",
        history.final_top1()
    );
}

#[test]
fn approx_retraining_recovers_accuracy_lost_to_the_appmult() {
    let (train, test) = tiny_workload();
    let model_cfg = ModelConfig {
        num_classes: 4,
        input_hw: (16, 16),
        ..ModelConfig::quick_test()
    };

    // Pretrain float.
    let mut float_model = lenet5(&model_cfg);
    let mut opt = Adam::new(2e-3);
    let pre = retrain(&mut float_model, &mut opt, &quick_cfg(6), &train, &test);
    let float_acc = pre.final_top1();

    // Convert to a large-error AppMult and measure degradation.
    let lut = Arc::new(zoo::mul8u_rm8().to_lut());
    let grads = Arc::new(GradientLut::build(&lut, GradientMode::difference_based(16)));
    let approx_cfg = model_cfg.with_conv(ConvMode::approximate(lut, grads));
    let mut approx = lenet5(&approx_cfg);
    copy_params(&mut float_model, &mut approx);
    let (initial, _) = evaluate(&mut approx, &test);

    // Retrain and check recovery.
    let mut opt = Adam::new(1e-3);
    let history = retrain(&mut approx, &mut opt, &quick_cfg(5), &train, &test);
    let final_acc = history.final_top1();
    assert!(
        final_acc >= initial,
        "retraining should not hurt: {initial:.3} -> {final_acc:.3}"
    );
    assert!(
        final_acc > 0.5,
        "retrained accuracy {final_acc:.3} too far below float {float_acc:.3}"
    );
}

#[test]
fn approximate_models_build_for_every_architecture() {
    use appmult::nn::Tensor;
    let lut = Arc::new(zoo::mul6u_rm4().to_lut());
    let grads = Arc::new(GradientLut::build(&lut, GradientMode::difference_based(2)));
    let cfg = ModelConfig {
        num_classes: 5,
        width_div: 8,
        ..ModelConfig::quick_test()
    }
    .with_conv(ConvMode::approximate(lut, grads));
    let x = Tensor::zeros(&[1, 3, 16, 16]);
    for mut model in [
        vgg(VggDepth::Small, &cfg),
        resnet(ResNetDepth::R10, &cfg),
        lenet5(&cfg),
    ] {
        let y = model.forward(&x, true);
        assert_eq!(y.shape(), &[1, 5]);
        let g = model.backward(&Tensor::full(&[1, 5], 0.2));
        assert_eq!(g.shape(), x.shape());
        // Every parameter received a gradient buffer of the right shape.
        model.visit_params(&mut |p| {
            assert_eq!(p.grad.shape(), p.value.shape());
        });
    }
}

#[test]
fn ste_and_ours_share_identical_forward_behaviour() {
    // Table II comparisons are only fair if the two methods differ solely
    // in the backward pass. Verify at the whole-model level.
    use appmult::nn::Tensor;
    let lut = Arc::new(zoo::mul7u_rm6().to_lut());
    let cfg = ModelConfig {
        num_classes: 3,
        width_div: 8,
        ..ModelConfig::quick_test()
    };
    let build = |mode: GradientMode| {
        let grads = Arc::new(GradientLut::build(&lut, mode));
        lenet5(
            &cfg.clone()
                .with_conv(ConvMode::approximate(lut.clone(), grads)),
        )
    };
    let mut ste = build(GradientMode::Ste);
    let mut ours = build(GradientMode::difference_based(2));
    // Same seeds => same initial weights.
    let x = Tensor::from_vec(
        (0..768)
            .map(|i| ((i * 13) % 31) as f32 / 15.0 - 1.0)
            .collect(),
        &[1, 3, 16, 16],
    );
    let ya = ste.forward(&x, true);
    let yb = ours.forward(&x, true);
    assert_eq!(ya, yb);
    // ...but backward differs.
    let g = Tensor::full(&[1, 3], 0.5);
    assert_ne!(ste.backward(&g), ours.backward(&g));
}

#[test]
fn gradient_mode_changes_training_trajectory_not_initial_loss() {
    let (train, test) = tiny_workload();
    let lut = Arc::new(zoo::mul8u_rm8().to_lut());
    let cfg = ModelConfig {
        num_classes: 4,
        width_div: 8,
        ..ModelConfig::quick_test()
    };
    let mut results = vec![];
    for mode in [GradientMode::Ste, GradientMode::difference_based(16)] {
        let grads = Arc::new(GradientLut::build(&lut, mode));
        let mut model = lenet5(
            &cfg.clone()
                .with_conv(ConvMode::approximate(lut.clone(), grads)),
        );
        let mut opt = Adam::new(1e-3);
        let history = retrain(&mut model, &mut opt, &quick_cfg(2), &train, &test);
        results.push(history);
    }
    // Both trained; trajectories diverge after the first updates.
    assert_ne!(
        results[0].epochs.last().map(|e| e.train_loss),
        results[1].epochs.last().map(|e| e.train_loss),
        "different gradient rules should give different trajectories"
    );
}
