//! Differential conformance suite for the LUT-GEMM kernel engine.
//!
//! The tiled kernels in `appmult-kernels` promise bit-identity with the
//! naive reference loops for every shape, tile configuration, thread
//! count, and gradient mode. This suite enforces that promise two ways:
//!
//! * at the kernel level, with `appmult_rng::prop`-driven randomized
//!   (shape, tile, seed) cases — including non-multiple-of-tile M/J/K and
//!   zero-sized batches — greedily shrunk to a minimal failing triple;
//! * at the layer level, where `ApproxLinear`/`ApproxConv2d` outputs and
//!   gradients must agree across kernels for all five `GradientMode`s,
//!   including the kernel resolved from `APPMULT_KERNEL` (the CI
//!   kernel-parity matrix runs this file under naive/tiled × thread
//!   counts).
//!
//! Comparisons are `to_bits`, never approximate: no case may diverge by
//! even one bit.

use std::sync::Arc;

use appmult::kernels::{backward_dw, backward_dx, forward_acc, GemmShape, Kernel};
use appmult::mult::{Multiplier, MultiplierLut, TruncatedMultiplier};
use appmult::nn::layers::Conv2dSpec;
use appmult::nn::{Module, Tensor};
use appmult::retrain::{ApproxConv2d, ApproxLinear, GradientLut, GradientMode, QuantConfig};
use appmult_pool::Pool;
use appmult_rng::{prop, Rng64};

/// One conformance case: `((m, j, k), (mj, jk, kk), seed)`.
type Case = ((usize, usize, usize), (usize, usize, usize), u64);

fn bits_of(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Corner cases first (minimal, exact-tile, one-past-tile, zero batch),
/// then seeded random shapes and tile extents.
fn generate_case(rng: &mut Rng64, case: usize) -> Case {
    match case {
        0 => ((1, 1, 1), (1, 1, 1), 0),
        1 => ((64, 16, 64), (64, 16, 64), 1), // exactly one default tile
        2 => ((65, 17, 65), (64, 16, 64), 2), // one past every tile boundary
        3 => ((0, 3, 4), (2, 2, 2), 3),       // zero-sized batch
        _ => (
            (
                rng.below(33) as usize, // m may be 0
                rng.below(12) as usize + 1,
                rng.below(90) as usize + 1,
            ),
            (
                rng.below(20) as usize + 1,
                rng.below(20) as usize + 1,
                rng.below(20) as usize + 1,
            ),
            rng.next_u64(),
        ),
    }
}

/// Greedy shrink proposals: halve or decrement each shape/tile dimension
/// (shapes floored so `j`/`k` stay ≥ 1, `m` may reach 0), and try the
/// zero seed.
fn shrink_case(&((m, j, k), (mj, jk, kk), seed): &Case) -> Vec<Case> {
    let mut out = vec![
        ((m / 2, j, k), (mj, jk, kk), seed),
        ((m.saturating_sub(1), j, k), (mj, jk, kk), seed),
        ((m, (j / 2).max(1), k), (mj, jk, kk), seed),
        ((m, (j - 1).max(1), k), (mj, jk, kk), seed),
        ((m, j, (k / 2).max(1)), (mj, jk, kk), seed),
        ((m, j, (k - 1).max(1)), (mj, jk, kk), seed),
        ((m, j, k), ((mj / 2).max(1), jk, kk), seed),
        ((m, j, k), (mj, (jk / 2).max(1), kk), seed),
        ((m, j, k), (mj, jk, (kk / 2).max(1)), seed),
    ];
    if seed != 0 {
        out.push(((m, j, k), (mj, jk, kk), 0));
    }
    out
}

/// The conformance property: for the given case, the tiled kernels —
/// run chunk-wise under worker pools of 1 and 3 threads — must reproduce
/// the whole-buffer naive kernels bit for bit in forward, `dX`, and `dW`.
fn kernel_case_conforms(&((m, j, k), (mj, jk, kk), seed): &Case) -> bool {
    let bits = 6u32;
    let n = 1usize << bits;
    let mut rng = Rng64::seed_from_u64(seed);
    let table: Vec<u32> = (0..n * n).map(|_| rng.next_u32() >> 14).collect();
    let gw: Vec<f32> = (0..n * n).map(|_| rng.uniform_f32(-3.0, 3.0)).collect();
    let gx: Vec<f32> = (0..n * n).map(|_| rng.uniform_f32(-3.0, 3.0)).collect();
    let wq: Vec<u16> = (0..j * k).map(|_| rng.below(n as u64) as u16).collect();
    let xq: Vec<u16> = (0..m * k).map(|_| rng.below(n as u64) as u16).collect();
    let g: Vec<f32> = (0..m * j)
        .map(|_| {
            if rng.chance(0.15) {
                0.0
            } else {
                rng.uniform_f32(-1.0, 1.0)
            }
        })
        .collect();
    let shape = GemmShape { j, k, bits };
    let tiled = Kernel::Tiled { mj, jk, kk };
    let (sw, zw, sx, zx) = (0.37f32, 3.0f32, 0.59f32, 2.0f32);

    let mut acc_ref = vec![0i64; m * j];
    forward_acc(Kernel::Naive, shape, &table, &wq, &xq, &mut acc_ref);
    let mut dx_ref = vec![0.0f32; m * k];
    backward_dx(Kernel::Naive, shape, &gx, &wq, &xq, &g, sw, zw, &mut dx_ref);
    let mut dw_ref = vec![0.0f32; j * k];
    backward_dw(
        Kernel::Naive,
        shape,
        &gw,
        &wq,
        0,
        &xq,
        &g,
        sx,
        zx,
        &mut dw_ref,
    );

    for threads in [1usize, 3] {
        let pool = Pool::new(threads);
        let mut acc = vec![0i64; m * j];
        pool.run_rows(&mut acc, j, |mi0, chunk| {
            let rows = chunk.len() / j;
            forward_acc(
                tiled,
                shape,
                &table,
                &wq,
                &xq[mi0 * k..(mi0 + rows) * k],
                chunk,
            );
        });
        if acc != acc_ref {
            return false;
        }
        let mut dx = vec![0.0f32; m * k];
        pool.run_rows(&mut dx, k, |mi0, chunk| {
            let rows = chunk.len() / k;
            backward_dx(
                tiled,
                shape,
                &gx,
                &wq,
                &xq[mi0 * k..(mi0 + rows) * k],
                &g[mi0 * j..(mi0 + rows) * j],
                sw,
                zw,
                chunk,
            );
        });
        if bits_of(&dx) != bits_of(&dx_ref) {
            return false;
        }
        let mut dw = vec![0.0f32; j * k];
        pool.run_rows(&mut dw, k, |ji0, chunk| {
            let rows = chunk.len() / k;
            backward_dw(
                tiled,
                shape,
                &gw,
                &wq[ji0 * k..(ji0 + rows) * k],
                ji0,
                &xq,
                &g,
                sx,
                zx,
                chunk,
            );
        });
        if bits_of(&dw) != bits_of(&dw_ref) {
            return false;
        }
    }
    true
}

#[test]
fn tiled_kernels_are_bit_identical_to_naive_across_random_cases() {
    prop::forall_with(
        "tiled LUT-GEMM kernels conform to naive",
        0xC0FFEE,
        48,
        generate_case,
        shrink_case,
        kernel_case_conforms,
    );
}

fn ramp(shape: &[usize], scale: f32) -> Tensor {
    let n: usize = shape.iter().product();
    Tensor::from_vec(
        (0..n)
            .map(|i| (((i * 37) % 29) as f32 / 29.0 - 0.45) * scale)
            .collect(),
        shape,
    )
}

fn all_modes(lut: &MultiplierLut) -> Vec<GradientMode> {
    let n = lut.entries().len();
    vec![
        GradientMode::Ste,
        GradientMode::difference_based(8),
        GradientMode::RawDifference,
        GradientMode::DifferenceEdgeClamped { hws: 8 },
        GradientMode::Custom {
            wrt_w: Arc::new((0..n).map(|i| (i % 7) as f32 * 0.25).collect()),
            wrt_x: Arc::new((0..n).map(|i| (i % 5) as f32 * 0.5).collect()),
        },
    ]
}

/// Forward output, input gradient, and weight gradient of a fresh
/// `ApproxLinear` under the given kernel (`None` = the env-resolved
/// default, which the CI matrix drives through `APPMULT_KERNEL`).
fn linear_run(
    lut: &Arc<MultiplierLut>,
    grads: &Arc<GradientLut>,
    m: usize,
    j: usize,
    k: usize,
    kernel: Option<Kernel>,
) -> (Vec<u32>, Vec<u32>, Vec<u32>) {
    let mut lin = ApproxLinear::with_params(
        ramp(&[j, k], 1.2),
        ramp(&[j], 0.2),
        lut.clone(),
        grads.clone(),
        QuantConfig::default(),
    );
    if let Some(kernel) = kernel {
        lin.set_kernel(kernel);
    }
    let y = lin.forward(&ramp(&[m, k], 1.7), true);
    let dx = lin.backward(&ramp(&[m, j], 0.9));
    let mut dw = Vec::new();
    lin.visit_params(&mut |p| {
        if p.value.shape().len() == 2 {
            dw = bits_of(p.grad.as_slice());
        }
    });
    (bits_of(y.as_slice()), bits_of(dx.as_slice()), dw)
}

#[test]
fn layer_outputs_conform_across_kernels_and_gradient_modes() {
    let lut = Arc::new(TruncatedMultiplier::new(8, 6).to_lut());
    let kernels = [
        Some(Kernel::tiled_default()),
        Some(Kernel::Tiled {
            mj: 3,
            jk: 2,
            kk: 5,
        }),
        None, // resolved from APPMULT_KERNEL (the CI matrix axis)
    ];
    for mode in all_modes(&lut) {
        let label = mode.label();
        let grads = Arc::new(GradientLut::build(&lut, mode));
        let reference = linear_run(&lut, &grads, 7, 5, 11, Some(Kernel::Naive));
        for kernel in kernels {
            let got = linear_run(&lut, &grads, 7, 5, 11, kernel);
            assert_eq!(
                reference,
                got,
                "linear mode={label} kernel={:?} diverged from naive",
                kernel.map(|k| k.label())
            );
        }
    }
}

#[test]
fn conv_layer_conforms_across_kernels() {
    let lut = Arc::new(TruncatedMultiplier::new(8, 6).to_lut());
    let grads = Arc::new(GradientLut::build(&lut, GradientMode::difference_based(8)));
    let run = |kernel: Option<Kernel>| {
        let mut conv = ApproxConv2d::with_params(
            Conv2dSpec::same(2, 3, 3),
            ramp(&[3, 18], 0.8),
            ramp(&[3], 0.1),
            lut.clone(),
            grads.clone(),
            QuantConfig::default(),
        );
        if let Some(kernel) = kernel {
            conv.set_kernel(kernel);
        }
        let y = conv.forward(&ramp(&[2, 2, 5, 5], 1.0), true);
        let dx = conv.backward(&ramp(&[2, 3, 5, 5], 1.0));
        (bits_of(y.as_slice()), bits_of(dx.as_slice()))
    };
    let reference = run(Some(Kernel::Naive));
    for kernel in [
        Some(Kernel::tiled_default()),
        Some(Kernel::Tiled {
            mj: 4,
            jk: 1,
            kk: 7,
        }),
        None,
    ] {
        assert_eq!(
            reference,
            run(kernel),
            "conv kernel={:?} diverged from naive",
            kernel.map(|k| k.label())
        );
    }
}

#[test]
fn degenerate_layer_shapes_conform() {
    let lut = Arc::new(TruncatedMultiplier::new(8, 6).to_lut());
    let grads = Arc::new(GradientLut::build(&lut, GradientMode::Ste));
    // (m, j, k) degenerate cases: single row/column/feature and a
    // zero-sized batch, each under naive, tiled, and the env kernel.
    for (m, j, k) in [(1, 1, 1), (1, 4, 3), (5, 1, 3), (5, 4, 1), (0, 4, 3)] {
        let reference = linear_run(&lut, &grads, m, j, k, Some(Kernel::Naive));
        for kernel in [Some(Kernel::tiled_default()), None] {
            let got = linear_run(&lut, &grads, m, j, k, kernel);
            assert_eq!(
                reference,
                got,
                "degenerate m={m} j={j} k={k} kernel={:?}",
                kernel.map(|kn| kn.label())
            );
        }
    }
}

#[test]
fn shrinker_reports_a_minimal_triple() {
    // Plant an artificial divergence — "conformance fails whenever
    // m*j*k > 0 and k >= 3" — and check the harness shrinks the case to
    // the minimal failing triple instead of reporting a random large one.
    let planted = |c: &Case| {
        let ((m, j, k), _, _) = *c;
        !(m > 0 && j > 0 && k >= 3)
    };
    let err = prop::check_with(0xBAD5EED, 64, generate_case, shrink_case, planted)
        .expect_err("planted divergence must be caught");
    let ((m, j, k), (mj, jk, kk), seed) = err.value;
    assert_eq!((m, j, k), (1, 1, 3), "shape shrunk to minimal");
    assert_eq!((mj, jk, kk), (1, 1, 1), "tile shrunk to minimal");
    assert_eq!(seed, 0, "seed shrunk to zero");
}
