//! Cross-crate consistency checks between the hardware substrate, the
//! multiplier library, and the retraining framework.

use appmult::circuit::{CostModel, MultiplierCircuit};
use appmult::mult::{zoo, Multiplier, TruncatedMultiplier};
use appmult::retrain::{GradientLut, GradientMode, QuantParams};

#[test]
fn behavioural_and_gate_level_rm_multipliers_agree() {
    // The Fig. 2 construction exists twice: closed-form in appmult-mult
    // and gate-level in appmult-circuit. They must agree bit-exactly.
    for (bits, k) in [(6u32, 4u32), (7, 6), (8, 8)] {
        let behavioural = TruncatedMultiplier::new(bits, k).to_lut();
        let gate_level = MultiplierCircuit::with_removed_columns(
            bits,
            k,
            appmult::circuit::MultiplierStructure::Array,
        )
        .exhaustive_products();
        for w in 0..(1u32 << bits) {
            for x in 0..(1u32 << bits) {
                assert_eq!(
                    gate_level[((w << bits) | x) as usize] as u32,
                    behavioural.product(w, x),
                    "bits={bits} k={k} {w}*{x}"
                );
            }
        }
    }
}

#[test]
fn zoo_luts_feed_gradient_builder_at_every_bitwidth() {
    for name in ["mul6u_rm4", "mul7u_rm6", "mul8u_rm8"] {
        let entry = zoo::entry(name).expect("known");
        let lut = entry.multiplier.to_lut();
        let g = GradientLut::build(
            &lut,
            GradientMode::difference_based(entry.recommended_hws()),
        );
        assert_eq!(g.bits(), lut.bits());
        // Spot-check: gradients are finite everywhere.
        let n = 1u32 << lut.bits();
        for w in (0..n).step_by(17) {
            for x in (0..n).step_by(13) {
                assert!(g.wrt_w(w, x).is_finite());
                assert!(g.wrt_x(w, x).is_finite());
            }
        }
    }
}

#[test]
fn cost_model_ranks_approximate_below_exact() {
    let model = CostModel::asap7();
    for bits in [6u32, 7, 8] {
        let exact = model.estimate(&MultiplierCircuit::array(bits));
        let trunc_entry = TruncatedMultiplier::new(bits, bits);
        let trunc = model.estimate(&trunc_entry.circuit().expect("gate-level"));
        assert!(trunc.area_um2 < exact.area_um2, "{bits}-bit area");
        assert!(trunc.power_uw < exact.power_uw, "{bits}-bit power");
    }
}

#[test]
fn table1_reference_rows_are_calibration_fixed_points() {
    // mul8u_acc drives the calibration, so the model must reproduce its
    // paper row exactly; the 7-/6-bit exact rows should land close.
    let model = CostModel::asap7();
    let m8 = model.estimate(&MultiplierCircuit::array(8));
    assert!((m8.area_um2 - 25.6).abs() < 0.05);
    assert!((m8.power_uw - 22.93).abs() < 0.05);
    let m7 = model.estimate(&MultiplierCircuit::array(7));
    let paper7 = zoo::entry("mul7u_acc").expect("known").paper;
    assert!(
        (m7.power_uw - paper7.power_uw).abs() / paper7.power_uw < 0.25,
        "7-bit power {:.2} vs paper {:.2}",
        m7.power_uw,
        paper7.power_uw
    );
}

#[test]
fn quantized_exact_pipeline_is_consistent_end_to_end() {
    // Quantize -> exact LUT multiply -> dequantize equals float multiply
    // to within quantization error, across random value pairs.
    let lut = zoo::mul8u_acc().to_lut();
    let wq = QuantParams::from_range(-1.0, 1.0, 8);
    let xq = QuantParams::from_range(0.0, 2.0, 8);
    for i in 0..50 {
        let w = -1.0 + 0.04 * i as f32;
        let x = 0.04 * i as f32;
        let cw = wq.quantize(w);
        let cx = xq.quantize(x);
        let y = lut.product(cw, cx);
        let deq = appmult::retrain::dequantize_dot(
            &wq,
            &xq,
            i64::from(y),
            i64::from(cw),
            i64::from(cx),
            1,
        );
        assert!(
            (deq - w * x).abs() < wq.scale * 2.0 + xq.scale * 2.0,
            "{w} * {x}: {deq}"
        );
    }
}

#[test]
fn fig3_artifacts_are_reproducible_from_the_public_api() {
    // The exact data series behind Fig. 3 (used by the fig3 binary).
    let lut = zoo::mul7u_rm6().to_lut();
    let row = lut.row(10);
    // Staircase: plateaus of width 8 between multiples of 8.
    assert_eq!(row[8], row[15]);
    assert!(row[16] > row[15]);
    // Eq. 4 smoothing with the Fig. 3 window.
    let smoothed = appmult::retrain::smooth_row(row, 4);
    assert!(smoothed[4].is_some() && smoothed[123].is_some());
    assert!(smoothed[3].is_none() && smoothed[124].is_none());
}
