//! Schema lock for the `results/GRAD_MATRIX.json` gradient-estimator
//! matrix report (`appmult-gradmatrix/v1`): the config header must carry
//! the full run provenance (seed, window sizes, threads, kernel), and
//! every cell must carry the complete record — design, scheme, estimator
//! family, and the accuracy/gradient-error floats with their IEEE-754
//! twins.

use appmult_bench::grad_matrix_driver::{run_grad_matrix, EstimatorKind, GradMatrixConfig};

/// Minimal line-oriented parse of one cell of the `appmult-gradmatrix/v1`
/// schema.
#[derive(Debug, Default, Clone)]
struct CellRecord {
    design: String,
    scheme: String,
    bits: u32,
    estimator: String,
    family: String,
    initial_pct: f64,
    has_initial_bits: bool,
    final_pct: f64,
    has_final_bits: bool,
    grad_err: f64,
    has_grad_err_bits: bool,
}

/// The machine-provenance header of the full document.
#[derive(Debug, Default, Clone)]
struct Header {
    schema: String,
    seed: Option<u64>,
    hws: Option<u32>,
    lsq_window: Option<u32>,
    threads: Option<usize>,
    kernel: Option<String>,
}

fn field<'l>(line: &'l str, key: &str) -> Option<&'l str> {
    let prefix = format!("\"{key}\": ");
    let rest = line.trim().strip_prefix(&prefix)?;
    Some(rest.trim_end_matches(','))
}

fn parse(json: &str) -> (Header, Vec<CellRecord>) {
    let mut header = Header::default();
    let mut records: Vec<CellRecord> = Vec::new();
    let mut current: Option<CellRecord> = None;
    for line in json.lines() {
        if let Some(v) = field(line, "design") {
            records.extend(current.take());
            current = Some(CellRecord {
                design: v.trim_matches('"').to_string(),
                ..CellRecord::default()
            });
        }
        let Some(r) = current.as_mut() else {
            // Still in the config header.
            if let Some(v) = field(line, "schema") {
                header.schema = v.trim_matches('"').to_string();
            }
            if let Some(v) = field(line, "seed") {
                header.seed = v.parse().ok();
            }
            if let Some(v) = field(line, "hws") {
                header.hws = v.parse().ok();
            }
            if let Some(v) = field(line, "lsq_window") {
                header.lsq_window = v.parse().ok();
            }
            if let Some(v) = field(line, "threads") {
                header.threads = v.parse().ok();
            }
            if let Some(v) = field(line, "kernel") {
                header.kernel = Some(v.trim_matches('"').to_string());
            }
            continue;
        };
        if let Some(v) = field(line, "scheme") {
            r.scheme = v.trim_matches('"').to_string();
        }
        if let Some(v) = field(line, "bits") {
            r.bits = v.parse().expect("bits is an integer");
        }
        if let Some(v) = field(line, "estimator") {
            r.estimator = v.trim_matches('"').to_string();
        }
        if let Some(v) = field(line, "family") {
            r.family = v.trim_matches('"').to_string();
        }
        if let Some(v) = field(line, "initial_pct") {
            r.initial_pct = v.parse().expect("initial_pct is a number");
        }
        if field(line, "initial_pct_bits").is_some() {
            r.has_initial_bits = true;
        }
        if let Some(v) = field(line, "final_pct") {
            r.final_pct = v.parse().expect("final_pct is a number");
        }
        if field(line, "final_pct_bits").is_some() {
            r.has_final_bits = true;
        }
        if let Some(v) = field(line, "grad_err") {
            r.grad_err = v.parse().expect("grad_err is a number");
        }
        if field(line, "grad_err_bits").is_some() {
            r.has_grad_err_bits = true;
        }
    }
    records.extend(current);
    (header, records)
}

#[test]
fn grad_matrix_report_meets_the_schema_contract() {
    // A deliberately small run: the schema shape is identical at every
    // scale, and tier-1 runs this in debug.
    let mut cfg = GradMatrixConfig::smoke(1);
    cfg.pretrain_epochs = 1;
    cfg.retrain_epochs = 1;
    cfg.estimators = vec![EstimatorKind::Ste, EstimatorKind::Diff, EstimatorKind::Lsq];
    let outcome = run_grad_matrix(&cfg);

    // Persist the same artefact the grad_matrix binary writes, so the
    // assertions below genuinely go through the serialized report.
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/GRAD_MATRIX.json", &outcome.json).expect("write GRAD_MATRIX.json");
    let json = std::fs::read_to_string("results/GRAD_MATRIX.json").expect("read GRAD_MATRIX.json");

    assert!(json.contains("\"schema\": \"appmult-gradmatrix/v1\""));
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert_eq!(json.matches('[').count(), json.matches(']').count());

    let (header, records) = parse(&json);
    assert_eq!(header.schema, "appmult-gradmatrix/v1");
    assert_eq!(header.seed, Some(cfg.seed));
    assert_eq!(header.hws, Some(cfg.hws));
    assert_eq!(header.lsq_window, Some(cfg.lsq_window));
    let threads = header.threads.expect("config header carries threads");
    assert!(threads >= 1);
    assert!(
        !header
            .kernel
            .expect("config header carries kernel")
            .is_empty(),
        "kernel label must be recorded"
    );

    assert_eq!(
        records.len(),
        cfg.designs.len() * cfg.estimators.len(),
        "one record per (design, estimator) cell"
    );
    let mut seen_signed = false;
    for r in &records {
        assert!(!r.design.is_empty(), "{r:?}");
        assert!(r.scheme == "unsigned" || r.scheme == "signed", "{r:?}");
        assert!(r.bits == 7 || r.bits == 8, "{r:?}");
        assert!(
            r.family == "ste" || r.family == "difference" || r.family == "surrogate",
            "{r:?}"
        );
        assert!(!r.estimator.is_empty(), "{r:?}");
        assert!((0.0..=100.0).contains(&r.initial_pct), "{r:?}");
        assert!((0.0..=100.0).contains(&r.final_pct), "{r:?}");
        assert!(r.grad_err >= 0.0 && r.grad_err.is_finite(), "{r:?}");
        assert!(
            r.has_initial_bits && r.has_final_bits && r.has_grad_err_bits,
            "{r:?}"
        );
        seen_signed |= r.scheme == "signed";
    }
    assert!(seen_signed, "the default grid must include a signed design");

    // Every requested estimator appears for every design.
    for d in &cfg.designs {
        for &e in &cfg.estimators {
            let key = e.mode(&cfg, d.lut.bits()).key();
            assert!(
                records
                    .iter()
                    .any(|r| r.design == d.name && r.estimator == key),
                "missing cell {} x {key}",
                d.name
            );
        }
    }

    // The grid document shares the same cells, minus the machine header.
    assert!(outcome
        .grid_json
        .contains("\"schema\": \"appmult-gradmatrix/v1\""));
    assert!(!outcome.grid_json.contains("\"threads\""));
    assert!(!outcome.grid_json.contains("\"kernel\""));
    for r in &records {
        assert!(outcome.grid_json.contains(&r.design), "{}", r.design);
    }
}
