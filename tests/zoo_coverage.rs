//! Workspace-level coverage of the full Table I zoo: every entry must
//! produce a consistent LUT, feed the gradient builder, and cost less than
//! its exact reference where a netlist exists.
//!
//! The four `_syn` entries are exercised in `appmult-mult`'s own tests and
//! the experiment binaries; they are skipped here to keep the suite fast
//! (each runs a multi-second ALS pass).

use appmult::circuit::{CostModel, MultiplierCircuit};
use appmult::mult::{zoo, ErrorMetrics, Multiplier};
use appmult::retrain::{candidates_for_bits, GradientLut, GradientMode};

fn fast_entries() -> Vec<zoo::ZooEntry> {
    zoo::names()
        .iter()
        .filter(|n| !n.contains("_syn"))
        .map(|n| zoo::entry(n).expect("known"))
        .collect()
}

#[test]
fn every_entry_has_a_consistent_lut() {
    for e in fast_entries() {
        let bits = e.multiplier.bits();
        let expect_bits: u32 = e.name[3..4].parse().expect("mulNu_ name");
        assert_eq!(bits, expect_bits, "{}", e.name);
        let lut = e.multiplier.to_lut();
        assert_eq!(lut.entries().len(), 1 << (2 * bits), "{}", e.name);
        // LUT round-trips the behavioural function on a sample.
        for (w, x) in [(0u32, 0u32), (1, 1), (3, 5)] {
            assert_eq!(lut.product(w, x), e.multiplier.multiply(w, x), "{}", e.name);
        }
    }
}

#[test]
fn every_entry_feeds_both_gradient_rules() {
    for e in fast_entries() {
        let lut = e.multiplier.to_lut();
        for mode in [
            GradientMode::Ste,
            GradientMode::difference_based(e.recommended_hws()),
        ] {
            let g = GradientLut::build(&lut, mode);
            let n = 1u32 << lut.bits();
            for w in (0..n).step_by(13) {
                for x in (0..n).step_by(11) {
                    assert!(g.wrt_w(w, x).is_finite(), "{} {:?}", e.name, (w, x));
                    assert!(g.wrt_x(w, x).is_finite(), "{} {:?}", e.name, (w, x));
                }
            }
        }
    }
}

#[test]
fn recommended_hws_is_a_valid_candidate() {
    for e in fast_entries() {
        let hws = e.recommended_hws();
        let valid = candidates_for_bits(e.multiplier.bits());
        assert!(
            valid.contains(&hws),
            "{}: HWS {hws} not in {valid:?}",
            e.name
        );
    }
}

#[test]
fn approximate_netlists_cost_less_than_their_exact_reference() {
    let model = CostModel::asap7();
    for e in fast_entries() {
        if e.paper.hws.is_none() {
            continue; // exact reference rows
        }
        let Some(circuit) = e.multiplier.circuit() else {
            continue; // behavioural-only surrogate (mul8u_1DMU)
        };
        let cost = model.estimate(&circuit);
        let exact = model.estimate(&MultiplierCircuit::array(e.multiplier.bits()));
        assert!(
            cost.area_um2 < exact.area_um2,
            "{}: {:.1} !< {:.1}",
            e.name,
            cost.area_um2,
            exact.area_um2
        );
        assert!(cost.power_uw < exact.power_uw, "{}", e.name);
    }
}

#[test]
fn error_metrics_cover_the_declared_error_classes() {
    // Within each bit width the zoo spans a real error range (the exact
    // within-bitwidth ordering of the paper is not preserved by the
    // surrogates — documented in EXPERIMENTS.md — but every entry must be
    // within 2x of its published NMED, and the spread must be material).
    for bits_prefix in ["mul7", "mul8"] {
        let measured: Vec<f64> = fast_entries()
            .into_iter()
            .filter(|e| e.name.starts_with(bits_prefix) && e.paper.hws.is_some())
            .map(|e| {
                let m = ErrorMetrics::exhaustive(&e.multiplier.to_lut());
                let ratio = m.nmed_pct() / e.paper.nmed_pct;
                assert!(
                    ratio > 0.5 && ratio < 2.0,
                    "{}: measured {:.3}% vs paper {:.3}%",
                    e.name,
                    m.nmed_pct(),
                    e.paper.nmed_pct
                );
                m.nmed_pct()
            })
            .collect();
        let lo = measured.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = measured.iter().cloned().fold(0.0f64, f64::max);
        assert!(hi > 1.5 * lo, "{bits_prefix}: spread {lo:.3} .. {hi:.3}");
    }
}
