//! # appmult — AppMult-aware DNN retraining with difference-based gradients
//!
//! Facade crate for the `appmult` workspace, a from-scratch Rust
//! reproduction of *"Gradient Approximation of Approximate Multipliers for
//! High-Accuracy Deep Neural Network Retraining"* (DATE 2025).
//!
//! The workspace implements the full stack the paper depends on:
//!
//! * [`circuit`] — gate-level netlists, multiplier generators, simulation,
//!   an ASAP7-calibrated cost model, and approximate logic synthesis;
//! * [`mult`] — the approximate-multiplier zoo, product LUTs, and error
//!   metrics (ER / NMED / MaxED);
//! * [`nn`] — a CPU deep-learning framework with explicit backward passes;
//! * [`retrain`] — the paper's contribution: quantization, AppMult function
//!   smoothing (Eq. 4), difference-based gradients (Eqs. 5–6), gradient
//!   LUTs, LUT-based approximate layers, and the retraining loop;
//! * [`models`] — LeNet / VGG / ResNet model builders;
//! * [`data`] — synthetic CIFAR-style datasets;
//! * [`serve`] — overload-hardened batched inference: model registry,
//!   bounded priority queue, deadline-aware batching, graceful degradation.
//!
//! # Quickstart
//!
//! ```
//! use appmult::mult::{zoo, ErrorMetrics, Multiplier};
//! use appmult::retrain::{GradientLut, GradientMode};
//!
//! // A 7-bit multiplier that drops the 6 rightmost partial-product columns
//! // (Fig. 2 of the paper).
//! let m = zoo::mul7u_rm6();
//! let lut = m.to_lut();
//! let metrics = ErrorMetrics::exhaustive(&lut);
//! assert!(metrics.nmed > 0.0);
//!
//! // Difference-based gradient LUT with half window size 2 (Table I).
//! let grads = GradientLut::build(&lut, GradientMode::difference_based(2));
//! assert!(grads.wrt_x(10, 64) > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use appmult_circuit as circuit;
pub use appmult_data as data;
pub use appmult_kernels as kernels;
pub use appmult_models as models;
pub use appmult_mult as mult;
pub use appmult_nn as nn;
pub use appmult_obs as obs;
pub use appmult_retrain as retrain;
pub use appmult_serve as serve;
