//! Per-model sub-queues scheduled by deficit round-robin (DRR).
//!
//! [`BoundedQueue`](crate::BoundedQueue) is a single queue with priority
//! lanes; the PR-6 batcher coalesced on it with a predicate pop that always
//! chased the model of the *first* job in priority order. Under sustained
//! multi-model traffic that starves every other model: a cold model's job
//! sits behind the entire hot backlog (unboundedly, if the hot traffic
//! rides a higher priority lane), and when it finally surfaces it gets a
//! tiny, uncoalesced batch.
//!
//! [`DrrQueue`] restructures dispatch. Admission routes each item into a
//! **per-model sub-queue** (three strict-priority lanes, FIFO within lane,
//! shared global capacity). Consumers pop whole batches: the scheduler
//! visits active models round-robin, granting each visit a **quantum of
//! estimated MACs** added to the model's carried *deficit*; a model is
//! served while its deficit covers the next item's cost. The guarantee is
//! the classic DRR bound: over any interval in which two models both stay
//! backlogged, their served work differs by at most one quantum plus one
//! maximal item cost — so every registered model gets a bounded share of
//! batcher time under saturation, no matter how deep a hot model's backlog
//! grows. Priority remains strict *within* a model's sub-queue; cross-model
//! isolation is the scheduler's job, not the lanes'.
//!
//! Coalescing top-ups ([`DrrQueue::pop_model_wait`]) may overdraw the
//! deficit (it goes negative) so batches still fill to `max_batch`; the
//! overdraft is carried and repaid out of future quanta, preserving the
//! long-run share. A model's deficit resets when its sub-queue empties
//! (standard DRR — credit cannot be hoarded while idle).
//!
//! Wakeup correctness: every push uses `notify_all`, because consumers wait
//! on *different* conditions (any-model batch pops vs. single-model top-up
//! pops) — a single wakeup could land on a consumer whose condition the new
//! item does not satisfy while the right consumer sleeps to its timeout.
//!
//! Instrumented via the global `appmult-obs` sink (recording sinks only —
//! dynamic metric names are skipped when observability is off):
//! `serve.model.deficit.<model>` (gauge, deficit after each served visit),
//! `serve.model.starved_polls.<model>` (counter, batch pops that passed the
//! model over while it had queued work).

use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

use crate::queue::{Priority, PushError};

/// One queued item plus its estimated dispatch cost in MACs.
struct Item<T> {
    value: T,
    cost: u64,
}

/// A model's sub-queue: three strict-priority lanes plus the DRR state.
struct Sub<T> {
    lanes: [VecDeque<Item<T>>; 3],
    /// Carried deficit in MACs. Positive: unspent credit from earlier
    /// quanta. Negative: coalescing overdraft still being repaid.
    deficit: i64,
}

impl<T> Sub<T> {
    fn new() -> Self {
        Self {
            lanes: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
            deficit: 0,
        }
    }

    fn len(&self) -> usize {
        self.lanes.iter().map(VecDeque::len).sum()
    }

    /// Cost of the next item in strict lane order, if any.
    fn head_cost(&self) -> Option<u64> {
        self.lanes
            .iter()
            .find_map(|lane| lane.front().map(|i| i.cost))
    }

    /// Pops the next item in strict lane order.
    fn pop(&mut self) -> Option<Item<T>> {
        self.lanes.iter_mut().find_map(VecDeque::pop_front)
    }
}

struct Inner<T> {
    subs: HashMap<String, Sub<T>>,
    /// Round-robin visit order over models with queued work.
    active: VecDeque<String>,
    len: usize,
    closed: bool,
}

/// A batch handed out by the scheduler, plus the telemetry gathered while
/// the lock was held (emitted by the caller after unlocking).
struct Scheduled<T> {
    model: String,
    items: Vec<T>,
    deficit_after: i64,
    /// Models that had queued work but were not the one served this poll.
    passed_over: Vec<String>,
}

/// The bounded multi-model DRR queue (see the module docs).
pub struct DrrQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    capacity: usize,
    quantum: u64,
}

impl<T> DrrQueue<T> {
    /// A queue holding at most `capacity` items across every model and
    /// lane, scheduled with a per-visit credit of `quantum` MACs (both
    /// clamped to at least 1).
    pub fn new(capacity: usize, quantum: u64) -> Self {
        Self {
            inner: Mutex::new(Inner {
                subs: HashMap::new(),
                active: VecDeque::new(),
                len: 0,
                closed: false,
            }),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
            quantum: quantum.max(1),
        }
    }

    /// Total capacity across all models and lanes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of queued items across all models.
    pub fn len(&self) -> usize {
        self.lock().len
    }

    /// Whether the queue currently holds no items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Queued items for one model (0 if it has no sub-queue).
    pub fn model_len(&self, model: &str) -> usize {
        self.lock().subs.get(model).map_or(0, Sub::len)
    }

    /// Occupancy in `[0, 1]` — queued items over capacity. The engine
    /// folds in-flight work on top of this for its pressure signal.
    pub fn occupancy(&self) -> f64 {
        self.len() as f64 / self.capacity as f64
    }

    /// Enqueues `item` for `model` on `priority`'s lane, carrying an
    /// estimated dispatch cost of `cost` MACs (clamped to at least 1).
    ///
    /// # Errors
    ///
    /// Returns the item back with [`PushError::Full`] at capacity or
    /// [`PushError::Closed`] after [`close`](Self::close); never blocks.
    pub fn push(
        &self,
        model: &str,
        item: T,
        cost: u64,
        priority: Priority,
    ) -> Result<(), (T, PushError)> {
        let mut inner = self.lock();
        if inner.closed {
            return Err((item, PushError::Closed));
        }
        if inner.len >= self.capacity {
            return Err((item, PushError::Full));
        }
        if !inner.subs.contains_key(model) {
            inner.subs.insert(model.to_string(), Sub::new());
        }
        let was_empty = {
            let sub = inner.subs.get_mut(model).expect("just inserted");
            let was_empty = sub.len() == 0;
            sub.lanes[priority.lane()].push_back(Item {
                value: item,
                cost: cost.max(1),
            });
            was_empty
        };
        if was_empty {
            inner.active.push_back(model.to_string());
        }
        inner.len += 1;
        drop(inner);
        // notify_all: batch poppers and per-model top-up poppers wait on
        // the same condvar with different conditions (see module docs).
        self.not_empty.notify_all();
        Ok(())
    }

    /// Pops the next DRR-scheduled batch: up to `max_batch` items for one
    /// model, bounded by the model's deficit. Waits up to `timeout` for an
    /// item to arrive. Returns `None` on timeout or when the queue is
    /// closed and empty.
    pub fn pop_batch_wait(&self, timeout: Duration, max_batch: usize) -> Option<(String, Vec<T>)> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.lock();
        loop {
            if let Some(sched) = Self::schedule(&mut inner, self.quantum, max_batch) {
                drop(inner);
                emit_poll_telemetry(&sched);
                return Some((sched.model, sched.items));
            }
            if inner.closed {
                return None;
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self
                .not_empty
                .wait_timeout(inner, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            inner = guard;
        }
    }

    /// Coalescing top-up: pops up to `max_items` more items for `model`
    /// (strict lane order, FIFO within lane), waiting up to `timeout` for
    /// at least one. The items' cost is charged against the model's
    /// deficit, which may go negative (overdraft, repaid from future
    /// quanta) so batches can still fill to `max_batch`. Returns an empty
    /// vector on timeout or when the queue is closed with nothing queued
    /// for this model.
    pub fn pop_model_wait(&self, model: &str, timeout: Duration, max_items: usize) -> Vec<T> {
        if max_items == 0 {
            return Vec::new();
        }
        let deadline = Instant::now() + timeout;
        let mut inner = self.lock();
        loop {
            if inner.subs.get(model).is_some_and(|s| s.len() > 0) {
                let sub = inner.subs.get_mut(model).expect("checked non-empty");
                let mut items = Vec::new();
                while items.len() < max_items {
                    let Some(item) = sub.pop() else { break };
                    sub.deficit -= item.cost as i64;
                    items.push(item.value);
                }
                inner.len -= items.len();
                if inner.subs.get(model).is_some_and(|s| s.len() == 0) {
                    Self::deactivate(&mut inner, model);
                }
                return items;
            }
            if inner.closed {
                return Vec::new();
            }
            let now = Instant::now();
            if now >= deadline {
                return Vec::new();
            }
            let (guard, _) = self
                .not_empty
                .wait_timeout(inner, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            inner = guard;
        }
    }

    /// One DRR scheduling decision. Visits active models in round-robin
    /// order; each visit adds `quantum` to the model's deficit (capped so
    /// idle rounds cannot hoard unbounded credit) and serves while the
    /// deficit covers the next item. A model whose head it cannot yet
    /// afford rotates to the back with its credit carried — after at most
    /// `head_cost / quantum` rotations it is served, so expensive items
    /// delay a model proportionally instead of forever.
    fn schedule(inner: &mut Inner<T>, quantum: u64, max_batch: usize) -> Option<Scheduled<T>> {
        if inner.len == 0 || max_batch == 0 {
            return None;
        }
        loop {
            let model = inner.active.front().expect("len > 0").clone();
            let sub = inner.subs.get_mut(&model).expect("active model has a sub");
            let head = sub.head_cost().expect("active sub is non-empty");
            sub.deficit = (sub.deficit + quantum as i64).min((2 * quantum).max(head) as i64);
            let mut items = Vec::new();
            while items.len() < max_batch {
                match sub.head_cost() {
                    Some(cost) if (cost as i64) <= sub.deficit => {
                        let item = sub.pop().expect("head exists");
                        sub.deficit -= cost as i64;
                        items.push(item.value);
                    }
                    _ => break,
                }
            }
            if items.is_empty() {
                // Deficit not yet sufficient for the head item: rotate and
                // let the credit accumulate across rounds.
                inner.active.rotate_left(1);
                continue;
            }
            inner.len -= items.len();
            let deficit_after = sub.deficit;
            if sub.len() == 0 {
                Self::deactivate(inner, &model);
            } else {
                inner.active.rotate_left(1);
            }
            let passed_over = inner
                .active
                .iter()
                .filter(|m| **m != model)
                .cloned()
                .collect();
            return Some(Scheduled {
                model,
                items,
                deficit_after,
                passed_over,
            });
        }
    }

    /// Removes a drained model from the rotation and drops its sub-queue —
    /// which also resets the deficit to zero: DRR credit (and overdraft
    /// forgiveness) only exists while backlogged, and unloaded/transient
    /// model names must not accumulate in the map forever.
    fn deactivate(inner: &mut Inner<T>, model: &str) {
        inner.active.retain(|m| m != model);
        inner.subs.remove(model);
    }

    /// Marks the queue closed: subsequent pushes fail with
    /// [`PushError::Closed`] and blocked consumers wake. Queued items
    /// remain poppable or can be swept with [`drain`](Self::drain).
    pub fn close(&self) {
        self.lock().closed = true;
        self.not_empty.notify_all();
    }

    /// Whether [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    /// Removes and returns every queued item (model order unspecified,
    /// strict lane order FIFO-within-lane per model). Used at shutdown so
    /// every in-flight request still resolves to a typed rejection.
    pub fn drain(&self) -> Vec<T> {
        let mut inner = self.lock();
        let mut out = Vec::with_capacity(inner.len);
        // Drain in the round-robin order for determinism.
        let order: Vec<String> = inner.active.iter().cloned().collect();
        for model in order {
            if let Some(sub) = inner.subs.get_mut(&model) {
                for lane in &mut sub.lanes {
                    out.extend(lane.drain(..).map(|i| i.value));
                }
            }
        }
        inner.subs.clear();
        inner.active.clear();
        inner.len = 0;
        out
    }

    /// Locks the scheduler state, recovering from a poisoned mutex — the
    /// state is never left mid-update across a panic point.
    fn lock(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Per-poll telemetry, emitted outside the queue lock. Dynamic metric
/// names allocate, so this is skipped entirely on a disabled sink.
fn emit_poll_telemetry<T>(sched: &Scheduled<T>) {
    let obs = appmult_obs::global();
    if !obs.is_enabled() {
        return;
    }
    obs.gauge_set(
        &format!("serve.model.deficit.{}", sched.model),
        sched.deficit_after as f64,
    );
    for starved in &sched.passed_over {
        obs.counter_add(&format!("serve.model.starved_polls.{starved}"), 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    const TICK: Duration = Duration::from_millis(5);

    #[test]
    fn single_model_pops_in_strict_lane_fifo_order() {
        let q = DrrQueue::new(16, 64);
        q.push("m", "n1", 1, Priority::Normal).unwrap();
        q.push("m", "l1", 1, Priority::Low).unwrap();
        q.push("m", "h1", 1, Priority::High).unwrap();
        q.push("m", "n2", 1, Priority::Normal).unwrap();
        let (model, items) = q.pop_batch_wait(TICK, 16).unwrap();
        assert_eq!(model, "m");
        assert_eq!(items, ["h1", "n1", "n2", "l1"]);
    }

    #[test]
    fn round_robin_alternates_between_backlogged_models() {
        let q = DrrQueue::new(64, 4);
        for i in 0..8 {
            q.push("a", ("a", i), 1, Priority::Normal).unwrap();
            q.push("b", ("b", i), 1, Priority::Normal).unwrap();
        }
        let mut order = Vec::new();
        while let Some((model, items)) = q.pop_batch_wait(TICK, 4) {
            order.push((model, items.len()));
        }
        // Quantum 4, unit costs: each visit serves exactly 4 items, and the
        // rotation alternates a..b until both drain.
        assert_eq!(
            order,
            [
                ("a".to_string(), 4),
                ("b".to_string(), 4),
                ("a".to_string(), 4),
                ("b".to_string(), 4),
            ]
        );
    }

    #[test]
    fn full_and_closed_hand_items_back() {
        let q = DrrQueue::new(2, 8);
        q.push("a", 1, 1, Priority::Normal).unwrap();
        q.push("b", 2, 1, Priority::Normal).unwrap();
        let (item, err) = q.push("a", 3, 1, Priority::Normal).unwrap_err();
        assert_eq!((item, err), (3, PushError::Full));
        q.close();
        let (item, err) = q.push("a", 4, 1, Priority::Normal).unwrap_err();
        assert_eq!((item, err), (4, PushError::Closed));
        assert_eq!(q.drain().len(), 2);
        assert!(q.pop_batch_wait(TICK, 4).is_none());
    }

    #[test]
    fn expensive_head_waits_proportionally_but_is_served() {
        let q = DrrQueue::new(16, 2);
        // Model "big" has one item costing 5 quanta; "small" a stream of
        // unit items. "big" must be served after a bounded number of polls,
        // not starved.
        q.push("big", 99, 10, Priority::Normal).unwrap();
        for i in 0..12 {
            q.push("small", i, 1, Priority::Normal).unwrap();
        }
        let mut polls_until_big = 0;
        loop {
            let (model, items) = q.pop_batch_wait(TICK, 2).unwrap();
            if model == "big" {
                assert_eq!(items.len(), 1);
                break;
            }
            polls_until_big += 1;
            assert!(polls_until_big < 12, "big model starved");
        }
    }

    #[test]
    fn top_up_pop_charges_overdraft_and_preserves_order() {
        let q = DrrQueue::new(32, 2);
        for i in 0..6 {
            q.push("m", i, 1, Priority::Normal).unwrap();
        }
        // Batch pop is deficit-limited to 2 items; the coalescing top-up
        // takes the rest regardless, overdrawing the deficit.
        let (_, first) = q.pop_batch_wait(TICK, 6).unwrap();
        assert_eq!(first, [0, 1]);
        let more = q.pop_model_wait("m", TICK, 6);
        assert_eq!(more, [2, 3, 4, 5]);
        assert!(q.is_empty());
    }

    #[test]
    fn blocked_batch_consumer_wakes_on_push() {
        let q = Arc::new(DrrQueue::new(4, 8));
        let q2 = Arc::clone(&q);
        let consumer = std::thread::spawn(move || {
            q2.pop_batch_wait(Duration::from_secs(5), 4).expect("woken")
        });
        std::thread::sleep(Duration::from_millis(10));
        q.push("m", 42, 1, Priority::Normal).unwrap();
        let (model, items) = consumer.join().unwrap();
        assert_eq!((model.as_str(), items), ("m", vec![42]));
    }

    #[test]
    fn drained_model_resets_its_deficit() {
        let q = DrrQueue::new(16, 4);
        q.push("m", 0, 1, Priority::Normal).unwrap();
        let _ = q.pop_batch_wait(TICK, 1);
        // Sub-queue emptied: the carried credit must not survive idling.
        q.push("m", 1, 3, Priority::Normal).unwrap();
        q.push("other", 2, 1, Priority::Normal).unwrap();
        let (model, items) = q.pop_batch_wait(TICK, 4).unwrap();
        assert_eq!((model.as_str(), items.len()), ("m", 1));
    }
}
