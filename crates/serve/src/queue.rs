//! A bounded, multi-producer/multi-consumer priority queue.
//!
//! Three strict-priority lanes ([`Priority::High`] > [`Priority::Normal`] >
//! [`Priority::Low`]), FIFO within each lane, with a hard capacity shared
//! across lanes. Producers never block: a full or closed queue hands the
//! item straight back, which is what admission control needs to produce an
//! immediate typed rejection instead of stalling the caller. Consumers
//! block with a timeout, and can pop *selectively* (first item matching a
//! predicate, scanned in priority-then-FIFO order) so a batcher can keep
//! coalescing one model without reordering anything it leaves behind.
//!
//! Built on `Mutex` + `Condvar` only — no external dependencies, no unsafe.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Request priority lane. Higher lanes are always served first; the
/// degradation ladder sheds lower lanes first under sustained overload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Served first; shed last (only when the queue is effectively full).
    High = 0,
    /// Default lane.
    Normal = 1,
    /// Best-effort traffic; first to be shed under overload.
    Low = 2,
}

impl Priority {
    /// All lanes, highest first (iteration order for consumers).
    pub const ALL: [Priority; 3] = [Priority::High, Priority::Normal, Priority::Low];

    /// Lane index (0 = highest).
    pub fn lane(self) -> usize {
        self as usize
    }

    /// Short lowercase label for metrics and JSON.
    pub fn label(self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Low => "low",
        }
    }
}

/// Why a push was refused. The item is handed back alongside the reason so
/// no request is ever silently dropped by the queue itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity.
    Full,
    /// [`BoundedQueue::close`] has been called.
    Closed,
}

struct Inner<T> {
    lanes: [VecDeque<T>; 3],
    closed: bool,
}

impl<T> Inner<T> {
    fn len(&self) -> usize {
        self.lanes.iter().map(VecDeque::len).sum()
    }
}

/// The bounded MPMC priority queue (see the module docs).
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items across all lanes
    /// (clamped to at least 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                lanes: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
                closed: false,
            }),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Total capacity across all lanes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of queued items across all lanes.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether the queue currently holds no items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Occupancy in `[0, 1]` — the degradation ladder's input signal.
    pub fn occupancy(&self) -> f64 {
        self.len() as f64 / self.capacity as f64
    }

    /// Enqueues `item` on `priority`'s lane.
    ///
    /// # Errors
    ///
    /// Returns the item back with [`PushError::Full`] when at capacity or
    /// [`PushError::Closed`] after [`close`](Self::close); never blocks.
    pub fn push(&self, item: T, priority: Priority) -> Result<(), (T, PushError)> {
        let mut inner = self.lock();
        if inner.closed {
            return Err((item, PushError::Closed));
        }
        if inner.len() >= self.capacity {
            return Err((item, PushError::Full));
        }
        inner.lanes[priority.lane()].push_back(item);
        drop(inner);
        // `notify_all`, not `notify_one`: consumers block with *predicates*
        // (`pop_matching_wait`), so a single wakeup can land on a consumer
        // whose predicate does not match the new item — it re-sleeps and the
        // matching consumer keeps waiting until its timeout (a lost wakeup).
        // Waking everyone lets each waiter re-check its own predicate.
        self.not_empty.notify_all();
        Ok(())
    }

    /// Removes the front item of the highest non-empty lane, waiting up to
    /// `timeout` for one to arrive. Returns `None` on timeout or when the
    /// queue is closed *and* empty.
    pub fn pop_wait(&self, timeout: Duration) -> Option<T> {
        self.pop_matching_wait(timeout, |_| true)
    }

    /// Removes the first item (scanning lanes highest-priority first, each
    /// lane front-to-back) for which `matches` returns true, waiting up to
    /// `timeout` for one to appear.
    ///
    /// Skipped items keep their relative order, so FIFO-within-priority is
    /// preserved both for the matched subset and for everything left
    /// behind. Returns `None` on timeout, or immediately if the queue is
    /// closed and holds no matching item.
    pub fn pop_matching_wait<F>(&self, timeout: Duration, matches: F) -> Option<T>
    where
        F: Fn(&T) -> bool,
    {
        let deadline = Instant::now() + timeout;
        let mut inner = self.lock();
        loop {
            for lane in &mut inner.lanes {
                if let Some(pos) = lane.iter().position(&matches) {
                    let item = lane.remove(pos).expect("position just found");
                    return Some(item);
                }
            }
            if inner.closed {
                return None;
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, result) = self
                .not_empty
                .wait_timeout(inner, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            inner = guard;
            if result.timed_out() && inner.lanes.iter().all(VecDeque::is_empty) {
                return None;
            }
        }
    }

    /// Marks the queue closed: subsequent pushes fail with
    /// [`PushError::Closed`] and blocked consumers wake up. Items already
    /// queued remain poppable (or can be swept with
    /// [`drain`](Self::drain)).
    pub fn close(&self) {
        self.lock().closed = true;
        self.not_empty.notify_all();
    }

    /// Whether [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    /// Removes and returns every queued item, highest priority first,
    /// FIFO within priority. Used at shutdown so every in-flight request
    /// still resolves (to a typed rejection).
    pub fn drain(&self) -> Vec<T> {
        let mut inner = self.lock();
        let mut out = Vec::with_capacity(inner.len());
        for lane in &mut inner.lanes {
            out.extend(lane.drain(..));
        }
        out
    }

    /// Locks the queue state, recovering from a poisoned mutex: the state
    /// is a plain container that is never left mid-update across a panic
    /// point, so the data is still consistent.
    fn lock(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    const TICK: Duration = Duration::from_millis(5);

    #[test]
    fn fifo_within_priority_and_strict_lane_order() {
        let q = BoundedQueue::new(16);
        q.push(("n1", ()), Priority::Normal).unwrap();
        q.push(("l1", ()), Priority::Low).unwrap();
        q.push(("h1", ()), Priority::High).unwrap();
        q.push(("n2", ()), Priority::Normal).unwrap();
        q.push(("h2", ()), Priority::High).unwrap();
        let order: Vec<&str> = std::iter::from_fn(|| q.pop_wait(TICK).map(|(n, ())| n)).collect();
        assert_eq!(order, ["h1", "h2", "n1", "n2", "l1"]);
    }

    #[test]
    fn full_queue_hands_the_item_back() {
        let q = BoundedQueue::new(2);
        q.push(1, Priority::Low).unwrap();
        q.push(2, Priority::High).unwrap();
        let (item, err) = q.push(3, Priority::High).unwrap_err();
        assert_eq!((item, err), (3, PushError::Full));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn closed_queue_rejects_pushes_but_drains() {
        let q = BoundedQueue::new(4);
        q.push("a", Priority::Normal).unwrap();
        q.close();
        let (_, err) = q.push("b", Priority::Normal).unwrap_err();
        assert_eq!(err, PushError::Closed);
        assert_eq!(q.drain(), ["a"]);
        assert!(q.pop_wait(TICK).is_none());
    }

    #[test]
    fn pop_matching_skips_without_reordering() {
        let q = BoundedQueue::new(8);
        for name in ["a1", "b1", "a2", "b2"] {
            q.push(name, Priority::Normal).unwrap();
        }
        assert_eq!(
            q.pop_matching_wait(TICK, |n| n.starts_with('b')),
            Some("b1")
        );
        assert_eq!(q.pop_wait(TICK), Some("a1"));
        assert_eq!(q.pop_wait(TICK), Some("a2"));
        assert_eq!(q.pop_wait(TICK), Some("b2"));
    }

    #[test]
    fn blocked_consumer_wakes_on_push() {
        let q = Arc::new(BoundedQueue::new(4));
        let q2 = Arc::clone(&q);
        let consumer =
            std::thread::spawn(move || q2.pop_wait(Duration::from_secs(5)).expect("woken"));
        std::thread::sleep(Duration::from_millis(10));
        q.push(42, Priority::Normal).unwrap();
        assert_eq!(consumer.join().unwrap(), 42);
    }

    /// Regression test for the lost-wakeup hazard: two consumers block on
    /// *disjoint* predicates; a push matching the second consumer must wake
    /// it even if the notification would previously have been consumed by
    /// the first (whose predicate does not match). With `notify_one` this
    /// failed intermittently — the matching consumer slept until its
    /// timeout; with `notify_all` every waiter re-checks its predicate.
    #[test]
    fn push_wakes_the_matching_predicate_consumer() {
        for _round in 0..20 {
            let q = Arc::new(BoundedQueue::new(8));
            let long = Duration::from_secs(10);
            let want_a = {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.pop_matching_wait(long, |&n: &u32| n < 100))
            };
            let want_b = {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.pop_matching_wait(long, |&n: &u32| n >= 100))
            };
            // Let both consumers park before the single push arrives.
            std::thread::sleep(Duration::from_millis(5));
            let t0 = Instant::now();
            q.push(100, Priority::Normal).unwrap();
            assert_eq!(want_b.join().unwrap(), Some(100), "matching consumer");
            assert!(
                t0.elapsed() < Duration::from_secs(5),
                "the matching consumer must wake promptly, not ride out its timeout"
            );
            q.close();
            assert_eq!(want_a.join().unwrap(), None, "non-matching consumer");
        }
    }

    #[test]
    fn timeout_returns_none_quickly() {
        let q: BoundedQueue<u8> = BoundedQueue::new(4);
        let t0 = Instant::now();
        assert!(q.pop_wait(Duration::from_millis(20)).is_none());
        assert!(t0.elapsed() < Duration::from_secs(2), "must not hang");
    }
}
