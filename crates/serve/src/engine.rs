//! The batched inference engine: admission control, per-model DRR
//! dispatch, deadline-aware coalescing, worker panic isolation, and
//! graceful degradation.
//!
//! # Lifecycle
//!
//! [`Engine::start`] spawns `workers` threads over a shared
//! [`DrrQueue`]: admission routes each request into its model's sub-queue
//! (strict priority lanes, FIFO within lane), and workers pop whole
//! batches scheduled by **deficit round-robin** — each model visit earns a
//! quantum of estimated MACs (`drr_quantum_macs`), carried as a deficit,
//! so every registered model gets a bounded share of batcher time under
//! saturation no matter how deep one hot model's backlog grows. After the
//! scheduled pop, the worker *coalesces*: it keeps popping requests for
//! the same model (charging the model's deficit, overdraft allowed) until
//! the batch reaches `max_batch` or the batch wait expires —
//! size-or-deadline flush. Expired or caller-cancelled requests are
//! dropped *before* kernel dispatch; live ones are stacked into one
//! tensor and run through the registry in eval mode.
//!
//! # Request timeouts
//!
//! [`Ticket::wait_timeout`] is a *cancellation* point: when the caller's
//! budget expires it resolves the ticket to
//! [`Rejection::DeadlineExceeded`] instead of abandoning the slot. The
//! queued job becomes a tombstone the worker discards at dispatch
//! (counted as `serve.ticket.abandoned` with a structured event), so no
//! result is ever silently computed for — or dropped on — a caller that
//! has given up.
//!
//! # Degradation ladder
//!
//! *Pressure* — queued **plus in-flight** work over queue capacity —
//! drives a four-level ladder, re-evaluated at every admission and flush
//! decision. (Queued-only occupancy under-reads immediately after a large
//! flush while the workers are still busy; folding in-flight batches in
//! keeps the ladder honest at saturation.)
//!
//! | level | pressure | effect |
//! |-------|----------|--------|
//! | 0     | < 50%    | normal batching |
//! | 1     | ≥ 50%    | batch wait shrinks to 1/4 (drain faster) |
//! | 2     | ≥ 75%    | + [`Priority::Low`] admissions shed |
//! | 3     | ≥ 90%    | + [`Priority::Normal`] shed; zero batch wait |
//! | —     | full queue | reject-fast: [`Rejection::QueueFull`] |
//!
//! Sheds and queue-full rejections carry a `retry_after` hint so
//! well-behaved clients can back off instead of hammering the queue.
//!
//! # Failure taxonomy
//!
//! Every submitted request resolves **exactly once**: either `Ok(output)`
//! or one typed [`Rejection`]. A worker panic (model bug, fault-injected
//! LUT, chaos hook) is caught with `catch_unwind`; the model entry is
//! rebuilt from its checkpoint by the registry, the batch's jobs are
//! requeued once (`max_retries`) and only rejected as
//! [`Rejection::WorkerPanicked`] if they panic again or no longer fit in
//! the queue. The worker itself never dies — an unexpected panic outside
//! the batch path is also caught and counted as a restart.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use appmult_nn::Tensor;

use crate::queue::{Priority, PushError};
use crate::registry::{ForwardError, Registry};
use crate::sched::DrrQueue;

/// Typed reason a request was not served. Every variant maps to a
/// `serve.reject.*` counter on the global obs sink.
#[derive(Debug, Clone, PartialEq)]
pub enum Rejection {
    /// The queue is at capacity; retry after the hint.
    QueueFull {
        /// Client back-off hint.
        retry_after: Duration,
    },
    /// Shed by the degradation ladder (priority too low for the current
    /// overload level); retry after the hint.
    Shed {
        /// Client back-off hint.
        retry_after: Duration,
    },
    /// The deadline expired — at admission, while queued, or in a batch
    /// before kernel dispatch. Expired work never reaches a kernel.
    DeadlineExceeded,
    /// No model of this name is registered (possibly evicted after
    /// admission).
    ModelUnloaded(String),
    /// The input failed validation (shape mismatch, or non-finite values
    /// with scrubbing disabled).
    InvalidInput(String),
    /// The request's batch panicked and exhausted its retry budget.
    WorkerPanicked,
    /// The engine is shutting down.
    ShuttingDown,
}

impl Rejection {
    /// The `serve.reject.*` counter this variant increments.
    pub fn counter_name(&self) -> &'static str {
        match self {
            Rejection::QueueFull { .. } => "serve.reject.queue_full",
            Rejection::Shed { .. } => "serve.reject.shed",
            Rejection::DeadlineExceeded => "serve.reject.deadline",
            Rejection::ModelUnloaded(_) => "serve.reject.model_unloaded",
            Rejection::InvalidInput(_) => "serve.reject.invalid_input",
            Rejection::WorkerPanicked => "serve.reject.worker_panic",
            Rejection::ShuttingDown => "serve.reject.shutting_down",
        }
    }

    /// Short stable label (JSON-friendly).
    pub fn label(&self) -> &'static str {
        match self {
            Rejection::QueueFull { .. } => "queue_full",
            Rejection::Shed { .. } => "shed",
            Rejection::DeadlineExceeded => "deadline",
            Rejection::ModelUnloaded(_) => "model_unloaded",
            Rejection::InvalidInput(_) => "invalid_input",
            Rejection::WorkerPanicked => "worker_panic",
            Rejection::ShuttingDown => "shutting_down",
        }
    }
}

impl std::fmt::Display for Rejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejection::QueueFull { retry_after } => {
                write!(f, "queue full (retry after {retry_after:?})")
            }
            Rejection::Shed { retry_after } => {
                write!(f, "shed under overload (retry after {retry_after:?})")
            }
            Rejection::DeadlineExceeded => write!(f, "deadline exceeded"),
            Rejection::ModelUnloaded(name) => write!(f, "model {name:?} not loaded"),
            Rejection::InvalidInput(why) => write!(f, "invalid input: {why}"),
            Rejection::WorkerPanicked => write!(f, "worker panicked"),
            Rejection::ShuttingDown => write!(f, "shutting down"),
        }
    }
}

impl std::error::Error for Rejection {}

/// What a request resolves to: the model output or a typed rejection.
pub type ServeResult = Result<Tensor, Rejection>;

/// An inference request for one sample.
#[derive(Debug, Clone)]
pub struct Request {
    /// Registry name of the target model.
    pub model: String,
    /// One sample, shaped exactly like the model's registered
    /// `input_shape` (no batch dimension — the engine batches).
    pub input: Tensor,
    /// Priority lane (default [`Priority::Normal`]).
    pub priority: Priority,
    /// Relative deadline from submission; `None` uses the engine's
    /// `default_deadline` (which may also be `None` = no deadline).
    pub deadline: Option<Duration>,
}

impl Request {
    /// A normal-priority request with no explicit deadline.
    pub fn new(model: impl Into<String>, input: Tensor) -> Self {
        Self {
            model: model.into(),
            input,
            priority: Priority::Normal,
            deadline: None,
        }
    }

    /// Sets the priority lane.
    #[must_use]
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Sets a relative deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// Shared slot a request resolves into (hand-rolled oneshot).
struct TicketState {
    slot: Mutex<Option<ServeResult>>,
    done: Condvar,
    /// Admission timestamp — both sides (worker resolve, caller
    /// cancellation) record latency against it.
    submitted: Instant,
}

impl TicketState {
    /// Resolves the slot exactly once, recording outcome counters and
    /// latency. Returns `false` (and touches nothing) if already resolved.
    fn resolve(&self, outcome: ServeResult) -> bool {
        let obs = appmult_obs::global();
        let mut slot = self.slot.lock().unwrap_or_else(PoisonError::into_inner);
        if slot.is_some() {
            return false;
        }
        let latency_us = self.submitted.elapsed().as_micros() as f64;
        match &outcome {
            Ok(_) => obs.observe("serve.latency.ok_us", latency_us),
            Err(rej) => {
                obs.counter_add(rej.counter_name(), 1);
                obs.observe("serve.latency.rejected_us", latency_us);
            }
        }
        *slot = Some(outcome);
        drop(slot);
        self.done.notify_all();
        true
    }

    /// Whether the slot already holds an outcome (a cancelled or resolved
    /// ticket — the worker discards such jobs before dispatch).
    fn is_resolved(&self) -> bool {
        self.slot
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .is_some()
    }
}

/// Caller-side handle to an admitted request. Wait on it for the outcome;
/// the engine guarantees it resolves exactly once.
pub struct Ticket {
    state: Arc<TicketState>,
    id: u64,
}

impl std::fmt::Debug for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket")
            .field("id", &self.id)
            .field("resolved", &self.try_get().is_some())
            .finish()
    }
}

impl Ticket {
    /// Request id (unique per engine).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Blocks until the request resolves.
    pub fn wait(&self) -> ServeResult {
        let mut slot = self
            .state
            .slot
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(outcome) = slot.as_ref() {
                return outcome.clone();
            }
            slot = self
                .state
                .done
                .wait(slot)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Blocks up to `timeout`. If the request is still unresolved when the
    /// budget expires, the ticket is **cancelled**: it resolves to
    /// [`Rejection::DeadlineExceeded`] right here (counted as
    /// `serve.ticket.cancelled`), and the queued job becomes a tombstone
    /// the worker discards before dispatch — the slot is never abandoned
    /// with a result silently computed for nobody. If the worker wins the
    /// race, its outcome is returned instead.
    pub fn wait_timeout(&self, timeout: Duration) -> ServeResult {
        let deadline = Instant::now() + timeout;
        let mut slot = self
            .state
            .slot
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(outcome) = slot.as_ref() {
                return outcome.clone();
            }
            let now = Instant::now();
            if now >= deadline {
                drop(slot);
                let outcome = Err(Rejection::DeadlineExceeded);
                if self.state.resolve(outcome.clone()) {
                    appmult_obs::global().counter_add("serve.ticket.cancelled", 1);
                    return outcome;
                }
                // The worker resolved in the race window: take its answer.
                return self.try_get().expect("slot just observed resolved");
            }
            let (guard, _) = self
                .state
                .done
                .wait_timeout(slot, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            slot = guard;
        }
    }

    /// Non-blocking poll.
    pub fn try_get(&self) -> Option<ServeResult> {
        self.state
            .slot
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }
}

/// A queued unit of work: one admitted request plus its bookkeeping.
struct Job {
    model: String,
    input: Tensor,
    priority: Priority,
    deadline: Option<Instant>,
    /// Estimated dispatch cost in MACs (the model's per-sample weight
    /// count) — the DRR scheduler's currency.
    cost: u64,
    retries: u32,
    ticket: Arc<TicketState>,
}

/// Engine tuning knobs. `Default` is sized for tests and small hosts;
/// `serve_bench` scales it up.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Bounded queue capacity across all priority lanes.
    pub queue_capacity: usize,
    /// Batcher/worker thread count.
    pub workers: usize,
    /// Maximum requests coalesced into one kernel batch.
    pub max_batch: usize,
    /// Longest a worker waits to fill a batch before flushing (shrunk by
    /// the degradation ladder).
    pub max_batch_wait: Duration,
    /// Deadline applied to requests that don't carry one (`None` = no
    /// deadline).
    pub default_deadline: Option<Duration>,
    /// Base back-off hint attached to `QueueFull` / `Shed` rejections.
    pub retry_after: Duration,
    /// How many times a job survives a worker panic by being requeued
    /// before it is rejected as `WorkerPanicked`.
    pub max_retries: u32,
    /// Replace non-finite input values with 0.0 (counted as
    /// `serve.input.scrubbed`) instead of rejecting the request.
    pub scrub_nonfinite: bool,
    /// Test/chaos hook: panic inside every Nth batch dispatch, exercising
    /// the requeue-or-reject and model rebuild paths deterministically.
    pub chaos_panic_every: Option<u64>,
    /// Idle worker poll interval (also the shutdown latency bound).
    pub poll_interval: Duration,
    /// DRR quantum: estimated MACs of batcher time each backlogged model
    /// earns per scheduler visit. Any positive value yields long-run
    /// fairness; sizing it near `max_batch x` a typical model's per-sample
    /// MACs keeps scheduled batches full-sized.
    pub drr_quantum_macs: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 256,
            workers: 2,
            max_batch: 32,
            max_batch_wait: Duration::from_millis(2),
            default_deadline: None,
            retry_after: Duration::from_millis(10),
            max_retries: 1,
            scrub_nonfinite: false,
            chaos_panic_every: None,
            poll_interval: Duration::from_millis(5),
            drr_quantum_macs: 4096,
        }
    }
}

impl EngineConfig {
    /// The batch policy as stable `(key, value)` pairs for self-describing
    /// result files (`results/*.json` headers).
    pub fn describe(&self) -> Vec<(&'static str, String)> {
        vec![
            ("queue_capacity", self.queue_capacity.to_string()),
            ("workers", self.workers.to_string()),
            ("max_batch", self.max_batch.to_string()),
            (
                "max_batch_wait_us",
                self.max_batch_wait.as_micros().to_string(),
            ),
            ("max_retries", self.max_retries.to_string()),
            ("scrub_nonfinite", self.scrub_nonfinite.to_string()),
            ("drr_quantum_macs", self.drr_quantum_macs.to_string()),
        ]
    }
}

struct Shared {
    registry: Arc<Registry>,
    queue: DrrQueue<Job>,
    cfg: EngineConfig,
    shutdown: AtomicBool,
    paused: Mutex<bool>,
    pause_cv: Condvar,
    next_id: AtomicU64,
    batches: AtomicU64,
    last_ladder: AtomicUsize,
    /// Requests popped from the queue but not yet resolved — the ladder's
    /// pressure signal counts these alongside queued items so it does not
    /// under-read right after a large flush.
    in_flight: AtomicUsize,
}

impl Shared {
    /// Pressure in `[0, 1+]`: queued **plus in-flight** work over queue
    /// capacity. The degradation ladder's input signal.
    fn pressure(&self) -> f64 {
        let load = self.queue.len() + self.in_flight.load(Ordering::Relaxed);
        load as f64 / self.queue.capacity() as f64
    }
}

/// The serving engine (see the module docs).
pub struct Engine {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Engine {
    /// Spawns the worker threads and returns the running engine.
    pub fn start(registry: Arc<Registry>, cfg: EngineConfig) -> Self {
        appmult_obs::global().event(
            "serve.engine.start",
            &[
                ("workers", (cfg.workers as u64).into()),
                ("queue_capacity", (cfg.queue_capacity as u64).into()),
                ("max_batch", (cfg.max_batch as u64).into()),
                (
                    "max_batch_wait_us",
                    (cfg.max_batch_wait.as_micros() as u64).into(),
                ),
                (
                    "pool_threads",
                    (appmult_pool::Pool::global().threads() as u64).into(),
                ),
            ],
        );
        let worker_count = cfg.workers.max(1);
        let queue = DrrQueue::new(cfg.queue_capacity, cfg.drr_quantum_macs);
        let shared = Arc::new(Shared {
            registry,
            queue,
            cfg,
            shutdown: AtomicBool::new(false),
            paused: Mutex::new(false),
            pause_cv: Condvar::new(),
            next_id: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            last_ladder: AtomicUsize::new(0),
            in_flight: AtomicUsize::new(0),
        });
        let workers = (0..worker_count)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_main(&shared))
                    .expect("spawn serve worker")
            })
            .collect();
        Self {
            shared,
            workers: Mutex::new(workers),
        }
    }

    /// Admission control: validate, maybe shed, and enqueue.
    ///
    /// # Errors
    ///
    /// Returns a [`Rejection`] immediately (without enqueueing) when the
    /// engine is shutting down, the model is unknown, the input is
    /// malformed, the deadline already expired, the degradation ladder
    /// sheds this priority, or the queue is full.
    pub fn submit(&self, request: Request) -> Result<Ticket, Rejection> {
        let obs = appmult_obs::global();
        let submitted = Instant::now();
        let s = &self.shared;
        let outcome = self.admit(request, submitted);
        match &outcome {
            Ok(_) => obs.counter_add("serve.admit.ok", 1),
            Err(rej) => {
                obs.counter_add(rej.counter_name(), 1);
                // Admission-to-rejection time: the "reject fast" bound.
                obs.observe(
                    "serve.latency.rejected_us",
                    submitted.elapsed().as_micros() as f64,
                );
            }
        }
        obs.gauge_set("serve.queue.depth", s.queue.len() as f64);
        outcome
    }

    fn admit(&self, request: Request, submitted: Instant) -> Result<Ticket, Rejection> {
        let s = &self.shared;
        let obs = appmult_obs::global();
        if s.shutdown.load(Ordering::SeqCst) {
            return Err(Rejection::ShuttingDown);
        }
        let expected = s
            .registry
            .input_shape(&request.model)
            .ok_or_else(|| Rejection::ModelUnloaded(request.model.clone()))?;
        if request.input.shape() != expected.as_slice() {
            return Err(Rejection::InvalidInput(format!(
                "shape {:?}, model {:?} expects {:?}",
                request.input.shape(),
                request.model,
                expected
            )));
        }
        let input = if request.input.as_slice().iter().all(|v| v.is_finite()) {
            request.input
        } else if s.cfg.scrub_nonfinite {
            let scrubbed: Vec<f32> = request
                .input
                .as_slice()
                .iter()
                .map(|&v| if v.is_finite() { v } else { 0.0 })
                .collect();
            obs.counter_add("serve.input.scrubbed", 1);
            Tensor::from_vec(scrubbed, &expected)
        } else {
            return Err(Rejection::InvalidInput(
                "non-finite values (NaN/Inf) in input".to_string(),
            ));
        };
        let deadline = request
            .deadline
            .or(s.cfg.default_deadline)
            .map(|d| submitted + d);
        if deadline.is_some_and(|d| d <= Instant::now()) {
            return Err(Rejection::DeadlineExceeded);
        }
        let level = self.refresh_ladder();
        let shed = match request.priority {
            Priority::Low => level >= 2,
            Priority::Normal => level >= 3,
            Priority::High => false,
        };
        if shed {
            return Err(Rejection::Shed {
                retry_after: s.cfg.retry_after,
            });
        }
        let state = Arc::new(TicketState {
            slot: Mutex::new(None),
            done: Condvar::new(),
            submitted,
        });
        let id = s.next_id.fetch_add(1, Ordering::Relaxed);
        let cost = s.registry.macs_per_sample(&request.model).unwrap_or(1);
        let model = request.model;
        let job = Job {
            model: model.clone(),
            input,
            priority: request.priority,
            deadline,
            cost,
            retries: 0,
            ticket: Arc::clone(&state),
        };
        match s.queue.push(&model, job, cost, request.priority) {
            Ok(()) => Ok(Ticket { state, id }),
            Err((_, PushError::Full)) => Err(Rejection::QueueFull {
                retry_after: s.cfg.retry_after,
            }),
            Err((_, PushError::Closed)) => Err(Rejection::ShuttingDown),
        }
    }

    /// Recomputes the degradation-ladder level from pressure (queued +
    /// in-flight over capacity), updating the gauge and emitting a
    /// transition event on change.
    fn refresh_ladder(&self) -> usize {
        let s = &self.shared;
        let level = ladder_level(s.pressure());
        let prev = s.last_ladder.swap(level, Ordering::Relaxed);
        let obs = appmult_obs::global();
        obs.gauge_set("serve.ladder.level", level as f64);
        if prev != level {
            obs.event(
                "serve.ladder.transition",
                &[
                    ("from", (prev as u64).into()),
                    ("to", (level as u64).into()),
                ],
            );
        }
        level
    }

    /// Current queued request count.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.len()
    }

    /// Queue capacity.
    pub fn queue_capacity(&self) -> usize {
        self.shared.queue.capacity()
    }

    /// Requests popped by workers but not yet resolved.
    pub fn in_flight(&self) -> usize {
        self.shared.in_flight.load(Ordering::Relaxed)
    }

    /// The ladder's input signal: (queued + in-flight) / capacity.
    pub fn pressure(&self) -> f64 {
        self.shared.pressure()
    }

    /// Current degradation-ladder level (0 = normal … 3 = High-only).
    pub fn ladder_level(&self) -> usize {
        ladder_level(self.shared.pressure())
    }

    /// Test/bench hook: stop workers from popping new work (in-flight
    /// batches finish). Lets tests line up queued requests deterministically.
    pub fn pause(&self) {
        *self
            .shared
            .paused
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = true;
    }

    /// Releases [`pause`](Self::pause).
    pub fn resume(&self) {
        *self
            .shared
            .paused
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = false;
        self.shared.pause_cv.notify_all();
    }

    /// Stops admission, resolves every queued request as
    /// [`Rejection::ShuttingDown`], and joins the workers. Idempotent;
    /// also runs on drop. In-flight batches complete normally first.
    pub fn shutdown(&self) {
        let s = &self.shared;
        if s.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        s.queue.close();
        self.resume(); // wake paused workers so they can exit
        for job in s.queue.drain() {
            resolve(&job, Err(Rejection::ShuttingDown));
        }
        let handles: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.workers.lock().unwrap_or_else(PoisonError::into_inner));
        for h in handles {
            let _ = h.join();
        }
        appmult_obs::global().event("serve.engine.shutdown", &[]);
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Pressure → ladder level (see the module docs table).
fn ladder_level(pressure: f64) -> usize {
    if pressure >= 0.90 {
        3
    } else if pressure >= 0.75 {
        2
    } else if pressure >= 0.50 {
        1
    } else {
        0
    }
}

/// Worker-side resolve: exactly once, recording latency. Losing the race
/// to a caller cancellation (slot already holds `DeadlineExceeded`) means
/// the computed result had nobody to go to — counted and evented as
/// `serve.ticket.abandoned`, never silently dropped. Losing to anything
/// else is an engine bug, counted as `serve.ticket.double_resolve` (must
/// stay 0 — the property suite asserts it).
fn resolve(job: &Job, outcome: ServeResult) {
    if job.ticket.resolve(outcome) {
        return;
    }
    let obs = appmult_obs::global();
    if matches!(
        job.ticket
            .slot
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .as_ref(),
        Some(Err(Rejection::DeadlineExceeded))
    ) {
        obs.counter_add("serve.ticket.abandoned", 1);
        obs.event("serve.ticket.abandoned", &[("in_flight", 1u64.into())]);
    } else {
        obs.counter_add("serve.ticket.double_resolve", 1);
    }
}

/// Worker thread body: pop → coalesce → dispatch, forever. The batch path
/// is wrapped in `catch_unwind`; a panic that somehow escapes it is caught
/// here too and counted as a restart, so a worker thread never dies.
fn worker_main(shared: &Arc<Shared>) {
    loop {
        let done = catch_unwind(AssertUnwindSafe(|| worker_loop(shared)));
        match done {
            Ok(()) => return, // clean shutdown
            Err(_) => {
                let obs = appmult_obs::global();
                obs.counter_add("serve.worker.restarts", 1);
                obs.event("serve.worker.restart", &[]);
            }
        }
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    let s = shared;
    loop {
        wait_while_paused(s);
        if s.shutdown.load(Ordering::SeqCst) && s.queue.is_empty() {
            return;
        }
        let Some((model, seed)) = s.queue.pop_batch_wait(s.cfg.poll_interval, s.cfg.max_batch)
        else {
            if s.queue.is_closed() && s.queue.is_empty() {
                return;
            }
            continue;
        };
        s.in_flight.fetch_add(seed.len(), Ordering::Relaxed);
        let batch = coalesce(s, &model, seed);
        let obs = appmult_obs::global();
        obs.gauge_set("serve.queue.depth", s.queue.len() as f64);
        obs.gauge_set("serve.inflight", s.in_flight.load(Ordering::Relaxed) as f64);
        process_batch(s, &model, batch);
    }
}

fn wait_while_paused(s: &Shared) {
    let mut paused = s.paused.lock().unwrap_or_else(PoisonError::into_inner);
    while *paused && !s.shutdown.load(Ordering::SeqCst) {
        paused = s
            .pause_cv
            .wait(paused)
            .unwrap_or_else(PoisonError::into_inner);
    }
}

/// Size-or-deadline top-up on the DRR-scheduled seed batch: keep pulling
/// requests *for the same model* (charging its deficit, overdraft allowed)
/// until the batch is full or the (ladder-shrunk) wait expires. Other
/// models' sub-queues are untouched — sibling workers schedule them.
fn coalesce(s: &Shared, model: &str, seed: Vec<Job>) -> Vec<Job> {
    let mut batch = seed;
    let started = Instant::now();
    while batch.len() < s.cfg.max_batch {
        let wait = batch_wait(s);
        let elapsed = started.elapsed();
        if elapsed >= wait {
            break;
        }
        let room = s.cfg.max_batch - batch.len();
        let more = s.queue.pop_model_wait(model, wait - elapsed, room);
        if more.is_empty() {
            break;
        }
        s.in_flight.fetch_add(more.len(), Ordering::Relaxed);
        batch.extend(more);
    }
    batch
}

/// The ladder-adjusted batch wait: full at level 0, quartered at level 1,
/// zero (flush immediately) at level 2+.
fn batch_wait(s: &Shared) -> Duration {
    match ladder_level(s.pressure()) {
        0 => s.cfg.max_batch_wait,
        1 => s.cfg.max_batch_wait / 4,
        _ => Duration::ZERO,
    }
}

fn process_batch(s: &Arc<Shared>, model: &str, jobs: Vec<Job>) {
    let obs = appmult_obs::global();
    let popped = jobs.len();
    // Tombstone gate: jobs whose caller already cancelled (the ticket is
    // resolved) are discarded before any work happens on their behalf.
    let (jobs, cancelled): (Vec<Job>, Vec<Job>) =
        jobs.into_iter().partition(|j| !j.ticket.is_resolved());
    if !cancelled.is_empty() {
        obs.counter_add("serve.ticket.abandoned", cancelled.len() as u64);
        obs.event(
            "serve.ticket.abandoned",
            &[("pre_dispatch", (cancelled.len() as u64).into())],
        );
    }
    let now = Instant::now();
    // Deadline gate: expired requests never reach a kernel.
    let (live, expired): (Vec<Job>, Vec<Job>) = jobs
        .into_iter()
        .partition(|j| j.deadline.is_none_or(|d| d > now));
    for job in &expired {
        obs.counter_add("serve.deadline.dropped_pre_dispatch", 1);
        resolve(job, Err(Rejection::DeadlineExceeded));
    }
    if live.is_empty() {
        s.in_flight.fetch_sub(popped, Ordering::Relaxed);
        return;
    }
    obs.observe("serve.batch.size", live.len() as f64);
    if obs.is_enabled() {
        obs.counter_add(&format!("serve.model.batches.{model}"), 1);
    }
    let batch_no = s.batches.fetch_add(1, Ordering::Relaxed) + 1;

    let result = catch_unwind(AssertUnwindSafe(|| {
        if let Some(every) = s.cfg.chaos_panic_every {
            assert!(
                !batch_no.is_multiple_of(every),
                "chaos: injected worker panic"
            );
        }
        obs.counter_add("serve.batch.jobs_dispatched", live.len() as u64);
        let stacked = stack_inputs(&live);
        s.registry.forward_batch(model, &stacked)
    }));

    match result {
        Ok(Ok(output)) => match split_outputs(&output, live.len()) {
            Some(outputs) => {
                for (job, out) in live.iter().zip(outputs) {
                    resolve(job, Ok(out));
                }
            }
            None => {
                let why = format!(
                    "model {:?} returned shape {:?} for a batch of {}",
                    model,
                    output.shape(),
                    live.len()
                );
                for job in &live {
                    resolve(job, Err(Rejection::InvalidInput(why.clone())));
                }
            }
        },
        Ok(Err(ForwardError::Unloaded(name))) => {
            for job in &live {
                resolve(job, Err(Rejection::ModelUnloaded(name.clone())));
            }
        }
        Ok(Err(ForwardError::Panicked)) | Err(_) => handle_panicked_batch(s, live),
    }
    s.in_flight.fetch_sub(popped, Ordering::Relaxed);
}

/// Requeue-or-reject after a worker panic: each job goes back to its lane
/// (at the back — order across a panic is not preserved, existence is)
/// unless it has exhausted its retries or no longer fits.
fn handle_panicked_batch(s: &Shared, jobs: Vec<Job>) {
    let obs = appmult_obs::global();
    obs.counter_add("serve.worker.panics", 1);
    obs.event(
        "serve.worker.panic",
        &[("jobs", (jobs.len() as u64).into())],
    );
    for mut job in jobs {
        if job.retries < s.cfg.max_retries {
            job.retries += 1;
            let model = job.model.clone();
            let cost = job.cost;
            let priority = job.priority;
            match s.queue.push(&model, job, cost, priority) {
                Ok(()) => obs.counter_add("serve.batch.requeued", 1),
                Err((job, _)) => resolve(&job, Err(Rejection::WorkerPanicked)),
            }
        } else {
            resolve(&job, Err(Rejection::WorkerPanicked));
        }
    }
}

/// Stacks per-sample inputs into one `[n, ...sample_shape]` tensor.
fn stack_inputs(jobs: &[Job]) -> Tensor {
    let sample_shape = jobs[0].input.shape();
    let mut shape = Vec::with_capacity(sample_shape.len() + 1);
    shape.push(jobs.len());
    shape.extend_from_slice(sample_shape);
    let mut data = Vec::with_capacity(jobs.len() * jobs[0].input.len());
    for job in jobs {
        data.extend_from_slice(job.input.as_slice());
    }
    Tensor::from_vec(data, &shape)
}

/// Splits a `[n, ...]` output back into `n` per-sample tensors; `None` if
/// the model did not preserve the batch dimension.
fn split_outputs(output: &Tensor, n: usize) -> Option<Vec<Tensor>> {
    if output.shape().first() != Some(&n) || n == 0 {
        return None;
    }
    let sample_shape: Vec<usize> = output.shape()[1..].to_vec();
    let row = output.len() / n;
    let data = output.as_slice();
    Some(
        (0..n)
            .map(|i| Tensor::from_vec(data[i * row..(i + 1) * row].to_vec(), &sample_shape))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::ModelSpec;
    use appmult_nn::layers::{Linear, Relu, Sequential};

    fn tiny_registry() -> Arc<Registry> {
        let reg = Arc::new(Registry::new(4));
        reg.load(ModelSpec::new(
            "tiny",
            vec![4],
            Arc::new(|_| {
                Sequential::new()
                    .push(Linear::new(4, 2, 42))
                    .push(Relu::new())
            }),
        ))
        .unwrap();
        reg
    }

    fn sample(v: f32) -> Tensor {
        Tensor::from_vec(vec![v; 4], &[4])
    }

    /// Pauses and waits out the poll interval, so every worker is parked
    /// on the pause condvar before the test lines up queued requests.
    fn pause_settled(engine: &Engine) {
        engine.pause();
        std::thread::sleep(engine.shared.cfg.poll_interval * 5);
    }

    #[test]
    fn serves_a_request_end_to_end() {
        let engine = Engine::start(tiny_registry(), EngineConfig::default());
        let ticket = engine.submit(Request::new("tiny", sample(0.5))).unwrap();
        let out = ticket.wait().expect("served");
        assert_eq!(out.shape(), &[2]);
        engine.shutdown();
    }

    #[test]
    fn batched_results_match_single_requests() {
        let reg = tiny_registry();
        let engine = Engine::start(Arc::clone(&reg), EngineConfig::default());
        let tickets: Vec<Ticket> = (0..8)
            .map(|i| {
                engine
                    .submit(Request::new("tiny", sample(i as f32 * 0.1)))
                    .unwrap()
            })
            .collect();
        for (i, t) in tickets.iter().enumerate() {
            let got = t.wait().expect("served");
            let solo = reg
                .forward_batch("tiny", &Tensor::from_vec(vec![i as f32 * 0.1; 4], &[1, 4]))
                .unwrap();
            assert_eq!(got.as_slice(), &solo.as_slice()[..2], "request {i}");
        }
        engine.shutdown();
    }

    #[test]
    fn rejects_unknown_model_and_bad_shapes() {
        let engine = Engine::start(tiny_registry(), EngineConfig::default());
        assert!(matches!(
            engine.submit(Request::new("nope", sample(0.0))),
            Err(Rejection::ModelUnloaded(_))
        ));
        let wrong = Tensor::from_vec(vec![0.0; 3], &[3]);
        assert!(matches!(
            engine.submit(Request::new("tiny", wrong)),
            Err(Rejection::InvalidInput(_))
        ));
        engine.shutdown();
    }

    #[test]
    fn nan_inputs_reject_or_scrub_by_config() {
        let nan = Tensor::from_vec(vec![0.1, f32::NAN, 0.3, f32::INFINITY], &[4]);
        let engine = Engine::start(tiny_registry(), EngineConfig::default());
        assert!(matches!(
            engine.submit(Request::new("tiny", nan.clone())),
            Err(Rejection::InvalidInput(_))
        ));
        engine.shutdown();

        let cfg = EngineConfig {
            scrub_nonfinite: true,
            ..EngineConfig::default()
        };
        let engine = Engine::start(tiny_registry(), cfg);
        let ticket = engine.submit(Request::new("tiny", nan)).unwrap();
        let out = ticket.wait().expect("scrubbed input must serve");
        assert!(out.as_slice().iter().all(|v| v.is_finite()));
        engine.shutdown();
    }

    #[test]
    fn expired_deadline_rejects_at_admission() {
        let engine = Engine::start(tiny_registry(), EngineConfig::default());
        let req = Request::new("tiny", sample(0.0)).with_deadline(Duration::ZERO);
        assert_eq!(engine.submit(req).unwrap_err(), Rejection::DeadlineExceeded);
        engine.shutdown();
    }

    #[test]
    fn queued_requests_resolve_as_shutting_down() {
        let engine = Engine::start(tiny_registry(), EngineConfig::default());
        pause_settled(&engine);
        let tickets: Vec<Ticket> = (0..4)
            .map(|_| engine.submit(Request::new("tiny", sample(1.0))).unwrap())
            .collect();
        engine.shutdown();
        for t in tickets {
            match t.wait() {
                Err(Rejection::ShuttingDown) | Ok(_) => {}
                other => panic!("unexpected outcome: {other:?}"),
            }
        }
        assert!(matches!(
            engine.submit(Request::new("tiny", sample(1.0))),
            Err(Rejection::ShuttingDown)
        ));
    }

    #[test]
    fn chaos_panic_requeues_and_recovers() {
        let cfg = EngineConfig {
            workers: 1,
            chaos_panic_every: Some(2),
            ..EngineConfig::default()
        };
        let engine = Engine::start(tiny_registry(), cfg);
        let tickets: Vec<Ticket> = (0..12)
            .map(|i| {
                engine
                    .submit(Request::new("tiny", sample(i as f32)))
                    .unwrap()
            })
            .collect();
        let mut served = 0;
        let mut panicked = 0;
        for t in tickets {
            match t.wait() {
                Ok(_) => served += 1,
                Err(Rejection::WorkerPanicked) => panicked += 1,
                Err(other) => panic!("unexpected rejection: {other}"),
            }
        }
        assert_eq!(served + panicked, 12, "every request resolved");
        assert!(served > 0, "engine recovered between chaos panics");
        engine.shutdown();
    }

    #[test]
    fn ladder_sheds_low_priority_under_overload() {
        let cfg = EngineConfig {
            queue_capacity: 8,
            workers: 1,
            ..EngineConfig::default()
        };
        let engine = Engine::start(tiny_registry(), cfg);
        pause_settled(&engine);
        // Fill to 75%+ occupancy: Low must now shed, High still admits.
        for _ in 0..6 {
            engine
                .submit(Request::new("tiny", sample(0.0)))
                .expect("below capacity");
        }
        assert!(
            engine.ladder_level() >= 2,
            "level {}",
            engine.ladder_level()
        );
        let low = Request::new("tiny", sample(0.0)).with_priority(Priority::Low);
        assert!(matches!(engine.submit(low), Err(Rejection::Shed { .. })));
        let high = Request::new("tiny", sample(0.0)).with_priority(Priority::High);
        engine.submit(high).expect("high admits at level 2");
        // Fill the rest: queue-full is the final answer.
        let mut saw_full = false;
        for _ in 0..4 {
            let high = Request::new("tiny", sample(0.0)).with_priority(Priority::High);
            if matches!(engine.submit(high), Err(Rejection::QueueFull { .. })) {
                saw_full = true;
            }
        }
        assert!(saw_full, "saturated queue must reject fast");
        engine.resume();
        engine.shutdown();
    }

    #[test]
    fn unloading_mid_flight_resolves_not_hangs() {
        let reg = tiny_registry();
        let engine = Engine::start(Arc::clone(&reg), EngineConfig::default());
        pause_settled(&engine);
        let tickets: Vec<Ticket> = (0..4)
            .map(|_| engine.submit(Request::new("tiny", sample(0.2))).unwrap())
            .collect();
        reg.unload("tiny");
        engine.resume();
        for t in tickets {
            match t.wait_timeout(Duration::from_secs(10)) {
                Err(Rejection::ModelUnloaded(_)) | Ok(_) => {}
                other => panic!("unexpected outcome: {other:?}"),
            }
        }
        engine.shutdown();
    }

    /// Caller-side cancellation: a `wait_timeout` that expires resolves
    /// the ticket to `DeadlineExceeded` right there, and the worker
    /// discards the tombstoned job before dispatch — no silent result
    /// drop, no abandoned slot.
    #[test]
    fn wait_timeout_cancels_the_queued_request() {
        let engine = Engine::start(tiny_registry(), EngineConfig::default());
        pause_settled(&engine);
        let ticket = engine.submit(Request::new("tiny", sample(0.3))).unwrap();
        let outcome = ticket.wait_timeout(Duration::from_millis(20));
        assert_eq!(outcome, Err(Rejection::DeadlineExceeded));
        // The outcome is sticky: later polls see the cancellation.
        assert_eq!(
            ticket.try_get(),
            Some(Err(Rejection::DeadlineExceeded)),
            "cancellation must resolve the slot, not abandon it"
        );
        engine.resume();
        // A fresh request on the same engine still serves: the tombstone
        // was discarded, the worker did not wedge on it.
        let t2 = engine.submit(Request::new("tiny", sample(0.4))).unwrap();
        assert!(t2.wait_timeout(Duration::from_secs(10)).is_ok());
        engine.shutdown();
    }

    /// Pressure counts in-flight work: with the queue drained but a batch
    /// still executing, the ladder must not read zero.
    #[test]
    fn pressure_counts_in_flight_batches() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Barrier;

        struct Gate {
            inner: Linear,
            entered: Arc<Barrier>,
            release: Arc<Barrier>,
            armed: Arc<AtomicBool>,
        }
        impl appmult_nn::Module for Gate {
            fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
                if self.armed.swap(false, Ordering::SeqCst) {
                    self.entered.wait();
                    self.release.wait();
                }
                self.inner.forward(input, train)
            }
            fn backward(&mut self, grad: &Tensor) -> Tensor {
                self.inner.backward(grad)
            }
            fn visit_params(&mut self, visit: &mut dyn FnMut(&mut appmult_nn::Parameter)) {
                self.inner.visit_params(visit);
            }
        }

        let entered = Arc::new(Barrier::new(2));
        let release = Arc::new(Barrier::new(2));
        let armed = Arc::new(AtomicBool::new(true));
        let reg = Arc::new(Registry::new(4));
        let (e2, r2, a2) = (
            Arc::clone(&entered),
            Arc::clone(&release),
            Arc::clone(&armed),
        );
        reg.load(ModelSpec::new(
            "gate",
            vec![4],
            Arc::new(move |_| {
                Sequential::new().push(Gate {
                    inner: Linear::new(4, 2, 7),
                    entered: Arc::clone(&e2),
                    release: Arc::clone(&r2),
                    armed: Arc::clone(&a2),
                })
            }),
        ))
        .unwrap();

        let cfg = EngineConfig {
            queue_capacity: 4,
            workers: 1,
            ..EngineConfig::default()
        };
        let engine = Engine::start(reg, cfg);
        let ticket = engine.submit(Request::new("gate", sample(1.0))).unwrap();
        // The worker is now inside the forward pass, queue empty.
        entered.wait();
        assert_eq!(engine.queue_depth(), 0, "batch was popped");
        assert_eq!(engine.in_flight(), 1);
        assert!(
            engine.pressure() > 0.0,
            "in-flight work must keep pressure above zero after a flush"
        );
        release.wait();
        assert!(ticket.wait_timeout(Duration::from_secs(10)).is_ok());
        // Poll briefly: in-flight drops back to zero once the batch lands.
        let t0 = Instant::now();
        while engine.in_flight() != 0 && t0.elapsed() < Duration::from_secs(5) {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(engine.in_flight(), 0);
        engine.shutdown();
    }
}
