//! Overload-hardened batched inference over the LUT-GEMM stack.
//!
//! The ROADMAP's serving half: a long-lived layer that loads retrained
//! checkpoints and product LUTs **once** and coalesces concurrent requests
//! into batches sized for the tiled kernels, while staying predictable
//! under overload. Three pieces:
//!
//! * [`Registry`] — models (checkpoint bytes + live instance + poisoned
//!   rebuild path) and a shared [`LutCache`] with LRU eviction;
//! * [`BoundedQueue`] — a zero-dep bounded MPMC priority queue
//!   (FIFO-within-priority, non-blocking producers);
//! * [`Engine`] — admission control with typed [`Rejection`]s, per-request
//!   deadlines enforced *before* kernel dispatch, size-or-deadline
//!   batching, worker panic isolation with requeue-or-reject, and a
//!   degradation ladder (shrink batch wait → shed low priority →
//!   reject-fast with `Retry-After` hints).
//!
//! Everything is instrumented through `appmult-obs`: queue-depth and
//! ladder gauges, admission/shed/deadline counters, batch-size and
//! latency histograms. See `DESIGN.md` §12 for the architecture and the
//! `serve_bench` binary in `appmult-bench` for an open-loop load driver.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use appmult_nn::layers::{Linear, Relu, Sequential};
//! use appmult_nn::Tensor;
//! use appmult_serve::{Engine, EngineConfig, ModelSpec, Registry, Request};
//!
//! let registry = Arc::new(Registry::new(4));
//! registry
//!     .load(ModelSpec {
//!         name: "demo".into(),
//!         input_shape: vec![8],
//!         factory: Arc::new(|| {
//!             Sequential::new().push(Linear::new(8, 2, 1)).push(Relu::new())
//!         }),
//!     })
//!     .unwrap();
//! let engine = Engine::start(registry, EngineConfig::default());
//! let ticket = engine
//!     .submit(Request::new("demo", Tensor::from_vec(vec![0.1; 8], &[8])))
//!     .unwrap();
//! let output = ticket.wait().expect("served");
//! assert_eq!(output.shape(), &[2]);
//! engine.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod queue;
mod registry;

pub use engine::{Engine, EngineConfig, Rejection, Request, ServeResult, Ticket};
pub use queue::{BoundedQueue, Priority, PushError};
pub use registry::{ForwardError, LutCache, ModelFactory, ModelSpec, Registry};
