//! Overload-hardened batched inference over the LUT-GEMM stack.
//!
//! The ROADMAP's serving half: a long-lived layer that loads retrained
//! checkpoints and product LUTs **once** and coalesces concurrent requests
//! into batches sized for the tiled kernels, while staying predictable
//! under overload. Four pieces:
//!
//! * [`Registry`] — models (checkpoint bytes + live instance + poisoned
//!   rebuild path) and a shared [`LutCache`] with LRU eviction, with warm
//!   LUT **prefetch** on load so a cold model's first batch never pays the
//!   LUT build inside the dispatch path;
//! * [`DrrQueue`] — per-model sub-queues (strict priority lanes, FIFO
//!   within lane) scheduled by **deficit round-robin** in estimated MACs,
//!   so one hot model cannot starve coalescing for every other model;
//! * [`BoundedQueue`] — the zero-dep bounded MPMC priority queue the DRR
//!   scheduler grew out of, kept as a standalone building block;
//! * [`Engine`] — admission control with typed [`Rejection`]s, per-request
//!   deadlines enforced *before* kernel dispatch, caller-side cancellation
//!   via [`Ticket::wait_timeout`], size-or-deadline batching, worker panic
//!   isolation with requeue-or-reject, and a degradation ladder driven by
//!   queued **plus in-flight** pressure (shrink batch wait → shed low
//!   priority → reject-fast with `Retry-After` hints).
//!
//! Everything is instrumented through `appmult-obs`: queue-depth,
//! in-flight and ladder gauges, per-model deficit/starvation telemetry,
//! admission/shed/deadline/cancellation counters, batch-size and latency
//! histograms. See `DESIGN.md` §12 for the architecture and the
//! `serve_bench` binary in `appmult-bench` for an open-loop load driver
//! with a multi-model fairness phase.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use appmult_nn::layers::{Linear, Relu, Sequential};
//! use appmult_nn::Tensor;
//! use appmult_serve::{Engine, EngineConfig, ModelSpec, Registry, Request};
//!
//! let registry = Arc::new(Registry::new(4));
//! registry
//!     .load(ModelSpec::new(
//!         "demo",
//!         vec![8],
//!         Arc::new(|_luts| {
//!             Sequential::new().push(Linear::new(8, 2, 1)).push(Relu::new())
//!         }),
//!     ))
//!     .unwrap();
//! let engine = Engine::start(registry, EngineConfig::default());
//! let ticket = engine
//!     .submit(Request::new("demo", Tensor::from_vec(vec![0.1; 8], &[8])))
//!     .unwrap();
//! let output = ticket.wait().expect("served");
//! assert_eq!(output.shape(), &[2]);
//! engine.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod queue;
mod registry;
mod sched;

pub use engine::{Engine, EngineConfig, Rejection, Request, ServeResult, Ticket};
pub use queue::{BoundedQueue, Priority, PushError};
pub use registry::{
    ForwardError, LutBuilder, LutCache, LutHandle, ModelFactory, ModelSpec, Registry,
};
pub use sched::DrrQueue;
