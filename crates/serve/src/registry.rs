//! Model registry: checkpoints, live model instances, and a shared LUT
//! cache with LRU eviction.
//!
//! Each registered model is built **once** from its factory, its parameters
//! are captured as canonical checkpoint bytes (the `appmult-nn` `APMT`
//! format), and the live instance is shared behind a `Mutex` — the layers'
//! forward pass mutates internal GEMM caches, so inference needs exclusive
//! access per batch. A worker panic inside `forward` marks the entry
//! *poisoned*; the next batch transparently rebuilds the instance from
//! `factory + checkpoint` before running, so one bad batch cannot wedge a
//! model forever.
//!
//! Product/gradient LUT pairs are expensive to build (exhaustive `2^B x 2^B`
//! simulation) and often shared by many models, so the registry also hosts a
//! keyed [`LutCache`] with LRU eviction and hit/miss/eviction counters on
//! the global `appmult-obs` sink.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use appmult_mult::MultiplierLut;
use appmult_nn::layers::Sequential;
use appmult_nn::serialize::{load_params, save_params};
use appmult_nn::{Module, Tensor};
use appmult_retrain::GradientLut;

/// Builds a fresh, uninitialized instance of a model architecture. Called
/// once at [`Registry::load`] and again on the poisoned-model rebuild path.
///
/// The factory receives a [`LutHandle`] onto the registry's shared LUT
/// cache, so models that need product/gradient LUT pairs fetch them
/// read-through — warm after [`Registry::load`] (which runs the spec's
/// prefetch list *and* this factory once, off the dispatch path), and warm
/// again on the poisoned rebuild. Factories that build no LUTs ignore the
/// argument (`Arc::new(|_| ...)`).
pub type ModelFactory = Arc<dyn Fn(&LutHandle<'_>) -> Sequential + Send + Sync>;

/// Builds one product/gradient LUT pair for the cache — the expensive
/// `2^B x 2^B` exhaustive simulation that must never run inside the batch
/// dispatch path.
pub type LutBuilder = Arc<dyn Fn() -> (MultiplierLut, GradientLut) + Send + Sync>;

/// Everything needed to register a model.
pub struct ModelSpec {
    /// Registry key (also the name requests address).
    pub name: String,
    /// Per-sample input shape (without the batch dimension); admission
    /// control validates every request against it.
    pub input_shape: Vec<usize>,
    /// Architecture builder; its parameters become the checkpoint.
    pub factory: ModelFactory,
    /// LUT pairs to warm into the cache *before* the factory first runs —
    /// [`Registry::load`] builds these eagerly (counted as
    /// `serve.lut.prefetch`) so a cold model's first batch never pays a
    /// LUT build inside the dispatch path.
    pub prefetch: Vec<(String, LutBuilder)>,
}

impl ModelSpec {
    /// A spec with no LUT prefetch list.
    pub fn new(name: impl Into<String>, input_shape: Vec<usize>, factory: ModelFactory) -> Self {
        Self {
            name: name.into(),
            input_shape,
            factory,
            prefetch: Vec::new(),
        }
    }

    /// Adds a LUT pair to warm at load time (keyed like [`Registry::lut`]).
    #[must_use]
    pub fn with_prefetch(mut self, key: impl Into<String>, build: LutBuilder) -> Self {
        self.prefetch.push((key.into(), build));
        self
    }
}

/// Why a batch could not be run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ForwardError {
    /// No model with that name is registered (it may have been evicted
    /// between admission and dispatch).
    Unloaded(String),
    /// The model panicked on this batch. The entry is marked poisoned and
    /// will be rebuilt from its checkpoint before the next batch.
    Panicked,
}

struct ModelEntry {
    input_shape: Vec<usize>,
    factory: ModelFactory,
    /// Canonical `APMT` parameter bytes captured at load time.
    checkpoint: Vec<u8>,
    /// Estimated MACs one sample costs through this model (weight-element
    /// count of the built instance, clamped to at least 1) — the DRR
    /// scheduler's per-job cost unit.
    macs_per_sample: u64,
    model: Mutex<Sequential>,
    /// Set when `forward` panicked; cleared by the rebuild path.
    poisoned: AtomicBool,
}

/// Shared LUT store with LRU eviction (see the module docs).
pub struct LutCache {
    capacity: usize,
    clock: u64,
    entries: Vec<LutEntry>,
}

struct LutEntry {
    key: String,
    lut: Arc<MultiplierLut>,
    grads: Arc<GradientLut>,
    last_use: u64,
}

impl LutCache {
    /// A cache keeping at most `capacity` LUT pairs (clamped to at least 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            clock: 0,
            entries: Vec::new(),
        }
    }

    /// Returns the pair under `key`, building (and possibly evicting the
    /// least-recently-used pair) on a miss. Hits, misses, and evictions are
    /// counted on the global obs sink (`serve.lut.*`).
    pub fn get_or_build<F>(&mut self, key: &str, build: F) -> (Arc<MultiplierLut>, Arc<GradientLut>)
    where
        F: FnOnce() -> (MultiplierLut, GradientLut),
    {
        let obs = appmult_obs::global();
        self.clock += 1;
        if let Some(e) = self.entries.iter_mut().find(|e| e.key == key) {
            e.last_use = self.clock;
            obs.counter_add("serve.lut.hits", 1);
            return (Arc::clone(&e.lut), Arc::clone(&e.grads));
        }
        obs.counter_add("serve.lut.misses", 1);
        if self.entries.len() >= self.capacity {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_use)
                .map(|(i, _)| i)
                .expect("non-empty at capacity");
            let evicted = self.entries.swap_remove(lru);
            obs.counter_add("serve.lut.evictions", 1);
            obs.event(
                "serve.lut.evict",
                &[("key", evicted.key.as_str().into()), ("for", key.into())],
            );
        }
        let (lut, grads) = build();
        let (lut, grads) = (Arc::new(lut), Arc::new(grads));
        self.entries.push(LutEntry {
            key: key.to_string(),
            lut: Arc::clone(&lut),
            grads: Arc::clone(&grads),
            last_use: self.clock,
        });
        (lut, grads)
    }

    /// Number of cached pairs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Read-through view onto the registry's shared [`LutCache`], handed to
/// [`ModelFactory`] closures so model construction fetches LUT pairs from
/// the same cache the prefetch path warms — without the factory holding an
/// `Arc<Registry>` (which would cycle: the registry owns the factory).
pub struct LutHandle<'a> {
    luts: &'a Mutex<LutCache>,
}

impl LutHandle<'_> {
    /// Returns the pair under `key`, building on a miss — identical
    /// semantics (and counters) to [`Registry::lut`].
    pub fn get<F>(&self, key: &str, build: F) -> (Arc<MultiplierLut>, Arc<GradientLut>)
    where
        F: FnOnce() -> (MultiplierLut, GradientLut),
    {
        self.luts
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get_or_build(key, build)
    }
}

/// The model registry (see the module docs). Cheap to share: wrap in an
/// [`Arc`] and hand clones to the engine's workers.
pub struct Registry {
    models: Mutex<HashMap<String, Arc<ModelEntry>>>,
    luts: Mutex<LutCache>,
}

impl Registry {
    /// An empty registry whose LUT cache keeps `lut_capacity` pairs.
    pub fn new(lut_capacity: usize) -> Self {
        Self {
            models: Mutex::new(HashMap::new()),
            luts: Mutex::new(LutCache::new(lut_capacity)),
        }
    }

    /// Warms the spec's prefetch LUTs, builds the model once, captures its
    /// parameters as the checkpoint, estimates its per-sample MAC cost,
    /// and registers it (replacing any previous model of the same name).
    ///
    /// Every expensive build — the prefetch list *and* whatever LUTs the
    /// factory fetches through its [`LutHandle`] — happens here, at load
    /// time, so a cold model's first batch never pays a LUT build inside
    /// the dispatch path.
    ///
    /// # Errors
    ///
    /// Propagates serialization errors from the checkpoint capture.
    pub fn load(&self, spec: ModelSpec) -> std::io::Result<()> {
        let obs = appmult_obs::global();
        for (key, build) in &spec.prefetch {
            let _ = self.lut(key, || build());
            obs.counter_add("serve.lut.prefetch", 1);
            obs.event("serve.lut.prefetch", &[("key", key.as_str().into())]);
        }
        let mut model = (spec.factory)(&self.lut_handle());
        let mut checkpoint = Vec::new();
        save_params(&mut model, &mut checkpoint)?;
        let mut weight_elems = 0u64;
        model.visit_params(&mut |p| {
            if p.decay {
                weight_elems += p.value.len() as u64;
            }
        });
        let entry = Arc::new(ModelEntry {
            input_shape: spec.input_shape,
            factory: spec.factory,
            checkpoint,
            macs_per_sample: weight_elems.max(1),
            model: Mutex::new(model),
            poisoned: AtomicBool::new(false),
        });
        self.lock_models().insert(spec.name.clone(), entry);
        appmult_obs::global().event("serve.model.load", &[("name", spec.name.into())]);
        Ok(())
    }

    /// Removes a model; queued requests for it resolve as `ModelUnloaded`
    /// at dispatch time. Returns whether the name was registered.
    pub fn unload(&self, name: &str) -> bool {
        let removed = self.lock_models().remove(name).is_some();
        if removed {
            appmult_obs::global().event("serve.model.unload", &[("name", name.into())]);
        }
        removed
    }

    /// Whether a model of this name is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.lock_models().contains_key(name)
    }

    /// The per-sample input shape a registered model expects.
    pub fn input_shape(&self, name: &str) -> Option<Vec<usize>> {
        self.lock_models().get(name).map(|e| e.input_shape.clone())
    }

    /// Estimated MACs one sample costs through a registered model — the
    /// weight-element count of the built instance (clamped to at least 1).
    /// The engine attaches this to every admitted job as its DRR cost.
    pub fn macs_per_sample(&self, name: &str) -> Option<u64> {
        self.lock_models().get(name).map(|e| e.macs_per_sample)
    }

    /// Names of all registered models, sorted.
    pub fn model_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.lock_models().keys().cloned().collect();
        names.sort();
        names
    }

    /// Access to the shared LUT cache.
    ///
    /// # Panics
    ///
    /// Panics only if a LUT *build* closure panicked while holding the
    /// cache lock (the cache itself never panics mid-update).
    pub fn lut<F>(&self, key: &str, build: F) -> (Arc<MultiplierLut>, Arc<GradientLut>)
    where
        F: FnOnce() -> (MultiplierLut, GradientLut),
    {
        self.luts
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get_or_build(key, build)
    }

    /// A read-through handle onto the shared LUT cache — what factories
    /// receive; exposed for callers that build factories incrementally.
    pub fn lut_handle(&self) -> LutHandle<'_> {
        LutHandle { luts: &self.luts }
    }

    /// Runs one coalesced batch through the named model in eval mode,
    /// healing a previously poisoned instance first.
    ///
    /// A panic inside the model is caught here: the entry is marked
    /// poisoned (rebuilt from `factory + checkpoint` on the next call) and
    /// [`ForwardError::Panicked`] is returned so the engine can decide
    /// requeue-or-reject per job.
    ///
    /// # Errors
    ///
    /// [`ForwardError::Unloaded`] if the name is not registered,
    /// [`ForwardError::Panicked`] if the model panicked on this batch.
    pub fn forward_batch(&self, name: &str, batch: &Tensor) -> Result<Tensor, ForwardError> {
        let entry = self
            .lock_models()
            .get(name)
            .cloned()
            .ok_or_else(|| ForwardError::Unloaded(name.to_string()))?;
        // The panic below is caught before unwinding past the guard, so the
        // mutex itself does not poison; `into_inner` is belt-and-braces.
        let mut guard = entry.model.lock().unwrap_or_else(PoisonError::into_inner);
        if entry.poisoned.swap(false, Ordering::SeqCst) {
            let mut fresh = (entry.factory)(&self.lut_handle());
            load_params(&mut fresh, entry.checkpoint.as_slice())
                .expect("checkpoint captured from this same architecture");
            *guard = fresh;
            let obs = appmult_obs::global();
            obs.counter_add("serve.model.rebuilds", 1);
            obs.event("serve.model.rebuild", &[("name", name.into())]);
        }
        match catch_unwind(AssertUnwindSafe(|| guard.forward(batch, false))) {
            Ok(out) => Ok(out),
            Err(_) => {
                entry.poisoned.store(true, Ordering::SeqCst);
                Err(ForwardError::Panicked)
            }
        }
    }

    fn lock_models(&self) -> std::sync::MutexGuard<'_, HashMap<String, Arc<ModelEntry>>> {
        self.models.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use appmult_nn::layers::{Linear, Relu};
    use appmult_nn::Module;

    /// Serializes tests that install a recording global obs sink — the
    /// sink is process-wide, so concurrent recorders would mix counters.
    fn obs_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn tiny_spec(name: &str, seed: u64) -> ModelSpec {
        ModelSpec::new(
            name,
            vec![4],
            Arc::new(move |_| {
                Sequential::new()
                    .push(Linear::new(4, 3, seed))
                    .push(Relu::new())
            }),
        )
    }

    /// A module that panics on demand — drives the poisoned-model path.
    struct PanicSwitch {
        armed: Arc<AtomicBool>,
    }
    impl Module for PanicSwitch {
        fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
            assert!(!self.armed.swap(false, Ordering::SeqCst), "chaos");
            input.clone()
        }
        fn backward(&mut self, grad_out: &Tensor) -> Tensor {
            grad_out.clone()
        }
        fn visit_params(&mut self, _visitor: &mut dyn FnMut(&mut appmult_nn::Parameter)) {}
    }

    #[test]
    fn load_run_unload_round_trip() {
        let reg = Registry::new(4);
        reg.load(tiny_spec("m", 7)).unwrap();
        assert!(reg.contains("m"));
        assert_eq!(reg.input_shape("m"), Some(vec![4]));
        let batch = Tensor::from_vec(vec![0.1; 8], &[2, 4]);
        let out = reg.forward_batch("m", &batch).unwrap();
        assert_eq!(out.shape(), &[2, 3]);
        assert!(reg.unload("m"));
        assert!(!reg.unload("m"));
        assert_eq!(
            reg.forward_batch("m", &batch),
            Err(ForwardError::Unloaded("m".to_string()))
        );
    }

    #[test]
    fn replacing_a_model_keeps_the_name_servable() {
        let reg = Registry::new(4);
        reg.load(tiny_spec("m", 1)).unwrap();
        reg.load(tiny_spec("m", 2)).unwrap();
        assert_eq!(reg.model_names(), ["m"]);
        let batch = Tensor::from_vec(vec![0.5; 4], &[1, 4]);
        assert!(reg.forward_batch("m", &batch).is_ok());
    }

    #[test]
    fn panicked_model_is_rebuilt_with_original_parameters() {
        let armed = Arc::new(AtomicBool::new(false));
        let armed2 = Arc::clone(&armed);
        let reg = Registry::new(4);
        reg.load(ModelSpec::new(
            "p",
            vec![4],
            Arc::new(move |_| {
                Sequential::new()
                    .push(Linear::new(4, 4, 9))
                    .push(PanicSwitch {
                        armed: Arc::clone(&armed2),
                    })
            }),
        ))
        .unwrap();
        let batch = Tensor::from_vec(vec![1.0; 4], &[1, 4]);
        let healthy = reg.forward_batch("p", &batch).unwrap();

        armed.store(true, Ordering::SeqCst);
        assert_eq!(reg.forward_batch("p", &batch), Err(ForwardError::Panicked));
        // Next batch heals the entry and reproduces the original output:
        // the rebuild restored checkpointed parameters, not fresh ones.
        let after = reg.forward_batch("p", &batch).unwrap();
        assert_eq!(after, healthy);
    }

    #[test]
    fn load_warms_prefetch_luts_and_records_mac_cost() {
        use appmult_mult::{ExactMultiplier, Multiplier};
        let _guard = obs_lock();
        let obs = appmult_obs::ObsSink::recording();
        appmult_obs::set_global(&obs);
        let build: LutBuilder = Arc::new(|| {
            let lut = ExactMultiplier::new(2).to_lut();
            let grads =
                GradientLut::build(&lut, appmult_retrain::GradientMode::difference_based(1));
            (lut, grads)
        });
        let reg = Registry::new(4);
        let spec = ModelSpec::new(
            "warm",
            vec![4],
            Arc::new(|luts: &LutHandle<'_>| {
                // The factory's fetch must hit the prefetched entry: the
                // expensive build already ran, off the dispatch path.
                let (_lut, _grads) = luts.get("exact2", || unreachable!("prefetch missed"));
                Sequential::new().push(Linear::new(4, 3, 5))
            }),
        )
        .with_prefetch("exact2", Arc::clone(&build));
        reg.load(spec).unwrap();
        appmult_obs::set_global(&appmult_obs::ObsSink::null());
        assert_eq!(obs.counter("serve.lut.prefetch"), 1);
        assert_eq!(obs.counter("serve.lut.misses"), 1, "prefetch built it");
        assert_eq!(obs.counter("serve.lut.hits"), 1, "factory fetch was warm");
        // Linear(4, 3): 12 weight elements (the bias carries decay=false).
        assert_eq!(reg.macs_per_sample("warm"), Some(12));
        assert_eq!(reg.macs_per_sample("nope"), None);
    }

    #[test]
    fn lut_cache_evicts_least_recently_used() {
        use appmult_mult::{ExactMultiplier, Multiplier};
        let _guard = obs_lock();
        let obs = appmult_obs::ObsSink::recording();
        appmult_obs::set_global(&obs);
        let mut cache = LutCache::new(2);
        let build = |bits: u32| {
            move || {
                let lut = ExactMultiplier::new(bits).to_lut();
                let grads =
                    GradientLut::build(&lut, appmult_retrain::GradientMode::difference_based(1));
                (lut, grads)
            }
        };
        let (a1, _) = cache.get_or_build("a", build(2));
        let _ = cache.get_or_build("b", build(3));
        let (a2, _) = cache.get_or_build("a", build(2)); // hit, refreshes "a"
        assert!(Arc::ptr_eq(&a1, &a2), "hit must return the same Arc");
        let _ = cache.get_or_build("c", build(4)); // evicts "b" (LRU)
        assert_eq!(cache.len(), 2);
        let (b2, _) = cache.get_or_build("b", build(3)); // rebuilt, evicts "a"
        assert_eq!(b2.bits(), 3);
        appmult_obs::set_global(&appmult_obs::ObsSink::null());
        assert_eq!(obs.counter("serve.lut.hits"), 1);
        assert_eq!(obs.counter("serve.lut.misses"), 4);
        assert_eq!(obs.counter("serve.lut.evictions"), 2);
    }
}
