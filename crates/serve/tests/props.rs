//! Property tests (vendored `appmult_rng::prop` harness) for the bounded
//! queue and the batcher's robustness invariants:
//!
//! 1. FIFO-within-priority: popping the queue yields a stable sort of the
//!    pushed sequence by priority lane.
//! 2. No request is lost or double-executed across worker panic/restart:
//!    every ticket resolves exactly once, and the model executes exactly
//!    the samples that were served.
//! 3. Deadline-expired requests never reach a kernel: they resolve as
//!    `DeadlineExceeded` with zero model executions.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use appmult_nn::layers::Sequential;
use appmult_nn::{Module, Parameter, Tensor};
use appmult_rng::prop;
use appmult_serve::{
    BoundedQueue, Engine, EngineConfig, ModelSpec, Priority, Registry, Rejection, Request,
};

fn lane(code: u8) -> Priority {
    match code % 3 {
        0 => Priority::High,
        1 => Priority::Normal,
        _ => Priority::Low,
    }
}

/// Property 1: for any push sequence, popping everything yields exactly a
/// stable sort by priority lane — FIFO within each lane, lanes strictly
/// ordered.
#[test]
fn prop_queue_pops_are_a_stable_sort_by_priority() {
    prop::forall_with(
        "queue FIFO-within-priority",
        0x5E11,
        64,
        |rng, case| {
            let n = if case < 4 { case } else { rng.index(40) + 1 };
            (0..n)
                .map(|i| (rng.index(256) as u8, i as u16))
                .collect::<Vec<(u8, u16)>>()
        },
        |ops| {
            // Shrink: halve, and drop each element in turn.
            let mut candidates = vec![ops[..ops.len() / 2].to_vec()];
            for i in 0..ops.len() {
                let mut c = ops.clone();
                c.remove(i);
                candidates.push(c);
            }
            candidates
        },
        |ops| {
            let q = BoundedQueue::new(ops.len().max(1));
            for &(p, id) in ops {
                q.push(id, lane(p)).expect("sized to fit");
            }
            let popped: Vec<u16> =
                std::iter::from_fn(|| q.pop_wait(Duration::from_millis(1))).collect();
            let mut expect: Vec<(usize, u16)> =
                ops.iter().map(|&(p, id)| (lane(p).lane(), id)).collect();
            expect.sort_by_key(|&(lane, _)| lane); // stable: FIFO within lane
            let expect: Vec<u16> = expect.into_iter().map(|(_, id)| id).collect();
            popped == expect
        },
    );
}

/// An identity model that counts every sample it forwards — the probe for
/// "executed exactly once" and "never reached a kernel".
struct CountingIdentity {
    executed_samples: Arc<AtomicUsize>,
}

impl Module for CountingIdentity {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        self.executed_samples
            .fetch_add(input.shape()[0], Ordering::SeqCst);
        input.clone()
    }
    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        grad_out.clone()
    }
    fn visit_params(&mut self, _visitor: &mut dyn FnMut(&mut Parameter)) {}
}

fn counting_registry(executed: &Arc<AtomicUsize>) -> Arc<Registry> {
    let registry = Arc::new(Registry::new(2));
    let executed = Arc::clone(executed);
    registry
        .load(ModelSpec::new(
            "probe",
            vec![2],
            Arc::new(move |_| {
                Sequential::new().push(CountingIdentity {
                    executed_samples: Arc::clone(&executed),
                })
            }),
        ))
        .expect("load probe model");
    registry
}

fn sample(i: usize) -> Tensor {
    Tensor::from_vec(vec![i as f32, -(i as f32)], &[2])
}

/// Property 2: across chaos-injected worker panics and restarts, every
/// request resolves exactly once (served or `WorkerPanicked`) and the
/// model executes exactly the served samples — nothing lost, nothing run
/// twice. Chaos panics fire *before* the model runs, so a requeued job
/// that is eventually served executes once and a rejected one never does.
#[test]
fn prop_no_request_lost_or_double_executed_across_panics() {
    prop::forall_with(
        "panic requeue keeps every request exactly-once",
        0xC4A05,
        10,
        |rng, case| {
            let requests = rng.index(20) + 4;
            let chaos = if case == 0 { 1 } else { rng.index(4) + 1 }; // 1..=4
            let workers = rng.index(3) + 1;
            (requests, chaos as u64, workers)
        },
        |&(r, c, w)| vec![(r / 2, c, w), (r, c, 1), (4, c, w)],
        |&(requests, chaos, workers)| {
            let executed = Arc::new(AtomicUsize::new(0));
            let registry = counting_registry(&executed);
            let engine = Engine::start(
                registry,
                EngineConfig {
                    workers,
                    queue_capacity: requests.max(1) * 2,
                    chaos_panic_every: Some(chaos),
                    max_batch: 4,
                    ..EngineConfig::default()
                },
            );
            let tickets: Vec<_> = (0..requests)
                .map(|i| engine.submit(Request::new("probe", sample(i))).unwrap())
                .collect();
            let mut served = 0usize;
            let mut panicked = 0usize;
            for (i, t) in tickets.iter().enumerate() {
                match t.wait() {
                    Ok(out) => {
                        // Served requests get *their own* sample back.
                        assert_eq!(out, sample(i), "request {i} got the wrong rows");
                        served += 1;
                    }
                    Err(Rejection::WorkerPanicked) => panicked += 1,
                    Err(other) => panic!("unexpected rejection: {other}"),
                }
            }
            engine.shutdown();
            served + panicked == requests && executed.load(Ordering::SeqCst) == served
        },
    );
}

/// Property 3: requests whose deadline expires while queued resolve as
/// `DeadlineExceeded` and never reach the model; fresh requests submitted
/// afterwards are served normally by the same workers.
#[test]
fn prop_expired_deadlines_never_reach_a_kernel() {
    prop::forall_with(
        "expired deadlines are dropped before dispatch",
        0xDEAD11,
        6,
        |rng, _case| rng.index(12) + 1,
        |&n| vec![n / 2, 1],
        |&n| {
            let executed = Arc::new(AtomicUsize::new(0));
            let registry = counting_registry(&executed);
            let cfg = EngineConfig {
                workers: 2,
                queue_capacity: n.max(1) * 4,
                ..EngineConfig::default()
            };
            let poll = cfg.poll_interval;
            let engine = Engine::start(registry, cfg);
            // Park the workers so the deadlines expire while queued.
            engine.pause();
            std::thread::sleep(poll * 5);
            let doomed: Vec<_> = (0..n)
                .map(|i| {
                    let req =
                        Request::new("probe", sample(i)).with_deadline(Duration::from_millis(20));
                    engine.submit(req).unwrap()
                })
                .collect();
            std::thread::sleep(Duration::from_millis(60)); // all expire
            engine.resume();
            let all_expired = doomed
                .iter()
                .all(|t| t.wait() == Err(Rejection::DeadlineExceeded));
            let none_executed = executed.load(Ordering::SeqCst) == 0;
            // The same engine still serves fresh work afterwards.
            let fresh = engine.submit(Request::new("probe", sample(99))).unwrap();
            let served_after = fresh.wait().is_ok();
            engine.shutdown();
            all_expired && none_executed && served_after
        },
    );
}

/// The exactly-once slot never admits a second outcome: the global
/// double-resolve counter stays zero across every engine the property
/// suite spins up (asserted on a recording sink installed for this check).
#[test]
fn double_resolve_counter_stays_zero_under_chaos() {
    let obs = appmult_obs::ObsSink::recording();
    appmult_obs::set_global(&obs);
    let executed = Arc::new(AtomicUsize::new(0));
    let engine = Engine::start(
        counting_registry(&executed),
        EngineConfig {
            workers: 3,
            chaos_panic_every: Some(2),
            max_batch: 3,
            ..EngineConfig::default()
        },
    );
    let tickets: Vec<_> = (0..48)
        .map(|i| engine.submit(Request::new("probe", sample(i))).unwrap())
        .collect();
    for t in &tickets {
        let _ = t.wait();
    }
    engine.shutdown();
    appmult_obs::set_global(&appmult_obs::ObsSink::null());
    assert_eq!(
        obs.counter("serve.ticket.double_resolve"),
        0,
        "a ticket resolved twice"
    );
    assert!(
        obs.counter("serve.worker.panics") > 0,
        "chaos must actually have fired for this test to mean anything"
    );
}
