//! Fairness tests for the per-model DRR scheduler — including the pre-fix
//! starvation reproducer (ROADMAP open item 2).
//!
//! The old dispatch popped the global head of a single [`BoundedQueue`]
//! and then *predicate-chased* that model. With hot traffic riding a
//! higher priority lane, the head is always the hot model, so a cold
//! model's job is starved for as long as the hot backlog refills — the
//! reproducer below demonstrates exactly that against the old algorithm,
//! and that [`DrrQueue`] serves the same workload within one rotation.
//!
//! On top: property tests (vendored `appmult_rng::prop` harness) that a
//! saturated two-model engine gives the cold model ≥ ⅓ of batches with no
//! unbounded waits, and that FIFO-within-priority still holds per
//! sub-queue.

use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use appmult_nn::layers::Sequential;
use appmult_nn::{Module, Parameter, Tensor};
use appmult_rng::prop;
use appmult_serve::{
    BoundedQueue, DrrQueue, Engine, EngineConfig, ModelSpec, Priority, Registry, Request,
};

const TICK: Duration = Duration::from_millis(5);

/// The old engine's coalescing step, verbatim in miniature: pop the global
/// head, then chase its model with `pop_matching_wait`.
fn old_coalesce(
    q: &BoundedQueue<(&'static str, u32)>,
    max_batch: usize,
) -> Vec<(&'static str, u32)> {
    let Some(first) = q.pop_wait(TICK) else {
        return Vec::new();
    };
    let model = first.0;
    let mut batch = vec![first];
    while batch.len() < max_batch {
        match q.pop_matching_wait(Duration::ZERO, |j| j.0 == model) {
            Some(job) => batch.push(job),
            None => break,
        }
    }
    batch
}

/// Pre-fix starvation reproducer: one cold Normal-priority job sits queued
/// while hot High-priority traffic refills faster than it drains. The old
/// predicate-chasing scheduler never serves the cold job — 50 consecutive
/// batches are all hot — because the global head is always the hot model.
#[test]
fn old_scheduler_starves_the_cold_model() {
    let q: BoundedQueue<(&'static str, u32)> = BoundedQueue::new(64);
    q.push(("cold", 0), Priority::Normal).unwrap();
    let mut seq = 0u32;
    let mut hot_queued = 0usize;
    for _round in 0..50 {
        // Open-loop hot refill: the High lane never runs dry.
        while hot_queued < 8 {
            q.push(("hot", seq), Priority::High).unwrap();
            seq += 1;
            hot_queued += 1;
        }
        let batch = old_coalesce(&q, 4);
        assert!(
            batch.iter().all(|&(model, _)| model == "hot"),
            "this reproducer documents the bug: under sustained hot traffic \
             the old scheduler must never reach the cold job (if it did, the \
             bug would be fixed and this test should be retired)"
        );
        hot_queued -= batch.len();
    }
    // The cold job is still sitting in the queue after 50 batches.
    assert_eq!(q.len(), hot_queued + 1, "cold job still starved");
}

/// The same workload shape against [`DrrQueue`]: the cold model is served
/// within one round-robin rotation, hot backlog notwithstanding.
#[test]
fn drr_serves_the_cold_model_within_one_rotation() {
    let q: DrrQueue<(&'static str, u32)> = DrrQueue::new(64, 4);
    q.push("cold", ("cold", 0), 1, Priority::Normal).unwrap();
    let mut seq = 0u32;
    let mut hot_queued = 0usize;
    let mut cold_served_at = None;
    for round in 0..50 {
        while hot_queued < 8 {
            q.push("hot", ("hot", seq), 1, Priority::High).unwrap();
            seq += 1;
            hot_queued += 1;
        }
        let (model, items) = q.pop_batch_wait(TICK, 4).expect("backlogged");
        if model == "cold" {
            cold_served_at = Some(round);
            break;
        }
        hot_queued -= items.len();
    }
    assert!(
        cold_served_at.is_some_and(|r| r <= 2),
        "DRR must serve the cold model within one rotation, got {cold_served_at:?}"
    );
}

/// A model that logs each dispatched batch (by name) into a shared
/// sequence and echoes its input — the probe for batch-share accounting.
struct BatchLogger {
    name: &'static str,
    seq: Arc<Mutex<Vec<&'static str>>>,
}

impl Module for BatchLogger {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        self.seq.lock().unwrap().push(self.name);
        input.clone()
    }
    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        grad_out.clone()
    }
    fn visit_params(&mut self, _visitor: &mut dyn FnMut(&mut Parameter)) {}
}

fn two_model_registry(seq: &Arc<Mutex<Vec<&'static str>>>) -> Arc<Registry> {
    let registry = Arc::new(Registry::new(4));
    for name in ["hot", "cold"] {
        let seq = Arc::clone(seq);
        registry
            .load(ModelSpec::new(
                name,
                vec![2],
                Arc::new(move |_| {
                    Sequential::new().push(BatchLogger {
                        name,
                        seq: Arc::clone(&seq),
                    })
                }),
            ))
            .expect("load model");
    }
    registry
}

/// Property: under a saturated two-model workload (hot demand 2× cold,
/// hot riding the *High* lane, one worker), DRR dispatch gives the cold
/// model at least ⅓ of all batches, serves it in full-size batches, and
/// no request waits unboundedly — every ticket resolves.
#[test]
fn prop_cold_model_gets_at_least_a_third_of_batches() {
    prop::forall_with(
        "saturated two-model workload is fair",
        0xFA1,
        6,
        |rng, _case| (rng.index(4) + 2) * 4, // cold requests: 8..=20, multiple of 4
        |&n| if n > 8 { vec![8] } else { Vec::new() },
        |&cold_n| {
            let hot_n = cold_n * 2;
            let seq = Arc::new(Mutex::new(Vec::new()));
            let registry = two_model_registry(&seq);
            let cfg = EngineConfig {
                workers: 1,
                max_batch: 4,
                drr_quantum_macs: 4,
                queue_capacity: (hot_n + cold_n) * 4,
                ..EngineConfig::default()
            };
            let poll = cfg.poll_interval;
            let engine = Engine::start(registry, cfg);
            engine.pause();
            std::thread::sleep(poll * 5);
            let sample = |v: f32| Tensor::from_vec(vec![v, -v], &[2]);
            let tickets: Vec<_> = (0..hot_n)
                .map(|i| {
                    let req = Request::new("hot", sample(i as f32)).with_priority(Priority::High);
                    engine.submit(req).unwrap()
                })
                .chain((0..cold_n).map(|i| {
                    engine
                        .submit(Request::new("cold", sample(-(i as f32))))
                        .unwrap()
                }))
                .collect();
            engine.resume();
            // No unbounded waits: every ticket resolves well within budget.
            let all_served = tickets
                .iter()
                .all(|t| t.wait_timeout(Duration::from_secs(30)).is_ok());
            engine.shutdown();
            let seq = seq.lock().unwrap();
            let cold_batches = seq.iter().filter(|&&m| m == "cold").count();
            let share_ok = cold_batches * 3 >= seq.len();
            let full_batches = cold_batches <= cold_n / 4 + 1;
            assert!(
                all_served && share_ok && full_batches,
                "cold_n={cold_n}: served={all_served}, cold {cold_batches}/{} batches",
                seq.len()
            );
            true
        },
    );
}

/// Property: FIFO-within-priority holds *per sub-queue* — for each model,
/// concatenating its scheduled batches in pop order yields exactly a
/// stable sort of that model's pushes by priority lane.
#[test]
fn prop_fifo_within_priority_holds_per_sub_queue() {
    fn lane(code: u8) -> Priority {
        match code % 3 {
            0 => Priority::High,
            1 => Priority::Normal,
            _ => Priority::Low,
        }
    }
    prop::forall_with(
        "per-sub-queue pops are a stable sort by priority",
        0xD22,
        64,
        |rng, case| {
            let n = if case < 4 { case } else { rng.index(40) + 1 };
            (0..n)
                .map(|i| (rng.index(3) as u8, rng.index(256) as u8, i as u16))
                .collect::<Vec<(u8, u8, u16)>>()
        },
        |ops| {
            let mut candidates = vec![ops[..ops.len() / 2].to_vec()];
            for i in 0..ops.len() {
                let mut c = ops.clone();
                c.remove(i);
                candidates.push(c);
            }
            candidates
        },
        |ops| {
            const MODELS: [&str; 3] = ["a", "b", "c"];
            let q = DrrQueue::new(ops.len().max(1), 3);
            for &(m, p, id) in ops {
                q.push(MODELS[m as usize], id, 1, lane(p))
                    .expect("sized to fit");
            }
            let mut popped: std::collections::HashMap<&str, Vec<u16>> =
                std::collections::HashMap::new();
            while let Some((model, items)) = q.pop_batch_wait(Duration::from_millis(1), 4) {
                let model = MODELS.iter().find(|&&n| n == model).unwrap();
                popped.entry(model).or_default().extend(items);
            }
            MODELS.iter().enumerate().all(|(mi, &model)| {
                let mut expect: Vec<(usize, u16)> = ops
                    .iter()
                    .filter(|&&(m, _, _)| m as usize == mi)
                    .map(|&(_, p, id)| (lane(p).lane(), id))
                    .collect();
                expect.sort_by_key(|&(lane, _)| lane); // stable: FIFO within lane
                let expect: Vec<u16> = expect.into_iter().map(|(_, id)| id).collect();
                popped.get(model).cloned().unwrap_or_default() == expect
            })
        },
    );
}

/// The abandoned-ticket accounting satellite: a caller that gives up via
/// `wait_timeout` leaves a tombstone; the worker discards it pre-dispatch
/// and counts `serve.ticket.abandoned` — the result is never silently
/// computed for nobody.
#[test]
fn abandoned_tickets_are_counted_not_silently_dropped() {
    use std::sync::atomic::AtomicUsize;

    struct CountingIdentity {
        executed_samples: Arc<AtomicUsize>,
    }
    impl Module for CountingIdentity {
        fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
            self.executed_samples
                .fetch_add(input.shape()[0], Ordering::SeqCst);
            input.clone()
        }
        fn backward(&mut self, grad_out: &Tensor) -> Tensor {
            grad_out.clone()
        }
        fn visit_params(&mut self, _visitor: &mut dyn FnMut(&mut Parameter)) {}
    }

    let obs = appmult_obs::ObsSink::recording();
    appmult_obs::set_global(&obs);
    let executed = Arc::new(AtomicUsize::new(0));
    let registry = Arc::new(Registry::new(2));
    let executed2 = Arc::clone(&executed);
    registry
        .load(ModelSpec::new(
            "probe",
            vec![2],
            Arc::new(move |_| {
                Sequential::new().push(CountingIdentity {
                    executed_samples: Arc::clone(&executed2),
                })
            }),
        ))
        .unwrap();
    let cfg = EngineConfig {
        workers: 1,
        ..EngineConfig::default()
    };
    let poll = cfg.poll_interval;
    let engine = Engine::start(registry, cfg);
    engine.pause();
    std::thread::sleep(poll * 5);
    let doomed: Vec<_> = (0..4)
        .map(|i| {
            engine
                .submit(Request::new(
                    "probe",
                    Tensor::from_vec(vec![i as f32, 0.0], &[2]),
                ))
                .unwrap()
        })
        .collect();
    // Every caller gives up while the workers are parked.
    for t in &doomed {
        assert!(t.wait_timeout(Duration::from_millis(10)).is_err());
    }
    engine.resume();
    // Fresh work flows normally past the tombstones.
    let fresh = engine
        .submit(Request::new(
            "probe",
            Tensor::from_vec(vec![9.0, 9.0], &[2]),
        ))
        .unwrap();
    assert!(fresh.wait_timeout(Duration::from_secs(10)).is_ok());
    engine.shutdown();
    appmult_obs::set_global(&appmult_obs::ObsSink::null());
    assert_eq!(
        obs.counter("serve.ticket.cancelled"),
        4,
        "every expired wait is a recorded cancellation"
    );
    assert_eq!(
        obs.counter("serve.ticket.abandoned"),
        4,
        "every tombstone the worker discarded is accounted for"
    );
    assert_eq!(
        executed.load(Ordering::SeqCst),
        1,
        "cancelled work never reaches a kernel — only the fresh sample ran"
    );
}
