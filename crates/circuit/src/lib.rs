//! Gate-level hardware substrate for approximate multiplier design.
//!
//! This crate implements the hardware side of the AppMult-aware retraining
//! flow: combinational gate netlists, generators for the arithmetic circuits
//! used in the paper (array and Wallace-tree multipliers, ripple-carry
//! adders), a 64-way bit-parallel logic simulator with exhaustive
//! truth-table extraction, an ASAP7-calibrated area/delay/power cost model,
//! a greedy approximate logic synthesis (ALS) pass that generates the
//! `_syn` multipliers of the paper's Table I, and a fault-injection overlay
//! (stuck-at / output-invert) for extracting truth tables of defective
//! hardware without mutating the netlist.
//!
//! # Example
//!
//! ```
//! use appmult_circuit::{MultiplierCircuit, CostModel};
//!
//! // Build an 8-bit unsigned array multiplier and cost it.
//! let mult = MultiplierCircuit::array(8);
//! let table = mult.exhaustive_products();
//! assert_eq!(table[(3 << 8) | 5], 15);
//!
//! let cost = CostModel::asap7().estimate(&mult);
//! assert!(cost.area_um2 > 0.0 && cost.delay_ps > 0.0 && cost.power_uw > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod als;
mod arith;
mod cost;
mod dots;
mod export;
mod fault;
mod netlist;
mod sim;

pub use als::{synthesize, AlsConfig, AlsOutcome, AlsRewrite};
pub use arith::{ripple_carry_adder, AdderCircuit, MultiplierCircuit, MultiplierStructure};
pub use cost::{CostModel, GateCosts, HardwareCost};
pub use dots::DotColumns;
pub use export::{
    from_netlist_text, to_blif, to_netlist_text, to_verilog, NetlistParseError, NETLIST_TEXT_HEADER,
};
pub use fault::{
    exhaustive_table_faulted, fault_sites, simulate_words_faulted, FaultKind, FaultSpec,
};
pub use netlist::{Gate, GateKind, Netlist, NetlistError, Signal};
pub use sim::{signal_probabilities, simulate_bools, simulate_words, ExhaustiveTable};
