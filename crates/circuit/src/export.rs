//! Netlist export to structural Verilog and BLIF.
//!
//! The generated and ALS-rewritten multipliers can be handed to real EDA
//! flows (Yosys, ABC, Design Compiler) for independent synthesis and
//! verification. Both writers emit the live cone only, with stable port
//! names: inputs `i0, i1, ...` in [`Netlist::inputs`] order and outputs
//! `o0, o1, ...` in [`Netlist::outputs`] order.

use std::fmt::Write as _;

use crate::netlist::{GateKind, Netlist, Signal};

/// Emits a structural Verilog module for the netlist.
///
/// Gates are written as continuous `assign` statements over `wire`s, which
/// every synthesis tool accepts. Dead logic is skipped.
///
/// # Example
///
/// ```
/// use appmult_circuit::{to_verilog, Netlist};
///
/// let mut nl = Netlist::new();
/// let a = nl.input();
/// let b = nl.input();
/// let s = nl.xor(a, b);
/// nl.set_outputs(vec![s]);
/// let v = to_verilog(&nl, "half_xor");
/// assert!(v.contains("module half_xor"));
/// assert!(v.contains("^"));
/// ```
pub fn to_verilog(netlist: &Netlist, module_name: &str) -> String {
    let live = netlist.live_mask();
    let mut s = String::new();
    let n_in = netlist.num_inputs();
    let n_out = netlist.outputs().len();
    let ports: Vec<String> = (0..n_in)
        .map(|i| format!("i{i}"))
        .chain((0..n_out).map(|o| format!("o{o}")))
        .collect();
    let _ = writeln!(s, "module {module_name}({});", ports.join(", "));
    for i in 0..n_in {
        let _ = writeln!(s, "  input i{i};");
    }
    for o in 0..n_out {
        let _ = writeln!(s, "  output o{o};");
    }

    // Name map: inputs get port names, everything else wires.
    let mut input_index = vec![usize::MAX; netlist.num_nodes()];
    let mut next_input = 0usize;
    for (sig, gate) in netlist.iter() {
        if gate.kind == GateKind::Input {
            input_index[sig.index()] = next_input;
            next_input += 1;
        }
    }
    let name = |sig: Signal| -> String {
        if input_index[sig.index()] != usize::MAX {
            format!("i{}", input_index[sig.index()])
        } else {
            format!("n{}", sig.index())
        }
    };

    for (sig, gate) in netlist.iter() {
        if !live[sig.index()] || gate.kind == GateKind::Input {
            continue;
        }
        let lhs = name(sig);
        let a = name(gate.fanins[0]);
        let b = name(gate.fanins[1]);
        let expr = match gate.kind {
            GateKind::Const0 => "1'b0".to_string(),
            GateKind::Const1 => "1'b1".to_string(),
            GateKind::Buf => a,
            GateKind::Not => format!("~{a}"),
            GateKind::And => format!("{a} & {b}"),
            GateKind::Or => format!("{a} | {b}"),
            GateKind::Xor => format!("{a} ^ {b}"),
            GateKind::Nand => format!("~({a} & {b})"),
            GateKind::Nor => format!("~({a} | {b})"),
            GateKind::Xnor => format!("~({a} ^ {b})"),
            GateKind::Input => unreachable!("inputs skipped"),
        };
        let _ = writeln!(s, "  wire {lhs};");
        let _ = writeln!(s, "  assign {lhs} = {expr};");
    }
    for (o, sig) in netlist.outputs().iter().enumerate() {
        let _ = writeln!(s, "  assign o{o} = {};", name(*sig));
    }
    let _ = writeln!(s, "endmodule");
    s
}

/// Emits the netlist in Berkeley BLIF (`.names` cover notation), the
/// lingua franca of academic logic-synthesis tools (ABC, ALSRAC, ...).
///
/// # Example
///
/// ```
/// use appmult_circuit::{to_blif, Netlist};
///
/// let mut nl = Netlist::new();
/// let a = nl.input();
/// let b = nl.input();
/// let y = nl.and(a, b);
/// nl.set_outputs(vec![y]);
/// let blif = to_blif(&nl, "and2");
/// assert!(blif.contains(".model and2"));
/// assert!(blif.contains("11 1"));
/// ```
pub fn to_blif(netlist: &Netlist, model_name: &str) -> String {
    let live = netlist.live_mask();
    let mut s = String::new();
    let n_in = netlist.num_inputs();
    let n_out = netlist.outputs().len();
    let _ = writeln!(s, ".model {model_name}");
    let _ = writeln!(
        s,
        ".inputs {}",
        (0..n_in)
            .map(|i| format!("i{i}"))
            .collect::<Vec<_>>()
            .join(" ")
    );
    let _ = writeln!(
        s,
        ".outputs {}",
        (0..n_out)
            .map(|o| format!("o{o}"))
            .collect::<Vec<_>>()
            .join(" ")
    );

    let mut input_index = vec![usize::MAX; netlist.num_nodes()];
    let mut next_input = 0usize;
    for (sig, gate) in netlist.iter() {
        if gate.kind == GateKind::Input {
            input_index[sig.index()] = next_input;
            next_input += 1;
        }
    }
    let name = |sig: Signal| -> String {
        if input_index[sig.index()] != usize::MAX {
            format!("i{}", input_index[sig.index()])
        } else {
            format!("n{}", sig.index())
        }
    };

    for (sig, gate) in netlist.iter() {
        if !live[sig.index()] || gate.kind == GateKind::Input {
            continue;
        }
        let lhs = name(sig);
        let a = name(gate.fanins[0]);
        let b = name(gate.fanins[1]);
        match gate.kind {
            GateKind::Const0 => {
                let _ = writeln!(s, ".names {lhs}");
            }
            GateKind::Const1 => {
                let _ = writeln!(s, ".names {lhs}\n1");
            }
            GateKind::Buf => {
                let _ = writeln!(s, ".names {a} {lhs}\n1 1");
            }
            GateKind::Not => {
                let _ = writeln!(s, ".names {a} {lhs}\n0 1");
            }
            GateKind::And => {
                let _ = writeln!(s, ".names {a} {b} {lhs}\n11 1");
            }
            GateKind::Or => {
                let _ = writeln!(s, ".names {a} {b} {lhs}\n1- 1\n-1 1");
            }
            GateKind::Xor => {
                let _ = writeln!(s, ".names {a} {b} {lhs}\n10 1\n01 1");
            }
            GateKind::Nand => {
                let _ = writeln!(s, ".names {a} {b} {lhs}\n0- 1\n-0 1");
            }
            GateKind::Nor => {
                let _ = writeln!(s, ".names {a} {b} {lhs}\n00 1");
            }
            GateKind::Xnor => {
                let _ = writeln!(s, ".names {a} {b} {lhs}\n00 1\n11 1");
            }
            GateKind::Input => unreachable!("inputs skipped"),
        }
    }
    // Output aliases.
    for (o, sig) in netlist.outputs().iter().enumerate() {
        let _ = writeln!(s, ".names {} o{o}\n1 1", name(*sig));
    }
    let _ = writeln!(s, ".end");
    s
}

/// Header line of the [`to_netlist_text`] interchange format.
pub const NETLIST_TEXT_HEADER: &str = "appmult-netlist v1";

/// Serializes the netlist into the workspace's plain-text interchange
/// format, preserving **every** node (including dead logic) so signal
/// indices survive a round trip bit-for-bit.
///
/// The format is line-oriented: a header, one line per node in topological
/// index order (`input`, `const0`, `const1`, `buf F`, `not F`, or
/// `KIND A B` for two-input gates, fanins as raw node indices), and a
/// final `outputs ...` line. It is the representation embedded in
/// `results/DSE.json` frontier entries, which is why dead nodes are kept:
/// recomputing a frontier member's error metrics from its export must see
/// the identical netlist, not a live-cone approximation.
///
/// # Example
///
/// ```
/// use appmult_circuit::{from_netlist_text, to_netlist_text, Netlist};
///
/// let mut nl = Netlist::new();
/// let a = nl.input();
/// let b = nl.input();
/// let s = nl.xor(a, b);
/// nl.set_outputs(vec![s]);
/// let text = to_netlist_text(&nl);
/// assert_eq!(from_netlist_text(&text).unwrap(), nl);
/// ```
pub fn to_netlist_text(netlist: &Netlist) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{NETLIST_TEXT_HEADER}");
    for (_, gate) in netlist.iter() {
        let a = gate.fanins[0].index();
        let b = gate.fanins[1].index();
        let _ = match gate.kind {
            GateKind::Input => writeln!(s, "input"),
            GateKind::Const0 => writeln!(s, "const0"),
            GateKind::Const1 => writeln!(s, "const1"),
            GateKind::Buf => writeln!(s, "buf {a}"),
            GateKind::Not => writeln!(s, "not {a}"),
            kind => writeln!(s, "{kind} {a} {b}"),
        };
    }
    let outs: Vec<String> = netlist
        .outputs()
        .iter()
        .map(|o| o.index().to_string())
        .collect();
    let _ = writeln!(s, "outputs {}", outs.join(" "));
    s
}

/// Why a [`from_netlist_text`] parse failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistParseError {
    /// The first line is not [`NETLIST_TEXT_HEADER`].
    BadHeader,
    /// A node or outputs line could not be parsed (1-based line number and
    /// offending content).
    BadLine(usize, String),
    /// The parsed netlist violates the topological invariant or references
    /// out-of-range signals.
    Invalid(crate::netlist::NetlistError),
}

impl std::fmt::Display for NetlistParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetlistParseError::BadHeader => {
                write!(f, "missing '{NETLIST_TEXT_HEADER}' header")
            }
            NetlistParseError::BadLine(n, line) => write!(f, "line {n}: cannot parse {line:?}"),
            NetlistParseError::Invalid(e) => write!(f, "invalid netlist: {e}"),
        }
    }
}

impl std::error::Error for NetlistParseError {}

/// Parses the [`to_netlist_text`] format back into a [`Netlist`].
///
/// The result is fully validated: fanins must precede their gates and the
/// outputs line must reference existing nodes, so a successful parse can
/// be simulated directly.
///
/// # Errors
///
/// Returns a [`NetlistParseError`] describing the first malformed line,
/// a missing header, or a structural violation.
pub fn from_netlist_text(text: &str) -> Result<Netlist, NetlistParseError> {
    use crate::netlist::Gate;

    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, header)) if header.trim() == NETLIST_TEXT_HEADER => {}
        _ => return Err(NetlistParseError::BadHeader),
    }
    let mut gates: Vec<Gate> = Vec::new();
    let mut inputs: Vec<Signal> = Vec::new();
    let mut outputs: Option<Vec<Signal>> = None;
    for (i, raw) in lines {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        let bad = || NetlistParseError::BadLine(i + 1, line.to_string());
        let mut parts = line.split_whitespace();
        let word = parts.next().ok_or_else(bad)?;
        let fanin =
            |parts: &mut std::str::SplitWhitespace<'_>| -> Result<Signal, NetlistParseError> {
                let idx: usize = parts.next().and_then(|p| p.parse().ok()).ok_or_else(bad)?;
                Ok(Signal::from_index(idx))
            };
        if word == "outputs" {
            if outputs.is_some() {
                return Err(bad());
            }
            let mut outs = Vec::new();
            for p in parts {
                let idx: usize = p.parse().map_err(|_| bad())?;
                outs.push(Signal::from_index(idx));
            }
            outputs = Some(outs);
            continue;
        }
        if outputs.is_some() {
            return Err(bad()); // nodes after the outputs line
        }
        let here = Signal::from_index(gates.len());
        let (kind, fanins) = match word {
            "input" => (GateKind::Input, [Signal::from_index(0); 2]),
            "const0" => (GateKind::Const0, [Signal::from_index(0); 2]),
            "const1" => (GateKind::Const1, [Signal::from_index(0); 2]),
            "buf" | "not" => {
                let a = fanin(&mut parts)?;
                let kind = if word == "buf" {
                    GateKind::Buf
                } else {
                    GateKind::Not
                };
                (kind, [a, a])
            }
            two => {
                let kind = match two {
                    "and" => GateKind::And,
                    "or" => GateKind::Or,
                    "xor" => GateKind::Xor,
                    "nand" => GateKind::Nand,
                    "nor" => GateKind::Nor,
                    "xnor" => GateKind::Xnor,
                    _ => return Err(bad()),
                };
                (kind, [fanin(&mut parts)?, fanin(&mut parts)?])
            }
        };
        if parts.next().is_some() {
            return Err(bad()); // trailing tokens
        }
        if kind == GateKind::Input {
            inputs.push(here);
        }
        gates.push(Gate { kind, fanins });
    }
    let n = gates.len();
    let outputs = outputs.unwrap_or_default();
    if outputs.iter().any(|o| o.index() >= n) {
        return Err(NetlistParseError::Invalid(
            crate::netlist::NetlistError::UnknownSignal(
                *outputs.iter().find(|o| o.index() >= n).expect("checked"),
            ),
        ));
    }
    let netlist = Netlist::from_raw_parts(gates, inputs, outputs);
    netlist.validate().map_err(NetlistParseError::Invalid)?;
    Ok(netlist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arith::MultiplierCircuit;

    /// A tiny structural-Verilog interpreter for round-trip validation.
    /// Supports exactly the subset `to_verilog` emits.
    fn eval_verilog(src: &str, inputs: &[bool]) -> Vec<bool> {
        use std::collections::HashMap;
        let mut values: HashMap<String, bool> = HashMap::new();
        for (i, &v) in inputs.iter().enumerate() {
            values.insert(format!("i{i}"), v);
        }
        let mut outputs: Vec<(usize, String)> = vec![];
        for line in src.lines() {
            let line = line.trim().trim_end_matches(';');
            let Some(rest) = line.strip_prefix("assign ") else {
                continue;
            };
            let (lhs, rhs) = rest.split_once(" = ").expect("assign form");
            let val = eval_expr(rhs, &values);
            values.insert(lhs.to_string(), val);
            if let Some(o) = lhs.strip_prefix('o') {
                if let Ok(idx) = o.parse::<usize>() {
                    outputs.push((idx, lhs.to_string()));
                }
            }
        }
        outputs.sort();
        outputs.into_iter().map(|(_, name)| values[&name]).collect()
    }

    fn eval_expr(e: &str, v: &std::collections::HashMap<String, bool>) -> bool {
        let e = e.trim();
        if e == "1'b0" {
            return false;
        }
        if e == "1'b1" {
            return true;
        }
        if let Some(inner) = e.strip_prefix("~(").and_then(|x| x.strip_suffix(')')) {
            return !eval_expr(inner, v);
        }
        if let Some(x) = e.strip_prefix('~') {
            return !v[x.trim()];
        }
        for (op, f) in [
            (" & ", (|a, b| a && b) as fn(bool, bool) -> bool),
            (" | ", |a, b| a || b),
            (" ^ ", |a, b| a != b),
        ] {
            if let Some((l, r)) = e.split_once(op) {
                return f(v[l.trim()], v[r.trim()]);
            }
        }
        v[e]
    }

    #[test]
    fn verilog_round_trips_a_multiplier() {
        let m = MultiplierCircuit::array(4);
        let src = to_verilog(m.netlist(), "mul4");
        for (w, x) in [(0u64, 0u64), (15, 15), (7, 9), (3, 12)] {
            let mut ins = vec![];
            for i in 0..4 {
                ins.push((w >> i) & 1 == 1);
            }
            for j in 0..4 {
                ins.push((x >> j) & 1 == 1);
            }
            let outs = eval_verilog(&src, &ins);
            let got = outs
                .iter()
                .enumerate()
                .fold(0u64, |acc, (k, &b)| acc | (u64::from(b) << k));
            assert_eq!(got, w * x, "{w} * {x}");
        }
    }

    #[test]
    fn verilog_contains_module_structure() {
        let m = MultiplierCircuit::array(3);
        let src = to_verilog(m.netlist(), "mul3u");
        assert!(src.starts_with("module mul3u("));
        assert!(src.trim_end().ends_with("endmodule"));
        assert_eq!(src.matches("input ").count(), 6);
        assert_eq!(src.matches("output ").count(), 6);
    }

    #[test]
    fn blif_covers_all_gate_types() {
        let mut nl = Netlist::new();
        let a = nl.input();
        let b = nl.input();
        let g = [
            nl.and(a, b),
            nl.or(a, b),
            nl.xor(a, b),
            nl.nand(a, b),
            nl.nor(a, b),
            nl.xnor(a, b),
        ];
        let h = nl.not(g[0]);
        let i = nl.buf(g[1]);
        let z0 = nl.const0();
        let z1 = nl.const1();
        let mut outs = g.to_vec();
        outs.extend_from_slice(&[h, i, z0, z1]);
        nl.set_outputs(outs);
        let blif = to_blif(&nl, "allgates");
        assert!(blif.contains(".model allgates"));
        assert!(blif.contains(".inputs i0 i1"));
        assert!(blif.contains(".end"));
        // One .names block per live node plus per-output alias.
        assert!(blif.matches(".names").count() >= 10);
    }

    #[test]
    fn netlist_text_round_trips_every_node_kind() {
        let mut nl = Netlist::new();
        let a = nl.input();
        let b = nl.input();
        let g = [
            nl.and(a, b),
            nl.or(a, b),
            nl.xor(a, b),
            nl.nand(a, b),
            nl.nor(a, b),
            nl.xnor(a, b),
        ];
        let h = nl.not(g[0]);
        let i = nl.buf(g[1]);
        let z0 = nl.const0();
        let z1 = nl.const1();
        let dead = nl.and(z0, z1); // dead logic must survive the round trip
        let mut outs = g.to_vec();
        outs.extend_from_slice(&[h, i]);
        nl.set_outputs(outs);
        let text = to_netlist_text(&nl);
        let parsed = from_netlist_text(&text).expect("round trip parses");
        assert_eq!(parsed, nl);
        assert_eq!(parsed.num_nodes(), dead.index() + 1);
    }

    #[test]
    fn netlist_text_round_trips_a_multiplier_byte_identically() {
        let m = MultiplierCircuit::array(5);
        let text = to_netlist_text(m.netlist());
        let parsed = from_netlist_text(&text).expect("parses");
        assert_eq!(&parsed, m.netlist());
        // Serializing the parse reproduces the exact text.
        assert_eq!(to_netlist_text(&parsed), text);
    }

    #[test]
    fn netlist_text_rejects_malformed_inputs() {
        assert_eq!(
            from_netlist_text("bogus"),
            Err(NetlistParseError::BadHeader)
        );
        let bad_kind = format!("{NETLIST_TEXT_HEADER}\ninput\nfrob 0 0\noutputs 0");
        assert!(matches!(
            from_netlist_text(&bad_kind),
            Err(NetlistParseError::BadLine(3, _))
        ));
        let trailing = format!("{NETLIST_TEXT_HEADER}\ninput\nnot 0 junk\noutputs 1");
        assert!(matches!(
            from_netlist_text(&trailing),
            Err(NetlistParseError::BadLine(3, _))
        ));
        // Forward references fail validation, not just parsing.
        let fwd = format!("{NETLIST_TEXT_HEADER}\ninput\nand 0 2\nnot 1\noutputs 2");
        assert!(matches!(
            from_netlist_text(&fwd),
            Err(NetlistParseError::Invalid(_))
        ));
        let bad_out = format!("{NETLIST_TEXT_HEADER}\ninput\noutputs 9");
        assert!(matches!(
            from_netlist_text(&bad_out),
            Err(NetlistParseError::Invalid(_))
        ));
        // Nodes after the outputs line are rejected.
        let late = format!("{NETLIST_TEXT_HEADER}\ninput\noutputs 0\ninput");
        assert!(matches!(
            from_netlist_text(&late),
            Err(NetlistParseError::BadLine(4, _))
        ));
    }

    #[test]
    fn exports_skip_dead_logic() {
        let mut nl = Netlist::new();
        let a = nl.input();
        let b = nl.input();
        let used = nl.and(a, b);
        let dead = nl.xor(a, b);
        nl.set_outputs(vec![used]);
        let v = to_verilog(&nl, "m");
        let blif = to_blif(&nl, "m");
        let dead_name = format!("n{}", dead.index());
        assert!(!v.contains(&dead_name));
        assert!(!blif.contains(&dead_name));
    }
}
