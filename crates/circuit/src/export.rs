//! Netlist export to structural Verilog and BLIF.
//!
//! The generated and ALS-rewritten multipliers can be handed to real EDA
//! flows (Yosys, ABC, Design Compiler) for independent synthesis and
//! verification. Both writers emit the live cone only, with stable port
//! names: inputs `i0, i1, ...` in [`Netlist::inputs`] order and outputs
//! `o0, o1, ...` in [`Netlist::outputs`] order.

use std::fmt::Write as _;

use crate::netlist::{GateKind, Netlist, Signal};

/// Emits a structural Verilog module for the netlist.
///
/// Gates are written as continuous `assign` statements over `wire`s, which
/// every synthesis tool accepts. Dead logic is skipped.
///
/// # Example
///
/// ```
/// use appmult_circuit::{to_verilog, Netlist};
///
/// let mut nl = Netlist::new();
/// let a = nl.input();
/// let b = nl.input();
/// let s = nl.xor(a, b);
/// nl.set_outputs(vec![s]);
/// let v = to_verilog(&nl, "half_xor");
/// assert!(v.contains("module half_xor"));
/// assert!(v.contains("^"));
/// ```
pub fn to_verilog(netlist: &Netlist, module_name: &str) -> String {
    let live = netlist.live_mask();
    let mut s = String::new();
    let n_in = netlist.num_inputs();
    let n_out = netlist.outputs().len();
    let ports: Vec<String> = (0..n_in)
        .map(|i| format!("i{i}"))
        .chain((0..n_out).map(|o| format!("o{o}")))
        .collect();
    let _ = writeln!(s, "module {module_name}({});", ports.join(", "));
    for i in 0..n_in {
        let _ = writeln!(s, "  input i{i};");
    }
    for o in 0..n_out {
        let _ = writeln!(s, "  output o{o};");
    }

    // Name map: inputs get port names, everything else wires.
    let mut input_index = vec![usize::MAX; netlist.num_nodes()];
    let mut next_input = 0usize;
    for (sig, gate) in netlist.iter() {
        if gate.kind == GateKind::Input {
            input_index[sig.index()] = next_input;
            next_input += 1;
        }
    }
    let name = |sig: Signal| -> String {
        if input_index[sig.index()] != usize::MAX {
            format!("i{}", input_index[sig.index()])
        } else {
            format!("n{}", sig.index())
        }
    };

    for (sig, gate) in netlist.iter() {
        if !live[sig.index()] || gate.kind == GateKind::Input {
            continue;
        }
        let lhs = name(sig);
        let a = name(gate.fanins[0]);
        let b = name(gate.fanins[1]);
        let expr = match gate.kind {
            GateKind::Const0 => "1'b0".to_string(),
            GateKind::Const1 => "1'b1".to_string(),
            GateKind::Buf => a,
            GateKind::Not => format!("~{a}"),
            GateKind::And => format!("{a} & {b}"),
            GateKind::Or => format!("{a} | {b}"),
            GateKind::Xor => format!("{a} ^ {b}"),
            GateKind::Nand => format!("~({a} & {b})"),
            GateKind::Nor => format!("~({a} | {b})"),
            GateKind::Xnor => format!("~({a} ^ {b})"),
            GateKind::Input => unreachable!("inputs skipped"),
        };
        let _ = writeln!(s, "  wire {lhs};");
        let _ = writeln!(s, "  assign {lhs} = {expr};");
    }
    for (o, sig) in netlist.outputs().iter().enumerate() {
        let _ = writeln!(s, "  assign o{o} = {};", name(*sig));
    }
    let _ = writeln!(s, "endmodule");
    s
}

/// Emits the netlist in Berkeley BLIF (`.names` cover notation), the
/// lingua franca of academic logic-synthesis tools (ABC, ALSRAC, ...).
///
/// # Example
///
/// ```
/// use appmult_circuit::{to_blif, Netlist};
///
/// let mut nl = Netlist::new();
/// let a = nl.input();
/// let b = nl.input();
/// let y = nl.and(a, b);
/// nl.set_outputs(vec![y]);
/// let blif = to_blif(&nl, "and2");
/// assert!(blif.contains(".model and2"));
/// assert!(blif.contains("11 1"));
/// ```
pub fn to_blif(netlist: &Netlist, model_name: &str) -> String {
    let live = netlist.live_mask();
    let mut s = String::new();
    let n_in = netlist.num_inputs();
    let n_out = netlist.outputs().len();
    let _ = writeln!(s, ".model {model_name}");
    let _ = writeln!(
        s,
        ".inputs {}",
        (0..n_in)
            .map(|i| format!("i{i}"))
            .collect::<Vec<_>>()
            .join(" ")
    );
    let _ = writeln!(
        s,
        ".outputs {}",
        (0..n_out)
            .map(|o| format!("o{o}"))
            .collect::<Vec<_>>()
            .join(" ")
    );

    let mut input_index = vec![usize::MAX; netlist.num_nodes()];
    let mut next_input = 0usize;
    for (sig, gate) in netlist.iter() {
        if gate.kind == GateKind::Input {
            input_index[sig.index()] = next_input;
            next_input += 1;
        }
    }
    let name = |sig: Signal| -> String {
        if input_index[sig.index()] != usize::MAX {
            format!("i{}", input_index[sig.index()])
        } else {
            format!("n{}", sig.index())
        }
    };

    for (sig, gate) in netlist.iter() {
        if !live[sig.index()] || gate.kind == GateKind::Input {
            continue;
        }
        let lhs = name(sig);
        let a = name(gate.fanins[0]);
        let b = name(gate.fanins[1]);
        match gate.kind {
            GateKind::Const0 => {
                let _ = writeln!(s, ".names {lhs}");
            }
            GateKind::Const1 => {
                let _ = writeln!(s, ".names {lhs}\n1");
            }
            GateKind::Buf => {
                let _ = writeln!(s, ".names {a} {lhs}\n1 1");
            }
            GateKind::Not => {
                let _ = writeln!(s, ".names {a} {lhs}\n0 1");
            }
            GateKind::And => {
                let _ = writeln!(s, ".names {a} {b} {lhs}\n11 1");
            }
            GateKind::Or => {
                let _ = writeln!(s, ".names {a} {b} {lhs}\n1- 1\n-1 1");
            }
            GateKind::Xor => {
                let _ = writeln!(s, ".names {a} {b} {lhs}\n10 1\n01 1");
            }
            GateKind::Nand => {
                let _ = writeln!(s, ".names {a} {b} {lhs}\n0- 1\n-0 1");
            }
            GateKind::Nor => {
                let _ = writeln!(s, ".names {a} {b} {lhs}\n00 1");
            }
            GateKind::Xnor => {
                let _ = writeln!(s, ".names {a} {b} {lhs}\n00 1\n11 1");
            }
            GateKind::Input => unreachable!("inputs skipped"),
        }
    }
    // Output aliases.
    for (o, sig) in netlist.outputs().iter().enumerate() {
        let _ = writeln!(s, ".names {} o{o}\n1 1", name(*sig));
    }
    let _ = writeln!(s, ".end");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arith::MultiplierCircuit;

    /// A tiny structural-Verilog interpreter for round-trip validation.
    /// Supports exactly the subset `to_verilog` emits.
    fn eval_verilog(src: &str, inputs: &[bool]) -> Vec<bool> {
        use std::collections::HashMap;
        let mut values: HashMap<String, bool> = HashMap::new();
        for (i, &v) in inputs.iter().enumerate() {
            values.insert(format!("i{i}"), v);
        }
        let mut outputs: Vec<(usize, String)> = vec![];
        for line in src.lines() {
            let line = line.trim().trim_end_matches(';');
            let Some(rest) = line.strip_prefix("assign ") else {
                continue;
            };
            let (lhs, rhs) = rest.split_once(" = ").expect("assign form");
            let val = eval_expr(rhs, &values);
            values.insert(lhs.to_string(), val);
            if let Some(o) = lhs.strip_prefix('o') {
                if let Ok(idx) = o.parse::<usize>() {
                    outputs.push((idx, lhs.to_string()));
                }
            }
        }
        outputs.sort();
        outputs.into_iter().map(|(_, name)| values[&name]).collect()
    }

    fn eval_expr(e: &str, v: &std::collections::HashMap<String, bool>) -> bool {
        let e = e.trim();
        if e == "1'b0" {
            return false;
        }
        if e == "1'b1" {
            return true;
        }
        if let Some(inner) = e.strip_prefix("~(").and_then(|x| x.strip_suffix(')')) {
            return !eval_expr(inner, v);
        }
        if let Some(x) = e.strip_prefix('~') {
            return !v[x.trim()];
        }
        for (op, f) in [
            (" & ", (|a, b| a && b) as fn(bool, bool) -> bool),
            (" | ", |a, b| a || b),
            (" ^ ", |a, b| a != b),
        ] {
            if let Some((l, r)) = e.split_once(op) {
                return f(v[l.trim()], v[r.trim()]);
            }
        }
        v[e]
    }

    #[test]
    fn verilog_round_trips_a_multiplier() {
        let m = MultiplierCircuit::array(4);
        let src = to_verilog(m.netlist(), "mul4");
        for (w, x) in [(0u64, 0u64), (15, 15), (7, 9), (3, 12)] {
            let mut ins = vec![];
            for i in 0..4 {
                ins.push((w >> i) & 1 == 1);
            }
            for j in 0..4 {
                ins.push((x >> j) & 1 == 1);
            }
            let outs = eval_verilog(&src, &ins);
            let got = outs
                .iter()
                .enumerate()
                .fold(0u64, |acc, (k, &b)| acc | (u64::from(b) << k));
            assert_eq!(got, w * x, "{w} * {x}");
        }
    }

    #[test]
    fn verilog_contains_module_structure() {
        let m = MultiplierCircuit::array(3);
        let src = to_verilog(m.netlist(), "mul3u");
        assert!(src.starts_with("module mul3u("));
        assert!(src.trim_end().ends_with("endmodule"));
        assert_eq!(src.matches("input ").count(), 6);
        assert_eq!(src.matches("output ").count(), 6);
    }

    #[test]
    fn blif_covers_all_gate_types() {
        let mut nl = Netlist::new();
        let a = nl.input();
        let b = nl.input();
        let g = [
            nl.and(a, b),
            nl.or(a, b),
            nl.xor(a, b),
            nl.nand(a, b),
            nl.nor(a, b),
            nl.xnor(a, b),
        ];
        let h = nl.not(g[0]);
        let i = nl.buf(g[1]);
        let z0 = nl.const0();
        let z1 = nl.const1();
        let mut outs = g.to_vec();
        outs.extend_from_slice(&[h, i, z0, z1]);
        nl.set_outputs(outs);
        let blif = to_blif(&nl, "allgates");
        assert!(blif.contains(".model allgates"));
        assert!(blif.contains(".inputs i0 i1"));
        assert!(blif.contains(".end"));
        // One .names block per live node plus per-output alias.
        assert!(blif.matches(".names").count() >= 10);
    }

    #[test]
    fn exports_skip_dead_logic() {
        let mut nl = Netlist::new();
        let a = nl.input();
        let b = nl.input();
        let used = nl.and(a, b);
        let dead = nl.xor(a, b);
        nl.set_outputs(vec![used]);
        let v = to_verilog(&nl, "m");
        let blif = to_blif(&nl, "m");
        let dead_name = format!("n{}", dead.index());
        assert!(!v.contains(&dead_name));
        assert!(!blif.contains(&dead_name));
    }
}
