//! Generators for the arithmetic circuits used in the paper.
//!
//! The central structure is [`MultiplierCircuit`]: a gate-level unsigned
//! `B x B` multiplier with named operand and product buses. Two partial
//! product reduction styles are provided (carry-ripple array and Wallace
//! tree), and any number of least-significant partial-product columns can be
//! removed — reproducing the `_rmK` truncated multipliers of Fig. 2.

use crate::dots::{reduce_ripple_impl, reduce_wallace_impl};
use crate::netlist::{Netlist, NetlistError, Signal};
use crate::sim::ExhaustiveTable;

/// Reduction style of a generated multiplier.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum MultiplierStructure {
    /// Row-by-row carry-propagate array (long critical path, compact).
    #[default]
    Array,
    /// Wallace-style column compression with a final ripple adder.
    Wallace,
}

/// A gate-level unsigned multiplier with identified operand/product buses.
///
/// Primary inputs are the `w` bus (LSB first) followed by the `x` bus;
/// primary outputs are the product bits, LSB first.
/// [`MultiplierCircuit::exhaustive_products`] re-orders the raw simulation
/// table into the LUT convention `(w << bits) | x` used by the retraining
/// crates.
#[derive(Debug, Clone)]
pub struct MultiplierCircuit {
    netlist: Netlist,
    bits: u32,
    structure: MultiplierStructure,
    removed_columns: u32,
}

impl MultiplierCircuit {
    /// Builds an exact `bits x bits` unsigned array multiplier.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 10 (exhaustive analyses cap the
    /// input space at 2^20).
    pub fn array(bits: u32) -> Self {
        Self::with_removed_columns(bits, 0, MultiplierStructure::Array)
    }

    /// Builds an exact `bits x bits` unsigned Wallace-tree multiplier.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`MultiplierCircuit::array`].
    pub fn wallace(bits: u32) -> Self {
        Self::with_removed_columns(bits, 0, MultiplierStructure::Wallace)
    }

    /// Builds a multiplier with the `removed_columns` least-significant
    /// partial-product columns deleted (treated as 0), as in the paper's
    /// Fig. 2 (`_rmK` designs).
    ///
    /// # Panics
    ///
    /// Panics if `bits == 0`, `bits > 10`, or
    /// `removed_columns >= 2 * bits` (no product bits would remain driven).
    pub fn with_removed_columns(
        bits: u32,
        removed_columns: u32,
        structure: MultiplierStructure,
    ) -> Self {
        assert!(bits > 0 && bits <= 10, "bits must be in 1..=10, got {bits}");
        assert!(
            removed_columns < 2 * bits,
            "cannot remove all {} partial-product columns",
            2 * bits
        );
        let mut nl = Netlist::new();
        let w: Vec<Signal> = (0..bits).map(|_| nl.input()).collect();
        let x: Vec<Signal> = (0..bits).map(|_| nl.input()).collect();

        // Partial products per column c = i + j, keeping only c >= removed.
        let out_bits = 2 * bits;
        let mut columns: Vec<Vec<Signal>> = vec![Vec::new(); out_bits as usize];
        for i in 0..bits {
            for j in 0..bits {
                let c = i + j;
                if c >= removed_columns {
                    let pp = nl.and(w[i as usize], x[j as usize]);
                    columns[c as usize].push(pp);
                }
            }
        }

        let outputs = match structure {
            MultiplierStructure::Array => reduce_ripple_impl(&mut nl, columns),
            MultiplierStructure::Wallace => reduce_wallace_impl(&mut nl, columns),
        };
        nl.set_outputs(outputs);
        debug_assert!(nl.validate().is_ok());
        Self {
            netlist: nl,
            bits,
            structure,
            removed_columns,
        }
    }

    /// Wraps a hand-built netlist as a multiplier circuit.
    ///
    /// The netlist must follow the multiplier bus convention: `2 * bits`
    /// primary inputs (`w` bus LSB-first, then `x` bus LSB-first) and
    /// `2 * bits` primary outputs (product LSB-first). This is how the
    /// design families in `appmult-mult` provide gate-level structures for
    /// the hardware cost model.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownSignal`] if the bus shapes do not
    /// match, or propagates a validation error from
    /// [`Netlist::validate`].
    pub fn from_netlist(netlist: Netlist, bits: u32) -> Result<Self, NetlistError> {
        netlist.validate()?;
        if netlist.num_inputs() != 2 * bits as usize || netlist.outputs().len() != 2 * bits as usize
        {
            return Err(NetlistError::UnknownSignal(Signal(0)));
        }
        Ok(Self {
            netlist,
            bits,
            structure: MultiplierStructure::Array,
            removed_columns: 0,
        })
    }

    /// Wraps an externally modified netlist (e.g. after ALS) that keeps the
    /// original bus layout.
    pub(crate) fn from_parts(
        netlist: Netlist,
        bits: u32,
        structure: MultiplierStructure,
        removed_columns: u32,
    ) -> Self {
        Self {
            netlist,
            bits,
            structure,
            removed_columns,
        }
    }

    /// Operand bit width `B`.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Reduction style used when the circuit was generated.
    pub fn structure(&self) -> MultiplierStructure {
        self.structure
    }

    /// Number of removed least-significant partial-product columns.
    pub fn removed_columns(&self) -> u32 {
        self.removed_columns
    }

    /// The underlying gate netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Mutable access to the netlist (for synthesis passes).
    pub fn netlist_mut(&mut self) -> &mut Netlist {
        &mut self.netlist
    }

    /// Computes the product for one operand pair via gate-level simulation.
    ///
    /// # Panics
    ///
    /// Panics if an operand does not fit in [`MultiplierCircuit::bits`] bits.
    pub fn multiply(&self, w: u64, x: u64) -> u64 {
        let b = self.bits;
        assert!(
            w < (1 << b) && x < (1 << b),
            "operands must fit in {b} bits"
        );
        let mut bools = Vec::with_capacity(2 * b as usize);
        for i in 0..b {
            bools.push((w >> i) & 1 == 1);
        }
        for j in 0..b {
            bools.push((x >> j) & 1 == 1);
        }
        let outs = crate::sim::simulate_bools(&self.netlist, &bools);
        outs.iter()
            .enumerate()
            .fold(0u64, |acc, (k, &bit)| acc | (u64::from(bit) << k))
    }

    /// Exhaustively extracts the product table in the workspace LUT
    /// convention: entry `(w << bits) | x` holds the product of `w` and `x`.
    pub fn exhaustive_products(&self) -> Vec<u64> {
        self.reorder_to_lut(&ExhaustiveTable::build(&self.netlist))
    }

    /// Like [`MultiplierCircuit::exhaustive_products`], but with the given
    /// hardware faults injected (see [`crate::FaultSpec`]). The circuit is
    /// not mutated; an empty fault list reproduces the fault-free table.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownSignal`] if a fault site does not
    /// belong to this circuit's netlist.
    pub fn exhaustive_products_faulted(
        &self,
        faults: &[crate::fault::FaultSpec],
    ) -> Result<Vec<u64>, NetlistError> {
        let table = crate::fault::exhaustive_table_faulted(&self.netlist, faults)?;
        Ok(self.reorder_to_lut(&table))
    }

    /// Re-orders a raw simulation table (w in low bits, x in high bits) into
    /// the LUT convention `(w << bits) | x`.
    fn reorder_to_lut(&self, table: &ExhaustiveTable) -> Vec<u64> {
        let b = self.bits;
        let n = 1usize << b;
        let mut lut = vec![0u64; n * n];
        for x in 0..n {
            for w in 0..n {
                lut[(w << b) | x] = table.values()[(x << b) | w];
            }
        }
        lut
    }
}

/// A gate-level unsigned ripple-carry adder with identified buses.
#[derive(Debug, Clone)]
pub struct AdderCircuit {
    netlist: Netlist,
    bits: u32,
}

impl AdderCircuit {
    /// The underlying netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Operand width in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Adds two operands via gate-level simulation.
    ///
    /// # Panics
    ///
    /// Panics if an operand does not fit in [`AdderCircuit::bits`] bits.
    pub fn add(&self, a: u64, b: u64) -> u64 {
        let n = self.bits;
        assert!(a < (1 << n) && b < (1 << n));
        let mut bools = Vec::with_capacity(2 * n as usize);
        for i in 0..n {
            bools.push((a >> i) & 1 == 1);
        }
        for i in 0..n {
            bools.push((b >> i) & 1 == 1);
        }
        let outs = crate::sim::simulate_bools(&self.netlist, &bools);
        outs.iter()
            .enumerate()
            .fold(0u64, |acc, (k, &bit)| acc | (u64::from(bit) << k))
    }
}

/// Builds an unsigned `bits`-wide ripple-carry adder producing a
/// `bits + 1`-bit sum.
///
/// # Panics
///
/// Panics if `bits` is 0 or greater than 12.
///
/// # Example
///
/// ```
/// let adder = appmult_circuit::ripple_carry_adder(4);
/// assert_eq!(adder.add(9, 8), 17);
/// ```
pub fn ripple_carry_adder(bits: u32) -> AdderCircuit {
    assert!(bits > 0 && bits <= 12, "bits must be in 1..=12");
    let mut nl = Netlist::new();
    let a: Vec<Signal> = (0..bits).map(|_| nl.input()).collect();
    let b: Vec<Signal> = (0..bits).map(|_| nl.input()).collect();
    let mut outputs = Vec::with_capacity(bits as usize + 1);
    let (s0, mut carry) = nl.half_adder(a[0], b[0]);
    outputs.push(s0);
    for i in 1..bits as usize {
        let (s, c) = nl.full_adder(a[i], b[i], carry);
        outputs.push(s);
        carry = c;
    }
    outputs.push(carry);
    nl.set_outputs(outputs);
    AdderCircuit { netlist: nl, bits }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn array_multiplier_is_exact_4bit() {
        let m = MultiplierCircuit::array(4);
        let lut = m.exhaustive_products();
        for w in 0..16u64 {
            for x in 0..16u64 {
                assert_eq!(lut[((w << 4) | x) as usize], w * x, "{w}*{x}");
            }
        }
    }

    #[test]
    fn wallace_multiplier_is_exact_5bit() {
        let m = MultiplierCircuit::wallace(5);
        let lut = m.exhaustive_products();
        for w in 0..32u64 {
            for x in 0..32u64 {
                assert_eq!(lut[((w << 5) | x) as usize], w * x, "{w}*{x}");
            }
        }
    }

    #[test]
    fn removed_columns_match_closed_form() {
        // Removing k columns zeroes every partial product with i + j < k.
        let bits = 5;
        let k = 4;
        let m = MultiplierCircuit::with_removed_columns(bits, k, MultiplierStructure::Array);
        let lut = m.exhaustive_products();
        for w in 0..(1u64 << bits) {
            for x in 0..(1u64 << bits) {
                let mut expect = 0u64;
                for i in 0..bits {
                    for j in 0..bits {
                        if i + j >= k && (w >> i) & 1 == 1 && (x >> j) & 1 == 1 {
                            expect += 1 << (i + j);
                        }
                    }
                }
                assert_eq!(lut[((w << bits) | x) as usize], expect, "{w}*{x}");
            }
        }
    }

    #[test]
    fn multiply_agrees_with_exhaustive() {
        let m = MultiplierCircuit::array(6);
        let lut = m.exhaustive_products();
        for &(w, x) in &[(0, 0), (63, 63), (10, 31), (17, 42)] {
            assert_eq!(m.multiply(w, x), lut[((w << 6) | x) as usize]);
        }
    }

    #[test]
    fn wallace_uses_fewer_levels_than_array() {
        use crate::cost::CostModel;
        let array = MultiplierCircuit::array(8);
        let wallace = MultiplierCircuit::wallace(8);
        let model = CostModel::asap7();
        let d_array = model.estimate(&array).delay_ps;
        let d_wallace = model.estimate(&wallace).delay_ps;
        assert!(
            d_wallace < d_array,
            "wallace {d_wallace} should beat array {d_array}"
        );
    }

    #[test]
    fn adder_exhaustive_4bit() {
        let adder = ripple_carry_adder(4);
        for a in 0..16u64 {
            for b in 0..16u64 {
                assert_eq!(adder.add(a, b), a + b);
            }
        }
    }

    #[test]
    #[should_panic(expected = "bits must be in 1..=10")]
    fn rejects_zero_width() {
        let _ = MultiplierCircuit::array(0);
    }

    #[test]
    #[should_panic(expected = "cannot remove all")]
    fn rejects_removing_everything() {
        let _ = MultiplierCircuit::with_removed_columns(4, 8, MultiplierStructure::Array);
    }
}
