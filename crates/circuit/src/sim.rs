//! Bit-parallel logic simulation.
//!
//! Each signal carries a 64-bit word; bit `k` of every word belongs to the
//! `k`-th simulation pattern, so one pass over the netlist evaluates 64 input
//! vectors at once. This is the standard EDA trick that makes exhaustive
//! evaluation of 16-bit input spaces (8-bit × 8-bit multipliers) cheap.

use appmult_pool::Pool;

use crate::fault::FaultKind;
use crate::netlist::{GateKind, Netlist};

/// Simulates 64 patterns at once.
///
/// `input_words[i]` holds the 64 values of the `i`-th primary input (in
/// [`Netlist::inputs`] order). Returns one word per primary output.
///
/// # Panics
///
/// Panics if `input_words.len()` differs from the number of primary inputs.
pub fn simulate_words(netlist: &Netlist, input_words: &[u64]) -> Vec<u64> {
    let mut values = vec![0u64; netlist.num_nodes()];
    simulate_words_into(netlist, input_words, &mut values);
    netlist
        .outputs()
        .iter()
        .map(|s| values[s.index()])
        .collect()
}

/// Like [`simulate_words`] but writes every node value into `scratch`,
/// avoiding per-call allocation. `scratch` is resized as needed.
pub fn simulate_words_into(netlist: &Netlist, input_words: &[u64], scratch: &mut Vec<u64>) {
    simulate_words_into_overlay(netlist, input_words, scratch, &[]);
}

/// Core simulation loop with an optional fault overlay: after a node is
/// evaluated, `overlay[node]` (when present and `Some`) rewrites its value.
/// An empty overlay simulates the fault-free netlist.
pub(crate) fn simulate_words_into_overlay(
    netlist: &Netlist,
    input_words: &[u64],
    scratch: &mut Vec<u64>,
    overlay: &[Option<FaultKind>],
) {
    assert_eq!(
        input_words.len(),
        netlist.num_inputs(),
        "expected one word per primary input"
    );
    scratch.clear();
    scratch.resize(netlist.num_nodes(), 0);
    let mut next_input = 0;
    for (sig, gate) in netlist.iter() {
        let mut v = match gate.kind {
            GateKind::Input => {
                let w = input_words[next_input];
                next_input += 1;
                w
            }
            GateKind::Const0 => 0,
            GateKind::Const1 => u64::MAX,
            GateKind::Buf => scratch[gate.fanins[0].index()],
            GateKind::Not => !scratch[gate.fanins[0].index()],
            GateKind::And => scratch[gate.fanins[0].index()] & scratch[gate.fanins[1].index()],
            GateKind::Or => scratch[gate.fanins[0].index()] | scratch[gate.fanins[1].index()],
            GateKind::Xor => scratch[gate.fanins[0].index()] ^ scratch[gate.fanins[1].index()],
            GateKind::Nand => !(scratch[gate.fanins[0].index()] & scratch[gate.fanins[1].index()]),
            GateKind::Nor => !(scratch[gate.fanins[0].index()] | scratch[gate.fanins[1].index()]),
            GateKind::Xnor => !(scratch[gate.fanins[0].index()] ^ scratch[gate.fanins[1].index()]),
        };
        if let Some(Some(fault)) = overlay.get(sig.index()) {
            v = fault.apply(v);
        }
        scratch[sig.index()] = v;
    }
}

/// Evaluates a single boolean input vector.
///
/// # Panics
///
/// Panics if `inputs.len()` differs from the number of primary inputs.
pub fn simulate_bools(netlist: &Netlist, inputs: &[bool]) -> Vec<bool> {
    let words: Vec<u64> = inputs.iter().map(|&b| if b { 1 } else { 0 }).collect();
    simulate_words(netlist, &words)
        .into_iter()
        .map(|w| w & 1 == 1)
        .collect()
}

/// Exhaustive evaluation of a netlist over all input combinations.
///
/// The primary inputs are interpreted as one unsigned bus in
/// [`Netlist::inputs`] order (input 0 = LSB); the outputs likewise. Entry `v`
/// of [`ExhaustiveTable::values`] is the output bus value under input value
/// `v`.
///
/// # Example
///
/// ```
/// use appmult_circuit::{Netlist, ExhaustiveTable};
///
/// let mut nl = Netlist::new();
/// let a = nl.input();
/// let b = nl.input();
/// let (s, c) = nl.half_adder(a, b);
/// nl.set_outputs(vec![s, c]);
/// let table = ExhaustiveTable::build(&nl);
/// // 1 + 1 = 2
/// assert_eq!(table.values()[0b11], 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExhaustiveTable {
    input_bits: u32,
    values: Vec<u64>,
}

impl ExhaustiveTable {
    /// Builds the table by bit-parallel simulation over all `2^n` patterns,
    /// using the global thread pool (`APPMULT_THREADS`).
    ///
    /// # Panics
    ///
    /// Panics if the netlist has more than 24 primary inputs (the table would
    /// exceed 16M entries) or more than 64 outputs.
    pub fn build(netlist: &Netlist) -> Self {
        Self::build_in(netlist, Pool::global())
    }

    /// Like [`ExhaustiveTable::build`] with an explicit worker pool.
    ///
    /// The `2^n` input patterns are partitioned into 64-lane simulation
    /// words and the word blocks are distributed across the workers; every
    /// table entry is written by exactly one worker, so the result is
    /// bit-identical for any thread count.
    pub fn build_in(netlist: &Netlist, pool: Pool) -> Self {
        Self::build_with(netlist, pool, simulate_words_into)
    }

    /// Builds the table with a caller-supplied simulation kernel (same
    /// contract as [`simulate_words_into`], except the kernel must be
    /// `Fn + Sync` so word blocks can run on several workers). This is how
    /// the fault-injection module extracts truth tables of defective
    /// hardware without mutating the netlist.
    pub(crate) fn build_with<F>(netlist: &Netlist, pool: Pool, sim: F) -> Self
    where
        F: Fn(&Netlist, &[u64], &mut Vec<u64>) + Sync,
    {
        let n = netlist.num_inputs() as u32;
        assert!(
            n <= 24,
            "exhaustive table limited to 24 input bits, got {n}"
        );
        assert!(netlist.outputs().len() <= 64, "at most 64 output bits");
        let total: usize = 1usize << n;
        let mut values = vec![0u64; total];
        // Fills the 64-lane words starting at word index `first_word`. Each
        // worker owns its scratch buffers, so workers share nothing mutable.
        let fill_words = |first_word: usize, out: &mut [u64]| {
            let mut scratch = Vec::new();
            let mut input_words = vec![0u64; netlist.num_inputs()];
            for (wl, lane_chunk) in out.chunks_mut(64).enumerate() {
                let base = ((first_word + wl) * 64) as u64;
                for (i, word) in input_words.iter_mut().enumerate() {
                    if i < 6 {
                        // Patterns within one word enumerate the low 6 input bits.
                        *word = PERIODIC[i];
                    } else {
                        // Higher bits are constant within the word.
                        *word = if (base >> i) & 1 == 1 { u64::MAX } else { 0 };
                    }
                }
                sim(netlist, &input_words, &mut scratch);
                for (lane, v) in lane_chunk.iter_mut().enumerate() {
                    let mut out_bits = 0u64;
                    for (o, sig) in netlist.outputs().iter().enumerate() {
                        out_bits |= ((scratch[sig.index()] >> lane) & 1) << o;
                    }
                    *v = out_bits;
                }
            }
        };
        if total.is_multiple_of(64) {
            pool.run_rows(&mut values, 64, fill_words);
        } else {
            // Fewer than 6 inputs: a single partial word, run serially.
            fill_words(0, &mut values);
        }
        Self {
            input_bits: n,
            values,
        }
    }

    /// Number of primary input bits.
    pub fn input_bits(&self) -> u32 {
        self.input_bits
    }

    /// Output value per input combination (index = input bus value).
    pub fn values(&self) -> &[u64] {
        &self.values
    }

    /// Consumes the table, returning the raw values.
    pub fn into_values(self) -> Vec<u64> {
        self.values
    }
}

/// Periodic patterns for the 6 lowest input bits within a 64-lane word:
/// bit `i` of lane `k` equals bit `i` of `k`.
const PERIODIC: [u64; 6] = [
    0xAAAA_AAAA_AAAA_AAAA,
    0xCCCC_CCCC_CCCC_CCCC,
    0xF0F0_F0F0_F0F0_F0F0,
    0xFF00_FF00_FF00_FF00,
    0xFFFF_0000_FFFF_0000,
    0xFFFF_FFFF_0000_0000,
];

/// Signal one-probabilities over the exhaustive input space.
///
/// Returns, for every node, the fraction of input combinations under which
/// the node evaluates to 1. Used by the power model (uniform inputs, as in
/// the paper's measurement setup) and cached by the `appmult-verify`
/// analysis context for activity-aware lints.
///
/// # Panics
///
/// Panics if the netlist has more than 24 primary inputs.
pub fn signal_probabilities(netlist: &Netlist) -> Vec<f64> {
    let n = netlist.num_inputs() as u32;
    assert!(n <= 24, "probability extraction limited to 24 input bits");
    let total = 1usize << n;
    let words = total.div_ceil(64);
    let mut ones = vec![0u64; netlist.num_nodes()];
    let mut scratch = Vec::new();
    let mut input_words = vec![0u64; netlist.num_inputs()];
    for w in 0..words {
        let base = (w * 64) as u64;
        for (i, word) in input_words.iter_mut().enumerate() {
            if i < 6 {
                *word = PERIODIC[i];
            } else {
                *word = if (base >> i) & 1 == 1 { u64::MAX } else { 0 };
            }
        }
        simulate_words_into(netlist, &input_words, &mut scratch);
        let lanes = (total - w * 64).min(64);
        let mask = if lanes == 64 {
            u64::MAX
        } else {
            (1u64 << lanes) - 1
        };
        for (c, v) in ones.iter_mut().zip(&scratch) {
            *c += (v & mask).count_ones() as u64;
        }
    }
    ones.into_iter().map(|c| c as f64 / total as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_netlist() -> Netlist {
        let mut nl = Netlist::new();
        let a = nl.input();
        let b = nl.input();
        let y = nl.xor(a, b);
        nl.set_outputs(vec![y]);
        nl
    }

    #[test]
    fn simulate_bools_matches_truth_table() {
        let nl = xor_netlist();
        assert_eq!(simulate_bools(&nl, &[false, false]), vec![false]);
        assert_eq!(simulate_bools(&nl, &[true, false]), vec![true]);
        assert_eq!(simulate_bools(&nl, &[false, true]), vec![true]);
        assert_eq!(simulate_bools(&nl, &[true, true]), vec![false]);
    }

    #[test]
    fn simulate_words_is_lanewise() {
        let nl = xor_netlist();
        // lane0: 0^0, lane1: 1^0, lane2: 0^1, lane3: 1^1
        let out = simulate_words(&nl, &[0b0010, 0b0100]);
        assert_eq!(out[0] & 0xF, 0b0110);
    }

    #[test]
    fn exhaustive_full_adder() {
        let mut nl = Netlist::new();
        let a = nl.input();
        let b = nl.input();
        let c = nl.input();
        let (s, co) = nl.full_adder(a, b, c);
        nl.set_outputs(vec![s, co]);
        let t = ExhaustiveTable::build(&nl);
        for v in 0..8u64 {
            let expect = (v & 1) + ((v >> 1) & 1) + ((v >> 2) & 1);
            assert_eq!(t.values()[v as usize], expect, "input {v:03b}");
        }
    }

    #[test]
    fn exhaustive_handles_more_than_six_inputs() {
        // 8-input parity: exercises the constant-per-word high input bits.
        let mut nl = Netlist::new();
        let inputs: Vec<_> = (0..8).map(|_| nl.input()).collect();
        let mut p = inputs[0];
        for &i in &inputs[1..] {
            p = nl.xor(p, i);
        }
        nl.set_outputs(vec![p]);
        let t = ExhaustiveTable::build(&nl);
        for v in 0..256u64 {
            assert_eq!(t.values()[v as usize], u64::from(v.count_ones() % 2));
        }
    }

    #[test]
    fn parallel_exhaustive_table_matches_serial() {
        // A 10-input multiplier netlist: 1024 patterns = 16 words, spread
        // over worker counts that do not divide 16.
        let nl = crate::MultiplierCircuit::array(5).netlist().clone();
        let serial = ExhaustiveTable::build_in(&nl, Pool::serial());
        for threads in [2usize, 3, 5, 16, 64] {
            let par = ExhaustiveTable::build_in(&nl, Pool::new(threads));
            assert_eq!(serial, par, "threads={threads}");
        }
        // Sub-word netlist (3 inputs < 64 lanes) stays on the serial path.
        let mut small = Netlist::new();
        let a = small.input();
        let b = small.input();
        let c = small.input();
        let (s, co) = small.full_adder(a, b, c);
        small.set_outputs(vec![s, co]);
        assert_eq!(
            ExhaustiveTable::build_in(&small, Pool::serial()),
            ExhaustiveTable::build_in(&small, Pool::new(8)),
        );
    }

    #[test]
    fn probabilities_of_and_gate() {
        let mut nl = Netlist::new();
        let a = nl.input();
        let b = nl.input();
        let y = nl.and(a, b);
        nl.set_outputs(vec![y]);
        let p = signal_probabilities(&nl);
        assert!((p[a.index()] - 0.5).abs() < 1e-12);
        assert!((p[y.index()] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn constants_simulate_correctly() {
        let mut nl = Netlist::new();
        let a = nl.input();
        let one = nl.const1();
        let zero = nl.const0();
        let x = nl.and(a, one);
        let y = nl.or(a, zero);
        let n1 = nl.nand(a, one);
        let n2 = nl.nor(a, zero);
        let n3 = nl.xnor(a, one);
        nl.set_outputs(vec![x, y, n1, n2, n3]);
        let t = ExhaustiveTable::build(&nl);
        // a=0 -> x=0,y=0,n1=1,n2=1,n3=0 (bit k = output k) => 0b01100
        assert_eq!(t.values()[0], 0b01100);
        // a=1 -> x=1,y=1,n1=0,n2=0,n3=1  => 0b10011
        assert_eq!(t.values()[1], 0b10011);
    }
}
