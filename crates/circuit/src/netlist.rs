//! Combinational gate netlist representation.
//!
//! A [`Netlist`] is an append-only DAG of gates. Signals are created in
//! topological order (a gate may only reference signals that already exist),
//! which makes simulation and levelization single forward passes.

use std::fmt;

/// Index of a signal (primary input or gate output) inside a [`Netlist`].
///
/// Signals are handed out by the netlist builder methods and are only
/// meaningful for the netlist that created them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Signal(pub(crate) u32);

impl Signal {
    /// Raw index of this signal in the netlist's node table.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a signal from a raw node index (e.g. a fault site read
    /// from a sweep configuration). The index is validated only when the
    /// signal is used against a concrete netlist; prefer
    /// [`Netlist::signal_from_index`] when the target netlist is at hand.
    pub fn from_index(index: usize) -> Self {
        Self(index as u32)
    }
}

impl fmt::Display for Signal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The logic function implemented by a netlist node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// Primary input; has no fanins.
    Input,
    /// Constant logic 0.
    Const0,
    /// Constant logic 1.
    Const1,
    /// Identity of a single fanin.
    Buf,
    /// Negation of a single fanin.
    Not,
    /// Two-input AND.
    And,
    /// Two-input OR.
    Or,
    /// Two-input XOR.
    Xor,
    /// Two-input NAND.
    Nand,
    /// Two-input NOR.
    Nor,
    /// Two-input XNOR.
    Xnor,
}

impl GateKind {
    /// Number of fanins this gate kind requires.
    pub fn arity(self) -> usize {
        match self {
            GateKind::Input | GateKind::Const0 | GateKind::Const1 => 0,
            GateKind::Buf | GateKind::Not => 1,
            _ => 2,
        }
    }

    /// Whether the node contributes silicon (inputs and constants are free).
    pub fn is_physical(self) -> bool {
        !matches!(
            self,
            GateKind::Input | GateKind::Const0 | GateKind::Const1 | GateKind::Buf
        )
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            GateKind::Input => "input",
            GateKind::Const0 => "const0",
            GateKind::Const1 => "const1",
            GateKind::Buf => "buf",
            GateKind::Not => "not",
            GateKind::And => "and",
            GateKind::Or => "or",
            GateKind::Xor => "xor",
            GateKind::Nand => "nand",
            GateKind::Nor => "nor",
            GateKind::Xnor => "xnor",
        };
        f.write_str(s)
    }
}

/// A single node of the netlist: its function and (up to two) fanins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Gate {
    /// Logic function of the node.
    pub kind: GateKind,
    /// Fanin signals; entries beyond [`GateKind::arity`] are unused.
    pub fanins: [Signal; 2],
}

/// Error raised when building or editing a netlist incorrectly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A fanin refers to a signal that does not precede the gate.
    ForwardReference {
        /// The offending gate index.
        gate: usize,
        /// The fanin signal that is not yet defined.
        fanin: Signal,
    },
    /// A signal index is out of range for this netlist.
    UnknownSignal(Signal),
    /// A rewrite would create a combinational cycle.
    WouldCycle {
        /// The gate that was being rewritten.
        gate: Signal,
        /// The replacement signal in its transitive fanout.
        replacement: Signal,
    },
    /// A fanin slot index is not valid for the gate's kind.
    ArityExceeded {
        /// The gate being rewired.
        gate: Signal,
        /// The requested fanin slot.
        slot: usize,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::ForwardReference { gate, fanin } => {
                write!(f, "gate {gate} references later signal {fanin}")
            }
            NetlistError::UnknownSignal(s) => write!(f, "unknown signal {s}"),
            NetlistError::WouldCycle { gate, replacement } => {
                write!(
                    f,
                    "replacing {gate} with {replacement} would create a cycle"
                )
            }
            NetlistError::ArityExceeded { gate, slot } => {
                write!(f, "gate {gate} has no fanin slot {slot}")
            }
        }
    }
}

impl std::error::Error for NetlistError {}

/// An append-only combinational gate network.
///
/// Nodes are stored in topological order. Primary inputs are created with
/// [`Netlist::input`], logic with the gate builder methods, and outputs are
/// registered with [`Netlist::set_outputs`].
///
/// # Example
///
/// ```
/// use appmult_circuit::Netlist;
///
/// let mut nl = Netlist::new();
/// let a = nl.input();
/// let b = nl.input();
/// let sum = nl.xor(a, b);
/// let carry = nl.and(a, b);
/// nl.set_outputs(vec![sum, carry]);
/// assert_eq!(nl.num_inputs(), 2);
/// assert_eq!(nl.outputs().len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Netlist {
    gates: Vec<Gate>,
    inputs: Vec<Signal>,
    outputs: Vec<Signal>,
}

impl Netlist {
    /// Creates an empty netlist.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Total number of nodes (inputs, constants, and gates).
    pub fn num_nodes(&self) -> usize {
        self.gates.len()
    }

    /// Number of silicon-bearing gates (excludes inputs, constants, buffers).
    pub fn num_physical_gates(&self) -> usize {
        self.gates.iter().filter(|g| g.kind.is_physical()).count()
    }

    /// Primary input signals in creation order.
    pub fn inputs(&self) -> &[Signal] {
        &self.inputs
    }

    /// Primary output signals in registration order.
    pub fn outputs(&self) -> &[Signal] {
        &self.outputs
    }

    /// The node behind `signal`.
    ///
    /// # Panics
    ///
    /// Panics if `signal` does not belong to this netlist.
    pub fn gate(&self, signal: Signal) -> Gate {
        self.gates[signal.index()]
    }

    /// Non-panicking variant of [`Netlist::gate`].
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownSignal`] if `signal` is out of range
    /// for this netlist (e.g. a [`Signal::from_index`] value read from an
    /// external file, or a signal created by a different netlist).
    pub fn try_gate(&self, signal: Signal) -> Result<Gate, NetlistError> {
        self.gates
            .get(signal.index())
            .copied()
            .ok_or(NetlistError::UnknownSignal(signal))
    }

    /// Reconstructs a signal from a raw node index, validated against this
    /// netlist. This is the checked counterpart of [`Signal::from_index`]
    /// for deserializing fault sites or lint locations.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownSignal`] if `index` exceeds the node
    /// table.
    pub fn signal_from_index(&self, index: usize) -> Result<Signal, NetlistError> {
        if index < self.gates.len() {
            Ok(Signal(index as u32))
        } else {
            Err(NetlistError::UnknownSignal(Signal::from_index(index)))
        }
    }

    /// Iterates over all nodes in topological order together with their signals.
    pub fn iter(&self) -> impl Iterator<Item = (Signal, Gate)> + '_ {
        self.gates
            .iter()
            .enumerate()
            .map(|(i, g)| (Signal(i as u32), *g))
    }

    fn push(&mut self, kind: GateKind, fanins: [Signal; 2]) -> Signal {
        for fanin in fanins.iter().take(kind.arity()) {
            debug_assert!(
                fanin.index() < self.gates.len(),
                "fanin {fanin} not yet defined"
            );
        }
        let s = Signal(self.gates.len() as u32);
        self.gates.push(Gate { kind, fanins });
        s
    }

    /// Creates a new primary input and returns its signal.
    pub fn input(&mut self) -> Signal {
        let s = self.push(GateKind::Input, [Signal(0); 2]);
        self.inputs.push(s);
        s
    }

    /// Creates a constant-0 node.
    pub fn const0(&mut self) -> Signal {
        self.push(GateKind::Const0, [Signal(0); 2])
    }

    /// Creates a constant-1 node.
    pub fn const1(&mut self) -> Signal {
        self.push(GateKind::Const1, [Signal(0); 2])
    }

    /// Creates a buffer (identity) of `a`.
    pub fn buf(&mut self, a: Signal) -> Signal {
        self.push(GateKind::Buf, [a, a])
    }

    /// Creates the negation of `a`.
    pub fn not(&mut self, a: Signal) -> Signal {
        self.push(GateKind::Not, [a, a])
    }

    /// Creates `a AND b`.
    pub fn and(&mut self, a: Signal, b: Signal) -> Signal {
        self.push(GateKind::And, [a, b])
    }

    /// Creates `a OR b`.
    pub fn or(&mut self, a: Signal, b: Signal) -> Signal {
        self.push(GateKind::Or, [a, b])
    }

    /// Creates `a XOR b`.
    pub fn xor(&mut self, a: Signal, b: Signal) -> Signal {
        self.push(GateKind::Xor, [a, b])
    }

    /// Creates `NOT (a AND b)`.
    pub fn nand(&mut self, a: Signal, b: Signal) -> Signal {
        self.push(GateKind::Nand, [a, b])
    }

    /// Creates `NOT (a OR b)`.
    pub fn nor(&mut self, a: Signal, b: Signal) -> Signal {
        self.push(GateKind::Nor, [a, b])
    }

    /// Creates `NOT (a XOR b)`.
    pub fn xnor(&mut self, a: Signal, b: Signal) -> Signal {
        self.push(GateKind::Xnor, [a, b])
    }

    /// Registers the primary outputs (replacing any previous registration).
    ///
    /// # Panics
    ///
    /// Panics if any signal does not belong to this netlist.
    pub fn set_outputs(&mut self, outputs: Vec<Signal>) {
        self.try_set_outputs(outputs)
            .unwrap_or_else(|e| panic!("unknown output signal: {e}"));
    }

    /// Non-panicking variant of [`Netlist::set_outputs`]. On error the
    /// previous output registration is left untouched.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownSignal`] naming the first output that
    /// does not belong to this netlist.
    pub fn try_set_outputs(&mut self, outputs: Vec<Signal>) -> Result<(), NetlistError> {
        for &o in &outputs {
            if o.index() >= self.gates.len() {
                return Err(NetlistError::UnknownSignal(o));
            }
        }
        self.outputs = outputs;
        Ok(())
    }

    /// Rewires one fanin slot of an existing gate.
    ///
    /// Both signals are bounds-checked against this netlist, but the new
    /// fanin is **not** required to precede the gate in topological order:
    /// synthesis passes and netlist importers may legitimately pass through
    /// states that violate the invariant. Run [`Netlist::validate`] (or the
    /// `appmult-verify` structural lints, which also detect the resulting
    /// combinational cycles) before simulating a rewired netlist.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownSignal`] if either signal is out of
    /// range or `gate` is a primary input, and
    /// [`NetlistError::ArityExceeded`] if `slot` is not a fanin slot of the
    /// gate's kind.
    pub fn set_fanin(
        &mut self,
        gate: Signal,
        slot: usize,
        fanin: Signal,
    ) -> Result<(), NetlistError> {
        let idx = gate.index();
        if idx >= self.gates.len() || self.gates[idx].kind == GateKind::Input {
            return Err(NetlistError::UnknownSignal(gate));
        }
        if fanin.index() >= self.gates.len() {
            return Err(NetlistError::UnknownSignal(fanin));
        }
        if slot >= self.gates[idx].kind.arity() {
            return Err(NetlistError::ArityExceeded { gate, slot });
        }
        self.gates[idx].fanins[slot] = fanin;
        // Single-fanin gates keep both slots aligned (builder convention).
        if self.gates[idx].kind.arity() == 1 {
            self.gates[idx].fanins[1] = fanin;
        }
        Ok(())
    }

    /// Replaces the logic function of an existing gate, keeping its fanins.
    ///
    /// Only kinds of the *same arity* are interchangeable: a two-input gate
    /// may become any other two-input gate (`And` ⇄ `Xor`, ...), and a
    /// single-input gate may flip between `Buf` and `Not`. Changing arity
    /// would leave a fanin slot dangling or unread, so it is rejected; use
    /// [`Netlist::replace_with_const`] / [`Netlist::replace_with_signal`]
    /// for arity-changing rewrites. This is the primitive behind the
    /// gate-substitution mutation of the design-space-exploration loop.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownSignal`] if `gate` is out of range or
    /// a primary input, and [`NetlistError::ArityExceeded`] if `kind` has a
    /// different arity than the gate's current kind (the reported `slot` is
    /// the new kind's arity).
    pub fn set_kind(&mut self, gate: Signal, kind: GateKind) -> Result<(), NetlistError> {
        let idx = gate.index();
        if idx >= self.gates.len()
            || self.gates[idx].kind == GateKind::Input
            || kind == GateKind::Input
        {
            return Err(NetlistError::UnknownSignal(gate));
        }
        if kind.arity() != self.gates[idx].kind.arity() {
            return Err(NetlistError::ArityExceeded {
                gate,
                slot: kind.arity(),
            });
        }
        self.gates[idx].kind = kind;
        Ok(())
    }

    /// Assembles a netlist directly from raw parts, e.g. when importing an
    /// externally generated design.
    ///
    /// **No validation is performed**: the gate table may contain forward
    /// references (combinational cycles), dangling fanins, or an input list
    /// inconsistent with the `Input` nodes. Callers must run
    /// [`Netlist::validate`] or the `appmult-verify` structural lints before
    /// trusting the result; the simulator's behaviour on an invalid netlist
    /// is unspecified (but memory-safe).
    pub fn from_raw_parts(gates: Vec<Gate>, inputs: Vec<Signal>, outputs: Vec<Signal>) -> Self {
        Self {
            gates,
            inputs,
            outputs,
        }
    }

    /// Builds a half adder over `(a, b)`, returning `(sum, carry)`.
    pub fn half_adder(&mut self, a: Signal, b: Signal) -> (Signal, Signal) {
        (self.xor(a, b), self.and(a, b))
    }

    /// Builds a full adder over `(a, b, cin)`, returning `(sum, carry)`.
    pub fn full_adder(&mut self, a: Signal, b: Signal, cin: Signal) -> (Signal, Signal) {
        let axb = self.xor(a, b);
        let sum = self.xor(axb, cin);
        let t1 = self.and(axb, cin);
        let t2 = self.and(a, b);
        let carry = self.or(t1, t2);
        (sum, carry)
    }

    /// Replaces the node behind `gate` with a constant.
    ///
    /// Used by the approximate-logic-synthesis pass. Primary inputs cannot be
    /// replaced.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownSignal`] if `gate` is out of range or a
    /// primary input.
    pub fn replace_with_const(&mut self, gate: Signal, value: bool) -> Result<(), NetlistError> {
        let idx = gate.index();
        if idx >= self.gates.len() || self.gates[idx].kind == GateKind::Input {
            return Err(NetlistError::UnknownSignal(gate));
        }
        self.gates[idx] = Gate {
            kind: if value {
                GateKind::Const1
            } else {
                GateKind::Const0
            },
            fanins: [Signal(0); 2],
        };
        Ok(())
    }

    /// Replaces the node behind `gate` with a buffer of `replacement`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownSignal`] for invalid signals, and
    /// [`NetlistError::WouldCycle`] if `replacement` does not precede `gate`
    /// in topological order (which would create a combinational cycle).
    pub fn replace_with_signal(
        &mut self,
        gate: Signal,
        replacement: Signal,
    ) -> Result<(), NetlistError> {
        let idx = gate.index();
        if idx >= self.gates.len() || self.gates[idx].kind == GateKind::Input {
            return Err(NetlistError::UnknownSignal(gate));
        }
        if replacement.index() >= self.gates.len() {
            return Err(NetlistError::UnknownSignal(replacement));
        }
        if replacement.index() >= idx {
            return Err(NetlistError::WouldCycle { gate, replacement });
        }
        self.gates[idx] = Gate {
            kind: GateKind::Buf,
            fanins: [replacement, replacement],
        };
        Ok(())
    }

    /// Number of gate fanin slots each signal drives.
    ///
    /// Primary outputs are not counted — a fanout-free signal that is
    /// registered as an output is still observable. Fanin slots referencing
    /// out-of-range signals (possible after [`Netlist::from_raw_parts`]) are
    /// skipped; the `appmult-verify` structural lints report those
    /// separately.
    pub fn fanout_counts(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.gates.len()];
        for g in &self.gates {
            for k in 0..g.kind.arity() {
                if let Some(c) = counts.get_mut(g.fanins[k].index()) {
                    *c += 1;
                }
            }
        }
        counts
    }

    /// Logic level of every node: 0 for arity-0 nodes (inputs, constants),
    /// `1 + max(fanin levels)` otherwise.
    ///
    /// Levels are only meaningful on a topologically valid netlist
    /// ([`Netlist::validate`]); forward or out-of-range fanins are treated
    /// as level 0 so the helper never panics on netlists the structural
    /// lints would reject.
    pub fn levels(&self) -> Vec<u32> {
        let mut levels = vec![0u32; self.gates.len()];
        for (i, g) in self.gates.iter().enumerate() {
            let mut level = 0;
            for k in 0..g.kind.arity() {
                let f = g.fanins[k].index();
                if f < i {
                    level = level.max(levels[f] + 1);
                }
            }
            levels[i] = level;
        }
        levels
    }

    /// Fanout adjacency: for every signal, the gates that read it, one
    /// entry per fanin slot (a gate fed twice by the same signal appears
    /// twice, mirroring [`Netlist::fanout_counts`]). Out-of-range fanins
    /// are skipped, as in `fanout_counts`.
    pub fn fanout_lists(&self) -> Vec<Vec<Signal>> {
        let mut lists = vec![Vec::new(); self.gates.len()];
        for (i, g) in self.gates.iter().enumerate() {
            for k in 0..g.kind.arity() {
                if let Some(l) = lists.get_mut(g.fanins[k].index()) {
                    l.push(Signal(i as u32));
                }
            }
        }
        lists
    }

    /// Marks the cone of logic reachable from the outputs.
    ///
    /// Returns one flag per node; unmarked nodes are dead and do not
    /// contribute to area, power, or delay.
    pub fn live_mask(&self) -> Vec<bool> {
        let mut live = vec![false; self.gates.len()];
        let mut stack: Vec<usize> = self.outputs.iter().map(|s| s.index()).collect();
        while let Some(i) = stack.pop() {
            if live[i] {
                continue;
            }
            live[i] = true;
            let g = self.gates[i];
            for k in 0..g.kind.arity() {
                stack.push(g.fanins[k].index());
            }
        }
        live
    }

    /// Number of live physical gates (reachable from outputs).
    pub fn live_gate_count(&self) -> usize {
        let live = self.live_mask();
        self.gates
            .iter()
            .zip(&live)
            .filter(|(g, &l)| l && g.kind.is_physical())
            .count()
    }

    /// Checks the topological invariant (every fanin precedes its gate).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::ForwardReference`] describing the first violation.
    pub fn validate(&self) -> Result<(), NetlistError> {
        for (i, g) in self.gates.iter().enumerate() {
            for k in 0..g.kind.arity() {
                if g.fanins[k].index() >= i {
                    return Err(NetlistError::ForwardReference {
                        gate: i,
                        fanin: g.fanins[k],
                    });
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for Netlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "netlist: {} inputs, {} outputs, {} nodes ({} physical gates)",
            self.inputs.len(),
            self.outputs.len(),
            self.gates.len(),
            self.num_physical_gates()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assigns_sequential_signals() {
        let mut nl = Netlist::new();
        let a = nl.input();
        let b = nl.input();
        let c = nl.and(a, b);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(c.index(), 2);
        assert_eq!(nl.num_inputs(), 2);
        assert_eq!(nl.num_nodes(), 3);
    }

    #[test]
    fn validate_accepts_builder_output() {
        let mut nl = Netlist::new();
        let a = nl.input();
        let b = nl.input();
        let x = nl.xor(a, b);
        let y = nl.nand(x, a);
        nl.set_outputs(vec![y]);
        assert!(nl.validate().is_ok());
    }

    #[test]
    fn physical_gate_count_excludes_inputs_constants_buffers() {
        let mut nl = Netlist::new();
        let a = nl.input();
        let z = nl.const0();
        let b = nl.buf(a);
        let c = nl.and(b, z);
        nl.set_outputs(vec![c]);
        assert_eq!(nl.num_physical_gates(), 1);
    }

    #[test]
    fn replace_with_signal_rejects_forward_reference() {
        let mut nl = Netlist::new();
        let a = nl.input();
        let b = nl.input();
        let g1 = nl.and(a, b);
        let g2 = nl.or(g1, a);
        nl.set_outputs(vec![g2]);
        let err = nl.replace_with_signal(g1, g2).unwrap_err();
        assert!(matches!(err, NetlistError::WouldCycle { .. }));
    }

    #[test]
    fn replace_with_const_rejects_inputs() {
        let mut nl = Netlist::new();
        let a = nl.input();
        assert!(nl.replace_with_const(a, false).is_err());
    }

    #[test]
    fn live_mask_drops_dead_logic() {
        let mut nl = Netlist::new();
        let a = nl.input();
        let b = nl.input();
        let used = nl.and(a, b);
        let _dead = nl.xor(a, b);
        nl.set_outputs(vec![used]);
        assert_eq!(nl.live_gate_count(), 1);
    }

    #[test]
    fn full_adder_structure() {
        let mut nl = Netlist::new();
        let a = nl.input();
        let b = nl.input();
        let c = nl.input();
        let (s, co) = nl.full_adder(a, b, c);
        nl.set_outputs(vec![s, co]);
        // 2 XOR + 2 AND + 1 OR
        assert_eq!(nl.num_physical_gates(), 5);
    }

    #[test]
    fn try_gate_rejects_foreign_signals() {
        let mut nl = Netlist::new();
        let a = nl.input();
        assert_eq!(nl.try_gate(a).unwrap().kind, GateKind::Input);
        let foreign = Signal::from_index(7);
        assert_eq!(
            nl.try_gate(foreign),
            Err(NetlistError::UnknownSignal(foreign))
        );
    }

    #[test]
    fn signal_from_index_validates_range() {
        let mut nl = Netlist::new();
        let a = nl.input();
        let b = nl.input();
        let g = nl.and(a, b);
        assert_eq!(nl.signal_from_index(2), Ok(g));
        assert!(matches!(
            nl.signal_from_index(3),
            Err(NetlistError::UnknownSignal(_))
        ));
    }

    #[test]
    fn try_set_outputs_keeps_previous_registration_on_error() {
        let mut nl = Netlist::new();
        let a = nl.input();
        let b = nl.input();
        let g = nl.or(a, b);
        nl.set_outputs(vec![g]);
        let err = nl.try_set_outputs(vec![g, Signal::from_index(99)]);
        assert!(err.is_err());
        assert_eq!(nl.outputs(), &[g]);
    }

    #[test]
    fn set_fanin_rewires_and_validates() {
        let mut nl = Netlist::new();
        let a = nl.input();
        let b = nl.input();
        let c = nl.input();
        let g = nl.and(a, b);
        nl.set_outputs(vec![g]);
        nl.set_fanin(g, 1, c).unwrap();
        assert_eq!(nl.gate(g).fanins, [a, c]);
        // Input gates cannot be rewired; slots beyond arity are rejected.
        assert!(matches!(
            nl.set_fanin(a, 0, b),
            Err(NetlistError::UnknownSignal(_))
        ));
        assert!(matches!(
            nl.set_fanin(g, 2, a),
            Err(NetlistError::ArityExceeded { .. })
        ));
        assert!(matches!(
            nl.set_fanin(g, 0, Signal::from_index(50)),
            Err(NetlistError::UnknownSignal(_))
        ));
        // Forward references are allowed (validate() reports them).
        let h = nl.not(g);
        nl.set_fanin(g, 0, h).unwrap();
        assert!(matches!(
            nl.validate(),
            Err(NetlistError::ForwardReference { .. })
        ));
    }

    #[test]
    fn set_kind_swaps_function_within_arity() {
        let mut nl = Netlist::new();
        let a = nl.input();
        let b = nl.input();
        let g = nl.and(a, b);
        let inv = nl.not(g);
        nl.set_outputs(vec![inv]);
        nl.set_kind(g, GateKind::Xor).unwrap();
        assert_eq!(nl.gate(g).kind, GateKind::Xor);
        assert_eq!(nl.gate(g).fanins, [a, b]);
        nl.set_kind(inv, GateKind::Buf).unwrap();
        assert_eq!(nl.gate(inv).kind, GateKind::Buf);
        // Arity changes, inputs, and out-of-range gates are rejected.
        assert!(matches!(
            nl.set_kind(g, GateKind::Not),
            Err(NetlistError::ArityExceeded { .. })
        ));
        assert!(matches!(
            nl.set_kind(g, GateKind::Const1),
            Err(NetlistError::ArityExceeded { .. })
        ));
        assert!(nl.set_kind(a, GateKind::Not).is_err());
        assert!(nl.set_kind(g, GateKind::Input).is_err());
        assert!(nl.set_kind(Signal::from_index(99), GateKind::And).is_err());
    }

    #[test]
    fn single_fanin_rewire_keeps_slots_aligned() {
        let mut nl = Netlist::new();
        let a = nl.input();
        let b = nl.input();
        let inv = nl.not(a);
        nl.set_fanin(inv, 0, b).unwrap();
        assert_eq!(nl.gate(inv).fanins, [b, b]);
    }

    #[test]
    fn from_raw_parts_round_trips_builder_output() {
        let mut nl = Netlist::new();
        let a = nl.input();
        let b = nl.input();
        let g = nl.xor(a, b);
        nl.set_outputs(vec![g]);
        let gates: Vec<Gate> = nl.iter().map(|(_, g)| g).collect();
        let raw = Netlist::from_raw_parts(gates, vec![a, b], vec![g]);
        assert_eq!(raw, nl);
        assert!(raw.validate().is_ok());
    }

    #[test]
    fn levels_and_fanout_lists_agree_with_structure() {
        let mut nl = Netlist::new();
        let a = nl.input();
        let b = nl.input();
        let c = nl.input();
        let (s, co) = nl.full_adder(a, b, c);
        nl.set_outputs(vec![s, co]);
        let levels = nl.levels();
        assert_eq!(levels[a.index()], 0);
        // sum = xor(xor(a, b), c) sits two levels deep.
        assert_eq!(levels[s.index()], 2);
        // carry = or(and(xor(a, b), c), and(a, b)): three gate levels deep
        // through the xor-and-or chain.
        assert_eq!(levels[co.index()], 3);

        let lists = nl.fanout_lists();
        let counts = nl.fanout_counts();
        for (i, list) in lists.iter().enumerate() {
            assert_eq!(list.len(), counts[i] as usize, "n{i}");
        }
        // Every listed reader really has the signal as a fanin.
        for (i, list) in lists.iter().enumerate() {
            for &reader in list {
                let g = nl.gate(reader);
                assert!((0..g.kind.arity()).any(|k| g.fanins[k].index() == i));
            }
        }
    }

    #[test]
    fn fanout_lists_double_count_twin_fanins() {
        let mut nl = Netlist::new();
        let a = nl.input();
        let twin = nl.xor(a, a);
        nl.set_outputs(vec![twin]);
        assert_eq!(nl.fanout_lists()[a.index()], vec![twin, twin]);
    }

    #[test]
    fn display_is_nonempty() {
        let nl = Netlist::new();
        assert!(!format!("{nl}").is_empty());
        assert!(!format!("{}", GateKind::Xor).is_empty());
        assert!(!format!("{}", Signal(3)).is_empty());
    }
}
