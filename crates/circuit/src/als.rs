//! Greedy approximate logic synthesis (ALS).
//!
//! Generates the `_syn` multipliers of the paper's Table I. The paper uses
//! ALSRAC (approximate logic synthesis by resubstitution with approximate
//! care sets); this module implements the same class of netlist rewrites —
//! replacing an internal signal by a constant or by another existing signal —
//! under an exhaustive NMED budget, accepting the cheapest-error rewrites
//! first. The resulting LUTs are irregular in the same way synthesized
//! approximate multipliers are, which is the property that stresses the
//! gradient approximation.

use appmult_rng::Rng64;

use crate::arith::MultiplierCircuit;
use crate::netlist::{Netlist, Signal};

/// Configuration of the greedy ALS pass.
#[derive(Debug, Clone, PartialEq)]
pub struct AlsConfig {
    /// NMED budget as a fraction of `2^(2B) - 1` (e.g. `0.0028` for 0.28%).
    pub nmed_budget: f64,
    /// RNG seed for wire-substitution candidate sampling.
    pub seed: u64,
    /// Maximum number of accepted rewrites.
    pub max_rewrites: usize,
    /// Number of earlier signals sampled per gate as substitution candidates.
    pub substitution_samples: usize,
}

impl Default for AlsConfig {
    fn default() -> Self {
        Self {
            nmed_budget: 0.003,
            seed: 0xA15,
            max_rewrites: 256,
            substitution_samples: 12,
        }
    }
}

/// One accepted netlist rewrite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlsRewrite {
    /// Gate output tied to a constant.
    Constant {
        /// The rewritten gate.
        gate: Signal,
        /// The constant value it was tied to.
        value: bool,
    },
    /// Gate output replaced by another existing signal.
    Substitute {
        /// The rewritten gate.
        gate: Signal,
        /// The signal now driving its fanout.
        with: Signal,
    },
}

/// Result of [`synthesize`].
#[derive(Debug, Clone)]
pub struct AlsOutcome {
    /// The approximated multiplier circuit.
    pub circuit: MultiplierCircuit,
    /// Accepted rewrites in application order.
    pub rewrites: Vec<AlsRewrite>,
    /// Final NMED (fraction of `2^(2B) - 1`).
    pub nmed: f64,
    /// Live physical gates before synthesis.
    pub gates_before: usize,
    /// Live physical gates after synthesis.
    pub gates_after: usize,
}

/// NMED of a netlist interpreted as a `bits x bits` multiplier, relative to
/// the exact product, normalized by `2^(2B) - 1`.
fn multiplier_nmed(netlist: &Netlist, bits: u32) -> f64 {
    let table = crate::sim::ExhaustiveTable::build(netlist);
    let n = 1u64 << bits;
    let norm = ((1u64 << (2 * bits)) - 1) as f64;
    let mut sum = 0.0f64;
    // Simulation index convention: w low bits, x high bits.
    for x in 0..n {
        for w in 0..n {
            let y = table.values()[((x << bits) | w) as usize];
            let acc = w * x;
            sum += (y as i64 - acc as i64).unsigned_abs() as f64;
        }
    }
    sum / (n * n) as f64 / norm
}

/// Runs greedy approximate logic synthesis on a multiplier circuit.
///
/// Candidates (constant-0/1 replacement of every live gate, plus sampled
/// wire substitutions) are scored by the exact NMED they would individually
/// introduce, then applied cheapest-first while the cumulative NMED stays
/// within [`AlsConfig::nmed_budget`].
///
/// # Example
///
/// ```
/// use appmult_circuit::{synthesize, AlsConfig, MultiplierCircuit, CostModel};
///
/// let exact = MultiplierCircuit::array(6);
/// let cfg = AlsConfig { nmed_budget: 0.005, ..AlsConfig::default() };
/// let outcome = synthesize(&exact, &cfg);
/// assert!(outcome.nmed <= 0.005);
/// assert!(outcome.gates_after < outcome.gates_before);
/// let model = CostModel::asap7();
/// assert!(model.estimate(&outcome.circuit).area_um2 < model.estimate(&exact).area_um2);
/// ```
pub fn synthesize(base: &MultiplierCircuit, cfg: &AlsConfig) -> AlsOutcome {
    let bits = base.bits();
    let mut rng = Rng64::seed_from_u64(cfg.seed);
    let mut netlist = base.netlist().clone();
    let gates_before = netlist.live_gate_count();
    let base_nmed = multiplier_nmed(&netlist, bits);

    // Enumerate candidates against the *initial* netlist and score each by
    // the NMED it introduces alone.
    #[derive(Debug)]
    struct Candidate {
        rewrite: AlsRewrite,
        solo_nmed: f64,
    }
    let live = netlist.live_mask();
    let mut candidates: Vec<Candidate> = Vec::new();
    let rewritable: Vec<Signal> = netlist
        .iter()
        .filter(|(s, g)| live[s.index()] && g.kind.is_physical())
        .map(|(s, _)| s)
        .collect();

    for &g in &rewritable {
        for value in [false, true] {
            let mut trial = netlist.clone();
            trial
                .replace_with_const(g, value)
                .expect("gate is rewritable");
            let nmed = multiplier_nmed(&trial, bits);
            candidates.push(Candidate {
                rewrite: AlsRewrite::Constant { gate: g, value },
                solo_nmed: nmed,
            });
        }
        for _ in 0..cfg.substitution_samples {
            if g.index() == 0 {
                break;
            }
            let with = Signal(rng.index(g.index()) as u32);
            let mut trial = netlist.clone();
            if trial.replace_with_signal(g, with).is_err() {
                continue;
            }
            let nmed = multiplier_nmed(&trial, bits);
            candidates.push(Candidate {
                rewrite: AlsRewrite::Substitute { gate: g, with },
                solo_nmed: nmed,
            });
        }
    }
    candidates.sort_by(|a, b| {
        a.solo_nmed
            .partial_cmp(&b.solo_nmed)
            .expect("nmed is finite")
    });

    // Apply cheapest-first, re-checking the cumulative NMED after each
    // tentative application.
    let mut rewrites = Vec::new();
    let mut current_nmed = base_nmed;
    let mut touched = vec![false; netlist.num_nodes()];
    for cand in candidates {
        if rewrites.len() >= cfg.max_rewrites {
            break;
        }
        if cand.solo_nmed > cfg.nmed_budget {
            break; // sorted: nothing cheaper remains
        }
        let gate = match cand.rewrite {
            AlsRewrite::Constant { gate, .. } | AlsRewrite::Substitute { gate, .. } => gate,
        };
        if touched[gate.index()] {
            continue;
        }
        let mut trial = netlist.clone();
        let ok = match cand.rewrite {
            AlsRewrite::Constant { gate, value } => trial.replace_with_const(gate, value).is_ok(),
            AlsRewrite::Substitute { gate, with } => trial.replace_with_signal(gate, with).is_ok(),
        };
        if !ok {
            continue;
        }
        let nmed = multiplier_nmed(&trial, bits);
        if nmed <= cfg.nmed_budget && nmed >= current_nmed - 1e-15 {
            netlist = trial;
            current_nmed = nmed;
            touched[gate.index()] = true;
            rewrites.push(cand.rewrite);
        }
    }

    let gates_after = netlist.live_gate_count();
    AlsOutcome {
        circuit: MultiplierCircuit::from_parts(
            netlist,
            bits,
            base.structure(),
            base.removed_columns(),
        ),
        rewrites,
        nmed: current_nmed,
        gates_before,
        gates_after,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nmed_of_exact_multiplier_is_zero() {
        let m = MultiplierCircuit::array(4);
        assert_eq!(multiplier_nmed(m.netlist(), 4), 0.0);
    }

    #[test]
    fn synthesis_respects_budget_and_saves_gates() {
        let exact = MultiplierCircuit::array(5);
        let cfg = AlsConfig {
            nmed_budget: 0.004,
            ..AlsConfig::default()
        };
        let out = synthesize(&exact, &cfg);
        assert!(out.nmed <= cfg.nmed_budget + 1e-12);
        assert!(out.gates_after < out.gates_before, "{out:?}");
        assert!(!out.rewrites.is_empty());
    }

    #[test]
    fn zero_budget_changes_nothing_functional() {
        let exact = MultiplierCircuit::array(4);
        let cfg = AlsConfig {
            nmed_budget: 0.0,
            ..AlsConfig::default()
        };
        let out = synthesize(&exact, &cfg);
        // Only error-free rewrites (e.g. redundant logic) may be accepted.
        assert_eq!(out.nmed, 0.0);
        let lut = out.circuit.exhaustive_products();
        for w in 0..16u64 {
            for x in 0..16u64 {
                assert_eq!(lut[((w << 4) | x) as usize], w * x);
            }
        }
    }

    #[test]
    fn synthesis_is_deterministic_for_a_seed() {
        let exact = MultiplierCircuit::array(4);
        let cfg = AlsConfig {
            nmed_budget: 0.006,
            seed: 7,
            ..AlsConfig::default()
        };
        let a = synthesize(&exact, &cfg);
        let b = synthesize(&exact, &cfg);
        assert_eq!(a.rewrites, b.rewrites);
        assert_eq!(
            a.circuit.exhaustive_products(),
            b.circuit.exhaustive_products()
        );
    }

    #[test]
    fn larger_budget_never_keeps_more_gates() {
        let exact = MultiplierCircuit::array(5);
        let small = synthesize(
            &exact,
            &AlsConfig {
                nmed_budget: 0.001,
                ..AlsConfig::default()
            },
        );
        let large = synthesize(
            &exact,
            &AlsConfig {
                nmed_budget: 0.01,
                ..AlsConfig::default()
            },
        );
        assert!(large.gates_after <= small.gates_after);
    }
}
