//! Gate-level fault injection.
//!
//! Models permanent hardware defects in a fabricated multiplier: a gate
//! output stuck at logic 0 or 1 (the classic stuck-at model used by
//! manufacturing test), or inverted (a simple bridging/transistor defect
//! proxy). Faults are described *outside* the netlist by [`FaultSpec`]
//! values and applied as an overlay during simulation, so the same
//! [`Netlist`] can be evaluated under many fault scenarios without being
//! cloned or mutated.
//!
//! This backs the faulty-hardware retraining sweeps: extract the faulted
//! truth table with [`exhaustive_table_faulted`] (or
//! [`crate::MultiplierCircuit::exhaustive_products_faulted`]), wrap it as a
//! product LUT, and retrain against the defective design.
//!
//! # Example
//!
//! ```
//! use appmult_circuit::{fault_sites, FaultSpec, MultiplierCircuit};
//!
//! let mult = MultiplierCircuit::array(4);
//! let sites = fault_sites(mult.netlist());
//! assert!(!sites.is_empty());
//!
//! // Break one gate and extract the defective product table.
//! let faults = [FaultSpec::stuck_at_1(sites[0])];
//! let faulty = mult.exhaustive_products_faulted(&faults).unwrap();
//! assert_eq!(faulty.len(), 256);
//! ```

use crate::netlist::{Netlist, NetlistError, Signal};
use crate::sim::{simulate_words_into_overlay, ExhaustiveTable};

/// The defect model applied to a gate output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Output permanently reads logic 0.
    StuckAt0,
    /// Output permanently reads logic 1.
    StuckAt1,
    /// Output reads the complement of the fault-free value.
    OutputInvert,
}

impl FaultKind {
    /// Applies the fault to a 64-lane simulation word of fault-free values.
    pub fn apply(self, word: u64) -> u64 {
        match self {
            FaultKind::StuckAt0 => 0,
            FaultKind::StuckAt1 => u64::MAX,
            FaultKind::OutputInvert => !word,
        }
    }

    /// All defect models, in a fixed order (useful for sweeps).
    pub const ALL: [FaultKind; 3] = [
        FaultKind::StuckAt0,
        FaultKind::StuckAt1,
        FaultKind::OutputInvert,
    ];
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FaultKind::StuckAt0 => "sa0",
            FaultKind::StuckAt1 => "sa1",
            FaultKind::OutputInvert => "inv",
        };
        f.write_str(s)
    }
}

/// One injected fault: a defect model at a specific netlist node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultSpec {
    /// The node whose output is defective.
    pub site: Signal,
    /// The defect model.
    pub kind: FaultKind,
}

impl FaultSpec {
    /// A stuck-at-0 fault at `site`.
    pub fn stuck_at_0(site: Signal) -> Self {
        Self {
            site,
            kind: FaultKind::StuckAt0,
        }
    }

    /// A stuck-at-1 fault at `site`.
    pub fn stuck_at_1(site: Signal) -> Self {
        Self {
            site,
            kind: FaultKind::StuckAt1,
        }
    }

    /// An output-inversion fault at `site`.
    pub fn output_invert(site: Signal) -> Self {
        Self {
            site,
            kind: FaultKind::OutputInvert,
        }
    }
}

impl std::fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}@{}", self.kind, self.site)
    }
}

/// Enumerates the injectable fault sites of a netlist: every silicon-bearing
/// gate that is live (reachable from the primary outputs). Dead gates and
/// free nodes (inputs, constants, buffers) are excluded — a defect there
/// either cannot exist or cannot be observed.
pub fn fault_sites(netlist: &Netlist) -> Vec<Signal> {
    let live = netlist.live_mask();
    netlist
        .iter()
        .filter(|(s, g)| live[s.index()] && g.kind.is_physical())
        .map(|(s, _)| s)
        .collect()
}

/// Compiles fault specs into a per-node overlay for the simulator.
///
/// When several faults target the same site, the last one wins (mirroring a
/// physical defect: a node has one actual behaviour).
fn compile_overlay(
    netlist: &Netlist,
    faults: &[FaultSpec],
) -> Result<Vec<Option<FaultKind>>, NetlistError> {
    let mut overlay = vec![None; netlist.num_nodes()];
    for f in faults {
        if f.site.index() >= netlist.num_nodes() {
            return Err(NetlistError::UnknownSignal(f.site));
        }
        overlay[f.site.index()] = Some(f.kind);
    }
    Ok(overlay)
}

/// Like [`crate::simulate_words`], but with `faults` injected.
///
/// The netlist itself is untouched; an empty fault list reproduces the
/// fault-free simulation bit for bit.
///
/// # Errors
///
/// Returns [`NetlistError::UnknownSignal`] if a fault site does not belong
/// to this netlist.
///
/// # Panics
///
/// Panics if `input_words.len()` differs from the number of primary inputs.
pub fn simulate_words_faulted(
    netlist: &Netlist,
    faults: &[FaultSpec],
    input_words: &[u64],
) -> Result<Vec<u64>, NetlistError> {
    let overlay = compile_overlay(netlist, faults)?;
    let mut scratch = Vec::new();
    simulate_words_into_overlay(netlist, input_words, &mut scratch, &overlay);
    Ok(netlist
        .outputs()
        .iter()
        .map(|s| scratch[s.index()])
        .collect())
}

/// Like [`ExhaustiveTable::build`], but with `faults` injected.
///
/// An empty fault list yields a table identical to the fault-free build.
///
/// # Errors
///
/// Returns [`NetlistError::UnknownSignal`] if a fault site does not belong
/// to this netlist.
///
/// # Panics
///
/// Panics under the same size limits as [`ExhaustiveTable::build`].
pub fn exhaustive_table_faulted(
    netlist: &Netlist,
    faults: &[FaultSpec],
) -> Result<ExhaustiveTable, NetlistError> {
    let overlay = compile_overlay(netlist, faults)?;
    Ok(ExhaustiveTable::build_with(
        netlist,
        appmult_pool::Pool::global(),
        |nl, words, scratch| {
            simulate_words_into_overlay(nl, words, scratch, &overlay);
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arith::MultiplierCircuit;
    use crate::sim::simulate_words;

    fn adder_netlist() -> Netlist {
        let mut nl = Netlist::new();
        let a = nl.input();
        let b = nl.input();
        let c = nl.input();
        let (s, co) = nl.full_adder(a, b, c);
        nl.set_outputs(vec![s, co]);
        nl
    }

    #[test]
    fn empty_fault_list_is_identity() {
        let nl = adder_netlist();
        let words = [
            0xDEAD_BEEF_0123_4567,
            0xAAAA_5555_FFFF_0000,
            0x0F0F_F0F0_CAFE_BABE,
        ];
        let clean = simulate_words(&nl, &words);
        let faulted = simulate_words_faulted(&nl, &[], &words).unwrap();
        assert_eq!(clean, faulted);
        let t0 = ExhaustiveTable::build(&nl);
        let t1 = exhaustive_table_faulted(&nl, &[]).unwrap();
        assert_eq!(t0, t1);
    }

    #[test]
    fn stuck_at_forces_output() {
        let nl = adder_netlist();
        let sum = nl.outputs()[0];
        let t = exhaustive_table_faulted(&nl, &[FaultSpec::stuck_at_1(sum)]).unwrap();
        for v in t.values() {
            assert_eq!(v & 1, 1, "sum bit must be stuck at 1");
        }
        let t = exhaustive_table_faulted(&nl, &[FaultSpec::stuck_at_0(sum)]).unwrap();
        for v in t.values() {
            assert_eq!(v & 1, 0, "sum bit must be stuck at 0");
        }
    }

    #[test]
    fn output_invert_complements_one_bit() {
        let nl = adder_netlist();
        let carry = nl.outputs()[1];
        let clean = ExhaustiveTable::build(&nl);
        let inv = exhaustive_table_faulted(&nl, &[FaultSpec::output_invert(carry)]).unwrap();
        for (c, f) in clean.values().iter().zip(inv.values()) {
            assert_eq!(c ^ 0b10, *f);
        }
    }

    #[test]
    fn unknown_site_is_rejected() {
        let nl = adder_netlist();
        let bogus = Signal(nl.num_nodes() as u32 + 7);
        let err = simulate_words_faulted(&nl, &[FaultSpec::stuck_at_0(bogus)], &[0, 0, 0]);
        assert!(matches!(err, Err(NetlistError::UnknownSignal(_))));
        assert!(exhaustive_table_faulted(&nl, &[FaultSpec::output_invert(bogus)]).is_err());
    }

    #[test]
    fn last_fault_wins_on_shared_site() {
        let nl = adder_netlist();
        let sum = nl.outputs()[0];
        let faults = [FaultSpec::stuck_at_1(sum), FaultSpec::stuck_at_0(sum)];
        let t = exhaustive_table_faulted(&nl, &faults).unwrap();
        for v in t.values() {
            assert_eq!(v & 1, 0);
        }
    }

    #[test]
    fn fault_sites_are_live_physical_gates() {
        let mut nl = Netlist::new();
        let a = nl.input();
        let b = nl.input();
        let used = nl.and(a, b);
        let _dead = nl.xor(a, b);
        let buffed = nl.buf(used);
        nl.set_outputs(vec![buffed]);
        let sites = fault_sites(&nl);
        // Only the AND gate: inputs/buffers are free, the XOR is dead.
        assert_eq!(sites, vec![used]);
    }

    #[test]
    fn faulted_multiplier_stays_in_output_bus() {
        let mult = MultiplierCircuit::array(4);
        let sites = fault_sites(mult.netlist());
        for (i, &site) in sites.iter().enumerate().step_by(7) {
            let kind = FaultKind::ALL[i % 3];
            let lut = mult
                .exhaustive_products_faulted(&[FaultSpec { site, kind }])
                .unwrap();
            assert_eq!(lut.len(), 256);
            for &p in &lut {
                assert!(p < 256, "product must fit the 8-bit output bus");
            }
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", FaultKind::StuckAt0), "sa0");
        assert_eq!(format!("{}", FaultSpec::output_invert(Signal(3))), "inv@n3");
    }
}
