//! Area / delay / power estimation for gate netlists.
//!
//! The paper measures multiplier hardware cost with Synopsys Design Compiler
//! and the ASAP7 7nm predictive PDK at 1 GHz under a uniform input
//! distribution. That toolchain is proprietary, so this module substitutes a
//! calibrated gate-level model:
//!
//! * **area** — sum of per-gate-type area weights over live gates;
//! * **delay** — levelized critical path with per-gate-type delays;
//! * **power** — activity-weighted switching energy at 1 GHz, with exact
//!   signal probabilities computed over the uniform exhaustive input space.
//!
//! The relative per-gate constants follow typical standard-cell ratios
//! (XOR ≈ 2x a NAND in area/energy, inverters cheapest); the absolute scale
//! is calibrated once so that the generated exact 8-bit array multiplier
//! reproduces the paper's `mul8u_acc` row of Table I
//! (25.6 um^2, 730.1 ps, 22.93 uW). Only *relative* cost between multipliers
//! feeds the paper's conclusions, which this calibration preserves.

use std::sync::OnceLock;

use crate::arith::MultiplierCircuit;
use crate::netlist::{GateKind, Netlist};
use crate::sim::signal_probabilities;

/// Per-gate-type raw cost constants (arbitrary units before calibration).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateCosts {
    /// Relative area of the gate type.
    pub area: f64,
    /// Relative propagation delay of the gate type.
    pub delay: f64,
    /// Relative switching energy per output transition.
    pub energy: f64,
}

impl GateCosts {
    const ZERO: GateCosts = GateCosts {
        area: 0.0,
        delay: 0.0,
        energy: 0.0,
    };

    /// The raw (pre-calibration) cost constants of a gate type.
    ///
    /// These are the relative standard-cell ratios the whole model is built
    /// on; multiply by the [`CostModel`] scale accessors to obtain absolute
    /// units. Exposed so external analyses (e.g. the `appmult-verify`
    /// static timing pass) can reproduce [`CostModel::estimate_netlist`]
    /// bit-for-bit instead of re-inventing a diverging delay table.
    pub fn of(kind: GateKind) -> GateCosts {
        raw_costs(kind)
    }
}

/// Estimated hardware cost of a netlist.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HardwareCost {
    /// Cell area in square micrometres.
    pub area_um2: f64,
    /// Critical-path delay in picoseconds.
    pub delay_ps: f64,
    /// Dynamic power at 1 GHz under uniform inputs, in microwatts.
    pub power_uw: f64,
}

impl HardwareCost {
    /// Component-wise ratio `self / other`, used for the paper's normalized
    /// power and delay columns.
    pub fn normalized_to(&self, other: &HardwareCost) -> HardwareCost {
        HardwareCost {
            area_um2: self.area_um2 / other.area_um2,
            delay_ps: self.delay_ps / other.delay_ps,
            power_uw: self.power_uw / other.power_uw,
        }
    }
}

impl std::fmt::Display for HardwareCost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "area {:.1} um^2, delay {:.1} ps, power {:.2} uW",
            self.area_um2, self.delay_ps, self.power_uw
        )
    }
}

/// The calibrated gate-level cost model.
///
/// # Example
///
/// ```
/// use appmult_circuit::{CostModel, MultiplierCircuit};
///
/// let model = CostModel::asap7();
/// let exact = model.estimate(&MultiplierCircuit::array(8));
/// // Calibrated to the paper's mul8u_acc row.
/// assert!((exact.area_um2 - 25.6).abs() < 0.1);
/// assert!((exact.delay_ps - 730.1).abs() < 1.0);
/// assert!((exact.power_uw - 22.93).abs() < 0.1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    area_scale: f64,
    delay_scale: f64,
    power_scale: f64,
}

/// Raw per-type constants (typical standard-cell ratios).
fn raw_costs(kind: GateKind) -> GateCosts {
    match kind {
        GateKind::Input | GateKind::Const0 | GateKind::Const1 | GateKind::Buf => GateCosts::ZERO,
        GateKind::Not => GateCosts {
            area: 0.6,
            delay: 0.55,
            energy: 0.5,
        },
        GateKind::Nand | GateKind::Nor => GateCosts {
            area: 1.0,
            delay: 0.9,
            energy: 1.0,
        },
        GateKind::And | GateKind::Or => GateCosts {
            area: 1.25,
            delay: 1.0,
            energy: 1.2,
        },
        GateKind::Xor | GateKind::Xnor => GateCosts {
            area: 2.2,
            delay: 1.6,
            energy: 2.1,
        },
    }
}

/// Raw (unscaled) cost of a netlist: (area, delay, switched energy / cycle).
fn raw_estimate(netlist: &Netlist) -> (f64, f64, f64) {
    let live = netlist.live_mask();
    let probs = signal_probabilities(netlist);
    let mut area = 0.0;
    let mut energy = 0.0;
    let mut arrival = vec![0.0f64; netlist.num_nodes()];
    for (sig, gate) in netlist.iter() {
        let idx = sig.index();
        let c = raw_costs(gate.kind);
        let fan_arrival = match gate.kind.arity() {
            0 => 0.0,
            1 => arrival[gate.fanins[0].index()],
            _ => arrival[gate.fanins[0].index()].max(arrival[gate.fanins[1].index()]),
        };
        arrival[idx] = fan_arrival + c.delay;
        if live[idx] && gate.kind.is_physical() {
            area += c.area;
            // Transition probability of a signal with one-probability p under
            // independent uniform vectors: 2 p (1 - p).
            let p = probs[idx];
            energy += c.energy * 2.0 * p * (1.0 - p);
        }
    }
    let delay = netlist
        .outputs()
        .iter()
        .map(|s| arrival[s.index()])
        .fold(0.0f64, f64::max);
    (area, delay, energy)
}

/// Table I reference values for the exact 8-bit multiplier (mul8u_acc).
const CAL_AREA_UM2: f64 = 25.6;
const CAL_DELAY_PS: f64 = 730.1;
const CAL_POWER_UW: f64 = 22.93;

fn calibration() -> &'static CostModel {
    static MODEL: OnceLock<CostModel> = OnceLock::new();
    MODEL.get_or_init(|| {
        let reference = MultiplierCircuit::array(8);
        let (area, delay, energy) = raw_estimate(reference.netlist());
        CostModel {
            area_scale: CAL_AREA_UM2 / area,
            delay_scale: CAL_DELAY_PS / delay,
            power_scale: CAL_POWER_UW / energy,
        }
    })
}

impl CostModel {
    /// The ASAP7-calibrated model (see module docs for the calibration rule).
    pub fn asap7() -> Self {
        *calibration()
    }

    /// Estimates the cost of an arbitrary netlist.
    ///
    /// Dead logic (unreachable from the outputs) contributes nothing, so the
    /// area/power reduction of an ALS rewrite is visible without an explicit
    /// sweep pass.
    pub fn estimate_netlist(&self, netlist: &Netlist) -> HardwareCost {
        let (area, delay, energy) = raw_estimate(netlist);
        HardwareCost {
            area_um2: area * self.area_scale,
            delay_ps: delay * self.delay_scale,
            power_uw: energy * self.power_scale,
        }
    }

    /// Estimates the cost of a multiplier circuit.
    pub fn estimate(&self, circuit: &MultiplierCircuit) -> HardwareCost {
        self.estimate_netlist(circuit.netlist())
    }

    /// Picoseconds per raw delay unit (the calibration factor applied to
    /// [`GateCosts::of`] delays).
    ///
    /// External timing analyses must accumulate arrivals in *raw* units and
    /// apply this scale once at the end — exactly what
    /// [`CostModel::estimate_netlist`] does — to stay bit-identical with
    /// the cost model's reported `delay_ps`.
    pub fn delay_scale_ps(&self) -> f64 {
        self.delay_scale
    }

    /// Calibrated propagation delay of one gate of the given kind, in ps.
    pub fn gate_delay_ps(&self, kind: GateKind) -> f64 {
        raw_costs(kind).delay * self.delay_scale
    }

    /// Calibrated cell area of one gate of the given kind, in um^2.
    pub fn gate_area_um2(&self, kind: GateKind) -> f64 {
        raw_costs(kind).area * self.area_scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arith::MultiplierStructure;

    #[test]
    fn calibration_matches_table1_reference() {
        let model = CostModel::asap7();
        let cost = model.estimate(&MultiplierCircuit::array(8));
        assert!((cost.area_um2 - CAL_AREA_UM2).abs() < 1e-6);
        assert!((cost.delay_ps - CAL_DELAY_PS).abs() < 1e-6);
        assert!((cost.power_uw - CAL_POWER_UW).abs() < 1e-6);
    }

    #[test]
    fn truncation_reduces_all_cost_components() {
        let model = CostModel::asap7();
        let exact = model.estimate(&MultiplierCircuit::array(8));
        let trunc = model.estimate(&MultiplierCircuit::with_removed_columns(
            8,
            8,
            MultiplierStructure::Array,
        ));
        assert!(trunc.area_um2 < exact.area_um2);
        assert!(trunc.power_uw < exact.power_uw);
        assert!(trunc.delay_ps <= exact.delay_ps);
    }

    #[test]
    fn smaller_multipliers_cost_less() {
        let model = CostModel::asap7();
        let m8 = model.estimate(&MultiplierCircuit::array(8));
        let m7 = model.estimate(&MultiplierCircuit::array(7));
        let m6 = model.estimate(&MultiplierCircuit::array(6));
        assert!(m7.area_um2 < m8.area_um2 && m6.area_um2 < m7.area_um2);
        assert!(m7.power_uw < m8.power_uw && m6.power_uw < m7.power_uw);
    }

    #[test]
    fn dead_logic_is_free() {
        let model = CostModel::asap7();
        let mut nl = Netlist::new();
        let a = nl.input();
        let b = nl.input();
        let y = nl.and(a, b);
        let _dead = nl.xor(a, b);
        nl.set_outputs(vec![y]);
        let with_dead = model.estimate_netlist(&nl);

        let mut nl2 = Netlist::new();
        let a2 = nl2.input();
        let b2 = nl2.input();
        let y2 = nl2.and(a2, b2);
        nl2.set_outputs(vec![y2]);
        let without = model.estimate_netlist(&nl2);
        assert!((with_dead.area_um2 - without.area_um2).abs() < 1e-12);
        assert!((with_dead.power_uw - without.power_uw).abs() < 1e-12);
    }

    #[test]
    fn normalized_to_reference_is_one() {
        let model = CostModel::asap7();
        let c = model.estimate(&MultiplierCircuit::array(8));
        let n = c.normalized_to(&c);
        assert!((n.power_uw - 1.0).abs() < 1e-12);
        assert!((n.delay_ps - 1.0).abs() < 1e-12);
    }

    #[test]
    fn delay_table_exposure_is_consistent() {
        let model = CostModel::asap7();
        for kind in [
            GateKind::Input,
            GateKind::Const0,
            GateKind::Buf,
            GateKind::Not,
            GateKind::And,
            GateKind::Or,
            GateKind::Xor,
            GateKind::Nand,
            GateKind::Nor,
            GateKind::Xnor,
        ] {
            let raw = GateCosts::of(kind);
            assert_eq!(
                model.gate_delay_ps(kind),
                raw.delay * model.delay_scale_ps()
            );
            assert!(model.gate_area_um2(kind) >= 0.0);
        }
        // Free nodes really are free; XOR is the slowest cell.
        assert_eq!(model.gate_delay_ps(GateKind::Buf), 0.0);
        assert!(model.gate_delay_ps(GateKind::Xor) > model.gate_delay_ps(GateKind::And));
    }

    #[test]
    fn display_formats() {
        let c = HardwareCost {
            area_um2: 1.0,
            delay_ps: 2.0,
            power_uw: 3.0,
        };
        assert!(format!("{c}").contains("area"));
    }
}
