//! Dot-notation partial-product columns and reduction.
//!
//! Approximate multiplier papers describe designs as *dot diagrams*: stacks
//! of one-bit terms per binary weight (Fig. 2 of the paper). [`DotColumns`]
//! is that representation over netlist signals; reduction compresses every
//! column down to a single output bit with half/full adders.
//!
//! This is the shared machinery behind the built-in array/Wallace
//! generators and the design families in the `appmult-mult` crate.

use crate::netlist::{Netlist, Signal};

/// Column stacks of one-bit terms, indexed by binary weight.
///
/// # Example
///
/// ```
/// use appmult_circuit::{DotColumns, Netlist};
///
/// let mut nl = Netlist::new();
/// let a = nl.input();
/// let b = nl.input();
/// let mut dots = DotColumns::new(3);
/// dots.push(0, a);
/// dots.push(0, b); // weight-0 column holds two dots -> half adder
/// let sum = dots.reduce_ripple(&mut nl);
/// nl.set_outputs(sum);
/// assert_eq!(nl.outputs().len(), 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct DotColumns {
    columns: Vec<Vec<Signal>>,
}

impl DotColumns {
    /// Creates `width` empty columns (the output bus width).
    pub fn new(width: usize) -> Self {
        Self {
            columns: vec![Vec::new(); width],
        }
    }

    /// Output bus width.
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// Number of dots currently in column `weight`.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is out of range.
    pub fn height(&self, weight: usize) -> usize {
        self.columns[weight].len()
    }

    /// Adds a dot (a one-bit term) at the given binary weight.
    ///
    /// # Panics
    ///
    /// Panics if `weight >= width`.
    pub fn push(&mut self, weight: usize, signal: Signal) {
        self.columns[weight].push(signal);
    }

    /// Adds `signal` at every set bit of `constant` — the standard trick for
    /// adding a *conditional constant* (e.g. an error-compensation term
    /// gated by a nonzero detector).
    ///
    /// # Panics
    ///
    /// Panics if `constant` has set bits at or above `width`.
    pub fn push_conditional_constant(&mut self, constant: u64, signal: Signal) {
        assert!(
            constant < (1u64 << self.columns.len()),
            "constant {constant} exceeds the {}-bit output bus",
            self.columns.len()
        );
        for c in 0..self.columns.len() {
            if (constant >> c) & 1 == 1 {
                self.columns[c].push(signal);
            }
        }
    }

    /// Reduces with a carry-ripple array (compact, long critical path),
    /// returning one output signal per column.
    pub fn reduce_ripple(self, nl: &mut Netlist) -> Vec<Signal> {
        reduce_ripple_impl(nl, self.columns)
    }

    /// Reduces with Wallace-style column compression (3:2 / 2:2 counters)
    /// followed by a final ripple addition.
    pub fn reduce_wallace(self, nl: &mut Netlist) -> Vec<Signal> {
        reduce_wallace_impl(nl, self.columns)
    }
}

pub(crate) fn reduce_ripple_impl(nl: &mut Netlist, mut columns: Vec<Vec<Signal>>) -> Vec<Signal> {
    let out_bits = columns.len();
    let mut outputs = Vec::with_capacity(out_bits);
    let mut zero = None;
    for c in 0..out_bits {
        loop {
            let n = columns[c].len();
            if n <= 1 {
                break;
            }
            if n == 2 {
                let a = columns[c][0];
                let b = columns[c][1];
                let (s, carry) = nl.half_adder(a, b);
                columns[c].clear();
                columns[c].push(s);
                if c + 1 < out_bits {
                    columns[c + 1].push(carry);
                }
            } else {
                let a = columns[c].pop().expect("n >= 3");
                let b = columns[c].pop().expect("n >= 3");
                let cin = columns[c].pop().expect("n >= 3");
                let (s, carry) = nl.full_adder(a, b, cin);
                columns[c].push(s);
                if c + 1 < out_bits {
                    columns[c + 1].push(carry);
                }
            }
        }
        let sig = match columns[c].first() {
            Some(&s) => s,
            None => *zero.get_or_insert_with(|| nl.const0()),
        };
        outputs.push(sig);
    }
    outputs
}

pub(crate) fn reduce_wallace_impl(nl: &mut Netlist, mut columns: Vec<Vec<Signal>>) -> Vec<Signal> {
    let out_bits = columns.len();
    loop {
        let max_height = columns.iter().map(Vec::len).max().unwrap_or(0);
        if max_height <= 2 {
            break;
        }
        let mut next: Vec<Vec<Signal>> = vec![Vec::new(); out_bits];
        for c in 0..out_bits {
            let col = std::mem::take(&mut columns[c]);
            let mut i = 0;
            while col.len() - i >= 3 {
                let (s, carry) = nl.full_adder(col[i], col[i + 1], col[i + 2]);
                next[c].push(s);
                if c + 1 < out_bits {
                    next[c + 1].push(carry);
                }
                i += 3;
            }
            if col.len() - i == 2 && col.len() > 2 {
                let (s, carry) = nl.half_adder(col[i], col[i + 1]);
                next[c].push(s);
                if c + 1 < out_bits {
                    next[c + 1].push(carry);
                }
                i += 2;
            }
            next[c].extend_from_slice(&col[i..]);
        }
        columns = next;
    }
    reduce_ripple_impl(nl, columns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::ExhaustiveTable;

    #[test]
    fn conditional_constant_adds_when_gate_is_high() {
        let mut nl = Netlist::new();
        let g = nl.input();
        let mut dots = DotColumns::new(4);
        dots.push_conditional_constant(0b0101, g);
        let outs = dots.reduce_ripple(&mut nl);
        nl.set_outputs(outs);
        let t = ExhaustiveTable::build(&nl);
        assert_eq!(t.values()[0], 0);
        assert_eq!(t.values()[1], 0b0101);
    }

    #[test]
    fn reduction_sums_column_heights() {
        // Three dots of weight 0 and one of weight 1: value = popcount-ish.
        let mut nl = Netlist::new();
        let inputs: Vec<_> = (0..4).map(|_| nl.input()).collect();
        let mut dots = DotColumns::new(4);
        for &i in &inputs[..3] {
            dots.push(0, i);
        }
        dots.push(1, inputs[3]);
        let outs = dots.reduce_wallace(&mut nl);
        nl.set_outputs(outs);
        let t = ExhaustiveTable::build(&nl);
        for v in 0..16u64 {
            let expect = (v & 1) + ((v >> 1) & 1) + ((v >> 2) & 1) + 2 * ((v >> 3) & 1);
            assert_eq!(t.values()[v as usize], expect, "v={v:04b}");
        }
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_constant_panics() {
        let mut nl = Netlist::new();
        let g = nl.input();
        let mut dots = DotColumns::new(2);
        dots.push_conditional_constant(0b100, g);
    }
}
