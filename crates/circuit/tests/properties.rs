//! Randomized property tests for the gate-level substrate.
//!
//! These use the in-tree `appmult-rng` generator (the build environment
//! has no network access for proptest); each test draws a fixed number
//! of deterministic cases from a seeded stream.

use appmult_circuit::{
    fault_sites, ripple_carry_adder, synthesize, AlsConfig, FaultKind, FaultSpec,
    MultiplierCircuit, MultiplierStructure, Netlist,
};
use appmult_rng::Rng64;

/// Gate-level array multiplication equals integer multiplication.
#[test]
fn array_multiplier_matches_integers() {
    let mut rng = Rng64::seed_from_u64(0xC1);
    let m = MultiplierCircuit::array(6);
    for _ in 0..48 {
        let (w, x) = (rng.below(64), rng.below(64));
        assert_eq!(m.multiply(w, x), w * x, "{w}*{x}");
    }
}

/// Wallace and array reductions compute the same function.
#[test]
fn wallace_equals_array() {
    let mut rng = Rng64::seed_from_u64(0xC2);
    let a = MultiplierCircuit::array(5);
    let b = MultiplierCircuit::wallace(5);
    for _ in 0..48 {
        let (w, x) = (rng.below(32), rng.below(32));
        assert_eq!(a.multiply(w, x), b.multiply(w, x), "{w}*{x}");
    }
}

/// Truncated multipliers always under-approximate the exact product
/// (removed partial products can only subtract).
#[test]
fn truncation_underestimates() {
    let mut rng = Rng64::seed_from_u64(0xC3);
    for _ in 0..48 {
        let (w, x) = (rng.below(32), rng.below(32));
        let k = 1 + rng.below(4) as u32;
        let m = MultiplierCircuit::with_removed_columns(5, k, MultiplierStructure::Array);
        assert!(m.multiply(w, x) <= w * x, "rm{k}: {w}*{x}");
    }
}

/// Ripple-carry adder equals integer addition.
#[test]
fn adder_matches_integers() {
    let mut rng = Rng64::seed_from_u64(0xC4);
    let adder = ripple_carry_adder(8);
    for _ in 0..48 {
        let (a, b) = (rng.below(256), rng.below(256));
        assert_eq!(adder.add(a, b), a + b, "{a}+{b}");
    }
}

/// Word-parallel simulation is consistent with scalar simulation on a
/// random netlist.
#[test]
fn word_sim_equals_bool_sim() {
    let mut rng = Rng64::seed_from_u64(0xC5);
    for _ in 0..48 {
        let seed_bits: Vec<bool> = (0..4).map(|_| rng.chance(0.5)).collect();
        let n_ops = 1 + rng.index(19);
        let ops: Vec<u8> = (0..n_ops).map(|_| rng.below(6) as u8).collect();

        let mut nl = Netlist::new();
        let mut signals: Vec<_> = (0..4).map(|_| nl.input()).collect();
        for (i, op) in ops.iter().enumerate() {
            let a = signals[i % signals.len()];
            let b = signals[(i * 7 + 3) % signals.len()];
            let s = match op {
                0 => nl.and(a, b),
                1 => nl.or(a, b),
                2 => nl.xor(a, b),
                3 => nl.nand(a, b),
                4 => nl.nor(a, b),
                _ => nl.not(a),
            };
            signals.push(s);
        }
        let last = *signals.last().expect("nonempty");
        nl.set_outputs(vec![last]);
        assert!(nl.validate().is_ok());

        let scalar = appmult_circuit::simulate_bools(&nl, &seed_bits)[0];
        let words: Vec<u64> = seed_bits
            .iter()
            .map(|&b| if b { u64::MAX } else { 0 })
            .collect();
        let word = appmult_circuit::simulate_words(&nl, &words)[0];
        assert_eq!(word == u64::MAX, scalar);
        assert!(word == 0 || word == u64::MAX);
    }
}

/// Injecting zero faults reproduces the fault-free product table bit for
/// bit, for every generated multiplier structure.
#[test]
fn zero_faults_is_identity() {
    let mut rng = Rng64::seed_from_u64(0xC7);
    for _ in 0..12 {
        let bits = 2 + rng.below(4) as u32;
        let removed = rng.below(u64::from(bits)) as u32;
        let structure = if rng.chance(0.5) {
            MultiplierStructure::Array
        } else {
            MultiplierStructure::Wallace
        };
        let m = MultiplierCircuit::with_removed_columns(bits, removed, structure);
        assert_eq!(
            m.exhaustive_products_faulted(&[]).expect("no faults"),
            m.exhaustive_products(),
            "{structure:?} rm{removed} {bits}-bit"
        );
    }
}

/// Fault extraction is a pure function: the same fault list yields the
/// same table on repeated extraction, and the circuit is not mutated
/// (its fault-free table is unchanged afterwards).
#[test]
fn stuck_at_faults_are_deterministic() {
    let mut rng = Rng64::seed_from_u64(0xC8);
    let m = MultiplierCircuit::wallace(5);
    let clean = m.exhaustive_products();
    let sites = fault_sites(m.netlist());
    for _ in 0..12 {
        let n_faults = 1 + rng.index(4);
        let faults: Vec<FaultSpec> = (0..n_faults)
            .map(|_| FaultSpec {
                site: sites[rng.index(sites.len())],
                kind: FaultKind::ALL[rng.index(3)],
            })
            .collect();
        let a = m.exhaustive_products_faulted(&faults).expect("valid sites");
        let b = m.exhaustive_products_faulted(&faults).expect("valid sites");
        assert_eq!(a, b, "same faults must give the same table");
        assert_eq!(m.exhaustive_products(), clean, "netlist must stay intact");
    }
}

/// A stuck-at fault on a live gate pins that node: re-extracting with the
/// opposite stuck-at value gives a different table unless the gate was
/// already constant.
#[test]
fn stuck_at_values_differ_somewhere() {
    let m = MultiplierCircuit::array(4);
    let sites = fault_sites(m.netlist());
    let mut observed_difference = false;
    for &site in sites.iter().step_by(5) {
        let sa0 = m
            .exhaustive_products_faulted(&[FaultSpec::stuck_at_0(site)])
            .expect("valid site");
        let sa1 = m
            .exhaustive_products_faulted(&[FaultSpec::stuck_at_1(site)])
            .expect("valid site");
        if sa0 != sa1 {
            observed_difference = true;
        }
    }
    assert!(observed_difference, "sa0 and sa1 must be distinguishable");
}

/// ALS never exceeds its NMED budget, for any budget.
#[test]
fn als_respects_any_budget() {
    let mut rng = Rng64::seed_from_u64(0xC6);
    for _ in 0..6 {
        let budget = rng.uniform_f64(0.0, 0.01);
        let seed = rng.below(4);
        let exact = MultiplierCircuit::array(4);
        let cfg = AlsConfig {
            nmed_budget: budget,
            seed,
            ..AlsConfig::default()
        };
        let out = synthesize(&exact, &cfg);
        assert!(
            out.nmed <= budget + 1e-12,
            "budget {budget}, nmed {}",
            out.nmed
        );
        // The rewritten circuit still has the full output bus.
        assert_eq!(out.circuit.exhaustive_products().len(), 256);
    }
}
