//! Property-based tests for the gate-level substrate.

use appmult_circuit::{
    ripple_carry_adder, synthesize, AlsConfig, MultiplierCircuit, MultiplierStructure, Netlist,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Gate-level array multiplication equals integer multiplication.
    #[test]
    fn array_multiplier_matches_integers(w in 0u64..64, x in 0u64..64) {
        let m = MultiplierCircuit::array(6);
        prop_assert_eq!(m.multiply(w, x), w * x);
    }

    /// Wallace and array reductions compute the same function.
    #[test]
    fn wallace_equals_array(w in 0u64..32, x in 0u64..32) {
        let a = MultiplierCircuit::array(5);
        let b = MultiplierCircuit::wallace(5);
        prop_assert_eq!(a.multiply(w, x), b.multiply(w, x));
    }

    /// Truncated multipliers always under-approximate the exact product
    /// (removed partial products can only subtract).
    #[test]
    fn truncation_underestimates(w in 0u64..32, x in 0u64..32, k in 1u32..5) {
        let m = MultiplierCircuit::with_removed_columns(5, k, MultiplierStructure::Array);
        prop_assert!(m.multiply(w, x) <= w * x);
    }

    /// Ripple-carry adder equals integer addition.
    #[test]
    fn adder_matches_integers(a in 0u64..256, b in 0u64..256) {
        let adder = ripple_carry_adder(8);
        prop_assert_eq!(adder.add(a, b), a + b);
    }

    /// Word-parallel simulation is consistent with scalar simulation on a
    /// random netlist.
    #[test]
    fn word_sim_equals_bool_sim(
        seed_bits in proptest::collection::vec(any::<bool>(), 4),
        ops in proptest::collection::vec(0u8..6, 1..20),
    ) {
        let mut nl = Netlist::new();
        let mut signals: Vec<_> = (0..4).map(|_| nl.input()).collect();
        for (i, op) in ops.iter().enumerate() {
            let a = signals[i % signals.len()];
            let b = signals[(i * 7 + 3) % signals.len()];
            let s = match op {
                0 => nl.and(a, b),
                1 => nl.or(a, b),
                2 => nl.xor(a, b),
                3 => nl.nand(a, b),
                4 => nl.nor(a, b),
                _ => nl.not(a),
            };
            signals.push(s);
        }
        let last = *signals.last().expect("nonempty");
        nl.set_outputs(vec![last]);
        prop_assert!(nl.validate().is_ok());

        let scalar = appmult_circuit::simulate_bools(&nl, &seed_bits)[0];
        let words: Vec<u64> = seed_bits.iter().map(|&b| if b { u64::MAX } else { 0 }).collect();
        let word = appmult_circuit::simulate_words(&nl, &words)[0];
        prop_assert_eq!(word == u64::MAX, scalar);
        prop_assert!(word == 0 || word == u64::MAX);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// ALS never exceeds its NMED budget, for any budget.
    #[test]
    fn als_respects_any_budget(budget in 0.0f64..0.01, seed in 0u64..4) {
        let exact = MultiplierCircuit::array(4);
        let cfg = AlsConfig { nmed_budget: budget, seed, ..AlsConfig::default() };
        let out = synthesize(&exact, &cfg);
        prop_assert!(out.nmed <= budget + 1e-12);
        // The rewritten circuit still has the full output bus.
        prop_assert_eq!(out.circuit.exhaustive_products().len(), 256);
    }
}
