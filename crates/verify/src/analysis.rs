//! Shared, cached analysis context over a netlist.
//!
//! Every analysis pass in this crate — static timing ([`crate::sta`]),
//! ternary constant propagation ([`crate::ternary_analysis`]), structural
//! hashing ([`crate::strash`]), and the observability lints — needs some
//! combination of levelization, fanout adjacency, output reachability, and
//! signal probabilities. Before this module each pass recomputed its own
//! traversals; the [`AnalysisContext`] computes each derived view **once**,
//! on first use, and lends it to every pass, so two passes can never
//! disagree about which gates are live or how deep the logic is.
//!
//! The context is also the per-candidate scoring entry point for
//! design-space exploration (ROADMAP item 4): [`analyze_netlist`] runs the
//! full pass stack over one netlist and returns a [`NetlistAnalysis`] with
//! the timing report, duplicate-logic classes, constant cones, and lint
//! diagnostics in a single call.

use std::cell::OnceCell;

use appmult_circuit::{signal_probabilities, CostModel, HardwareCost, Netlist, Signal};

use crate::diag::{has_errors, Diagnostic};
use crate::sta::{sta, StaReport};
use crate::strash::{strash, StrashReport};
use crate::structural::lint_netlist_with;
use crate::ternary::{ternary_analysis, TernaryReport};

/// Cached derived views of one [`Netlist`], computed lazily and at most
/// once.
///
/// The context borrows the netlist, so it is guaranteed to describe a
/// frozen snapshot: any mutation requires dropping the context first,
/// which is exactly the invalidation rule a cache needs.
///
/// # Example
///
/// ```
/// use appmult_circuit::Netlist;
/// use appmult_verify::AnalysisContext;
///
/// let mut nl = Netlist::new();
/// let a = nl.input();
/// let b = nl.input();
/// let y = nl.and(a, b);
/// let dead = nl.xor(a, b);
/// nl.set_outputs(vec![y]);
/// let ctx = AnalysisContext::new(&nl);
/// assert!(ctx.live()[y.index()]);
/// assert!(!ctx.live()[dead.index()]);
/// assert_eq!(ctx.levels()[y.index()], 1);
/// ```
pub struct AnalysisContext<'n> {
    netlist: &'n Netlist,
    levels: OnceCell<Vec<u32>>,
    fanouts: OnceCell<Vec<Vec<Signal>>>,
    fanout_counts: OnceCell<Vec<u32>>,
    live: OnceCell<Vec<bool>>,
    probabilities: OnceCell<Vec<f64>>,
}

impl<'n> AnalysisContext<'n> {
    /// Wraps a netlist; nothing is computed until a view is requested.
    pub fn new(netlist: &'n Netlist) -> Self {
        Self {
            netlist,
            levels: OnceCell::new(),
            fanouts: OnceCell::new(),
            fanout_counts: OnceCell::new(),
            live: OnceCell::new(),
            probabilities: OnceCell::new(),
        }
    }

    /// The underlying netlist.
    pub fn netlist(&self) -> &'n Netlist {
        self.netlist
    }

    /// Logic level per node (see [`Netlist::levels`]).
    pub fn levels(&self) -> &[u32] {
        self.levels.get_or_init(|| self.netlist.levels())
    }

    /// Fanout adjacency per signal (see [`Netlist::fanout_lists`]).
    pub fn fanout_lists(&self) -> &[Vec<Signal>] {
        self.fanouts.get_or_init(|| self.netlist.fanout_lists())
    }

    /// Fanin-slot fanout count per signal (see [`Netlist::fanout_counts`]).
    pub fn fanout_counts(&self) -> &[u32] {
        self.fanout_counts
            .get_or_init(|| self.netlist.fanout_counts())
    }

    /// Output-reachability mask: the single source of truth for liveness.
    ///
    /// Delegates to [`Netlist::live_mask`] — the same implementation the
    /// cost model uses — so the cost model, the dead-gate lints, and the
    /// observability pass can never disagree about which logic is dead.
    pub fn live(&self) -> &[bool] {
        self.live.get_or_init(|| self.netlist.live_mask())
    }

    /// Exact signal one-probabilities under uniform inputs (see
    /// [`signal_probabilities`]).
    ///
    /// # Panics
    ///
    /// Panics (on first use) if the netlist has more than 24 primary
    /// inputs; the other views have no such limit.
    pub fn probabilities(&self) -> &[f64] {
        self.probabilities
            .get_or_init(|| signal_probabilities(self.netlist))
    }

    /// Maximum logic level over the primary outputs (the levelized depth).
    pub fn depth(&self) -> u32 {
        let levels = self.levels();
        self.netlist
            .outputs()
            .iter()
            .map(|s| levels[s.index()])
            .max()
            .unwrap_or(0)
    }
}

/// Everything the analysis framework can say about one netlist.
///
/// This is the cost/validity oracle a design-space-exploration loop calls
/// per mutated candidate: `cost` and `sta` score it, `diagnostics` (via
/// [`NetlistAnalysis::is_valid`]) gate it, and the strash/ternary reports
/// quantify redundant logic the mutation introduced.
#[derive(Debug, Clone)]
pub struct NetlistAnalysis {
    /// Calibrated area/delay/power from the cost model.
    pub cost: HardwareCost,
    /// Static timing report (arrival/required/slack, critical path).
    pub sta: StaReport,
    /// Structural-hashing report (duplicate logic classes).
    pub strash: StrashReport,
    /// Ternary constant-propagation report (constant cones, stuck outputs).
    pub ternary: TernaryReport,
    /// Levelized logic depth over the primary outputs.
    pub depth: u32,
    /// Number of output-reachable physical gates.
    pub live_gates: usize,
    /// Full lint findings (structural lints plus every analysis pass).
    pub diagnostics: Vec<Diagnostic>,
}

impl NetlistAnalysis {
    /// Whether the netlist carries no error-severity diagnostic.
    pub fn is_valid(&self) -> bool {
        !has_errors(&self.diagnostics)
    }
}

/// Runs the full analysis stack — structural lints, static timing,
/// structural hashing, and ternary constant propagation — over one netlist
/// through a single shared [`AnalysisContext`].
pub fn analyze_netlist(netlist: &Netlist, model: &CostModel) -> NetlistAnalysis {
    let ctx = AnalysisContext::new(netlist);
    // `lint_netlist_with` already folds in the strash and ternary passes.
    let mut diagnostics = lint_netlist_with(&ctx);
    let sta = sta(&ctx, model);
    diagnostics.extend(sta.consistency_diagnostics(model, netlist));
    // The cost model (and the liveness traversal it needs) panics on
    // out-of-range references and on more than 24 inputs; such candidates
    // already carry structural errors, so score them as zero-cost invalid.
    let n = netlist.num_nodes();
    let in_range = netlist
        .iter()
        .all(|(_, g)| (0..g.kind.arity()).all(|k| g.fanins[k].index() < n))
        && netlist.outputs().iter().all(|s| s.index() < n);
    if netlist.num_inputs() > 24 {
        // The exhaustive simulator (and therefore NMED scoring) cannot
        // evaluate such a candidate; make the capacity breach an error so
        // `is_valid()` rejects it instead of silently zero-costing it.
        diagnostics.push(Diagnostic::error(
            "capacity",
            "netlist",
            format!(
                "netlist has {} primary inputs; exhaustive analysis supports at most 24",
                netlist.num_inputs()
            ),
        ));
    }
    let cost = if in_range && netlist.num_inputs() <= 24 {
        model.estimate_netlist(netlist)
    } else {
        HardwareCost {
            area_um2: 0.0,
            delay_ps: 0.0,
            power_uw: 0.0,
        }
    };
    NetlistAnalysis {
        cost,
        sta,
        strash: strash(&ctx),
        ternary: ternary_analysis(&ctx),
        depth: ctx.depth(),
        live_gates: if in_range {
            netlist.live_gate_count()
        } else {
            0
        },
        diagnostics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_views_are_computed_once_and_agree() {
        let mut nl = Netlist::new();
        let a = nl.input();
        let b = nl.input();
        let (s, c) = nl.full_adder(a, b, a);
        nl.set_outputs(vec![s, c]);
        let ctx = AnalysisContext::new(&nl);
        // Same slice on repeated access (cached, not recomputed).
        assert!(std::ptr::eq(ctx.levels(), ctx.levels()));
        assert!(std::ptr::eq(ctx.live(), ctx.live()));
        assert!(std::ptr::eq(ctx.fanout_lists(), ctx.fanout_lists()));
        // And the cached views agree with the netlist's own helpers.
        assert_eq!(ctx.levels(), &nl.levels()[..]);
        assert_eq!(ctx.live(), &nl.live_mask()[..]);
        assert_eq!(ctx.fanout_counts(), &nl.fanout_counts()[..]);
        // sum is two levels deep, the or-of-ands carry chain is three.
        assert_eq!(ctx.depth(), 3);
        let p = ctx.probabilities();
        assert!((p[a.index()] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn analyze_netlist_scores_and_validates() {
        let circuit = appmult_circuit::MultiplierCircuit::array(4);
        let model = CostModel::asap7();
        let analysis = analyze_netlist(circuit.netlist(), &model);
        assert!(analysis.is_valid(), "{:?}", analysis.diagnostics);
        assert_eq!(
            analysis.sta.delay_ps.to_bits(),
            model.estimate(&circuit).delay_ps.to_bits(),
            "STA must be bit-identical to the cost model"
        );
        assert!(analysis.cost.area_um2 > 0.0);
        assert!(!analysis.sta.critical_path.is_empty());
    }

    #[test]
    fn analyze_netlist_rejects_over_capacity_input_counts() {
        let mut nl = Netlist::new();
        let inputs: Vec<_> = (0..25).map(|_| nl.input()).collect();
        let mut acc = inputs[0];
        for &i in &inputs[1..] {
            acc = nl.and(acc, i);
        }
        nl.set_outputs(vec![acc]);
        let analysis = analyze_netlist(&nl, &CostModel::asap7());
        assert!(!analysis.is_valid());
        assert!(analysis
            .diagnostics
            .iter()
            .any(|d| d.pass == "capacity" && d.severity == crate::Severity::Error));
        // A 24-input netlist is still within capacity.
        let mut ok = Netlist::new();
        let inputs: Vec<_> = (0..24).map(|_| ok.input()).collect();
        let mut acc = inputs[0];
        for &i in &inputs[1..] {
            acc = ok.and(acc, i);
        }
        ok.set_outputs(vec![acc]);
        assert!(analyze_netlist(&ok, &CostModel::asap7()).is_valid());
    }

    #[test]
    fn analyze_netlist_flags_invalid_candidates() {
        // A cyclic rewrite must be rejected by the validity oracle.
        let mut nl = Netlist::new();
        let a = nl.input();
        let b = nl.input();
        let g = nl.and(a, b);
        let h = nl.or(g, a);
        nl.set_outputs(vec![h]);
        nl.set_fanin(g, 0, h).unwrap();
        let analysis = analyze_netlist(&nl, &CostModel::asap7());
        assert!(!analysis.is_valid());
    }
}
