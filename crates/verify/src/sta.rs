//! Static timing analysis over a gate netlist.
//!
//! Replays the arrival-time recurrence of
//! [`CostModel::estimate_netlist`] — raw per-gate delays accumulated in
//! netlist order, scaled to picoseconds once at the end — so the reported
//! top-level delay is **bit-identical** to the cost model's `delay_ps`.
//! On top of that single scalar it derives what the cost model never
//! exposed: per-gate arrival/required times and slack, per-output delays,
//! and an explicit gate-by-gate critical path from a primary input to the
//! slowest primary output.
//!
//! Unlike the cost model, the pass never panics on malformed netlists:
//! out-of-range fanins contribute arrival 0 (the structural lints report
//! them as errors separately), which keeps the pass safe to run inside
//! the zoo sweep's negative controls.

use appmult_circuit::{CostModel, GateCosts, GateKind, Netlist, Signal};

use crate::analysis::AnalysisContext;
use crate::diag::Diagnostic;

/// One gate on the critical path, in input-to-output order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StaGate {
    /// The signal on the path.
    pub signal: Signal,
    /// Its gate kind.
    pub kind: GateKind,
    /// Calibrated propagation delay of this gate, in ps.
    pub delay_ps: f64,
    /// Arrival time at this gate's output, in ps.
    pub arrival_ps: f64,
}

/// Full static timing report of one netlist.
#[derive(Debug, Clone, PartialEq)]
pub struct StaReport {
    /// Critical-path delay in ps; bit-identical to
    /// [`CostModel::estimate_netlist`]'s `delay_ps` on any netlist the
    /// cost model accepts.
    pub delay_ps: f64,
    /// Arrival time per node, in ps.
    pub arrival_ps: Vec<f64>,
    /// Required time per node, in ps (`f64::INFINITY` for nodes that
    /// reach no primary output and are therefore unconstrained).
    pub required_ps: Vec<f64>,
    /// Slack per node: `required - arrival` (`f64::INFINITY` when
    /// unconstrained). Every node on the critical path has slack 0.
    pub slack_ps: Vec<f64>,
    /// Arrival time of each primary output, in registration order.
    pub output_delays_ps: Vec<f64>,
    /// The slowest primary output (the critical endpoint), if any.
    pub critical_output: Option<Signal>,
    /// The critical path as a connected input-to-output gate chain whose
    /// per-gate delays sum to [`StaReport::delay_ps`].
    pub critical_path: Vec<StaGate>,
}

/// Runs static timing analysis using the calibrated per-gate delays of
/// `model`, borrowing cached views from `ctx`.
pub fn sta(ctx: &AnalysisContext<'_>, model: &CostModel) -> StaReport {
    let netlist = ctx.netlist();
    let n = netlist.num_nodes();
    let scale = model.delay_scale_ps();

    // Forward pass: raw arrivals, operation-for-operation the recurrence
    // inside `CostModel::estimate_netlist` (same match shape, same
    // iteration order, same `f64::max` fold) so the scaled top-level delay
    // is bit-identical. Out-of-range fanins read 0.0 instead of panicking.
    let mut arrival = vec![0.0f64; n];
    for (sig, gate) in netlist.iter() {
        let d = GateCosts::of(gate.kind).delay;
        let at = |s: Signal| arrival.get(s.index()).copied().unwrap_or(0.0);
        let fan_arrival = match gate.kind.arity() {
            0 => 0.0,
            1 => at(gate.fanins[0]),
            _ => at(gate.fanins[0]).max(at(gate.fanins[1])),
        };
        arrival[sig.index()] = fan_arrival + d;
    }
    let delay_raw = netlist
        .outputs()
        .iter()
        .filter_map(|s| arrival.get(s.index()).copied())
        .fold(0.0f64, f64::max);

    // Backward pass: required time under a single timing constraint equal
    // to the critical delay. A fanin must arrive by `required(gate) -
    // delay(gate)`.
    let mut required = vec![f64::INFINITY; n];
    for &o in netlist.outputs() {
        if let Some(r) = required.get_mut(o.index()) {
            *r = r.min(delay_raw);
        }
    }
    for i in (0..n).rev() {
        if required[i].is_infinite() {
            continue;
        }
        let gate = netlist.gate(Signal::from_index(i));
        let d = GateCosts::of(gate.kind).delay;
        for slot in 0..gate.kind.arity() {
            let f = gate.fanins[slot].index();
            // Only backward edges carry timing (forward references are
            // structural errors and read stale values in the simulator).
            if f < i {
                required[f] = required[f].min(required[i] - d);
            }
        }
    }

    // Critical path: start at the first output achieving the maximum
    // arrival, then repeatedly step to the fanin that set the max (slot 0
    // preferred on ties, matching `f64::max`'s left bias in the forward
    // recurrence).
    let critical_output = netlist
        .outputs()
        .iter()
        .copied()
        .find(|s| arrival.get(s.index()).copied() == Some(delay_raw));
    let mut chain_rev = Vec::new();
    if let Some(endpoint) = critical_output {
        let mut cur = endpoint;
        loop {
            chain_rev.push(cur);
            let gate = netlist.gate(cur);
            let next = match gate.kind.arity() {
                0 => None,
                1 => Some(gate.fanins[0]),
                _ => {
                    let a0 = arrival.get(gate.fanins[0].index()).copied().unwrap_or(0.0);
                    let a1 = arrival.get(gate.fanins[1].index()).copied().unwrap_or(0.0);
                    Some(if a0 >= a1 {
                        gate.fanins[0]
                    } else {
                        gate.fanins[1]
                    })
                }
            };
            match next {
                // The strict decrease also terminates the walk on cyclic
                // rewires (forward fanins never extend the path).
                Some(f) if f.index() < cur.index() => cur = f,
                _ => break,
            }
        }
    }
    let critical_path: Vec<StaGate> = chain_rev
        .into_iter()
        .rev()
        .map(|s| {
            let kind = netlist.gate(s).kind;
            StaGate {
                signal: s,
                kind,
                delay_ps: GateCosts::of(kind).delay * scale,
                arrival_ps: arrival[s.index()] * scale,
            }
        })
        .collect();

    let slack_ps = arrival
        .iter()
        .zip(&required)
        .map(|(&a, &r)| if r.is_infinite() { r } else { (r - a) * scale })
        .collect();
    StaReport {
        delay_ps: delay_raw * scale,
        arrival_ps: arrival.iter().map(|a| a * scale).collect(),
        required_ps: required
            .iter()
            .map(|r| if r.is_infinite() { *r } else { r * scale })
            .collect(),
        slack_ps,
        output_delays_ps: netlist
            .outputs()
            .iter()
            .map(|s| arrival.get(s.index()).copied().unwrap_or(0.0) * scale)
            .collect(),
        critical_output,
        critical_path,
    }
}

impl StaReport {
    /// Histogram of slack over live physical gates: `buckets` equal-width
    /// bins spanning `[0, delay_ps]`, with out-of-range slack clamped into
    /// the end bins. Used by the `ANALYZE.json` report.
    pub fn slack_histogram(&self, netlist: &Netlist, live: &[bool], buckets: usize) -> Vec<u32> {
        let mut hist = vec![0u32; buckets.max(1)];
        let width = self.delay_ps / hist.len() as f64;
        for (sig, gate) in netlist.iter() {
            let i = sig.index();
            if !gate.kind.is_physical() || !live.get(i).copied().unwrap_or(false) {
                continue;
            }
            let slack = self.slack_ps[i];
            let bucket = if !slack.is_finite() || width <= 0.0 {
                hist.len() - 1
            } else {
                ((slack / width) as usize).min(hist.len() - 1)
            };
            hist[bucket] += 1;
        }
        hist
    }

    /// Self-check diagnostics proving this report consistent with the cost
    /// model and with itself:
    ///
    /// - `sta` (error): the top-level delay differs from
    ///   [`CostModel::estimate_netlist`] by even one bit;
    /// - `sta` (error): the critical path is not a connected fanin chain,
    ///   or its per-gate delays do not sum to the reported delay.
    ///
    /// The cost-model comparison is skipped on netlists the cost model
    /// would reject (out-of-range references, more than 24 inputs); the
    /// structural self-checks always run.
    pub fn consistency_diagnostics(&self, model: &CostModel, netlist: &Netlist) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        let n = netlist.num_nodes();
        let in_range = netlist
            .iter()
            .all(|(_, g)| (0..g.kind.arity()).all(|k| g.fanins[k].index() < n))
            && netlist.outputs().iter().all(|s| s.index() < n);
        if in_range && netlist.num_inputs() <= 24 {
            let cost = model.estimate_netlist(netlist);
            if cost.delay_ps.to_bits() != self.delay_ps.to_bits() {
                diags.push(Diagnostic::error(
                    "sta",
                    "delay",
                    format!(
                        "STA delay {} ps is not bit-identical to the cost model's {} ps",
                        self.delay_ps, cost.delay_ps
                    ),
                ));
            }
        }
        for pair in self.critical_path.windows(2) {
            let gate = netlist.gate(pair[1].signal);
            let connected = (0..gate.kind.arity()).any(|k| gate.fanins[k] == pair[0].signal);
            if !connected {
                diags.push(Diagnostic::error(
                    "sta",
                    format!("{}", pair[1].signal),
                    format!(
                        "critical path is disconnected: {} is not a fanin of {}",
                        pair[0].signal, pair[1].signal
                    ),
                ));
            }
        }
        let sum: f64 = self.critical_path.iter().map(|g| g.delay_ps).sum();
        if (sum - self.delay_ps).abs() > 1e-9 * self.delay_ps.abs().max(1.0) {
            diags.push(Diagnostic::error(
                "sta",
                "critical-path",
                format!(
                    "critical-path gate delays sum to {sum} ps but the reported delay is {} ps",
                    self.delay_ps
                ),
            ));
        }
        diags
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use appmult_circuit::MultiplierCircuit;

    fn analyzed(netlist: &Netlist) -> StaReport {
        sta(&AnalysisContext::new(netlist), &CostModel::asap7())
    }

    #[test]
    fn sta_matches_cost_model_on_multipliers() {
        let model = CostModel::asap7();
        for circuit in [
            MultiplierCircuit::array(4),
            MultiplierCircuit::array(8),
            MultiplierCircuit::wallace(6),
        ] {
            let report = analyzed(circuit.netlist());
            let cost = model.estimate(&circuit);
            assert_eq!(
                report.delay_ps.to_bits(),
                cost.delay_ps.to_bits(),
                "{circuit:?}"
            );
            assert!(report
                .consistency_diagnostics(&model, circuit.netlist())
                .is_empty());
        }
    }

    #[test]
    fn critical_path_is_connected_and_zero_slack() {
        let circuit = MultiplierCircuit::array(6);
        let report = analyzed(circuit.netlist());
        assert!(!report.critical_path.is_empty());
        let first = report.critical_path.first().unwrap();
        assert_eq!(first.kind.arity(), 0, "path starts at an input/constant");
        let last = report.critical_path.last().unwrap();
        assert_eq!(Some(last.signal), report.critical_output);
        assert_eq!(last.arrival_ps.to_bits(), report.delay_ps.to_bits());
        for pair in report.critical_path.windows(2) {
            let gate = circuit.netlist().gate(pair[1].signal);
            assert!((0..gate.kind.arity()).any(|k| gate.fanins[k] == pair[0].signal));
        }
        for g in &report.critical_path {
            let slack = report.slack_ps[g.signal.index()];
            assert!(
                slack.abs() < 1e-9,
                "critical node {} slack {slack}",
                g.signal
            );
        }
    }

    #[test]
    fn required_and_slack_semantics() {
        // y = and(xor(a, b), c): the XOR branch is critical, the direct
        // `c` fanin has positive slack, dead logic is unconstrained.
        let mut nl = Netlist::new();
        let a = nl.input();
        let b = nl.input();
        let c = nl.input();
        let x = nl.xor(a, b);
        let y = nl.and(x, c);
        let dead = nl.or(a, b);
        nl.set_outputs(vec![y]);
        let report = analyzed(&nl);
        assert!(report.slack_ps[x.index()].abs() < 1e-12);
        assert!(report.slack_ps[c.index()] > 0.0);
        assert!(report.slack_ps[dead.index()].is_infinite());
        assert_eq!(report.output_delays_ps, vec![report.delay_ps]);
    }

    #[test]
    fn empty_and_malformed_netlists_do_not_panic() {
        let nl = Netlist::new();
        let report = analyzed(&nl);
        assert_eq!(report.delay_ps, 0.0);
        assert!(report.critical_path.is_empty());

        // Dangling fanin: the cost model would panic; STA must not.
        let gates = vec![
            appmult_circuit::Gate {
                kind: GateKind::Input,
                fanins: [Signal::from_index(0); 2],
            },
            appmult_circuit::Gate {
                kind: GateKind::And,
                fanins: [Signal::from_index(0), Signal::from_index(9)],
            },
        ];
        let nl = Netlist::from_raw_parts(
            gates,
            vec![Signal::from_index(0)],
            vec![Signal::from_index(1)],
        );
        let report = analyzed(&nl);
        assert!(report.delay_ps > 0.0);
        // The cost-model comparison is skipped, the self-checks pass.
        assert!(report
            .consistency_diagnostics(&CostModel::asap7(), &nl)
            .is_empty());
    }

    #[test]
    fn slack_histogram_counts_live_physical_gates() {
        let circuit = MultiplierCircuit::array(5);
        let nl = circuit.netlist();
        let report = analyzed(nl);
        let live = nl.live_mask();
        let hist = report.slack_histogram(nl, &live, 8);
        let total: u32 = hist.iter().sum();
        assert_eq!(total as usize, nl.live_gate_count());
        // The critical path puts at least one gate in the zero-slack bin.
        assert!(hist[0] > 0);
    }
}
