//! Structural hashing: functionally duplicate gate detection.
//!
//! Classic strash, one topological pass: every node gets a canonical
//! *representative* — itself, unless an earlier node computes the same
//! function. Buffers are transparent (their representative is their
//! fanin's), constants of the same polarity share one class, and two-input
//! gates are keyed by `(kind, sorted representative fanins)`, so
//! commutative twins (`and(a, b)` vs `and(b, a)`) and duplicates hiding
//! behind buffer chains are both found. A duplicate physical gate is
//! mergeable logic: it costs area and power but adds no function.

use std::collections::HashMap;

use appmult_circuit::{GateKind, Signal};

use crate::analysis::AnalysisContext;
use crate::diag::Diagnostic;

/// Result of structural hashing one netlist.
#[derive(Debug, Clone)]
pub struct StrashReport {
    /// Canonical representative per node (`class_of[i] == i`'s signal for
    /// class leaders; buffers resolve to their driver's representative).
    pub class_of: Vec<Signal>,
    /// Duplicate physical gates as `(duplicate, representative)` pairs, in
    /// topological order of the duplicate.
    pub duplicates: Vec<(Signal, Signal)>,
    /// Number of distinct structural classes among physical gates.
    pub classes: usize,
}

impl StrashReport {
    /// Number of physical gates that could be merged away.
    pub fn mergeable_gates(&self) -> usize {
        self.duplicates.len()
    }
}

/// Runs structural hashing over the context's netlist.
pub fn strash(ctx: &AnalysisContext<'_>) -> StrashReport {
    let netlist = ctx.netlist();
    let n = netlist.num_nodes();
    let mut class_of: Vec<Signal> = Vec::with_capacity(n);
    let mut table: HashMap<(GateKind, usize, usize), Signal> = HashMap::new();
    let mut duplicates = Vec::new();
    let mut classes = 0usize;
    for (sig, gate) in netlist.iter() {
        let i = sig.index();
        // Representative of a fanin; forward/out-of-range references keep
        // their own identity (they cannot alias anything sound).
        let rep = |s: Signal| {
            if s.index() < i {
                class_of[s.index()]
            } else {
                s
            }
        };
        let canonical = match gate.kind {
            GateKind::Input => sig,
            GateKind::Buf => rep(gate.fanins[0]),
            GateKind::Const0 | GateKind::Const1 => *table.entry((gate.kind, 0, 0)).or_insert(sig),
            GateKind::Not => {
                let a = rep(gate.fanins[0]).index();
                *table.entry((gate.kind, a, a)).or_insert(sig)
            }
            // All two-input kinds in this netlist are commutative.
            _ => {
                let a = rep(gate.fanins[0]).index();
                let b = rep(gate.fanins[1]).index();
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                *table.entry((gate.kind, lo, hi)).or_insert(sig)
            }
        };
        if gate.kind.is_physical() {
            if canonical == sig {
                classes += 1;
            } else {
                duplicates.push((sig, canonical));
            }
        }
        class_of.push(canonical);
    }
    StrashReport {
        class_of,
        duplicates,
        classes,
    }
}

/// Cap on individually reported duplicates; beyond it one summary info
/// diagnostic carries the total.
const MAX_DUP_DIAGS: usize = 16;

/// Diagnostics of the structural-hashing pass: `strash-dup` (info) per
/// duplicate physical gate, capped with a summary entry.
pub fn strash_diagnostics(ctx: &AnalysisContext<'_>) -> Vec<Diagnostic> {
    let report = strash(ctx);
    let netlist = ctx.netlist();
    let mut diags = Vec::new();
    for &(dup, canon) in report.duplicates.iter().take(MAX_DUP_DIAGS) {
        let kind = netlist.gate(dup).kind;
        diags.push(Diagnostic::info(
            "strash-dup",
            format!("{dup}"),
            format!("{kind} gate {dup} duplicates {canon}; mergeable"),
        ));
    }
    if report.duplicates.len() > MAX_DUP_DIAGS {
        diags.push(Diagnostic::info(
            "strash-dup",
            "netlist",
            format!(
                "{} further duplicate gates not reported individually ({} total)",
                report.duplicates.len() - MAX_DUP_DIAGS,
                report.duplicates.len()
            ),
        ));
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use appmult_circuit::{MultiplierCircuit, Netlist};

    #[test]
    fn commutative_twins_and_buffered_duplicates_are_found() {
        let mut nl = Netlist::new();
        let a = nl.input();
        let b = nl.input();
        let g = nl.and(a, b);
        let swapped = nl.and(b, a); // commutative duplicate of g
        let ab = nl.buf(a);
        let through_buf = nl.and(ab, b); // duplicate of g through a buffer
        let distinct = nl.or(a, b);
        let y = nl.xor(g, swapped);
        let z = nl.xor(through_buf, distinct);
        nl.set_outputs(vec![y, z]);
        let ctx = AnalysisContext::new(&nl);
        let report = strash(&ctx);
        assert_eq!(
            report.duplicates,
            vec![(swapped, g), (through_buf, g)],
            "{report:?}"
        );
        assert_eq!(report.mergeable_gates(), 2);
        // g, distinct, y, z are the distinct physical classes.
        assert_eq!(report.classes, 4);
        let diags = strash_diagnostics(&ctx);
        assert_eq!(diags.len(), 2);
        assert!(diags.iter().all(|d| d.pass == "strash-dup"));
    }

    #[test]
    fn downstream_of_duplicates_also_merges() {
        // xor over duplicated ANDs is itself a duplicate: the class
        // structure propagates through representatives.
        let mut nl = Netlist::new();
        let a = nl.input();
        let b = nl.input();
        let c = nl.input();
        let g1 = nl.and(a, b);
        let g2 = nl.and(b, a);
        let x1 = nl.xor(g1, c);
        let x2 = nl.xor(g2, c);
        let out = nl.or(x1, x2);
        nl.set_outputs(vec![out]);
        let report = strash(&AnalysisContext::new(&nl));
        assert!(report.duplicates.contains(&(g2, g1)));
        assert!(report.duplicates.contains(&(x2, x1)));
    }

    #[test]
    fn duplicate_constants_share_a_class() {
        let mut nl = Netlist::new();
        let a = nl.input();
        let z1 = nl.const0();
        let z2 = nl.const0();
        let one = nl.const1();
        let g1 = nl.or(a, z1);
        let g2 = nl.or(a, z2); // same class: const0s alias
        let g3 = nl.or(a, one); // different: const1
        nl.set_outputs(vec![g1, g2, g3]);
        let report = strash(&AnalysisContext::new(&nl));
        assert_eq!(report.duplicates, vec![(g2, g1)]);
    }

    #[test]
    fn generated_multipliers_have_no_duplicate_logic() {
        for circuit in [MultiplierCircuit::array(5), MultiplierCircuit::wallace(5)] {
            let nl = circuit.netlist();
            let report = strash(&AnalysisContext::new(nl));
            assert_eq!(report.duplicates, vec![], "{circuit:?}");
            assert_eq!(report.classes, nl.num_physical_gates());
        }
    }
}
