//! Typed lint diagnostics.

use std::fmt;

/// How serious a diagnostic is.
///
/// Only [`Severity::Error`] diagnostics fail the `appmult-lint` binary;
/// warnings and infos are reported but do not affect the exit code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Stylistic or informational finding (e.g. a const-foldable gate).
    Info,
    /// Suspicious but not behaviour-breaking (e.g. a dead gate).
    Warning,
    /// A contract violation: the artefact must not be used as-is.
    Error,
}

impl Severity {
    /// Lowercase identifier used in the JSON report.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding of a verification pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Name of the pass that produced the finding (e.g. `"cycle"`).
    pub pass: &'static str,
    /// Severity class.
    pub severity: Severity,
    /// Where the finding is anchored (a signal like `n42`, a table cell
    /// like `wrt_x[w=3, x=7]`, or a design name).
    pub location: String,
    /// Human-readable description.
    pub message: String,
}

impl Diagnostic {
    /// Builds an [`Severity::Error`] diagnostic.
    pub fn error(
        pass: &'static str,
        location: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Self {
            pass,
            severity: Severity::Error,
            location: location.into(),
            message: message.into(),
        }
    }

    /// Builds a [`Severity::Warning`] diagnostic.
    pub fn warning(
        pass: &'static str,
        location: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Self {
            pass,
            severity: Severity::Warning,
            location: location.into(),
            message: message.into(),
        }
    }

    /// Builds a [`Severity::Info`] diagnostic.
    pub fn info(
        pass: &'static str,
        location: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Self {
            pass,
            severity: Severity::Info,
            location: location.into(),
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {}: {}",
            self.severity, self.pass, self.location, self.message
        )
    }
}

/// Counts diagnostics of a given severity.
pub fn count_severity(diags: &[Diagnostic], severity: Severity) -> usize {
    diags.iter().filter(|d| d.severity == severity).count()
}

/// Whether any diagnostic is an error.
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    count_severity(diags, Severity::Error) > 0
}

/// Whether any diagnostic is a warning (errors do not count).
pub fn has_warnings(diags: &[Diagnostic]) -> bool {
    count_severity(diags, Severity::Warning) > 0
}

/// Highest severity present, or `None` for an empty list.
pub fn max_severity(diags: &[Diagnostic]) -> Option<Severity> {
    diags.iter().map(|d| d.severity).max()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_all_fields() {
        let d = Diagnostic::error("cycle", "n5", "combinational cycle");
        let s = format!("{d}");
        assert!(s.contains("error"));
        assert!(s.contains("cycle"));
        assert!(s.contains("n5"));
    }

    #[test]
    fn severity_ordering_and_counts() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
        let diags = vec![
            Diagnostic::error("a", "x", "m"),
            Diagnostic::warning("b", "y", "m"),
            Diagnostic::warning("c", "z", "m"),
            Diagnostic::info("d", "w", "m"),
        ];
        assert_eq!(count_severity(&diags, Severity::Error), 1);
        assert_eq!(count_severity(&diags, Severity::Warning), 2);
        assert_eq!(count_severity(&diags, Severity::Info), 1);
        assert!(has_errors(&diags));
        assert!(!has_errors(&diags[1..]));
        assert!(has_warnings(&diags));
        assert!(!has_warnings(&diags[3..]));
        assert_eq!(max_severity(&diags), Some(Severity::Error));
        assert_eq!(max_severity(&diags[1..]), Some(Severity::Warning));
        assert_eq!(max_severity(&[]), None);
    }
}
