//! Structural netlist lints.
//!
//! These passes check the invariants the rest of the workspace silently
//! relies on: the simulator evaluates nodes in one forward pass (so fanins
//! must precede their gates and cycles are fatal), the cost model only
//! counts reachable logic, and the multiplier wrappers assume the
//! `w`/`x`/product bus convention. Netlists produced by the checked builder
//! always lint clean; the passes exist for netlists assembled through
//! [`Netlist::from_raw_parts`], rewired with [`Netlist::set_fanin`], or
//! mutated by synthesis passes.

use appmult_circuit::{Gate, GateKind, MultiplierCircuit, Netlist};

use crate::analysis::AnalysisContext;
use crate::diag::Diagnostic;
use crate::strash::strash_diagnostics;
use crate::ternary::ternary_diagnostics;

/// Runs every structural pass over `netlist` and collects the findings.
///
/// Pass names in the produced diagnostics:
///
/// - `dangling` — a fanin or output references a signal outside the node
///   table (error).
/// - `io` — the primary input list disagrees with the `Input` nodes, or no
///   outputs are registered (error).
/// - `topology` — a fanin does not precede its gate, so single-pass
///   simulation would read a stale value (error).
/// - `cycle` — a combinational cycle (error; every cycle also implies at
///   least one `topology` finding).
/// - `arity` — a single-fanin gate whose two fanin slots disagree with the
///   builder convention (warning).
/// - `dead-gate` — the observability pass: a physical gate that is
///   fanout-free or unreachable from every primary output (warning).
/// - `const-fold` — a gate that a constant-propagation pass would remove
///   for purely local reasons: constant fanins or twin fanins (info).
/// - `ternary-const` / `stuck-output` — whole cones proved constant by
///   the ternary abstract interpreter (see [`crate::ternary_diagnostics`]).
/// - `strash-dup` — structurally duplicate gates (see
///   [`crate::strash_diagnostics`]).
///
/// Deep traversals (cycles, liveness, constant propagation, hashing) are
/// skipped when `dangling` errors are present, since out-of-range indices
/// make them meaningless.
pub fn lint_netlist(netlist: &Netlist) -> Vec<Diagnostic> {
    lint_netlist_with(&AnalysisContext::new(netlist))
}

/// Like [`lint_netlist`], borrowing cached traversals (liveness, fanout
/// counts) from an existing [`AnalysisContext`] so a caller that also runs
/// timing or hashing passes never recomputes — or disagrees about — the
/// shared views.
pub fn lint_netlist_with(ctx: &AnalysisContext<'_>) -> Vec<Diagnostic> {
    let netlist = ctx.netlist();
    let (mut diags, traversable) = check_structure(netlist);
    if traversable {
        diags.extend(check_cycles(netlist));
        diags.extend(check_observability(ctx));
        diags.extend(check_const_foldable(netlist));
        diags.extend(ternary_diagnostics(ctx));
        diags.extend(strash_diagnostics(ctx));
    }
    diags
}

/// Lints a multiplier circuit: the generic netlist passes plus the
/// `width` pass checking the `2B`-input / `2B`-output bus convention.
pub fn lint_multiplier_circuit(circuit: &MultiplierCircuit) -> Vec<Diagnostic> {
    let mut diags = lint_netlist(circuit.netlist());
    diags.extend(width_diagnostics(circuit));
    diags
}

/// The `width` pass alone: bus-convention checks for a multiplier circuit.
pub(crate) fn width_diagnostics(circuit: &MultiplierCircuit) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let expect = 2 * circuit.bits() as usize;
    let inputs = circuit.netlist().num_inputs();
    let outputs = circuit.netlist().outputs().len();
    if inputs != expect {
        diags.push(Diagnostic::error(
            "width",
            "inputs",
            format!(
                "{}-bit multiplier has {inputs} primary inputs, expected {expect}",
                circuit.bits()
            ),
        ));
    }
    if outputs != expect {
        diags.push(Diagnostic::error(
            "width",
            "outputs",
            format!(
                "{}-bit multiplier has {outputs} primary outputs, expected {expect}",
                circuit.bits()
            ),
        ));
    }
    diags
}

/// Range, input-list, output-list, topological-order, and arity checks.
/// Returns the diagnostics and whether index-based traversals are safe.
fn check_structure(netlist: &Netlist) -> (Vec<Diagnostic>, bool) {
    let mut diags = Vec::new();
    let n = netlist.num_nodes();
    let mut in_range = true;

    for (sig, gate) in netlist.iter() {
        for slot in 0..gate.kind.arity() {
            let fanin = gate.fanins[slot];
            if fanin.index() >= n {
                in_range = false;
                diags.push(Diagnostic::error(
                    "dangling",
                    format!("{sig}"),
                    format!(
                        "fanin slot {slot} of {} gate {sig} references undefined signal {fanin}",
                        gate.kind
                    ),
                ));
            } else if fanin.index() >= sig.index() {
                diags.push(Diagnostic::error(
                    "topology",
                    format!("{sig}"),
                    format!("fanin {fanin} does not precede {} gate {sig}; single-pass simulation reads a stale value", gate.kind),
                ));
            }
        }
        if gate.kind.arity() == 1 && gate.fanins[1] != gate.fanins[0] {
            diags.push(Diagnostic::warning(
                "arity",
                format!("{sig}"),
                format!(
                    "single-fanin {} gate has misaligned fanin slots ({} vs {})",
                    gate.kind, gate.fanins[0], gate.fanins[1]
                ),
            ));
        }
    }

    // The simulator feeds `input_words[i]` to the i-th Input node in
    // topological order; the registered input list must match exactly.
    let mut list_ok = true;
    for (i, &input) in netlist.inputs().iter().enumerate() {
        match netlist.try_gate(input) {
            Ok(g) if g.kind == GateKind::Input => {}
            Ok(g) => {
                list_ok = false;
                diags.push(Diagnostic::error(
                    "io",
                    format!("{input}"),
                    format!("inputs[{i}] is a {} gate, not a primary input", g.kind),
                ));
            }
            Err(_) => {
                list_ok = false;
                diags.push(Diagnostic::error(
                    "io",
                    format!("{input}"),
                    format!("inputs[{i}] references undefined signal {input}"),
                ));
            }
        }
    }
    if list_ok {
        let actual: Vec<_> = netlist
            .iter()
            .filter(|(_, g)| g.kind == GateKind::Input)
            .map(|(s, _)| s)
            .collect();
        if actual != netlist.inputs() {
            diags.push(Diagnostic::error(
                "io",
                "inputs",
                format!(
                    "input list ({} entries) disagrees with the {} Input nodes in netlist order",
                    netlist.num_inputs(),
                    actual.len()
                ),
            ));
        }
    }

    if netlist.outputs().is_empty() {
        diags.push(Diagnostic::error(
            "io",
            "outputs",
            "no primary outputs registered; every gate is dead",
        ));
    }
    for (i, &output) in netlist.outputs().iter().enumerate() {
        if output.index() >= n {
            in_range = false;
            diags.push(Diagnostic::error(
                "dangling",
                format!("{output}"),
                format!("outputs[{i}] references undefined signal {output}"),
            ));
        }
    }

    (diags, in_range)
}

/// Depth-first search for combinational cycles (gray-node back edges).
fn check_cycles(netlist: &Netlist) -> Vec<Diagnostic> {
    const WHITE: u8 = 0;
    const GRAY: u8 = 1;
    const BLACK: u8 = 2;
    let gates: Vec<Gate> = netlist.iter().map(|(_, g)| g).collect();
    let n = gates.len();
    let mut color = vec![WHITE; n];
    let mut diags = Vec::new();
    for root in 0..n {
        if color[root] != WHITE {
            continue;
        }
        color[root] = GRAY;
        let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(top) = stack.last_mut() {
            let (node, slot) = *top;
            if slot < gates[node].kind.arity() {
                top.1 += 1;
                let fanin = gates[node].fanins[slot].index();
                match color[fanin] {
                    WHITE => {
                        color[fanin] = GRAY;
                        stack.push((fanin, 0));
                    }
                    GRAY => {
                        diags.push(Diagnostic::error(
                            "cycle",
                            format!("n{node}"),
                            format!(
                                "combinational cycle: fanin n{fanin} of n{node} is on the current evaluation path"
                            ),
                        ));
                    }
                    _ => {}
                }
            } else {
                color[node] = BLACK;
                stack.pop();
            }
        }
    }
    diags
}

/// The observability pass: physical gates that drive nothing
/// (fanout-free), or whose value never reaches any primary output
/// (dead cone). Liveness and fanout counts come from the shared
/// [`AnalysisContext`], the same views the cost model's area/power
/// accounting is built on, so "dead" here and "free" there can never
/// disagree.
fn check_observability(ctx: &AnalysisContext<'_>) -> Vec<Diagnostic> {
    let netlist = ctx.netlist();
    let fanout = ctx.fanout_counts();
    let live = ctx.live();
    let mut is_output = vec![false; netlist.num_nodes()];
    for &o in netlist.outputs() {
        is_output[o.index()] = true;
    }
    let mut diags = Vec::new();
    for (sig, gate) in netlist.iter() {
        let i = sig.index();
        if !gate.kind.is_physical() || is_output[i] {
            continue;
        }
        if fanout[i] == 0 {
            diags.push(Diagnostic::warning(
                "dead-gate",
                format!("{sig}"),
                format!(
                    "{} gate {sig} is fanout-free and not a primary output",
                    gate.kind
                ),
            ));
        } else if !live[i] {
            diags.push(Diagnostic::warning(
                "dead-gate",
                format!("{sig}"),
                format!(
                    "{} gate {sig} feeds only dead logic (unreachable from every output)",
                    gate.kind
                ),
            ));
        }
    }
    diags
}

/// Gates a constant-propagation pass would remove: constant fanins or a
/// two-input gate fed twice by the same signal.
fn check_const_foldable(netlist: &Netlist) -> Vec<Diagnostic> {
    let kinds: Vec<GateKind> = netlist.iter().map(|(_, g)| g.kind).collect();
    let mut diags = Vec::new();
    for (sig, gate) in netlist.iter() {
        let arity = gate.kind.arity();
        if arity == 0 {
            continue;
        }
        for slot in 0..arity {
            let fk = kinds[gate.fanins[slot].index()];
            if matches!(fk, GateKind::Const0 | GateKind::Const1) {
                diags.push(Diagnostic::info(
                    "const-fold",
                    format!("{sig}"),
                    format!(
                        "{} gate {sig} has constant fanin {} ({fk}); foldable",
                        gate.kind, gate.fanins[slot]
                    ),
                ));
                break;
            }
        }
        if arity == 2 && gate.fanins[0] == gate.fanins[1] {
            diags.push(Diagnostic::info(
                "const-fold",
                format!("{sig}"),
                format!(
                    "both fanins of {} gate {sig} are {}; reducible to a simpler node",
                    gate.kind, gate.fanins[0]
                ),
            ));
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;
    use appmult_circuit::Signal;

    fn by_pass<'d>(diags: &'d [Diagnostic], pass: &str) -> Vec<&'d Diagnostic> {
        diags.iter().filter(|d| d.pass == pass).collect()
    }

    #[test]
    fn builder_netlists_lint_clean() {
        let mut nl = Netlist::new();
        let a = nl.input();
        let b = nl.input();
        let (s, c) = nl.full_adder(a, b, a);
        nl.set_outputs(vec![s, c]);
        assert!(lint_netlist(&nl).is_empty());
    }

    #[test]
    fn cyclic_netlist_is_reported() {
        // Build a valid netlist, then rewire g's fanin to its own fanout.
        let mut nl = Netlist::new();
        let a = nl.input();
        let b = nl.input();
        let g = nl.and(a, b);
        let h = nl.or(g, a);
        nl.set_outputs(vec![h]);
        nl.set_fanin(g, 0, h).unwrap();
        let diags = lint_netlist(&nl);
        assert_eq!(by_pass(&diags, "cycle").len(), 1, "{diags:?}");
        assert_eq!(by_pass(&diags, "topology").len(), 1);
        assert!(diags.iter().all(|d| d.severity == Severity::Error));
    }

    #[test]
    fn undriven_signal_is_reported() {
        // A raw netlist whose AND gate reads a signal that does not exist.
        let gates = vec![
            Gate {
                kind: GateKind::Input,
                fanins: [Signal::from_index(0); 2],
            },
            Gate {
                kind: GateKind::And,
                fanins: [Signal::from_index(0), Signal::from_index(9)],
            },
        ];
        let nl = Netlist::from_raw_parts(
            gates,
            vec![Signal::from_index(0)],
            vec![Signal::from_index(1)],
        );
        let diags = lint_netlist(&nl);
        let dangling = by_pass(&diags, "dangling");
        assert_eq!(dangling.len(), 1);
        assert!(dangling[0].message.contains("n9"));
        // Deep traversals are skipped, so no spurious cycle/dead findings.
        assert!(by_pass(&diags, "cycle").is_empty());
    }

    #[test]
    fn missing_outputs_and_dead_gates_are_reported() {
        let mut nl = Netlist::new();
        let a = nl.input();
        let b = nl.input();
        let used = nl.and(a, b);
        let _dead = nl.xor(a, b);
        nl.set_outputs(vec![used]);
        let diags = lint_netlist(&nl);
        let dead = by_pass(&diags, "dead-gate");
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].severity, Severity::Warning);

        let mut no_outputs = Netlist::new();
        let a = no_outputs.input();
        let b = no_outputs.input();
        no_outputs.and(a, b);
        let diags = lint_netlist(&no_outputs);
        assert_eq!(by_pass(&diags, "io").len(), 1);
    }

    #[test]
    fn dead_cone_is_distinguished_from_fanout_free() {
        // feeder -> sink, sink fanout-free: feeder has fanout but is dead.
        let mut nl = Netlist::new();
        let a = nl.input();
        let b = nl.input();
        let out = nl.or(a, b);
        let feeder = nl.and(a, b);
        let _sink = nl.xor(feeder, a);
        nl.set_outputs(vec![out]);
        let diags = lint_netlist(&nl);
        let dead = by_pass(&diags, "dead-gate");
        assert_eq!(dead.len(), 2);
        assert!(dead.iter().any(|d| d.message.contains("fanout-free")));
        assert!(dead.iter().any(|d| d.message.contains("dead logic")));
    }

    #[test]
    fn const_fanins_and_twin_fanins_are_info() {
        let mut nl = Netlist::new();
        let a = nl.input();
        let one = nl.const1();
        let folded = nl.and(a, one);
        let twin = nl.xor(a, a);
        let out = nl.or(folded, twin);
        nl.set_outputs(vec![out]);
        let diags = lint_netlist(&nl);
        let folds = by_pass(&diags, "const-fold");
        assert_eq!(folds.len(), 2);
        assert!(folds.iter().all(|d| d.severity == Severity::Info));
    }

    #[test]
    fn input_list_mismatch_is_reported() {
        // inputs list names an AND gate instead of the Input node.
        let mut nl = Netlist::new();
        let a = nl.input();
        let b = nl.input();
        let g = nl.and(a, b);
        nl.set_outputs(vec![g]);
        let raw = Netlist::from_raw_parts(nl.iter().map(|(_, g)| g).collect(), vec![a, g], vec![g]);
        let diags = lint_netlist(&raw);
        assert!(!by_pass(&diags, "io").is_empty());
    }

    #[test]
    fn generated_multipliers_lint_clean() {
        for circuit in [MultiplierCircuit::array(4), MultiplierCircuit::wallace(5)] {
            let diags = lint_multiplier_circuit(&circuit);
            let errors: Vec<_> = diags
                .iter()
                .filter(|d| d.severity == Severity::Error)
                .collect();
            assert!(errors.is_empty(), "{errors:?}");
        }
    }

    #[test]
    fn width_violation_is_reported() {
        // An adder netlist is not a multiplier: 2B inputs but B+1 outputs.
        let adder = appmult_circuit::ripple_carry_adder(4);
        let circuit = MultiplierCircuit::from_netlist(adder.netlist().clone(), 4);
        assert!(circuit.is_err(), "from_netlist itself rejects bad shapes");
        let mut nl = Netlist::new();
        let a = nl.input();
        let b = nl.input();
        let g = nl.and(a, b);
        nl.set_outputs(vec![g, g]);
        let circuit = MultiplierCircuit::from_netlist(nl, 1).unwrap();
        assert!(lint_multiplier_circuit(&circuit)
            .iter()
            .all(|d| d.pass != "width"));
    }
}
