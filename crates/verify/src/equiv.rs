//! Miter-based equivalence checking.
//!
//! Two netlists with identical bus shapes are checked by building a
//! *miter*: both circuits share the primary inputs, corresponding outputs
//! are XORed, and the XOR bits are OR-reduced to a single `diff` output.
//! The circuits are equivalent iff `diff` is constant 0.
//!
//! Up to [`EquivConfig::exhaustive_limit_bits`] shared input bits the miter
//! is proved exhaustively with the 64-way bit-parallel engine
//! ([`ExhaustiveTable`]); above that, corner patterns plus seeded random
//! vectors (batched 64 lanes per simulation) give a high-confidence sample.

use std::fmt;

use appmult_circuit::{
    simulate_bools, simulate_words, ExhaustiveTable, GateKind, MultiplierCircuit, Netlist,
    NetlistError, Signal,
};
use appmult_mult::MultiplierLut;
use appmult_rng::Rng64;

/// Tuning knobs of the equivalence checker.
#[derive(Debug, Clone)]
pub struct EquivConfig {
    /// Largest shared input width proved exhaustively (capped at 24 by the
    /// simulation engine).
    pub exhaustive_limit_bits: u32,
    /// Number of random vectors sampled above the exhaustive limit.
    pub random_vectors: usize,
    /// Seed of the random vector generator.
    pub seed: u64,
}

impl Default for EquivConfig {
    fn default() -> Self {
        Self {
            exhaustive_limit_bits: 16,
            random_vectors: 4096,
            seed: 0xA99_F00D,
        }
    }
}

/// Outcome of a netlist equivalence check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Equivalence {
    /// No differing pattern was found.
    Equivalent {
        /// Number of input patterns checked.
        patterns: u64,
        /// Whether the whole input space was covered (a proof) or only a
        /// sample of it.
        exhaustive: bool,
    },
    /// A differing input pattern was found.
    Counterexample(Counterexample),
}

/// A concrete input on which two netlists disagree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Counterexample {
    /// Input bus value (input 0 = LSB).
    pub input: u64,
    /// Output bus of the first (candidate) netlist.
    pub a_output: u64,
    /// Output bus of the second (reference) netlist.
    pub b_output: u64,
}

/// Why a miter could not be constructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MiterError {
    /// The two netlists have different bus shapes.
    ShapeMismatch {
        /// Primary input counts of the two netlists.
        inputs: (usize, usize),
        /// Primary output counts of the two netlists.
        outputs: (usize, usize),
    },
    /// A source netlist is malformed (dangling or forward reference); run
    /// the structural lints for details.
    InvalidSource(NetlistError),
}

impl fmt::Display for MiterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MiterError::ShapeMismatch { inputs, outputs } => write!(
                f,
                "bus shapes differ: {} vs {} inputs, {} vs {} outputs",
                inputs.0, inputs.1, outputs.0, outputs.1
            ),
            MiterError::InvalidSource(e) => write!(f, "malformed source netlist: {e}"),
        }
    }
}

impl std::error::Error for MiterError {}

/// Copies `src` into `dst`, substituting `shared_inputs` for the primary
/// inputs, and returns the signals of `src`'s outputs inside `dst`.
fn append_netlist(
    dst: &mut Netlist,
    src: &Netlist,
    shared_inputs: &[Signal],
) -> Result<Vec<Signal>, MiterError> {
    let remap = |map: &[Signal], gate: usize, s: Signal| -> Result<Signal, MiterError> {
        map.get(s.index()).copied().ok_or(MiterError::InvalidSource(
            NetlistError::ForwardReference { gate, fanin: s },
        ))
    };
    let mut map: Vec<Signal> = Vec::with_capacity(src.num_nodes());
    let mut next_input = 0usize;
    for (sig, gate) in src.iter() {
        let new = match gate.kind {
            GateKind::Input => {
                let s = *shared_inputs
                    .get(next_input)
                    .ok_or(MiterError::InvalidSource(NetlistError::UnknownSignal(sig)))?;
                next_input += 1;
                s
            }
            GateKind::Const0 => dst.const0(),
            GateKind::Const1 => dst.const1(),
            GateKind::Buf | GateKind::Not => {
                let a = remap(&map, sig.index(), gate.fanins[0])?;
                if gate.kind == GateKind::Buf {
                    dst.buf(a)
                } else {
                    dst.not(a)
                }
            }
            _ => {
                let a = remap(&map, sig.index(), gate.fanins[0])?;
                let b = remap(&map, sig.index(), gate.fanins[1])?;
                match gate.kind {
                    GateKind::And => dst.and(a, b),
                    GateKind::Or => dst.or(a, b),
                    GateKind::Xor => dst.xor(a, b),
                    GateKind::Nand => dst.nand(a, b),
                    GateKind::Nor => dst.nor(a, b),
                    GateKind::Xnor => dst.xnor(a, b),
                    _ => unreachable!("0/1-arity kinds handled above"),
                }
            }
        };
        map.push(new);
    }
    src.outputs()
        .iter()
        .map(|&o| {
            map.get(o.index())
                .copied()
                .ok_or(MiterError::InvalidSource(NetlistError::UnknownSignal(o)))
        })
        .collect()
}

/// Builds the miter of two netlists: shared inputs, XORed output pairs,
/// OR-reduced to a single `diff` output that is 1 iff the circuits
/// disagree on the applied input.
///
/// # Errors
///
/// Returns [`MiterError::ShapeMismatch`] if the bus shapes differ, or
/// [`MiterError::InvalidSource`] if either netlist violates the
/// topological invariant.
pub fn miter(a: &Netlist, b: &Netlist) -> Result<Netlist, MiterError> {
    if a.num_inputs() != b.num_inputs() || a.outputs().len() != b.outputs().len() {
        return Err(MiterError::ShapeMismatch {
            inputs: (a.num_inputs(), b.num_inputs()),
            outputs: (a.outputs().len(), b.outputs().len()),
        });
    }
    let mut m = Netlist::new();
    let shared: Vec<Signal> = (0..a.num_inputs()).map(|_| m.input()).collect();
    let outs_a = append_netlist(&mut m, a, &shared)?;
    let outs_b = append_netlist(&mut m, b, &shared)?;
    let mut diffs: Vec<Signal> = outs_a
        .iter()
        .zip(&outs_b)
        .map(|(&oa, &ob)| m.xor(oa, ob))
        .collect();
    while diffs.len() > 1 {
        let mut next = Vec::with_capacity(diffs.len().div_ceil(2));
        for pair in diffs.chunks(2) {
            next.push(if pair.len() == 2 {
                m.or(pair[0], pair[1])
            } else {
                pair[0]
            });
        }
        diffs = next;
    }
    let diff = match diffs.pop() {
        Some(d) => d,
        None => m.const0(), // zero outputs: vacuously equivalent
    };
    m.set_outputs(vec![diff]);
    Ok(m)
}

fn pack_outputs(bits: &[bool]) -> u64 {
    bits.iter()
        .enumerate()
        .fold(0u64, |acc, (k, &b)| acc | (u64::from(b) << k))
}

fn counterexample_at(a: &Netlist, b: &Netlist, input: u64) -> Counterexample {
    let bools: Vec<bool> = (0..a.num_inputs()).map(|i| (input >> i) & 1 == 1).collect();
    Counterexample {
        input,
        a_output: pack_outputs(&simulate_bools(a, &bools)),
        b_output: pack_outputs(&simulate_bools(b, &bools)),
    }
}

/// Checks whether `a` and `b` compute the same function.
///
/// With at most [`EquivConfig::exhaustive_limit_bits`] shared input bits
/// the miter is evaluated over the whole input space (a proof); above
/// that, corner patterns (all-zero, all-one, one-hot, one-cold,
/// alternating) and seeded random vectors are sampled. The first failing
/// input — lowest input value on the exhaustive path — is returned as a
/// [`Counterexample`].
///
/// # Errors
///
/// Propagates [`MiterError`] from miter construction.
pub fn prove_equivalence(
    a: &Netlist,
    b: &Netlist,
    cfg: &EquivConfig,
) -> Result<Equivalence, MiterError> {
    let m = miter(a, b)?;
    let n = m.num_inputs() as u32;
    if n <= cfg.exhaustive_limit_bits.min(24) {
        let table = ExhaustiveTable::build(&m);
        for (v, &d) in table.values().iter().enumerate() {
            if d != 0 {
                return Ok(Equivalence::Counterexample(counterexample_at(
                    a, b, v as u64,
                )));
            }
        }
        return Ok(Equivalence::Equivalent {
            patterns: 1u64 << n,
            exhaustive: true,
        });
    }

    let mask = if n >= 64 { u64::MAX } else { (1u64 << n) - 1 };
    let mut vectors: Vec<u64> = vec![
        0,
        mask,
        0xAAAA_AAAA_AAAA_AAAA & mask,
        0x5555_5555_5555_5555 & mask,
    ];
    for i in 0..n.min(64) {
        vectors.push(1u64 << i);
        vectors.push(mask ^ (1u64 << i));
    }
    let mut rng = Rng64::seed_from_u64(cfg.seed);
    for _ in 0..cfg.random_vectors {
        vectors.push(rng.next_u64() & mask);
    }

    let mut input_words = vec![0u64; n as usize];
    let mut checked = 0u64;
    for batch in vectors.chunks(64) {
        input_words.iter_mut().for_each(|w| *w = 0);
        for (lane, &v) in batch.iter().enumerate() {
            for (i, word) in input_words.iter_mut().enumerate() {
                *word |= ((v >> i) & 1) << lane;
            }
        }
        let lanes_mask = if batch.len() == 64 {
            u64::MAX
        } else {
            (1u64 << batch.len()) - 1
        };
        let diff = simulate_words(&m, &input_words)[0] & lanes_mask;
        if diff != 0 {
            let lane = diff.trailing_zeros() as usize;
            return Ok(Equivalence::Counterexample(counterexample_at(
                a,
                b,
                batch[lane],
            )));
        }
        checked += batch.len() as u64;
    }
    Ok(Equivalence::Equivalent {
        patterns: checked,
        exhaustive: false,
    })
}

/// Outcome of a multiplier equivalence check, with the counterexample
/// decoded into operand values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MultiplierEquiv {
    /// No differing operand pair was found.
    Equivalent {
        /// Number of operand pairs checked.
        patterns: u64,
        /// Whether the whole operand space was covered.
        exhaustive: bool,
    },
    /// A differing operand pair was found.
    Counterexample(MultiplierCounterexample),
}

/// A concrete operand pair on which a candidate multiplier differs from
/// the reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultiplierCounterexample {
    /// Weight operand.
    pub w: u64,
    /// Activation operand.
    pub x: u64,
    /// Product computed by the candidate.
    pub got: u64,
    /// Product computed by the reference.
    pub expected: u64,
}

impl fmt::Display for MultiplierCounterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "AM({}, {}) = {} but reference gives {}",
            self.w, self.x, self.got, self.expected
        )
    }
}

/// Checks a candidate multiplier circuit against a reference circuit of
/// the same width by miter construction (exhaustively for widths up to
/// `exhaustive_limit_bits / 2` operand bits).
///
/// # Errors
///
/// Propagates [`MiterError`] from miter construction (including the
/// width mismatch case).
pub fn prove_multiplier_equivalence(
    candidate: &MultiplierCircuit,
    reference: &MultiplierCircuit,
    cfg: &EquivConfig,
) -> Result<MultiplierEquiv, MiterError> {
    let bits = candidate.bits();
    let r = prove_equivalence(candidate.netlist(), reference.netlist(), cfg)?;
    Ok(match r {
        Equivalence::Equivalent {
            patterns,
            exhaustive,
        } => MultiplierEquiv::Equivalent {
            patterns,
            exhaustive,
        },
        Equivalence::Counterexample(c) => {
            // Input bus layout: w (LSB-first), then x.
            let mask = (1u64 << bits) - 1;
            MultiplierEquiv::Counterexample(MultiplierCounterexample {
                w: c.input & mask,
                x: (c.input >> bits) & mask,
                got: c.a_output,
                expected: c.b_output,
            })
        }
    })
}

/// Exhaustive table-scan equivalence of a product LUT against the exact
/// multiplier, for designs without a gate-level structure. Returns the
/// lowest differing `(w, x)` pair in row-major order.
pub fn lut_equivalence_vs_exact(lut: &MultiplierLut) -> MultiplierEquiv {
    let n = 1u32 << lut.bits();
    for w in 0..n {
        for x in 0..n {
            let got = u64::from(lut.product(w, x));
            let expected = u64::from(w) * u64::from(x);
            if got != expected {
                return MultiplierEquiv::Counterexample(MultiplierCounterexample {
                    w: u64::from(w),
                    x: u64::from(x),
                    got,
                    expected,
                });
            }
        }
    }
    MultiplierEquiv::Equivalent {
        patterns: u64::from(n) * u64::from(n),
        exhaustive: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use appmult_circuit::MultiplierStructure;
    use appmult_mult::Multiplier;

    #[test]
    fn array_and_wallace_are_equivalent_exhaustively() {
        let a = MultiplierCircuit::array(5);
        let b = MultiplierCircuit::wallace(5);
        let r = prove_multiplier_equivalence(&a, &b, &EquivConfig::default()).unwrap();
        assert_eq!(
            r,
            MultiplierEquiv::Equivalent {
                patterns: 1 << 10,
                exhaustive: true
            }
        );
    }

    #[test]
    fn truncated_multiplier_yields_first_counterexample() {
        // mul7u_rm6 removes the 6 rightmost columns: AM(1, 1) = 0, not 1.
        // The exhaustive scan walks raw input values (w low bits), so the
        // first failing pattern is w = 1, x = 1.
        let exact = MultiplierCircuit::array(7);
        let truncated = MultiplierCircuit::with_removed_columns(7, 6, MultiplierStructure::Array);
        match prove_multiplier_equivalence(&truncated, &exact, &EquivConfig::default()).unwrap() {
            MultiplierEquiv::Counterexample(c) => {
                assert_eq!((c.w, c.x), (1, 1));
                assert_eq!(c.got, 0);
                assert_eq!(c.expected, 1);
            }
            other => panic!("expected counterexample, got {other:?}"),
        }
    }

    #[test]
    fn sampled_path_proves_nothing_but_finds_gross_bugs() {
        // 9-bit multipliers: 18 shared input bits > 16, so the checker
        // samples. Array vs Wallace should agree on every sample ...
        let a = MultiplierCircuit::array(9);
        let b = MultiplierCircuit::wallace(9);
        let cfg = EquivConfig {
            random_vectors: 512,
            ..EquivConfig::default()
        };
        match prove_equivalence(a.netlist(), b.netlist(), &cfg).unwrap() {
            Equivalence::Equivalent {
                exhaustive,
                patterns,
            } => {
                assert!(!exhaustive);
                assert!(patterns >= 512);
            }
            other => panic!("expected sampled equivalence, got {other:?}"),
        }
        // ... while a truncated 9-bit multiplier fails fast (the all-ones
        // corner differs).
        let truncated = MultiplierCircuit::with_removed_columns(9, 8, MultiplierStructure::Array);
        match prove_multiplier_equivalence(&truncated, &a, &cfg).unwrap() {
            MultiplierEquiv::Counterexample(c) => {
                assert_ne!(c.got, c.expected);
                assert_eq!(c.expected, c.w * c.x);
            }
            other => panic!("expected counterexample, got {other:?}"),
        }
    }

    #[test]
    fn shape_mismatch_is_an_error() {
        let a = MultiplierCircuit::array(4);
        let b = MultiplierCircuit::array(5);
        assert!(matches!(
            prove_equivalence(a.netlist(), b.netlist(), &EquivConfig::default()),
            Err(MiterError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn malformed_source_is_rejected() {
        use appmult_circuit::Gate;
        let gates = vec![
            Gate {
                kind: GateKind::Input,
                fanins: [Signal::from_index(0); 2],
            },
            Gate {
                kind: GateKind::Not,
                fanins: [Signal::from_index(5); 2],
            },
        ];
        let bad = Netlist::from_raw_parts(
            gates,
            vec![Signal::from_index(0)],
            vec![Signal::from_index(1)],
        );
        let mut good = Netlist::new();
        let i = good.input();
        let o = good.not(i);
        good.set_outputs(vec![o]);
        assert!(matches!(
            miter(&bad, &good),
            Err(MiterError::InvalidSource(_))
        ));
    }

    #[test]
    fn lut_scan_agrees_with_miter_for_exact_designs() {
        let lut = appmult_mult::ExactMultiplier::new(6).to_lut();
        assert_eq!(
            lut_equivalence_vs_exact(&lut),
            MultiplierEquiv::Equivalent {
                patterns: 1 << 12,
                exhaustive: true
            }
        );
        let bad = appmult_mult::TruncatedMultiplier::new(6, 4).to_lut();
        match lut_equivalence_vs_exact(&bad) {
            MultiplierEquiv::Counterexample(c) => assert_eq!((c.w, c.x), (1, 1)),
            other => panic!("expected counterexample, got {other:?}"),
        }
    }
}
