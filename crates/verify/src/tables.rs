//! LUT and gradient-table validators.
//!
//! The retraining loop trusts two table families blindly: the product LUT
//! that replaces the multiplier in the forward pass, and the gradient LUTs
//! built from it (Eqs. 4-6). These passes recompute the defining equations
//! independently and flag any entry that disagrees, plus the usual
//! numerical hygiene (NaN/Inf) and error-metric sanity checks.

use appmult_mult::{ErrorMetrics, MultiplierLut};
use appmult_retrain::{smooth_row, GradientLut};

use crate::diag::Diagnostic;

/// At most this many per-entry mismatches are reported per gradient table;
/// the remainder is summarized in one closing diagnostic.
const MAX_REPORTED_MISMATCHES: usize = 4;

/// Sanity checks of a product LUT and its exhaustive error metrics.
///
/// Pass names: `metrics` (error). An exact LUT must measure zero error on
/// every metric; a non-exact LUT must measure a nonzero error rate and
/// MaxED, and the metrics must be mutually consistent (e.g. `MED` can
/// never exceed `MaxED`). Exact multipliers therefore lint clean with
/// zero error — any finding here means the LUT and the metrics pipeline
/// disagree about the same table.
pub fn lint_multiplier_lut(lut: &MultiplierLut) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let name = lut.name().to_string();
    let m = ErrorMetrics::exhaustive(lut);
    let exact = lut.is_exact();
    if exact && (m.error_rate != 0.0 || m.max_ed != 0 || m.nmed != 0.0 || m.med != 0.0) {
        diags.push(Diagnostic::error(
            "metrics",
            name.clone(),
            format!(
                "exact LUT reports nonzero error metrics (ER {:.4}, NMED {:.6}, MaxED {})",
                m.error_rate, m.nmed, m.max_ed
            ),
        ));
    }
    if !exact && (m.error_rate == 0.0 || m.max_ed == 0) {
        diags.push(Diagnostic::error(
            "metrics",
            name.clone(),
            format!(
                "approximate LUT reports zero error (ER {:.4}, MaxED {})",
                m.error_rate, m.max_ed
            ),
        ));
    }
    if !(0.0..=1.0).contains(&m.error_rate) || !(0.0..=1.0).contains(&m.nmed) {
        diags.push(Diagnostic::error(
            "metrics",
            name.clone(),
            format!("ER {:.4} / NMED {:.6} outside [0, 1]", m.error_rate, m.nmed),
        ));
    }
    if m.med > m.max_ed as f64 + 1e-9 {
        diags.push(Diagnostic::error(
            "metrics",
            name,
            format!("MED {:.4} exceeds MaxED {}", m.med, m.max_ed),
        ));
    }
    diags
}

/// Validates difference-based gradient tables against an independent
/// recomputation of Eqs. 4-6.
///
/// Pass names: `finite` (error; NaN/Inf entries, via
/// [`GradientLut::validate`]), `eq5-interior` (error; interior entries
/// must equal the central difference of the Eq. 4 smoothed row), and
/// `eq6-boundary` (error; boundary entries must equal the average slope
/// `(max - min) / 2^B`).
///
/// `grads` must have been built with [`GradientMode::DifferenceBased`]
/// using the same `hws` — tables built under a different mode will
/// (correctly) fail the consistency check.
///
/// [`GradientMode::DifferenceBased`]: appmult_retrain::GradientMode::DifferenceBased
pub fn lint_gradient_lut(lut: &MultiplierLut, grads: &GradientLut, hws: u32) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if grads.bits() != lut.bits() {
        diags.push(Diagnostic::error(
            "finite",
            lut.name().to_string(),
            format!(
                "gradient tables are {}-bit but the LUT is {}-bit",
                grads.bits(),
                lut.bits()
            ),
        ));
        return diags;
    }
    if hws == 0 {
        diags.push(Diagnostic::error(
            "eq5-interior",
            lut.name().to_string(),
            "half window size 0 is outside the Eq. 4 domain",
        ));
        return diags;
    }
    if let Err(e) = grads.validate() {
        diags.push(Diagnostic::error(
            "finite",
            lut.name().to_string(),
            format!("{e}"),
        ));
        return diags;
    }
    // d/dX at fixed W: rows of the LUT.
    check_difference_table(lut, hws, false, |w, x| grads.wrt_x(w, x), &mut diags);
    // d/dW at fixed X: rows of the transposed LUT.
    let t = lut.transposed();
    check_difference_table(&t, hws, true, |x, w| grads.wrt_w(w, x), &mut diags);
    diags
}

/// Recomputes Eq. 5/6 for every row of `table` and compares against
/// `got(row, col)`. `transposed` only affects how locations are printed
/// (the row of a transposed table is an `x` value).
fn check_difference_table<F: Fn(u32, u32) -> f32>(
    table: &MultiplierLut,
    hws: u32,
    transposed: bool,
    got: F,
    diags: &mut Vec<Diagnostic>,
) {
    let bits = table.bits();
    let n = 1usize << bits;
    let h = hws as usize;
    let table_name = if transposed { "wrt_w" } else { "wrt_x" };
    let mut mismatches = 0usize;
    for r in 0..n as u32 {
        let row = table.row(r);
        let smoothed = smooth_row(row, hws);
        let (lo, hi) = row
            .iter()
            .fold((u32::MAX, 0u32), |(lo, hi), &v| (lo.min(v), hi.max(v)));
        let boundary = ((f64::from(hi) - f64::from(lo)) / n as f64) as f32;
        for c in 0..n as u32 {
            let x = c as usize;
            let interior = x > h && x + h + 1 < n;
            let (pass, expected) = if interior {
                let sp = smoothed[x + 1].expect("x + 1 inside Eq. 4 domain");
                let sm = smoothed[x - 1].expect("x - 1 inside Eq. 4 domain");
                ("eq5-interior", ((sp - sm) / 2.0) as f32)
            } else {
                ("eq6-boundary", boundary)
            };
            let actual = got(r, c);
            let tol = 1e-4 * expected.abs().max(1.0);
            if (actual - expected).abs() > tol {
                mismatches += 1;
                if mismatches <= MAX_REPORTED_MISMATCHES {
                    let (w, x) = if transposed { (c, r) } else { (r, c) };
                    diags.push(Diagnostic::error(
                        pass,
                        format!("{table_name}[w={w}, x={x}]"),
                        format!("table holds {actual} but recomputation gives {expected}"),
                    ));
                }
            }
        }
    }
    if mismatches > MAX_REPORTED_MISMATCHES {
        diags.push(Diagnostic::error(
            "eq5-interior",
            table_name,
            format!(
                "{} further entries disagree with the Eq. 5/6 recomputation",
                mismatches - MAX_REPORTED_MISMATCHES
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::has_errors;
    use appmult_mult::{ExactMultiplier, Multiplier, TruncatedMultiplier};
    use appmult_retrain::GradientMode;
    use std::sync::Arc;

    #[test]
    fn exact_luts_lint_clean() {
        for bits in [4, 6, 8] {
            let lut = ExactMultiplier::new(bits).to_lut();
            assert!(lint_multiplier_lut(&lut).is_empty(), "bits={bits}");
        }
    }

    #[test]
    fn approximate_luts_lint_clean_too() {
        let lut = TruncatedMultiplier::new(7, 6).to_lut();
        assert!(lint_multiplier_lut(&lut).is_empty());
    }

    #[test]
    fn difference_tables_pass_their_own_recomputation() {
        for (bits, removed, hws) in [(6u32, 4u32, 2u32), (7, 6, 4), (8, 8, 16)] {
            let lut = TruncatedMultiplier::new(bits, removed).to_lut();
            let g = GradientLut::build(&lut, GradientMode::difference_based(hws));
            let diags = lint_gradient_lut(&lut, &g, hws);
            assert!(diags.is_empty(), "bits={bits} hws={hws}: {diags:?}");
        }
    }

    #[test]
    fn tampered_gradient_entry_is_located() {
        let lut = TruncatedMultiplier::new(6, 4).to_lut();
        let g = GradientLut::build(&lut, GradientMode::difference_based(2));
        let mut wrt_x = g.wrt_x_table().as_ref().clone();
        wrt_x[(10 << 6) | 20] += 5.0; // interior entry
        let tampered = GradientLut::build(
            &lut,
            GradientMode::Custom {
                wrt_w: g.wrt_w_table().clone(),
                wrt_x: Arc::new(wrt_x),
            },
        );
        let diags = lint_gradient_lut(&lut, &tampered, 2);
        assert!(has_errors(&diags));
        assert!(
            diags
                .iter()
                .any(|d| d.pass == "eq5-interior" && d.location.contains("w=10, x=20")),
            "{diags:?}"
        );
    }

    #[test]
    fn non_finite_gradient_is_reported_before_consistency() {
        let lut = ExactMultiplier::new(4).to_lut();
        let mut bad = vec![0.0f32; 256];
        bad[5] = f32::INFINITY;
        let g = GradientLut::build(
            &lut,
            GradientMode::Custom {
                wrt_w: Arc::new(bad),
                wrt_x: Arc::new(vec![0.0; 256]),
            },
        );
        let diags = lint_gradient_lut(&lut, &g, 1);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].pass, "finite");
    }

    #[test]
    fn wrong_mode_fails_consistency_with_cap() {
        // STE tables are not the difference-based gradient; the mismatch
        // flood must be capped at MAX_REPORTED_MISMATCHES + 1 per table.
        let lut = TruncatedMultiplier::new(6, 4).to_lut();
        let ste = GradientLut::build(&lut, GradientMode::Ste);
        let diags = lint_gradient_lut(&lut, &ste, 2);
        assert!(has_errors(&diags));
        assert!(diags.len() <= 2 * (MAX_REPORTED_MISMATCHES + 1));
    }
}
