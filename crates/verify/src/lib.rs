//! Static verification layer for the AppMult workspace.
//!
//! Everything downstream of a multiplier design — the cost model, the LUT
//! forward path, the gradient tables, the retraining loop — silently
//! assumes the design is well-formed. This crate makes those assumptions
//! checkable without running a single training step:
//!
//! - **Structural netlist lints** ([`lint_netlist`],
//!   [`lint_multiplier_circuit`]): combinational cycles, dangling and
//!   undriven signals, dead gates, arity/bus-width violations, and
//!   const-foldable logic, each reported as a typed [`Diagnostic`].
//! - **Miter-based equivalence checking** ([`prove_equivalence`],
//!   [`prove_multiplier_equivalence`]): a candidate netlist is XORed
//!   against a reference over shared inputs; up to 16 shared input bits
//!   the miter is proved exhaustively with the 64-way bit-parallel
//!   simulation engine, above that corner patterns plus seeded random
//!   vectors are sampled. Counterexamples report the first failing
//!   operand pair.
//! - **LUT and gradient validators** ([`lint_multiplier_lut`],
//!   [`lint_gradient_lut`]): error-metric sanity, NaN/Inf detection, and
//!   an independent recomputation of the paper's Eq. 5 (smoothed central
//!   difference, interior) and Eq. 6 (average slope, boundary) against
//!   the stored gradient tables.
//! - **The static-analysis framework** ([`AnalysisContext`],
//!   [`analyze_netlist`]): a shared, cached context (levelization, fanout
//!   adjacency, liveness, signal probabilities) lent to four composable
//!   passes — static timing ([`sta`], bit-identical to the cost model's
//!   delay, with per-gate arrival/required/slack and an explicit critical
//!   path), ternary 0/1/X constant propagation ([`ternary_analysis`]),
//!   structural hashing ([`strash`]), and observability. The resulting
//!   [`NetlistAnalysis`] is the per-candidate cost/validity oracle for
//!   design-space exploration.
//! - **The zoo sweep** ([`lint_zoo`]): all of the above over every
//!   Table I design plus deliberately faulty negative controls, emitting
//!   the `results/LINT.json` and `results/ANALYZE.json` reports consumed
//!   by CI via the `appmult-lint` binary in `appmult-bench`.
//!
//! # Example
//!
//! ```
//! use appmult_mult::TruncatedMultiplier;
//! use appmult_verify::{MultiplierEquiv, MultiplierLintExt};
//!
//! // The Fig. 2 multiplier is approximate: the report carries a concrete
//! // counterexample against the exact multiplier and no error findings.
//! let report = TruncatedMultiplier::new(7, 6).lint(4);
//! assert_eq!(report.error_count(), 0);
//! match report.equivalence {
//!     Some(MultiplierEquiv::Counterexample(c)) => assert_eq!((c.w, c.x), (1, 1)),
//!     other => panic!("expected counterexample, got {other:?}"),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod diag;
mod equiv;
mod sta;
mod strash;
mod structural;
mod tables;
mod ternary;
mod zoo_lint;

pub use analysis::{analyze_netlist, AnalysisContext, NetlistAnalysis};
pub use diag::{count_severity, has_errors, has_warnings, max_severity, Diagnostic, Severity};
pub use equiv::{
    lut_equivalence_vs_exact, miter, prove_equivalence, prove_multiplier_equivalence,
    Counterexample, EquivConfig, Equivalence, MiterError, MultiplierCounterexample,
    MultiplierEquiv,
};
pub use sta::{sta, StaGate, StaReport};
pub use strash::{strash, strash_diagnostics, StrashReport};
pub use structural::{lint_multiplier_circuit, lint_netlist, lint_netlist_with};
pub use tables::{lint_gradient_lut, lint_multiplier_lut};
pub use ternary::{
    ternary_analysis, ternary_diagnostics, ternary_eval, StuckOutput, Ternary, TernaryReport,
};
pub use zoo_lint::{
    lint_multiplier, lint_zoo, lint_zoo_filtered, DesignAnalysis, DesignKind, DesignReport,
    ZooLintReport,
};

use appmult_mult::Multiplier;

/// Extension trait adding a one-call lint entry point to every
/// [`Multiplier`].
///
/// Lives here rather than on the trait itself because `appmult-verify`
/// depends on `appmult-mult`; a blanket impl makes it available on every
/// design (including trait objects) with a single `use`.
pub trait MultiplierLintExt: Multiplier {
    /// Runs every applicable verification pass over this design at the
    /// given half window size (see [`lint_multiplier`]).
    fn lint(&self, hws: u32) -> DesignReport;
}

impl<M: Multiplier + ?Sized> MultiplierLintExt for M {
    fn lint(&self, hws: u32) -> DesignReport {
        lint_multiplier(&self.name(), self, hws)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use appmult_mult::ExactMultiplier;

    #[test]
    fn lint_ext_works_on_trait_objects() {
        let m: &dyn Multiplier = &ExactMultiplier::new(4);
        let report = m.lint(1);
        assert_eq!(report.name, "mul4u_acc");
        assert_eq!(report.error_count(), 0, "{:?}", report.diagnostics);
    }
}
