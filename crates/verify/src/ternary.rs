//! Ternary (0/1/X) constant propagation.
//!
//! An abstract interpreter over the three-valued domain {0, 1, X}: every
//! primary input is unknown (X), constants are known, and each gate's
//! abstract function is the strongest sound approximation of its boolean
//! function (e.g. `AND(0, X) = 0`, `XOR(X, X) = X`). A gate whose abstract
//! value is 0 or 1 is therefore *proved* constant for **every** input
//! vector — including whole cones downstream of a constant, which the
//! single-gate `const-fold` lint cannot see.
//!
//! Soundness contract (property-tested against the 64-way word-parallel
//! simulator): if [`ternary_eval`] assigns a definite value to a node,
//! concrete simulation agrees under every concretization of the X inputs.

use appmult_circuit::{GateKind, Netlist, Signal};

use crate::analysis::AnalysisContext;
use crate::diag::Diagnostic;

/// A three-valued logic level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ternary {
    /// Proved logic 0.
    Zero,
    /// Proved logic 1.
    One,
    /// Unknown (depends on at least one X input).
    X,
}

impl Ternary {
    /// The definite boolean value, if proved.
    pub fn known(self) -> Option<bool> {
        match self {
            Ternary::Zero => Some(false),
            Ternary::One => Some(true),
            Ternary::X => None,
        }
    }

    fn from_bool(b: bool) -> Self {
        if b {
            Ternary::One
        } else {
            Ternary::Zero
        }
    }

    fn not(self) -> Self {
        match self {
            Ternary::Zero => Ternary::One,
            Ternary::One => Ternary::Zero,
            Ternary::X => Ternary::X,
        }
    }

    fn and(self, rhs: Self) -> Self {
        match (self, rhs) {
            (Ternary::Zero, _) | (_, Ternary::Zero) => Ternary::Zero,
            (Ternary::One, Ternary::One) => Ternary::One,
            _ => Ternary::X,
        }
    }

    fn or(self, rhs: Self) -> Self {
        match (self, rhs) {
            (Ternary::One, _) | (_, Ternary::One) => Ternary::One,
            (Ternary::Zero, Ternary::Zero) => Ternary::Zero,
            _ => Ternary::X,
        }
    }

    fn xor(self, rhs: Self) -> Self {
        match (self.known(), rhs.known()) {
            (Some(a), Some(b)) => Self::from_bool(a ^ b),
            _ => Ternary::X,
        }
    }
}

impl std::fmt::Display for Ternary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Ternary::Zero => "0",
            Ternary::One => "1",
            Ternary::X => "X",
        })
    }
}

/// Evaluates the netlist over the ternary domain with the given primary
/// input assignment (in [`Netlist::inputs`] order).
///
/// Out-of-range fanins evaluate to X (the structural lints report them as
/// errors separately), so the interpreter never panics on malformed
/// netlists.
///
/// # Panics
///
/// Panics if `inputs.len()` differs from the number of primary inputs.
pub fn ternary_eval(netlist: &Netlist, inputs: &[Ternary]) -> Vec<Ternary> {
    assert_eq!(
        inputs.len(),
        netlist.num_inputs(),
        "expected one ternary value per primary input"
    );
    let mut values = vec![Ternary::X; netlist.num_nodes()];
    let mut next_input = 0;
    for (sig, gate) in netlist.iter() {
        let i = sig.index();
        // Forward references read the lattice top (X): sound, because any
        // stale concrete value is covered by "unknown".
        let at = |s: Signal| {
            if s.index() < i {
                values[s.index()]
            } else {
                Ternary::X
            }
        };
        let a = at(gate.fanins[0]);
        let b = at(gate.fanins[1]);
        values[i] = match gate.kind {
            GateKind::Input => {
                let v = inputs[next_input];
                next_input += 1;
                v
            }
            GateKind::Const0 => Ternary::Zero,
            GateKind::Const1 => Ternary::One,
            GateKind::Buf => a,
            GateKind::Not => a.not(),
            GateKind::And => a.and(b),
            GateKind::Or => a.or(b),
            GateKind::Xor => a.xor(b),
            GateKind::Nand => a.and(b).not(),
            GateKind::Nor => a.or(b).not(),
            GateKind::Xnor => a.xor(b).not(),
        };
    }
    values
}

/// Findings of the all-X constant-propagation pass.
#[derive(Debug, Clone)]
pub struct TernaryReport {
    /// Abstract value per node under all-X primary inputs.
    pub values: Vec<Ternary>,
    /// Physical gates proved constant (signal, proved value). Declared
    /// `Const0`/`Const1` nodes are not listed — only logic that *computes*
    /// a constant, i.e. the foldable cone.
    pub const_gates: Vec<(Signal, bool)>,
    /// Primary outputs proved constant: (output position, signal, value,
    /// declared). `declared` marks outputs tied to a constant node through
    /// buffers only (intentional, e.g. truncated product columns) as
    /// opposed to outputs that a logic cone collapses to.
    pub stuck_outputs: Vec<StuckOutput>,
}

/// One primary output proved independent of every input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StuckOutput {
    /// Position in [`Netlist::outputs`].
    pub position: usize,
    /// The output signal.
    pub signal: Signal,
    /// The proved value.
    pub value: bool,
    /// Whether the output is *declared* constant (driven by a
    /// `Const0`/`Const1` node through buffers only) rather than collapsed
    /// by constant propagation through real logic.
    pub declared: bool,
}

/// Runs ternary constant propagation under all-X inputs.
pub fn ternary_analysis(ctx: &AnalysisContext<'_>) -> TernaryReport {
    let netlist = ctx.netlist();
    let values = ternary_eval(netlist, &vec![Ternary::X; netlist.num_inputs()]);
    let const_gates = netlist
        .iter()
        .filter(|(_, g)| g.kind.is_physical())
        .filter_map(|(s, _)| values[s.index()].known().map(|v| (s, v)))
        .collect();
    let stuck_outputs = netlist
        .outputs()
        .iter()
        .enumerate()
        .filter_map(|(position, &signal)| {
            let value = values.get(signal.index()).copied()?.known()?;
            Some(StuckOutput {
                position,
                signal,
                value,
                declared: is_declared_const(netlist, signal),
            })
        })
        .collect();
    TernaryReport {
        values,
        const_gates,
        stuck_outputs,
    }
}

/// Whether `signal` reaches a `Const0`/`Const1` node through buffers only.
fn is_declared_const(netlist: &Netlist, mut signal: Signal) -> bool {
    loop {
        match netlist.try_gate(signal) {
            Ok(g) if matches!(g.kind, GateKind::Const0 | GateKind::Const1) => return true,
            Ok(g) if g.kind == GateKind::Buf => signal = g.fanins[0],
            _ => return false,
        }
    }
}

/// Cap on individually reported constant gates per netlist; beyond it a
/// single summary diagnostic carries the total (matching the capped
/// reporting idiom of the gradient-table lints).
const MAX_CONST_GATE_DIAGS: usize = 16;

/// Diagnostics of the constant-propagation pass:
///
/// - `ternary-const` (info): a physical gate proved constant for every
///   input vector — the whole cone is foldable, not just gates with a
///   literal constant fanin.
/// - `stuck-output` (info when declared, warning when collapsed): a
///   primary output proved independent of every input.
pub fn ternary_diagnostics(ctx: &AnalysisContext<'_>) -> Vec<Diagnostic> {
    let report = ternary_analysis(ctx);
    let netlist = ctx.netlist();
    let mut diags = Vec::new();
    for &(sig, value) in report.const_gates.iter().take(MAX_CONST_GATE_DIAGS) {
        let kind = netlist.gate(sig).kind;
        diags.push(Diagnostic::info(
            "ternary-const",
            format!("{sig}"),
            format!(
                "{kind} gate {sig} is proved constant {} for every input",
                u8::from(value)
            ),
        ));
    }
    if report.const_gates.len() > MAX_CONST_GATE_DIAGS {
        diags.push(Diagnostic::info(
            "ternary-const",
            "netlist",
            format!(
                "{} further constant gates not reported individually ({} total)",
                report.const_gates.len() - MAX_CONST_GATE_DIAGS,
                report.const_gates.len()
            ),
        ));
    }
    for stuck in &report.stuck_outputs {
        let what = format!(
            "output {} ({}) is stuck at {} for every input",
            stuck.position,
            stuck.signal,
            u8::from(stuck.value)
        );
        diags.push(if stuck.declared {
            Diagnostic::info(
                "stuck-output",
                format!("{}", stuck.signal),
                what + " (declared constant)",
            )
        } else {
            Diagnostic::warning(
                "stuck-output",
                format!("{}", stuck.signal),
                what + " (collapsed by constant propagation)",
            )
        });
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ternary_tables_are_sound_abstractions() {
        use Ternary::{One, Zero, X};
        assert_eq!(Zero.and(X), Zero);
        assert_eq!(X.and(One), X);
        assert_eq!(One.or(X), One);
        assert_eq!(X.or(Zero), X);
        assert_eq!(X.xor(One), X);
        assert_eq!(One.xor(One), Zero);
        assert_eq!(X.not(), X);
        assert_eq!(Zero.not(), One);
        assert_eq!(format!("{Zero}{One}{X}"), "01X");
    }

    #[test]
    fn constant_cone_is_proved_not_just_direct_fanins() {
        // one -> or(a, one)=1 -> and(b, that)=b -> xor(that, b)=0:
        // the constant propagates through two levels of real logic.
        let mut nl = Netlist::new();
        let a = nl.input();
        let b = nl.input();
        let one = nl.const1();
        let o = nl.or(a, one);
        let f = nl.and(b, o);
        let z = nl.xor(f, b);
        nl.set_outputs(vec![z]);
        let ctx = AnalysisContext::new(&nl);
        let report = ternary_analysis(&ctx);
        assert_eq!(report.values[o.index()], Ternary::One);
        assert_eq!(report.values[f.index()], Ternary::X, "f == b, unknown");
        assert_eq!(report.values[z.index()], Ternary::X, "xor(b, b) needs BDDs");
        assert!(report.const_gates.contains(&(o, true)));
        // `one` itself is declared, not computed: not in const_gates.
        assert!(!report.const_gates.iter().any(|&(s, _)| s == one));
    }

    #[test]
    fn deep_collapse_reaches_outputs() {
        // and(a, 0) = 0 -> or with another const-0 cone stays 0 at the
        // output, which is a *collapsed* (not declared) stuck output.
        let mut nl = Netlist::new();
        let a = nl.input();
        let b = nl.input();
        let zero = nl.const0();
        let g = nl.and(a, zero);
        let h = nl.and(b, g);
        let out = nl.or(g, h);
        nl.set_outputs(vec![out]);
        let ctx = AnalysisContext::new(&nl);
        let report = ternary_analysis(&ctx);
        assert_eq!(report.stuck_outputs.len(), 1);
        let stuck = report.stuck_outputs[0];
        assert_eq!(
            (stuck.signal, stuck.value, stuck.declared),
            (out, false, false)
        );
        let diags = ternary_diagnostics(&ctx);
        assert!(diags
            .iter()
            .any(|d| d.pass == "stuck-output" && d.severity == crate::Severity::Warning));
        assert!(diags.iter().filter(|d| d.pass == "ternary-const").count() >= 3);
    }

    #[test]
    fn declared_const_outputs_are_info() {
        // A truncated-column style output: buf(const0) registered directly.
        let mut nl = Netlist::new();
        let a = nl.input();
        let zero = nl.const0();
        let low = nl.buf(zero);
        let hi = nl.buf(a);
        nl.set_outputs(vec![low, hi]);
        let ctx = AnalysisContext::new(&nl);
        let diags = ternary_diagnostics(&ctx);
        let stuck: Vec<_> = diags.iter().filter(|d| d.pass == "stuck-output").collect();
        assert_eq!(stuck.len(), 1);
        assert_eq!(stuck[0].severity, crate::Severity::Info);
    }

    #[test]
    fn clean_netlists_produce_no_findings() {
        let mut nl = Netlist::new();
        let a = nl.input();
        let b = nl.input();
        let (s, c) = nl.half_adder(a, b);
        nl.set_outputs(vec![s, c]);
        let ctx = AnalysisContext::new(&nl);
        assert!(ternary_diagnostics(&ctx).is_empty());
    }

    #[test]
    fn eval_accepts_partial_knowledge() {
        // With a=1 known, or(a, b) is proved 1 even though b is X.
        let mut nl = Netlist::new();
        let a = nl.input();
        let b = nl.input();
        let y = nl.or(a, b);
        let z = nl.and(a, b);
        nl.set_outputs(vec![y, z]);
        let values = ternary_eval(&nl, &[Ternary::One, Ternary::X]);
        assert_eq!(values[y.index()], Ternary::One);
        assert_eq!(values[z.index()], Ternary::X);
    }

    #[test]
    fn capped_reporting_summarizes_large_cones() {
        // A long chain of ANDs below a constant 0: every gate is constant.
        let mut nl = Netlist::new();
        let a = nl.input();
        let zero = nl.const0();
        let mut cur = nl.and(a, zero);
        for _ in 0..(MAX_CONST_GATE_DIAGS + 4) {
            cur = nl.and(cur, a);
        }
        nl.set_outputs(vec![cur]);
        let ctx = AnalysisContext::new(&nl);
        let diags = ternary_diagnostics(&ctx);
        let consts: Vec<_> = diags.iter().filter(|d| d.pass == "ternary-const").collect();
        assert_eq!(consts.len(), MAX_CONST_GATE_DIAGS + 1, "capped + summary");
        assert!(consts.last().unwrap().message.contains("not reported"));
    }
}
