//! Full verification sweep over the multiplier zoo.
//!
//! [`lint_zoo`] runs every pass — structural netlist lints, miter
//! equivalence against the exact array multiplier, LUT metric sanity, and
//! gradient-table consistency — over all Table I designs plus deliberately
//! faulty variants (a stuck-at netlist fault and corrupted LUT cells). The
//! faulty variants act as negative controls: the sweep *fails* if they
//! pass the equivalence check. The result serializes to the
//! `results/LINT.json` schema consumed by CI.

use appmult_circuit::{fault_sites, MultiplierCircuit};
use appmult_mult::{zoo, FaultyMultiplier, Multiplier, MultiplierLut};
use appmult_retrain::{GradientLut, GradientMode};

use crate::diag::{count_severity, Diagnostic, Severity};
use crate::equiv::{
    lut_equivalence_vs_exact, prove_multiplier_equivalence, EquivConfig, MultiplierEquiv,
};
use crate::structural::lint_multiplier_circuit;
use crate::tables::{lint_gradient_lut, lint_multiplier_lut};

/// What a design is expected to be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DesignKind {
    /// Must be proved equivalent to the exact multiplier.
    Exact,
    /// Must differ from the exact multiplier (a counterexample is expected).
    Approximate,
    /// A deliberately defective variant; must also fail equivalence.
    Faulty,
}

impl DesignKind {
    /// Lowercase identifier used in the JSON report.
    pub fn as_str(self) -> &'static str {
        match self {
            DesignKind::Exact => "exact",
            DesignKind::Approximate => "approximate",
            DesignKind::Faulty => "faulty",
        }
    }
}

/// Verification outcome of one design.
#[derive(Debug, Clone)]
pub struct DesignReport {
    /// Design name (zoo name or synthetic variant label).
    pub name: String,
    /// Operand bit width.
    pub bits: u32,
    /// Expected behaviour class.
    pub kind: DesignKind,
    /// All pass findings, including the expectation check.
    pub diagnostics: Vec<Diagnostic>,
    /// Equivalence result against the exact multiplier, when checked.
    pub equivalence: Option<MultiplierEquiv>,
}

impl DesignReport {
    /// Number of error diagnostics.
    pub fn error_count(&self) -> usize {
        count_severity(&self.diagnostics, Severity::Error)
    }

    /// Number of warning diagnostics.
    pub fn warning_count(&self) -> usize {
        count_severity(&self.diagnostics, Severity::Warning)
    }
}

/// Aggregated verification report over the whole zoo.
#[derive(Debug, Clone)]
pub struct ZooLintReport {
    /// Per-design reports, in sweep order.
    pub designs: Vec<DesignReport>,
}

impl ZooLintReport {
    /// Total error diagnostics across all designs.
    pub fn error_count(&self) -> usize {
        self.designs.iter().map(DesignReport::error_count).sum()
    }

    /// Total warning diagnostics across all designs.
    pub fn warning_count(&self) -> usize {
        self.designs.iter().map(DesignReport::warning_count).sum()
    }

    /// Serializes the report to the `appmult-lint/v1` JSON schema.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n");
        out.push_str("  \"schema\": \"appmult-lint/v1\",\n");
        out.push_str(&format!("  \"design_count\": {},\n", self.designs.len()));
        out.push_str(&format!("  \"errors\": {},\n", self.error_count()));
        out.push_str(&format!("  \"warnings\": {},\n", self.warning_count()));
        out.push_str("  \"designs\": [\n");
        for (i, d) in self.designs.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!("      \"name\": \"{}\",\n", json_escape(&d.name)));
            out.push_str(&format!("      \"bits\": {},\n", d.bits));
            out.push_str(&format!("      \"kind\": \"{}\",\n", d.kind.as_str()));
            out.push_str(&format!("      \"errors\": {},\n", d.error_count()));
            out.push_str(&format!("      \"warnings\": {},\n", d.warning_count()));
            match &d.equivalence {
                Some(MultiplierEquiv::Equivalent {
                    patterns,
                    exhaustive,
                }) => {
                    out.push_str("      \"equivalence\": {\n");
                    out.push_str("        \"status\": \"equivalent\",\n");
                    out.push_str(&format!("        \"exhaustive\": {exhaustive},\n"));
                    out.push_str(&format!("        \"patterns\": {patterns}\n"));
                    out.push_str("      },\n");
                }
                Some(MultiplierEquiv::Counterexample(c)) => {
                    out.push_str("      \"equivalence\": {\n");
                    out.push_str("        \"status\": \"counterexample\",\n");
                    out.push_str(&format!("        \"w\": {},\n", c.w));
                    out.push_str(&format!("        \"x\": {},\n", c.x));
                    out.push_str(&format!("        \"got\": {},\n", c.got));
                    out.push_str(&format!("        \"expected\": {}\n", c.expected));
                    out.push_str("      },\n");
                }
                None => out.push_str("      \"equivalence\": null,\n"),
            }
            out.push_str("      \"diagnostics\": [\n");
            for (j, diag) in d.diagnostics.iter().enumerate() {
                out.push_str(&format!(
                    "        {{\"pass\": \"{}\", \"severity\": \"{}\", \"location\": \"{}\", \"message\": \"{}\"}}{}\n",
                    json_escape(diag.pass),
                    diag.severity.as_str(),
                    json_escape(&diag.location),
                    json_escape(&diag.message),
                    if j + 1 < d.diagnostics.len() { "," } else { "" }
                ));
            }
            out.push_str("      ]\n");
            out.push_str(&format!(
                "    }}{}\n",
                if i + 1 < self.designs.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Runs every applicable pass over one multiplier.
///
/// Designs with a gate-level structure get the structural lints, a
/// behaviour cross-check (exhaustive circuit products vs the behavioural
/// LUT), and miter-based equivalence against the exact array multiplier;
/// LUT-only designs fall back to an exhaustive table scan. All designs get
/// the LUT metric sanity pass and the Eq. 5/6 gradient consistency pass at
/// the given half window size. The expected behaviour class (`kind`) is
/// derived from the LUT itself and checked against the equivalence result.
pub fn lint_multiplier<M: Multiplier + ?Sized>(name: &str, m: &M, hws: u32) -> DesignReport {
    let lut = MultiplierLut::from_multiplier(m);
    lint_with_lut(name, m, &lut, hws, None)
}

fn lint_with_lut<M: Multiplier + ?Sized>(
    name: &str,
    m: &M,
    lut: &MultiplierLut,
    hws: u32,
    forced_kind: Option<DesignKind>,
) -> DesignReport {
    let bits = lut.bits();
    let mut diagnostics = lint_multiplier_lut(lut);
    let kind = forced_kind.unwrap_or(if lut.is_exact() {
        DesignKind::Exact
    } else {
        DesignKind::Approximate
    });

    let cfg = EquivConfig::default();
    let equivalence = match m.circuit() {
        Some(circuit) => {
            diagnostics.extend(lint_multiplier_circuit(&circuit));
            // The gate-level structure must implement the behavioural model.
            let products = circuit.exhaustive_products();
            if let Some(idx) = products
                .iter()
                .zip(lut.entries())
                .position(|(&c, &b)| c != u64::from(b))
            {
                let w = idx >> bits;
                let x = idx & ((1usize << bits) - 1);
                diagnostics.push(Diagnostic::error(
                    "behaviour",
                    format!("{name}[w={w}, x={x}]"),
                    format!(
                        "circuit computes {} but the behavioural model gives {}",
                        products[idx],
                        lut.entries()[idx]
                    ),
                ));
            }
            let reference = MultiplierCircuit::array(bits);
            match prove_multiplier_equivalence(&circuit, &reference, &cfg) {
                Ok(r) => Some(r),
                Err(e) => {
                    diagnostics.push(Diagnostic::error(
                        "miter",
                        name.to_string(),
                        format!("miter construction failed: {e}"),
                    ));
                    None
                }
            }
        }
        None => Some(lut_equivalence_vs_exact(lut)),
    };

    // The equivalence verdict must agree with the expected behaviour class.
    match (&equivalence, kind) {
        (Some(MultiplierEquiv::Counterexample(c)), DesignKind::Exact) => {
            diagnostics.push(Diagnostic::error(
                "equivalence",
                name.to_string(),
                format!("exact design disagrees with the reference: {c}"),
            ));
        }
        (Some(MultiplierEquiv::Equivalent { exhaustive, .. }), k)
            if k != DesignKind::Exact && *exhaustive =>
        {
            diagnostics.push(Diagnostic::error(
                "equivalence",
                name.to_string(),
                format!(
                    "{} design proved equivalent to the exact multiplier",
                    k.as_str()
                ),
            ));
        }
        _ => {}
    }

    let grads = GradientLut::build(lut, GradientMode::difference_based(hws.max(1)));
    diagnostics.extend(lint_gradient_lut(lut, &grads, hws.max(1)));

    DesignReport {
        name: name.to_string(),
        bits,
        kind,
        diagnostics,
        equivalence,
    }
}

/// Negative control: the 8-bit array multiplier with its first live
/// physical gate stuck at 1, checked structurally through the miter.
fn lint_stuck_at_variant() -> DesignReport {
    let base = MultiplierCircuit::array(8);
    let site = fault_sites(base.netlist())[0];
    let mut faulted = base.netlist().clone();
    faulted
        .replace_with_const(site, true)
        .expect("fault site belongs to the netlist");
    let circuit = MultiplierCircuit::from_netlist(faulted, 8)
        .expect("fault injection preserves the bus shapes");
    let name = format!("mul8u_array_sa1@{site}");

    let mut diagnostics = lint_multiplier_circuit(&circuit);
    let equivalence = match prove_multiplier_equivalence(&circuit, &base, &EquivConfig::default()) {
        Ok(r) => Some(r),
        Err(e) => {
            diagnostics.push(Diagnostic::error(
                "miter",
                name.clone(),
                format!("miter construction failed: {e}"),
            ));
            None
        }
    };
    if let Some(MultiplierEquiv::Equivalent { .. }) = equivalence {
        diagnostics.push(Diagnostic::error(
            "equivalence",
            name.clone(),
            "stuck-at-1 fault was not detected by the miter",
        ));
    }
    DesignReport {
        name,
        bits: 8,
        kind: DesignKind::Faulty,
        diagnostics,
        equivalence,
    }
}

/// Negative control: the exact 8-bit LUT with 4 memory cells flipped.
fn lint_corrupted_lut_variant() -> DesignReport {
    let clean = appmult_mult::ExactMultiplier::new(8).to_lut();
    let faulty = FaultyMultiplier::corrupt_lut(&clean, 4, 0xBAD_CE11);
    let lut = faulty.clone().into_lut();
    let name = lut.name().to_string();
    let mut report = lint_with_lut(&name, &faulty, &lut, 4, Some(DesignKind::Faulty));
    if let Some(MultiplierEquiv::Equivalent { .. }) = report.equivalence {
        report.diagnostics.push(Diagnostic::error(
            "equivalence",
            name,
            "corrupted LUT cells were not detected by the table scan",
        ));
    }
    report
}

/// Above-limit control: 10-bit array vs Wallace (20 shared input bits),
/// exercising the corner + seeded random sampling path of the checker.
fn lint_sampled_equivalence() -> DesignReport {
    let array = MultiplierCircuit::array(10);
    let wallace = MultiplierCircuit::wallace(10);
    let name = "mul10u_wallace_vs_array".to_string();
    let mut diagnostics = lint_multiplier_circuit(&wallace);
    let equivalence = match prove_multiplier_equivalence(&wallace, &array, &EquivConfig::default())
    {
        Ok(r) => Some(r),
        Err(e) => {
            diagnostics.push(Diagnostic::error(
                "miter",
                name.clone(),
                format!("miter construction failed: {e}"),
            ));
            None
        }
    };
    if let Some(MultiplierEquiv::Counterexample(c)) = &equivalence {
        diagnostics.push(Diagnostic::error(
            "equivalence",
            name.clone(),
            format!("Wallace and array reductions disagree: {c}"),
        ));
    }
    DesignReport {
        name,
        bits: 10,
        kind: DesignKind::Exact,
        diagnostics,
        equivalence,
    }
}

/// Runs the full verification sweep: every Table I zoo entry (including
/// the cached `_syn` synthesis results) at its recommended half window
/// size, the two faulty negative controls, and the above-limit sampled
/// equivalence check.
pub fn lint_zoo() -> ZooLintReport {
    lint_zoo_filtered(true)
}

/// Like [`lint_zoo`], optionally skipping the `_syn` entries whose
/// approximate-logic-synthesis step dominates unoptimized runtimes
/// (debug-mode test suites lint them through `appmult-mult`'s own tests
/// and the release CI sweep instead).
pub fn lint_zoo_filtered(include_syn: bool) -> ZooLintReport {
    // Filter *names* before `zoo::entry` so skipped `_syn` designs never
    // run their (cached but expensive) synthesis step.
    let mut designs: Vec<DesignReport> = zoo::names()
        .iter()
        .filter(|n| include_syn || !n.contains("_syn"))
        .map(|n| {
            let e = zoo::entry(n).expect("zoo::names() entries resolve");
            lint_multiplier(e.name, e.multiplier.as_ref(), e.recommended_hws())
        })
        .collect();
    designs.push(lint_stuck_at_variant());
    designs.push(lint_corrupted_lut_variant());
    designs.push(lint_sampled_equivalence());
    ZooLintReport { designs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use appmult_mult::{ExactMultiplier, TruncatedMultiplier};

    #[test]
    fn exact_design_report_is_clean_and_proved() {
        let m = ExactMultiplier::new(6);
        let r = lint_multiplier("mul6u_acc", &m, 1);
        assert_eq!(r.kind, DesignKind::Exact);
        assert_eq!(r.error_count(), 0, "{:?}", r.diagnostics);
        assert_eq!(
            r.equivalence,
            Some(MultiplierEquiv::Equivalent {
                patterns: 1 << 12,
                exhaustive: true
            })
        );
    }

    #[test]
    fn truncated_design_reports_concrete_counterexample() {
        let m = TruncatedMultiplier::new(7, 6);
        let r = lint_multiplier("mul7u_rm6", &m, 4);
        assert_eq!(r.kind, DesignKind::Approximate);
        assert_eq!(r.error_count(), 0, "{:?}", r.diagnostics);
        match r.equivalence {
            Some(MultiplierEquiv::Counterexample(c)) => {
                assert_eq!((c.w, c.x), (1, 1));
                assert_eq!((c.got, c.expected), (0, 1));
            }
            other => panic!("expected counterexample, got {other:?}"),
        }
    }

    #[test]
    fn stuck_at_control_fails_equivalence() {
        let r = lint_stuck_at_variant();
        assert_eq!(r.kind, DesignKind::Faulty);
        assert!(matches!(
            r.equivalence,
            Some(MultiplierEquiv::Counterexample(_))
        ));
        // The expectation check adds no error: failing is the expectation.
        assert!(
            r.diagnostics.iter().all(|d| d.pass != "equivalence"),
            "{:?}",
            r.diagnostics
        );
    }

    #[test]
    fn corrupted_lut_control_fails_equivalence() {
        let r = lint_corrupted_lut_variant();
        assert_eq!(r.kind, DesignKind::Faulty);
        assert!(matches!(
            r.equivalence,
            Some(MultiplierEquiv::Counterexample(_))
        ));
    }

    #[test]
    fn json_report_is_well_formed() {
        let report = ZooLintReport {
            designs: vec![
                lint_multiplier("mul6u_acc", &ExactMultiplier::new(6), 1),
                lint_multiplier("mul6u_rm4", &TruncatedMultiplier::new(6, 4), 2),
            ],
        };
        let json = report.to_json();
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert!(json.contains("\"schema\": \"appmult-lint/v1\""));
        assert!(json.contains("\"status\": \"equivalent\""));
        assert!(json.contains("\"status\": \"counterexample\""));
        assert_eq!(json.matches("\"name\":").count(), 2);
        // Balanced braces and brackets (no raw quotes inside values).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn json_escaping_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
