//! Full verification sweep over the multiplier zoo.
//!
//! [`lint_zoo`] runs every pass — structural netlist lints, the static
//! analysis stack (timing, structural hashing, ternary constant
//! propagation), miter equivalence against the exact array multiplier, LUT
//! metric sanity, and gradient-table consistency — over all Table I
//! designs plus deliberately faulty variants (a stuck-at netlist fault and
//! corrupted LUT cells). The faulty variants act as negative controls: the
//! sweep *fails* if they pass the equivalence check, and the stuck-at
//! variant must additionally trip the constant-propagation pass. The
//! result serializes to the `results/LINT.json` (`appmult-lint/v2`) and
//! `results/ANALYZE.json` (`appmult-analyze/v1`) schemas consumed by CI.

use appmult_circuit::{fault_sites, CostModel, HardwareCost, MultiplierCircuit};
use appmult_mult::{zoo, FaultyMultiplier, Multiplier, MultiplierLut};
use appmult_retrain::{GradientLut, GradientMode};

use crate::analysis::analyze_netlist;
use crate::diag::{count_severity, Diagnostic, Severity};
use crate::equiv::{
    lut_equivalence_vs_exact, prove_multiplier_equivalence, EquivConfig, MultiplierEquiv,
};
use crate::sta::StaGate;
use crate::structural::width_diagnostics;
use crate::tables::{lint_gradient_lut, lint_multiplier_lut};

/// Number of equal-width slack-histogram buckets in `ANALYZE.json`.
const SLACK_BUCKETS: usize = 8;

/// What a design is expected to be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DesignKind {
    /// Must be proved equivalent to the exact multiplier.
    Exact,
    /// Must differ from the exact multiplier (a counterexample is expected).
    Approximate,
    /// A deliberately defective variant; must also fail equivalence.
    Faulty,
}

impl DesignKind {
    /// Lowercase identifier used in the JSON report.
    pub fn as_str(self) -> &'static str {
        match self {
            DesignKind::Exact => "exact",
            DesignKind::Approximate => "approximate",
            DesignKind::Faulty => "faulty",
        }
    }
}

/// Static-analysis summary of one gate-level design, distilled from the
/// full [`crate::NetlistAnalysis`] for the `ANALYZE.json` report.
#[derive(Debug, Clone)]
pub struct DesignAnalysis {
    /// Calibrated area/delay/power from the cost model.
    pub cost: HardwareCost,
    /// Levelized logic depth over the primary outputs.
    pub depth: u32,
    /// Output-reachable physical gates.
    pub live_gates: usize,
    /// Structurally duplicate (mergeable) physical gates.
    pub duplicate_gates: usize,
    /// Physical gates proved constant by ternary propagation.
    pub const_gates: usize,
    /// Primary outputs proved independent of every input.
    pub stuck_outputs: usize,
    /// Whether the STA delay is bit-identical to the cost model's.
    pub sta_matches_cost_model: bool,
    /// Slack histogram over live physical gates ([`SLACK_BUCKETS`]
    /// equal-width bins spanning `[0, delay_ps]`).
    pub slack_histogram: Vec<u32>,
    /// The critical path, input to output.
    pub critical_path: Vec<StaGate>,
}

/// Runs the full static-analysis stack over one circuit: the shared-context
/// netlist lints plus the multiplier bus-width pass, returning both the
/// diagnostics and the distilled [`DesignAnalysis`].
fn lint_circuit_with_analysis(circuit: &MultiplierCircuit) -> (Vec<Diagnostic>, DesignAnalysis) {
    let model = CostModel::asap7();
    let nl = circuit.netlist();
    let full = analyze_netlist(nl, &model);
    let mut diagnostics = full.diagnostics;
    diagnostics.extend(width_diagnostics(circuit));
    let slack_histogram = full.sta.slack_histogram(nl, &nl.live_mask(), SLACK_BUCKETS);
    let analysis = DesignAnalysis {
        depth: full.depth,
        live_gates: full.live_gates,
        duplicate_gates: full.strash.mergeable_gates(),
        const_gates: full.ternary.const_gates.len(),
        stuck_outputs: full.ternary.stuck_outputs.len(),
        sta_matches_cost_model: full.sta.delay_ps.to_bits() == full.cost.delay_ps.to_bits(),
        slack_histogram,
        critical_path: full.sta.critical_path,
        cost: full.cost,
    };
    (diagnostics, analysis)
}

/// Verification outcome of one design.
#[derive(Debug, Clone)]
pub struct DesignReport {
    /// Design name (zoo name or synthetic variant label).
    pub name: String,
    /// Operand bit width.
    pub bits: u32,
    /// Expected behaviour class.
    pub kind: DesignKind,
    /// All pass findings, including the expectation check.
    pub diagnostics: Vec<Diagnostic>,
    /// Equivalence result against the exact multiplier, when checked.
    pub equivalence: Option<MultiplierEquiv>,
    /// Static-analysis summary; `None` for LUT-only designs with no
    /// gate-level structure.
    pub analysis: Option<DesignAnalysis>,
}

impl DesignReport {
    /// Number of error diagnostics.
    pub fn error_count(&self) -> usize {
        count_severity(&self.diagnostics, Severity::Error)
    }

    /// Number of warning diagnostics.
    pub fn warning_count(&self) -> usize {
        count_severity(&self.diagnostics, Severity::Warning)
    }
}

/// Aggregated verification report over the whole zoo.
#[derive(Debug, Clone)]
pub struct ZooLintReport {
    /// Per-design reports, in sweep order.
    pub designs: Vec<DesignReport>,
}

impl ZooLintReport {
    /// Total error diagnostics across all designs.
    pub fn error_count(&self) -> usize {
        self.designs.iter().map(DesignReport::error_count).sum()
    }

    /// Total warning diagnostics across all designs.
    pub fn warning_count(&self) -> usize {
        self.designs.iter().map(DesignReport::warning_count).sum()
    }

    /// Serializes the report to the `appmult-lint/v2` JSON schema.
    ///
    /// v2 adds a compact per-design `"analysis"` summary (delay, area,
    /// power, depth, liveness, strash/ternary counts, STA agreement) for
    /// gate-level designs; LUT-only designs carry `"analysis": null`. The
    /// full static-analysis detail (critical path, slack histogram) lives
    /// in the [`ZooLintReport::analysis_json`] report instead.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n");
        out.push_str("  \"schema\": \"appmult-lint/v2\",\n");
        out.push_str(&format!("  \"design_count\": {},\n", self.designs.len()));
        out.push_str(&format!("  \"errors\": {},\n", self.error_count()));
        out.push_str(&format!("  \"warnings\": {},\n", self.warning_count()));
        out.push_str("  \"designs\": [\n");
        for (i, d) in self.designs.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!("      \"name\": \"{}\",\n", json_escape(&d.name)));
            out.push_str(&format!("      \"bits\": {},\n", d.bits));
            out.push_str(&format!("      \"kind\": \"{}\",\n", d.kind.as_str()));
            out.push_str(&format!("      \"errors\": {},\n", d.error_count()));
            out.push_str(&format!("      \"warnings\": {},\n", d.warning_count()));
            match &d.equivalence {
                Some(MultiplierEquiv::Equivalent {
                    patterns,
                    exhaustive,
                }) => {
                    out.push_str("      \"equivalence\": {\n");
                    out.push_str("        \"status\": \"equivalent\",\n");
                    out.push_str(&format!("        \"exhaustive\": {exhaustive},\n"));
                    out.push_str(&format!("        \"patterns\": {patterns}\n"));
                    out.push_str("      },\n");
                }
                Some(MultiplierEquiv::Counterexample(c)) => {
                    out.push_str("      \"equivalence\": {\n");
                    out.push_str("        \"status\": \"counterexample\",\n");
                    out.push_str(&format!("        \"w\": {},\n", c.w));
                    out.push_str(&format!("        \"x\": {},\n", c.x));
                    out.push_str(&format!("        \"got\": {},\n", c.got));
                    out.push_str(&format!("        \"expected\": {}\n", c.expected));
                    out.push_str("      },\n");
                }
                None => out.push_str("      \"equivalence\": null,\n"),
            }
            match &d.analysis {
                Some(a) => {
                    out.push_str("      \"analysis\": {\n");
                    out.push_str(&format!("        \"delay_ps\": {},\n", a.cost.delay_ps));
                    out.push_str(&format!("        \"area_um2\": {},\n", a.cost.area_um2));
                    out.push_str(&format!("        \"power_uw\": {},\n", a.cost.power_uw));
                    out.push_str(&format!("        \"depth\": {},\n", a.depth));
                    out.push_str(&format!("        \"live_gates\": {},\n", a.live_gates));
                    out.push_str(&format!(
                        "        \"duplicate_gates\": {},\n",
                        a.duplicate_gates
                    ));
                    out.push_str(&format!("        \"const_gates\": {},\n", a.const_gates));
                    out.push_str(&format!(
                        "        \"stuck_outputs\": {},\n",
                        a.stuck_outputs
                    ));
                    out.push_str(&format!(
                        "        \"sta_matches_cost_model\": {}\n",
                        a.sta_matches_cost_model
                    ));
                    out.push_str("      },\n");
                }
                None => out.push_str("      \"analysis\": null,\n"),
            }
            out.push_str("      \"diagnostics\": [\n");
            for (j, diag) in d.diagnostics.iter().enumerate() {
                out.push_str(&format!(
                    "        {{\"pass\": \"{}\", \"severity\": \"{}\", \"location\": \"{}\", \"message\": \"{}\"}}{}\n",
                    json_escape(diag.pass),
                    diag.severity.as_str(),
                    json_escape(&diag.location),
                    json_escape(&diag.message),
                    if j + 1 < d.diagnostics.len() { "," } else { "" }
                ));
            }
            out.push_str("      ]\n");
            out.push_str(&format!(
                "    }}{}\n",
                if i + 1 < self.designs.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Serializes the static-analysis sweep to the `appmult-analyze/v1`
    /// JSON schema: one record per gate-level design with cost, depth,
    /// liveness, strash/ternary counts, the slack histogram, and the full
    /// gate-by-gate critical path. LUT-only designs are omitted (they have
    /// no netlist to analyze); `design_count` still counts every design in
    /// the sweep so the omission is visible.
    pub fn analysis_json(&self) -> String {
        let analyzed: Vec<&DesignReport> = self
            .designs
            .iter()
            .filter(|d| d.analysis.is_some())
            .collect();
        let mut out = String::with_capacity(8192);
        out.push_str("{\n");
        out.push_str("  \"schema\": \"appmult-analyze/v1\",\n");
        out.push_str(&format!("  \"design_count\": {},\n", self.designs.len()));
        out.push_str(&format!("  \"analyzed_count\": {},\n", analyzed.len()));
        out.push_str("  \"designs\": [\n");
        for (i, d) in analyzed.iter().enumerate() {
            let a = d.analysis.as_ref().expect("filtered to analyzed designs");
            out.push_str("    {\n");
            out.push_str(&format!("      \"name\": \"{}\",\n", json_escape(&d.name)));
            out.push_str(&format!("      \"bits\": {},\n", d.bits));
            out.push_str(&format!("      \"kind\": \"{}\",\n", d.kind.as_str()));
            out.push_str(&format!("      \"delay_ps\": {},\n", a.cost.delay_ps));
            out.push_str(&format!("      \"area_um2\": {},\n", a.cost.area_um2));
            out.push_str(&format!("      \"power_uw\": {},\n", a.cost.power_uw));
            out.push_str(&format!("      \"depth\": {},\n", a.depth));
            out.push_str(&format!("      \"live_gates\": {},\n", a.live_gates));
            out.push_str(&format!(
                "      \"duplicate_gates\": {},\n",
                a.duplicate_gates
            ));
            out.push_str(&format!("      \"const_gates\": {},\n", a.const_gates));
            out.push_str(&format!("      \"stuck_outputs\": {},\n", a.stuck_outputs));
            out.push_str(&format!(
                "      \"sta_matches_cost_model\": {},\n",
                a.sta_matches_cost_model
            ));
            out.push_str(&format!(
                "      \"slack_bucket_ps\": {},\n",
                a.cost.delay_ps / a.slack_histogram.len().max(1) as f64
            ));
            out.push_str(&format!(
                "      \"slack_histogram\": [{}],\n",
                a.slack_histogram
                    .iter()
                    .map(u32::to_string)
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
            out.push_str("      \"critical_path\": [\n");
            for (j, g) in a.critical_path.iter().enumerate() {
                out.push_str(&format!(
                    "        {{\"signal\": \"{}\", \"gate\": \"{}\", \"delay_ps\": {}, \"arrival_ps\": {}}}{}\n",
                    g.signal,
                    g.kind,
                    g.delay_ps,
                    g.arrival_ps,
                    if j + 1 < a.critical_path.len() { "," } else { "" }
                ));
            }
            out.push_str("      ]\n");
            out.push_str(&format!(
                "    }}{}\n",
                if i + 1 < analyzed.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Runs every applicable pass over one multiplier.
///
/// Designs with a gate-level structure get the structural lints, a
/// behaviour cross-check (exhaustive circuit products vs the behavioural
/// LUT), and miter-based equivalence against the exact array multiplier;
/// LUT-only designs fall back to an exhaustive table scan. All designs get
/// the LUT metric sanity pass and the Eq. 5/6 gradient consistency pass at
/// the given half window size. The expected behaviour class (`kind`) is
/// derived from the LUT itself and checked against the equivalence result.
pub fn lint_multiplier<M: Multiplier + ?Sized>(name: &str, m: &M, hws: u32) -> DesignReport {
    let lut = MultiplierLut::from_multiplier(m);
    lint_with_lut(name, m, &lut, hws, None)
}

fn lint_with_lut<M: Multiplier + ?Sized>(
    name: &str,
    m: &M,
    lut: &MultiplierLut,
    hws: u32,
    forced_kind: Option<DesignKind>,
) -> DesignReport {
    let bits = lut.bits();
    let mut diagnostics = lint_multiplier_lut(lut);
    let kind = forced_kind.unwrap_or(if lut.is_exact() {
        DesignKind::Exact
    } else {
        DesignKind::Approximate
    });

    let cfg = EquivConfig::default();
    let mut analysis = None;
    let equivalence = match m.circuit() {
        Some(circuit) => {
            let (circuit_diags, circuit_analysis) = lint_circuit_with_analysis(&circuit);
            diagnostics.extend(circuit_diags);
            analysis = Some(circuit_analysis);
            // The gate-level structure must implement the behavioural model.
            let products = circuit.exhaustive_products();
            if let Some(idx) = products
                .iter()
                .zip(lut.entries())
                .position(|(&c, &b)| c != u64::from(b))
            {
                let w = idx >> bits;
                let x = idx & ((1usize << bits) - 1);
                diagnostics.push(Diagnostic::error(
                    "behaviour",
                    format!("{name}[w={w}, x={x}]"),
                    format!(
                        "circuit computes {} but the behavioural model gives {}",
                        products[idx],
                        lut.entries()[idx]
                    ),
                ));
            }
            let reference = MultiplierCircuit::array(bits);
            match prove_multiplier_equivalence(&circuit, &reference, &cfg) {
                Ok(r) => Some(r),
                Err(e) => {
                    diagnostics.push(Diagnostic::error(
                        "miter",
                        name.to_string(),
                        format!("miter construction failed: {e}"),
                    ));
                    None
                }
            }
        }
        None => Some(lut_equivalence_vs_exact(lut)),
    };

    // The equivalence verdict must agree with the expected behaviour class.
    match (&equivalence, kind) {
        (Some(MultiplierEquiv::Counterexample(c)), DesignKind::Exact) => {
            diagnostics.push(Diagnostic::error(
                "equivalence",
                name.to_string(),
                format!("exact design disagrees with the reference: {c}"),
            ));
        }
        (Some(MultiplierEquiv::Equivalent { exhaustive, .. }), k)
            if k != DesignKind::Exact && *exhaustive =>
        {
            diagnostics.push(Diagnostic::error(
                "equivalence",
                name.to_string(),
                format!(
                    "{} design proved equivalent to the exact multiplier",
                    k.as_str()
                ),
            ));
        }
        _ => {}
    }

    let grads = GradientLut::build(lut, GradientMode::difference_based(hws.max(1)));
    diagnostics.extend(lint_gradient_lut(lut, &grads, hws.max(1)));

    DesignReport {
        name: name.to_string(),
        bits,
        kind,
        diagnostics,
        equivalence,
        analysis,
    }
}

/// Negative control: the 8-bit array multiplier with its first live
/// physical gate stuck at 1, checked structurally through the miter.
fn lint_stuck_at_variant() -> DesignReport {
    let base = MultiplierCircuit::array(8);
    let site = fault_sites(base.netlist())[0];
    let mut faulted = base.netlist().clone();
    faulted
        .replace_with_const(site, true)
        .expect("fault site belongs to the netlist");
    let circuit = MultiplierCircuit::from_netlist(faulted, 8)
        .expect("fault injection preserves the bus shapes");
    let name = format!("mul8u_array_sa1@{site}");

    let (mut diagnostics, analysis) = lint_circuit_with_analysis(&circuit);
    // The fault ties logic to a constant, so the ternary pass must find a
    // constant cone or a stuck output; its silence would be a lint bug.
    if analysis.const_gates == 0 && analysis.stuck_outputs == 0 {
        diagnostics.push(Diagnostic::error(
            "ternary",
            name.clone(),
            "stuck-at-1 fault was not detected by constant propagation",
        ));
    }
    let equivalence = match prove_multiplier_equivalence(&circuit, &base, &EquivConfig::default()) {
        Ok(r) => Some(r),
        Err(e) => {
            diagnostics.push(Diagnostic::error(
                "miter",
                name.clone(),
                format!("miter construction failed: {e}"),
            ));
            None
        }
    };
    if let Some(MultiplierEquiv::Equivalent { .. }) = equivalence {
        diagnostics.push(Diagnostic::error(
            "equivalence",
            name.clone(),
            "stuck-at-1 fault was not detected by the miter",
        ));
    }
    DesignReport {
        name,
        bits: 8,
        kind: DesignKind::Faulty,
        diagnostics,
        equivalence,
        analysis: Some(analysis),
    }
}

/// Negative control: the exact 8-bit LUT with 4 memory cells flipped.
fn lint_corrupted_lut_variant() -> DesignReport {
    let clean = appmult_mult::ExactMultiplier::new(8).to_lut();
    let faulty = FaultyMultiplier::corrupt_lut(&clean, 4, 0xBAD_CE11);
    let lut = faulty.clone().into_lut();
    let name = lut.name().to_string();
    // LUT corruption has no gate-level structure, so `analysis` stays
    // `None`: the control exercises the table scan, not the netlist passes.
    let mut report = lint_with_lut(&name, &faulty, &lut, 4, Some(DesignKind::Faulty));
    if let Some(MultiplierEquiv::Equivalent { .. }) = report.equivalence {
        report.diagnostics.push(Diagnostic::error(
            "equivalence",
            name,
            "corrupted LUT cells were not detected by the table scan",
        ));
    }
    report
}

/// Above-limit control: 10-bit array vs Wallace (20 shared input bits),
/// exercising the corner + seeded random sampling path of the checker.
fn lint_sampled_equivalence() -> DesignReport {
    let array = MultiplierCircuit::array(10);
    let wallace = MultiplierCircuit::wallace(10);
    let name = "mul10u_wallace_vs_array".to_string();
    let (mut diagnostics, analysis) = lint_circuit_with_analysis(&wallace);
    let equivalence = match prove_multiplier_equivalence(&wallace, &array, &EquivConfig::default())
    {
        Ok(r) => Some(r),
        Err(e) => {
            diagnostics.push(Diagnostic::error(
                "miter",
                name.clone(),
                format!("miter construction failed: {e}"),
            ));
            None
        }
    };
    if let Some(MultiplierEquiv::Counterexample(c)) = &equivalence {
        diagnostics.push(Diagnostic::error(
            "equivalence",
            name.clone(),
            format!("Wallace and array reductions disagree: {c}"),
        ));
    }
    DesignReport {
        name,
        bits: 10,
        kind: DesignKind::Exact,
        diagnostics,
        equivalence,
        analysis: Some(analysis),
    }
}

/// Runs the full verification sweep: every Table I zoo entry (including
/// the cached `_syn` synthesis results) at its recommended half window
/// size, the two faulty negative controls, and the above-limit sampled
/// equivalence check.
pub fn lint_zoo() -> ZooLintReport {
    lint_zoo_filtered(true)
}

/// Like [`lint_zoo`], optionally skipping the `_syn` entries whose
/// approximate-logic-synthesis step dominates unoptimized runtimes
/// (debug-mode test suites lint them through `appmult-mult`'s own tests
/// and the release CI sweep instead).
pub fn lint_zoo_filtered(include_syn: bool) -> ZooLintReport {
    // Filter *names* before `zoo::entry` so skipped `_syn` designs never
    // run their (cached but expensive) synthesis step.
    let mut designs: Vec<DesignReport> = zoo::names()
        .iter()
        .filter(|n| include_syn || !n.contains("_syn"))
        .map(|n| {
            let e = zoo::entry(n).expect("zoo::names() entries resolve");
            lint_multiplier(e.name, e.multiplier.as_ref(), e.recommended_hws())
        })
        .collect();
    designs.push(lint_stuck_at_variant());
    designs.push(lint_corrupted_lut_variant());
    designs.push(lint_sampled_equivalence());
    ZooLintReport { designs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use appmult_mult::{ExactMultiplier, TruncatedMultiplier};

    #[test]
    fn exact_design_report_is_clean_and_proved() {
        let m = ExactMultiplier::new(6);
        let r = lint_multiplier("mul6u_acc", &m, 1);
        assert_eq!(r.kind, DesignKind::Exact);
        assert_eq!(r.error_count(), 0, "{:?}", r.diagnostics);
        assert_eq!(
            r.equivalence,
            Some(MultiplierEquiv::Equivalent {
                patterns: 1 << 12,
                exhaustive: true
            })
        );
    }

    #[test]
    fn truncated_design_reports_concrete_counterexample() {
        let m = TruncatedMultiplier::new(7, 6);
        let r = lint_multiplier("mul7u_rm6", &m, 4);
        assert_eq!(r.kind, DesignKind::Approximate);
        assert_eq!(r.error_count(), 0, "{:?}", r.diagnostics);
        match r.equivalence {
            Some(MultiplierEquiv::Counterexample(c)) => {
                assert_eq!((c.w, c.x), (1, 1));
                assert_eq!((c.got, c.expected), (0, 1));
            }
            other => panic!("expected counterexample, got {other:?}"),
        }
    }

    #[test]
    fn stuck_at_control_fails_equivalence() {
        let r = lint_stuck_at_variant();
        assert_eq!(r.kind, DesignKind::Faulty);
        assert!(matches!(
            r.equivalence,
            Some(MultiplierEquiv::Counterexample(_))
        ));
        // The expectation check adds no error: failing is the expectation.
        assert!(
            r.diagnostics.iter().all(|d| d.pass != "equivalence"),
            "{:?}",
            r.diagnostics
        );
    }

    #[test]
    fn corrupted_lut_control_fails_equivalence() {
        let r = lint_corrupted_lut_variant();
        assert_eq!(r.kind, DesignKind::Faulty);
        assert!(matches!(
            r.equivalence,
            Some(MultiplierEquiv::Counterexample(_))
        ));
    }

    #[test]
    fn json_report_is_well_formed() {
        let report = ZooLintReport {
            designs: vec![
                lint_multiplier("mul6u_acc", &ExactMultiplier::new(6), 1),
                lint_multiplier("mul6u_rm4", &TruncatedMultiplier::new(6, 4), 2),
            ],
        };
        let json = report.to_json();
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert!(json.contains("\"schema\": \"appmult-lint/v2\""));
        assert!(json.contains("\"status\": \"equivalent\""));
        assert!(json.contains("\"status\": \"counterexample\""));
        assert!(json.contains("\"sta_matches_cost_model\": true"));
        assert_eq!(json.matches("\"name\":").count(), 2);
        // Balanced braces and brackets (no raw quotes inside values).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn circuit_designs_carry_an_analysis_summary() {
        let r = lint_multiplier("mul5u_acc", &ExactMultiplier::new(5), 1);
        let a = r.analysis.expect("gate-level design is analyzed");
        assert!(a.sta_matches_cost_model);
        assert_eq!(a.duplicate_gates, 0);
        assert_eq!(a.const_gates, 0);
        assert_eq!(a.stuck_outputs, 0);
        assert!(a.depth > 0);
        assert!(!a.critical_path.is_empty());
        assert_eq!(a.slack_histogram.iter().sum::<u32>() as usize, a.live_gates);

        // Truncated designs tie low product columns to const0: declared
        // stuck outputs, still no collapsed logic.
        let r = lint_multiplier("mul5u_rm4", &TruncatedMultiplier::new(5, 4), 2);
        let a = r.analysis.as_ref().expect("gate-level design is analyzed");
        assert_eq!(a.stuck_outputs, 4);
        assert_eq!(r.error_count(), 0, "{:?}", r.diagnostics);
    }

    #[test]
    fn stuck_at_control_trips_constant_propagation() {
        let r = lint_stuck_at_variant();
        let a = r.analysis.as_ref().expect("netlist variant is analyzed");
        assert!(
            a.const_gates + a.stuck_outputs > 0,
            "the injected constant must be visible to the ternary pass"
        );
        assert!(
            r.diagnostics.iter().all(|d| d.pass != "ternary"),
            "{:?}",
            r.diagnostics
        );
    }

    #[test]
    fn analysis_json_is_well_formed() {
        let report = ZooLintReport {
            designs: vec![
                lint_multiplier("mul5u_acc", &ExactMultiplier::new(5), 1),
                lint_corrupted_lut_variant(),
            ],
        };
        let json = report.analysis_json();
        assert!(json.contains("\"schema\": \"appmult-analyze/v1\""));
        assert!(json.contains("\"design_count\": 2"));
        // The LUT-only control is omitted from the analyzed designs.
        assert!(json.contains("\"analyzed_count\": 1"));
        assert!(json.contains("\"critical_path\": ["));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn json_escaping_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
