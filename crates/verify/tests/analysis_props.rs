//! Property tests for the static-analysis framework.
//!
//! Two contracts, each checked over randomized structures with shrinking:
//!
//! - **Ternary soundness**: whatever the 0/1/X abstract interpreter proves
//!   about a netlist must hold under *every* concretization of the X
//!   inputs in the 64-way word-parallel simulator.
//! - **STA/cost-model agreement**: on arbitrarily ALS-mutated multiplier
//!   netlists, the static-timing delay stays bit-identical to
//!   [`CostModel::estimate_netlist`], and the reported critical path stays
//!   a connected chain whose gate delays sum to it.

use appmult_circuit::{fault_sites, simulate_bools, CostModel, MultiplierCircuit, Netlist, Signal};
use appmult_rng::prop::forall_with;
use appmult_verify::{sta, ternary_eval, AnalysisContext, Ternary};

/// A randomly generated combinational block: ternary input values (0, 1,
/// or 2 = X) plus gate descriptors whose fanins index earlier signals
/// modulo the signals built so far.
#[derive(Debug, Clone, PartialEq)]
struct RandomLogic {
    inputs: Vec<u8>,
    gates: Vec<(u8, u8, u8)>,
}

/// Materializes the genome into a netlist (every gate is an output) and
/// the ternary input assignment.
fn build(case: &RandomLogic) -> (Netlist, Vec<Ternary>) {
    let mut nl = Netlist::new();
    let ins: Vec<Signal> = (0..case.inputs.len()).map(|_| nl.input()).collect();
    let mut signals = ins.clone();
    for &(k, a, b) in &case.gates {
        let fa = signals[a as usize % signals.len()];
        let fb = signals[b as usize % signals.len()];
        let s = match k % 10 {
            0 => nl.buf(fa),
            1 => nl.not(fa),
            2 => nl.and(fa, fb),
            3 => nl.or(fa, fb),
            4 => nl.xor(fa, fb),
            5 => nl.nand(fa, fb),
            6 => nl.nor(fa, fb),
            7 => nl.xnor(fa, fb),
            8 => nl.const0(),
            _ => nl.const1(),
        };
        signals.push(s);
    }
    let gate_signals: Vec<Signal> = signals[case.inputs.len()..].to_vec();
    nl.set_outputs(if gate_signals.is_empty() {
        ins
    } else {
        gate_signals
    });
    let tern = case
        .inputs
        .iter()
        .map(|&v| match v {
            0 => Ternary::Zero,
            1 => Ternary::One,
            _ => Ternary::X,
        })
        .collect();
    (nl, tern)
}

/// Every output the abstract interpreter proves 0 or 1 must take exactly
/// that value under every concretization of the X inputs.
fn ternary_is_sound(case: &RandomLogic) -> bool {
    let (nl, tern) = build(case);
    let values = ternary_eval(&nl, &tern);
    let x_positions: Vec<usize> = tern
        .iter()
        .enumerate()
        .filter(|&(_, &v)| v == Ternary::X)
        .map(|(i, _)| i)
        .collect();
    for mask in 0u32..(1 << x_positions.len()) {
        let mut concrete: Vec<bool> = tern.iter().map(|&v| v == Ternary::One).collect();
        for (bit, &pos) in x_positions.iter().enumerate() {
            concrete[pos] = (mask >> bit) & 1 == 1;
        }
        let outs = simulate_bools(&nl, &concrete);
        for (o, &sig) in nl.outputs().iter().enumerate() {
            let agrees = match values[sig.index()] {
                Ternary::Zero => !outs[o],
                Ternary::One => outs[o],
                Ternary::X => true,
            };
            if !agrees {
                return false;
            }
        }
    }
    true
}

fn shrink_logic(case: &RandomLogic) -> Vec<RandomLogic> {
    let mut out = Vec::new();
    for i in 0..case.gates.len() {
        let mut c = case.clone();
        c.gates.remove(i);
        out.push(c);
    }
    if case.inputs.len() > 1 {
        let mut c = case.clone();
        c.inputs.pop();
        out.push(c);
    }
    for i in 0..case.inputs.len() {
        if case.inputs[i] == 2 {
            let mut c = case.clone();
            c.inputs[i] = 0;
            out.push(c);
        }
    }
    out
}

#[test]
fn ternary_propagation_is_sound_under_every_concretization() {
    forall_with(
        "ternary 0/1/X propagation is sound vs the word-parallel simulator",
        0x7e4a17,
        200,
        |rng, _case| RandomLogic {
            inputs: (0..1 + rng.index(5)).map(|_| rng.index(3) as u8).collect(),
            gates: (0..rng.index(13))
                .map(|_| {
                    (
                        rng.next_u32() as u8,
                        rng.next_u32() as u8,
                        rng.next_u32() as u8,
                    )
                })
                .collect(),
        },
        shrink_logic,
        ternary_is_sound,
    );
}

/// A 4-bit multiplier with a sequence of ALS-style local rewrites applied:
/// each mutation picks a live physical gate (by index modulo the current
/// fault-site list) and either ties it to a constant or forwards its first
/// fanin.
#[derive(Debug, Clone, PartialEq)]
struct MutatedDesign {
    wallace: bool,
    mutations: Vec<(u32, u8)>,
}

fn build_mutated(case: &MutatedDesign) -> Netlist {
    let circuit = if case.wallace {
        MultiplierCircuit::wallace(4)
    } else {
        MultiplierCircuit::array(4)
    };
    let mut nl = circuit.netlist().clone();
    for &(site, action) in &case.mutations {
        let sites = fault_sites(&nl);
        if sites.is_empty() {
            break;
        }
        let target = sites[site as usize % sites.len()];
        match action % 3 {
            0 => {
                let _ = nl.replace_with_const(target, false);
            }
            1 => {
                let _ = nl.replace_with_const(target, true);
            }
            _ => {
                let fanin = nl.gate(target).fanins[0];
                let _ = nl.replace_with_signal(target, fanin);
            }
        }
    }
    nl
}

/// STA stays bit-identical to the cost model and self-consistent (chain
/// connected, per-gate delays summing to the reported delay) no matter how
/// the netlist was mutated.
fn sta_agrees_with_cost_model(case: &MutatedDesign) -> bool {
    let nl = build_mutated(case);
    let model = CostModel::asap7();
    let ctx = AnalysisContext::new(&nl);
    let report = sta(&ctx, &model);
    report.delay_ps.to_bits() == model.estimate_netlist(&nl).delay_ps.to_bits()
        && report.consistency_diagnostics(&model, &nl).is_empty()
}

fn shrink_mutations(case: &MutatedDesign) -> Vec<MutatedDesign> {
    let mut out = Vec::new();
    for i in 0..case.mutations.len() {
        let mut c = case.clone();
        c.mutations.remove(i);
        out.push(c);
    }
    if case.wallace {
        let mut c = case.clone();
        c.wallace = false;
        out.push(c);
    }
    out
}

#[test]
fn sta_is_bit_identical_to_the_cost_model_on_mutated_netlists() {
    forall_with(
        "STA delay equals CostModel::estimate_netlist on ALS-mutated netlists",
        0x57acafe,
        64,
        |rng, case| MutatedDesign {
            wallace: case % 2 == 1,
            mutations: (0..rng.index(8))
                .map(|_| (rng.next_u32(), rng.next_u32() as u8))
                .collect(),
        },
        shrink_mutations,
        sta_agrees_with_cost_model,
    );
}
