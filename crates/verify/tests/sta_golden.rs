//! Golden regression tests for the static-analysis framework.
//!
//! Pins the known critical path of the calibration design — the 8-bit
//! array multiplier whose delay defines the 730.1 ps Table I reference —
//! and proves the stuck-at-1 negative control trips the
//! constant-propagation lint.

use appmult_circuit::{fault_sites, CostModel, MultiplierCircuit};
use appmult_verify::{analyze_netlist, sta, AnalysisContext};

#[test]
fn array8_critical_path_is_pinned() {
    let circuit = MultiplierCircuit::array(8);
    let model = CostModel::asap7();
    let ctx = AnalysisContext::new(circuit.netlist());
    let report = sta(&ctx, &model);

    // The calibration contract: array(8) *defines* the 730.1 ps scale.
    assert!(
        (report.delay_ps - 730.1).abs() < 1e-9,
        "delay {} ps",
        report.delay_ps
    );
    assert_eq!(
        report.delay_ps.to_bits(),
        model.estimate(&circuit).delay_ps.to_bits()
    );

    // Known critical path: one input followed by 111 logic levels through
    // the ripple-carry spine (xor-heavy with and/or carry links).
    assert_eq!(report.critical_path.len(), 112);
    assert_eq!(ctx.depth(), 111);
    let first = report.critical_path.first().unwrap();
    assert_eq!(first.kind.arity(), 0, "path starts at a primary input");
    let last = report.critical_path.last().unwrap();
    assert_eq!(Some(last.signal), report.critical_output);

    // The chain is connected and its per-gate delays sum to the total.
    assert!(report
        .consistency_diagnostics(&model, circuit.netlist())
        .is_empty());
    let sum: f64 = report.critical_path.iter().map(|g| g.delay_ps).sum();
    assert!((sum - report.delay_ps).abs() < 1e-9 * report.delay_ps);

    // Every gate on the path has zero slack.
    for g in &report.critical_path {
        assert!(
            report.slack_ps[g.signal.index()].abs() < 1e-9,
            "{}",
            g.signal
        );
    }
}

#[test]
fn stuck_at_one_control_trips_constant_propagation() {
    let base = MultiplierCircuit::array(8);
    let model = CostModel::asap7();

    // The clean design has no constant cones or stuck outputs.
    let clean = analyze_netlist(base.netlist(), &model);
    assert!(clean.ternary.const_gates.is_empty());
    assert!(clean.ternary.stuck_outputs.is_empty());
    assert!(
        clean
            .diagnostics
            .iter()
            .all(|d| d.pass != "ternary-const" && d.pass != "stuck-output"),
        "{:?}",
        clean.diagnostics
    );

    // Tie the first live physical gate to 1: the ternary pass must see it.
    let site = fault_sites(base.netlist())[0];
    let mut faulted = base.netlist().clone();
    faulted.replace_with_const(site, true).unwrap();
    let analysis = analyze_netlist(&faulted, &model);
    assert!(
        !analysis.ternary.const_gates.is_empty() || !analysis.ternary.stuck_outputs.is_empty(),
        "the injected constant is invisible to constant propagation"
    );
    assert!(
        analysis
            .diagnostics
            .iter()
            .any(|d| d.pass == "ternary-const" || d.pass == "stuck-output"),
        "{:?}",
        analysis.diagnostics
    );
}
