//! AppMult-aware DNN retraining with difference-based gradient
//! approximation — the core contribution of the reproduced paper.
//!
//! The pipeline (Fig. 4 of the paper):
//!
//! 1. **Quantize** — weights and activations are fake-quantized to unsigned
//!    `B`-bit integers with per-tensor scale/zero-point (Eq. 7; [`QuantParams`],
//!    [`Observer`]).
//! 2. **Approximate multiply** — products are served from the AppMult's
//!    precomputed LUT and dequantized (Eq. 8; [`ApproxConv2d`],
//!    [`ApproxLinear`]).
//! 3. **Backpropagate** — `dAM/dW` and `dAM/dX` come from a gradient LUT
//!    ([`GradientLut`]) built with either the baseline STE rule or the
//!    paper's smoothed difference-based rule (Eqs. 4-6; [`GradientMode`],
//!    [`smooth_row`]), chained per Eq. 9 with clipped-STE `Q'`.
//! 4. **Retrain** — [`retrain`] runs the epoch loop with the paper's
//!    learning-rate schedule; [`select_hws`] reproduces the half-window-size
//!    sweep of Sec. V-A.
//!
//! # Example: STE vs difference-based gradients on one slice
//!
//! ```
//! use appmult_mult::{zoo, Multiplier};
//! use appmult_retrain::{GradientLut, GradientMode};
//!
//! let lut = zoo::mul7u_rm6().to_lut();
//! let ours = GradientLut::build(&lut, GradientMode::difference_based(4));
//! let ste = GradientLut::build(&lut, GradientMode::Ste);
//!
//! // STE is blind to the staircase; the difference-based gradient peaks
//! // at the jumps (Fig. 3b).
//! assert_eq!(ste.wrt_x(10, 63), 10.0);
//! assert!(ours.wrt_x(10, 63) > ours.wrt_x(10, 50));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod gradient;
mod hws;
mod layers;
mod quant;
mod resilience;
mod retrainer;
mod smoothing;

pub use gradient::{GradientLut, GradientLutError, GradientMode};
pub use hws::{
    candidates_for_bits, select_hws, HwsError, HwsSelection, HwsTrial, PAPER_HWS_CANDIDATES,
};
pub use layers::{ApproxConv2d, ApproxLinear, QuantConfig};
pub use quant::{dequantize_dot, dequantize_dot_offset, Observer, QuantParams, QuantScheme};
pub use resilience::ResiliencePolicy;
pub use retrainer::{evaluate, retrain, Batch, EpochStats, RetrainConfig, RetrainHistory};
pub use smoothing::{smooth_row, smooth_row_kernel, weighted_smooth_row, SmoothingKernel};
