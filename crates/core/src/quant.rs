//! Uniform asymmetric quantization (Eqs. 7-8 of the paper).
//!
//! The framework simulates integer arithmetic with *fake quantization*:
//! floating-point weights `w` and activations `x` are mapped to unsigned
//! `B`-bit integers
//!
//! ```text
//! W = Q(w) = round(w / s_w + Z_w),    X = Q(x) = round(x / s_x + Z_x)
//! ```
//!
//! the (approximate) integer product `Y = AM(W, X)` is computed, and the
//! dequantization
//!
//! ```text
//! y = DQ(Y) = s_w s_x (Y - Z_x W - Z_w X + Z_w Z_x)
//! ```
//!
//! recovers a floating-point value. `Q'` uses the clipped straight-through
//! estimator: the gradient passes iff the pre-round value lies inside the
//! quantizer range.

use appmult_nn::Tensor;

/// How float values map onto the unsigned `B`-bit codes the multiplier
/// LUTs consume.
///
/// The paper's path is [`QuantScheme::Unsigned`]: asymmetric affine codes
/// whose value is `s (Q - Z)`. The signed int8 path of ApproxTrain-style
/// retraining is [`QuantScheme::SignedOffset`]: symmetric codes with the
/// fixed zero point `2^(B-1)` (offset binary, i.e. two's complement with
/// the sign bit flipped), consumed by `SignMagnitudeMultiplier`'s offset
/// LUT whose entries store `product + 2^(2B-1)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QuantScheme {
    /// Uniform asymmetric unsigned quantization (Eqs. 7-8).
    #[default]
    Unsigned,
    /// Symmetric signed quantization in offset-binary codes, paired with
    /// offset-product LUTs (`SignMagnitudeMultiplier::to_offset_lut`).
    SignedOffset,
}

impl QuantScheme {
    /// Stable identifier used in reports (`"unsigned"` / `"signed"`).
    pub fn key(self) -> &'static str {
        match self {
            QuantScheme::Unsigned => "unsigned",
            QuantScheme::SignedOffset => "signed",
        }
    }
}

/// Scale and zero point of one uniform asymmetric quantizer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantParams {
    /// Floating-point scale `s` (> 0).
    pub scale: f32,
    /// Integer zero point `Z` in `[0, 2^B - 1]`.
    pub zero_point: i32,
    /// Operand bit width `B`.
    pub bits: u32,
}

impl QuantParams {
    /// Derives parameters covering `[lo, hi]` with `bits`-bit unsigned
    /// codes (Eq. 7). The range is widened to include 0 so that zero
    /// padding quantizes exactly to the zero point.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`, either bound is non-finite, or `bits` is not in
    /// `2..=10`.
    pub fn from_range(lo: f32, hi: f32, bits: u32) -> Self {
        assert!(lo.is_finite() && hi.is_finite(), "range must be finite");
        assert!(lo <= hi, "invalid range [{lo}, {hi}]");
        assert!((2..=10).contains(&bits), "bits must be in 2..=10");
        let lo = lo.min(0.0);
        let hi = hi.max(0.0);
        let qmax = ((1u32 << bits) - 1) as f32;
        let scale = ((hi - lo) / qmax).max(1e-10);
        let zero_point = (-lo / scale).round().clamp(0.0, qmax) as i32;
        Self {
            scale,
            zero_point,
            bits,
        }
    }

    /// Derives symmetric signed parameters covering `[-max_abs, max_abs]`
    /// in offset-binary codes: the zero point is pinned to `2^(B-1)` and
    /// the scale spans the magnitude range, so code `Q` represents
    /// `s (Q - 2^(B-1))` with the full negative reach of two's complement
    /// left unused (codes are symmetric in `+/-(2^(B-1) - 1)`).
    ///
    /// # Panics
    ///
    /// Panics if `max_abs` is non-finite or negative, or `bits` is not in
    /// `2..=10`.
    pub fn signed_symmetric(max_abs: f32, bits: u32) -> Self {
        assert!(
            max_abs.is_finite() && max_abs >= 0.0,
            "max_abs must be finite and non-negative"
        );
        assert!((2..=10).contains(&bits), "bits must be in 2..=10");
        let half = 1i32 << (bits - 1);
        let scale = (max_abs / (half - 1) as f32).max(1e-10);
        Self {
            scale,
            zero_point: half,
            bits,
        }
    }

    /// Largest representable code, `2^B - 1`.
    pub fn qmax(&self) -> u32 {
        (1u32 << self.bits) - 1
    }

    /// Quantizes one value (Eq. 7), clamping to the code range.
    #[inline]
    pub fn quantize(&self, v: f32) -> u32 {
        let q = (v / self.scale + self.zero_point as f32).round();
        q.clamp(0.0, self.qmax() as f32) as u32
    }

    /// Whether `v` quantizes without clamping — the clipped-STE condition
    /// for `Q'(v) != 0`.
    #[inline]
    pub fn in_range(&self, v: f32) -> bool {
        let q = (v / self.scale + self.zero_point as f32).round();
        q >= 0.0 && q <= self.qmax() as f32
    }

    /// Dequantizes one code: `s * (q - Z)`.
    #[inline]
    pub fn dequantize(&self, q: u32) -> f32 {
        self.scale * (q as i32 - self.zero_point) as f32
    }

    /// Fake-quantization round trip: `dequantize(quantize(v))`.
    #[inline]
    pub fn fake_quantize(&self, v: f32) -> f32 {
        self.dequantize(self.quantize(v))
    }
}

/// Dequantization of an accumulated dot product of `count` terms (Eq. 8
/// applied linearly over the sum):
///
/// `y = s_w s_x (sum_Y - Z_x sum_W - Z_w sum_X + count Z_w Z_x)`.
#[inline]
pub fn dequantize_dot(
    wq: &QuantParams,
    xq: &QuantParams,
    sum_y: i64,
    sum_w: i64,
    sum_x: i64,
    count: usize,
) -> f32 {
    let zw = i64::from(wq.zero_point);
    let zx = i64::from(xq.zero_point);
    let acc = sum_y - zx * sum_w - zw * sum_x + (count as i64) * zw * zx;
    wq.scale * xq.scale * acc as f32
}

/// Dequantization of an accumulated *offset-binary* dot product of
/// `count` terms: each LUT entry stores
/// `(W - 2^(B-1))(X - 2^(B-1)) + 2^(2B-1)`, so the true signed sum is
/// recovered by subtracting the constant offset once per term:
///
/// `y = s_w s_x (sum_Y - count * 2^(2B-1))`.
///
/// Unlike [`dequantize_dot`], no `sum_W`/`sum_X` correction appears — the
/// operand zero points are already folded into the stored products.
#[inline]
pub fn dequantize_dot_offset(wq: &QuantParams, xq: &QuantParams, sum_y: i64, count: usize) -> f32 {
    debug_assert_eq!(wq.bits, xq.bits, "operand widths must match");
    let offset = 1i64 << (2 * wq.bits - 1);
    let acc = sum_y - (count as i64) * offset;
    wq.scale * xq.scale * acc as f32
}

/// Exponential-moving-average min/max observer for activation calibration.
///
/// The first observation initializes the range directly; later batches are
/// blended with momentum, the standard fake-quantization recipe.
///
/// Batches whose extrema are non-finite (an `Inf` activation, or a tensor
/// with no finite elements at all — note that `f32::min`/`max` skip NaN, so
/// a lone NaN among finite values never reaches the extrema) are *rejected*:
/// the running range is left untouched and [`Observer::rejected`] is
/// incremented. Folding such extrema into the EMA would corrupt the range
/// permanently and make every later [`Observer::quant_params`] call panic —
/// exactly the poisoning the resilient retraining loop must survive.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Observer {
    range: Option<(f32, f32)>,
    momentum: f32,
    rejected: usize,
}

impl Observer {
    /// Creates an observer with the given EMA momentum (e.g. 0.05-0.1).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < momentum <= 1`.
    pub fn new(momentum: f32) -> Self {
        assert!(momentum > 0.0 && momentum <= 1.0, "momentum in (0, 1]");
        Self {
            range: None,
            momentum,
            rejected: 0,
        }
    }

    /// Folds a batch's min/max into the running range. Non-finite extrema
    /// are rejected: the previous range (if any) is kept and the rejection
    /// is counted instead.
    pub fn observe(&mut self, t: &Tensor) {
        let (lo, hi) = t.min_max();
        if !lo.is_finite() || !hi.is_finite() {
            self.rejected += 1;
            return;
        }
        self.range = Some(match self.range {
            None => (lo, hi),
            Some((rlo, rhi)) => (
                rlo + self.momentum * (lo - rlo),
                rhi + self.momentum * (hi - rhi),
            ),
        });
    }

    /// Current range, if any batch has been observed.
    pub fn range(&self) -> Option<(f32, f32)> {
        self.range
    }

    /// Number of batches rejected for non-finite extrema.
    pub fn rejected(&self) -> usize {
        self.rejected
    }

    /// Quantization parameters for the current range.
    ///
    /// # Panics
    ///
    /// Panics if nothing has been observed yet.
    pub fn quant_params(&self, bits: u32) -> QuantParams {
        let (lo, hi) = self.range.expect("observer has seen no data");
        QuantParams::from_range(lo, hi, bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_error_is_within_half_step() {
        let q = QuantParams::from_range(-1.0, 1.0, 8);
        for i in 0..100 {
            let v = -1.0 + 0.02 * i as f32;
            let r = q.fake_quantize(v);
            assert!((r - v).abs() <= q.scale * 0.5 + 1e-6, "{v} -> {r}");
        }
    }

    #[test]
    fn zero_maps_to_zero_point_exactly() {
        let q = QuantParams::from_range(-0.73, 1.9, 8);
        assert_eq!(q.quantize(0.0), q.zero_point as u32);
        assert_eq!(q.fake_quantize(0.0), 0.0);
    }

    #[test]
    fn positive_only_range_still_contains_zero() {
        let q = QuantParams::from_range(0.5, 2.0, 8);
        assert_eq!(q.quantize(0.0), q.zero_point as u32);
        assert_eq!(q.zero_point, 0);
    }

    #[test]
    fn out_of_range_values_clamp_and_clip() {
        let q = QuantParams::from_range(-1.0, 1.0, 4);
        assert_eq!(q.quantize(50.0), q.qmax());
        assert_eq!(q.quantize(-50.0), 0);
        assert!(!q.in_range(50.0));
        assert!(!q.in_range(-50.0));
        assert!(q.in_range(0.5));
    }

    #[test]
    fn degenerate_range_does_not_blow_up() {
        let q = QuantParams::from_range(0.0, 0.0, 8);
        assert!(q.scale > 0.0);
        let r = q.fake_quantize(0.0);
        assert_eq!(r, 0.0);
    }

    #[test]
    fn dequantize_dot_matches_elementwise() {
        // Quantized dot product dequantized in one shot must equal the sum
        // of per-term dequantized products when the multiplier is exact.
        let wq = QuantParams::from_range(-0.8, 0.9, 8);
        let xq = QuantParams::from_range(0.0, 2.0, 8);
        let ws = [-0.5f32, 0.3, 0.88];
        let xs = [1.5f32, 0.2, 0.7];
        let mut sum_y = 0i64;
        let mut sum_w = 0i64;
        let mut sum_x = 0i64;
        let mut reference = 0.0f32;
        for (w, x) in ws.iter().zip(&xs) {
            let cw = wq.quantize(*w);
            let cx = xq.quantize(*x);
            sum_y += i64::from(cw) * i64::from(cx);
            sum_w += i64::from(cw);
            sum_x += i64::from(cx);
            reference += wq.dequantize(cw) * xq.dequantize(cx);
        }
        let got = dequantize_dot(&wq, &xq, sum_y, sum_w, sum_x, ws.len());
        assert!((got - reference).abs() < 1e-5, "{got} vs {reference}");
    }

    #[test]
    fn signed_symmetric_pins_the_zero_point() {
        let q = QuantParams::signed_symmetric(1.27, 8);
        assert_eq!(q.zero_point, 128);
        assert_eq!(q.quantize(0.0), 128);
        assert_eq!(q.fake_quantize(0.0), 0.0);
        // Symmetric reach: +/- max_abs hit codes 255 and 1.
        assert_eq!(q.quantize(1.27), 255);
        assert_eq!(q.quantize(-1.27), 1);
        assert!((q.dequantize(255) - 1.27).abs() < 1e-6);
        assert!((q.dequantize(1) + 1.27).abs() < 1e-6);
    }

    #[test]
    fn signed_symmetric_degenerate_range_does_not_blow_up() {
        let q = QuantParams::signed_symmetric(0.0, 8);
        assert!(q.scale > 0.0);
        assert_eq!(q.fake_quantize(0.0), 0.0);
    }

    #[test]
    fn dequantize_dot_offset_matches_elementwise() {
        // Offset-binary dot product dequantized in one shot must equal the
        // sum of per-term signed dequantized products when the multiplier
        // is exact: stored = (W - 128)(X - 128) + 2^15.
        let wq = QuantParams::signed_symmetric(0.9, 8);
        let xq = QuantParams::signed_symmetric(2.0, 8);
        let ws = [-0.5f32, 0.3, 0.88];
        let xs = [1.5f32, -0.2, 0.7];
        let offset = 1i64 << 15;
        let mut sum_y = 0i64;
        let mut reference = 0.0f32;
        for (w, x) in ws.iter().zip(&xs) {
            let cw = i64::from(wq.quantize(*w));
            let cx = i64::from(xq.quantize(*x));
            sum_y += (cw - 128) * (cx - 128) + offset;
            reference += wq.dequantize(cw as u32) * xq.dequantize(cx as u32);
        }
        let got = dequantize_dot_offset(&wq, &xq, sum_y, ws.len());
        assert!((got - reference).abs() < 1e-5, "{got} vs {reference}");
    }

    #[test]
    fn scheme_keys_are_stable() {
        assert_eq!(QuantScheme::Unsigned.key(), "unsigned");
        assert_eq!(QuantScheme::SignedOffset.key(), "signed");
        assert_eq!(QuantScheme::default(), QuantScheme::Unsigned);
    }

    #[test]
    fn observer_ema_converges() {
        let mut obs = Observer::new(0.5);
        obs.observe(&Tensor::from_vec(vec![-1.0, 1.0], &[2]));
        for _ in 0..20 {
            obs.observe(&Tensor::from_vec(vec![-2.0, 4.0], &[2]));
        }
        let (lo, hi) = obs.range().expect("observed");
        assert!((lo + 2.0).abs() < 1e-3 && (hi - 4.0).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "no data")]
    fn unobserved_params_panic() {
        Observer::new(0.1).quant_params(8);
    }

    #[test]
    fn non_finite_extrema_are_rejected_not_folded() {
        let mut obs = Observer::new(0.5);
        obs.observe(&Tensor::from_vec(vec![-1.0, 1.0], &[2]));
        let calibrated = obs.range().expect("calibrated");
        // Inf extrema, an all-NaN batch, and -Inf extrema must all be
        // skipped; the EMA range stays exactly where it was.
        obs.observe(&Tensor::from_vec(vec![0.0, f32::INFINITY], &[2]));
        obs.observe(&Tensor::from_vec(vec![f32::NAN, f32::NAN], &[2]));
        obs.observe(&Tensor::from_vec(vec![f32::NEG_INFINITY, 0.5], &[2]));
        assert_eq!(obs.range().expect("still calibrated"), calibrated);
        assert_eq!(obs.rejected(), 3);
        // quant_params must not hit from_range's finite assert.
        assert!(obs.quant_params(8).scale.is_finite());
        // Finite batches keep blending afterwards.
        obs.observe(&Tensor::from_vec(vec![-3.0, 3.0], &[2]));
        assert_ne!(obs.range().expect("updated"), calibrated);
    }

    #[test]
    fn lone_nan_is_invisible_to_extrema() {
        // f32::min/max skip NaN, so a single poisoned pixel among finite
        // values never reaches the observer's extrema in the first place.
        let mut obs = Observer::new(0.5);
        obs.observe(&Tensor::from_vec(vec![-1.0, f32::NAN, 1.0], &[3]));
        assert_eq!(obs.range(), Some((-1.0, 1.0)));
        assert_eq!(obs.rejected(), 0);
    }

    #[test]
    fn rejected_first_batch_leaves_observer_uncalibrated() {
        let mut obs = Observer::new(0.1);
        obs.observe(&Tensor::from_vec(vec![f32::NAN, f32::NAN], &[2]));
        assert!(obs.range().is_none());
        assert_eq!(obs.rejected(), 1);
    }
}
