//! Difference-based gradient approximation of AppMults (Sec. III).
//!
//! For a fixed `W_f`, the gradient of the smoothed AppMult function is
//! approximated by the central difference (Eq. 5)
//!
//! ```text
//! dAM/dX ~ (S(W_f, X + 1) - S(W_f, X - 1)) / 2    for HWS < X < 2^B - 1 - HWS
//! ```
//!
//! and by the average slope over the whole operand range (Eq. 6) at the
//! boundary:
//!
//! ```text
//! dAM/dX ~ (max_X AM(W_f, X) - min_X AM(W_f, X)) / 2^B    otherwise.
//! ```
//!
//! The gradients for all `2^(2B)` operand pairs are precomputed into
//! lookup tables ([`GradientLut`]) exactly as the paper stores them in GPU
//! memory, and the framework accepts arbitrary user-defined tables through
//! [`GradientMode::Custom`].

use std::fmt;
use std::sync::Arc;

use appmult_mult::MultiplierLut;
use appmult_pool::Pool;

use crate::smoothing::{row_min_max, smooth_row};

/// How the gradient of an AppMult is approximated during backpropagation.
#[derive(Debug, Clone)]
pub enum GradientMode {
    /// Straight-through estimator: use the accurate multiplier's gradient
    /// (`dAM/dW ~ X`, `dAM/dX ~ W`) — the baseline of refs. [8]-[13].
    Ste,
    /// The paper's smoothed difference-based gradient with the given half
    /// window size (Eqs. 4-6).
    DifferenceBased {
        /// Half window size `HWS` of the Eq. 4 moving average.
        hws: u32,
    },
    /// Ablation: central differences of the *raw* (unsmoothed) AppMult
    /// function, with the Eq. 6 rule only at `X = 0` and `X = 2^B - 1`.
    /// Exhibits the zero/spiky gradients that motivate Eq. 4.
    RawDifference,
    /// Ablation of the Eq. 6 boundary rule: identical to
    /// [`GradientMode::DifferenceBased`] in the interior, but boundary
    /// operands copy the nearest interior gradient instead of using the
    /// average slope.
    DifferenceEdgeClamped {
        /// Half window size `HWS` of the Eq. 4 moving average.
        hws: u32,
    },
    /// User-supplied gradient tables in `(w << B) | x` layout.
    Custom {
        /// `dAM/dW` table, `2^(2B)` entries.
        wrt_w: Arc<Vec<f32>>,
        /// `dAM/dX` table, `2^(2B)` entries.
        wrt_x: Arc<Vec<f32>>,
    },
}

impl GradientMode {
    /// Convenience constructor for the paper's method.
    pub fn difference_based(hws: u32) -> Self {
        GradientMode::DifferenceBased { hws }
    }

    /// Short identifier used in experiment tables.
    pub fn label(&self) -> String {
        match self {
            GradientMode::Ste => "STE".into(),
            GradientMode::DifferenceBased { hws } => format!("diff(hws={hws})"),
            GradientMode::RawDifference => "raw-diff".into(),
            GradientMode::DifferenceEdgeClamped { hws } => format!("diff-clamp(hws={hws})"),
            GradientMode::Custom { .. } => "custom".into(),
        }
    }
}

/// Precomputed `dAM/dW` and `dAM/dX` tables for one multiplier.
///
/// Entry `(w << B) | x` of each table holds the partial derivative at that
/// operand pair. Built once per (multiplier, gradient mode) and shared by
/// every approximate layer via `Arc`.
///
/// # Example
///
/// ```
/// use appmult_mult::{zoo, Multiplier};
/// use appmult_retrain::{GradientLut, GradientMode};
///
/// let lut = zoo::mul7u_rm6().to_lut();
/// let g = GradientLut::build(&lut, GradientMode::difference_based(4));
/// // The staircase has a big jump near X = 63 for W_f = 10 (Fig. 3):
/// assert!(g.wrt_x(10, 63) > g.wrt_x(10, 45));
///
/// // STE ignores the staircase entirely:
/// let ste = GradientLut::build(&lut, GradientMode::Ste);
/// assert_eq!(ste.wrt_x(10, 63), 10.0);
/// assert_eq!(ste.wrt_x(10, 45), 10.0);
/// ```
#[derive(Debug, Clone)]
pub struct GradientLut {
    bits: u32,
    wrt_w: Arc<Vec<f32>>,
    wrt_x: Arc<Vec<f32>>,
    mode_label: String,
}

impl GradientLut {
    /// Builds the gradient tables for `lut` under `mode`, using the global
    /// thread pool (`APPMULT_THREADS`).
    ///
    /// # Panics
    ///
    /// Panics if `mode` is `DifferenceBased` with `hws == 0`, or `Custom`
    /// with tables of the wrong length.
    pub fn build(lut: &MultiplierLut, mode: GradientMode) -> Self {
        Self::build_with_pool(lut, mode, Pool::global())
    }

    /// Like [`GradientLut::build`] with an explicit worker pool. Table rows
    /// (fixed `W_f` slices) are independent, so they are partitioned across
    /// the workers; each entry is written exactly once, making the tables
    /// bit-identical for every thread count.
    pub fn build_with_pool(lut: &MultiplierLut, mode: GradientMode, pool: Pool) -> Self {
        let obs = appmult_obs::global();
        let _span = obs.span("gradient_lut.build");
        let build_start = obs.is_enabled().then(std::time::Instant::now);
        let bits = lut.bits();
        let n = 1usize << bits;
        let label = mode.label();
        let (wrt_w, wrt_x) = match mode {
            GradientMode::Ste => {
                let mut gw = vec![0.0f32; n * n];
                let mut gx = vec![0.0f32; n * n];
                for w in 0..n {
                    for x in 0..n {
                        gw[w * n + x] = x as f32; // dAM/dW ~ X
                        gx[w * n + x] = w as f32; // dAM/dX ~ W
                    }
                }
                (Arc::new(gw), Arc::new(gx))
            }
            GradientMode::DifferenceBased { hws } => {
                assert!(hws >= 1, "half window size must be positive");
                let gx = difference_tables(lut, hws, BoundaryRule::AverageSlope, pool);
                let gw =
                    difference_tables(&lut.transposed(), hws, BoundaryRule::AverageSlope, pool);
                (Arc::new(transpose_table(n, &gw)), Arc::new(gx))
            }
            GradientMode::RawDifference => {
                let gx = raw_difference_tables(lut, pool);
                let gw = raw_difference_tables(&lut.transposed(), pool);
                (Arc::new(transpose_table(n, &gw)), Arc::new(gx))
            }
            GradientMode::DifferenceEdgeClamped { hws } => {
                assert!(hws >= 1, "half window size must be positive");
                let gx = difference_tables(lut, hws, BoundaryRule::ClampToInterior, pool);
                let gw =
                    difference_tables(&lut.transposed(), hws, BoundaryRule::ClampToInterior, pool);
                (Arc::new(transpose_table(n, &gw)), Arc::new(gx))
            }
            GradientMode::Custom { wrt_w, wrt_x } => {
                assert_eq!(wrt_w.len(), n * n, "wrt_w table length");
                assert_eq!(wrt_x.len(), n * n, "wrt_x table length");
                (wrt_w, wrt_x)
            }
        };
        obs.counter_add("gradient_lut.builds", 1);
        if let Some(start) = build_start {
            obs.observe("gradient_lut.build_us", start.elapsed().as_secs_f64() * 1e6);
        }
        Self {
            bits,
            wrt_w,
            wrt_x,
            mode_label: label,
        }
    }

    /// Operand bit width.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Label of the gradient mode used to build the tables.
    pub fn mode_label(&self) -> &str {
        &self.mode_label
    }

    /// `dAM/dW` at `(w, x)`.
    ///
    /// # Panics
    ///
    /// Panics if an operand does not fit in `B` bits.
    #[inline]
    pub fn wrt_w(&self, w: u32, x: u32) -> f32 {
        let b = self.bits;
        assert!(
            w < (1 << b) && x < (1 << b),
            "operands must fit in {b} bits"
        );
        self.wrt_w[((w as usize) << b) | x as usize]
    }

    /// `dAM/dX` at `(w, x)`.
    ///
    /// # Panics
    ///
    /// Panics if an operand does not fit in `B` bits.
    #[inline]
    pub fn wrt_x(&self, w: u32, x: u32) -> f32 {
        let b = self.bits;
        assert!(
            w < (1 << b) && x < (1 << b),
            "operands must fit in {b} bits"
        );
        self.wrt_x[((w as usize) << b) | x as usize]
    }

    /// Raw `dAM/dW` table in `(w << B) | x` layout.
    pub fn wrt_w_table(&self) -> &Arc<Vec<f32>> {
        &self.wrt_w
    }

    /// Raw `dAM/dX` table in `(w << B) | x` layout.
    pub fn wrt_x_table(&self) -> &Arc<Vec<f32>> {
        &self.wrt_x
    }

    /// Statically validates the tables before they enter the training loop.
    ///
    /// A single NaN/Inf entry silently poisons every gradient that flows
    /// through the operand pair, so the approximate layers
    /// ([`crate::ApproxConv2d`], [`crate::ApproxLinear`]) call this hook at
    /// construction time; the `appmult-verify` crate runs the same check
    /// (plus Eq. 5/6 consistency) as part of the zoo lint.
    ///
    /// # Errors
    ///
    /// Returns [`GradientLutError::NonFinite`] locating the first NaN or
    /// infinite entry, or [`GradientLutError::LengthMismatch`] if a custom
    /// table does not have `2^(2B)` entries.
    pub fn validate(&self) -> Result<(), GradientLutError> {
        let expected = 1usize << (2 * self.bits);
        for (table, name) in [(&self.wrt_w, "wrt_w"), (&self.wrt_x, "wrt_x")] {
            if table.len() != expected {
                return Err(GradientLutError::LengthMismatch {
                    table: name,
                    expected,
                    got: table.len(),
                });
            }
            if let Some(idx) = table.iter().position(|v| !v.is_finite()) {
                let w = (idx >> self.bits) as u32;
                let x = (idx as u32) & ((1 << self.bits) - 1);
                return Err(GradientLutError::NonFinite {
                    table: name,
                    w,
                    x,
                    value: table[idx],
                });
            }
        }
        Ok(())
    }
}

/// Error found by [`GradientLut::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum GradientLutError {
    /// A table entry is NaN or infinite.
    NonFinite {
        /// Which table (`"wrt_w"` or `"wrt_x"`).
        table: &'static str,
        /// First offending weight operand.
        w: u32,
        /// First offending activation operand.
        x: u32,
        /// The offending value.
        value: f32,
    },
    /// A table does not have `2^(2B)` entries.
    LengthMismatch {
        /// Which table (`"wrt_w"` or `"wrt_x"`).
        table: &'static str,
        /// Expected entry count.
        expected: usize,
        /// Actual entry count.
        got: usize,
    },
}

impl fmt::Display for GradientLutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GradientLutError::NonFinite { table, w, x, value } => {
                write!(f, "{table}[w={w}, x={x}] is non-finite ({value})")
            }
            GradientLutError::LengthMismatch {
                table,
                expected,
                got,
            } => {
                write!(f, "{table} has {got} entries, expected {expected}")
            }
        }
    }
}

impl std::error::Error for GradientLutError {}

/// How boundary operands (outside the Eq. 5 domain) are handled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BoundaryRule {
    /// Eq. 6: `(max AM - min AM) / 2^B`, the paper's rule.
    AverageSlope,
    /// Ablation: copy the nearest interior Eq. 5 value.
    ClampToInterior,
}

/// Transposes an `n x n` gradient table from `(x << B) | w` layout back
/// into the canonical `(w << B) | x` layout.
fn transpose_table(n: usize, t: &[f32]) -> Vec<f32> {
    assert_eq!(t.len(), n * n, "table must be n x n");
    let mut out = vec![0.0f32; n * n];
    for x in 0..n {
        for w in 0..n {
            out[w * n + x] = t[x * n + w];
        }
    }
    out
}

/// Minimum table size (elements) below which gradient-table builds run
/// serially: a `2^B x 2^B` table under this bound (4-bit, 6-bit) is a few
/// microseconds of O(1)-per-element work, cheaper than spawning workers.
/// Above it (8-bit: 65536 elements) the parallel build wins.
const TABLE_PAR_FLOOR_ELEMS: usize = 1 << 14;

/// Eq. 5 + boundary rule over every row of `lut` (gradient w.r.t. the
/// second operand of the given table). Rows (weight values `w`) are
/// independent and partitioned across the pool's workers.
fn difference_tables(lut: &MultiplierLut, hws: u32, rule: BoundaryRule, pool: Pool) -> Vec<f32> {
    let bits = lut.bits();
    let n = 1usize << bits;
    let h = hws as usize;
    let mut out = vec![0.0f32; n * n];
    let pool = pool.with_min_elems(TABLE_PAR_FLOOR_ELEMS);
    pool.run_rows(&mut out, n, |w0, chunk| {
        for (r, out_row) in chunk.chunks_mut(n).enumerate() {
            let w = (w0 + r) as u32;
            let row = lut.row(w);
            let smoothed = smooth_row(row, hws);
            let (lo, hi) = row_min_max(row);
            // Eq. 6: average change per unit X over the full operand range.
            let boundary = ((f64::from(hi) - f64::from(lo)) / n as f64) as f32;
            let mut first_interior = None;
            let mut last_interior = None;
            for x in 0..n {
                let interior = x > h && x + h + 1 < n; // HWS < X < 2^B - 1 - HWS
                if interior {
                    let sp = smoothed[x + 1].expect("x + 1 in smoothing domain");
                    let sm = smoothed[x - 1].expect("x - 1 in smoothing domain");
                    out_row[x] = ((sp - sm) / 2.0) as f32;
                    first_interior.get_or_insert(x);
                    last_interior = Some(x);
                } else {
                    out_row[x] = boundary;
                }
            }
            if rule == BoundaryRule::ClampToInterior {
                if let (Some(first), Some(last)) = (first_interior, last_interior) {
                    let (head, tail) = (out_row[first], out_row[last]);
                    for v in &mut out_row[..first] {
                        *v = head;
                    }
                    for v in &mut out_row[last + 1..n] {
                        *v = tail;
                    }
                }
            }
        }
    });
    out
}

/// Ablation: central difference of the raw AppMult row, Eq. 6 at the ends.
fn raw_difference_tables(lut: &MultiplierLut, pool: Pool) -> Vec<f32> {
    let bits = lut.bits();
    let n = 1usize << bits;
    let mut out = vec![0.0f32; n * n];
    let pool = pool.with_min_elems(TABLE_PAR_FLOOR_ELEMS);
    pool.run_rows(&mut out, n, |w0, chunk| {
        for (r, out_row) in chunk.chunks_mut(n).enumerate() {
            let w = (w0 + r) as u32;
            let row = lut.row(w);
            let (lo, hi) = row_min_max(row);
            let boundary = ((f64::from(hi) - f64::from(lo)) / n as f64) as f32;
            for x in 0..n {
                out_row[x] = if x > 0 && x + 1 < n {
                    (f64::from(row[x + 1]) - f64::from(row[x - 1])) as f32 / 2.0
                } else {
                    boundary
                };
            }
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use appmult_mult::{ExactMultiplier, Multiplier, TruncatedMultiplier};

    #[test]
    fn ste_tables_are_the_accurate_gradient() {
        let lut = TruncatedMultiplier::new(6, 4).to_lut();
        let g = GradientLut::build(&lut, GradientMode::Ste);
        for w in 0..64 {
            for x in 0..64 {
                assert_eq!(g.wrt_w(w, x), x as f32);
                assert_eq!(g.wrt_x(w, x), w as f32);
            }
        }
    }

    #[test]
    fn exact_multiplier_difference_gradient_tracks_ste() {
        // For the exact multiplier, AM(W, X) = W X, so the smoothed central
        // difference is exactly W in the interior.
        let lut = ExactMultiplier::new(7).to_lut();
        let g = GradientLut::build(&lut, GradientMode::difference_based(4));
        for w in [0u32, 5, 10, 100, 127] {
            for x in [6u32, 20, 64, 100, 122] {
                // interior: x > 4 and x < 122... keep x <= 122 for hws=4
                let expect = w as f32;
                assert!(
                    (g.wrt_x(w, x) - expect).abs() < 1e-3,
                    "w={w} x={x}: {} vs {expect}",
                    g.wrt_x(w, x)
                );
            }
        }
    }

    #[test]
    fn boundary_uses_eq6_average_slope() {
        let lut = ExactMultiplier::new(6).to_lut();
        let g = GradientLut::build(&lut, GradientMode::difference_based(4));
        // For W = 9 the row spans 0 ..= 9 * 63; Eq. 6 gives 9*63/64.
        let expect = (9.0 * 63.0) / 64.0;
        for x in [0u32, 2, 4, 59, 60, 63] {
            assert!(
                (g.wrt_x(9, x) - expect).abs() < 1e-4,
                "x={x}: {} vs {expect}",
                g.wrt_x(9, x)
            );
        }
        // With HWS = 4, Eq. 5's domain is X > HWS, so X = 4 is the last
        // boundary operand and X = 5 is already interior: it takes the
        // smoothed central difference (exactly W = 9 for the exact
        // multiplier), not the Eq. 6 average slope.
        assert!((g.wrt_x(9, 4) - expect).abs() < 1e-4);
        assert!(
            (g.wrt_x(9, 5) - expect).abs() > 1e-2,
            "X = 5 must not use the Eq. 6 boundary value, got {}",
            g.wrt_x(9, 5)
        );
        assert!((g.wrt_x(9, 5) - 9.0).abs() < 1e-3);
    }

    #[test]
    fn fig3_peaks_at_staircase_jumps() {
        // Fig. 3(b): for mul7u_rm6 and W_f = 10, the difference-based
        // gradient has large values around X = 31, 63, 95 and small values
        // on the plateaus; STE is constant 10.
        let lut = TruncatedMultiplier::new(7, 6).to_lut();
        let g = GradientLut::build(&lut, GradientMode::difference_based(4));
        let peak = |x: u32| g.wrt_x(10, x);
        // For W_f = 10 the function AM(10, X) = 64 x3 + 128 x4 + 320 x5 +
        // 640 x6 (bits of X), so the big +128 jumps sit at X = 31 -> 32,
        // 63 -> 64, 95 -> 96 on top of +64 steps every 8.
        for jump in [31u32, 63, 95] {
            let near: f32 = (jump - 1..=jump + 1).map(peak).fold(0.0, f32::max);
            let plateau = peak(jump - 12).abs().max(peak(jump + 12).abs());
            assert!(
                near > 1.15 * plateau.max(1.0),
                "jump {jump}: near {near} vs plateau {plateau}"
            );
        }
        // And the peaks clearly exceed the Eq. 6 average slope (960 / 128).
        let avg = 960.0 / 128.0;
        for jump in [31u32, 63, 95] {
            let near: f32 = (jump - 1..=jump + 1).map(peak).fold(0.0, f32::max);
            assert!(near > 1.5 * avg, "jump {jump}: near {near} vs avg {avg}");
        }
    }

    #[test]
    fn row_zero_of_truncated_multiplier_has_zero_gradient() {
        // AM(0, X) = 0 for all X, so both Eq. 5 and Eq. 6 give 0.
        let lut = TruncatedMultiplier::new(7, 6).to_lut();
        let g = GradientLut::build(&lut, GradientMode::difference_based(2));
        for x in 0..128 {
            assert_eq!(g.wrt_x(0, x), 0.0);
        }
    }

    #[test]
    fn oversized_hws_falls_back_to_eq6_everywhere() {
        let lut = TruncatedMultiplier::new(6, 4).to_lut();
        let g = GradientLut::build(&lut, GradientMode::difference_based(32));
        let row = lut.row(20);
        let (lo, hi) = (
            row.iter().min().copied().expect("nonempty"),
            row.iter().max().copied().expect("nonempty"),
        );
        let expect = (hi - lo) as f32 / 64.0;
        for x in 0..64 {
            assert!((g.wrt_x(20, x) - expect).abs() < 1e-4, "x={x}");
        }
    }

    #[test]
    fn raw_difference_has_zero_plateaus() {
        // The ablation mode shows the pathology Eq. 4 fixes: zero gradient
        // on staircase plateaus.
        let lut = TruncatedMultiplier::new(7, 6).to_lut();
        let g = GradientLut::build(&lut, GradientMode::RawDifference);
        let zeros = (1..127).filter(|&x| g.wrt_x(10, x) == 0.0).count();
        assert!(
            zeros > 40,
            "expected many zero-gradient plateaus, got {zeros}"
        );

        // And the smoothed version has far fewer.
        let gs = GradientLut::build(&lut, GradientMode::difference_based(4));
        let smooth_zeros = (5..122).filter(|&x| gs.wrt_x(10, x) == 0.0).count();
        assert!(smooth_zeros < zeros / 4, "{smooth_zeros} vs {zeros}");
    }

    #[test]
    fn wrt_w_is_wrt_x_of_the_transpose() {
        let lut = TruncatedMultiplier::new(6, 3).to_lut();
        let g = GradientLut::build(&lut, GradientMode::difference_based(2));
        let gt = GradientLut::build(&lut.transposed(), GradientMode::difference_based(2));
        for w in 0..64 {
            for x in 0..64 {
                assert_eq!(g.wrt_w(w, x), gt.wrt_x(x, w), "w={w} x={x}");
            }
        }
    }

    #[test]
    fn edge_clamped_matches_paper_rule_in_the_interior() {
        let lut = TruncatedMultiplier::new(6, 4).to_lut();
        let paper = GradientLut::build(&lut, GradientMode::difference_based(4));
        let clamp = GradientLut::build(&lut, GradientMode::DifferenceEdgeClamped { hws: 4 });
        for w in 0..64u32 {
            for x in 0..64u32 {
                let interior = x > 4 && x < 59;
                if interior {
                    assert_eq!(paper.wrt_x(w, x), clamp.wrt_x(w, x), "w={w} x={x}");
                }
            }
        }
        // At the boundary the ablation copies the nearest interior value.
        assert_eq!(clamp.wrt_x(20, 0), clamp.wrt_x(20, 5));
        assert_eq!(clamp.wrt_x(20, 63), clamp.wrt_x(20, 58));
        assert_eq!(clamp.mode_label(), "diff-clamp(hws=4)");
    }

    #[test]
    fn parallel_build_is_bit_identical_to_serial() {
        // 64 rows across worker counts that do not divide it evenly.
        let lut = TruncatedMultiplier::new(6, 4).to_lut();
        let modes = [
            GradientMode::difference_based(3),
            GradientMode::RawDifference,
            GradientMode::DifferenceEdgeClamped { hws: 2 },
            GradientMode::Ste,
        ];
        for mode in modes {
            let serial = GradientLut::build_with_pool(&lut, mode.clone(), Pool::serial());
            for threads in [2usize, 3, 5, 7, 64, 100] {
                let par = GradientLut::build_with_pool(&lut, mode.clone(), Pool::new(threads));
                let bits_of = |t: &[f32]| -> Vec<u32> { t.iter().map(|v| v.to_bits()).collect() };
                assert_eq!(
                    bits_of(serial.wrt_w_table()),
                    bits_of(par.wrt_w_table()),
                    "wrt_w {} threads={threads}",
                    mode.label()
                );
                assert_eq!(
                    bits_of(serial.wrt_x_table()),
                    bits_of(par.wrt_x_table()),
                    "wrt_x {} threads={threads}",
                    mode.label()
                );
            }
        }
    }

    #[test]
    fn validate_accepts_every_builtin_mode() {
        let lut = TruncatedMultiplier::new(6, 4).to_lut();
        for mode in [
            GradientMode::Ste,
            GradientMode::difference_based(4),
            GradientMode::RawDifference,
            GradientMode::DifferenceEdgeClamped { hws: 2 },
        ] {
            let g = GradientLut::build(&lut, mode);
            assert_eq!(g.validate(), Ok(()));
        }
    }

    #[test]
    fn validate_locates_non_finite_entries() {
        let lut = ExactMultiplier::new(4).to_lut();
        let mut bad = vec![1.0f32; 256];
        bad[(3 << 4) | 7] = f32::NAN;
        let g = GradientLut::build(
            &lut,
            GradientMode::Custom {
                wrt_w: Arc::new(vec![1.0; 256]),
                wrt_x: Arc::new(bad),
            },
        );
        match g.validate() {
            Err(GradientLutError::NonFinite { table, w, x, .. }) => {
                assert_eq!(table, "wrt_x");
                assert_eq!((w, x), (3, 7));
            }
            other => panic!("expected NonFinite, got {other:?}"),
        }
    }

    #[test]
    fn custom_tables_pass_through() {
        let lut = ExactMultiplier::new(4).to_lut();
        let table = Arc::new(vec![2.5f32; 256]);
        let g = GradientLut::build(
            &lut,
            GradientMode::Custom {
                wrt_w: table.clone(),
                wrt_x: table,
            },
        );
        assert_eq!(g.wrt_w(3, 9), 2.5);
        assert_eq!(g.wrt_x(15, 0), 2.5);
        assert_eq!(g.mode_label(), "custom");
    }

    #[test]
    #[should_panic(expected = "table length")]
    fn custom_tables_validate_length() {
        let lut = ExactMultiplier::new(4).to_lut();
        let bad = Arc::new(vec![0.0f32; 10]);
        GradientLut::build(
            &lut,
            GradientMode::Custom {
                wrt_w: bad.clone(),
                wrt_x: bad,
            },
        );
    }
}
