//! Difference-based gradient approximation of AppMults (Sec. III).
//!
//! For a fixed `W_f`, the gradient of the smoothed AppMult function is
//! approximated by the central difference (Eq. 5)
//!
//! ```text
//! dAM/dX ~ (S(W_f, X + 1) - S(W_f, X - 1)) / 2    for HWS < X < 2^B - 1 - HWS
//! ```
//!
//! and by the average slope over the whole operand range (Eq. 6) at the
//! boundary:
//!
//! ```text
//! dAM/dX ~ (max_X AM(W_f, X) - min_X AM(W_f, X)) / 2^B    otherwise.
//! ```
//!
//! The gradients for all `2^(2B)` operand pairs are precomputed into
//! lookup tables ([`GradientLut`]) exactly as the paper stores them in GPU
//! memory, and the framework accepts arbitrary user-defined tables through
//! [`GradientMode::Custom`].
//!
//! The journal extension (arXiv 2509.10519) generalizes the single
//! difference-based rule into an estimator *family*, all reproduced here:
//! parameterized smoothing kernels for Eq. 4
//! ([`GradientMode::DifferenceKernel`]), a least-squares local linear fit
//! ([`GradientMode::LeastSquares`]), an input-distribution-weighted
//! average ([`GradientMode::MarginalWeighted`]), and an ApproxTrain-style
//! per-row linear surrogate ([`GradientMode::Surrogate`]). Every variant
//! builds its tables through the same parallel row-partitioned path, so
//! the bit-identity-at-any-thread-count guarantee carries over unchanged.

use std::fmt;
use std::sync::Arc;

use appmult_mult::MultiplierLut;
use appmult_pool::Pool;

use crate::quant::QuantScheme;
use crate::smoothing::{row_min_max, smooth_row_kernel, weighted_smooth_row, SmoothingKernel};

/// How the gradient of an AppMult is approximated during backpropagation.
#[derive(Debug, Clone)]
pub enum GradientMode {
    /// Straight-through estimator: use the accurate multiplier's gradient
    /// (`dAM/dW ~ X`, `dAM/dX ~ W`) — the baseline of refs. [8]-[13].
    Ste,
    /// The paper's smoothed difference-based gradient with the given half
    /// window size (Eqs. 4-6).
    DifferenceBased {
        /// Half window size `HWS` of the Eq. 4 moving average.
        hws: u32,
    },
    /// Ablation: central differences of the *raw* (unsmoothed) AppMult
    /// function, with the Eq. 6 rule only at `X = 0` and `X = 2^B - 1`.
    /// Exhibits the zero/spiky gradients that motivate Eq. 4.
    RawDifference,
    /// Ablation of the Eq. 6 boundary rule: identical to
    /// [`GradientMode::DifferenceBased`] in the interior, but boundary
    /// operands copy the nearest interior gradient instead of using the
    /// average slope.
    DifferenceEdgeClamped {
        /// Half window size `HWS` of the Eq. 4 moving average.
        hws: u32,
    },
    /// Journal extension: Eq. 4 smoothing with a parameterized window
    /// kernel (box, triangular, discrete Gaussian) followed by the Eq. 5
    /// central difference and the Eq. 6 boundary rule. With
    /// [`SmoothingKernel::Box`] this is bit-identical to
    /// [`GradientMode::DifferenceBased`].
    DifferenceKernel {
        /// Half window size of the smoothing window.
        hws: u32,
        /// Weight profile over the window.
        kernel: SmoothingKernel,
    },
    /// Journal extension: the gradient is the slope of the least-squares
    /// linear fit of the *raw* AppMult row over `[X - w, X + w]` (window
    /// regression instead of smoothing + central difference); Eq. 6 at the
    /// boundary. On exactly linear rows this equals the central
    /// difference.
    LeastSquares {
        /// Regression half window `w >= 1`.
        window: u32,
    },
    /// Journal extension: Eq. 4 average weighted by profiled operand
    /// marginals (e.g. from `ErrorMetrics::with_marginals`-style
    /// histograms or [`crate::ApproxLinear::operand_histograms`]), so
    /// gradient mass concentrates on operand values the network actually
    /// produces. `wrt_x` tables weight the window by the activation
    /// marginal `x_probs`; `wrt_w` tables by the weight marginal
    /// `w_probs`. Uniform marginals reduce to
    /// [`GradientMode::DifferenceBased`].
    MarginalWeighted {
        /// Half window size of the weighted smoothing window.
        hws: u32,
        /// Weight-operand marginal, `2^B` entries summing to ~1.
        w_probs: Arc<Vec<f64>>,
        /// Activation-operand marginal, `2^B` entries summing to ~1.
        x_probs: Arc<Vec<f64>>,
    },
    /// ApproxTrain-style surrogate: each fixed-`W_f` row is replaced by
    /// its global least-squares linear fit, so the gradient w.r.t. `X` is
    /// a single per-row constant (the regression slope of the whole row).
    /// The roughest member of the family — it cannot see the staircase at
    /// all — but, unlike STE, it does track each row's average gain.
    Surrogate,
    /// User-supplied gradient tables in `(w << B) | x` layout.
    Custom {
        /// `dAM/dW` table, `2^(2B)` entries.
        wrt_w: Arc<Vec<f32>>,
        /// `dAM/dX` table, `2^(2B)` entries.
        wrt_x: Arc<Vec<f32>>,
    },
}

impl GradientMode {
    /// Convenience constructor for the paper's method.
    pub fn difference_based(hws: u32) -> Self {
        GradientMode::DifferenceBased { hws }
    }

    /// Convenience constructor for a kernel-smoothed difference estimator.
    pub fn difference_kernel(hws: u32, kernel: SmoothingKernel) -> Self {
        GradientMode::DifferenceKernel { hws, kernel }
    }

    /// Convenience constructor for the window-regression estimator.
    pub fn least_squares(window: u32) -> Self {
        GradientMode::LeastSquares { window }
    }

    /// Convenience constructor for the marginal-weighted estimator.
    pub fn marginal_weighted(hws: u32, w_probs: Vec<f64>, x_probs: Vec<f64>) -> Self {
        GradientMode::MarginalWeighted {
            hws,
            w_probs: Arc::new(w_probs),
            x_probs: Arc::new(x_probs),
        }
    }

    /// Short identifier used in experiment tables. For the journal-
    /// extension variants this equals [`GradientMode::key`], so the label
    /// is directly usable as a JSON key.
    pub fn label(&self) -> String {
        match self {
            GradientMode::Ste => "STE".into(),
            GradientMode::DifferenceBased { hws } => format!("diff(hws={hws})"),
            GradientMode::RawDifference => "raw-diff".into(),
            GradientMode::DifferenceEdgeClamped { hws } => format!("diff-clamp(hws={hws})"),
            GradientMode::DifferenceKernel { .. }
            | GradientMode::LeastSquares { .. }
            | GradientMode::MarginalWeighted { .. }
            | GradientMode::Surrogate
            | GradientMode::Custom { .. } => self.key(),
        }
    }

    /// Stable identifier usable as a JSON key: lowercase, no spaces,
    /// parentheses, or `=` (e.g. `ste`, `diff_h4`, `tri_h4`, `lsq_w3`,
    /// `marginal_h4`, `surrogate`). Every distinct parameterization has a
    /// distinct key; `grad_matrix` report cells are indexed by it.
    pub fn key(&self) -> String {
        match self {
            GradientMode::Ste => "ste".into(),
            GradientMode::DifferenceBased { hws } => format!("diff_h{hws}"),
            GradientMode::RawDifference => "raw_diff".into(),
            GradientMode::DifferenceEdgeClamped { hws } => format!("diff_clamp_h{hws}"),
            GradientMode::DifferenceKernel { hws, kernel } => {
                format!("{}_h{hws}", kernel.key())
            }
            GradientMode::LeastSquares { window } => format!("lsq_w{window}"),
            GradientMode::MarginalWeighted { hws, .. } => format!("marginal_h{hws}"),
            GradientMode::Surrogate => "surrogate".into(),
            GradientMode::Custom { .. } => "custom".into(),
        }
    }
}

/// Precomputed `dAM/dW` and `dAM/dX` tables for one multiplier.
///
/// Entry `(w << B) | x` of each table holds the partial derivative at that
/// operand pair. Built once per (multiplier, gradient mode) and shared by
/// every approximate layer via `Arc`.
///
/// # Example
///
/// ```
/// use appmult_mult::{zoo, Multiplier};
/// use appmult_retrain::{GradientLut, GradientMode};
///
/// let lut = zoo::mul7u_rm6().to_lut();
/// let g = GradientLut::build(&lut, GradientMode::difference_based(4));
/// // The staircase has a big jump near X = 63 for W_f = 10 (Fig. 3):
/// assert!(g.wrt_x(10, 63) > g.wrt_x(10, 45));
///
/// // STE ignores the staircase entirely:
/// let ste = GradientLut::build(&lut, GradientMode::Ste);
/// assert_eq!(ste.wrt_x(10, 63), 10.0);
/// assert_eq!(ste.wrt_x(10, 45), 10.0);
/// ```
#[derive(Debug, Clone)]
pub struct GradientLut {
    bits: u32,
    wrt_w: Arc<Vec<f32>>,
    wrt_x: Arc<Vec<f32>>,
    mode_label: String,
}

impl GradientLut {
    /// Builds the gradient tables for `lut` under `mode`, using the global
    /// thread pool (`APPMULT_THREADS`).
    ///
    /// # Panics
    ///
    /// Panics if a difference-family mode has a zero half window, or if
    /// [`GradientLut::try_build`] returns an error (wrong `Custom` or
    /// marginal table lengths).
    pub fn build(lut: &MultiplierLut, mode: GradientMode) -> Self {
        Self::build_with_pool(lut, mode, Pool::global())
    }

    /// Like [`GradientLut::build`] with an explicit worker pool. Table rows
    /// (fixed `W_f` slices) are independent, so they are partitioned across
    /// the workers; each entry is written exactly once, making the tables
    /// bit-identical for every thread count.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`GradientLut::build`].
    pub fn build_with_pool(lut: &MultiplierLut, mode: GradientMode, pool: Pool) -> Self {
        match Self::try_build_for(lut, mode, QuantScheme::Unsigned, pool) {
            Ok(g) => g,
            Err(e) => panic!("gradient tables rejected: {e}"),
        }
    }

    /// Builds gradient tables for a signed offset-binary LUT (see
    /// `SignMagnitudeMultiplier::to_offset_lut`): codes represent
    /// `value = code - 2^(B-1)`, so the accurate-gradient (STE) tables are
    /// `dAM/dX = W - 2^(B-1)` instead of the raw code. The
    /// difference-family estimators differentiate the stored table
    /// directly and are scheme-agnostic.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`GradientLut::build`].
    pub fn build_signed(lut: &MultiplierLut, mode: GradientMode) -> Self {
        match Self::try_build_for(lut, mode, QuantScheme::SignedOffset, Pool::global()) {
            Ok(g) => g,
            Err(e) => panic!("gradient tables rejected: {e}"),
        }
    }

    /// Fallible variant of [`GradientLut::build`]: returns a typed error
    /// instead of panicking when `Custom` or marginal tables have the
    /// wrong length.
    ///
    /// # Errors
    ///
    /// Returns [`GradientLutError::LengthMismatch`] naming the offending
    /// table.
    pub fn try_build(lut: &MultiplierLut, mode: GradientMode) -> Result<Self, GradientLutError> {
        Self::try_build_for(lut, mode, QuantScheme::Unsigned, Pool::global())
    }

    /// The full build entry point: explicit quantization scheme (which
    /// only affects the [`GradientMode::Ste`] accurate-gradient tables)
    /// and worker pool.
    ///
    /// # Errors
    ///
    /// Returns [`GradientLutError::LengthMismatch`] for wrong-length
    /// `Custom` or [`GradientMode::MarginalWeighted`] tables.
    ///
    /// # Panics
    ///
    /// Panics if a difference-family mode has a zero half window (a
    /// programming error, unlike data-sized tables which report typed
    /// errors).
    pub fn try_build_for(
        lut: &MultiplierLut,
        mode: GradientMode,
        scheme: QuantScheme,
        pool: Pool,
    ) -> Result<Self, GradientLutError> {
        let obs = appmult_obs::global();
        let _span = obs.span("gradient_lut.build");
        let build_start = obs.is_enabled().then(std::time::Instant::now);
        let bits = lut.bits();
        let n = 1usize << bits;
        let label = mode.label();
        let (wrt_w, wrt_x) = match mode {
            GradientMode::Ste => {
                // Accurate-gradient surrogate: the derivative of the exact
                // product in *value* space. Unsigned codes are their own
                // values; signed offset codes carry value = code - 2^(B-1).
                let half = match scheme {
                    QuantScheme::Unsigned => 0i64,
                    QuantScheme::SignedOffset => (n / 2) as i64,
                };
                let mut gw = vec![0.0f32; n * n];
                let mut gx = vec![0.0f32; n * n];
                for w in 0..n {
                    for x in 0..n {
                        gw[w * n + x] = (x as i64 - half) as f32; // dAM/dW ~ X
                        gx[w * n + x] = (w as i64 - half) as f32; // dAM/dX ~ W
                    }
                }
                (Arc::new(gw), Arc::new(gx))
            }
            GradientMode::DifferenceBased { hws } => {
                assert!(hws >= 1, "half window size must be positive");
                let s = Smoother::Kernel(SmoothingKernel::Box);
                let gx = difference_tables(lut, hws, BoundaryRule::AverageSlope, &s, pool);
                let gw =
                    difference_tables(&lut.transposed(), hws, BoundaryRule::AverageSlope, &s, pool);
                (Arc::new(transpose_table(n, &gw)), Arc::new(gx))
            }
            GradientMode::RawDifference => {
                let gx = raw_difference_tables(lut, pool);
                let gw = raw_difference_tables(&lut.transposed(), pool);
                (Arc::new(transpose_table(n, &gw)), Arc::new(gx))
            }
            GradientMode::DifferenceEdgeClamped { hws } => {
                assert!(hws >= 1, "half window size must be positive");
                let s = Smoother::Kernel(SmoothingKernel::Box);
                let gx = difference_tables(lut, hws, BoundaryRule::ClampToInterior, &s, pool);
                let gw = difference_tables(
                    &lut.transposed(),
                    hws,
                    BoundaryRule::ClampToInterior,
                    &s,
                    pool,
                );
                (Arc::new(transpose_table(n, &gw)), Arc::new(gx))
            }
            GradientMode::DifferenceKernel { hws, kernel } => {
                assert!(hws >= 1, "half window size must be positive");
                let s = Smoother::Kernel(kernel);
                let gx = difference_tables(lut, hws, BoundaryRule::AverageSlope, &s, pool);
                let gw =
                    difference_tables(&lut.transposed(), hws, BoundaryRule::AverageSlope, &s, pool);
                (Arc::new(transpose_table(n, &gw)), Arc::new(gx))
            }
            GradientMode::LeastSquares { window } => {
                assert!(window >= 1, "regression window must be positive");
                let gx = least_squares_tables(lut, window, pool);
                let gw = least_squares_tables(&lut.transposed(), window, pool);
                (Arc::new(transpose_table(n, &gw)), Arc::new(gx))
            }
            GradientMode::MarginalWeighted {
                hws,
                w_probs,
                x_probs,
            } => {
                assert!(hws >= 1, "half window size must be positive");
                for (probs, name) in [(&w_probs, "w_probs"), (&x_probs, "x_probs")] {
                    if probs.len() != n {
                        return Err(GradientLutError::LengthMismatch {
                            table: name,
                            expected: n,
                            got: probs.len(),
                        });
                    }
                }
                // wrt_x: windows slide over X, weighted by the activation
                // marginal. wrt_w: windows slide over W (the transposed
                // table's inner axis), weighted by the weight marginal.
                let sx = Smoother::Weighted(&x_probs);
                let gx = difference_tables(lut, hws, BoundaryRule::AverageSlope, &sx, pool);
                let sw = Smoother::Weighted(&w_probs);
                let gw = difference_tables(
                    &lut.transposed(),
                    hws,
                    BoundaryRule::AverageSlope,
                    &sw,
                    pool,
                );
                (Arc::new(transpose_table(n, &gw)), Arc::new(gx))
            }
            GradientMode::Surrogate => {
                let gx = surrogate_tables(lut, pool);
                let gw = surrogate_tables(&lut.transposed(), pool);
                (Arc::new(transpose_table(n, &gw)), Arc::new(gx))
            }
            GradientMode::Custom { wrt_w, wrt_x } => {
                for (table, name) in [(&wrt_w, "wrt_w"), (&wrt_x, "wrt_x")] {
                    if table.len() != n * n {
                        return Err(GradientLutError::LengthMismatch {
                            table: name,
                            expected: n * n,
                            got: table.len(),
                        });
                    }
                }
                (wrt_w, wrt_x)
            }
        };
        obs.counter_add("gradient_lut.builds", 1);
        if let Some(start) = build_start {
            obs.observe("gradient_lut.build_us", start.elapsed().as_secs_f64() * 1e6);
        }
        Ok(Self {
            bits,
            wrt_w,
            wrt_x,
            mode_label: label,
        })
    }

    /// Operand bit width.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Label of the gradient mode used to build the tables.
    pub fn mode_label(&self) -> &str {
        &self.mode_label
    }

    /// `dAM/dW` at `(w, x)`.
    ///
    /// # Panics
    ///
    /// Panics if an operand does not fit in `B` bits.
    #[inline]
    pub fn wrt_w(&self, w: u32, x: u32) -> f32 {
        let b = self.bits;
        assert!(
            w < (1 << b) && x < (1 << b),
            "operands must fit in {b} bits"
        );
        self.wrt_w[((w as usize) << b) | x as usize]
    }

    /// `dAM/dX` at `(w, x)`.
    ///
    /// # Panics
    ///
    /// Panics if an operand does not fit in `B` bits.
    #[inline]
    pub fn wrt_x(&self, w: u32, x: u32) -> f32 {
        let b = self.bits;
        assert!(
            w < (1 << b) && x < (1 << b),
            "operands must fit in {b} bits"
        );
        self.wrt_x[((w as usize) << b) | x as usize]
    }

    /// Raw `dAM/dW` table in `(w << B) | x` layout.
    pub fn wrt_w_table(&self) -> &Arc<Vec<f32>> {
        &self.wrt_w
    }

    /// Raw `dAM/dX` table in `(w << B) | x` layout.
    pub fn wrt_x_table(&self) -> &Arc<Vec<f32>> {
        &self.wrt_x
    }

    /// Statically validates the tables before they enter the training loop.
    ///
    /// A single NaN/Inf entry silently poisons every gradient that flows
    /// through the operand pair, so the approximate layers
    /// ([`crate::ApproxConv2d`], [`crate::ApproxLinear`]) call this hook at
    /// construction time; the `appmult-verify` crate runs the same check
    /// (plus Eq. 5/6 consistency) as part of the zoo lint.
    ///
    /// # Errors
    ///
    /// Returns [`GradientLutError::NonFinite`] locating the first NaN or
    /// infinite entry, or [`GradientLutError::LengthMismatch`] if a custom
    /// table does not have `2^(2B)` entries.
    pub fn validate(&self) -> Result<(), GradientLutError> {
        let expected = 1usize << (2 * self.bits);
        for (table, name) in [(&self.wrt_w, "wrt_w"), (&self.wrt_x, "wrt_x")] {
            if table.len() != expected {
                return Err(GradientLutError::LengthMismatch {
                    table: name,
                    expected,
                    got: table.len(),
                });
            }
            if let Some(idx) = table.iter().position(|v| !v.is_finite()) {
                let w = (idx >> self.bits) as u32;
                let x = (idx as u32) & ((1 << self.bits) - 1);
                return Err(GradientLutError::NonFinite {
                    table: name,
                    w,
                    x,
                    value: table[idx],
                });
            }
        }
        Ok(())
    }
}

/// Error found by [`GradientLut::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum GradientLutError {
    /// A table entry is NaN or infinite.
    NonFinite {
        /// Which table (`"wrt_w"` or `"wrt_x"`).
        table: &'static str,
        /// First offending weight operand.
        w: u32,
        /// First offending activation operand.
        x: u32,
        /// The offending value.
        value: f32,
    },
    /// A table does not have `2^(2B)` entries.
    LengthMismatch {
        /// Which table (`"wrt_w"` or `"wrt_x"`).
        table: &'static str,
        /// Expected entry count.
        expected: usize,
        /// Actual entry count.
        got: usize,
    },
}

impl fmt::Display for GradientLutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GradientLutError::NonFinite { table, w, x, value } => {
                write!(f, "{table}[w={w}, x={x}] is non-finite ({value})")
            }
            GradientLutError::LengthMismatch {
                table,
                expected,
                got,
            } => {
                write!(f, "{table} has {got} entries, expected {expected}")
            }
        }
    }
}

impl std::error::Error for GradientLutError {}

/// How boundary operands (outside the Eq. 5 domain) are handled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BoundaryRule {
    /// Eq. 6: `(max AM - min AM) / 2^B`, the paper's rule.
    AverageSlope,
    /// Ablation: copy the nearest interior Eq. 5 value.
    ClampToInterior,
}

/// Transposes an `n x n` gradient table from `(x << B) | w` layout back
/// into the canonical `(w << B) | x` layout.
fn transpose_table(n: usize, t: &[f32]) -> Vec<f32> {
    assert_eq!(t.len(), n * n, "table must be n x n");
    let mut out = vec![0.0f32; n * n];
    for x in 0..n {
        for w in 0..n {
            out[w * n + x] = t[x * n + w];
        }
    }
    out
}

/// Minimum table size (elements) below which gradient-table builds run
/// serially: a `2^B x 2^B` table under this bound (4-bit, 6-bit) is a few
/// microseconds of O(1)-per-element work, cheaper than spawning workers.
/// Above it (8-bit: 65536 elements) the parallel build wins.
const TABLE_PAR_FLOOR_ELEMS: usize = 1 << 14;

/// How an Eq. 4 window average weights its members: a fixed kernel shape
/// or profiled operand-marginal probabilities. `Kernel(Box)` reproduces
/// the paper's plain moving average bit-for-bit.
enum Smoother<'a> {
    /// Fixed window kernel (box / triangular / discrete Gaussian).
    Kernel(SmoothingKernel),
    /// Operand-marginal weights over the row's axis (`2^B` entries).
    Weighted(&'a [f64]),
}

impl Smoother<'_> {
    fn smooth(&self, row: &[u32], hws: u32) -> Vec<Option<f64>> {
        match self {
            Smoother::Kernel(k) => smooth_row_kernel(row, hws, *k),
            Smoother::Weighted(probs) => weighted_smooth_row(row, hws, probs),
        }
    }
}

/// Eq. 5 + boundary rule over every row of `lut` (gradient w.r.t. the
/// second operand of the given table). Rows (weight values `w`) are
/// independent and partitioned across the pool's workers.
fn difference_tables(
    lut: &MultiplierLut,
    hws: u32,
    rule: BoundaryRule,
    smoother: &Smoother<'_>,
    pool: Pool,
) -> Vec<f32> {
    let bits = lut.bits();
    let n = 1usize << bits;
    let h = hws as usize;
    let mut out = vec![0.0f32; n * n];
    let pool = pool.with_min_elems(TABLE_PAR_FLOOR_ELEMS);
    pool.run_rows(&mut out, n, |w0, chunk| {
        for (r, out_row) in chunk.chunks_mut(n).enumerate() {
            let w = (w0 + r) as u32;
            let row = lut.row(w);
            let smoothed = smoother.smooth(row, hws);
            let (lo, hi) = row_min_max(row);
            // Eq. 6: average change per unit X over the full operand range.
            let boundary = ((f64::from(hi) - f64::from(lo)) / n as f64) as f32;
            let mut first_interior = None;
            let mut last_interior = None;
            for x in 0..n {
                let interior = x > h && x + h + 1 < n; // HWS < X < 2^B - 1 - HWS
                if interior {
                    let sp = smoothed[x + 1].expect("x + 1 in smoothing domain");
                    let sm = smoothed[x - 1].expect("x - 1 in smoothing domain");
                    out_row[x] = ((sp - sm) / 2.0) as f32;
                    first_interior.get_or_insert(x);
                    last_interior = Some(x);
                } else {
                    out_row[x] = boundary;
                }
            }
            if rule == BoundaryRule::ClampToInterior {
                if let (Some(first), Some(last)) = (first_interior, last_interior) {
                    let (head, tail) = (out_row[first], out_row[last]);
                    for v in &mut out_row[..first] {
                        *v = head;
                    }
                    for v in &mut out_row[last + 1..n] {
                        *v = tail;
                    }
                }
            }
        }
    });
    out
}

/// Ablation: central difference of the raw AppMult row, Eq. 6 at the ends.
fn raw_difference_tables(lut: &MultiplierLut, pool: Pool) -> Vec<f32> {
    let bits = lut.bits();
    let n = 1usize << bits;
    let mut out = vec![0.0f32; n * n];
    let pool = pool.with_min_elems(TABLE_PAR_FLOOR_ELEMS);
    pool.run_rows(&mut out, n, |w0, chunk| {
        for (r, out_row) in chunk.chunks_mut(n).enumerate() {
            let w = (w0 + r) as u32;
            let row = lut.row(w);
            let (lo, hi) = row_min_max(row);
            let boundary = ((f64::from(hi) - f64::from(lo)) / n as f64) as f32;
            for x in 0..n {
                out_row[x] = if x > 0 && x + 1 < n {
                    (f64::from(row[x + 1]) - f64::from(row[x - 1])) as f32 / 2.0
                } else {
                    boundary
                };
            }
        }
    });
    out
}

/// Journal extension: the gradient at `X` is the slope of the
/// least-squares linear fit of the raw row over `[X - w, X + w]`
/// (`slope = sum(d * y[x+d]) / sum(d^2)`, `d = -w..=w`); Eq. 6 where the
/// window does not fit. On an exactly linear row this reduces to the
/// central difference (the antisymmetric weights cancel the intercept).
fn least_squares_tables(lut: &MultiplierLut, window: u32, pool: Pool) -> Vec<f32> {
    let bits = lut.bits();
    let n = 1usize << bits;
    let w_us = window as usize;
    // sum over d = -w..=w of d^2.
    let denom: f64 = (1..=i64::from(window)).map(|d| 2.0 * (d * d) as f64).sum();
    let mut out = vec![0.0f32; n * n];
    let pool = pool.with_min_elems(TABLE_PAR_FLOOR_ELEMS);
    pool.run_rows(&mut out, n, |w0, chunk| {
        for (r, out_row) in chunk.chunks_mut(n).enumerate() {
            let w = (w0 + r) as u32;
            let row = lut.row(w);
            let (lo, hi) = row_min_max(row);
            let boundary = ((f64::from(hi) - f64::from(lo)) / n as f64) as f32;
            for x in 0..n {
                out_row[x] = if x >= w_us && x + w_us < n {
                    let mut num = 0.0f64;
                    for d in 1..=w_us {
                        num += d as f64 * (f64::from(row[x + d]) - f64::from(row[x - d]));
                    }
                    (num / denom) as f32
                } else {
                    boundary
                };
            }
        }
    });
    out
}

/// ApproxTrain-style surrogate: each row is replaced by its global
/// least-squares linear fit, so the whole row shares one gradient value
/// (the fit's slope). Row sums run in index order, so the tables stay
/// bit-identical at every thread count.
fn surrogate_tables(lut: &MultiplierLut, pool: Pool) -> Vec<f32> {
    let bits = lut.bits();
    let n = 1usize << bits;
    let mean = (n as f64 - 1.0) / 2.0;
    let denom: f64 = (0..n).map(|x| (x as f64 - mean) * (x as f64 - mean)).sum();
    let mut out = vec![0.0f32; n * n];
    let pool = pool.with_min_elems(TABLE_PAR_FLOOR_ELEMS);
    pool.run_rows(&mut out, n, |w0, chunk| {
        for (r, out_row) in chunk.chunks_mut(n).enumerate() {
            let w = (w0 + r) as u32;
            let row = lut.row(w);
            let mut num = 0.0f64;
            for (x, &v) in row.iter().enumerate() {
                num += (x as f64 - mean) * f64::from(v);
            }
            let slope = (num / denom) as f32;
            out_row.fill(slope);
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use appmult_mult::{ExactMultiplier, Multiplier, TruncatedMultiplier};

    #[test]
    fn ste_tables_are_the_accurate_gradient() {
        let lut = TruncatedMultiplier::new(6, 4).to_lut();
        let g = GradientLut::build(&lut, GradientMode::Ste);
        for w in 0..64 {
            for x in 0..64 {
                assert_eq!(g.wrt_w(w, x), x as f32);
                assert_eq!(g.wrt_x(w, x), w as f32);
            }
        }
    }

    #[test]
    fn exact_multiplier_difference_gradient_tracks_ste() {
        // For the exact multiplier, AM(W, X) = W X, so the smoothed central
        // difference is exactly W in the interior.
        let lut = ExactMultiplier::new(7).to_lut();
        let g = GradientLut::build(&lut, GradientMode::difference_based(4));
        for w in [0u32, 5, 10, 100, 127] {
            for x in [6u32, 20, 64, 100, 122] {
                // interior: x > 4 and x < 122... keep x <= 122 for hws=4
                let expect = w as f32;
                assert!(
                    (g.wrt_x(w, x) - expect).abs() < 1e-3,
                    "w={w} x={x}: {} vs {expect}",
                    g.wrt_x(w, x)
                );
            }
        }
    }

    #[test]
    fn boundary_uses_eq6_average_slope() {
        let lut = ExactMultiplier::new(6).to_lut();
        let g = GradientLut::build(&lut, GradientMode::difference_based(4));
        // For W = 9 the row spans 0 ..= 9 * 63; Eq. 6 gives 9*63/64.
        let expect = (9.0 * 63.0) / 64.0;
        for x in [0u32, 2, 4, 59, 60, 63] {
            assert!(
                (g.wrt_x(9, x) - expect).abs() < 1e-4,
                "x={x}: {} vs {expect}",
                g.wrt_x(9, x)
            );
        }
        // With HWS = 4, Eq. 5's domain is X > HWS, so X = 4 is the last
        // boundary operand and X = 5 is already interior: it takes the
        // smoothed central difference (exactly W = 9 for the exact
        // multiplier), not the Eq. 6 average slope.
        assert!((g.wrt_x(9, 4) - expect).abs() < 1e-4);
        assert!(
            (g.wrt_x(9, 5) - expect).abs() > 1e-2,
            "X = 5 must not use the Eq. 6 boundary value, got {}",
            g.wrt_x(9, 5)
        );
        assert!((g.wrt_x(9, 5) - 9.0).abs() < 1e-3);
    }

    #[test]
    fn fig3_peaks_at_staircase_jumps() {
        // Fig. 3(b): for mul7u_rm6 and W_f = 10, the difference-based
        // gradient has large values around X = 31, 63, 95 and small values
        // on the plateaus; STE is constant 10.
        let lut = TruncatedMultiplier::new(7, 6).to_lut();
        let g = GradientLut::build(&lut, GradientMode::difference_based(4));
        let peak = |x: u32| g.wrt_x(10, x);
        // For W_f = 10 the function AM(10, X) = 64 x3 + 128 x4 + 320 x5 +
        // 640 x6 (bits of X), so the big +128 jumps sit at X = 31 -> 32,
        // 63 -> 64, 95 -> 96 on top of +64 steps every 8.
        for jump in [31u32, 63, 95] {
            let near: f32 = (jump - 1..=jump + 1).map(peak).fold(0.0, f32::max);
            let plateau = peak(jump - 12).abs().max(peak(jump + 12).abs());
            assert!(
                near > 1.15 * plateau.max(1.0),
                "jump {jump}: near {near} vs plateau {plateau}"
            );
        }
        // And the peaks clearly exceed the Eq. 6 average slope (960 / 128).
        let avg = 960.0 / 128.0;
        for jump in [31u32, 63, 95] {
            let near: f32 = (jump - 1..=jump + 1).map(peak).fold(0.0, f32::max);
            assert!(near > 1.5 * avg, "jump {jump}: near {near} vs avg {avg}");
        }
    }

    #[test]
    fn row_zero_of_truncated_multiplier_has_zero_gradient() {
        // AM(0, X) = 0 for all X, so both Eq. 5 and Eq. 6 give 0.
        let lut = TruncatedMultiplier::new(7, 6).to_lut();
        let g = GradientLut::build(&lut, GradientMode::difference_based(2));
        for x in 0..128 {
            assert_eq!(g.wrt_x(0, x), 0.0);
        }
    }

    #[test]
    fn oversized_hws_falls_back_to_eq6_everywhere() {
        let lut = TruncatedMultiplier::new(6, 4).to_lut();
        let g = GradientLut::build(&lut, GradientMode::difference_based(32));
        let row = lut.row(20);
        let (lo, hi) = (
            row.iter().min().copied().expect("nonempty"),
            row.iter().max().copied().expect("nonempty"),
        );
        let expect = (hi - lo) as f32 / 64.0;
        for x in 0..64 {
            assert!((g.wrt_x(20, x) - expect).abs() < 1e-4, "x={x}");
        }
    }

    #[test]
    fn raw_difference_has_zero_plateaus() {
        // The ablation mode shows the pathology Eq. 4 fixes: zero gradient
        // on staircase plateaus.
        let lut = TruncatedMultiplier::new(7, 6).to_lut();
        let g = GradientLut::build(&lut, GradientMode::RawDifference);
        let zeros = (1..127).filter(|&x| g.wrt_x(10, x) == 0.0).count();
        assert!(
            zeros > 40,
            "expected many zero-gradient plateaus, got {zeros}"
        );

        // And the smoothed version has far fewer.
        let gs = GradientLut::build(&lut, GradientMode::difference_based(4));
        let smooth_zeros = (5..122).filter(|&x| gs.wrt_x(10, x) == 0.0).count();
        assert!(smooth_zeros < zeros / 4, "{smooth_zeros} vs {zeros}");
    }

    #[test]
    fn wrt_w_is_wrt_x_of_the_transpose() {
        let lut = TruncatedMultiplier::new(6, 3).to_lut();
        let g = GradientLut::build(&lut, GradientMode::difference_based(2));
        let gt = GradientLut::build(&lut.transposed(), GradientMode::difference_based(2));
        for w in 0..64 {
            for x in 0..64 {
                assert_eq!(g.wrt_w(w, x), gt.wrt_x(x, w), "w={w} x={x}");
            }
        }
    }

    #[test]
    fn edge_clamped_matches_paper_rule_in_the_interior() {
        let lut = TruncatedMultiplier::new(6, 4).to_lut();
        let paper = GradientLut::build(&lut, GradientMode::difference_based(4));
        let clamp = GradientLut::build(&lut, GradientMode::DifferenceEdgeClamped { hws: 4 });
        for w in 0..64u32 {
            for x in 0..64u32 {
                let interior = x > 4 && x < 59;
                if interior {
                    assert_eq!(paper.wrt_x(w, x), clamp.wrt_x(w, x), "w={w} x={x}");
                }
            }
        }
        // At the boundary the ablation copies the nearest interior value.
        assert_eq!(clamp.wrt_x(20, 0), clamp.wrt_x(20, 5));
        assert_eq!(clamp.wrt_x(20, 63), clamp.wrt_x(20, 58));
        assert_eq!(clamp.mode_label(), "diff-clamp(hws=4)");
    }

    #[test]
    fn parallel_build_is_bit_identical_to_serial() {
        // 64 rows across worker counts that do not divide it evenly.
        let lut = TruncatedMultiplier::new(6, 4).to_lut();
        let modes = [
            GradientMode::difference_based(3),
            GradientMode::RawDifference,
            GradientMode::DifferenceEdgeClamped { hws: 2 },
            GradientMode::Ste,
        ];
        for mode in modes {
            let serial = GradientLut::build_with_pool(&lut, mode.clone(), Pool::serial());
            for threads in [2usize, 3, 5, 7, 64, 100] {
                let par = GradientLut::build_with_pool(&lut, mode.clone(), Pool::new(threads));
                let bits_of = |t: &[f32]| -> Vec<u32> { t.iter().map(|v| v.to_bits()).collect() };
                assert_eq!(
                    bits_of(serial.wrt_w_table()),
                    bits_of(par.wrt_w_table()),
                    "wrt_w {} threads={threads}",
                    mode.label()
                );
                assert_eq!(
                    bits_of(serial.wrt_x_table()),
                    bits_of(par.wrt_x_table()),
                    "wrt_x {} threads={threads}",
                    mode.label()
                );
            }
        }
    }

    #[test]
    fn validate_accepts_every_builtin_mode() {
        let lut = TruncatedMultiplier::new(6, 4).to_lut();
        for mode in [
            GradientMode::Ste,
            GradientMode::difference_based(4),
            GradientMode::RawDifference,
            GradientMode::DifferenceEdgeClamped { hws: 2 },
        ] {
            let g = GradientLut::build(&lut, mode);
            assert_eq!(g.validate(), Ok(()));
        }
    }

    #[test]
    fn validate_locates_non_finite_entries() {
        let lut = ExactMultiplier::new(4).to_lut();
        let mut bad = vec![1.0f32; 256];
        bad[(3 << 4) | 7] = f32::NAN;
        let g = GradientLut::build(
            &lut,
            GradientMode::Custom {
                wrt_w: Arc::new(vec![1.0; 256]),
                wrt_x: Arc::new(bad),
            },
        );
        match g.validate() {
            Err(GradientLutError::NonFinite { table, w, x, .. }) => {
                assert_eq!(table, "wrt_x");
                assert_eq!((w, x), (3, 7));
            }
            other => panic!("expected NonFinite, got {other:?}"),
        }
    }

    #[test]
    fn custom_tables_pass_through() {
        let lut = ExactMultiplier::new(4).to_lut();
        let table = Arc::new(vec![2.5f32; 256]);
        let g = GradientLut::build(
            &lut,
            GradientMode::Custom {
                wrt_w: table.clone(),
                wrt_x: table,
            },
        );
        assert_eq!(g.wrt_w(3, 9), 2.5);
        assert_eq!(g.wrt_x(15, 0), 2.5);
        assert_eq!(g.mode_label(), "custom");
    }

    #[test]
    fn custom_tables_report_typed_length_errors() {
        let lut = ExactMultiplier::new(4).to_lut();
        let bad = Arc::new(vec![0.0f32; 10]);
        let err = GradientLut::try_build(
            &lut,
            GradientMode::Custom {
                wrt_w: bad.clone(),
                wrt_x: bad,
            },
        )
        .expect_err("short tables must be rejected");
        assert_eq!(
            err,
            GradientLutError::LengthMismatch {
                table: "wrt_w",
                expected: 256,
                got: 10,
            }
        );
        assert_eq!(err.to_string(), "wrt_w has 10 entries, expected 256");
    }

    #[test]
    #[should_panic(expected = "gradient tables rejected")]
    fn custom_tables_validate_length() {
        let lut = ExactMultiplier::new(4).to_lut();
        let bad = Arc::new(vec![0.0f32; 10]);
        GradientLut::build(
            &lut,
            GradientMode::Custom {
                wrt_w: bad.clone(),
                wrt_x: bad,
            },
        );
    }

    #[test]
    fn marginal_tables_report_typed_length_errors() {
        let lut = ExactMultiplier::new(4).to_lut();
        let err = GradientLut::try_build(
            &lut,
            GradientMode::marginal_weighted(2, vec![1.0 / 16.0; 16], vec![1.0 / 8.0; 8]),
        )
        .expect_err("short x_probs must be rejected");
        assert_eq!(
            err,
            GradientLutError::LengthMismatch {
                table: "x_probs",
                expected: 16,
                got: 8,
            }
        );
    }

    #[test]
    fn box_kernel_variant_is_bit_identical_to_difference_based() {
        let lut = TruncatedMultiplier::new(7, 6).to_lut();
        let paper = GradientLut::build(&lut, GradientMode::difference_based(4));
        let boxed = GradientLut::build(
            &lut,
            GradientMode::difference_kernel(4, SmoothingKernel::Box),
        );
        let bits_of = |t: &[f32]| -> Vec<u32> { t.iter().map(|v| v.to_bits()).collect() };
        assert_eq!(bits_of(paper.wrt_w_table()), bits_of(boxed.wrt_w_table()));
        assert_eq!(bits_of(paper.wrt_x_table()), bits_of(boxed.wrt_x_table()));
    }

    #[test]
    fn kernel_estimators_track_ste_on_the_exact_multiplier() {
        // AM(W, X) = W X is linear in each operand, so every smoothing
        // kernel and the window regression must recover exactly W in the
        // interior.
        let lut = ExactMultiplier::new(6).to_lut();
        for mode in [
            GradientMode::difference_kernel(3, SmoothingKernel::Triangular),
            GradientMode::difference_kernel(3, SmoothingKernel::Gaussian),
            GradientMode::least_squares(3),
        ] {
            let g = GradientLut::build(&lut, mode.clone());
            for w in [0u32, 7, 33, 63] {
                for x in [8u32, 20, 40, 55] {
                    assert!(
                        (g.wrt_x(w, x) - w as f32).abs() < 1e-3,
                        "{}: w={w} x={x}: {}",
                        mode.key(),
                        g.wrt_x(w, x)
                    );
                }
            }
        }
    }

    #[test]
    fn least_squares_window_one_is_the_raw_central_difference() {
        let lut = TruncatedMultiplier::new(6, 4).to_lut();
        let lsq = GradientLut::build(&lut, GradientMode::least_squares(1));
        let raw = GradientLut::build(&lut, GradientMode::RawDifference);
        for w in 0..64u32 {
            for x in 1..63u32 {
                assert_eq!(lsq.wrt_x(w, x), raw.wrt_x(w, x), "w={w} x={x}");
            }
        }
    }

    #[test]
    fn surrogate_rows_are_constant_and_exact_on_the_exact_multiplier() {
        let lut = ExactMultiplier::new(6).to_lut();
        let g = GradientLut::build(&lut, GradientMode::Surrogate);
        for w in 0..64u32 {
            // Row w is exactly linear with slope w: the global fit is exact
            // and shared by every X.
            for x in 0..64u32 {
                assert!(
                    (g.wrt_x(w, x) - w as f32).abs() < 1e-3,
                    "w={w} x={x}: {}",
                    g.wrt_x(w, x)
                );
            }
        }
    }

    #[test]
    fn uniform_marginals_match_difference_based() {
        let lut = TruncatedMultiplier::new(6, 4).to_lut();
        let uniform = vec![1.0 / 64.0; 64];
        let g = GradientLut::build(
            &lut,
            GradientMode::marginal_weighted(4, uniform.clone(), uniform),
        );
        let paper = GradientLut::build(&lut, GradientMode::difference_based(4));
        for w in 0..64u32 {
            for x in 0..64u32 {
                assert!(
                    (g.wrt_x(w, x) - paper.wrt_x(w, x)).abs() < 1e-3,
                    "wrt_x w={w} x={x}"
                );
                assert!(
                    (g.wrt_w(w, x) - paper.wrt_w(w, x)).abs() < 1e-3,
                    "wrt_w w={w} x={x}"
                );
            }
        }
    }

    #[test]
    fn signed_ste_tables_subtract_the_offset() {
        use appmult_mult::SignMagnitudeMultiplier;
        let signed = SignMagnitudeMultiplier::new(ExactMultiplier::new(6));
        let lut = signed.to_offset_lut();
        let g = GradientLut::build_signed(&lut, GradientMode::Ste);
        for w in 0..64u32 {
            for x in 0..64u32 {
                assert_eq!(g.wrt_x(w, x), w as f32 - 32.0, "w={w} x={x}");
                assert_eq!(g.wrt_w(w, x), x as f32 - 32.0, "w={w} x={x}");
            }
        }
    }

    #[test]
    fn signed_difference_tables_track_the_signed_value() {
        // Offset rows store (w - 32)(x - 32) + 2048: linear in X with slope
        // (w - 32), which the difference estimator recovers unchanged —
        // the additive offset cancels in every difference.
        use appmult_mult::SignMagnitudeMultiplier;
        let signed = SignMagnitudeMultiplier::new(ExactMultiplier::new(6));
        let lut = signed.to_offset_lut();
        let g = GradientLut::build_signed(&lut, GradientMode::difference_based(4));
        for w in [0u32, 10, 32, 50, 63] {
            for x in [8u32, 20, 40, 55] {
                let expect = w as f32 - 32.0;
                assert!(
                    (g.wrt_x(w, x) - expect).abs() < 1e-3,
                    "w={w} x={x}: {} vs {expect}",
                    g.wrt_x(w, x)
                );
            }
        }
    }

    #[test]
    fn new_modes_parallel_build_is_bit_identical_to_serial() {
        let lut = TruncatedMultiplier::new(6, 4).to_lut();
        let marg: Vec<f64> = (0..64).map(|i| (i + 1) as f64 / 2080.0).collect();
        let modes = [
            GradientMode::difference_kernel(3, SmoothingKernel::Triangular),
            GradientMode::difference_kernel(3, SmoothingKernel::Gaussian),
            GradientMode::least_squares(2),
            GradientMode::marginal_weighted(3, marg.clone(), marg),
            GradientMode::Surrogate,
        ];
        for mode in modes {
            let serial = GradientLut::build_with_pool(&lut, mode.clone(), Pool::serial());
            for threads in [3usize, 7, 64] {
                let par = GradientLut::build_with_pool(&lut, mode.clone(), Pool::new(threads));
                let bits_of = |t: &[f32]| -> Vec<u32> { t.iter().map(|v| v.to_bits()).collect() };
                assert_eq!(
                    bits_of(serial.wrt_w_table()),
                    bits_of(par.wrt_w_table()),
                    "wrt_w {} threads={threads}",
                    mode.key()
                );
                assert_eq!(
                    bits_of(serial.wrt_x_table()),
                    bits_of(par.wrt_x_table()),
                    "wrt_x {} threads={threads}",
                    mode.key()
                );
            }
        }
    }

    #[test]
    fn keys_are_stable_json_safe_identifiers() {
        let uniform = vec![1.0 / 64.0; 64];
        let cases = [
            (GradientMode::Ste, "ste"),
            (GradientMode::difference_based(4), "diff_h4"),
            (GradientMode::RawDifference, "raw_diff"),
            (
                GradientMode::DifferenceEdgeClamped { hws: 2 },
                "diff_clamp_h2",
            ),
            (
                GradientMode::difference_kernel(4, SmoothingKernel::Box),
                "box_h4",
            ),
            (
                GradientMode::difference_kernel(4, SmoothingKernel::Triangular),
                "tri_h4",
            ),
            (
                GradientMode::difference_kernel(4, SmoothingKernel::Gaussian),
                "gauss_h4",
            ),
            (GradientMode::least_squares(3), "lsq_w3"),
            (
                GradientMode::marginal_weighted(4, uniform.clone(), uniform),
                "marginal_h4",
            ),
            (GradientMode::Surrogate, "surrogate"),
        ];
        for (mode, key) in cases {
            assert_eq!(mode.key(), key);
            assert!(
                key.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
                "{key}"
            );
            // New-family labels equal their keys; classic labels stay as
            // published in the paper-era reports.
            if !matches!(
                mode,
                GradientMode::Ste
                    | GradientMode::DifferenceBased { .. }
                    | GradientMode::RawDifference
                    | GradientMode::DifferenceEdgeClamped { .. }
            ) {
                assert_eq!(mode.label(), key);
            }
        }
    }

    #[test]
    fn validate_accepts_every_new_mode() {
        let lut = TruncatedMultiplier::new(6, 4).to_lut();
        let uniform = vec![1.0 / 64.0; 64];
        for mode in [
            GradientMode::difference_kernel(3, SmoothingKernel::Triangular),
            GradientMode::difference_kernel(3, SmoothingKernel::Gaussian),
            GradientMode::least_squares(3),
            GradientMode::marginal_weighted(3, uniform.clone(), uniform),
            GradientMode::Surrogate,
        ] {
            let g = GradientLut::build(&lut, mode);
            assert_eq!(g.validate(), Ok(()));
        }
    }
}
