//! Resilient-retraining policy: NaN guards and divergence rollback.
//!
//! Retraining against defective hardware (see `FaultyMultiplier` in
//! `appmult-mult`) routinely produces wild products, which turn into
//! non-finite losses and exploding gradients. [`ResiliencePolicy`] hardens
//! the [`crate::retrain`] loop against this:
//!
//! * **Gradient scrubbing** — after every backward pass, non-finite
//!   gradient entries are zeroed and the global gradient norm is clipped,
//!   so a single poisoned batch cannot destroy the weights.
//! * **Divergence rollback** — the best-loss parameters are checkpointed
//!   in memory (via `appmult-nn`'s serializer); when an epoch's loss is
//!   non-finite, contains non-finite batches, or exceeds
//!   `divergence_factor x` the best loss for `divergence_patience`
//!   consecutive epochs, the model is rolled back to that checkpoint and
//!   the learning rate is scaled down by `lr_backoff`.
//!
//! The policy is opt-in (`RetrainConfig::resilience` defaults to `None`),
//! and a disabled policy leaves the legacy loop numerics bit-for-bit
//! unchanged.

use appmult_nn::serialize::{load_params, save_params};
use appmult_nn::Module;

/// Configuration of the NaN-guard and rollback behaviour of the retraining
/// loop.
#[derive(Debug, Clone, PartialEq)]
pub struct ResiliencePolicy {
    /// Clip the global gradient L2 norm to this value after scrubbing
    /// (`None` disables clipping).
    pub max_grad_norm: Option<f32>,
    /// An epoch whose loss exceeds `divergence_factor * best_loss` counts
    /// as bad; see [`ResiliencePolicy::divergence_patience`].
    pub divergence_factor: f64,
    /// Number of consecutive bad epochs that triggers a rollback. A
    /// non-finite epoch loss triggers one immediately, regardless.
    pub divergence_patience: usize,
    /// Learning-rate multiplier applied at every rollback (compounding).
    pub lr_backoff: f32,
    /// Rollback budget for the whole run; once exhausted, training
    /// continues with scrubbing only.
    pub max_rollbacks: usize,
}

impl Default for ResiliencePolicy {
    fn default() -> Self {
        Self {
            max_grad_norm: Some(100.0),
            divergence_factor: 4.0,
            divergence_patience: 2,
            lr_backoff: 0.5,
            max_rollbacks: 3,
        }
    }
}

/// Zeroes non-finite gradient entries and clips the global gradient norm.
/// Returns the number of entries scrubbed.
pub(crate) fn scrub_and_clip(model: &mut dyn Module, max_grad_norm: Option<f32>) -> usize {
    let obs = appmult_obs::global();
    let mut scrubbed = 0usize;
    let mut sq_sum = 0f64;
    model.visit_params(&mut |p| {
        for g in p.grad.as_mut_slice() {
            if g.is_finite() {
                sq_sum += f64::from(*g) * f64::from(*g);
            } else {
                *g = 0.0;
                scrubbed += 1;
            }
        }
    });
    if let Some(max) = max_grad_norm {
        let norm = sq_sum.sqrt();
        if norm > f64::from(max) {
            let scale = (f64::from(max) / norm) as f32;
            model.visit_params(&mut |p| {
                for g in p.grad.as_mut_slice() {
                    *g *= scale;
                }
            });
            obs.counter_add("resilience.norm_clips", 1);
        }
    }
    if scrubbed > 0 {
        obs.counter_add("resilience.scrubbed_grads", scrubbed as u64);
    }
    scrubbed
}

/// Tracks loss trajectory, the in-memory best checkpoint, and the rollback
/// budget of one retraining run.
#[derive(Debug)]
pub(crate) struct RollbackGuard {
    policy: ResiliencePolicy,
    best_loss: f64,
    best_checkpoint: Vec<u8>,
    consecutive_bad: usize,
    rollbacks_used: usize,
    /// Compounded learning-rate multiplier from past rollbacks.
    pub lr_scale: f32,
}

impl RollbackGuard {
    /// Captures the initial parameters so even a first-epoch divergence has
    /// somewhere safe to return to.
    pub fn new(policy: ResiliencePolicy, model: &mut dyn Module) -> Self {
        Self {
            best_loss: f64::INFINITY,
            best_checkpoint: checkpoint(model),
            consecutive_bad: 0,
            rollbacks_used: 0,
            lr_scale: 1.0,
            policy,
        }
    }

    /// Number of entries scrubbed from the model's current gradients.
    pub fn scrub(&self, model: &mut dyn Module) -> usize {
        scrub_and_clip(model, self.policy.max_grad_norm)
    }

    /// Observes one finished epoch. `epoch_loss` is the mean loss over the
    /// finite batches; `had_nonfinite` reports whether any batch loss was
    /// non-finite. Returns the number of rollbacks performed (0 or 1).
    pub fn observe_epoch(
        &mut self,
        model: &mut dyn Module,
        epoch_loss: f64,
        had_nonfinite: bool,
    ) -> usize {
        let hard = had_nonfinite || !epoch_loss.is_finite();
        let soft = if hard {
            false
        } else if self.best_loss.is_finite()
            && epoch_loss > self.policy.divergence_factor * self.best_loss
        {
            self.consecutive_bad += 1;
            self.consecutive_bad >= self.policy.divergence_patience
        } else {
            self.consecutive_bad = 0;
            false
        };

        if (hard || soft) && self.rollbacks_used < self.policy.max_rollbacks {
            load_params(model, self.best_checkpoint.as_slice())
                .expect("in-memory checkpoint round-trip");
            self.lr_scale *= self.policy.lr_backoff;
            self.rollbacks_used += 1;
            self.consecutive_bad = 0;
            let obs = appmult_obs::global();
            obs.counter_add("resilience.rollbacks", 1);
            obs.event(
                "rollback",
                &[
                    ("epoch_loss", epoch_loss.into()),
                    ("best_loss", self.best_loss.into()),
                    ("hard", hard.into()),
                    ("lr_scale", self.lr_scale.into()),
                    ("rollbacks_used", self.rollbacks_used.into()),
                ],
            );
            return 1;
        }
        if !hard && epoch_loss < self.best_loss {
            self.best_loss = epoch_loss;
            self.best_checkpoint = checkpoint(model);
        }
        0
    }
}

fn checkpoint(model: &mut dyn Module) -> Vec<u8> {
    let mut buf = Vec::new();
    save_params(model, &mut buf).expect("in-memory serialization cannot fail");
    buf
}

#[cfg(test)]
mod tests {
    use super::*;
    use appmult_nn::layers::{Linear, Sequential};
    use appmult_nn::optim::{Adam, Optimizer, Sgd};
    use appmult_nn::Tensor;

    fn model() -> Sequential {
        Sequential::new().push(Linear::new(3, 2, 7))
    }

    fn params_of(m: &mut Sequential) -> Vec<Tensor> {
        let mut v = vec![];
        m.visit_params(&mut |p| v.push(p.value.clone()));
        v
    }

    fn poison_grads(m: &mut Sequential) {
        m.visit_params(&mut |p| {
            let s = p.grad.as_mut_slice();
            s[0] = f32::NAN;
            s[1] = f32::INFINITY;
            for g in s.iter_mut().skip(2) {
                *g = 1.0;
            }
        });
    }

    #[test]
    fn scrubbing_zeroes_nonfinite_and_counts_them() {
        let mut m = model();
        poison_grads(&mut m);
        let scrubbed = scrub_and_clip(&mut m, None);
        assert_eq!(scrubbed, 4); // 2 poisoned entries in each of 2 params
        m.visit_params(&mut |p| {
            assert!(p.grad.as_slice().iter().all(|g| g.is_finite()));
        });
    }

    #[test]
    fn clipping_bounds_the_global_norm() {
        let mut m = model();
        m.visit_params(&mut |p| p.grad.map_inplace(|_| 10.0));
        scrub_and_clip(&mut m, Some(1.0));
        let mut sq = 0f64;
        m.visit_params(&mut |p| {
            sq += p
                .grad
                .as_slice()
                .iter()
                .map(|&g| f64::from(g) * f64::from(g))
                .sum::<f64>();
        });
        assert!((sq.sqrt() - 1.0).abs() < 1e-4, "norm {}", sq.sqrt());
    }

    #[test]
    fn clipping_leaves_small_gradients_alone() {
        let mut m = model();
        m.visit_params(&mut |p| p.grad.map_inplace(|_| 0.01));
        let before: Vec<Tensor> = {
            let mut v = vec![];
            m.visit_params(&mut |p| v.push(p.grad.clone()));
            v
        };
        scrub_and_clip(&mut m, Some(100.0));
        let mut after = vec![];
        m.visit_params(&mut |p| after.push(p.grad.clone()));
        assert_eq!(before, after);
    }

    #[test]
    fn nonfinite_epoch_rolls_back_to_best() {
        let mut m = model();
        let mut guard = RollbackGuard::new(ResiliencePolicy::default(), &mut m);
        // Epoch 1: healthy, becomes the best checkpoint.
        assert_eq!(guard.observe_epoch(&mut m, 1.0, false), 0);
        let best = params_of(&mut m);
        // The model then drifts and the next epoch is poisoned.
        m.visit_params(&mut |p| p.value.map_inplace(|v| v + 5.0));
        assert_eq!(guard.observe_epoch(&mut m, f64::NAN, true), 1);
        assert_eq!(params_of(&mut m), best, "weights restored from checkpoint");
        assert!((guard.lr_scale - 0.5).abs() < 1e-6);
    }

    #[test]
    fn soft_divergence_needs_patience() {
        let mut m = model();
        let policy = ResiliencePolicy {
            divergence_factor: 2.0,
            divergence_patience: 2,
            ..ResiliencePolicy::default()
        };
        let mut guard = RollbackGuard::new(policy, &mut m);
        assert_eq!(guard.observe_epoch(&mut m, 1.0, false), 0);
        // One bad epoch: tolerated. Two in a row: rollback.
        assert_eq!(guard.observe_epoch(&mut m, 5.0, false), 0);
        assert_eq!(guard.observe_epoch(&mut m, 5.0, false), 1);
        // A recovery epoch resets the streak.
        assert_eq!(guard.observe_epoch(&mut m, 1.5, false), 0);
        assert_eq!(guard.observe_epoch(&mut m, 5.0, false), 0);
    }

    /// Fills every gradient with a deterministic ramp so optimizer steps
    /// are reproducible across the actual and reference runs.
    fn set_ramp_grads(m: &mut Sequential, scale: f32) {
        m.visit_params(&mut |p| {
            for (i, g) in p.grad.as_mut_slice().iter_mut().enumerate() {
                *g = scale * (i as f32 + 1.0);
            }
        });
    }

    /// A rollback restores parameters bit-for-bit while the optimizer keeps
    /// its accumulated state (momentum / Adam moments). The first step after
    /// a rollback must therefore equal a step taken from (checkpoint
    /// parameters, the optimizer state at divergence time) — verified here
    /// against a hand-built reference for both SGD and Adam.
    fn rollback_round_trips_optimizer_state<O: Optimizer + Clone>(mut opt: O) {
        let mut m = model();
        let mut guard = RollbackGuard::new(ResiliencePolicy::default(), &mut m);

        // Warm the optimizer state with a few deterministic steps.
        for step in 0..3 {
            set_ramp_grads(&mut m, 0.1 * (step + 1) as f32);
            opt.step(&mut m);
        }
        // A healthy epoch captures the checkpoint.
        assert_eq!(guard.observe_epoch(&mut m, 1.0, false), 0);
        let checkpoint_params = params_of(&mut m);

        // Further steps drift the weights and advance the optimizer state.
        for step in 0..3 {
            set_ramp_grads(&mut m, 0.2 * (step + 1) as f32);
            opt.step(&mut m);
        }
        let opt_at_divergence = opt.clone();

        // The poisoned epoch rolls the parameters back through the
        // serializer round trip...
        assert_eq!(guard.observe_epoch(&mut m, f64::NAN, true), 1);
        assert_eq!(
            params_of(&mut m),
            checkpoint_params,
            "rollback must restore parameters bit-for-bit"
        );

        // ...and the next step must match the reference exactly.
        let mut reference = model();
        let mut it = checkpoint_params.into_iter();
        reference.visit_params(&mut |p| p.value = it.next().expect("same architecture"));
        let mut ref_opt = opt_at_divergence;
        set_ramp_grads(&mut m, 0.3);
        set_ramp_grads(&mut reference, 0.3);
        opt.step(&mut m);
        ref_opt.step(&mut reference);
        assert_eq!(
            params_of(&mut m),
            params_of(&mut reference),
            "post-rollback step must be reproducible from (checkpoint, state)"
        );
    }

    #[test]
    fn sgd_state_round_trips_through_a_rollback() {
        rollback_round_trips_optimizer_state(Sgd::new(0.05, 0.9));
    }

    #[test]
    fn adam_state_round_trips_through_a_rollback() {
        rollback_round_trips_optimizer_state(Adam::new(0.01));
    }

    #[test]
    fn rollback_budget_is_respected() {
        let mut m = model();
        let policy = ResiliencePolicy {
            max_rollbacks: 2,
            ..ResiliencePolicy::default()
        };
        let mut guard = RollbackGuard::new(policy, &mut m);
        let mut total = 0;
        for _ in 0..5 {
            total += guard.observe_epoch(&mut m, f64::INFINITY, true);
        }
        assert_eq!(total, 2);
        assert!((guard.lr_scale - 0.25).abs() < 1e-6);
    }
}
