//! LUT-based approximate layers (the Fig. 4 dataflow).
//!
//! Forward: fake-quantize weights and activations (Eq. 7), evaluate the
//! AppMult through its product LUT, dequantize (Eq. 8). Backward: chain
//! rule of Eq. 9 with `dAM/dW`, `dAM/dX` served from a [`GradientLut`]
//! and the clipped straight-through estimator for `Q'`.

use std::sync::Arc;

use appmult_kernels::{backward_dw, backward_dx, forward_acc, GemmShape, Kernel};
use appmult_mult::MultiplierLut;
use appmult_nn::layers::{col2im, im2col, nchw_to_rows, rows_to_nchw, Conv2dSpec};
use appmult_nn::{Module, Parameter, Tensor};
use appmult_pool::Pool;

use crate::gradient::GradientLut;
use crate::quant::{dequantize_dot, dequantize_dot_offset, Observer, QuantParams, QuantScheme};

/// Quantizer configuration shared by the approximate layers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantConfig {
    /// EMA momentum of the activation range observer.
    pub ema_momentum: f32,
    /// Code mapping: the paper's unsigned affine scheme, or signed
    /// offset-binary codes for `SignMagnitudeMultiplier` offset LUTs.
    pub scheme: QuantScheme,
}

impl Default for QuantConfig {
    fn default() -> Self {
        Self {
            ema_momentum: 0.05,
            scheme: QuantScheme::Unsigned,
        }
    }
}

impl QuantConfig {
    /// Default configuration on the signed offset-binary scheme.
    pub fn signed() -> Self {
        Self {
            scheme: QuantScheme::SignedOffset,
            ..Self::default()
        }
    }
}

/// Quantizer parameters for a `[lo, hi]` range under the given scheme:
/// asymmetric affine for unsigned codes, symmetric (pinned zero point
/// `2^(B-1)`) over the magnitude reach for signed offset-binary codes.
fn scheme_params(scheme: QuantScheme, lo: f32, hi: f32, bits: u32) -> QuantParams {
    match scheme {
        QuantScheme::Unsigned => QuantParams::from_range(lo, hi, bits),
        QuantScheme::SignedOffset => QuantParams::signed_symmetric(lo.abs().max(hi.abs()), bits),
    }
}

/// Shared quantized-GEMM state cached between forward and backward.
#[derive(Debug, Default)]
struct GemmCache {
    wq: Vec<u16>,     // [J, K] quantized weights
    xq: Vec<u16>,     // [M, K] quantized activations
    wclip: Vec<bool>, // Q'(w) != 0
    xclip: Vec<bool>, // Q'(x) != 0
    wq_params: Option<QuantParams>,
    xq_params: Option<QuantParams>,
    scheme: QuantScheme,
    m: usize,
    j: usize,
    k: usize,
    sum_w: Vec<i64>, // per-row code sums, memoized across unchanged weights
    sum_w_builds: u64,
}

impl GemmCache {
    /// Refreshes the cache for a new forward pass. The per-row weight code
    /// sums used by dequantization are memoized: when the quantized weights
    /// and their params are unchanged since the previous batch (the common
    /// case in eval loops), `sum_w` is carried over instead of being
    /// recomputed; any requantization invalidates it.
    #[allow(clippy::too_many_arguments)]
    fn update(
        &mut self,
        wq: Vec<u16>,
        xq: Vec<u16>,
        wclip: Vec<bool>,
        xclip: Vec<bool>,
        wq_params: QuantParams,
        xq_params: QuantParams,
        scheme: QuantScheme,
        m: usize,
        j: usize,
        k: usize,
    ) {
        let weights_unchanged = self.wq_params == Some(wq_params)
            && self.j == j
            && self.k == k
            && self.wq == wq
            && !self.sum_w.is_empty();
        if !weights_unchanged {
            self.sum_w = (0..j)
                .map(|ji| wq[ji * k..(ji + 1) * k].iter().map(|&v| i64::from(v)).sum())
                .collect();
            self.sum_w_builds += 1;
        }
        self.wq = wq;
        self.xq = xq;
        self.wclip = wclip;
        self.xclip = xclip;
        self.wq_params = Some(wq_params);
        self.xq_params = Some(xq_params);
        self.scheme = scheme;
        self.m = m;
        self.j = j;
        self.k = k;
    }

    /// Whether a forward pass has populated the cache (valid even for
    /// zero-sized batches, where `m == 0`).
    fn populated(&self) -> bool {
        self.xq_params.is_some()
    }
    /// Normalized histograms of the weight and activation codes seen by
    /// the most recent forward pass, each with `2^B` bins.
    fn operand_histograms(&self, bits: u32) -> Option<(Vec<f64>, Vec<f64>)> {
        if self.m == 0 {
            return None;
        }
        let n = 1usize << bits;
        let mut wh = vec![0.0f64; n];
        let mut xh = vec![0.0f64; n];
        for &c in &self.wq {
            wh[c as usize] += 1.0;
        }
        for &c in &self.xq {
            xh[c as usize] += 1.0;
        }
        let wn = self.wq.len() as f64;
        let xn = self.xq.len() as f64;
        for v in &mut wh {
            *v /= wn;
        }
        for v in &mut xh {
            *v /= xn;
        }
        Some((wh, xh))
    }
}

/// Minimum multiply-accumulate count below which a LUT-GEMM dispatch runs
/// serially instead of fanning out across pool workers. Spawn + join costs
/// tens of microseconds per `run_rows` call; at roughly a nanosecond per
/// table-gather MAC, shapes under ~64k MACs finish faster on the calling
/// thread than the spawn overhead alone (the small-shape 0.86x regression
/// recorded in `BENCH_par.json`). Serial and parallel paths are
/// bit-identical, so the floor is purely a scheduling decision.
const PAR_FLOOR_MACS: usize = 1 << 16;

/// Work-size floor in *output elements* for a GEMM whose per-element cost
/// is `reduction` MACs (see [`PAR_FLOOR_MACS`]).
fn par_floor_elems(reduction: usize) -> usize {
    PAR_FLOOR_MACS / reduction.max(1)
}

/// Quantizes a slice, returning codes and clip mask.
fn quantize_slice(values: &[f32], params: &QuantParams) -> (Vec<u16>, Vec<bool>) {
    let mut q = Vec::with_capacity(values.len());
    let mut clip = Vec::with_capacity(values.len());
    for &v in values {
        q.push(params.quantize(v) as u16);
        clip.push(params.in_range(v));
    }
    (q, clip)
}

/// LUT forward pass: `out[m][j] = DQ(sum_k AM(Wq[j][k], Xq[m][k])) + bias[j]`.
///
/// Output rows are independent, so the batch dimension `M` is partitioned
/// across the pool's workers and each worker runs the selected
/// `appmult-kernels` engine over its chunk (tiles compose with worker
/// chunks). The LUT accumulator is an exact `i64`, so the tiled kernel's
/// re-association is bit-safe and the result is bit-identical for any
/// kernel and thread count.
fn gemm_forward(
    cache: &GemmCache,
    lut: &MultiplierLut,
    bias: &[f32],
    pool: Pool,
    kernel: Kernel,
) -> Tensor {
    let obs = appmult_obs::global();
    let _span = obs.span("gemm_forward");
    let (m, j, k) = (cache.m, cache.j, cache.k);
    obs.counter_add("lut.lookups", (m * j * k) as u64);
    let table = lut.entries();
    let shape = GemmShape {
        j,
        k,
        bits: lut.bits(),
    };
    let wq_params = cache.wq_params.expect("cache populated");
    let xq_params = cache.xq_params.expect("cache populated");
    let sum_w = &cache.sum_w;
    let sum_x: Vec<i64> = cache
        .xq
        .chunks(k.max(1))
        .map(|row| row.iter().map(|&v| i64::from(v)).sum())
        .collect();
    let mut out = vec![0.0f32; m * j];
    // Per output element this GEMM performs `k` MACs.
    let pool = pool.with_min_elems(par_floor_elems(k));
    pool.run_rows(&mut out, j, |mi0, chunk| {
        let rows = chunk.len() / j;
        let mut acc = vec![0i64; chunk.len()];
        forward_acc(
            kernel,
            shape,
            table,
            &cache.wq,
            &cache.xq[mi0 * k..(mi0 + rows) * k],
            &mut acc,
        );
        for (r, (out_row, acc_row)) in chunk.chunks_mut(j).zip(acc.chunks(j)).enumerate() {
            let mi = mi0 + r;
            for (ji, (o, &a)) in out_row.iter_mut().zip(acc_row).enumerate() {
                *o = match cache.scheme {
                    QuantScheme::Unsigned => {
                        dequantize_dot(&wq_params, &xq_params, a, sum_w[ji], sum_x[mi], k)
                    }
                    // Offset LUT entries already fold in the operand zero
                    // points; only the per-term 2^(2B-1) offset remains.
                    QuantScheme::SignedOffset => {
                        dequantize_dot_offset(&wq_params, &xq_params, a, k)
                    }
                } + bias[ji];
            }
        }
    });
    Tensor::from_vec(out, &[m, j])
}

/// LUT backward pass (Eq. 9): returns `(dW, dX)` for `g = dL/d(out)`.
///
/// Runs as two data-parallel passes over disjoint output slices: the `dX`
/// half is row-partitioned over the batch dimension `M` (each worker owns
/// whole `dx` rows and accumulates over `J` in ascending order) and the
/// `dW` half is partitioned over the output-channel dimension `J` (each
/// worker owns whole `dw` rows and accumulates over `M` in ascending
/// order). Each worker runs the selected `appmult-kernels` engine over its
/// chunk; the tiled kernels preserve the naive per-output addition order
/// exactly, so no atomic float accumulation is needed and the tensors are
/// bit-identical to a serial naive run for any kernel and thread count.
fn gemm_backward(
    cache: &GemmCache,
    grads: &GradientLut,
    g: &Tensor,
    pool: Pool,
    kernel: Kernel,
) -> (Tensor, Tensor) {
    let obs = appmult_obs::global();
    let _span = obs.span("gemm_backward");
    let (m, j, k) = (cache.m, cache.j, cache.k);
    assert_eq!(g.shape(), &[m, j], "output gradient shape mismatch");
    // Nominal Eq. 9 table lookups (`dW` and `dX` halves; zero-gradient
    // rows are skipped at runtime, so this is an upper bound).
    obs.counter_add("gradlut.lookups", 2 * (m * j * k) as u64);
    let shape = GemmShape {
        j,
        k,
        bits: grads.bits(),
    };
    let gw_table = grads.wrt_w_table().as_slice();
    let gx_table = grads.wrt_x_table().as_slice();
    let wq_params = cache.wq_params.expect("cache populated");
    let xq_params = cache.xq_params.expect("cache populated");
    // Eq. 9's `- Z` terms correct for the affine zero points of unsigned
    // codes. Signed gradient tables are built in *value* space (the STE
    // tables subtract 2^(B-1); the difference family differentiates the
    // stored row, where the additive offsets cancel), so no zero-point
    // correction applies there.
    let (zw, zx) = match cache.scheme {
        QuantScheme::Unsigned => (wq_params.zero_point as f32, xq_params.zero_point as f32),
        QuantScheme::SignedOffset => (0.0, 0.0),
    };
    let sw = wq_params.scale;
    let sx = xq_params.scale;
    let gd = g.as_slice();

    let mut dx = vec![0.0f32; m * k];
    // Per dx element: `j` gradient-table MACs.
    pool.with_min_elems(par_floor_elems(j))
        .run_rows(&mut dx, k, |mi0, chunk| {
            let rows = chunk.len() / k;
            // dL/dx = dL/dy * s_w * (dAM/dX - Z_w), gated by Q'(x).
            backward_dx(
                kernel,
                shape,
                gx_table,
                &cache.wq,
                &cache.xq[mi0 * k..(mi0 + rows) * k],
                &gd[mi0 * j..(mi0 + rows) * j],
                sw,
                zw,
                chunk,
            );
            for (r, dx_row) in chunk.chunks_mut(k).enumerate() {
                let mi = mi0 + r;
                // Clipped-STE mask of Q'(x).
                for (v, &keep) in dx_row.iter_mut().zip(&cache.xclip[mi * k..(mi + 1) * k]) {
                    if !keep {
                        *v = 0.0;
                    }
                }
            }
        });

    let mut dw = vec![0.0f32; j * k];
    // Per dw element: `m` gradient-table MACs.
    pool.with_min_elems(par_floor_elems(m))
        .run_rows(&mut dw, k, |ji0, chunk| {
            let rows = chunk.len() / k;
            // dL/dw = dL/dy * s_x * (dAM/dW - Z_x), gated by Q'(w).
            backward_dw(
                kernel,
                shape,
                gw_table,
                &cache.wq[ji0 * k..(ji0 + rows) * k],
                ji0,
                &cache.xq,
                gd,
                sx,
                zx,
                chunk,
            );
            for (r, dw_row) in chunk.chunks_mut(k).enumerate() {
                let ji = ji0 + r;
                // Clipped-STE mask of Q'(w).
                for (v, &keep) in dw_row.iter_mut().zip(&cache.wclip[ji * k..(ji + 1) * k]) {
                    if !keep {
                        *v = 0.0;
                    }
                }
            }
        });

    (Tensor::from_vec(dw, &[j, k]), Tensor::from_vec(dx, &[m, k]))
}

/// A 2-D convolution whose multiplications go through an AppMult LUT and
/// whose backward pass uses a [`GradientLut`] — the layer at the heart of
/// the retraining framework (Fig. 4).
///
/// The float master weights live in a [`Parameter`] and are fake-quantized
/// on every forward pass; activation ranges are tracked by an EMA observer
/// (calibrated on the first batch even in eval mode, so a freshly converted
/// model can be evaluated before retraining, as in Table II's "initial
/// accuracy" column).
///
/// # Example
///
/// ```
/// use appmult_mult::{zoo, Multiplier};
/// use appmult_retrain::{ApproxConv2d, GradientLut, GradientMode, QuantConfig};
/// use appmult_nn::{Module, Tensor};
/// use std::sync::Arc;
///
/// let lut = Arc::new(zoo::mul7u_rm6().to_lut());
/// let grads = Arc::new(GradientLut::build(&lut, GradientMode::difference_based(2)));
/// let mut conv = ApproxConv2d::new(3, 8, 3, 1, 1, 7, lut, grads, QuantConfig::default());
/// let y = conv.forward(&Tensor::zeros(&[1, 3, 8, 8]), true);
/// assert_eq!(y.shape(), &[1, 8, 8, 8]);
/// ```
#[derive(Debug)]
pub struct ApproxConv2d {
    spec: Conv2dSpec,
    weight: Parameter,
    bias: Parameter,
    lut: Arc<MultiplierLut>,
    grads: Arc<GradientLut>,
    observer: Observer,
    scheme: QuantScheme,
    cache: GemmCache,
    kernel: Kernel,
    input_hw: (usize, usize, usize),
}

impl ApproxConv2d {
    /// Creates the layer with Kaiming-initialized weights.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        seed: u64,
        lut: Arc<MultiplierLut>,
        grads: Arc<GradientLut>,
        config: QuantConfig,
    ) -> Self {
        let spec = Conv2dSpec {
            in_channels,
            out_channels,
            kernel,
            stride,
            padding,
        };
        let fan_in = spec.patch_len();
        let weight = appmult_nn::init::kaiming_normal(&[out_channels, fan_in], fan_in, seed);
        Self::with_params(
            spec,
            weight,
            Tensor::zeros(&[out_channels]),
            lut,
            grads,
            config,
        )
    }

    /// Wraps existing float weights (e.g. from a pretrained accurate model,
    /// the Fig. 1 flow) in an approximate layer.
    ///
    /// # Panics
    ///
    /// Panics if the weight/bias shapes do not match `spec`, if the product
    /// and gradient LUT bit widths disagree, or if the gradient tables fail
    /// [`GradientLut::validate`] (a NaN/Inf entry would silently corrupt
    /// every gradient flowing through the layer).
    pub fn with_params(
        spec: Conv2dSpec,
        weight: Tensor,
        bias: Tensor,
        lut: Arc<MultiplierLut>,
        grads: Arc<GradientLut>,
        config: QuantConfig,
    ) -> Self {
        assert_eq!(
            weight.shape(),
            &[spec.out_channels, spec.patch_len()],
            "weight shape mismatch"
        );
        assert_eq!(bias.shape(), &[spec.out_channels], "bias shape mismatch");
        assert_eq!(lut.bits(), grads.bits(), "LUT bit widths disagree");
        if let Err(e) = grads.validate() {
            panic!("gradient LUT rejected: {e}");
        }
        Self {
            spec,
            weight: Parameter::new(weight, true),
            bias: Parameter::new(bias, false),
            lut,
            grads,
            observer: Observer::new(config.ema_momentum),
            scheme: config.scheme,
            cache: GemmCache::default(),
            kernel: Kernel::global(),
            input_hw: (0, 0, 0),
        }
    }

    /// The GEMM kernel this layer runs (resolved from the environment at
    /// construction).
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// Overrides the GEMM kernel for this layer (e.g. to cross-check
    /// tiled vs naive in tests).
    pub fn set_kernel(&mut self, kernel: Kernel) {
        self.kernel = kernel;
    }

    /// The shape specification.
    pub fn spec(&self) -> &Conv2dSpec {
        &self.spec
    }

    /// The product LUT driving the forward pass.
    pub fn lut(&self) -> &Arc<MultiplierLut> {
        &self.lut
    }

    /// Swaps the gradient tables (e.g. to A/B STE vs difference-based on
    /// the same weights).
    pub fn set_gradient_lut(&mut self, grads: Arc<GradientLut>) {
        assert_eq!(self.lut.bits(), grads.bits(), "LUT bit widths disagree");
        self.grads = grads;
    }

    /// Normalized weight/activation code histograms from the most recent
    /// forward pass (for distribution-aware multiplier analysis via
    /// `ErrorMetrics::with_marginals`). `None` before the first forward.
    pub fn operand_histograms(&self) -> Option<(Vec<f64>, Vec<f64>)> {
        self.cache.operand_histograms(self.lut.bits())
    }

    /// Number of batches the activation observer rejected for non-finite
    /// extrema (see [`Observer::rejected`]).
    pub fn observer_rejections(&self) -> usize {
        self.observer.rejected()
    }

    /// How many times the memoized per-row weight code sums have been
    /// rebuilt (once per weight requantization; stays flat across eval
    /// batches with unchanged weights).
    pub fn sum_w_rebuilds(&self) -> u64 {
        self.cache.sum_w_builds
    }
}

impl Module for ApproxConv2d {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let obs = appmult_obs::global();
        let _span = obs.span("conv2d.forward");
        let s = input.shape();
        assert_eq!(s.len(), 4, "expected NCHW input");
        let (n, h, w) = (s[0], s[2], s[3]);
        let (oh, ow) = self.spec.out_hw(h, w);
        let bits = self.lut.bits();

        if train || self.observer.range().is_none() {
            let rejected_before = self.observer.rejected();
            self.observer.observe(input);
            let rejected = self.observer.rejected() - rejected_before;
            if rejected > 0 {
                obs.counter_add("observer.rejections", rejected as u64);
            }
        }
        let (xlo, xhi) = self.observer.range().expect("observer has seen no data");
        let xq_params = scheme_params(self.scheme, xlo, xhi, bits);
        let (wlo, whi) = self.weight.value.min_max();
        let wq_params = scheme_params(self.scheme, wlo, whi, bits);

        let cols = im2col(input, &self.spec);
        let (xq, xclip) = quantize_slice(cols.as_slice(), &xq_params);
        let (wq, wclip) = quantize_slice(self.weight.value.as_slice(), &wq_params);

        let k = self.spec.patch_len();
        self.cache.update(
            wq,
            xq,
            wclip,
            xclip,
            wq_params,
            xq_params,
            self.scheme,
            n * oh * ow,
            self.spec.out_channels,
            k,
        );
        self.input_hw = (n, h, w);
        let rows = gemm_forward(
            &self.cache,
            &self.lut,
            self.bias.value.as_slice(),
            Pool::global(),
            self.kernel,
        );
        rows_to_nchw(&rows, n, self.spec.out_channels, oh, ow)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let _span = appmult_obs::global().span("conv2d.backward");
        assert!(self.cache.populated(), "backward before forward");
        let (n, h, w) = self.input_hw;
        let g_rows = nchw_to_rows(grad_out);
        let (dw, dx) = gemm_backward(
            &self.cache,
            &self.grads,
            &g_rows,
            Pool::global(),
            self.kernel,
        );
        self.weight.grad.add_scaled(&dw, 1.0);
        let jdim = self.spec.out_channels;
        {
            let db = self.bias.grad.as_mut_slice();
            for row in g_rows.as_slice().chunks(jdim) {
                for (d, g) in db.iter_mut().zip(row) {
                    *d += g;
                }
            }
        }
        col2im(&dx, &self.spec, n, h, w)
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Parameter)) {
        visitor(&mut self.weight);
        visitor(&mut self.bias);
    }
}

/// A fully connected layer with AppMult LUT forward and gradient-LUT
/// backward, mirroring [`ApproxConv2d`] for `[N, in]` batches.
#[derive(Debug)]
pub struct ApproxLinear {
    weight: Parameter, // [out, in]
    bias: Parameter,
    lut: Arc<MultiplierLut>,
    grads: Arc<GradientLut>,
    observer: Observer,
    scheme: QuantScheme,
    cache: GemmCache,
    kernel: Kernel,
}

impl ApproxLinear {
    /// Creates the layer with fan-in uniform initialization.
    pub fn new(
        in_features: usize,
        out_features: usize,
        seed: u64,
        lut: Arc<MultiplierLut>,
        grads: Arc<GradientLut>,
        config: QuantConfig,
    ) -> Self {
        let weight =
            appmult_nn::init::uniform_fan_in(&[out_features, in_features], in_features, seed);
        Self::with_params(weight, Tensor::zeros(&[out_features]), lut, grads, config)
    }

    /// Wraps existing float weights.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is not rank 2, `bias` does not match its first
    /// dimension, the LUT bit widths disagree, or the gradient tables fail
    /// [`GradientLut::validate`].
    pub fn with_params(
        weight: Tensor,
        bias: Tensor,
        lut: Arc<MultiplierLut>,
        grads: Arc<GradientLut>,
        config: QuantConfig,
    ) -> Self {
        assert_eq!(weight.shape().len(), 2, "weight must be [out, in]");
        assert_eq!(bias.shape(), &[weight.shape()[0]], "bias shape mismatch");
        assert_eq!(lut.bits(), grads.bits(), "LUT bit widths disagree");
        if let Err(e) = grads.validate() {
            panic!("gradient LUT rejected: {e}");
        }
        Self {
            weight: Parameter::new(weight, true),
            bias: Parameter::new(bias, false),
            lut,
            grads,
            observer: Observer::new(config.ema_momentum),
            scheme: config.scheme,
            cache: GemmCache::default(),
            kernel: Kernel::global(),
        }
    }

    /// The GEMM kernel this layer runs (resolved from the environment at
    /// construction).
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// Overrides the GEMM kernel for this layer (e.g. to cross-check
    /// tiled vs naive in tests).
    pub fn set_kernel(&mut self, kernel: Kernel) {
        self.kernel = kernel;
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.weight.value.shape()[0]
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.weight.value.shape()[1]
    }

    /// Normalized weight/activation code histograms from the most recent
    /// forward pass. `None` before the first forward.
    pub fn operand_histograms(&self) -> Option<(Vec<f64>, Vec<f64>)> {
        self.cache.operand_histograms(self.lut.bits())
    }

    /// Number of batches the activation observer rejected for non-finite
    /// extrema (see [`Observer::rejected`]).
    pub fn observer_rejections(&self) -> usize {
        self.observer.rejected()
    }

    /// How many times the memoized per-row weight code sums have been
    /// rebuilt (once per weight requantization; stays flat across eval
    /// batches with unchanged weights).
    pub fn sum_w_rebuilds(&self) -> u64 {
        self.cache.sum_w_builds
    }
}

impl Module for ApproxLinear {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let obs = appmult_obs::global();
        let _span = obs.span("linear.forward");
        assert_eq!(input.shape().len(), 2, "expected [N, in] input");
        assert_eq!(input.shape()[1], self.in_features(), "feature mismatch");
        let bits = self.lut.bits();
        if train || self.observer.range().is_none() {
            let rejected_before = self.observer.rejected();
            self.observer.observe(input);
            let rejected = self.observer.rejected() - rejected_before;
            if rejected > 0 {
                obs.counter_add("observer.rejections", rejected as u64);
            }
        }
        let (xlo, xhi) = self.observer.range().expect("observer has seen no data");
        let xq_params = scheme_params(self.scheme, xlo, xhi, bits);
        let (wlo, whi) = self.weight.value.min_max();
        let wq_params = scheme_params(self.scheme, wlo, whi, bits);
        let (xq, xclip) = quantize_slice(input.as_slice(), &xq_params);
        let (wq, wclip) = quantize_slice(self.weight.value.as_slice(), &wq_params);
        self.cache.update(
            wq,
            xq,
            wclip,
            xclip,
            wq_params,
            xq_params,
            self.scheme,
            input.shape()[0],
            self.out_features(),
            self.in_features(),
        );
        gemm_forward(
            &self.cache,
            &self.lut,
            self.bias.value.as_slice(),
            Pool::global(),
            self.kernel,
        )
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let _span = appmult_obs::global().span("linear.backward");
        assert!(self.cache.populated(), "backward before forward");
        let (dw, dx) = gemm_backward(
            &self.cache,
            &self.grads,
            grad_out,
            Pool::global(),
            self.kernel,
        );
        self.weight.grad.add_scaled(&dw, 1.0);
        let jdim = self.out_features();
        {
            let db = self.bias.grad.as_mut_slice();
            for row in grad_out.as_slice().chunks(jdim) {
                for (d, g) in db.iter_mut().zip(row) {
                    *d += g;
                }
            }
        }
        dx
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Parameter)) {
        visitor(&mut self.weight);
        visitor(&mut self.bias);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradient::GradientMode;
    use appmult_mult::{ExactMultiplier, Multiplier, TruncatedMultiplier};
    use appmult_nn::layers::{Conv2d, Linear};

    fn exact8() -> (Arc<MultiplierLut>, Arc<GradientLut>) {
        let lut = Arc::new(ExactMultiplier::new(8).to_lut());
        let grads = Arc::new(GradientLut::build(&lut, GradientMode::Ste));
        (lut, grads)
    }

    fn ramp(shape: &[usize], scale: f32) -> Tensor {
        let n: usize = shape.iter().product();
        Tensor::from_vec(
            (0..n)
                .map(|i| (((i * 37) % 29) as f32 / 29.0 - 0.45) * scale)
                .collect(),
            shape,
        )
    }

    #[test]
    fn exact_lut_conv_tracks_float_conv() {
        // With the exact multiplier and 8-bit quantization, the approximate
        // conv must match an identically-weighted float conv to within
        // quantization error.
        let (lut, grads) = exact8();
        let mut float_conv = Conv2d::new(2, 3, 3, 1, 1, 11);
        let weight = float_conv.weight().value.clone();
        let spec = *float_conv.spec();
        let mut approx = ApproxConv2d::with_params(
            spec,
            weight,
            Tensor::zeros(&[3]),
            lut,
            grads,
            QuantConfig::default(),
        );
        let x = ramp(&[1, 2, 6, 6], 1.0);
        let yf = float_conv.forward(&x, true);
        let ya = approx.forward(&x, true);
        let (_, hi) = yf.min_max();
        for (a, b) in ya.as_slice().iter().zip(yf.as_slice()) {
            assert!(
                (a - b).abs() < 0.05 * hi.abs().max(1.0),
                "approx {a} vs float {b}"
            );
        }
    }

    #[test]
    fn exact_lut_linear_tracks_float_linear() {
        let (lut, grads) = exact8();
        let mut fl = Linear::new(6, 4, 3);
        let mut approx = ApproxLinear::with_params(
            Tensor::zeros(&[4, 6]),
            Tensor::zeros(&[4]),
            lut,
            grads,
            QuantConfig::default(),
        );
        // Copy the float layer's weights into the approximate layer.
        let mut weights = vec![];
        fl.visit_params(&mut |p| weights.push(p.value.clone()));
        approx.visit_params(&mut |p| {
            p.value = weights.remove(0);
        });
        let x = ramp(&[3, 6], 2.0);
        let yf = fl.forward(&x, true);
        let ya = approx.forward(&x, true);
        for (a, b) in ya.as_slice().iter().zip(yf.as_slice()) {
            assert!((a - b).abs() < 0.05, "approx {a} vs float {b}");
        }
    }

    #[test]
    fn ste_backward_matches_fakequant_reference() {
        // With STE gradients, dL/dw reduces to sum_m g * x_hat where x_hat
        // is the dequantized activation. Verify against a direct evaluation.
        let (lut, grads) = exact8();
        let mut approx = ApproxLinear::with_params(
            ramp(&[2, 3], 1.0),
            Tensor::zeros(&[2]),
            lut,
            grads,
            QuantConfig::default(),
        );
        let x = ramp(&[4, 3], 1.5);
        approx.forward(&x, true);
        let g = ramp(&[4, 2], 0.7);
        approx.backward(&g);

        // Reference: dW[j][k] = sum_m g[m][j] * xhat[m][k]
        let xq = approx.cache.xq_params.expect("populated");
        let mut expect = vec![0.0f32; 2 * 3];
        for m in 0..4 {
            for j in 0..2 {
                for k in 0..3 {
                    let code = approx.cache.xq[m * 3 + k];
                    expect[j * 3 + k] += g.at(&[m, j]) * xq.dequantize(code.into());
                }
            }
        }
        // Clip mask (all in range here).
        let mut got = vec![];
        approx.visit_params(&mut |p| got.push(p.grad.clone()));
        for (a, b) in got[0].as_slice().iter().zip(&expect) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn clipped_values_get_zero_weight_gradient() {
        let (lut, grads) = exact8();
        // One weight far outside any reasonable range... weights define the
        // range themselves, so clip via activations instead: feed a batch
        // with a huge outlier after calibrating on a small batch.
        let mut approx = ApproxLinear::with_params(
            ramp(&[2, 3], 1.0),
            Tensor::zeros(&[2]),
            lut,
            grads,
            QuantConfig {
                ema_momentum: 0.01,
                ..QuantConfig::default()
            },
        );
        let small = ramp(&[4, 3], 0.5);
        approx.forward(&small, true); // calibrate on small range
        let mut big = small.clone();
        big.as_mut_slice()[0] = 100.0; // way outside the EMA range
        approx.forward(&big, true);
        let g = Tensor::full(&[4, 2], 1.0);
        let dx = approx.backward(&g);
        assert_eq!(dx.as_slice()[0], 0.0, "clipped activation gradient");
        assert!(
            dx.as_slice()[1] != 0.0,
            "in-range activations keep gradient"
        );
    }

    #[test]
    fn gradient_lut_swap_changes_backward_only() {
        let lut = Arc::new(TruncatedMultiplier::new(8, 8).to_lut());
        let ste = Arc::new(GradientLut::build(&lut, GradientMode::Ste));
        let diff = Arc::new(GradientLut::build(&lut, GradientMode::difference_based(16)));
        let x = ramp(&[2, 2, 5, 5], 1.0);
        let g = ramp(&[2, 3, 5, 5], 1.0);

        let run = |grads: Arc<GradientLut>| {
            let mut conv = ApproxConv2d::with_params(
                Conv2dSpec::same(2, 3, 3),
                ramp(&[3, 18], 0.8),
                Tensor::zeros(&[3]),
                lut.clone(),
                grads,
                QuantConfig::default(),
            );
            let y = conv.forward(&x, true);
            let dx = conv.backward(&g);
            (y, dx)
        };
        let (y1, dx1) = run(ste);
        let (y2, dx2) = run(diff);
        assert_eq!(y1, y2, "forward must not depend on the gradient mode");
        assert_ne!(dx1, dx2, "backward must depend on the gradient mode");
    }

    #[test]
    fn approx_linear_gradcheck_under_every_gradient_mode() {
        // Finite differences cannot see through the quantized LUT (the
        // float function is piecewise constant), so — as in the conv
        // gradcheck below — each mode's backward pass is checked against a
        // direct evaluation of the Eq. 9 sums using that mode's own
        // gradient tables, clip masks included.
        let lut = Arc::new(TruncatedMultiplier::new(8, 6).to_lut());
        let n = lut.entries().len();
        let custom = GradientMode::Custom {
            wrt_w: Arc::new((0..n).map(|i| (i % 7) as f32 * 0.25).collect()),
            wrt_x: Arc::new((0..n).map(|i| (i % 5) as f32 * 0.5).collect()),
        };
        let marg: Vec<f64> = {
            let n = 1usize << lut.bits();
            let total = (n * (n + 1) / 2) as f64;
            (0..n).map(|i| (i + 1) as f64 / total).collect()
        };
        let modes = [
            GradientMode::Ste,
            GradientMode::difference_based(8),
            GradientMode::RawDifference,
            GradientMode::DifferenceEdgeClamped { hws: 8 },
            GradientMode::difference_kernel(8, crate::SmoothingKernel::Triangular),
            GradientMode::difference_kernel(8, crate::SmoothingKernel::Gaussian),
            GradientMode::least_squares(4),
            GradientMode::marginal_weighted(8, marg.clone(), marg),
            GradientMode::Surrogate,
            custom,
        ];
        let (m, j, k) = (2usize, 3usize, 4usize);
        // Eq. 9 must hold per gradient mode *and* per kernel engine: a
        // fresh layer is gradchecked under both the naive and the tiled
        // backward kernels.
        let kernels = [Kernel::Naive, Kernel::tiled_default()];
        for (mode, kernel) in modes
            .iter()
            .flat_map(|mo| kernels.iter().map(move |ke| (mo.clone(), *ke)))
        {
            let label = format!("{}/{}", mode.label(), kernel.label());
            let grads = Arc::new(GradientLut::build(&lut, mode));
            let mut layer = ApproxLinear::with_params(
                ramp(&[j, k], 1.1),
                Tensor::zeros(&[j]),
                lut.clone(),
                grads.clone(),
                QuantConfig::default(),
            );
            layer.set_kernel(kernel);
            let x = ramp(&[m, k], 1.6);
            layer.forward(&x, true);
            let g = ramp(&[m, j], 0.9);
            let dx = layer.backward(&g);

            let c = &layer.cache;
            let wqp = c.wq_params.expect("populated");
            let xqp = c.xq_params.expect("populated");
            // dX: dL/dx[mi][kk] = sum_j g * s_w * (gX(w, x) - Z_w), gated
            // by the Q'(x) clip mask.
            for mi in 0..m {
                for kk in 0..k {
                    let mut expect = 0.0f32;
                    for ji in 0..j {
                        let iw = u32::from(c.wq[ji * k + kk]);
                        let ix = u32::from(c.xq[mi * k + kk]);
                        expect += g.at(&[mi, ji])
                            * wqp.scale
                            * (grads.wrt_x(iw, ix) - wqp.zero_point as f32);
                    }
                    if !c.xclip[mi * k + kk] {
                        expect = 0.0;
                    }
                    let got = dx.at(&[mi, kk]);
                    assert!(
                        (got - expect).abs() < 1e-4,
                        "{label}: dX[{mi},{kk}] = {got} vs {expect}"
                    );
                }
            }
            // dW: dL/dw[ji][kk] = sum_m g * s_x * (gW(w, x) - Z_x), gated
            // by the Q'(w) clip mask.
            for ji in 0..j {
                for kk in 0..k {
                    let mut expect = 0.0f32;
                    for mi in 0..m {
                        let iw = u32::from(c.wq[ji * k + kk]);
                        let ix = u32::from(c.xq[mi * k + kk]);
                        expect += g.at(&[mi, ji])
                            * xqp.scale
                            * (grads.wrt_w(iw, ix) - xqp.zero_point as f32);
                    }
                    if !c.wclip[ji * k + kk] {
                        expect = 0.0;
                    }
                    let got = layer.weight.grad.at(&[ji, kk]);
                    assert!(
                        (got - expect).abs() < 1e-4,
                        "{label}: dW[{ji},{kk}] = {got} vs {expect}"
                    );
                }
            }
        }
    }

    fn signed_exact8() -> Arc<MultiplierLut> {
        use appmult_mult::SignMagnitudeMultiplier;
        Arc::new(SignMagnitudeMultiplier::new(ExactMultiplier::new(8)).to_offset_lut())
    }

    #[test]
    fn signed_exact_lut_linear_tracks_float_linear() {
        // The signed offset path with the exact multiplier must reproduce a
        // float linear layer to within quantization error — including
        // negative weights and activations, which the unsigned scheme only
        // reaches through its affine zero point.
        let lut = signed_exact8();
        let grads = Arc::new(GradientLut::build_signed(&lut, GradientMode::Ste));
        let mut fl = Linear::new(6, 4, 3);
        let mut approx = ApproxLinear::with_params(
            Tensor::zeros(&[4, 6]),
            Tensor::zeros(&[4]),
            lut,
            grads,
            QuantConfig::signed(),
        );
        let mut weights = vec![];
        fl.visit_params(&mut |p| weights.push(p.value.clone()));
        approx.visit_params(&mut |p| {
            p.value = weights.remove(0);
        });
        let x = ramp(&[3, 6], 2.0); // spans negative and positive values
        let yf = fl.forward(&x, true);
        let ya = approx.forward(&x, true);
        for (a, b) in ya.as_slice().iter().zip(yf.as_slice()) {
            assert!((a - b).abs() < 0.05, "approx {a} vs float {b}");
        }
    }

    #[test]
    fn signed_exact_lut_conv_tracks_float_conv() {
        let lut = signed_exact8();
        let grads = Arc::new(GradientLut::build_signed(&lut, GradientMode::Ste));
        let mut float_conv = Conv2d::new(2, 3, 3, 1, 1, 11);
        let weight = float_conv.weight().value.clone();
        let spec = *float_conv.spec();
        let mut approx = ApproxConv2d::with_params(
            spec,
            weight,
            Tensor::zeros(&[3]),
            lut,
            grads,
            QuantConfig::signed(),
        );
        let x = ramp(&[1, 2, 6, 6], 1.0);
        let yf = float_conv.forward(&x, true);
        let ya = approx.forward(&x, true);
        let (_, hi) = yf.min_max();
        for (a, b) in ya.as_slice().iter().zip(yf.as_slice()) {
            assert!(
                (a - b).abs() < 0.05 * hi.abs().max(1.0),
                "approx {a} vs float {b}"
            );
        }
    }

    #[test]
    fn approx_linear_signed_gradcheck_under_every_gradient_mode() {
        // The signed mirror of the sweep above: offset-binary codes from a
        // sign-magnitude truncated multiplier, gradient tables built under
        // the SignedOffset scheme, and the Eq. 9 sums evaluated with *no*
        // zero-point correction (the offsets are folded into the tables).
        use appmult_mult::SignMagnitudeMultiplier;
        let lut =
            Arc::new(SignMagnitudeMultiplier::new(TruncatedMultiplier::new(8, 6)).to_offset_lut());
        let marg: Vec<f64> = {
            let n = 1usize << lut.bits();
            let total = (n * (n + 1) / 2) as f64;
            (0..n).map(|i| (i + 1) as f64 / total).collect()
        };
        let modes = [
            GradientMode::Ste,
            GradientMode::difference_based(8),
            GradientMode::RawDifference,
            GradientMode::DifferenceEdgeClamped { hws: 8 },
            GradientMode::difference_kernel(8, crate::SmoothingKernel::Triangular),
            GradientMode::difference_kernel(8, crate::SmoothingKernel::Gaussian),
            GradientMode::least_squares(4),
            GradientMode::marginal_weighted(8, marg.clone(), marg),
            GradientMode::Surrogate,
        ];
        let (m, j, k) = (2usize, 3usize, 4usize);
        let kernels = [Kernel::Naive, Kernel::tiled_default()];
        for (mode, kernel) in modes
            .iter()
            .flat_map(|mo| kernels.iter().map(move |ke| (mo.clone(), *ke)))
        {
            let label = format!("signed {}/{}", mode.label(), kernel.label());
            let grads = Arc::new(GradientLut::build_signed(&lut, mode));
            let mut layer = ApproxLinear::with_params(
                ramp(&[j, k], 1.1),
                Tensor::zeros(&[j]),
                lut.clone(),
                grads.clone(),
                QuantConfig::signed(),
            );
            layer.set_kernel(kernel);
            let x = ramp(&[m, k], 1.6);
            layer.forward(&x, true);
            let g = ramp(&[m, j], 0.9);
            let dx = layer.backward(&g);

            let c = &layer.cache;
            let wqp = c.wq_params.expect("populated");
            let xqp = c.xq_params.expect("populated");
            assert_eq!(wqp.zero_point, 128, "{label}: signed weight zero point");
            assert_eq!(xqp.zero_point, 128, "{label}: signed activation zero point");
            // dX: dL/dx[mi][kk] = sum_j g * s_w * gX(w, x), gated by Q'(x).
            for mi in 0..m {
                for kk in 0..k {
                    let mut expect = 0.0f32;
                    for ji in 0..j {
                        let iw = u32::from(c.wq[ji * k + kk]);
                        let ix = u32::from(c.xq[mi * k + kk]);
                        expect += g.at(&[mi, ji]) * wqp.scale * grads.wrt_x(iw, ix);
                    }
                    if !c.xclip[mi * k + kk] {
                        expect = 0.0;
                    }
                    let got = dx.at(&[mi, kk]);
                    assert!(
                        (got - expect).abs() < 1e-4,
                        "{label}: dX[{mi},{kk}] = {got} vs {expect}"
                    );
                }
            }
            // dW: dL/dw[ji][kk] = sum_m g * s_x * gW(w, x), gated by Q'(w).
            for ji in 0..j {
                for kk in 0..k {
                    let mut expect = 0.0f32;
                    for mi in 0..m {
                        let iw = u32::from(c.wq[ji * k + kk]);
                        let ix = u32::from(c.xq[mi * k + kk]);
                        expect += g.at(&[mi, ji]) * xqp.scale * grads.wrt_w(iw, ix);
                    }
                    if !c.wclip[ji * k + kk] {
                        expect = 0.0;
                    }
                    let got = layer.weight.grad.at(&[ji, kk]);
                    assert!(
                        (got - expect).abs() < 1e-4,
                        "{label}: dW[{ji},{kk}] = {got} vs {expect}"
                    );
                }
            }
        }
    }

    #[test]
    fn signed_ste_backward_matches_fakequant_reference() {
        // Under signed STE, dL/dw reduces to sum_m g * s_x (X - 128) =
        // sum_m g * xhat — the same fake-quant reference as the unsigned
        // test, reached through an entirely different dequantization.
        let lut = signed_exact8();
        let grads = Arc::new(GradientLut::build_signed(&lut, GradientMode::Ste));
        let mut approx = ApproxLinear::with_params(
            ramp(&[2, 3], 1.0),
            Tensor::zeros(&[2]),
            lut,
            grads,
            QuantConfig::signed(),
        );
        let x = ramp(&[4, 3], 1.5);
        approx.forward(&x, true);
        let g = ramp(&[4, 2], 0.7);
        approx.backward(&g);

        let xq = approx.cache.xq_params.expect("populated");
        let mut expect = vec![0.0f32; 2 * 3];
        for m in 0..4 {
            for j in 0..2 {
                for k in 0..3 {
                    let code = approx.cache.xq[m * 3 + k];
                    expect[j * 3 + k] += g.at(&[m, j]) * xq.dequantize(code.into());
                }
            }
        }
        let mut got = vec![];
        approx.visit_params(&mut |p| got.push(p.grad.clone()));
        for (a, b) in got[0].as_slice().iter().zip(&expect) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn approx_conv_gradcheck_against_its_own_surrogate() {
        // The backward pass implements Eq. 9 exactly for the LUT gradients;
        // with the exact multiplier + STE this is the fake-quant gradient,
        // which matches finite differences of the float function away from
        // rounding boundaries only in expectation. Here we check the
        // *implementation* instead: dL/dx from backward equals the direct
        // evaluation of the Eq. 9 sum.
        let (lut, grads) = exact8();
        for kernel in [Kernel::Naive, Kernel::tiled_default()] {
            let mut conv = ApproxConv2d::with_params(
                Conv2dSpec {
                    in_channels: 1,
                    out_channels: 2,
                    kernel: 1,
                    stride: 1,
                    padding: 0,
                },
                ramp(&[2, 1], 1.0),
                Tensor::zeros(&[2]),
                lut.clone(),
                grads.clone(),
                QuantConfig::default(),
            );
            conv.set_kernel(kernel);
            let x = ramp(&[1, 1, 2, 2], 1.0);
            conv.forward(&x, true);
            let g = ramp(&[1, 2, 2, 2], 1.0);
            let dx = conv.backward(&g);

            // Direct Eq. 9 for a 1x1 conv: dx[m] = sum_j g[m][j] * s_w *
            // (gX(W[j], X[m]) - Z_w) (all values in range here).
            let c = &conv.cache;
            let wqp = c.wq_params.expect("populated");
            let g_rows = nchw_to_rows(&g);
            for m in 0..4 {
                let mut expect = 0.0f32;
                for j in 0..2 {
                    let idx_w = c.wq[j] as u32;
                    let idx_x = c.xq[m] as u32;
                    expect += g_rows.at(&[m, j])
                        * wqp.scale
                        * (grads.wrt_x(idx_w, idx_x) - wqp.zero_point as f32);
                }
                let got = dx.as_slice()[m];
                assert!(
                    (got - expect).abs() < 1e-5,
                    "{}: m={m}: {got} vs {expect}",
                    kernel.label()
                );
            }
        }
    }

    #[test]
    fn operand_histograms_are_distributions() {
        let (lut, grads) = exact8();
        let mut approx = ApproxLinear::with_params(
            ramp(&[2, 3], 1.0),
            Tensor::zeros(&[2]),
            lut,
            grads,
            QuantConfig::default(),
        );
        assert!(approx.operand_histograms().is_none());
        approx.forward(&ramp(&[4, 3], 1.5), true);
        let (wh, xh) = approx.operand_histograms().expect("after forward");
        assert_eq!(wh.len(), 256);
        assert_eq!(xh.len(), 256);
        assert!((wh.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!((xh.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // Feed the marginals into the distribution-aware metrics.
        let metrics = appmult_mult::ErrorMetrics::with_marginals(approx.lut.as_ref(), &wh, &xh);
        assert_eq!(metrics.max_ed, 0, "exact multiplier has no error");
    }

    /// Runs one forward to populate the cache, then evaluates both GEMM
    /// kernels serially and with `threads` workers, asserting bit-identical
    /// outputs (`f32::to_bits`, not approximate equality).
    fn assert_gemm_parity(m: usize, j: usize, k: usize, threads: usize) {
        let lut = Arc::new(TruncatedMultiplier::new(8, 6).to_lut());
        let grads = Arc::new(GradientLut::build(&lut, GradientMode::difference_based(8)));
        let mut layer = ApproxLinear::with_params(
            ramp(&[j, k], 1.2),
            ramp(&[j], 0.2),
            lut.clone(),
            grads.clone(),
            QuantConfig::default(),
        );
        let x = ramp(&[m, k], 1.7);
        layer.forward(&x, true);

        let bits_of =
            |t: &Tensor| -> Vec<u32> { t.as_slice().iter().map(|v| v.to_bits()).collect() };
        let pool = Pool::new(threads);
        let bias = layer.bias.value.as_slice();
        let g = ramp(&[m, j], 0.9);
        // Serial naive is the reference; every (kernel, pool) combination
        // must reproduce it bit for bit.
        let y_ref = gemm_forward(&layer.cache, &lut, bias, Pool::serial(), Kernel::Naive);
        let (dw_ref, dx_ref) =
            gemm_backward(&layer.cache, &grads, &g, Pool::serial(), Kernel::Naive);
        for kernel in [
            Kernel::Naive,
            Kernel::tiled_default(),
            Kernel::Tiled {
                mj: 2,
                jk: 2,
                kk: 3,
            },
        ] {
            let y = gemm_forward(&layer.cache, &lut, bias, pool, kernel);
            assert_eq!(
                bits_of(&y_ref),
                bits_of(&y),
                "forward m={m} j={j} k={k} threads={threads} kernel={}",
                kernel.label()
            );
            let (dw, dx) = gemm_backward(&layer.cache, &grads, &g, pool, kernel);
            assert_eq!(
                bits_of(&dw_ref),
                bits_of(&dw),
                "dW m={m} j={j} k={k} threads={threads} kernel={}",
                kernel.label()
            );
            assert_eq!(
                bits_of(&dx_ref),
                bits_of(&dx),
                "dX m={m} j={j} k={k} threads={threads} kernel={}",
                kernel.label()
            );
        }
    }

    #[test]
    fn zero_sized_batch_flows_through_forward_and_backward() {
        // A legitimate m = 0 batch must round-trip both layers under both
        // kernels without tripping the populated-cache guard.
        let (lut, grads) = exact8();
        for kernel in [Kernel::Naive, Kernel::tiled_default()] {
            let mut lin = ApproxLinear::with_params(
                ramp(&[3, 4], 1.0),
                Tensor::zeros(&[3]),
                lut.clone(),
                grads.clone(),
                QuantConfig::default(),
            );
            lin.set_kernel(kernel);
            let y = lin.forward(&Tensor::zeros(&[0, 4]), true);
            assert_eq!(y.shape(), &[0, 3]);
            let dx = lin.backward(&Tensor::zeros(&[0, 3]));
            assert_eq!(dx.shape(), &[0, 4]);
            assert!(
                lin.weight.grad.as_slice().iter().all(|&v| v == 0.0),
                "no batch rows, no weight gradient"
            );

            let mut conv = ApproxConv2d::with_params(
                Conv2dSpec::same(1, 2, 3),
                ramp(&[2, 9], 1.0),
                Tensor::zeros(&[2]),
                lut.clone(),
                grads.clone(),
                QuantConfig::default(),
            );
            conv.set_kernel(kernel);
            let y = conv.forward(&Tensor::zeros(&[0, 1, 4, 4]), true);
            assert_eq!(y.shape(), &[0, 2, 4, 4]);
            let dx = conv.backward(&Tensor::zeros(&[0, 2, 4, 4]));
            assert_eq!(dx.shape(), &[0, 1, 4, 4]);
        }
    }

    #[test]
    fn sum_w_is_memoized_across_unchanged_weights() {
        let (lut, grads) = exact8();
        let mut lin = ApproxLinear::with_params(
            ramp(&[2, 3], 1.0),
            Tensor::zeros(&[2]),
            lut,
            grads,
            QuantConfig::default(),
        );
        assert_eq!(lin.sum_w_rebuilds(), 0);
        let x1 = ramp(&[4, 3], 1.5);
        let y1 = lin.forward(&x1, false);
        assert_eq!(lin.sum_w_rebuilds(), 1, "first forward builds the sums");
        // Eval loop: same weights, different batches — sums are reused.
        lin.forward(&ramp(&[5, 3], 0.7), false);
        let y1_again = lin.forward(&x1, false);
        assert_eq!(lin.sum_w_rebuilds(), 1, "unchanged weights reuse the sums");
        assert_eq!(y1, y1_again, "memoization must not change outputs");
        // A weight update requantizes and invalidates the memo.
        lin.weight.value.as_mut_slice()[0] += 0.5;
        lin.forward(&x1, false);
        assert_eq!(lin.sum_w_rebuilds(), 2, "changed weights rebuild the sums");
    }

    #[test]
    fn parallel_gemm_is_bit_identical_to_serial() {
        // Shapes deliberately not divisible by the worker counts, plus
        // single-row and single-column degenerate cases.
        for &(m, j, k) in &[
            (5usize, 3usize, 7usize),
            (1, 1, 1),
            (17, 5, 11),
            (4, 2, 1),
            (1, 8, 3),
        ] {
            for threads in [1usize, 2, 3, 4, 8] {
                assert_gemm_parity(m, j, k, threads);
            }
        }
    }

    #[test]
    fn parallel_gemm_parity_on_random_shapes() {
        let mut rng = appmult_rng::Rng64::seed_from_u64(0x6E44);
        for _ in 0..12 {
            let m = 1 + rng.below(24) as usize;
            let j = 1 + rng.below(9) as usize;
            let k = 1 + rng.below(13) as usize;
            let threads = 1 + rng.below(6) as usize;
            assert_gemm_parity(m, j, k, threads);
        }
    }

    #[test]
    #[should_panic(expected = "gradient LUT rejected")]
    fn poisoned_gradient_lut_is_rejected_at_construction() {
        let lut = Arc::new(ExactMultiplier::new(4).to_lut());
        let mut bad = vec![1.0f32; 256];
        bad[5] = f32::INFINITY;
        let grads = Arc::new(GradientLut::build(
            &lut,
            GradientMode::Custom {
                wrt_w: Arc::new(bad),
                wrt_x: Arc::new(vec![1.0; 256]),
            },
        ));
        let _ = ApproxLinear::new(3, 2, 1, lut, grads, QuantConfig::default());
    }

    #[test]
    fn eval_mode_calibrates_once_then_freezes() {
        let (lut, grads) = exact8();
        let mut approx = ApproxLinear::with_params(
            ramp(&[2, 3], 1.0),
            Tensor::zeros(&[2]),
            lut,
            grads,
            QuantConfig::default(),
        );
        // First eval forward calibrates (initial-accuracy use case).
        approx.forward(&ramp(&[2, 3], 1.0), false);
        let r1 = approx.observer.range().expect("calibrated");
        // Subsequent eval forwards do not move the range.
        approx.forward(&ramp(&[2, 3], 10.0), false);
        assert_eq!(approx.observer.range().expect("still calibrated"), r1);
        // A train forward does.
        approx.forward(&ramp(&[2, 3], 10.0), true);
        assert_ne!(approx.observer.range().expect("updated"), r1);
    }
}
