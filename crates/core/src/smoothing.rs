//! Moving-average smoothing of the AppMult function (Eq. 4).
//!
//! With the least-significant partial products removed, `AM(W_f, X)` is a
//! staircase in `X`: zero slope almost everywhere and huge jumps at the
//! stair edges — both hostile to gradient descent (Sec. III-A, Fig. 3a).
//! Eq. 4 replaces each point by the mean of its `2 * HWS + 1` neighbours:
//!
//! ```text
//! S(W_f, X) = (1 / (2 HWS + 1)) * sum_{dx = -HWS}^{HWS} AM(W_f, X + dx)
//! ```
//!
//! defined for `HWS <= X <= 2^B - 1 - HWS` (the window must stay inside the
//! operand range).

/// The smoothed slice `S(W_f, ·)` of one AppMult row (Eq. 4).
///
/// `row` is `AM(W_f, X)` for `X = 0 .. 2^B - 1` and must have power-of-two
/// length. The result assigns `Some(value)` inside the valid domain
/// `HWS <= X <= 2^B - 1 - HWS` and `None` outside it (where Eq. 6 takes
/// over in the gradient computation).
///
/// When `2 * hws + 1` exceeds the row length the valid domain is empty.
///
/// # Panics
///
/// Panics if `row` is empty or its length is not a power of two, or if
/// `hws == 0`.
///
/// # Example
///
/// ```
/// // A 4-point staircase: smoothing with HWS = 1 averages triples.
/// let row = [0u32, 0, 8, 8];
/// let s = appmult_retrain::smooth_row(&row, 1);
/// assert_eq!(s, vec![
///     None,
///     Some((0.0 + 0.0 + 8.0) / 3.0),
///     Some((0.0 + 8.0 + 8.0) / 3.0),
///     None,
/// ]);
/// ```
pub fn smooth_row(row: &[u32], hws: u32) -> Vec<Option<f64>> {
    assert!(
        !row.is_empty() && row.len().is_power_of_two(),
        "row length must be 2^B"
    );
    assert!(hws >= 1, "half window size must be positive");
    let n = row.len();
    let hws = hws as usize;
    let mut out = vec![None; n];
    if 2 * hws + 1 > n {
        return out; // empty valid domain; Eq. 6 covers everything
    }
    let inv = 1.0 / (2 * hws + 1) as f64;
    // Sliding-window sum over X in [hws, n - 1 - hws].
    let mut acc: f64 = row[..2 * hws + 1].iter().map(|&v| f64::from(v)).sum();
    out[hws] = Some(acc * inv);
    for x in hws + 1..n - hws {
        acc += f64::from(row[x + hws]) - f64::from(row[x - hws - 1]);
        out[x] = Some(acc * inv);
    }
    out
}

/// Total variation helper: `(max, min)` of a row, used by the Eq. 6
/// boundary gradient.
pub(crate) fn row_min_max(row: &[u32]) -> (u32, u32) {
    let mut lo = u32::MAX;
    let mut hi = 0u32;
    for &v in row {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_direct_evaluation_of_eq4() {
        // Pseudo-random 16-point row; compare sliding window vs direct sum.
        let row: Vec<u32> = (0..16).map(|x| (x * x * 7 + 3) % 97).collect();
        for hws in 1..=7u32 {
            let s = smooth_row(&row, hws);
            let h = hws as usize;
            for (x, &sx) in s.iter().enumerate() {
                if x >= h && x + h < 16 {
                    let direct: f64 = (x - h..=x + h).map(|i| f64::from(row[i])).sum::<f64>()
                        / (2 * h + 1) as f64;
                    let got = sx.expect("inside valid domain");
                    assert!((got - direct).abs() < 1e-9, "hws={hws} x={x}");
                } else {
                    assert!(sx.is_none(), "hws={hws} x={x} should be boundary");
                }
            }
        }
    }

    #[test]
    fn constant_row_smooths_to_itself() {
        let row = [5u32; 32];
        let s = smooth_row(&row, 4);
        for &sx in &s[4..28] {
            assert_eq!(sx, Some(5.0));
        }
    }

    #[test]
    fn oversized_window_yields_empty_domain() {
        let row = [1u32, 2, 3, 4];
        let s = smooth_row(&row, 2);
        assert!(s.iter().all(Option::is_none));
    }

    #[test]
    fn linear_row_is_fixed_point() {
        // Smoothing a linear function leaves it unchanged (moving average
        // of an affine sequence).
        let row: Vec<u32> = (0..64).map(|x| 3 * x).collect();
        let s = smooth_row(&row, 5);
        for (x, &sx) in s.iter().enumerate().take(59).skip(5) {
            assert!((sx.expect("valid") - f64::from(3 * x as u32)).abs() < 1e-9);
        }
    }

    #[test]
    fn min_max_helper() {
        assert_eq!(row_min_max(&[4, 1, 9, 2]), (1, 9));
    }

    #[test]
    #[should_panic(expected = "row length must be 2^B")]
    fn rejects_non_power_of_two() {
        smooth_row(&[1, 2, 3], 1);
    }
}
