//! Moving-average smoothing of the AppMult function (Eq. 4).
//!
//! With the least-significant partial products removed, `AM(W_f, X)` is a
//! staircase in `X`: zero slope almost everywhere and huge jumps at the
//! stair edges — both hostile to gradient descent (Sec. III-A, Fig. 3a).
//! Eq. 4 replaces each point by the mean of its `2 * HWS + 1` neighbours:
//!
//! ```text
//! S(W_f, X) = (1 / (2 HWS + 1)) * sum_{dx = -HWS}^{HWS} AM(W_f, X + dx)
//! ```
//!
//! defined for `HWS <= X <= 2^B - 1 - HWS` (the window must stay inside the
//! operand range).
//!
//! The journal extension generalizes the box average into a family of
//! smoothing kernels ([`SmoothingKernel`]): box, triangular, and
//! discrete-Gaussian weights over the same window, plus an
//! input-distribution-weighted variant ([`weighted_smooth_row`]) that
//! emphasizes operand values the network actually produces.

/// Weight profile of the Eq. 4 smoothing window.
///
/// Every kernel is symmetric, strictly positive over `dx in [-HWS, HWS]`,
/// and normalized to sum 1, so constant rows are a fixed point and linear
/// rows stay linear under all of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SmoothingKernel {
    /// Uniform weights — the DATE paper's moving average (Eq. 4).
    Box,
    /// Triangular taper: weight `HWS + 1 - |dx|`, the linear B-spline.
    Triangular,
    /// Discrete Gaussian with `sigma = HWS / 2`, truncated to the window.
    Gaussian,
}

impl SmoothingKernel {
    /// Stable identifier usable as a JSON key (`box` / `tri` / `gauss`).
    pub fn key(&self) -> &'static str {
        match self {
            SmoothingKernel::Box => "box",
            SmoothingKernel::Triangular => "tri",
            SmoothingKernel::Gaussian => "gauss",
        }
    }

    /// The window weights for half window size `hws`, normalized to sum 1,
    /// indexed by `dx + hws` for `dx in [-hws, hws]`.
    ///
    /// # Panics
    ///
    /// Panics if `hws == 0`.
    pub fn weights(&self, hws: u32) -> Vec<f64> {
        assert!(hws >= 1, "half window size must be positive");
        let h = hws as i64;
        let raw: Vec<f64> = (-h..=h)
            .map(|dx| match self {
                SmoothingKernel::Box => 1.0,
                SmoothingKernel::Triangular => (h + 1 - dx.abs()) as f64,
                SmoothingKernel::Gaussian => {
                    let sigma = f64::from(hws) / 2.0;
                    (-0.5 * (dx as f64 / sigma).powi(2)).exp()
                }
            })
            .collect();
        let sum: f64 = raw.iter().sum();
        raw.into_iter().map(|w| w / sum).collect()
    }
}

/// The smoothed slice `S(W_f, ·)` of one AppMult row (Eq. 4).
///
/// `row` is `AM(W_f, X)` for `X = 0 .. 2^B - 1` and must have power-of-two
/// length. The result assigns `Some(value)` inside the valid domain
/// `HWS <= X <= 2^B - 1 - HWS` and `None` outside it (where Eq. 6 takes
/// over in the gradient computation).
///
/// When `2 * hws + 1` exceeds the row length the valid domain is empty.
///
/// # Panics
///
/// Panics if `row` is empty or its length is not a power of two, or if
/// `hws == 0`.
///
/// # Example
///
/// ```
/// // A 4-point staircase: smoothing with HWS = 1 averages triples.
/// let row = [0u32, 0, 8, 8];
/// let s = appmult_retrain::smooth_row(&row, 1);
/// assert_eq!(s, vec![
///     None,
///     Some((0.0 + 0.0 + 8.0) / 3.0),
///     Some((0.0 + 8.0 + 8.0) / 3.0),
///     None,
/// ]);
/// ```
pub fn smooth_row(row: &[u32], hws: u32) -> Vec<Option<f64>> {
    assert!(
        !row.is_empty() && row.len().is_power_of_two(),
        "row length must be 2^B"
    );
    assert!(hws >= 1, "half window size must be positive");
    let n = row.len();
    let hws = hws as usize;
    let mut out = vec![None; n];
    if 2 * hws + 1 > n {
        return out; // empty valid domain; Eq. 6 covers everything
    }
    let inv = 1.0 / (2 * hws + 1) as f64;
    // Sliding-window sum over X in [hws, n - 1 - hws].
    let mut acc: f64 = row[..2 * hws + 1].iter().map(|&v| f64::from(v)).sum();
    out[hws] = Some(acc * inv);
    for x in hws + 1..n - hws {
        acc += f64::from(row[x + hws]) - f64::from(row[x - hws - 1]);
        out[x] = Some(acc * inv);
    }
    out
}

/// Kernel-weighted Eq. 4 smoothing: like [`smooth_row`] but with the
/// window weights of `kernel` instead of the uniform box average.
///
/// [`SmoothingKernel::Box`] delegates to [`smooth_row`] so the box kernel
/// is *bit-identical* to the DATE paper's sliding-window implementation
/// (the golden fig3 series and the `DifferenceBased` gradient tables
/// depend on that exact accumulation order).
///
/// # Panics
///
/// Panics under the same conditions as [`smooth_row`].
pub fn smooth_row_kernel(row: &[u32], hws: u32, kernel: SmoothingKernel) -> Vec<Option<f64>> {
    if kernel == SmoothingKernel::Box {
        return smooth_row(row, hws);
    }
    assert!(
        !row.is_empty() && row.len().is_power_of_two(),
        "row length must be 2^B"
    );
    let n = row.len();
    let h = hws as usize;
    let mut out = vec![None; n];
    if 2 * h + 1 > n {
        return out;
    }
    let weights = kernel.weights(hws);
    for x in h..n - h {
        let s: f64 = weights
            .iter()
            .zip(&row[x - h..=x + h])
            .map(|(&w, &v)| w * f64::from(v))
            .sum();
        out[x] = Some(s);
    }
    out
}

/// Input-distribution-weighted Eq. 4 smoothing: each neighbour `X + dx`
/// is weighted by its operand marginal `probs[X + dx]` and the window is
/// renormalized, so operand values the network actually produces dominate
/// the average. A window whose total probability mass is zero falls back
/// to the uniform box average (the estimator must stay defined on operand
/// values the profile never saw).
///
/// # Panics
///
/// Panics if `probs.len() != row.len()`, if any probability is negative
/// or non-finite, or under the [`smooth_row`] domain conditions.
pub fn weighted_smooth_row(row: &[u32], hws: u32, probs: &[f64]) -> Vec<Option<f64>> {
    assert!(
        !row.is_empty() && row.len().is_power_of_two(),
        "row length must be 2^B"
    );
    assert!(hws >= 1, "half window size must be positive");
    assert_eq!(probs.len(), row.len(), "marginal length must be 2^B");
    assert!(
        probs.iter().all(|p| p.is_finite() && *p >= 0.0),
        "marginals must be finite and non-negative"
    );
    let n = row.len();
    let h = hws as usize;
    let mut out = vec![None; n];
    if 2 * h + 1 > n {
        return out;
    }
    for x in h..n - h {
        let mass: f64 = probs[x - h..=x + h].iter().sum();
        let s = if mass > 0.0 {
            probs[x - h..=x + h]
                .iter()
                .zip(&row[x - h..=x + h])
                .map(|(&p, &v)| p * f64::from(v))
                .sum::<f64>()
                / mass
        } else {
            row[x - h..=x + h]
                .iter()
                .map(|&v| f64::from(v))
                .sum::<f64>()
                / (2 * h + 1) as f64
        };
        out[x] = Some(s);
    }
    out
}

/// Total variation helper: `(max, min)` of a row, used by the Eq. 6
/// boundary gradient.
pub(crate) fn row_min_max(row: &[u32]) -> (u32, u32) {
    let mut lo = u32::MAX;
    let mut hi = 0u32;
    for &v in row {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_direct_evaluation_of_eq4() {
        // Pseudo-random 16-point row; compare sliding window vs direct sum.
        let row: Vec<u32> = (0..16).map(|x| (x * x * 7 + 3) % 97).collect();
        for hws in 1..=7u32 {
            let s = smooth_row(&row, hws);
            let h = hws as usize;
            for (x, &sx) in s.iter().enumerate() {
                if x >= h && x + h < 16 {
                    let direct: f64 = (x - h..=x + h).map(|i| f64::from(row[i])).sum::<f64>()
                        / (2 * h + 1) as f64;
                    let got = sx.expect("inside valid domain");
                    assert!((got - direct).abs() < 1e-9, "hws={hws} x={x}");
                } else {
                    assert!(sx.is_none(), "hws={hws} x={x} should be boundary");
                }
            }
        }
    }

    #[test]
    fn constant_row_smooths_to_itself() {
        let row = [5u32; 32];
        let s = smooth_row(&row, 4);
        for &sx in &s[4..28] {
            assert_eq!(sx, Some(5.0));
        }
    }

    #[test]
    fn oversized_window_yields_empty_domain() {
        let row = [1u32, 2, 3, 4];
        let s = smooth_row(&row, 2);
        assert!(s.iter().all(Option::is_none));
    }

    #[test]
    fn linear_row_is_fixed_point() {
        // Smoothing a linear function leaves it unchanged (moving average
        // of an affine sequence).
        let row: Vec<u32> = (0..64).map(|x| 3 * x).collect();
        let s = smooth_row(&row, 5);
        for (x, &sx) in s.iter().enumerate().take(59).skip(5) {
            assert!((sx.expect("valid") - f64::from(3 * x as u32)).abs() < 1e-9);
        }
    }

    #[test]
    fn min_max_helper() {
        assert_eq!(row_min_max(&[4, 1, 9, 2]), (1, 9));
    }

    #[test]
    #[should_panic(expected = "row length must be 2^B")]
    fn rejects_non_power_of_two() {
        smooth_row(&[1, 2, 3], 1);
    }

    #[test]
    fn kernel_weights_are_normalized_and_symmetric() {
        for kernel in [
            SmoothingKernel::Box,
            SmoothingKernel::Triangular,
            SmoothingKernel::Gaussian,
        ] {
            for hws in 1..=6u32 {
                let w = kernel.weights(hws);
                assert_eq!(w.len(), 2 * hws as usize + 1);
                assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
                for i in 0..w.len() {
                    assert!(w[i] > 0.0, "{kernel:?} hws={hws} i={i}");
                    assert!(
                        (w[i] - w[w.len() - 1 - i]).abs() < 1e-12,
                        "{kernel:?} hws={hws} asymmetric at {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn box_kernel_is_bit_identical_to_smooth_row() {
        let row: Vec<u32> = (0..64).map(|x| (x * x * 13 + 5) % 401).collect();
        for hws in [1u32, 3, 7] {
            let a = smooth_row(&row, hws);
            let b = smooth_row_kernel(&row, hws, SmoothingKernel::Box);
            let bits = |v: &[Option<f64>]| -> Vec<Option<u64>> {
                v.iter().map(|o| o.map(f64::to_bits)).collect()
            };
            assert_eq!(bits(&a), bits(&b), "hws={hws}");
        }
    }

    #[test]
    fn triangular_and_gaussian_peak_on_the_center() {
        for kernel in [SmoothingKernel::Triangular, SmoothingKernel::Gaussian] {
            let w = kernel.weights(4);
            let center = w[4];
            for (i, &v) in w.iter().enumerate() {
                assert!(v <= center + 1e-15, "{kernel:?} i={i}");
            }
            assert!(w[0] < center, "{kernel:?} tails must taper");
        }
    }

    #[test]
    fn every_kernel_preserves_linear_rows() {
        let row: Vec<u32> = (0..64).map(|x| 7 * x + 3).collect();
        for kernel in [
            SmoothingKernel::Box,
            SmoothingKernel::Triangular,
            SmoothingKernel::Gaussian,
        ] {
            let s = smooth_row_kernel(&row, 4, kernel);
            for (x, &sx) in s.iter().enumerate().take(60).skip(4) {
                let expect = f64::from(row[x]);
                assert!(
                    (sx.expect("interior") - expect).abs() < 1e-9,
                    "{kernel:?} x={x}"
                );
            }
        }
    }

    #[test]
    fn uniform_marginals_reduce_to_the_box_average() {
        let row: Vec<u32> = (0..32).map(|x| (x * 11 + 2) % 57).collect();
        let probs = vec![1.0 / 32.0; 32];
        let weighted = weighted_smooth_row(&row, 3, &probs);
        let boxed = smooth_row(&row, 3);
        for (x, (a, b)) in weighted.iter().zip(&boxed).enumerate() {
            match (a, b) {
                (Some(a), Some(b)) => assert!((a - b).abs() < 1e-9, "x={x}"),
                (None, None) => {}
                other => panic!("domain mismatch at {x}: {other:?}"),
            }
        }
    }

    #[test]
    fn zero_mass_window_falls_back_to_the_box_average() {
        let row: Vec<u32> = (0..16).map(|x| x * x).collect();
        // All probability mass far to the right: early windows are empty.
        let mut probs = vec![0.0f64; 16];
        probs[15] = 1.0;
        let weighted = weighted_smooth_row(&row, 2, &probs);
        let boxed = smooth_row(&row, 2);
        assert_eq!(weighted[2], boxed[2], "empty-mass window uses Eq. 4");
        // A window containing index 15 is dominated by it entirely.
        assert!((weighted[13].expect("interior") - f64::from(row[15])).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "marginal length")]
    fn weighted_rejects_marginal_length_mismatch() {
        weighted_smooth_row(&[1, 2, 3, 4], 1, &[0.5, 0.5]);
    }
}
