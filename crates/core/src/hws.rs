//! Half-window-size (HWS) selection (Sec. V-A).
//!
//! The paper tunes the Eq. 4 half window size per AppMult by sweeping
//! `HWS in {1, 2, 4, 8, 16, 32, 64}`, retraining a small LeNet on CIFAR-10
//! for 5 epochs with each candidate, and keeping the one with the smallest
//! training loss. This module provides the sweep scaffolding; the proxy
//! training run is supplied by the caller (so the selection is reusable
//! with any model/dataset pairing).

/// The candidate set used in the paper.
pub const PAPER_HWS_CANDIDATES: [u32; 7] = [1, 2, 4, 8, 16, 32, 64];

/// One candidate's outcome in an HWS sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HwsTrial {
    /// The candidate half window size.
    pub hws: u32,
    /// Final training loss of the proxy run.
    pub train_loss: f64,
}

/// Result of an HWS sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct HwsSelection {
    /// The winning half window size (smallest training loss).
    pub best: u32,
    /// All trials in sweep order.
    pub trials: Vec<HwsTrial>,
}

/// Why an HWS sweep could not produce a selection.
#[derive(Debug, Clone, PartialEq)]
pub enum HwsError {
    /// The candidate list was empty, so there was nothing to sweep.
    NoCandidates,
    /// Every proxy run returned a non-finite loss; the trials are included
    /// so callers can report what was attempted.
    AllDiverged(Vec<HwsTrial>),
}

impl std::fmt::Display for HwsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HwsError::NoCandidates => write!(f, "HWS sweep got an empty candidate list"),
            HwsError::AllDiverged(trials) => {
                let hws: Vec<String> = trials.iter().map(|t| t.hws.to_string()).collect();
                write!(
                    f,
                    "every HWS proxy run diverged (non-finite loss for candidates {})",
                    hws.join(", ")
                )
            }
        }
    }
}

impl std::error::Error for HwsError {}

/// Sweeps `candidates`, calling `proxy_loss(hws)` for each (a short
/// retraining run returning its final training loss), and picks the
/// candidate with the smallest loss. Candidates whose proxy loss is not
/// finite are skipped.
///
/// # Errors
///
/// Returns [`HwsError::NoCandidates`] if `candidates` is empty and
/// [`HwsError::AllDiverged`] if every proxy loss is non-finite.
///
/// # Example
///
/// ```
/// use appmult_retrain::{select_hws, PAPER_HWS_CANDIDATES};
///
/// // A synthetic proxy with a sweet spot at 8.
/// let sel = select_hws(&PAPER_HWS_CANDIDATES, |hws| {
///     ((hws as f64).log2() - 3.0).abs()
/// })
/// .unwrap();
/// assert_eq!(sel.best, 8);
/// assert_eq!(sel.trials.len(), 7);
/// ```
pub fn select_hws<F: FnMut(u32) -> f64>(
    candidates: &[u32],
    mut proxy_loss: F,
) -> Result<HwsSelection, HwsError> {
    if candidates.is_empty() {
        return Err(HwsError::NoCandidates);
    }
    let mut trials = Vec::with_capacity(candidates.len());
    for &hws in candidates {
        let train_loss = proxy_loss(hws);
        trials.push(HwsTrial { hws, train_loss });
    }
    let best = trials
        .iter()
        .filter(|t| t.train_loss.is_finite())
        .min_by(|a, b| a.train_loss.total_cmp(&b.train_loss));
    match best {
        Some(t) => Ok(HwsSelection {
            best: t.hws,
            trials,
        }),
        None => Err(HwsError::AllDiverged(trials)),
    }
}

/// Filters the paper's candidate set down to values that are meaningful
/// for a `bits`-bit multiplier (a window of `2 * HWS + 1` must fit inside
/// the operand range for Eq. 5 to have a non-empty domain).
pub fn candidates_for_bits(bits: u32) -> Vec<u32> {
    let limit = (1u32 << bits) / 2;
    PAPER_HWS_CANDIDATES
        .iter()
        .copied()
        .filter(|&h| h < limit)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_minimum_loss() {
        let sel = select_hws(&[1, 2, 4], |h| (h as f64 - 2.0).powi(2)).unwrap();
        assert_eq!(sel.best, 2);
    }

    #[test]
    fn skips_diverged_runs() {
        let sel = select_hws(&[1, 2, 4], |h| if h == 1 { f64::NAN } else { h as f64 }).unwrap();
        assert_eq!(sel.best, 2);
    }

    #[test]
    fn candidate_filter_respects_bitwidth() {
        assert_eq!(candidates_for_bits(6), vec![1, 2, 4, 8, 16]);
        assert_eq!(candidates_for_bits(7), vec![1, 2, 4, 8, 16, 32]);
        assert_eq!(candidates_for_bits(8), vec![1, 2, 4, 8, 16, 32, 64]);
    }

    #[test]
    fn all_nan_is_a_descriptive_error() {
        let err = select_hws(&[1, 2], |_| f64::NAN).unwrap_err();
        assert!(matches!(&err, HwsError::AllDiverged(trials) if trials.len() == 2));
        let msg = err.to_string();
        assert!(msg.contains("diverged"), "message: {msg}");
        assert!(msg.contains("1, 2"), "message: {msg}");
    }

    #[test]
    fn empty_candidates_is_an_error() {
        let err = select_hws(&[], |_| 0.0).unwrap_err();
        assert_eq!(err, HwsError::NoCandidates);
        assert!(err.to_string().contains("empty candidate list"));
    }
}
