//! The AppMult-aware retraining loop (Sec. IV / V-A).

use appmult_nn::loss::softmax_cross_entropy;
use appmult_nn::metrics::{top_k_accuracy, RunningMean};
use appmult_nn::optim::{Optimizer, StepSchedule};
use appmult_nn::{Module, Tensor};
use appmult_obs::ObsSink;

use crate::resilience::{ResiliencePolicy, RollbackGuard};

/// One pre-assembled mini-batch: NCHW images and integer labels.
pub type Batch = (Tensor, Vec<usize>);

/// Retraining configuration.
///
/// The defaults follow the paper's setup: Adam (supplied by the caller),
/// 30 epochs, and the step learning-rate schedule of Sec. V-A.
#[derive(Debug, Clone)]
pub struct RetrainConfig {
    /// Number of epochs.
    pub epochs: usize,
    /// Learning-rate schedule, indexed by 1-based epoch.
    pub schedule: StepSchedule,
    /// Evaluate on the test set every `eval_every` epochs (always on the
    /// final epoch).
    pub eval_every: usize,
    /// NaN-guard / divergence-rollback policy. `None` (the default) keeps
    /// the legacy loop numerics untouched; set it when retraining against
    /// defective hardware (see the `appmult-mult` fault models).
    pub resilience: Option<ResiliencePolicy>,
    /// Observability sink for the loop's spans, metrics, and per-epoch
    /// events. Defaults to the no-op null sink; gradient-norm and
    /// weight-update statistics (which cost an extra pass over the
    /// parameters) are only computed when the sink records.
    pub obs: ObsSink,
}

impl Default for RetrainConfig {
    fn default() -> Self {
        Self {
            epochs: 30,
            schedule: StepSchedule::paper_default(),
            eval_every: 1,
            resilience: None,
            obs: ObsSink::null(),
        }
    }
}

impl RetrainConfig {
    /// A scaled-down configuration for CPU-sized experiments.
    pub fn quick(epochs: usize) -> Self {
        Self {
            epochs,
            schedule: StepSchedule::new(vec![(1, 1e-3)]),
            eval_every: 1,
            resilience: None,
            obs: ObsSink::null(),
        }
    }

    /// Enables the given resilience policy (builder style).
    pub fn with_resilience(mut self, policy: ResiliencePolicy) -> Self {
        self.resilience = Some(policy);
        self
    }

    /// Attaches an observability sink (builder style).
    pub fn with_obs(mut self, obs: ObsSink) -> Self {
        self.obs = obs;
        self
    }
}

/// Per-epoch statistics of a retraining run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// 1-based epoch index.
    pub epoch: usize,
    /// Learning rate used this epoch.
    pub lr: f32,
    /// Mean training loss.
    pub train_loss: f64,
    /// Top-1 test accuracy (NaN-free; `None` on non-eval epochs).
    pub test_top1: Option<f64>,
    /// Top-5 test accuracy.
    pub test_top5: Option<f64>,
    /// Non-finite gradient entries zeroed this epoch (0 without a
    /// [`ResiliencePolicy`]).
    pub scrubbed_grads: usize,
    /// Rollbacks to the best checkpoint performed at the end of this epoch
    /// (0 or 1; always 0 without a [`ResiliencePolicy`]).
    pub rollbacks: usize,
}

/// Full history of a retraining run.
#[derive(Debug, Clone, Default)]
pub struct RetrainHistory {
    /// Per-epoch records in order.
    pub epochs: Vec<EpochStats>,
}

impl RetrainHistory {
    /// Final top-1 test accuracy.
    ///
    /// # Panics
    ///
    /// Panics if the run recorded no evaluation.
    pub fn final_top1(&self) -> f64 {
        self.epochs
            .iter()
            .rev()
            .find_map(|e| e.test_top1)
            .expect("no evaluation was recorded")
    }

    /// Final top-5 test accuracy.
    ///
    /// # Panics
    ///
    /// Panics if the run recorded no evaluation.
    pub fn final_top5(&self) -> f64 {
        self.epochs
            .iter()
            .rev()
            .find_map(|e| e.test_top5)
            .expect("no evaluation was recorded")
    }

    /// Final training loss.
    pub fn final_train_loss(&self) -> f64 {
        self.epochs.last().map(|e| e.train_loss).unwrap_or(f64::NAN)
    }

    /// Total rollbacks performed across the run.
    pub fn total_rollbacks(&self) -> usize {
        self.epochs.iter().map(|e| e.rollbacks).sum()
    }

    /// Total non-finite gradient entries scrubbed across the run.
    pub fn total_scrubbed_grads(&self) -> usize {
        self.epochs.iter().map(|e| e.scrubbed_grads).sum()
    }
}

/// Evaluates top-1/top-5 accuracy of `model` over `batches` in eval mode.
pub fn evaluate(model: &mut dyn Module, batches: &[Batch]) -> (f64, f64) {
    let mut top1 = RunningMean::new();
    let mut top5 = RunningMean::new();
    for (x, labels) in batches {
        let logits = model.forward(x, false);
        top1.add(top_k_accuracy(&logits, labels, 1), labels.len() as u64);
        top5.add(top_k_accuracy(&logits, labels, 5), labels.len() as u64);
    }
    (top1.mean(), top5.mean())
}

/// Runs AppMult-aware retraining: for each epoch, sets the scheduled
/// learning rate, iterates the training batches (forward through the
/// AppMult LUTs, backward through the gradient LUTs), and evaluates.
///
/// The caller owns the model (with approximate layers already installed),
/// the optimizer, and the batched data; this keeps the loop reusable for
/// STE-vs-ours comparisons on identical initial conditions.
///
/// With [`RetrainConfig::resilience`] set, each batch's gradients are
/// scrubbed of non-finite entries and norm-clipped before the optimizer
/// step, non-finite batch losses are excluded from the epoch mean, and
/// diverged epochs roll the model back to the best in-memory checkpoint
/// with a compounding learning-rate backoff. The optimizer's internal
/// state (momentum, Adam moments) is intentionally *not* rolled back —
/// it decays on its own and rebuilding it would require optimizer
/// cooperation.
///
/// # Panics
///
/// Panics if `train` is empty.
pub fn retrain(
    model: &mut dyn Module,
    optimizer: &mut dyn Optimizer,
    config: &RetrainConfig,
    train: &[Batch],
    test: &[Batch],
) -> RetrainHistory {
    assert!(!train.is_empty(), "no training batches");
    let obs = &config.obs;
    let _run_span = obs.span("retrain");
    let mut history = RetrainHistory::default();
    let mut guard = config
        .resilience
        .clone()
        .map(|policy| RollbackGuard::new(policy, model));
    for epoch in 1..=config.epochs {
        let _epoch_span = obs.span("epoch");
        let lr_scale = guard.as_ref().map_or(1.0, |g| g.lr_scale);
        let lr = config.schedule.lr_for_epoch(epoch) * lr_scale;
        optimizer.set_lr(lr);
        obs.gauge_set("lr", f64::from(lr));
        let mut loss_mean = RunningMean::new();
        let mut grad_norm_mean = RunningMean::new();
        let mut scrubbed_grads = 0usize;
        let mut nonfinite_batches = 0usize;
        // Deterministic batch-order shuffle that varies per epoch.
        let order = shuffled_order(train.len(), epoch as u64);
        for &bi in &order {
            let _batch_span = obs.span("batch");
            let (x, labels) = &train[bi];
            let logits = model.forward(x, true);
            let (loss, grad) = softmax_cross_entropy(&logits, labels);
            model.backward(&grad);
            if let Some(g) = &guard {
                scrubbed_grads += g.scrub(model);
            }
            // Gradient statistics cost a pass over the parameters, so they
            // are gated on a recording sink rather than free-running.
            let pre_step = if obs.is_enabled() {
                let norm = gradient_norm(model);
                obs.observe("grad_norm", norm);
                if norm.is_finite() {
                    grad_norm_mean.add(norm, 1);
                }
                Some(flat_params(model))
            } else {
                None
            };
            optimizer.step(model);
            if let Some(pre) = pre_step {
                obs.observe("weight_update_magnitude", update_magnitude(model, &pre));
            }
            model.zero_grad();
            if guard.is_some() && !loss.is_finite() {
                nonfinite_batches += 1;
            } else {
                loss_mean.add(f64::from(loss), labels.len() as u64);
            }
        }
        let train_loss = loss_mean.mean();
        let rollbacks = guard.as_mut().map_or(0, |g| {
            g.observe_epoch(model, train_loss, nonfinite_batches > 0)
        });
        let evaluate_now =
            !test.is_empty() && (epoch % config.eval_every == 0 || epoch == config.epochs);
        let (t1, t5) = if evaluate_now {
            let _eval_span = obs.span("eval");
            let (a, b) = evaluate(model, test);
            (Some(a), Some(b))
        } else {
            (None, None)
        };
        if obs.is_enabled() {
            let mut fields: Vec<(&str, appmult_obs::Value)> = vec![
                ("epoch", epoch.into()),
                ("lr", lr.into()),
                ("train_loss", train_loss.into()),
                ("grad_norm", grad_norm_mean.mean().into()),
                ("scrubbed_grads", scrubbed_grads.into()),
                ("rollbacks", rollbacks.into()),
            ];
            if let Some(t1) = t1 {
                fields.push(("test_top1", t1.into()));
            }
            if let Some(t5) = t5 {
                fields.push(("test_top5", t5.into()));
            }
            obs.event("epoch", &fields);
        }
        history.epochs.push(EpochStats {
            epoch,
            lr,
            train_loss,
            test_top1: t1,
            test_top5: t5,
            scrubbed_grads,
            rollbacks,
        });
    }
    history
}

/// Global L2 norm of the model's current gradients (finite entries only,
/// matching the resilience scrubber's definition).
fn gradient_norm(model: &mut dyn Module) -> f64 {
    let mut sq_sum = 0f64;
    model.visit_params(&mut |p| {
        for g in p.grad.as_slice() {
            if g.is_finite() {
                sq_sum += f64::from(*g) * f64::from(*g);
            }
        }
    });
    sq_sum.sqrt()
}

/// Flat copy of every parameter value, for update-magnitude deltas.
fn flat_params(model: &mut dyn Module) -> Vec<f32> {
    let mut flat = Vec::new();
    model.visit_params(&mut |p| flat.extend_from_slice(p.value.as_slice()));
    flat
}

/// L2 norm of the parameter change relative to the `pre` snapshot.
fn update_magnitude(model: &mut dyn Module, pre: &[f32]) -> f64 {
    let mut sq_sum = 0f64;
    let mut idx = 0usize;
    model.visit_params(&mut |p| {
        for v in p.value.as_slice() {
            let d = f64::from(v - pre[idx]);
            if d.is_finite() {
                sq_sum += d * d;
            }
            idx += 1;
        }
    });
    sq_sum.sqrt()
}

/// Deterministic permutation of `0..len` derived from `seed`
/// (splitmix-style Fisher-Yates).
fn shuffled_order(len: usize, seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..len).collect();
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    let mut next = || {
        state ^= state >> 30;
        state = state.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        state ^= state >> 27;
        state = state.wrapping_mul(0x94D0_49BB_1331_11EB);
        state ^= state >> 31;
        state
    };
    for i in (1..order.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use appmult_nn::layers::{Flatten, Linear, Sequential};
    use appmult_nn::optim::Adam;

    fn two_blob_batches(n_batches: usize, seed: u64) -> Vec<Batch> {
        // Two linearly separable 1x2x2 "image" classes.
        let mut out = vec![];
        let mut s = seed;
        for _ in 0..n_batches {
            let mut data = vec![];
            let mut labels = vec![];
            for k in 0..8 {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let noise = ((s >> 33) as f32 / 2.0_f32.powi(31)) * 0.2;
                let class = k % 2;
                let base = if class == 0 { 0.8 } else { -0.8 };
                data.extend_from_slice(&[base + noise, -base, base, -base - noise]);
                labels.push(class);
            }
            out.push((Tensor::from_vec(data, &[8, 1, 2, 2]), labels));
        }
        out
    }

    fn tiny_model(seed: u64) -> Sequential {
        Sequential::new()
            .push(Flatten::new())
            .push(Linear::new(4, 2, seed))
    }

    #[test]
    fn retraining_learns_a_separable_task() {
        let train = two_blob_batches(8, 3);
        let test = two_blob_batches(2, 99);
        let mut model = tiny_model(1);
        let mut opt = Adam::new(1e-2);
        let cfg = RetrainConfig {
            epochs: 5,
            schedule: StepSchedule::new(vec![(1, 1e-2)]),
            eval_every: 1,
            resilience: None,
            obs: ObsSink::null(),
        };
        let history = retrain(&mut model, &mut opt, &cfg, &train, &test);
        assert_eq!(history.epochs.len(), 5);
        assert!(
            history.final_top1() > 0.95,
            "top1 = {}",
            history.final_top1()
        );
        assert!(history.final_train_loss() < 0.3);
        // Loss decreased overall.
        assert!(history.epochs[4].train_loss < history.epochs[0].train_loss);
    }

    #[test]
    fn schedule_is_applied_per_epoch() {
        let train = two_blob_batches(1, 3);
        let mut model = tiny_model(2);
        let mut opt = Adam::new(999.0); // will be overwritten by the schedule
        let cfg = RetrainConfig {
            epochs: 3,
            schedule: StepSchedule::new(vec![(1, 1e-3), (3, 1e-4)]),
            eval_every: 10,
            resilience: None,
            obs: ObsSink::null(),
        };
        let history = retrain(&mut model, &mut opt, &cfg, &train, &[]);
        assert_eq!(history.epochs[0].lr, 1e-3);
        assert_eq!(history.epochs[1].lr, 1e-3);
        assert_eq!(history.epochs[2].lr, 1e-4);
        assert!(history.epochs[0].test_top1.is_none());
    }

    #[test]
    fn eval_every_controls_eval_epochs_but_final_always_evaluates() {
        let train = two_blob_batches(1, 3);
        let test = two_blob_batches(1, 5);
        let mut model = tiny_model(3);
        let mut opt = Adam::new(1e-3);
        let cfg = RetrainConfig {
            epochs: 3,
            schedule: StepSchedule::new(vec![(1, 1e-3)]),
            eval_every: 2,
            resilience: None,
            obs: ObsSink::null(),
        };
        let history = retrain(&mut model, &mut opt, &cfg, &train, &test);
        assert!(history.epochs[0].test_top1.is_none());
        assert!(history.epochs[1].test_top1.is_some());
        assert!(history.epochs[2].test_top1.is_some()); // final epoch
    }

    #[test]
    fn nan_batch_without_policy_destroys_training() {
        let mut train = two_blob_batches(4, 3);
        // One poisoned batch: a NaN pixel wrecks every logit it touches.
        train[1].0.as_mut_slice()[0] = f32::NAN;
        let mut model = tiny_model(1);
        let mut opt = Adam::new(1e-2);
        let cfg = RetrainConfig {
            epochs: 3,
            schedule: StepSchedule::new(vec![(1, 1e-2)]),
            eval_every: 1,
            resilience: None,
            obs: ObsSink::null(),
        };
        let history = retrain(&mut model, &mut opt, &cfg, &train, &[]);
        assert!(history.final_train_loss().is_nan());
        assert_eq!(history.total_rollbacks(), 0);
    }

    #[test]
    fn nan_batch_with_policy_recovers_with_recorded_rollback() {
        let mut train = two_blob_batches(4, 3);
        train[1].0.as_mut_slice()[0] = f32::NAN;
        let test = two_blob_batches(2, 99);
        let mut model = tiny_model(1);
        let mut opt = Adam::new(1e-2);
        let cfg = RetrainConfig {
            epochs: 5,
            schedule: StepSchedule::new(vec![(1, 1e-2)]),
            eval_every: 1,
            resilience: Some(crate::ResiliencePolicy::default()),
            obs: ObsSink::null(),
        };
        let history = retrain(&mut model, &mut opt, &cfg, &train, &test);
        // The poisoned batch keeps firing, so the guard must have stepped in.
        assert!(history.total_rollbacks() >= 1, "{history:?}");
        assert!(history.total_scrubbed_grads() > 0);
        // But the run survives with finite numbers end to end.
        assert!(history.final_train_loss().is_finite(), "{history:?}");
        assert!(history.final_top1().is_finite());
        // The model itself is still finite and usable.
        let mut all_finite = true;
        model.visit_params(&mut |p| {
            all_finite &= p.value.as_slice().iter().all(|v| v.is_finite());
        });
        assert!(all_finite, "weights must stay finite under the policy");
    }

    #[test]
    fn poisoned_batch_with_policy_survives_on_approx_model() {
        // Regression test for observer poisoning: an Inf/NaN-poisoned batch
        // used to fold a non-finite extremum into the activation observer's
        // EMA range, so the next `quant_params` call died on `from_range`'s
        // finite assert — even with the resilience policy enabled, and with
        // the range corrupted for good. The observer must reject the
        // poisoned extrema and the run must survive end to end, like the
        // float-model test `nan_batch_with_policy_recovers_with_recorded_
        // rollback` does.
        use crate::{ApproxLinear, GradientLut, GradientMode, QuantConfig};
        use appmult_mult::{ExactMultiplier, Multiplier};
        use std::sync::Arc;

        // ApproxLinear wants [N, in] batches; flatten the blob images.
        let flatten = |batches: Vec<Batch>| -> Vec<Batch> {
            batches
                .into_iter()
                .map(|(t, labels)| {
                    let n = t.shape()[0];
                    let features = t.as_slice().len() / n;
                    (
                        Tensor::from_vec(t.as_slice().to_vec(), &[n, features]),
                        labels,
                    )
                })
                .collect()
        };
        let mut train = flatten(two_blob_batches(4, 3));
        train[1].0.as_mut_slice()[0] = f32::NAN;
        train[1].0.as_mut_slice()[1] = f32::INFINITY; // non-finite batch maximum
        let test = flatten(two_blob_batches(2, 99));

        let lut = Arc::new(ExactMultiplier::new(8).to_lut());
        let grads = Arc::new(GradientLut::build(&lut, GradientMode::difference_based(8)));
        let mut model = ApproxLinear::new(4, 2, 1, lut, grads, QuantConfig::default());
        // Calibrate on clean data first, as every harness does for the
        // Table II "initial accuracy" column.
        let _ = evaluate(&mut model, &test);

        let mut opt = Adam::new(1e-2);
        let cfg = RetrainConfig {
            epochs: 5,
            schedule: StepSchedule::new(vec![(1, 1e-2)]),
            eval_every: 1,
            resilience: Some(crate::ResiliencePolicy::default()),
            obs: ObsSink::null(),
        };
        let history = retrain(&mut model, &mut opt, &cfg, &train, &test);
        // The poisoned batch fires every epoch; each firing must be
        // rejected by the observer rather than corrupting its range.
        assert!(
            model.observer_rejections() >= cfg.epochs,
            "rejections = {}",
            model.observer_rejections()
        );
        // And the run survives with finite numbers end to end (quantization
        // clamps the poisoned activations, so no rollback is even needed).
        assert!(history.final_train_loss().is_finite(), "{history:?}");
        assert!(history.final_top1().is_finite());
        let mut all_finite = true;
        model.visit_params(&mut |p| {
            all_finite &= p.value.as_slice().iter().all(|v| v.is_finite());
        });
        assert!(all_finite, "weights must stay finite under the policy");
    }

    #[test]
    fn lr_backoff_is_visible_after_rollback() {
        let mut train = two_blob_batches(2, 3);
        train[0].0.as_mut_slice()[0] = f32::INFINITY;
        let mut model = tiny_model(2);
        let mut opt = Adam::new(1e-2);
        let cfg = RetrainConfig {
            epochs: 3,
            schedule: StepSchedule::new(vec![(1, 1e-2)]),
            eval_every: 10,
            resilience: Some(crate::ResiliencePolicy::default()),
            obs: ObsSink::null(),
        };
        let history = retrain(&mut model, &mut opt, &cfg, &train, &[]);
        assert_eq!(history.epochs[0].lr, 1e-2);
        assert!(history.epochs[0].rollbacks > 0);
        assert!(
            history.epochs[1].lr < 1e-2,
            "lr must back off after rollback"
        );
    }

    #[test]
    fn policy_on_healthy_run_changes_nothing_and_records_zeros() {
        let train = two_blob_batches(8, 3);
        let cfg_plain = RetrainConfig {
            epochs: 4,
            schedule: StepSchedule::new(vec![(1, 1e-2)]),
            eval_every: 10,
            resilience: None,
            obs: ObsSink::null(),
        };
        let cfg_guarded = RetrainConfig {
            resilience: Some(crate::ResiliencePolicy {
                max_grad_norm: None, // keep update numerics identical
                ..crate::ResiliencePolicy::default()
            }),
            ..cfg_plain.clone()
        };
        let mut m1 = tiny_model(1);
        let mut o1 = Adam::new(1e-2);
        let h1 = retrain(&mut m1, &mut o1, &cfg_plain, &train, &[]);
        let mut m2 = tiny_model(1);
        let mut o2 = Adam::new(1e-2);
        let h2 = retrain(&mut m2, &mut o2, &cfg_guarded, &train, &[]);
        assert_eq!(h2.total_rollbacks(), 0);
        assert_eq!(h2.total_scrubbed_grads(), 0);
        for (a, b) in h1.epochs.iter().zip(&h2.epochs) {
            assert_eq!(a.train_loss, b.train_loss, "healthy runs must match");
            assert_eq!(a.lr, b.lr);
        }
    }

    #[test]
    fn recording_sink_captures_epoch_events_spans_and_gradient_stats() {
        let train = two_blob_batches(2, 3);
        let test = two_blob_batches(1, 9);
        let mut model = tiny_model(4);
        let mut opt = Adam::new(1e-2);
        let obs = ObsSink::recording();
        let cfg = RetrainConfig {
            epochs: 2,
            schedule: StepSchedule::new(vec![(1, 1e-2)]),
            eval_every: 1,
            resilience: None,
            obs: obs.clone(),
        };
        let history = retrain(&mut model, &mut opt, &cfg, &train, &test);

        // One epoch event per epoch, with the loss the history reports.
        let events = obs.events();
        let epochs: Vec<_> = events.iter().filter(|e| e.kind == "epoch").collect();
        assert_eq!(epochs.len(), 2);
        for (event, stats) in epochs.iter().zip(&history.epochs) {
            let loss = event
                .fields
                .iter()
                .find(|(k, _)| k == "train_loss")
                .map(|(_, v)| v.clone());
            assert_eq!(loss, Some(appmult_obs::Value::F64(stats.train_loss)));
            assert!(event.fields.iter().any(|(k, _)| k == "test_top1"));
        }

        // Hierarchical spans: one run, two epochs, 2 batches per epoch.
        assert_eq!(obs.histogram("span.retrain").expect("run span").count, 1);
        assert_eq!(
            obs.histogram("span.retrain/epoch").expect("epochs").count,
            2
        );
        assert_eq!(
            obs.histogram("span.retrain/epoch/batch")
                .expect("batches")
                .count,
            4
        );
        assert_eq!(
            obs.histogram("span.retrain/epoch/eval")
                .expect("evals")
                .count,
            2
        );
        // Per-batch gradient statistics were recorded.
        assert_eq!(obs.histogram("grad_norm").expect("grad norms").count, 4);
        assert_eq!(
            obs.histogram("weight_update_magnitude")
                .expect("updates")
                .count,
            4
        );
    }

    #[test]
    fn recording_sink_does_not_change_training_numerics() {
        let train = two_blob_batches(4, 3);
        let run = |obs: ObsSink| {
            let mut model = tiny_model(6);
            let mut opt = Adam::new(1e-2);
            let cfg = RetrainConfig {
                epochs: 3,
                schedule: StepSchedule::new(vec![(1, 1e-2)]),
                eval_every: 10,
                resilience: None,
                obs,
            };
            retrain(&mut model, &mut opt, &cfg, &train, &[])
        };
        let plain = run(ObsSink::null());
        let observed = run(ObsSink::recording());
        for (a, b) in plain.epochs.iter().zip(&observed.epochs) {
            assert_eq!(a.train_loss, b.train_loss, "observability must be passive");
        }
    }

    #[test]
    fn shuffle_is_deterministic_and_a_permutation() {
        let a = shuffled_order(100, 7);
        let b = shuffled_order(100, 7);
        let c = shuffled_order(100, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }
}
