//! Randomized property tests for quantization and gradient approximation.
//!
//! Integer-operand properties use the vendored `appmult_rng::prop`
//! harness (seeded generation, domain corners always included, failures
//! shrunk toward the origin); the float-domain quantization checks keep
//! direct draws from the `Rng64` stream, which the harness does not model.

use appmult_mult::{ExactMultiplier, Multiplier, TruncatedMultiplier};
use appmult_retrain::{
    smooth_row, smooth_row_kernel, GradientLut, GradientMode, QuantParams, SmoothingKernel,
};
use appmult_rng::{prop, Rng64};

const CASES: usize = 128;

/// Deterministic pseudo-random LUT row for smoothing properties: value
/// pattern is fixed per `seed`, wild enough to have jumps and plateaus.
fn synthetic_row(seed: u32, len: u32) -> Vec<u32> {
    (0..len)
        .map(|x| (x.wrapping_mul(seed) >> 3) % 997)
        .collect()
}

/// Quantization round trip stays within half a step inside the range.
#[test]
fn fake_quant_error_bounded() {
    let mut rng = Rng64::seed_from_u64(0xD1);
    for _ in 0..64 {
        let lo = rng.uniform_f32(-4.0, 0.0);
        let width = rng.uniform_f32(0.1, 8.0);
        let t = rng.next_f32();
        let hi = lo + width;
        let q = QuantParams::from_range(lo, hi, 8);
        let v = lo + t * width;
        let r = q.fake_quantize(v);
        assert!(
            (r - v).abs() <= q.scale * 0.5 + 1e-6,
            "{v} -> {r} (scale {})",
            q.scale
        );
    }
}

/// Quantized codes always fit the bit width and dequantize finitely.
#[test]
fn codes_fit_bitwidth() {
    let mut rng = Rng64::seed_from_u64(0xD2);
    for _ in 0..64 {
        let v = rng.uniform_f32(-100.0, 100.0);
        let bits = 2 + rng.below(7) as u32;
        let q = QuantParams::from_range(-1.0, 1.0, bits);
        let code = q.quantize(v);
        assert!(code <= q.qmax());
        assert!(q.dequantize(code).is_finite());
    }
}

/// Zero always round-trips exactly (required so zero padding is
/// preserved by the quantized convolution).
#[test]
fn zero_is_exact() {
    let mut rng = Rng64::seed_from_u64(0xD3);
    for _ in 0..64 {
        let lo = rng.uniform_f32(-5.0, 0.0);
        let hi = rng.uniform_f32(0.0, 5.0);
        let bits = 2 + rng.below(7) as u32;
        let q = QuantParams::from_range(lo, hi, bits);
        assert_eq!(q.fake_quantize(0.0), 0.0);
    }
}

/// Smoothing always stays within the row's min/max envelope.
///
/// Operand pair: (row seed, HWS - 1).
#[test]
fn smoothing_stays_in_envelope() {
    prop::forall_pairs("Eq. 4 envelope", 0xD4, CASES, 999, 6, |seed, h| {
        let hws = 1 + h as u32;
        let row = synthetic_row(seed as u32, 64);
        let lo = f64::from(*row.iter().min().expect("nonempty"));
        let hi = f64::from(*row.iter().max().expect("nonempty"));
        smooth_row(&row, hws)
            .into_iter()
            .flatten()
            .all(|s| s >= lo - 1e-9 && s <= hi + 1e-9)
    });
}

/// The Eq. 4 window `[X - HWS, X + HWS]` is symmetric, so smoothing
/// commutes with reversing the row: `S(reverse(row)) == reverse(S(row))`,
/// `None` positions included. An off-center window implementation (e.g.
/// a trailing average) fails this immediately.
///
/// Operand pair: (row seed, HWS - 1).
#[test]
fn smoothing_window_is_symmetric() {
    prop::forall_pairs("Eq. 4 window symmetry", 0xD8, CASES, 999, 6, |seed, h| {
        let hws = 1 + h as u32;
        let row = synthetic_row(seed as u32, 64);
        let mut reversed = row.clone();
        reversed.reverse();
        let mut mirrored = smooth_row(&row, hws);
        mirrored.reverse();
        let smoothed_reversed = smooth_row(&reversed, hws);
        mirrored
            .iter()
            .zip(&smoothed_reversed)
            .all(|(a, b)| match (a, b) {
                (None, None) => true,
                (Some(u), Some(v)) => (u - v).abs() < 1e-9,
                _ => false,
            })
    });
}

/// Smoothing a constant row is the identity on the valid domain: the
/// mean of `2 HWS + 1` equal values is that value (Eq. 4 fixed point).
///
/// Operand pair: (constant value, HWS - 1).
#[test]
fn smoothing_fixes_constant_rows() {
    prop::forall_pairs(
        "Eq. 4 constant fixed point",
        0xD9,
        CASES,
        4095,
        6,
        |c, h| {
            let hws = 1 + h as u32;
            let row = vec![c as u32; 64];
            smooth_row(&row, hws)
                .into_iter()
                .flatten()
                .all(|s| (s - c as f64).abs() < 1e-9)
        },
    );
}

/// For the exact multiplier, the difference-based interior gradient
/// equals the STE gradient (sanity: the method generalizes STE).
///
/// Operand pair: (W, X); the comparison applies on the smoothed interior
/// of each table's domain.
#[test]
fn diff_gradient_of_exact_equals_ste() {
    let lut = ExactMultiplier::new(6).to_lut();
    let ours = GradientLut::build(&lut, GradientMode::difference_based(4));
    let ste = GradientLut::build(&lut, GradientMode::Ste);
    prop::forall_pairs("exact diff-gradient == STE", 0xD5, CASES, 63, 63, |w, x| {
        let (w, x) = (w as u32, x as u32);
        let x_interior = (5..58).contains(&x);
        let w_interior = (5..58).contains(&w);
        (!x_interior || (ours.wrt_x(w, x) - ste.wrt_x(w, x)).abs() < 1e-3)
            && (!w_interior || (ours.wrt_w(w, x) - ste.wrt_w(w, x)).abs() < 1e-3)
    });
}

/// The Eq. 5 (interior difference quotient) and Eq. 6 (boundary total
/// variation) gradient tables are finite and bounded by half the maximum
/// product per unit operand — never the wild spikes of the raw rows.
///
/// Operand pair: (removed columns K - 1, HWS - 1); each case checks the
/// full 64 x 64 table exhaustively.
#[test]
fn gradients_are_finite_and_bounded() {
    let cases = if cfg!(debug_assertions) { 24 } else { CASES };
    prop::forall_pairs("Eq. 5/6 table bounds", 0xD6, cases, 8, 15, |kk, hh| {
        let k = 1 + kk as u32;
        let hws = 1 + hh as u32;
        let lut = TruncatedMultiplier::new(6, k).to_lut();
        let g = GradientLut::build(&lut, GradientMode::difference_based(hws));
        let bound = f64::from(63u32 * 63) / 2.0; // half the max product per unit operand
        (0..64u32).all(|w| {
            (0..64u32).all(|x| {
                let dx = f64::from(g.wrt_x(w, x));
                let dw = f64::from(g.wrt_w(w, x));
                dx.is_finite() && dx.abs() <= bound && dw.is_finite() && dw.abs() <= bound
            })
        })
    });
}

/// Gradients of a truncated multiplier are non-negative (the function
/// is monotone non-decreasing in each operand).
///
/// Operand pair: (removed columns K - 1, log2 HWS); each case checks the
/// full 64 x 64 table exhaustively.
#[test]
fn truncated_gradients_nonnegative() {
    let cases = if cfg!(debug_assertions) { 24 } else { CASES };
    prop::forall_pairs("truncated gradients >= 0", 0xD7, cases, 8, 4, |kk, he| {
        let k = 1 + kk as u32;
        let hws = 1u32 << he;
        let lut = TruncatedMultiplier::new(6, k).to_lut();
        let g = GradientLut::build(&lut, GradientMode::difference_based(hws));
        (0..64u32).all(|w| (0..64u32).all(|x| g.wrt_x(w, x) >= 0.0 && g.wrt_w(w, x) >= 0.0))
    });
}

/// Halves every component of a case tuple toward the origin — the shared
/// shrinker for the `forall_with` estimator properties below.
fn shrink_triple(t: &(u64, u64, u64)) -> Vec<(u64, u64, u64)> {
    let (a, b, c) = *t;
    vec![
        (a / 2, b, c),
        (a, b / 2, c),
        (a, b, c / 2),
        (0, b, c),
        (a, 0, c),
        (a, b, 0),
    ]
}

/// Every smoothing kernel fixes constant rows: the normalized weighted
/// mean of `2 HWS + 1` equal values is that value, whatever the weights.
///
/// Case triple: (constant value, HWS - 1, kernel index).
#[test]
fn kernel_smoothing_fixes_constant_rows() {
    let kernels = [
        SmoothingKernel::Box,
        SmoothingKernel::Triangular,
        SmoothingKernel::Gaussian,
    ];
    prop::forall_with(
        "kernel constant fixed point",
        0xE1,
        CASES,
        |rng, _| (rng.below(4096), rng.below(6), rng.below(3)),
        shrink_triple,
        |&(c, h, k)| {
            let hws = 1 + h as u32;
            let kernel = kernels[k as usize];
            let row = vec![c as u32; 64];
            smooth_row_kernel(&row, hws, kernel)
                .into_iter()
                .flatten()
                .all(|s| (s - c as f64).abs() < 1e-9)
        },
    );
}

/// On exactly-linear rows (the exact multiplier: row `W` is `W · X`), the
/// least-squares local fit recovers the slope bit-exactly, agreeing with
/// the raw central difference everywhere both are interior.
///
/// Case triple: (W, X, regression window - 1).
#[test]
fn least_squares_matches_central_difference_on_linear_rows() {
    let lut = ExactMultiplier::new(6).to_lut();
    let raw = GradientLut::build(&lut, GradientMode::RawDifference);
    let tables: Vec<GradientLut> = (1..=6)
        .map(|w| GradientLut::build(&lut, GradientMode::least_squares(w)))
        .collect();
    prop::forall_with(
        "least-squares slope == central difference on linear rows",
        0xE2,
        CASES,
        |rng, _| (rng.below(64), rng.below(64), rng.below(6)),
        shrink_triple,
        |&(w, x, wi)| {
            let window = 1 + wi as u32;
            let (w, x) = (w as u32, x as u32);
            if x < window || x + window > 63 {
                return true; // boundary: Eq. 6 fallback, checked elsewhere
            }
            let lsq = &tables[wi as usize];
            lsq.wrt_x(w, x).to_bits() == raw.wrt_x(w, x).to_bits()
        },
    );
}

/// Marginal-weighted smoothing with uniform operand marginals degenerates
/// to the unweighted difference-based estimator (equal weights cancel out
/// of the normalized mean).
///
/// Case triple: (removed columns K - 1, HWS - 1, unused).
#[test]
fn uniform_marginals_match_unweighted_difference() {
    let cases = if cfg!(debug_assertions) { 24 } else { CASES };
    let uniform = vec![1.0 / 64.0; 64];
    prop::forall_with(
        "uniform marginals == unweighted",
        0xE3,
        cases,
        |rng, _| (rng.below(8), rng.below(6), 0),
        shrink_triple,
        |&(kk, hh, _)| {
            let k = 1 + kk as u32;
            let hws = 1 + hh as u32;
            let lut = TruncatedMultiplier::new(6, k).to_lut();
            let plain = GradientLut::build(&lut, GradientMode::difference_based(hws));
            let weighted = GradientLut::build(
                &lut,
                GradientMode::marginal_weighted(hws, uniform.clone(), uniform.clone()),
            );
            (0..64u32).all(|w| {
                (0..64u32).all(|x| {
                    (f64::from(plain.wrt_x(w, x)) - f64::from(weighted.wrt_x(w, x))).abs() < 1e-4
                        && (f64::from(plain.wrt_w(w, x)) - f64::from(weighted.wrt_w(w, x))).abs()
                            < 1e-4
                })
            })
        },
    );
}
