//! Property-based tests for quantization and gradient approximation.

use appmult_mult::{ExactMultiplier, Multiplier, TruncatedMultiplier};
use appmult_retrain::{smooth_row, GradientLut, GradientMode, QuantParams};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Quantization round trip stays within half a step inside the range.
    #[test]
    fn fake_quant_error_bounded(lo in -4.0f32..0.0, width in 0.1f32..8.0, t in 0.0f32..1.0) {
        let hi = lo + width;
        let q = QuantParams::from_range(lo, hi, 8);
        let v = lo + t * width;
        let r = q.fake_quantize(v);
        prop_assert!((r - v).abs() <= q.scale * 0.5 + 1e-6, "{v} -> {r} (scale {})", q.scale);
    }

    /// Quantized codes always fit the bit width and dequantize finitely.
    #[test]
    fn codes_fit_bitwidth(v in -100.0f32..100.0, bits in 2u32..9) {
        let q = QuantParams::from_range(-1.0, 1.0, bits);
        let code = q.quantize(v);
        prop_assert!(code <= q.qmax());
        prop_assert!(q.dequantize(code).is_finite());
    }

    /// Zero always round-trips exactly (required so zero padding is
    /// preserved by the quantized convolution).
    #[test]
    fn zero_is_exact(lo in -5.0f32..0.0, hi in 0.0f32..5.0, bits in 2u32..9) {
        let q = QuantParams::from_range(lo, hi, bits);
        prop_assert_eq!(q.fake_quantize(0.0), 0.0);
    }

    /// Smoothing preserves the mean where both are defined on a constant
    /// extension, and always stays within the row's min/max envelope.
    #[test]
    fn smoothing_stays_in_envelope(seed in 0u32..1000, hws in 1u32..8) {
        let row: Vec<u32> = (0..64u32).map(|x| (x.wrapping_mul(seed) >> 3) % 997).collect();
        let lo = *row.iter().min().expect("nonempty") as f64;
        let hi = *row.iter().max().expect("nonempty") as f64;
        for s in smooth_row(&row, hws).into_iter().flatten() {
            prop_assert!(s >= lo - 1e-9 && s <= hi + 1e-9);
        }
    }

    /// For the exact multiplier, the difference-based interior gradient
    /// equals the STE gradient (sanity: the method generalizes STE).
    #[test]
    fn diff_gradient_of_exact_equals_ste(w in 0u32..64, x in 5u32..58) {
        let lut = ExactMultiplier::new(6).to_lut();
        let ours = GradientLut::build(&lut, GradientMode::difference_based(4));
        let ste = GradientLut::build(&lut, GradientMode::Ste);
        prop_assert!((ours.wrt_x(w, x) - ste.wrt_x(w, x)).abs() < 1e-3);
        if (5..58).contains(&w) {
            prop_assert!((ours.wrt_w(w, x) - ste.wrt_w(w, x)).abs() < 1e-3);
        }
    }

    /// Difference-based gradients are bounded by the largest local change
    /// of the (smoothed) function — never the wild spikes of the raw rows.
    #[test]
    fn gradients_are_finite_and_bounded(k in 1u32..10, hws in 1u32..16) {
        let lut = TruncatedMultiplier::new(6, k).to_lut();
        let g = GradientLut::build(&lut, GradientMode::difference_based(hws));
        let bound = (63.0f32 * 63.0) / 2.0; // half the max product per unit X
        for w in 0..64 {
            for x in 0..64 {
                let v = g.wrt_x(w, x);
                prop_assert!(v.is_finite() && v.abs() <= bound, "({w},{x}) = {v}");
            }
        }
    }

    /// Gradients of a truncated multiplier are non-negative (the function
    /// is monotone non-decreasing in each operand).
    #[test]
    fn truncated_gradients_nonnegative(k in 1u32..10, hws_pow in 0u32..5) {
        let hws = 1u32 << hws_pow;
        let lut = TruncatedMultiplier::new(6, k).to_lut();
        let g = GradientLut::build(&lut, GradientMode::difference_based(hws));
        for w in 0..64 {
            for x in 0..64 {
                prop_assert!(g.wrt_x(w, x) >= 0.0);
                prop_assert!(g.wrt_w(w, x) >= 0.0);
            }
        }
    }
}
