//! Randomized property tests for quantization and gradient approximation.
//!
//! Deterministic cases drawn from the in-tree `appmult-rng` stream
//! (proptest is unavailable in the offline build environment).

use appmult_mult::{ExactMultiplier, Multiplier, TruncatedMultiplier};
use appmult_retrain::{smooth_row, GradientLut, GradientMode, QuantParams};
use appmult_rng::Rng64;

/// Quantization round trip stays within half a step inside the range.
#[test]
fn fake_quant_error_bounded() {
    let mut rng = Rng64::seed_from_u64(0xD1);
    for _ in 0..64 {
        let lo = rng.uniform_f32(-4.0, 0.0);
        let width = rng.uniform_f32(0.1, 8.0);
        let t = rng.next_f32();
        let hi = lo + width;
        let q = QuantParams::from_range(lo, hi, 8);
        let v = lo + t * width;
        let r = q.fake_quantize(v);
        assert!(
            (r - v).abs() <= q.scale * 0.5 + 1e-6,
            "{v} -> {r} (scale {})",
            q.scale
        );
    }
}

/// Quantized codes always fit the bit width and dequantize finitely.
#[test]
fn codes_fit_bitwidth() {
    let mut rng = Rng64::seed_from_u64(0xD2);
    for _ in 0..64 {
        let v = rng.uniform_f32(-100.0, 100.0);
        let bits = 2 + rng.below(7) as u32;
        let q = QuantParams::from_range(-1.0, 1.0, bits);
        let code = q.quantize(v);
        assert!(code <= q.qmax());
        assert!(q.dequantize(code).is_finite());
    }
}

/// Zero always round-trips exactly (required so zero padding is
/// preserved by the quantized convolution).
#[test]
fn zero_is_exact() {
    let mut rng = Rng64::seed_from_u64(0xD3);
    for _ in 0..64 {
        let lo = rng.uniform_f32(-5.0, 0.0);
        let hi = rng.uniform_f32(0.0, 5.0);
        let bits = 2 + rng.below(7) as u32;
        let q = QuantParams::from_range(lo, hi, bits);
        assert_eq!(q.fake_quantize(0.0), 0.0);
    }
}

/// Smoothing always stays within the row's min/max envelope.
#[test]
fn smoothing_stays_in_envelope() {
    let mut rng = Rng64::seed_from_u64(0xD4);
    for _ in 0..64 {
        let seed = rng.below(1000) as u32;
        let hws = 1 + rng.below(7) as u32;
        let row: Vec<u32> = (0..64u32)
            .map(|x| (x.wrapping_mul(seed) >> 3) % 997)
            .collect();
        let lo = *row.iter().min().expect("nonempty") as f64;
        let hi = *row.iter().max().expect("nonempty") as f64;
        for s in smooth_row(&row, hws).into_iter().flatten() {
            assert!(s >= lo - 1e-9 && s <= hi + 1e-9);
        }
    }
}

/// For the exact multiplier, the difference-based interior gradient
/// equals the STE gradient (sanity: the method generalizes STE).
#[test]
fn diff_gradient_of_exact_equals_ste() {
    let lut = ExactMultiplier::new(6).to_lut();
    let ours = GradientLut::build(&lut, GradientMode::difference_based(4));
    let ste = GradientLut::build(&lut, GradientMode::Ste);
    let mut rng = Rng64::seed_from_u64(0xD5);
    for _ in 0..64 {
        let w = rng.below(64) as u32;
        let x = 5 + rng.below(53) as u32;
        assert!((ours.wrt_x(w, x) - ste.wrt_x(w, x)).abs() < 1e-3);
        if (5..58).contains(&w) {
            assert!((ours.wrt_w(w, x) - ste.wrt_w(w, x)).abs() < 1e-3);
        }
    }
}

/// Difference-based gradients are bounded by the largest local change
/// of the (smoothed) function — never the wild spikes of the raw rows.
#[test]
fn gradients_are_finite_and_bounded() {
    let mut rng = Rng64::seed_from_u64(0xD6);
    for _ in 0..12 {
        let k = 1 + rng.below(9) as u32;
        let hws = 1 + rng.below(15) as u32;
        let lut = TruncatedMultiplier::new(6, k).to_lut();
        let g = GradientLut::build(&lut, GradientMode::difference_based(hws));
        let bound = (63.0f32 * 63.0) / 2.0; // half the max product per unit X
        for w in 0..64 {
            for x in 0..64 {
                let v = g.wrt_x(w, x);
                assert!(v.is_finite() && v.abs() <= bound, "({w},{x}) = {v}");
            }
        }
    }
}

/// Gradients of a truncated multiplier are non-negative (the function
/// is monotone non-decreasing in each operand).
#[test]
fn truncated_gradients_nonnegative() {
    let mut rng = Rng64::seed_from_u64(0xD7);
    for _ in 0..12 {
        let k = 1 + rng.below(9) as u32;
        let hws = 1u32 << rng.below(5);
        let lut = TruncatedMultiplier::new(6, k).to_lut();
        let g = GradientLut::build(&lut, GradientMode::difference_based(hws));
        for w in 0..64 {
            for x in 0..64 {
                assert!(g.wrt_x(w, x) >= 0.0);
                assert!(g.wrt_w(w, x) >= 0.0);
            }
        }
    }
}
