//! Dev utility: print measured metrics for candidate surrogate configs.
use appmult_mult::*;

fn report<M: Multiplier>(m: &M) {
    let e = ErrorMetrics::exhaustive(&m.to_lut());
    println!(
        "{:24} ER {:5.1}%  NMED {:6.3}%  MaxED {:5}",
        m.name(),
        e.er_pct(),
        e.nmed_pct(),
        e.max_ed
    );
}

fn main() {
    println!("== 8-bit ==");
    report(&TruncatedMultiplier::new(8, 8));
    for d in [0u32, 2, 4, 6] {
        report(&BrokenTruncatedMultiplier::new(8, 8, d));
    }
    for t in [3u32, 4, 5, 6, 7] {
        report(&Recursive2x2Multiplier::new(8, t));
    }
    for s in [3u32, 4, 5] {
        report(&SegmentedMultiplier::new(8, s));
    }
    for k in [8u32, 9] {
        report(&CompensatedTruncatedMultiplier::with_mean_compensation(
            8, k,
        ));
    }
    for k in [8u32, 9, 10] {
        report(&LowerOrMultiplier::new(8, k));
    }
    println!("== 7-bit ==");
    report(&TruncatedMultiplier::new(7, 6));
    for d in [2u32, 4, 6] {
        report(&BrokenTruncatedMultiplier::new(7, 6, d));
    }
    for k in [5u32, 6, 7] {
        report(&CompensatedTruncatedMultiplier::with_mean_compensation(
            7, k,
        ));
    }
    for k in [6u32, 7, 8] {
        report(&LowerOrMultiplier::new(7, k));
    }
    for t in [3u32, 4, 5, 6] {
        report(&Recursive2x2Multiplier::new(7, t));
    }
    println!("== comp sweep ==");
    for c in [0u32, 300, 600, 896, 1100, 1400] {
        report(&CompensatedTruncatedMultiplier::new(8, 9, c));
    }
    for c in [448u32, 600, 800, 1000] {
        report(&CompensatedTruncatedMultiplier::new(8, 8, c));
    }
    for c in [80u32, 130, 190, 240] {
        report(&CompensatedTruncatedMultiplier::new(7, 7, c));
    }
    println!("== 6-bit ==");
    report(&TruncatedMultiplier::new(6, 4));
}
