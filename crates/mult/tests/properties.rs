//! Randomized property tests for the approximate multiplier library.
//!
//! Deterministic cases drawn from the in-tree `appmult-rng` stream
//! (proptest is unavailable in the offline build environment).

use appmult_mult::{
    CompensatedTruncatedMultiplier, ErrorMetrics, ExactMultiplier, LowerOrMultiplier,
    MitchellMultiplier, Multiplier, MultiplierLut, Recursive2x2Multiplier, SegmentedMultiplier,
    TruncatedMultiplier,
};
use appmult_rng::Rng64;

fn operand(rng: &mut Rng64, bits: u32) -> u32 {
    rng.below(1 << bits) as u32
}

/// Every design produces products that fit the 2B-bit output bus.
#[test]
fn products_fit_output_bus() {
    let designs: Vec<Box<dyn Multiplier>> = vec![
        Box::new(ExactMultiplier::new(8)),
        Box::new(TruncatedMultiplier::new(8, 8)),
        Box::new(CompensatedTruncatedMultiplier::with_mean_compensation(8, 8)),
        Box::new(LowerOrMultiplier::new(8, 9)),
        Box::new(SegmentedMultiplier::new(8, 4)),
        Box::new(Recursive2x2Multiplier::new(8, 5)),
        Box::new(MitchellMultiplier::new(8)),
    ];
    let mut rng = Rng64::seed_from_u64(0xB1);
    for _ in 0..64 {
        let (w, x) = (operand(&mut rng, 8), operand(&mut rng, 8));
        for d in &designs {
            let y = d.multiply(w, x);
            assert!((y as u64) < (1u64 << 16), "{}: {w}*{x} = {y}", d.name());
        }
    }
}

/// Zero annihilates for every design (an AppMult that maps 0 -> nonzero
/// would corrupt padded regions of convolutions).
#[test]
fn zero_annihilates() {
    let designs: Vec<Box<dyn Multiplier>> = vec![
        Box::new(TruncatedMultiplier::new(8, 8)),
        Box::new(CompensatedTruncatedMultiplier::with_mean_compensation(8, 8)),
        Box::new(LowerOrMultiplier::new(8, 9)),
        Box::new(SegmentedMultiplier::new(8, 4)),
        Box::new(Recursive2x2Multiplier::new(8, 5)),
        Box::new(MitchellMultiplier::new(8)),
    ];
    let mut rng = Rng64::seed_from_u64(0xB2);
    for _ in 0..64 {
        let v = operand(&mut rng, 8);
        for d in &designs {
            assert_eq!(d.multiply(0, v), 0, "{} 0*{}", d.name(), v);
            assert_eq!(d.multiply(v, 0), 0, "{} {}*0", d.name(), v);
        }
    }
}

/// Designs built from symmetric rules commute.
#[test]
fn symmetric_designs_commute() {
    let designs: Vec<Box<dyn Multiplier>> = vec![
        Box::new(ExactMultiplier::new(7)),
        Box::new(SegmentedMultiplier::new(7, 4)),
        Box::new(MitchellMultiplier::new(7)),
        Box::new(Recursive2x2Multiplier::new(7, 4)),
    ];
    let mut rng = Rng64::seed_from_u64(0xB3);
    for _ in 0..64 {
        let (w, x) = (operand(&mut rng, 7), operand(&mut rng, 7));
        for d in &designs {
            assert_eq!(d.multiply(w, x), d.multiply(x, w), "{}", d.name());
        }
    }
}

/// Truncation error is monotone in the number of removed columns.
#[test]
fn deeper_truncation_never_increases_product() {
    let mut rng = Rng64::seed_from_u64(0xB4);
    for _ in 0..64 {
        let (w, x) = (operand(&mut rng, 7), operand(&mut rng, 7));
        let k = 1 + rng.below(5) as u32;
        let shallow = TruncatedMultiplier::new(7, k);
        let deep = TruncatedMultiplier::new(7, k + 1);
        assert!(deep.multiply(w, x) <= shallow.multiply(w, x));
    }
}

/// LUT round-trip: `to_lut` then `product` reproduces `multiply`.
#[test]
fn lut_round_trip() {
    let m = LowerOrMultiplier::new(6, 5);
    let lut = m.to_lut();
    let mut rng = Rng64::seed_from_u64(0xB5);
    for _ in 0..64 {
        let (w, x) = (operand(&mut rng, 6), operand(&mut rng, 6));
        assert_eq!(lut.product(w, x), m.multiply(w, x));
        // And the LUT is itself a Multiplier with the same behaviour.
        assert_eq!(lut.multiply(w, x), m.multiply(w, x));
    }
}

/// Transposition is an involution.
#[test]
fn transpose_involution() {
    for k in 1u32..6 {
        let lut = TruncatedMultiplier::new(6, k).to_lut();
        let round_trip = lut.transposed().transposed();
        assert_eq!(round_trip.entries(), lut.entries());
    }
}

/// NMED is always within [0, 1] and zero iff the LUT is exact.
#[test]
fn nmed_is_normalized() {
    for k in 0u32..10 {
        let lut: MultiplierLut = if k == 0 {
            ExactMultiplier::new(6).to_lut()
        } else {
            TruncatedMultiplier::new(6, k).to_lut()
        };
        let m = ErrorMetrics::exhaustive(&lut);
        assert!(m.nmed >= 0.0 && m.nmed <= 1.0);
        assert_eq!(m.nmed == 0.0, lut.is_exact());
        assert!(m.error_rate >= 0.0 && m.error_rate <= 1.0);
    }
}
