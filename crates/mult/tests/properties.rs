//! Property-based tests for the approximate multiplier library.

use appmult_mult::{
    CompensatedTruncatedMultiplier, ErrorMetrics, ExactMultiplier, LowerOrMultiplier,
    MitchellMultiplier, Multiplier, MultiplierLut, Recursive2x2Multiplier, SegmentedMultiplier,
    TruncatedMultiplier,
};
use proptest::prelude::*;

fn operand(bits: u32) -> impl Strategy<Value = u32> {
    0u32..(1 << bits)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every design produces products that fit the 2B-bit output bus.
    #[test]
    fn products_fit_output_bus(w in operand(8), x in operand(8)) {
        let designs: Vec<Box<dyn Multiplier>> = vec![
            Box::new(ExactMultiplier::new(8)),
            Box::new(TruncatedMultiplier::new(8, 8)),
            Box::new(CompensatedTruncatedMultiplier::with_mean_compensation(8, 8)),
            Box::new(LowerOrMultiplier::new(8, 9)),
            Box::new(SegmentedMultiplier::new(8, 4)),
            Box::new(Recursive2x2Multiplier::new(8, 5)),
            Box::new(MitchellMultiplier::new(8)),
        ];
        for d in &designs {
            let y = d.multiply(w, x);
            prop_assert!((y as u64) < (1u64 << 16), "{}: {w}*{x} = {y}", d.name());
        }
    }

    /// Zero annihilates for every design (an AppMult that maps 0 -> nonzero
    /// would corrupt padded regions of convolutions).
    #[test]
    fn zero_annihilates(v in operand(8)) {
        let designs: Vec<Box<dyn Multiplier>> = vec![
            Box::new(TruncatedMultiplier::new(8, 8)),
            Box::new(CompensatedTruncatedMultiplier::with_mean_compensation(8, 8)),
            Box::new(LowerOrMultiplier::new(8, 9)),
            Box::new(SegmentedMultiplier::new(8, 4)),
            Box::new(Recursive2x2Multiplier::new(8, 5)),
            Box::new(MitchellMultiplier::new(8)),
        ];
        for d in &designs {
            prop_assert_eq!(d.multiply(0, v), 0, "{} 0*{}", d.name(), v);
            prop_assert_eq!(d.multiply(v, 0), 0, "{} {}*0", d.name(), v);
        }
    }

    /// Designs built from symmetric rules commute.
    #[test]
    fn symmetric_designs_commute(w in operand(7), x in operand(7)) {
        let designs: Vec<Box<dyn Multiplier>> = vec![
            Box::new(ExactMultiplier::new(7)),
            Box::new(SegmentedMultiplier::new(7, 4)),
            Box::new(MitchellMultiplier::new(7)),
            Box::new(Recursive2x2Multiplier::new(7, 4)),
        ];
        for d in &designs {
            prop_assert_eq!(d.multiply(w, x), d.multiply(x, w), "{}", d.name());
        }
    }

    /// Truncation error is monotone in the number of removed columns.
    #[test]
    fn deeper_truncation_never_increases_product(w in operand(7), x in operand(7), k in 1u32..6) {
        let shallow = TruncatedMultiplier::new(7, k);
        let deep = TruncatedMultiplier::new(7, k + 1);
        prop_assert!(deep.multiply(w, x) <= shallow.multiply(w, x));
    }

    /// LUT round-trip: `to_lut` then `product` reproduces `multiply`.
    #[test]
    fn lut_round_trip(w in operand(6), x in operand(6)) {
        let m = LowerOrMultiplier::new(6, 5);
        let lut = m.to_lut();
        prop_assert_eq!(lut.product(w, x), m.multiply(w, x));
        // And the LUT is itself a Multiplier with the same behaviour.
        prop_assert_eq!(lut.multiply(w, x), m.multiply(w, x));
    }

    /// Transposition is an involution.
    #[test]
    fn transpose_involution(k in 1u32..6) {
        let lut = TruncatedMultiplier::new(6, k).to_lut();
        let round_trip = lut.transposed().transposed();
        prop_assert_eq!(round_trip.entries(), lut.entries());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// NMED is always within [0, 1] and zero iff the LUT is exact.
    #[test]
    fn nmed_is_normalized(k in 0u32..10) {
        let lut: MultiplierLut = if k == 0 {
            ExactMultiplier::new(6).to_lut()
        } else {
            TruncatedMultiplier::new(6, k).to_lut()
        };
        let m = ErrorMetrics::exhaustive(&lut);
        prop_assert!(m.nmed >= 0.0 && m.nmed <= 1.0);
        prop_assert_eq!(m.nmed == 0.0, lut.is_exact());
        prop_assert!(m.error_rate >= 0.0 && m.error_rate <= 1.0);
    }
}
