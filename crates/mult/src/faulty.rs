//! Defective-hardware multiplier models.
//!
//! [`FaultyMultiplier`] represents an approximate multiplier *after* a
//! hardware defect: either gate-level faults injected into a
//! [`MultiplierCircuit`] netlist (stuck-at / output-invert, see
//! [`appmult_circuit::FaultSpec`]), or random bit flips in a table-backed
//! design's product LUT (modelling defective ROM/SRAM cells in a LUT-based
//! accelerator). Both construction paths produce an ordinary [`Multiplier`]
//! so the full retraining flow — gradient LUTs, approximate convolutions,
//! hand-wavy sweeps — runs unchanged on the broken hardware.

use std::fmt;

use appmult_circuit::{FaultSpec, MultiplierCircuit, NetlistError};
use appmult_rng::Rng64;

use crate::multiplier::{Multiplier, MultiplierLut};

/// A multiplier whose behaviour reflects permanent hardware defects.
///
/// # Example
///
/// ```
/// use appmult_circuit::{fault_sites, FaultSpec, MultiplierCircuit};
/// use appmult_mult::{FaultyMultiplier, Multiplier};
///
/// let circuit = MultiplierCircuit::array(4);
/// let site = fault_sites(circuit.netlist())[10];
/// let faulty = FaultyMultiplier::from_circuit(
///     "mul4u_array",
///     &circuit,
///     &[FaultSpec::stuck_at_1(site)],
/// )
/// .unwrap();
/// assert_eq!(faulty.bits(), 4);
/// assert_eq!(faulty.fault_count(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct FaultyMultiplier {
    lut: MultiplierLut,
    fault_count: usize,
}

impl FaultyMultiplier {
    /// Extracts the behaviour of `circuit` with `faults` injected into its
    /// netlist. The circuit itself is not mutated; zero faults reproduce
    /// the fault-free design exactly.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownSignal`] if a fault site does not
    /// belong to the circuit's netlist.
    pub fn from_circuit(
        base_name: &str,
        circuit: &MultiplierCircuit,
        faults: &[FaultSpec],
    ) -> Result<Self, NetlistError> {
        let bits = circuit.bits();
        let products: Vec<u32> = circuit
            .exhaustive_products_faulted(faults)?
            .into_iter()
            .map(|p| p as u32)
            .collect();
        let name = format!("{base_name}_fault{}", faults.len());
        Ok(Self {
            lut: MultiplierLut::from_entries(name, bits, products),
            fault_count: faults.len(),
        })
    }

    /// Corrupts a table-backed design by flipping `bit_flips` distinct
    /// (entry, bit) positions of its product LUT, chosen by `seed`. This
    /// models defective memory cells in a LUT-based accelerator.
    ///
    /// # Panics
    ///
    /// Panics if `bit_flips` exceeds the total number of stored bits
    /// (`2^(2B) * 2B`).
    pub fn corrupt_lut(lut: &MultiplierLut, bit_flips: usize, seed: u64) -> Self {
        let bits = lut.bits();
        let out_bits = 2 * bits as usize;
        let mut products: Vec<u32> = lut.entries().to_vec();
        let total_bits = products.len() * out_bits;
        assert!(
            bit_flips <= total_bits,
            "cannot flip {bit_flips} of {total_bits} stored bits"
        );
        let mut rng = Rng64::seed_from_u64(seed);
        let mut flipped = std::collections::HashSet::new();
        while flipped.len() < bit_flips {
            let pos = rng.index(total_bits);
            if flipped.insert(pos) {
                products[pos / out_bits] ^= 1 << (pos % out_bits);
            }
        }
        let name = format!("{}_flip{bit_flips}_s{seed}", lut.name());
        Self {
            lut: MultiplierLut::from_entries(name, bits, products),
            fault_count: bit_flips,
        }
    }

    /// Number of injected defects (gate faults or flipped LUT bits).
    pub fn fault_count(&self) -> usize {
        self.fault_count
    }

    /// Consumes the wrapper, returning the defective product table.
    pub fn into_lut(self) -> MultiplierLut {
        self.lut
    }

    /// Number of operand pairs whose product differs from `reference`.
    ///
    /// # Panics
    ///
    /// Panics if the bit widths differ.
    pub fn corrupted_entries(&self, reference: &MultiplierLut) -> usize {
        assert_eq!(self.lut.bits(), reference.bits(), "bit widths must match");
        self.lut
            .entries()
            .iter()
            .zip(reference.entries())
            .filter(|(a, b)| a != b)
            .count()
    }
}

impl Multiplier for FaultyMultiplier {
    fn bits(&self) -> u32 {
        self.lut.bits()
    }
    fn name(&self) -> String {
        self.lut.name().to_string()
    }
    fn multiply(&self, w: u32, x: u32) -> u32 {
        self.lut.product(w, x)
    }
}

impl fmt::Display for FaultyMultiplier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} defects)", self.lut.name(), self.fault_count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::designs::ExactMultiplier;
    use appmult_circuit::fault_sites;

    #[test]
    fn zero_faults_match_clean_circuit() {
        let circuit = MultiplierCircuit::array(4);
        let faulty = FaultyMultiplier::from_circuit("mul4u", &circuit, &[]).unwrap();
        for w in 0..16 {
            for x in 0..16 {
                assert_eq!(faulty.multiply(w, x), w * x);
            }
        }
        assert_eq!(faulty.fault_count(), 0);
        assert_eq!(faulty.name(), "mul4u_fault0");
    }

    #[test]
    fn circuit_fault_changes_behaviour() {
        let circuit = MultiplierCircuit::array(4);
        let clean = ExactMultiplier::new(4).to_lut();
        let sites = fault_sites(circuit.netlist());
        let mut any_corrupt = 0usize;
        for &site in sites.iter().step_by(9) {
            let faulty =
                FaultyMultiplier::from_circuit("mul4u", &circuit, &[FaultSpec::stuck_at_1(site)])
                    .unwrap();
            any_corrupt += faulty.corrupted_entries(&clean);
        }
        assert!(
            any_corrupt > 0,
            "stuck-at-1 somewhere must corrupt products"
        );
    }

    #[test]
    fn invalid_site_is_an_error() {
        let circuit = MultiplierCircuit::array(4);
        let bogus = appmult_circuit::Signal::from_index(100_000);
        assert!(
            FaultyMultiplier::from_circuit("m", &circuit, &[FaultSpec::stuck_at_0(bogus)]).is_err()
        );
    }

    #[test]
    fn lut_corruption_flips_exactly_n_bits() {
        let lut = ExactMultiplier::new(5).to_lut();
        for flips in [0usize, 1, 7, 32] {
            let faulty = FaultyMultiplier::corrupt_lut(&lut, flips, 0x5EED);
            let changed_bits: u32 = faulty
                .clone()
                .into_lut()
                .entries()
                .iter()
                .zip(lut.entries())
                .map(|(a, b)| (a ^ b).count_ones())
                .sum();
            assert_eq!(changed_bits as usize, flips);
        }
    }

    #[test]
    fn lut_corruption_is_deterministic_per_seed() {
        let lut = ExactMultiplier::new(4).to_lut();
        let a = FaultyMultiplier::corrupt_lut(&lut, 5, 7).into_lut();
        let b = FaultyMultiplier::corrupt_lut(&lut, 5, 7).into_lut();
        let c = FaultyMultiplier::corrupt_lut(&lut, 5, 8).into_lut();
        assert_eq!(a.entries(), b.entries());
        assert_ne!(a.entries(), c.entries());
    }

    #[test]
    fn corrupted_products_still_fit_output_bus() {
        let lut = ExactMultiplier::new(4).to_lut();
        let faulty = FaultyMultiplier::corrupt_lut(&lut, 40, 99);
        for &p in faulty.into_lut().entries() {
            assert!(p < 256);
        }
    }

    #[test]
    fn display_mentions_defects() {
        let lut = ExactMultiplier::new(3).to_lut();
        let faulty = FaultyMultiplier::corrupt_lut(&lut, 2, 1);
        assert!(format!("{faulty}").contains("2 defects"));
    }
}
