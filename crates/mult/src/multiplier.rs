//! The [`Multiplier`] trait and precomputed product LUTs.

use std::fmt;
use std::sync::Arc;

use appmult_circuit::MultiplierCircuit;

/// An unsigned `B x B -> 2B`-bit integer multiplier, exact or approximate.
///
/// Implementations define the behavioural function `AM(W, X)` of Eq. 1.
/// The retraining framework never calls [`Multiplier::multiply`] in its hot
/// path; it precomputes the full product table once with
/// [`Multiplier::to_lut`] (the paper's LUT-based forward simulation).
pub trait Multiplier: fmt::Debug + Send + Sync {
    /// Operand bit width `B` (1..=10 in this workspace).
    fn bits(&self) -> u32;

    /// Human-readable design name (e.g. `"mul7u_rm6"`).
    fn name(&self) -> String;

    /// Computes the (approximate) product of two `B`-bit operands.
    ///
    /// # Panics
    ///
    /// Implementations may panic if an operand does not fit in `B` bits.
    fn multiply(&self, w: u32, x: u32) -> u32;

    /// Gate-level structure of the design, if one is available.
    ///
    /// Used by the hardware cost model. Behavioural-only surrogates return
    /// `None`; their hardware cost must come from elsewhere (e.g. the
    /// paper's published numbers).
    fn circuit(&self) -> Option<MultiplierCircuit> {
        None
    }

    /// Precomputes the full `2^(2B)`-entry product table.
    ///
    /// Entry `(w << B) | x` holds `AM(w, x)`.
    fn to_lut(&self) -> MultiplierLut
    where
        Self: Sized,
    {
        MultiplierLut::from_multiplier(self)
    }
}

impl<M: Multiplier + ?Sized> Multiplier for &M {
    fn bits(&self) -> u32 {
        (**self).bits()
    }
    fn name(&self) -> String {
        (**self).name()
    }
    fn multiply(&self, w: u32, x: u32) -> u32 {
        (**self).multiply(w, x)
    }
    fn circuit(&self) -> Option<MultiplierCircuit> {
        (**self).circuit()
    }
}

impl<M: Multiplier + ?Sized> Multiplier for Arc<M> {
    fn bits(&self) -> u32 {
        (**self).bits()
    }
    fn name(&self) -> String {
        (**self).name()
    }
    fn multiply(&self, w: u32, x: u32) -> u32 {
        (**self).multiply(w, x)
    }
    fn circuit(&self) -> Option<MultiplierCircuit> {
        (**self).circuit()
    }
}

/// A fully enumerated product table of a [`Multiplier`].
///
/// This is the representation the retraining framework uses during forward
/// propagation (the paper stores the same tables in GPU memory and indexes
/// them from CUDA kernels). Entry `(w << B) | x` is `AM(w, x)`.
///
/// # Example
///
/// ```
/// use appmult_mult::{ExactMultiplier, Multiplier};
///
/// let lut = ExactMultiplier::new(8).to_lut();
/// assert_eq!(lut.product(12, 11), 132);
/// assert_eq!(lut.entries().len(), 1 << 16);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiplierLut {
    name: String,
    bits: u32,
    products: Vec<u32>,
}

impl MultiplierLut {
    /// Enumerates all `2^(2B)` operand pairs of `multiplier`.
    pub fn from_multiplier<M: Multiplier + ?Sized>(multiplier: &M) -> Self {
        let bits = multiplier.bits();
        let n = 1u32 << bits;
        let mut products = Vec::with_capacity((n as usize) * (n as usize));
        for w in 0..n {
            for x in 0..n {
                products.push(multiplier.multiply(w, x));
            }
        }
        Self {
            name: multiplier.name(),
            bits,
            products,
        }
    }

    /// Builds a LUT directly from raw entries in `(w << B) | x` order.
    ///
    /// # Panics
    ///
    /// Panics if `products.len() != 2^(2B)` or any product needs more than
    /// `2B` bits.
    pub fn from_entries(name: impl Into<String>, bits: u32, products: Vec<u32>) -> Self {
        assert_eq!(
            products.len(),
            1usize << (2 * bits),
            "expected 2^(2B) entries"
        );
        let limit = 1u64 << (2 * bits);
        assert!(
            products.iter().all(|&p| (p as u64) < limit),
            "a product exceeds {} bits",
            2 * bits
        );
        Self {
            name: name.into(),
            bits,
            products,
        }
    }

    /// Operand bit width `B`.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Design name recorded at construction.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Raw table in `(w << B) | x` order.
    pub fn entries(&self) -> &[u32] {
        &self.products
    }

    /// Looks up `AM(w, x)`.
    ///
    /// # Panics
    ///
    /// Panics if an operand does not fit in `B` bits.
    #[inline]
    pub fn product(&self, w: u32, x: u32) -> u32 {
        let b = self.bits;
        assert!(
            w < (1 << b) && x < (1 << b),
            "operands must fit in {b} bits"
        );
        self.products[((w as usize) << b) | x as usize]
    }

    /// The row `AM(w, ·)` as a slice indexed by `x` — the fixed-`W_f` slice
    /// analyzed in Sec. III of the paper.
    #[inline]
    pub fn row(&self, w: u32) -> &[u32] {
        let b = self.bits;
        assert!(w < (1 << b), "operand must fit in {b} bits");
        let n = 1usize << b;
        &self.products[(w as usize) * n..(w as usize + 1) * n]
    }

    /// The column `AM(·, x)` collected into a vector indexed by `w`.
    pub fn column(&self, x: u32) -> Vec<u32> {
        let b = self.bits;
        assert!(x < (1 << b), "operand must fit in {b} bits");
        let n = 1usize << b;
        (0..n).map(|w| self.products[w * n + x as usize]).collect()
    }

    /// A LUT transposed so that entry `(x << B) | w` is `AM(w, x)`.
    ///
    /// The gradient with respect to `W` is computed on rows of the
    /// transposed table.
    pub fn transposed(&self) -> MultiplierLut {
        let b = self.bits;
        let n = 1usize << b;
        let mut products = vec![0u32; n * n];
        for w in 0..n {
            for x in 0..n {
                products[x * n + w] = self.products[w * n + x];
            }
        }
        Self {
            name: format!("{}_t", self.name),
            bits: b,
            products,
        }
    }

    /// Whether every entry equals the exact product.
    pub fn is_exact(&self) -> bool {
        let n = 1u32 << self.bits;
        (0..n).all(|w| (0..n).all(|x| self.product(w, x) == w * x))
    }
}

impl Multiplier for MultiplierLut {
    fn bits(&self) -> u32 {
        self.bits
    }
    fn name(&self) -> String {
        self.name.clone()
    }
    fn multiply(&self, w: u32, x: u32) -> u32 {
        self.product(w, x)
    }
}

impl fmt::Display for MultiplierLut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}-bit LUT, {} entries)",
            self.name,
            self.bits,
            self.products.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::designs::ExactMultiplier;

    #[test]
    fn lut_round_trips_multiplier() {
        let m = ExactMultiplier::new(5);
        let lut = m.to_lut();
        for w in 0..32 {
            for x in 0..32 {
                assert_eq!(lut.product(w, x), w * x);
            }
        }
        assert!(lut.is_exact());
    }

    #[test]
    fn row_and_column_agree_with_product() {
        let lut = ExactMultiplier::new(4).to_lut();
        let row = lut.row(7);
        for x in 0..16u32 {
            assert_eq!(row[x as usize], 7 * x);
        }
        let col = lut.column(3);
        for w in 0..16u32 {
            assert_eq!(col[w as usize], 3 * w);
        }
    }

    #[test]
    fn transpose_swaps_operands() {
        let lut = ExactMultiplier::new(3).to_lut();
        let t = lut.transposed();
        for w in 0..8 {
            for x in 0..8 {
                assert_eq!(lut.product(w, x), t.product(x, w));
            }
        }
    }

    #[test]
    fn from_entries_validates_length() {
        let r = std::panic::catch_unwind(|| MultiplierLut::from_entries("bad", 4, vec![0u32; 100]));
        assert!(r.is_err());
    }

    #[test]
    fn from_entries_validates_range() {
        let mut v = vec![0u32; 16];
        v[3] = 16; // needs 5 bits, only 2B = 4 available
        let r = std::panic::catch_unwind(|| MultiplierLut::from_entries("bad", 2, v));
        assert!(r.is_err());
    }

    #[test]
    fn trait_objects_delegate() {
        let m: std::sync::Arc<dyn Multiplier> = std::sync::Arc::new(ExactMultiplier::new(4));
        assert_eq!(m.bits(), 4);
        assert_eq!(m.multiply(3, 5), 15);
        let lut = MultiplierLut::from_multiplier(m.as_ref());
        assert!(lut.is_exact());
    }
}
