//! Error metrics of approximate multipliers (Eq. 2 of the paper).

use crate::multiplier::MultiplierLut;

/// Standard approximate-arithmetic error metrics of a multiplier.
///
/// `ER`, `NMED`, and `MaxED` follow Eq. 2 of the paper; `MED` and `MRED`
/// are the usual companions reported across the approximate-computing
/// literature.
///
/// # Example
///
/// ```
/// use appmult_mult::{ErrorMetrics, Multiplier, ExactMultiplier, TruncatedMultiplier};
///
/// let exact = ErrorMetrics::exhaustive(&ExactMultiplier::new(6).to_lut());
/// assert_eq!(exact.max_ed, 0);
/// assert_eq!(exact.error_rate, 0.0);
///
/// // mul6u_rm4 of Table I: ER 81.3%, NMED 0.3%, MaxED 49.
/// let rm4 = ErrorMetrics::exhaustive(&TruncatedMultiplier::new(6, 4).to_lut());
/// assert_eq!(rm4.max_ed, 49);
/// assert!((rm4.er_pct() - 81.3).abs() < 0.5);
/// assert!((rm4.nmed_pct() - 0.3).abs() < 0.05);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ErrorMetrics {
    /// Probability that the approximate product differs from the exact one.
    pub error_rate: f64,
    /// Mean error distance normalized by `2^(2B) - 1`.
    pub nmed: f64,
    /// Maximum absolute error distance over the input support.
    pub max_ed: u64,
    /// Mean absolute error distance (unnormalized).
    pub med: f64,
    /// Mean relative error distance over inputs with a nonzero exact product.
    pub mred: f64,
}

impl ErrorMetrics {
    /// Exhaustive metrics under a uniform input distribution (the paper's
    /// measurement setup).
    pub fn exhaustive(lut: &MultiplierLut) -> Self {
        let n = 1usize << lut.bits();
        let p = 1.0 / (n * n) as f64;
        Self::accumulate(lut, |_w, _x| p)
    }

    /// Metrics under an arbitrary input distribution.
    ///
    /// `prob(w, x)` must be a probability mass function over the `2^(2B)`
    /// operand pairs; it is the caller's responsibility that it sums to 1.
    /// Pairs with zero probability are excluded from `MaxED`.
    pub fn with_distribution<F: FnMut(u32, u32) -> f64>(lut: &MultiplierLut, prob: F) -> Self {
        Self::accumulate(lut, prob)
    }

    /// Metrics under independent per-operand marginals — e.g. operand
    /// histograms profiled from a running DNN (weights are far from
    /// uniform in practice, which shifts the effective NMED).
    ///
    /// # Panics
    ///
    /// Panics unless both marginals have `2^B` entries.
    pub fn with_marginals(lut: &MultiplierLut, w_probs: &[f64], x_probs: &[f64]) -> Self {
        let n = 1usize << lut.bits();
        assert_eq!(w_probs.len(), n, "w marginal must have 2^B entries");
        assert_eq!(x_probs.len(), n, "x marginal must have 2^B entries");
        Self::accumulate(lut, |w, x| w_probs[w as usize] * x_probs[x as usize])
    }

    fn accumulate<F: FnMut(u32, u32) -> f64>(lut: &MultiplierLut, mut prob: F) -> Self {
        let bits = lut.bits();
        let n = 1u32 << bits;
        let norm = ((1u64 << (2 * bits)) - 1) as f64;
        let mut er = 0.0;
        let mut med = 0.0;
        let mut max_ed = 0u64;
        let mut red_sum = 0.0;
        let mut red_count = 0u64;
        for w in 0..n {
            let row = lut.row(w);
            for x in 0..n {
                let p = prob(w, x);
                let acc = (w as u64) * (x as u64);
                let y = row[x as usize] as u64;
                let ed = y.abs_diff(acc);
                if p > 0.0 {
                    if ed != 0 {
                        er += p;
                        max_ed = max_ed.max(ed);
                    }
                    med += p * ed as f64;
                    if acc != 0 {
                        red_sum += ed as f64 / acc as f64;
                        red_count += 1;
                    }
                }
            }
        }
        Self {
            error_rate: er,
            nmed: med / norm,
            max_ed,
            med,
            mred: if red_count > 0 {
                red_sum / red_count as f64
            } else {
                0.0
            },
        }
    }

    /// Error rate in percent.
    pub fn er_pct(&self) -> f64 {
        self.error_rate * 100.0
    }

    /// NMED in percent.
    pub fn nmed_pct(&self) -> f64 {
        self.nmed * 100.0
    }

    /// MRED in percent.
    pub fn mred_pct(&self) -> f64 {
        self.mred * 100.0
    }
}

impl std::fmt::Display for ErrorMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ER {:.1}%, NMED {:.2}%, MaxED {}",
            self.er_pct(),
            self.nmed_pct(),
            self.max_ed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::designs::{ExactMultiplier, TruncatedMultiplier};
    use crate::multiplier::Multiplier;

    #[test]
    fn exact_multiplier_has_zero_error() {
        let m = ErrorMetrics::exhaustive(&ExactMultiplier::new(7).to_lut());
        assert_eq!(m.error_rate, 0.0);
        assert_eq!(m.nmed, 0.0);
        assert_eq!(m.max_ed, 0);
        assert_eq!(m.mred, 0.0);
    }

    #[test]
    fn rm8_matches_paper_table1() {
        // mul8u_rm8: ER 98.0%, NMED 0.68%, MaxED 1793.
        let m = ErrorMetrics::exhaustive(&TruncatedMultiplier::new(8, 8).to_lut());
        assert_eq!(m.max_ed, 1793);
        assert!((m.er_pct() - 98.0).abs() < 0.5, "er = {}", m.er_pct());
        assert!(
            (m.nmed_pct() - 0.68).abs() < 0.03,
            "nmed = {}",
            m.nmed_pct()
        );
    }

    #[test]
    fn truncation_maxed_closed_form() {
        // MaxED of rm-k is sum over removed columns of (height * weight).
        for (bits, k) in [(6u32, 4u32), (7, 6), (8, 8)] {
            let m = ErrorMetrics::exhaustive(&TruncatedMultiplier::new(bits, k).to_lut());
            let expect: u64 = (0..k).map(|c| ((c + 1) as u64) << c).sum();
            assert_eq!(m.max_ed, expect, "bits={bits} k={k}");
        }
    }

    #[test]
    fn distribution_weighting_changes_metrics() {
        let lut = TruncatedMultiplier::new(6, 4).to_lut();
        // All mass on one error-free pair (w = 32, x = 32: pp columns >= 10).
        let metrics =
            ErrorMetrics::with_distribution(
                &lut,
                |w, x| {
                    if w == 32 && x == 32 {
                        1.0
                    } else {
                        0.0
                    }
                },
            );
        assert_eq!(metrics.error_rate, 0.0);
        assert_eq!(metrics.max_ed, 0);
    }

    #[test]
    fn marginals_match_pairwise_distribution() {
        let lut = TruncatedMultiplier::new(6, 4).to_lut();
        // A skewed marginal concentrated on small codes.
        let mut probs = vec![0.0f64; 64];
        for (i, p) in probs.iter_mut().enumerate() {
            *p = 1.0 / (i as f64 + 1.0);
        }
        let z: f64 = probs.iter().sum();
        for p in &mut probs {
            *p /= z;
        }
        let a = ErrorMetrics::with_marginals(&lut, &probs, &probs);
        let b = ErrorMetrics::with_distribution(&lut, |w, x| probs[w as usize] * probs[x as usize]);
        assert!((a.nmed - b.nmed).abs() < 1e-15);
        assert_eq!(a.max_ed, b.max_ed);
    }

    #[test]
    fn skewed_marginals_shift_nmed_vs_uniform() {
        let lut = TruncatedMultiplier::new(6, 4).to_lut();
        let uniform = ErrorMetrics::exhaustive(&lut);
        // Mass on small operands only: truncation errors are relatively
        // larger there... in absolute ED terms they are *smaller*.
        let mut probs = vec![0.0f64; 64];
        for p in probs.iter_mut().take(8) {
            *p = 1.0 / 8.0;
        }
        let small = ErrorMetrics::with_marginals(&lut, &probs, &probs);
        assert!(small.med < uniform.med);
    }

    #[test]
    fn display_mentions_all_headline_metrics() {
        let m = ErrorMetrics::exhaustive(&TruncatedMultiplier::new(6, 4).to_lut());
        let s = format!("{m}");
        assert!(s.contains("ER") && s.contains("NMED") && s.contains("MaxED"));
    }
}
