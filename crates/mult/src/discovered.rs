//! Loading designs discovered by the `appmult-dse` search as first-class
//! [`Multiplier`]s.
//!
//! The DSE frontier serializes each design in the `appmult-netlist v1`
//! text format; [`DiscoveredMultiplier`] parses it back, wraps it in a
//! [`MultiplierCircuit`] (so the hardware cost model and the verify lints
//! see real gates), and precomputes the product LUT so `multiply` is an
//! O(1) table lookup — exactly like the built-in zoo designs.

use appmult_circuit::{
    from_netlist_text, MultiplierCircuit, Netlist, NetlistError, NetlistParseError,
};

use crate::multiplier::Multiplier;

/// A search-discovered multiplier reconstructed from its exported netlist.
///
/// # Example
///
/// ```
/// use appmult_circuit::{to_netlist_text, MultiplierCircuit};
/// use appmult_mult::{DiscoveredMultiplier, Multiplier};
///
/// let text = to_netlist_text(MultiplierCircuit::array(4).netlist());
/// let m = DiscoveredMultiplier::from_netlist_text("dse4u_c0", 4, &text).unwrap();
/// assert_eq!(m.multiply(7, 9), 63);
/// assert!(m.circuit().is_some());
/// ```
#[derive(Debug, Clone)]
pub struct DiscoveredMultiplier {
    name: String,
    circuit: MultiplierCircuit,
    products: Vec<u64>,
}

/// Why a discovered design could not be loaded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiscoveredError {
    /// The netlist text did not parse.
    Parse(NetlistParseError),
    /// The netlist is valid but not a `2B`-in/`2B`-out multiplier.
    Interface(NetlistError),
}

impl std::fmt::Display for DiscoveredError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiscoveredError::Parse(e) => write!(f, "netlist text: {e}"),
            DiscoveredError::Interface(e) => write!(f, "multiplier interface: {e}"),
        }
    }
}

impl std::error::Error for DiscoveredError {}

impl DiscoveredMultiplier {
    /// Wraps an in-memory netlist as a named `bits`-bit multiplier.
    ///
    /// # Errors
    ///
    /// [`DiscoveredError::Interface`] if the netlist fails validation or
    /// does not have the `2B`-in/`2B`-out multiplier bus layout.
    pub fn from_netlist(
        name: impl Into<String>,
        bits: u32,
        netlist: Netlist,
    ) -> Result<Self, DiscoveredError> {
        let circuit =
            MultiplierCircuit::from_netlist(netlist, bits).map_err(DiscoveredError::Interface)?;
        let products = circuit.exhaustive_products();
        Ok(Self {
            name: name.into(),
            circuit,
            products,
        })
    }

    /// Parses an `appmult-netlist v1` export (the `netlist` field of a
    /// `results/DSE.json` frontier entry) into a loadable multiplier.
    ///
    /// # Errors
    ///
    /// [`DiscoveredError::Parse`] for malformed text, or any
    /// [`DiscoveredError::Interface`] error of [`Self::from_netlist`].
    pub fn from_netlist_text(
        name: impl Into<String>,
        bits: u32,
        text: &str,
    ) -> Result<Self, DiscoveredError> {
        let netlist = from_netlist_text(text).map_err(DiscoveredError::Parse)?;
        Self::from_netlist(name, bits, netlist)
    }
}

impl Multiplier for DiscoveredMultiplier {
    fn bits(&self) -> u32 {
        self.circuit.bits()
    }

    fn name(&self) -> String {
        self.name.clone()
    }

    fn multiply(&self, w: u32, x: u32) -> u32 {
        let b = self.circuit.bits();
        assert!(
            w < (1 << b) && x < (1 << b),
            "operands must fit in {b} bits"
        );
        self.products[((w as usize) << b) | x as usize] as u32
    }

    fn circuit(&self) -> Option<MultiplierCircuit> {
        Some(self.circuit.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use appmult_circuit::to_netlist_text;

    #[test]
    fn round_trips_an_exact_design() {
        let base = MultiplierCircuit::array(5);
        let text = to_netlist_text(base.netlist());
        let m = DiscoveredMultiplier::from_netlist_text("dse5u_c1", 5, &text).unwrap();
        assert_eq!(m.bits(), 5);
        assert_eq!(m.name(), "dse5u_c1");
        for w in 0..32 {
            for x in 0..32 {
                assert_eq!(m.multiply(w, x), w * x);
            }
        }
        // The reconstructed circuit costs identically to the original.
        let model = appmult_circuit::CostModel::asap7();
        assert_eq!(
            model.estimate(&m.circuit().unwrap()).delay_ps.to_bits(),
            model.estimate(&base).delay_ps.to_bits()
        );
    }

    #[test]
    fn rejects_malformed_and_mismatched_designs() {
        assert!(matches!(
            DiscoveredMultiplier::from_netlist_text("bad", 4, "garbage"),
            Err(DiscoveredError::Parse(_))
        ));
        // Right text, wrong width.
        let text = to_netlist_text(MultiplierCircuit::array(4).netlist());
        assert!(matches!(
            DiscoveredMultiplier::from_netlist_text("bad", 5, &text),
            Err(DiscoveredError::Interface(_))
        ));
    }
}
