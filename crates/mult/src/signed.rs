//! Signed extension of the unsigned AppMult library.
//!
//! The paper (Sec. III) notes that the method "can be easily extended to
//! signed AppMults". This module provides that extension at the multiplier
//! level: a sign-magnitude wrapper around any unsigned core, and an
//! offset-binary LUT exporter so signed designs can flow through the same
//! gradient machinery (the gradient builder only sees a `2^(2B)`-entry
//! table and is agnostic to the code interpretation).

use crate::multiplier::{Multiplier, MultiplierLut};

/// A signed multiplier built from an unsigned approximate core with
/// sign-magnitude decomposition: `AM_s(w, x) = sign(w)·sign(x) ·
/// AM(|w|, |x|)`.
///
/// Operands range over `[-(2^B - 1), 2^B - 1]` (sign-magnitude has no
/// asymmetric minimum). This matches how signed approximate multipliers are
/// usually derived from unsigned cores in hardware: the magnitude datapath
/// is shared and the product sign is an XOR.
///
/// # Example
///
/// ```
/// use appmult_mult::{SignMagnitudeMultiplier, TruncatedMultiplier};
///
/// let m = SignMagnitudeMultiplier::new(TruncatedMultiplier::new(8, 8));
/// let y = m.multiply_signed(-100, 50);
/// assert!(y <= 0 && y >= -5000);
/// assert_eq!(m.multiply_signed(-100, -50), -y.abs() * -1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SignMagnitudeMultiplier<M> {
    core: M,
}

impl<M: Multiplier> SignMagnitudeMultiplier<M> {
    /// Wraps an unsigned core.
    pub fn new(core: M) -> Self {
        Self { core }
    }

    /// The wrapped unsigned multiplier.
    pub fn core(&self) -> &M {
        &self.core
    }

    /// Operand bit width of the magnitude datapath.
    pub fn bits(&self) -> u32 {
        self.core.bits()
    }

    /// Signed approximate product.
    ///
    /// # Panics
    ///
    /// Panics if a magnitude does not fit in `B` bits.
    pub fn multiply_signed(&self, w: i32, x: i32) -> i64 {
        let limit = (1i32 << self.bits()) - 1;
        assert!(
            w.abs() <= limit && x.abs() <= limit,
            "magnitudes must fit in {} bits",
            self.bits()
        );
        let mag = i64::from(self.core.multiply(w.unsigned_abs(), x.unsigned_abs()));
        if (w < 0) ^ (x < 0) {
            -mag
        } else {
            mag
        }
    }

    /// Exports an offset-binary product LUT over `2^(2B)` entries so the
    /// signed design can drive the standard gradient builder.
    ///
    /// Codes map to values as `value = code - 2^(B-1)` (excess representation,
    /// covering `[-2^(B-1), 2^(B-1) - 1]`); products are stored re-offset
    /// into the non-negative `2B`-bit range as
    /// `stored = product + 2^(2B-1)`.
    pub fn to_offset_lut(&self) -> MultiplierLut {
        let b = self.bits();
        let n = 1usize << b;
        let half = (n / 2) as i32;
        let offset = 1i64 << (2 * b - 1);
        let mut products = Vec::with_capacity(n * n);
        for wc in 0..n as i32 {
            for xc in 0..n as i32 {
                let w = wc - half;
                let x = xc - half;
                let p = self.multiply_signed(w, x) + offset;
                debug_assert!(p >= 0 && p < (1i64 << (2 * b)));
                products.push(p as u32);
            }
        }
        MultiplierLut::from_entries(format!("{}_signed", self.core.name()), b, products)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::designs::{ExactMultiplier, TruncatedMultiplier};

    #[test]
    fn exact_core_gives_exact_signed_products() {
        let m = SignMagnitudeMultiplier::new(ExactMultiplier::new(6));
        for w in -63i32..=63 {
            for x in [-63i32, -17, -1, 0, 1, 30, 63] {
                assert_eq!(m.multiply_signed(w, x), i64::from(w) * i64::from(x));
            }
        }
    }

    #[test]
    fn sign_rules_hold_for_approximate_cores() {
        let m = SignMagnitudeMultiplier::new(TruncatedMultiplier::new(7, 6));
        for &(w, x) in &[(100i32, 50i32), (100, -50), (-100, 50), (-100, -50)] {
            let y = m.multiply_signed(w, x);
            let expected_sign = (i64::from(w) * i64::from(x)).signum();
            assert!(y.signum() == expected_sign || y == 0, "{w}*{x} -> {y}");
            // Magnitude is shared across all four quadrants.
            assert_eq!(y.abs(), m.multiply_signed(w.abs(), x.abs()));
        }
    }

    #[test]
    fn commutative_when_core_is() {
        let m = SignMagnitudeMultiplier::new(ExactMultiplier::new(5));
        for &(w, x) in &[(-20i32, 13i32), (7, -31), (-1, -1)] {
            assert_eq!(m.multiply_signed(w, x), m.multiply_signed(x, w));
        }
    }

    #[test]
    fn offset_lut_round_trips_values() {
        let m = SignMagnitudeMultiplier::new(ExactMultiplier::new(4));
        let lut = m.to_offset_lut();
        let half = 8i32;
        let offset = 1i64 << 7;
        for wc in 0..16u32 {
            for xc in 0..16u32 {
                let w = wc as i32 - half;
                let x = xc as i32 - half;
                let stored = i64::from(lut.product(wc, xc));
                assert_eq!(stored - offset, i64::from(w) * i64::from(x), "{w}*{x}");
            }
        }
    }

    #[test]
    fn offset_lut_feeds_the_gradient_pipeline_shape() {
        // The exported table has exactly the layout GradientLut expects.
        let m = SignMagnitudeMultiplier::new(TruncatedMultiplier::new(5, 3));
        let lut = m.to_offset_lut();
        assert_eq!(lut.bits(), 5);
        assert_eq!(lut.entries().len(), 1 << 10);
    }

    #[test]
    #[should_panic(expected = "magnitudes must fit")]
    fn rejects_oversized_magnitude() {
        let m = SignMagnitudeMultiplier::new(ExactMultiplier::new(4));
        m.multiply_signed(16, 0);
    }
}
