//! Mitchell logarithmic multiplier.

use super::{assert_bits, assert_operands};
use crate::multiplier::Multiplier;

/// Fixed-point fraction bits used for the logarithm approximation.
const FRAC: u32 = 16;

/// Mitchell's logarithmic multiplier: `w * x ≈ 2^(log2~(w) + log2~(x))`
/// with the binary logarithm approximated by leading-one position plus the
/// linear mantissa.
///
/// Included for library completeness (it is a classic high-error,
/// low-hardware design family); not mapped to a Table I entry. The
/// approximation always underestimates, with relative error up to ~11.1%.
///
/// # Example
///
/// ```
/// use appmult_mult::{MitchellMultiplier, Multiplier};
///
/// let m = MitchellMultiplier::new(8);
/// // Powers of two are exact.
/// assert_eq!(m.multiply(64, 4), 256);
/// // Everything else underestimates by at most ~11.1%.
/// let y = m.multiply(100, 200) as f64;
/// assert!(y <= 20000.0 && y >= 20000.0 * 0.888);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MitchellMultiplier {
    bits: u32,
}

impl MitchellMultiplier {
    /// Creates the design.
    ///
    /// # Panics
    ///
    /// Panics unless `2 <= bits <= 10`.
    pub fn new(bits: u32) -> Self {
        assert_bits(bits);
        Self { bits }
    }

    /// Fixed-point `log2` approximation: characteristic in the integer part,
    /// linear mantissa in the `FRAC` fractional bits.
    fn log2_fixed(v: u32) -> u64 {
        debug_assert!(v > 0);
        let p = 31 - v.leading_zeros();
        let mantissa = ((v as u64 - (1u64 << p)) << FRAC) >> p;
        ((p as u64) << FRAC) | mantissa
    }
}

impl Multiplier for MitchellMultiplier {
    fn bits(&self) -> u32 {
        self.bits
    }

    fn name(&self) -> String {
        format!("mul{}u_log", self.bits)
    }

    fn multiply(&self, w: u32, x: u32) -> u32 {
        assert_operands(self.bits, w, x);
        if w == 0 || x == 0 {
            return 0;
        }
        let sum = Self::log2_fixed(w) + Self::log2_fixed(x);
        let c = (sum >> FRAC) as u32;
        let f = sum & ((1u64 << FRAC) - 1);
        // 2^(c + f) ~ 2^c * (1 + f)  (Mitchell's antilog approximation)
        let y = (1u64 << c) + ((f << c) >> FRAC);
        y as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::ErrorMetrics;

    #[test]
    fn powers_of_two_are_exact() {
        let m = MitchellMultiplier::new(8);
        for i in 0..8 {
            for j in 0..8 {
                if i + j < 16 {
                    assert_eq!(m.multiply(1 << i, 1 << j), 1u32 << (i + j));
                }
            }
        }
    }

    #[test]
    fn zero_stays_zero() {
        let m = MitchellMultiplier::new(8);
        assert_eq!(m.multiply(0, 200), 0);
        assert_eq!(m.multiply(200, 0), 0);
    }

    #[test]
    fn underestimates_with_bounded_relative_error() {
        let m = MitchellMultiplier::new(8);
        for w in 1..256u32 {
            for x in 1..256u32 {
                let y = m.multiply(w, x);
                let exact = w * x;
                assert!(y <= exact, "{w}*{x}: {y} > {exact}");
                assert!(
                    y as f64 >= exact as f64 * 0.885,
                    "{w}*{x}: {y} too small vs {exact}"
                );
            }
        }
    }

    #[test]
    fn mred_matches_mitchell_theory() {
        // Mitchell's mean relative error for uniform inputs is ~3.8%.
        let metrics = ErrorMetrics::exhaustive(&MitchellMultiplier::new(8).to_lut());
        assert!(metrics.mred_pct() > 2.0 && metrics.mred_pct() < 6.0);
    }
}
