//! Multiplier built with approximate 4:2 compressors in the low columns.

use std::sync::OnceLock;

use appmult_circuit::{MultiplierCircuit, Netlist, Signal};

use super::{assert_bits, assert_operands};
use crate::multiplier::{Multiplier, MultiplierLut};

/// A multiplier whose partial-product columns below a significance
/// threshold are compressed with *approximate OR-based 4:2 compressors*
/// instead of exact counters.
///
/// The approximate compressor maps four dots `(x1, x2, x3, x4)` to
/// `(sum, carry)` via `a = x1 | x2`, `b = x3 | x4`, `sum = a ^ b`,
/// `carry = a & b` — i.e. each OR saturates a pair, undercounting when both
/// members are 1. This is the classic low-power compressor approximation
/// from the approximate-arithmetic literature; columns at or above
/// `approx_columns` are reduced exactly.
///
/// Unlike the closed-form families, this design is defined *structurally*:
/// its behaviour is extracted from the gate-level netlist (cached), so the
/// LUT is exactly what the hardware computes.
///
/// # Example
///
/// ```
/// use appmult_mult::{CompressorMultiplier, Multiplier};
///
/// let m = CompressorMultiplier::new(8, 8);
/// // Sparse columns are exact...
/// assert_eq!(m.multiply(2, 3), 6);
/// // ...dense low columns undercount.
/// assert!(m.multiply(255, 255) <= 255 * 255);
/// ```
#[derive(Debug)]
pub struct CompressorMultiplier {
    bits: u32,
    approx_columns: u32,
    lut: OnceLock<MultiplierLut>,
}

impl CompressorMultiplier {
    /// Creates the design; columns `c < approx_columns` use approximate
    /// compression.
    ///
    /// # Panics
    ///
    /// Panics unless `2 <= bits <= 8` (structural LUT extraction) and
    /// `approx_columns <= 2 * bits - 1`.
    pub fn new(bits: u32, approx_columns: u32) -> Self {
        assert_bits(bits);
        assert!(bits <= 8, "structural designs capped at 8 bits");
        assert!(approx_columns < 2 * bits, "column threshold out of range");
        Self {
            bits,
            approx_columns,
            lut: OnceLock::new(),
        }
    }

    /// Number of approximately compressed columns.
    pub fn approx_columns(&self) -> u32 {
        self.approx_columns
    }

    fn build_circuit(&self) -> MultiplierCircuit {
        let bits = self.bits;
        let mut nl = Netlist::new();
        let w: Vec<Signal> = (0..bits).map(|_| nl.input()).collect();
        let x: Vec<Signal> = (0..bits).map(|_| nl.input()).collect();
        let out_bits = (2 * bits) as usize;
        let mut columns: Vec<Vec<Signal>> = vec![Vec::new(); out_bits];
        for i in 0..bits {
            for j in 0..bits {
                let pp = nl.and(w[i as usize], x[j as usize]);
                columns[(i + j) as usize].push(pp);
            }
        }
        // Approximate 4:2 compression in the low columns (repeat until the
        // column height drops below 4).
        for c in 0..(self.approx_columns as usize).min(out_bits) {
            while columns[c].len() >= 4 {
                let x4 = columns[c].pop().expect("len >= 4");
                let x3 = columns[c].pop().expect("len >= 4");
                let x2 = columns[c].pop().expect("len >= 4");
                let x1 = columns[c].pop().expect("len >= 4");
                let a = nl.or(x1, x2);
                let b = nl.or(x3, x4);
                let sum = nl.xor(a, b);
                let carry = nl.and(a, b);
                columns[c].push(sum);
                if c + 1 < out_bits {
                    columns[c + 1].push(carry);
                }
            }
        }
        // Exact reduction of whatever remains.
        let mut dots = appmult_circuit::DotColumns::new(out_bits);
        for (c, col) in columns.iter().enumerate() {
            for &s in col {
                dots.push(c, s);
            }
        }
        let outs = dots.reduce_ripple(&mut nl);
        nl.set_outputs(outs);
        MultiplierCircuit::from_netlist(nl, bits).expect("bus shapes are correct")
    }

    fn lut(&self) -> &MultiplierLut {
        self.lut.get_or_init(|| {
            let products: Vec<u32> = self
                .build_circuit()
                .exhaustive_products()
                .into_iter()
                .map(|p| p as u32)
                .collect();
            MultiplierLut::from_entries(self.name(), self.bits, products)
        })
    }
}

impl Multiplier for CompressorMultiplier {
    fn bits(&self) -> u32 {
        self.bits
    }

    fn name(&self) -> String {
        format!("mul{}u_c42x{}", self.bits, self.approx_columns)
    }

    fn multiply(&self, w: u32, x: u32) -> u32 {
        assert_operands(self.bits, w, x);
        self.lut().product(w, x)
    }

    fn circuit(&self) -> Option<MultiplierCircuit> {
        Some(self.build_circuit())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::ErrorMetrics;

    #[test]
    fn zero_threshold_is_exact() {
        let m = CompressorMultiplier::new(6, 0);
        let metrics = ErrorMetrics::exhaustive(&m.to_lut());
        assert_eq!(metrics.max_ed, 0);
    }

    #[test]
    fn sparse_products_stay_exact() {
        // Columns never reach height 4 when one operand has a single bit.
        let m = CompressorMultiplier::new(8, 8);
        for x in 0..256u32 {
            assert_eq!(m.multiply(1, x), x);
            assert_eq!(m.multiply(16, x), 16 * x);
        }
    }

    #[test]
    fn compression_undercounts_dense_columns() {
        let m = CompressorMultiplier::new(8, 10);
        assert!(m.multiply(255, 255) < 255 * 255);
        for &(w, x) in &[(255u32, 255u32), (127, 254), (85, 171)] {
            assert!(m.multiply(w, x) <= w * x, "{w}*{x}");
        }
    }

    #[test]
    fn more_approx_columns_more_error() {
        let small = ErrorMetrics::exhaustive(&CompressorMultiplier::new(7, 4).to_lut());
        let large = ErrorMetrics::exhaustive(&CompressorMultiplier::new(7, 9).to_lut());
        assert!(large.nmed >= small.nmed);
    }

    #[test]
    fn cheaper_than_exact() {
        use appmult_circuit::{CostModel, MultiplierCircuit};
        let model = CostModel::asap7();
        let approx = CompressorMultiplier::new(8, 9);
        let cost = model.estimate(&approx.circuit().expect("structural"));
        let exact = model.estimate(&MultiplierCircuit::array(8));
        assert!(cost.area_um2 < exact.area_um2);
    }
}
