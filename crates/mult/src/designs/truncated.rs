//! Truncation-based designs: plain, partial-column, and compensated.

use appmult_circuit::{DotColumns, MultiplierCircuit, Netlist, Signal};

use super::{assert_bits, assert_operands};
use crate::multiplier::Multiplier;

/// Sum of partial products `w_i * x_j * 2^(i+j)` over kept `(i, j)` pairs.
fn pp_sum(bits: u32, w: u32, x: u32, keep: impl Fn(u32, u32) -> bool) -> u32 {
    let mut acc = 0u32;
    for i in 0..bits {
        if (w >> i) & 1 == 0 {
            continue;
        }
        for j in 0..bits {
            if (x >> j) & 1 == 1 && keep(i, j) {
                acc += 1 << (i + j);
            }
        }
    }
    acc
}

/// Builds a netlist with kept partial products reduced by a ripple array.
/// Returns the netlist, the operand buses, and the dot columns (so callers
/// can add extra dots before reduction).
fn pp_netlist(
    bits: u32,
    keep: impl Fn(u32, u32) -> bool,
) -> (Netlist, Vec<Signal>, Vec<Signal>, DotColumns) {
    let mut nl = Netlist::new();
    let w: Vec<Signal> = (0..bits).map(|_| nl.input()).collect();
    let x: Vec<Signal> = (0..bits).map(|_| nl.input()).collect();
    let mut dots = DotColumns::new(2 * bits as usize);
    for i in 0..bits {
        for j in 0..bits {
            if keep(i, j) {
                let pp = nl.and(w[i as usize], x[j as usize]);
                dots.push((i + j) as usize, pp);
            }
        }
    }
    (nl, w, x, dots)
}

/// The truncated multiplier of the paper's Fig. 2: the `removed` rightmost
/// partial-product columns are deleted and treated as 0 (`_rmK` designs).
///
/// # Example
///
/// ```
/// use appmult_mult::{Multiplier, TruncatedMultiplier};
///
/// // mul7u_rm6: all partial products with i + j < 6 removed.
/// let m = TruncatedMultiplier::new(7, 6);
/// assert_eq!(m.name(), "mul7u_rm6");
/// // 1 * 1 only produces pp_00 (weight 0), which is removed.
/// assert_eq!(m.multiply(1, 1), 0);
/// // High partial products survive.
/// assert_eq!(m.multiply(64, 64), 4096);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TruncatedMultiplier {
    bits: u32,
    removed: u32,
}

impl TruncatedMultiplier {
    /// Creates a `bits`-wide multiplier with the `removed` rightmost
    /// partial-product columns deleted.
    ///
    /// # Panics
    ///
    /// Panics unless `2 <= bits <= 10` and `removed < 2 * bits - 1`.
    pub fn new(bits: u32, removed: u32) -> Self {
        assert_bits(bits);
        assert!(
            removed < 2 * bits - 1,
            "removing {removed} of {} columns leaves nothing",
            2 * bits - 1
        );
        Self { bits, removed }
    }

    /// Number of removed columns `k`.
    pub fn removed_columns(&self) -> u32 {
        self.removed
    }
}

impl Multiplier for TruncatedMultiplier {
    fn bits(&self) -> u32 {
        self.bits
    }

    fn name(&self) -> String {
        format!("mul{}u_rm{}", self.bits, self.removed)
    }

    fn multiply(&self, w: u32, x: u32) -> u32 {
        assert_operands(self.bits, w, x);
        pp_sum(self.bits, w, x, |i, j| i + j >= self.removed)
    }

    fn circuit(&self) -> Option<MultiplierCircuit> {
        Some(MultiplierCircuit::with_removed_columns(
            self.bits,
            self.removed,
            appmult_circuit::MultiplierStructure::Array,
        ))
    }
}

/// Truncation with finer grain: all columns below `full_columns` are removed
/// plus the `partial_removed` lowest-row partial products of column
/// `full_columns` itself.
///
/// This interpolates between `_rmK` and `_rm(K+1)`, which is how the
/// surrogate zoo hits intermediate NMED targets from Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BrokenTruncatedMultiplier {
    bits: u32,
    full_columns: u32,
    partial_removed: u32,
}

impl BrokenTruncatedMultiplier {
    /// Creates the design; see the type docs for the removal rule.
    ///
    /// # Panics
    ///
    /// Panics unless `2 <= bits <= 10`, `full_columns < 2 * bits - 1`, and
    /// `partial_removed` does not exceed the height of column
    /// `full_columns`.
    pub fn new(bits: u32, full_columns: u32, partial_removed: u32) -> Self {
        assert_bits(bits);
        assert!(full_columns < 2 * bits - 1, "column index out of range");
        let height = column_height(bits, full_columns);
        assert!(
            partial_removed <= height,
            "column {full_columns} has only {height} partial products"
        );
        Self {
            bits,
            full_columns,
            partial_removed,
        }
    }

    fn keep(&self, i: u32, j: u32) -> bool {
        let c = i + j;
        if c < self.full_columns {
            return false;
        }
        if c > self.full_columns {
            return true;
        }
        // Within the boundary column, drop the `partial_removed` entries
        // with the smallest i.
        let i_min = self.full_columns.saturating_sub(self.bits - 1);
        i >= i_min + self.partial_removed
    }
}

/// Number of partial products in column `c` of a `bits`-wide multiplier.
fn column_height(bits: u32, c: u32) -> u32 {
    (c + 1).min(bits).min(2 * bits - 1 - c)
}

impl Multiplier for BrokenTruncatedMultiplier {
    fn bits(&self) -> u32 {
        self.bits
    }

    fn name(&self) -> String {
        format!(
            "mul{}u_rm{}p{}",
            self.bits, self.full_columns, self.partial_removed
        )
    }

    fn multiply(&self, w: u32, x: u32) -> u32 {
        assert_operands(self.bits, w, x);
        pp_sum(self.bits, w, x, |i, j| self.keep(i, j))
    }

    fn circuit(&self) -> Option<MultiplierCircuit> {
        let (mut nl, _w, _x, dots) = pp_netlist(self.bits, |i, j| self.keep(i, j));
        let outs = dots.reduce_ripple(&mut nl);
        nl.set_outputs(outs);
        MultiplierCircuit::from_netlist(nl, self.bits).ok()
    }
}

/// Truncation with a constant error-compensation term, gated so that
/// zero-operand products stay exactly zero.
///
/// The compensation defaults to the expected value of the removed partial
/// products under uniform inputs (each partial product is 1 with
/// probability 1/4), which roughly centres the error distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CompensatedTruncatedMultiplier {
    bits: u32,
    removed: u32,
    compensation: u32,
}

impl CompensatedTruncatedMultiplier {
    /// Creates the design with an explicit compensation constant.
    ///
    /// # Panics
    ///
    /// Panics unless the truncation parameters are valid (see
    /// [`TruncatedMultiplier::new`]) and the compensated worst-case product
    /// still fits in `2 * bits` bits.
    pub fn new(bits: u32, removed: u32, compensation: u32) -> Self {
        assert_bits(bits);
        assert!(removed < 2 * bits - 1, "invalid truncation");
        let max_operand = (1u32 << bits) - 1;
        let worst = pp_sum(bits, max_operand, max_operand, |i, j| i + j >= removed) as u64
            + compensation as u64;
        assert!(
            worst < 1u64 << (2 * bits),
            "compensation {compensation} overflows the output bus"
        );
        Self {
            bits,
            removed,
            compensation,
        }
    }

    /// Creates the design with the mean-error compensation constant.
    ///
    /// # Panics
    ///
    /// Same conditions as [`CompensatedTruncatedMultiplier::new`].
    pub fn with_mean_compensation(bits: u32, removed: u32) -> Self {
        let mut expected = 0.0f64;
        for i in 0..bits {
            for j in 0..bits {
                if i + j < removed {
                    expected += 0.25 * f64::from(1u32 << (i + j));
                }
            }
        }
        Self::new(bits, removed, expected.round() as u32)
    }

    /// The compensation constant added to nonzero products.
    pub fn compensation(&self) -> u32 {
        self.compensation
    }
}

impl Multiplier for CompensatedTruncatedMultiplier {
    fn bits(&self) -> u32 {
        self.bits
    }

    fn name(&self) -> String {
        format!("mul{}u_rm{}c{}", self.bits, self.removed, self.compensation)
    }

    fn multiply(&self, w: u32, x: u32) -> u32 {
        assert_operands(self.bits, w, x);
        if w == 0 || x == 0 {
            return 0;
        }
        pp_sum(self.bits, w, x, |i, j| i + j >= self.removed) + self.compensation
    }

    fn circuit(&self) -> Option<MultiplierCircuit> {
        let (mut nl, w, x, mut dots) = pp_netlist(self.bits, |i, j| i + j >= self.removed);
        // Nonzero detectors gate the compensation constant.
        let nz_w = or_tree(&mut nl, &w);
        let nz_x = or_tree(&mut nl, &x);
        let gate = nl.and(nz_w, nz_x);
        dots.push_conditional_constant(self.compensation as u64, gate);
        let outs = dots.reduce_ripple(&mut nl);
        nl.set_outputs(outs);
        MultiplierCircuit::from_netlist(nl, self.bits).ok()
    }
}

fn or_tree(nl: &mut Netlist, signals: &[Signal]) -> Signal {
    let mut acc = signals[0];
    for &s in &signals[1..] {
        acc = nl.or(acc, s);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::ErrorMetrics;

    fn assert_circuit_matches<M: Multiplier>(m: &M) {
        let lut = m.to_lut();
        let c = m.circuit().expect("design provides a circuit");
        let cl = c.exhaustive_products();
        let b = m.bits();
        for w in 0..(1u32 << b) {
            for x in 0..(1u32 << b) {
                assert_eq!(
                    cl[((w << b) | x) as usize] as u32,
                    lut.product(w, x),
                    "{} at {w}*{x}",
                    m.name()
                );
            }
        }
    }

    #[test]
    fn truncated_circuit_matches_behaviour() {
        assert_circuit_matches(&TruncatedMultiplier::new(6, 4));
    }

    #[test]
    fn broken_circuit_matches_behaviour() {
        assert_circuit_matches(&BrokenTruncatedMultiplier::new(6, 4, 2));
    }

    #[test]
    fn compensated_circuit_matches_behaviour() {
        assert_circuit_matches(&CompensatedTruncatedMultiplier::with_mean_compensation(
            6, 5,
        ));
    }

    #[test]
    fn broken_interpolates_between_rm_levels() {
        let rm4 = ErrorMetrics::exhaustive(&TruncatedMultiplier::new(7, 4).to_lut());
        let rm5 = ErrorMetrics::exhaustive(&TruncatedMultiplier::new(7, 5).to_lut());
        let half = ErrorMetrics::exhaustive(&BrokenTruncatedMultiplier::new(7, 4, 3).to_lut());
        assert!(half.nmed > rm4.nmed && half.nmed < rm5.nmed);
    }

    #[test]
    fn broken_with_zero_partial_equals_plain_truncation() {
        let a = BrokenTruncatedMultiplier::new(6, 3, 0).to_lut();
        let b = TruncatedMultiplier::new(6, 3).to_lut();
        assert_eq!(a.entries(), b.entries());
    }

    #[test]
    fn compensation_reduces_nmed() {
        let plain = ErrorMetrics::exhaustive(&TruncatedMultiplier::new(7, 6).to_lut());
        let comp = ErrorMetrics::exhaustive(
            &CompensatedTruncatedMultiplier::with_mean_compensation(7, 6).to_lut(),
        );
        assert!(comp.nmed < plain.nmed, "{} !< {}", comp.nmed, plain.nmed);
    }

    #[test]
    fn compensated_keeps_zero_products_exact() {
        let m = CompensatedTruncatedMultiplier::with_mean_compensation(8, 8);
        for v in 0..256 {
            assert_eq!(m.multiply(0, v), 0);
            assert_eq!(m.multiply(v, 0), 0);
        }
    }

    #[test]
    fn truncated_error_is_bounded_by_removed_mass() {
        let m = TruncatedMultiplier::new(8, 8);
        let bound: u32 = (0..8).map(|c| (c + 1) << c).sum();
        for &(w, x) in &[(255u32, 255u32), (170, 85), (33, 77)] {
            let err = w * x - m.multiply(w, x);
            assert!(err <= bound);
        }
    }

    #[test]
    #[should_panic(expected = "leaves nothing")]
    fn rejects_full_truncation() {
        TruncatedMultiplier::new(4, 7);
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn rejects_overflowing_compensation() {
        CompensatedTruncatedMultiplier::new(4, 2, 250);
    }

    #[test]
    fn column_height_formula() {
        // 4-bit multiplier columns: 1,2,3,4,3,2,1
        let h: Vec<u32> = (0..7).map(|c| column_height(4, c)).collect();
        assert_eq!(h, vec![1, 2, 3, 4, 3, 2, 1]);
    }
}
