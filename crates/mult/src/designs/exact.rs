//! The accurate multiplier (AccMult).

use appmult_circuit::MultiplierCircuit;

use super::{assert_bits, assert_operands};
use crate::multiplier::Multiplier;

/// The exact unsigned multiplier (`mulBu_acc` rows of Table I).
///
/// # Example
///
/// ```
/// use appmult_mult::{ExactMultiplier, Multiplier};
///
/// let m = ExactMultiplier::new(8);
/// assert_eq!(m.multiply(255, 255), 65025);
/// assert!(m.to_lut().is_exact());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExactMultiplier {
    bits: u32,
}

impl ExactMultiplier {
    /// Creates an exact `bits x bits` multiplier.
    ///
    /// # Panics
    ///
    /// Panics unless `2 <= bits <= 10`.
    pub fn new(bits: u32) -> Self {
        assert_bits(bits);
        Self { bits }
    }
}

impl Multiplier for ExactMultiplier {
    fn bits(&self) -> u32 {
        self.bits
    }

    fn name(&self) -> String {
        format!("mul{}u_acc", self.bits)
    }

    fn multiply(&self, w: u32, x: u32) -> u32 {
        assert_operands(self.bits, w, x);
        w * x
    }

    fn circuit(&self) -> Option<MultiplierCircuit> {
        Some(MultiplierCircuit::array(self.bits))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_follows_convention() {
        assert_eq!(ExactMultiplier::new(7).name(), "mul7u_acc");
    }

    #[test]
    fn circuit_matches_behaviour() {
        let m = ExactMultiplier::new(5);
        let c = m.circuit().expect("exact multiplier has a netlist");
        let lut = c.exhaustive_products();
        for w in 0..32u32 {
            for x in 0..32u32 {
                assert_eq!(lut[((w << 5) | x) as usize] as u32, m.multiply(w, x));
            }
        }
    }

    #[test]
    #[should_panic(expected = "must fit")]
    fn rejects_oversized_operand() {
        ExactMultiplier::new(4).multiply(16, 0);
    }
}
