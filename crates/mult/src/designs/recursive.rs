//! Recursive multiplier built from approximate 2x2 blocks.

use appmult_circuit::{DotColumns, MultiplierCircuit, Netlist, Signal};

use super::{assert_bits, assert_operands};
use crate::multiplier::Multiplier;

/// A multiplier decomposed into 2-bit digit products, where low-significance
/// blocks use the classic underdesigned 2x2 block (`3 x 3 -> 7` instead of
/// 9, everything else exact).
///
/// A block multiplying digit `i` of `w` by digit `j` of `x` is approximated
/// iff `i + j < approx_threshold`; raising the threshold trades accuracy for
/// hardware. Threshold 0 is exact.
///
/// # Example
///
/// ```
/// use appmult_mult::{Multiplier, Recursive2x2Multiplier};
///
/// let m = Recursive2x2Multiplier::new(8, 3);
/// // No digit pair multiplies 3 x 3 here, so the result is exact.
/// assert_eq!(m.multiply(0b01_01_01_01, 2), 0b01_01_01_01 * 2);
/// // 3 x 3 in an approximated block loses 2.
/// assert_eq!(m.multiply(3, 3), 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Recursive2x2Multiplier {
    bits: u32,
    approx_threshold: u32,
}

impl Recursive2x2Multiplier {
    /// Creates the design; blocks with digit significance `i + j` below
    /// `approx_threshold` are approximated.
    ///
    /// # Panics
    ///
    /// Panics unless `2 <= bits <= 10`. The threshold saturates at the
    /// maximum digit significance, so any value is accepted.
    pub fn new(bits: u32, approx_threshold: u32) -> Self {
        assert_bits(bits);
        Self {
            bits,
            approx_threshold,
        }
    }

    /// Number of 2-bit digits per operand.
    fn digits(&self) -> u32 {
        self.bits.div_ceil(2)
    }

    /// The block-level approximation threshold.
    pub fn approx_threshold(&self) -> u32 {
        self.approx_threshold
    }
}

/// The underdesigned 2x2 block: exact except `3 * 3 = 7`.
fn approx_block(a: u32, b: u32) -> u32 {
    debug_assert!(a < 4 && b < 4);
    if a == 3 && b == 3 {
        7
    } else {
        a * b
    }
}

impl Multiplier for Recursive2x2Multiplier {
    fn bits(&self) -> u32 {
        self.bits
    }

    fn name(&self) -> String {
        format!("mul{}u_k2t{}", self.bits, self.approx_threshold)
    }

    fn multiply(&self, w: u32, x: u32) -> u32 {
        assert_operands(self.bits, w, x);
        let nd = self.digits();
        let mut acc = 0u32;
        for i in 0..nd {
            let dw = (w >> (2 * i)) & 3;
            for j in 0..nd {
                let dx = (x >> (2 * j)) & 3;
                let block = if i + j < self.approx_threshold {
                    approx_block(dw, dx)
                } else {
                    dw * dx
                };
                acc += block << (2 * (i + j));
            }
        }
        // 3*3 -> 7 underestimates, so no overflow beyond the exact product.
        acc
    }

    fn circuit(&self) -> Option<MultiplierCircuit> {
        let bits = self.bits;
        let nd = self.digits();
        let mut nl = Netlist::new();
        let w: Vec<Signal> = (0..bits).map(|_| nl.input()).collect();
        let x: Vec<Signal> = (0..bits).map(|_| nl.input()).collect();
        // For odd widths the top digit's high bit is absent (constant 0);
        // blocks degrade gracefully by omitting the affected gates.
        let digit = |bus: &[Signal], d: u32| -> (Signal, Option<Signal>) {
            let lo = bus[(2 * d) as usize];
            let hi = bus.get((2 * d + 1) as usize).copied();
            (lo, hi)
        };
        let mut dots = DotColumns::new(2 * bits as usize);
        let push = |dots: &mut DotColumns, weight: usize, sig: Signal| {
            if weight < 2 * bits as usize {
                dots.push(weight, sig);
            }
        };
        for i in 0..nd {
            let (a0, a1) = digit(&w, i);
            for j in 0..nd {
                let (b0, b1) = digit(&x, j);
                let base = 2 * (i + j) as usize;
                let y0 = nl.and(a0, b0);
                push(&mut dots, base, y0);
                match (a1, b1) {
                    (None, None) => {}
                    (Some(a1), None) => {
                        let t = nl.and(a1, b0);
                        push(&mut dots, base + 1, t);
                    }
                    (None, Some(b1)) => {
                        let t = nl.and(a0, b1);
                        push(&mut dots, base + 1, t);
                    }
                    (Some(a1), Some(b1)) => {
                        let p = nl.and(a1, b0);
                        let q = nl.and(a0, b1);
                        let r = nl.and(a1, b1);
                        if i + j < self.approx_threshold {
                            // Underdesigned block: y1 = p | q, y2 = r, no carry.
                            let y1 = nl.or(p, q);
                            push(&mut dots, base + 1, y1);
                            push(&mut dots, base + 2, r);
                        } else {
                            // Exact block: y1 = p ^ q with carry into y2/y3.
                            let y1 = nl.xor(p, q);
                            let c1 = nl.and(p, q);
                            let y2 = nl.xor(r, c1);
                            let y3 = nl.and(r, c1);
                            push(&mut dots, base + 1, y1);
                            push(&mut dots, base + 2, y2);
                            push(&mut dots, base + 3, y3);
                        }
                    }
                }
            }
        }
        let outs = dots.reduce_ripple(&mut nl);
        nl.set_outputs(outs);
        MultiplierCircuit::from_netlist(nl, bits).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::ErrorMetrics;

    #[test]
    fn threshold_zero_is_exact() {
        for bits in [4u32, 5, 6, 7] {
            let m = Recursive2x2Multiplier::new(bits, 0);
            let metrics = ErrorMetrics::exhaustive(&m.to_lut());
            assert_eq!(metrics.max_ed, 0, "bits = {bits}");
        }
    }

    #[test]
    fn circuit_matches_behaviour_even_width() {
        let m = Recursive2x2Multiplier::new(6, 3);
        let lut = m.to_lut();
        let cl = m.circuit().expect("has circuit").exhaustive_products();
        for w in 0..64u32 {
            for x in 0..64u32 {
                assert_eq!(cl[((w << 6) | x) as usize] as u32, lut.product(w, x));
            }
        }
    }

    #[test]
    fn circuit_matches_behaviour_odd_width() {
        let m = Recursive2x2Multiplier::new(7, 4);
        let lut = m.to_lut();
        let cl = m.circuit().expect("has circuit").exhaustive_products();
        for w in 0..128u32 {
            for x in 0..128u32 {
                assert_eq!(
                    cl[((w << 7) | x) as usize] as u32,
                    lut.product(w, x),
                    "{w}*{x}"
                );
            }
        }
    }

    #[test]
    fn higher_threshold_means_more_error() {
        let low = ErrorMetrics::exhaustive(&Recursive2x2Multiplier::new(8, 2).to_lut());
        let high = ErrorMetrics::exhaustive(&Recursive2x2Multiplier::new(8, 6).to_lut());
        assert!(high.nmed > low.nmed);
    }

    #[test]
    fn always_underestimates() {
        let m = Recursive2x2Multiplier::new(8, 7);
        for &(w, x) in &[(255u32, 255u32), (204, 51), (3, 3), (63, 192)] {
            assert!(m.multiply(w, x) <= w * x);
        }
    }

    #[test]
    fn only_double_three_digit_pairs_err() {
        let m = Recursive2x2Multiplier::new(4, 10);
        // 0b0011 * 0b0011 = one approximated 3x3 block.
        assert_eq!(m.multiply(3, 3), 7);
        // 0b0010 * 0b0011: 2 * 3 blocks stay exact.
        assert_eq!(m.multiply(2, 3), 6);
    }
}
