//! ALS-synthesized approximate multipliers (`_syn` designs).

use appmult_circuit::{synthesize, AlsConfig, MultiplierCircuit};

use super::assert_bits;
use crate::multiplier::{Multiplier, MultiplierLut};

/// An approximate multiplier produced by the greedy approximate logic
/// synthesis pass in `appmult-circuit`, standing in for the ALSRAC-generated
/// `_syn` designs of Table I.
///
/// The synthesized netlist is retained so the hardware cost model can
/// report its (reduced) area, delay, and power; the behavioural function is
/// served from the extracted LUT.
///
/// # Example
///
/// ```
/// use appmult_mult::{ErrorMetrics, Multiplier, SynthesizedMultiplier};
///
/// // Generating runs ALS over the exact array multiplier; keep it small here.
/// let m = SynthesizedMultiplier::generate(6, 0.004, 1);
/// let metrics = ErrorMetrics::exhaustive(&m.to_lut());
/// assert!(metrics.nmed_pct() <= 0.4);
/// assert!(metrics.nmed > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct SynthesizedMultiplier {
    name: String,
    lut: MultiplierLut,
    circuit: MultiplierCircuit,
    nmed: f64,
}

impl SynthesizedMultiplier {
    /// Runs ALS on the exact `bits`-wide array multiplier under an NMED
    /// budget (fraction of `2^(2B) - 1`) with a deterministic seed.
    ///
    /// This is compute-heavy for 8-bit operands (a few seconds on one core);
    /// results for a given `(bits, budget, seed)` are fully deterministic.
    ///
    /// # Panics
    ///
    /// Panics unless `2 <= bits <= 10`.
    pub fn generate(bits: u32, nmed_budget: f64, seed: u64) -> Self {
        assert_bits(bits);
        let exact = MultiplierCircuit::array(bits);
        let cfg = AlsConfig {
            nmed_budget,
            seed,
            ..AlsConfig::default()
        };
        let outcome = synthesize(&exact, &cfg);
        let name = format!("mul{bits}u_syn{seed}");
        let products: Vec<u32> = outcome
            .circuit
            .exhaustive_products()
            .into_iter()
            .map(|p| p as u32)
            .collect();
        let lut = MultiplierLut::from_entries(name.clone(), bits, products);
        Self {
            name,
            lut,
            circuit: outcome.circuit,
            nmed: outcome.nmed,
        }
    }

    /// The NMED measured during synthesis.
    pub fn nmed(&self) -> f64 {
        self.nmed
    }
}

impl Multiplier for SynthesizedMultiplier {
    fn bits(&self) -> u32 {
        self.lut.bits()
    }

    fn name(&self) -> String {
        self.name.clone()
    }

    fn multiply(&self, w: u32, x: u32) -> u32 {
        self.lut.product(w, x)
    }

    fn circuit(&self) -> Option<MultiplierCircuit> {
        Some(self.circuit.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::ErrorMetrics;
    use appmult_circuit::CostModel;

    #[test]
    fn synthesis_reduces_hardware_cost() {
        let m = SynthesizedMultiplier::generate(5, 0.005, 3);
        let model = CostModel::asap7();
        let syn_cost = model.estimate(&m.circuit().expect("kept netlist"));
        let exact_cost = model.estimate(&MultiplierCircuit::array(5));
        assert!(syn_cost.area_um2 < exact_cost.area_um2);
        assert!(syn_cost.power_uw < exact_cost.power_uw);
    }

    #[test]
    fn lut_matches_reported_nmed() {
        let m = SynthesizedMultiplier::generate(5, 0.005, 3);
        let metrics = ErrorMetrics::exhaustive(&m.to_lut());
        assert!((metrics.nmed - m.nmed()).abs() < 1e-12);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = SynthesizedMultiplier::generate(4, 0.006, 9);
        let b = SynthesizedMultiplier::generate(4, 0.006, 9);
        assert_eq!(a.to_lut().entries(), b.to_lut().entries());
    }
}
