//! Approximate multiplier design families.
//!
//! Each family implements [`crate::Multiplier`] behaviourally, and — where a
//! natural gate-level structure exists — also provides a netlist through
//! [`crate::Multiplier::circuit`] for the hardware cost model.
//!
//! | Family | Approximation idea | Gate-level? |
//! |---|---|---|
//! | [`ExactMultiplier`] | none (AccMult) | yes |
//! | [`TruncatedMultiplier`] | remove rightmost partial-product columns (Fig. 2) | yes |
//! | [`BrokenTruncatedMultiplier`] | truncation plus partial removal of the next column | yes |
//! | [`CompensatedTruncatedMultiplier`] | truncation plus a gated constant compensation | yes |
//! | [`LowerOrMultiplier`] | OR-compress the low columns instead of adding | yes |
//! | [`Recursive2x2Multiplier`] | Kulkarni-style approximate 2x2 building blocks | yes |
//! | [`SegmentedMultiplier`] | DRUM-style leading-one segment multiplication | yes |
//! | [`MitchellMultiplier`] | logarithmic (Mitchell) approximation | no |
//! | [`CompressorMultiplier`] | approximate OR-based 4:2 compressors | yes |
//! | [`SynthesizedMultiplier`] | greedy ALS rewrites of the exact array | yes |

mod compressor;
mod exact;
mod lower_or;
mod mitchell;
mod recursive;
mod segmented;
mod synthesized;
mod truncated;

pub use compressor::CompressorMultiplier;
pub use exact::ExactMultiplier;
pub use lower_or::LowerOrMultiplier;
pub use mitchell::MitchellMultiplier;
pub use recursive::Recursive2x2Multiplier;
pub use segmented::SegmentedMultiplier;
pub use synthesized::SynthesizedMultiplier;
pub use truncated::{
    BrokenTruncatedMultiplier, CompensatedTruncatedMultiplier, TruncatedMultiplier,
};

pub(crate) fn assert_bits(bits: u32) {
    assert!(
        (2..=10).contains(&bits),
        "bits must be in 2..=10, got {bits}"
    );
}

pub(crate) fn assert_operands(bits: u32, w: u32, x: u32) {
    assert!(
        w < (1 << bits) && x < (1 << bits),
        "operands ({w}, {x}) must fit in {bits} bits"
    );
}
