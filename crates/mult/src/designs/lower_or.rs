//! Lower-OR multiplier: OR-compress the low partial-product columns.

use appmult_circuit::{DotColumns, MultiplierCircuit, Netlist, Signal};

use super::{assert_bits, assert_operands};
use crate::multiplier::Multiplier;

/// A multiplier whose `low_columns` least-significant columns are compressed
/// with a single OR per column instead of adders (the multiplier analogue of
/// the classic lower-part-OR adder).
///
/// Product bits below the cut are `OR` of the column's partial products; no
/// carries propagate from the low part into the exact high part. Errors are
/// much smaller than plain truncation at nearly the same hardware cost.
///
/// # Example
///
/// ```
/// use appmult_mult::{LowerOrMultiplier, Multiplier};
///
/// let m = LowerOrMultiplier::new(7, 6);
/// // pp_00 is the only weight-0 term; OR keeps it: 1*1 = 1 survives.
/// assert_eq!(m.multiply(1, 1), 1);
/// // But multiple dots in a column saturate at a single 1.
/// assert!(m.multiply(3, 3) <= 9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LowerOrMultiplier {
    bits: u32,
    low_columns: u32,
}

impl LowerOrMultiplier {
    /// Creates the design with the `low_columns` rightmost columns
    /// OR-compressed.
    ///
    /// # Panics
    ///
    /// Panics unless `2 <= bits <= 10` and `low_columns < 2 * bits - 1`.
    pub fn new(bits: u32, low_columns: u32) -> Self {
        assert_bits(bits);
        assert!(low_columns < 2 * bits - 1, "cut must leave exact columns");
        Self { bits, low_columns }
    }

    /// Number of OR-compressed columns.
    pub fn low_columns(&self) -> u32 {
        self.low_columns
    }
}

impl Multiplier for LowerOrMultiplier {
    fn bits(&self) -> u32 {
        self.bits
    }

    fn name(&self) -> String {
        format!("mul{}u_lo{}", self.bits, self.low_columns)
    }

    fn multiply(&self, w: u32, x: u32) -> u32 {
        assert_operands(self.bits, w, x);
        let k = self.low_columns;
        let mut high = 0u32;
        let mut low = 0u32;
        for i in 0..self.bits {
            if (w >> i) & 1 == 0 {
                continue;
            }
            for j in 0..self.bits {
                if (x >> j) & 1 == 0 {
                    continue;
                }
                let c = i + j;
                if c >= k {
                    high += 1 << c;
                } else {
                    low |= 1 << c;
                }
            }
        }
        // The exact high sum is a multiple of 2^k, so the OR bits slot in
        // without carry interaction.
        high + low
    }

    fn circuit(&self) -> Option<MultiplierCircuit> {
        let bits = self.bits;
        let k = self.low_columns;
        let mut nl = Netlist::new();
        let w: Vec<Signal> = (0..bits).map(|_| nl.input()).collect();
        let x: Vec<Signal> = (0..bits).map(|_| nl.input()).collect();
        let mut dots = DotColumns::new(2 * bits as usize);
        let mut low_or: Vec<Option<Signal>> = vec![None; k as usize];
        for i in 0..bits {
            for j in 0..bits {
                let c = i + j;
                let pp = nl.and(w[i as usize], x[j as usize]);
                if c >= k {
                    dots.push(c as usize, pp);
                } else {
                    let slot = &mut low_or[c as usize];
                    *slot = Some(match *slot {
                        Some(acc) => nl.or(acc, pp),
                        None => pp,
                    });
                }
            }
        }
        let mut outs = dots.reduce_ripple(&mut nl);
        for c in 0..k as usize {
            if let Some(sig) = low_or[c] {
                outs[c] = sig;
            }
        }
        nl.set_outputs(outs);
        MultiplierCircuit::from_netlist(nl, bits).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::designs::TruncatedMultiplier;
    use crate::metrics::ErrorMetrics;

    #[test]
    fn circuit_matches_behaviour() {
        let m = LowerOrMultiplier::new(6, 5);
        let lut = m.to_lut();
        let c = m.circuit().expect("has circuit");
        let cl = c.exhaustive_products();
        for w in 0..64u32 {
            for x in 0..64u32 {
                assert_eq!(cl[((w << 6) | x) as usize] as u32, lut.product(w, x));
            }
        }
    }

    #[test]
    fn never_worse_than_truncation() {
        let lo = LowerOrMultiplier::new(7, 6);
        let rm = TruncatedMultiplier::new(7, 6);
        for &(w, x) in &[(127u32, 127u32), (3, 3), (85, 42), (1, 127)] {
            let exact = w * x;
            assert!(lo.multiply(w, x) >= rm.multiply(w, x));
            assert!(lo.multiply(w, x) <= exact);
        }
    }

    #[test]
    fn nmed_below_matching_truncation() {
        let lo = ErrorMetrics::exhaustive(&LowerOrMultiplier::new(7, 6).to_lut());
        let rm = ErrorMetrics::exhaustive(&TruncatedMultiplier::new(7, 6).to_lut());
        assert!(lo.nmed < rm.nmed);
        assert!(lo.max_ed < rm.max_ed);
    }

    #[test]
    fn single_dot_columns_stay_exact() {
        // With one partial product in a column, OR == ADD; errors need >= 2 dots.
        let m = LowerOrMultiplier::new(6, 5);
        for x in 0..64 {
            assert_eq!(m.multiply(1, x), x, "1 * {x}");
            assert_eq!(m.multiply(x, 1), x, "{x} * 1");
        }
    }
}
