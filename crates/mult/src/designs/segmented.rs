//! Segmented (DRUM-style) dynamic-range multiplier.

use appmult_circuit::{DotColumns, MultiplierCircuit, Netlist, Signal};

use super::{assert_bits, assert_operands};
use crate::multiplier::Multiplier;

/// A DRUM-style multiplier: each operand is reduced to its `segment`-bit
/// window starting at the leading one (with the dropped LSB forced to 1 for
/// unbiasing), the windows are multiplied exactly, and the result is shifted
/// back.
///
/// Operands that already fit in the segment are multiplied exactly, so the
/// error rate is far below the truncation designs while the maximum error
/// distance is large — the profile of the paper's `mul8u_1DMU` entry.
///
/// # Example
///
/// ```
/// use appmult_mult::{Multiplier, SegmentedMultiplier};
///
/// let m = SegmentedMultiplier::new(8, 4);
/// // Small operands are exact.
/// assert_eq!(m.multiply(7, 13), 91);
/// // Large operands are approximated but in the right ballpark.
/// let approx = m.multiply(200, 200) as f64;
/// assert!((approx - 40000.0).abs() / 40000.0 < 0.15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SegmentedMultiplier {
    bits: u32,
    segment: u32,
}

impl SegmentedMultiplier {
    /// Creates the design with `segment`-bit windows.
    ///
    /// # Panics
    ///
    /// Panics unless `2 <= bits <= 10` and `2 <= segment <= bits`.
    pub fn new(bits: u32, segment: u32) -> Self {
        assert_bits(bits);
        assert!(
            segment >= 2 && segment <= bits,
            "segment must be in 2..={bits}"
        );
        Self { bits, segment }
    }

    /// Window width in bits.
    pub fn segment(&self) -> u32 {
        self.segment
    }

    /// Reduces an operand to `(window_value, shift)`.
    fn reduce(&self, v: u32) -> (u32, u32) {
        let m = self.segment;
        if v < (1 << m) {
            (v, 0)
        } else {
            let p = 31 - v.leading_zeros();
            let shift = p - m + 1;
            // Truncate to the leading m bits and force the LSB to 1 so the
            // truncation error is unbiased.
            (((v >> shift) | 1), shift)
        }
    }
}

impl Multiplier for SegmentedMultiplier {
    fn bits(&self) -> u32 {
        self.bits
    }

    fn name(&self) -> String {
        format!("mul{}u_seg{}", self.bits, self.segment)
    }

    fn multiply(&self, w: u32, x: u32) -> u32 {
        assert_operands(self.bits, w, x);
        let (sw, shw) = self.reduce(w);
        let (sx, shx) = self.reduce(x);
        (sw * sx) << (shw + shx)
    }

    // `Multiplier::circuit` deliberately stays `None`: the 2-input-gate
    // cost model heavily overestimates the mux-rich DRUM structure (real
    // implementations use transmission-gate muxes), so Table I keeps the
    // paper's published hardware numbers for this entry. The gate-level
    // structure is still available through [`SegmentedMultiplier::gate_level`].
}

impl SegmentedMultiplier {
    /// Builds the gate-level DRUM netlist: leading-one detector,
    /// mux-selected `m`-bit segments (LSB forced to 1 for large operands),
    /// one exact `m x m` array multiplier on the segments, and a one-hot
    /// shift network that places the product back at the right magnitude.
    ///
    /// Functionally bit-exact to [`Multiplier::multiply`] (test-enforced);
    /// see the note on [`Multiplier::circuit`] about why it is not used
    /// for costing.
    pub fn gate_level(&self) -> MultiplierCircuit {
        let bits = self.bits;
        let m = self.segment;
        if m == bits {
            return MultiplierCircuit::array(bits);
        }
        let mut nl = Netlist::new();
        let w: Vec<Signal> = (0..bits).map(|_| nl.input()).collect();
        let x: Vec<Signal> = (0..bits).map(|_| nl.input()).collect();

        let reduce_bus = |nl: &mut Netlist, v: &[Signal]| -> (Vec<Signal>, Vec<Signal>) {
            // Cases: index 0 = "small" (v < 2^m, shift 0); index c >= 1 =
            // leading one at position p = m - 1 + c (shift c).
            let cases = (bits - m + 1) as usize;
            // hi_any[p] = OR of v[p+1 ..]; built top down.
            let mut hi_any = vec![None::<Signal>; bits as usize];
            for p in (0..bits as usize - 1).rev() {
                let above = v[p + 1];
                hi_any[p] = Some(match hi_any[p + 1] {
                    Some(acc) => nl.or(acc, above),
                    None => above,
                });
            }
            let mut onehot = Vec::with_capacity(cases);
            // small = no bit at positions >= m.
            let small = {
                let any_high = hi_any[m as usize - 1].expect("m < bits");
                nl.not(any_high)
            };
            onehot.push(small);
            for c in 1..cases {
                let p = m as usize - 1 + c;
                let lead = match hi_any[p] {
                    Some(acc) => {
                        let no_higher = nl.not(acc);
                        nl.and(v[p], no_higher)
                    }
                    None => v[p],
                };
                onehot.push(lead);
            }
            // Segment bits via one-hot mux.
            let mut seg = Vec::with_capacity(m as usize);
            for j in 0..m as usize {
                let mut acc: Option<Signal> = None;
                for (c, &oh) in onehot.iter().enumerate() {
                    let term = if c == 0 {
                        nl.and(oh, v[j])
                    } else if j == 0 {
                        // Forced LSB (unbiasing): segment bit 0 is 1.
                        oh
                    } else {
                        let src = v[c + j]; // shift = c, bit = v[shift + j]
                        nl.and(oh, src)
                    };
                    acc = Some(match acc {
                        Some(a) => nl.or(a, term),
                        None => term,
                    });
                }
                seg.push(acc.expect("at least one case"));
            }
            (seg, onehot)
        };

        let (seg_w, oh_w) = reduce_bus(&mut nl, &w);
        let (seg_x, oh_x) = reduce_bus(&mut nl, &x);

        // Exact m x m product of the segments.
        let mut dots = DotColumns::new(2 * m as usize);
        for (i, &sw) in seg_w.iter().enumerate().take(m as usize) {
            for (j, &sx) in seg_x.iter().enumerate().take(m as usize) {
                let pp = nl.and(sw, sx);
                dots.push(i + j, pp);
            }
        }
        let prod = dots.reduce_ripple(&mut nl);

        // One-hot shift network: for each (case_w, case_x) pair the shift
        // is cw + cx; cases are mutually exclusive, so the outputs are OR
        // trees of gated product bits (no adders needed).
        let out_bits = 2 * bits as usize;
        let mut outs: Vec<Option<Signal>> = vec![None; out_bits];
        for (cw, &ow) in oh_w.iter().enumerate() {
            for (cx, &ox) in oh_x.iter().enumerate() {
                let gate = nl.and(ow, ox);
                let shift = cw + cx;
                for (k, &pk) in prod.iter().enumerate() {
                    let pos = k + shift;
                    if pos >= out_bits {
                        continue;
                    }
                    let term = nl.and(gate, pk);
                    let slot = &mut outs[pos];
                    *slot = Some(match *slot {
                        Some(acc) => nl.or(acc, term),
                        None => term,
                    });
                }
            }
        }
        let zero = nl.const0();
        let outputs: Vec<Signal> = outs.into_iter().map(|o| o.unwrap_or(zero)).collect();
        nl.set_outputs(outputs);
        MultiplierCircuit::from_netlist(nl, bits).expect("bus shapes are correct")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::ErrorMetrics;

    #[test]
    fn small_operands_are_exact() {
        let m = SegmentedMultiplier::new(8, 4);
        for w in 0..16 {
            for x in 0..16 {
                assert_eq!(m.multiply(w, x), w * x);
            }
        }
    }

    #[test]
    fn products_fit_output_bus() {
        let m = SegmentedMultiplier::new(8, 4);
        for w in 0..256 {
            for x in 0..256 {
                assert!(m.multiply(w, x) < 1 << 16, "{w}*{x}");
            }
        }
    }

    #[test]
    fn relative_error_bounded_by_window() {
        // DRUM-m has |relative error| < 2^(1-m) for nonzero operands.
        let m = SegmentedMultiplier::new(8, 4);
        let bound = 2.0f64.powi(1 - 4) * 2.0; // both operands approximated
        for &(w, x) in &[(255u32, 255u32), (129, 200), (100, 50), (17, 240)] {
            let exact = (w * x) as f64;
            let err = (m.multiply(w, x) as f64 - exact).abs() / exact;
            assert!(err <= bound, "{w}*{x}: rel err {err}");
        }
    }

    #[test]
    fn error_profile_is_low_er_high_maxed() {
        // Wider windows push the error rate down while MaxED stays large —
        // the characteristic DRUM profile (cf. mul8u_1DMU in Table I).
        let seg4 = ErrorMetrics::exhaustive(&SegmentedMultiplier::new(8, 4).to_lut());
        let seg5 = ErrorMetrics::exhaustive(&SegmentedMultiplier::new(8, 5).to_lut());
        assert!(seg5.error_rate < seg4.error_rate);
        assert!(seg5.er_pct() < 96.0, "er = {}", seg5.er_pct());
        assert!(seg5.max_ed > 1000, "DRUM MaxED is large: {}", seg5.max_ed);
    }

    #[test]
    fn drum_circuit_matches_behaviour() {
        for (bits, m) in [(6u32, 3u32), (7, 4), (8, 5)] {
            let mult = SegmentedMultiplier::new(bits, m);
            let lut = mult.to_lut();
            let cl = mult.gate_level().exhaustive_products();
            for w in 0..(1u32 << bits) {
                for x in 0..(1u32 << bits) {
                    assert_eq!(
                        cl[((w << bits) | x) as usize] as u32,
                        lut.product(w, x),
                        "bits={bits} m={m} {w}*{x}"
                    );
                }
            }
        }
    }

    #[test]
    fn drum_gate_level_exists_but_is_not_used_for_costing() {
        let drum = SegmentedMultiplier::new(8, 4);
        assert!(
            drum.circuit().is_none(),
            "costing falls back to the paper row"
        );
        // The netlist itself is well-formed and non-trivial.
        let c = drum.gate_level();
        assert!(c.netlist().num_physical_gates() > 50);
    }

    #[test]
    fn full_width_segment_is_exact() {
        let m = SegmentedMultiplier::new(6, 6);
        let metrics = ErrorMetrics::exhaustive(&m.to_lut());
        assert_eq!(metrics.max_ed, 0);
    }
}
