//! Approximate integer multipliers (AppMults) for DNN accelerators.
//!
//! This crate provides the multiplier side of the paper's flow: the
//! [`Multiplier`] trait, behavioural implementations of the approximate
//! design families evaluated in Table I, precomputed product lookup tables
//! ([`MultiplierLut`], the forward-path representation used by the
//! retraining framework), and the standard error metrics
//! ([`ErrorMetrics`]: error rate, NMED, MaxED — Eq. 2 of the paper).
//!
//! Most designs also expose a gate-level structure (via
//! [`Multiplier::circuit`]) so the `appmult-circuit` cost model can report
//! area, delay, and power.
//!
//! # Example
//!
//! ```
//! use appmult_mult::{ErrorMetrics, Multiplier, TruncatedMultiplier};
//!
//! // The Fig. 2 multiplier: 7-bit, 6 rightmost partial-product columns removed.
//! let m = TruncatedMultiplier::new(7, 6);
//! assert!(m.multiply(10, 100) <= 1000);
//!
//! let metrics = ErrorMetrics::exhaustive(&m.to_lut());
//! assert!(metrics.nmed_pct() > 0.1 && metrics.nmed_pct() < 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod designs;
mod discovered;
mod faulty;
mod metrics;
mod multiplier;
mod signed;
pub mod zoo;

pub use designs::{
    BrokenTruncatedMultiplier, CompensatedTruncatedMultiplier, CompressorMultiplier,
    ExactMultiplier, LowerOrMultiplier, MitchellMultiplier, Recursive2x2Multiplier,
    SegmentedMultiplier, SynthesizedMultiplier, TruncatedMultiplier,
};
pub use discovered::{DiscoveredError, DiscoveredMultiplier};
pub use faulty::FaultyMultiplier;
pub use metrics::ErrorMetrics;
pub use multiplier::{Multiplier, MultiplierLut};
pub use signed::SignMagnitudeMultiplier;
