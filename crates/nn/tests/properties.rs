//! Property-based tests for the deep-learning substrate.

use appmult_nn::layers::{im2col, nchw_to_rows, rows_to_nchw, Conv2dSpec};
use appmult_nn::loss::{softmax, softmax_cross_entropy};
use appmult_nn::metrics::top_k_accuracy;
use appmult_nn::Tensor;
use proptest::prelude::*;

fn tensor_strategy(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-2.0f32..2.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Matmul distributes over addition: (A + B) C == AC + BC.
    #[test]
    fn matmul_distributes(a in tensor_strategy(6), b in tensor_strategy(6), c in tensor_strategy(8)) {
        let a = Tensor::from_vec(a, &[3, 2]);
        let b = Tensor::from_vec(b, &[3, 2]);
        let c = Tensor::from_vec(c, &[2, 4]);
        let lhs = a.add(&b).matmul(&c);
        let rhs = a.matmul(&c).add(&b.matmul(&c));
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// Transpose reverses matmul: (AB)^T == B^T A^T.
    #[test]
    fn transpose_reverses_matmul(a in tensor_strategy(6), b in tensor_strategy(6)) {
        let a = Tensor::from_vec(a, &[2, 3]);
        let b = Tensor::from_vec(b, &[3, 2]);
        let lhs = a.matmul(&b).transpose2d();
        let rhs = b.transpose2d().matmul(&a.transpose2d());
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// im2col preserves total mass for kernel 1, stride 1 (a permutation).
    #[test]
    fn unit_kernel_im2col_is_permutation(data in tensor_strategy(2 * 3 * 4 * 4)) {
        let x = Tensor::from_vec(data, &[2, 3, 4, 4]);
        let spec = Conv2dSpec { in_channels: 3, out_channels: 1, kernel: 1, stride: 1, padding: 0 };
        let cols = im2col(&x, &spec);
        prop_assert_eq!(cols.len(), x.len());
        let mut a: Vec<f32> = x.as_slice().to_vec();
        let mut b: Vec<f32> = cols.as_slice().to_vec();
        a.sort_by(f32::total_cmp);
        b.sort_by(f32::total_cmp);
        prop_assert_eq!(a, b);
    }

    /// rows<->nchw conversion is a bijection.
    #[test]
    fn rows_nchw_bijection(data in tensor_strategy(2 * 3 * 2 * 5)) {
        let x = Tensor::from_vec(data, &[2, 3, 2, 5]);
        let back = rows_to_nchw(&nchw_to_rows(&x), 2, 3, 2, 5);
        prop_assert_eq!(back, x);
    }

    /// Cross-entropy loss is non-negative, and its gradient rows sum to 0.
    #[test]
    fn cross_entropy_invariants(data in tensor_strategy(12), labels in proptest::collection::vec(0usize..4, 3)) {
        let logits = Tensor::from_vec(data, &[3, 4]);
        let (loss, grad) = softmax_cross_entropy(&logits, &labels);
        prop_assert!(loss >= 0.0);
        for row in grad.as_slice().chunks(4) {
            let s: f32 = row.iter().sum();
            prop_assert!(s.abs() < 1e-5);
        }
    }

    /// Softmax is shift-invariant.
    #[test]
    fn softmax_shift_invariant(data in tensor_strategy(8), shift in -3.0f32..3.0) {
        let a = Tensor::from_vec(data.clone(), &[2, 4]);
        let b = a.map(|v| v + shift);
        let pa = softmax(&a);
        let pb = softmax(&b);
        for (x, y) in pa.as_slice().iter().zip(pb.as_slice()) {
            prop_assert!((x - y).abs() < 1e-5);
        }
    }

    /// Top-k accuracy is monotone in k.
    #[test]
    fn topk_monotone_in_k(data in tensor_strategy(30), labels in proptest::collection::vec(0usize..10, 3)) {
        let logits = Tensor::from_vec(data, &[3, 10]);
        let mut prev = 0.0;
        for k in 1..=10 {
            let acc = top_k_accuracy(&logits, &labels, k);
            prop_assert!(acc + 1e-12 >= prev, "k={k}: {acc} < {prev}");
            prev = acc;
        }
        prop_assert_eq!(top_k_accuracy(&logits, &labels, 10), 1.0);
    }
}
