//! Randomized property tests for the deep-learning substrate.
//!
//! Deterministic cases drawn from the in-tree `appmult-rng` stream
//! (proptest is unavailable in the offline build environment).

use appmult_nn::layers::{im2col, nchw_to_rows, rows_to_nchw, Conv2dSpec};
use appmult_nn::loss::{softmax, softmax_cross_entropy};
use appmult_nn::metrics::top_k_accuracy;
use appmult_nn::Tensor;
use appmult_rng::Rng64;

fn random_data(rng: &mut Rng64, len: usize) -> Vec<f32> {
    (0..len).map(|_| rng.uniform_f32(-2.0, 2.0)).collect()
}

/// Matmul distributes over addition: (A + B) C == AC + BC.
#[test]
fn matmul_distributes() {
    let mut rng = Rng64::seed_from_u64(0xA1);
    for _ in 0..48 {
        let a = Tensor::from_vec(random_data(&mut rng, 6), &[3, 2]);
        let b = Tensor::from_vec(random_data(&mut rng, 6), &[3, 2]);
        let c = Tensor::from_vec(random_data(&mut rng, 8), &[2, 4]);
        let lhs = a.add(&b).matmul(&c);
        let rhs = a.matmul(&c).add(&b.matmul(&c));
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            assert!((x - y).abs() < 1e-4);
        }
    }
}

/// Transpose reverses matmul: (AB)^T == B^T A^T.
#[test]
fn transpose_reverses_matmul() {
    let mut rng = Rng64::seed_from_u64(0xA2);
    for _ in 0..48 {
        let a = Tensor::from_vec(random_data(&mut rng, 6), &[2, 3]);
        let b = Tensor::from_vec(random_data(&mut rng, 6), &[3, 2]);
        let lhs = a.matmul(&b).transpose2d();
        let rhs = b.transpose2d().matmul(&a.transpose2d());
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            assert!((x - y).abs() < 1e-4);
        }
    }
}

/// im2col preserves total mass for kernel 1, stride 1 (a permutation).
#[test]
fn unit_kernel_im2col_is_permutation() {
    let mut rng = Rng64::seed_from_u64(0xA3);
    for _ in 0..48 {
        let x = Tensor::from_vec(random_data(&mut rng, 2 * 3 * 4 * 4), &[2, 3, 4, 4]);
        let spec = Conv2dSpec {
            in_channels: 3,
            out_channels: 1,
            kernel: 1,
            stride: 1,
            padding: 0,
        };
        let cols = im2col(&x, &spec);
        assert_eq!(cols.len(), x.len());
        let mut a: Vec<f32> = x.as_slice().to_vec();
        let mut b: Vec<f32> = cols.as_slice().to_vec();
        a.sort_by(f32::total_cmp);
        b.sort_by(f32::total_cmp);
        assert_eq!(a, b);
    }
}

/// rows<->nchw conversion is a bijection.
#[test]
fn rows_nchw_bijection() {
    let mut rng = Rng64::seed_from_u64(0xA4);
    for _ in 0..48 {
        let x = Tensor::from_vec(random_data(&mut rng, 2 * 3 * 2 * 5), &[2, 3, 2, 5]);
        let back = rows_to_nchw(&nchw_to_rows(&x), 2, 3, 2, 5);
        assert_eq!(back, x);
    }
}

/// Cross-entropy loss is non-negative, and its gradient rows sum to 0.
#[test]
fn cross_entropy_invariants() {
    let mut rng = Rng64::seed_from_u64(0xA5);
    for _ in 0..48 {
        let logits = Tensor::from_vec(random_data(&mut rng, 12), &[3, 4]);
        let labels: Vec<usize> = (0..3).map(|_| rng.index(4)).collect();
        let (loss, grad) = softmax_cross_entropy(&logits, &labels);
        assert!(loss >= 0.0);
        for row in grad.as_slice().chunks(4) {
            let s: f32 = row.iter().sum();
            assert!(s.abs() < 1e-5);
        }
    }
}

/// Softmax is shift-invariant.
#[test]
fn softmax_shift_invariant() {
    let mut rng = Rng64::seed_from_u64(0xA6);
    for _ in 0..48 {
        let a = Tensor::from_vec(random_data(&mut rng, 8), &[2, 4]);
        let shift = rng.uniform_f32(-3.0, 3.0);
        let b = a.map(|v| v + shift);
        let pa = softmax(&a);
        let pb = softmax(&b);
        for (x, y) in pa.as_slice().iter().zip(pb.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }
    }
}

/// Top-k accuracy is monotone in k.
#[test]
fn topk_monotone_in_k() {
    let mut rng = Rng64::seed_from_u64(0xA7);
    for _ in 0..48 {
        let logits = Tensor::from_vec(random_data(&mut rng, 30), &[3, 10]);
        let labels: Vec<usize> = (0..3).map(|_| rng.index(10)).collect();
        let mut prev = 0.0;
        for k in 1..=10 {
            let acc = top_k_accuracy(&logits, &labels, k);
            assert!(acc + 1e-12 >= prev, "k={k}: {acc} < {prev}");
            prev = acc;
        }
        assert_eq!(top_k_accuracy(&logits, &labels, 10), 1.0);
    }
}
