//! The [`Module`] trait and trainable [`Parameter`]s.

use crate::tensor::Tensor;

/// A trainable tensor together with its accumulated gradient.
#[derive(Debug, Clone, PartialEq)]
pub struct Parameter {
    /// Current value.
    pub value: Tensor,
    /// Gradient accumulated by the latest backward pass(es).
    pub grad: Tensor,
    /// Whether the optimizer should apply weight decay to this parameter
    /// (convention: true for weights, false for biases and norm scales).
    pub decay: bool,
}

impl Parameter {
    /// Wraps an initial value with a zeroed gradient.
    pub fn new(value: Tensor, decay: bool) -> Self {
        let grad = Tensor::zeros(value.shape());
        Self { value, grad, decay }
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.grad = Tensor::zeros(self.value.shape());
    }
}

/// A differentiable network component with explicit forward/backward passes.
///
/// The contract mirrors classic define-by-layer frameworks:
///
/// 1. `forward` consumes an input batch and caches whatever the backward
///    pass will need;
/// 2. `backward` consumes `dL/d(output)` for the *most recent* forward call,
///    accumulates parameter gradients into [`Parameter::grad`], and returns
///    `dL/d(input)`;
/// 3. `visit_params` exposes parameters in a deterministic order (optimizers
///    key their per-parameter state on this order).
///
/// `Send` is a supertrait so that built models can be handed to worker
/// threads (the `appmult-serve` engine moves whole [`Sequential`] stacks
/// into its batch workers); every layer is plain owned data, so this costs
/// implementations nothing.
///
/// [`Sequential`]: crate::layers::Sequential
pub trait Module: Send {
    /// Runs the layer on `input`. `train` selects training-time behaviour
    /// (batch statistics, dropout masks, quantizer calibration).
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor;

    /// Backpropagates `grad_out = dL/d(output)` from the most recent
    /// `forward`, returning `dL/d(input)`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if called before `forward` or with a
    /// gradient whose shape does not match the cached activation.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Visits every trainable parameter in a stable order.
    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Parameter));

    /// Zeroes all parameter gradients.
    fn zero_grad(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }

    /// Total number of trainable scalar values.
    fn num_params(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| n += p.value.len());
        n
    }
}

impl Module for Box<dyn Module> {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        (**self).forward(input, train)
    }
    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        (**self).backward(grad_out)
    }
    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Parameter)) {
        (**self).visit_params(visitor);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameter_starts_with_zero_grad() {
        let p = Parameter::new(Tensor::full(&[3], 1.5), true);
        assert_eq!(p.grad.as_slice(), &[0.0, 0.0, 0.0]);
        assert!(p.decay);
    }

    #[test]
    fn zero_grad_resets() {
        let mut p = Parameter::new(Tensor::zeros(&[2]), false);
        p.grad = Tensor::full(&[2], 3.0);
        p.zero_grad();
        assert_eq!(p.grad.as_slice(), &[0.0, 0.0]);
    }
}
