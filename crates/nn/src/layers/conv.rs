//! 2-D convolution via im2col, plus the shared im2col/col2im kernels.
//!
//! The im2col representation is the backbone of the whole workspace: the
//! approximate LUT-based convolution in `appmult-retrain` reuses
//! [`im2col`] / [`col2im`] and replaces only the inner product.

use crate::init::kaiming_normal;
use crate::module::{Module, Parameter};
use crate::tensor::Tensor;

/// Static shape description of a 2-D convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Conv2dSpec {
    /// Input channels.
    pub in_channels: usize,
    /// Output channels.
    pub out_channels: usize,
    /// Square kernel size.
    pub kernel: usize,
    /// Stride in both dimensions.
    pub stride: usize,
    /// Zero padding in both dimensions.
    pub padding: usize,
}

impl Conv2dSpec {
    /// A stride-1 convolution with "same" padding for odd kernels.
    pub fn same(in_channels: usize, out_channels: usize, kernel: usize) -> Self {
        Self {
            in_channels,
            out_channels,
            kernel,
            stride: 1,
            padding: kernel / 2,
        }
    }

    /// Output spatial size for an input of `h x w`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration yields an empty output.
    pub fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        let oh = (h + 2 * self.padding)
            .checked_sub(self.kernel)
            .map(|v| v / self.stride + 1);
        let ow = (w + 2 * self.padding)
            .checked_sub(self.kernel)
            .map(|v| v / self.stride + 1);
        match (oh, ow) {
            (Some(oh), Some(ow)) if oh > 0 && ow > 0 => (oh, ow),
            _ => panic!("convolution output is empty for input {h}x{w} with {self:?}"),
        }
    }

    /// Length of one im2col row: `Cin * k * k`.
    pub fn patch_len(&self) -> usize {
        self.in_channels * self.kernel * self.kernel
    }
}

/// Unfolds an NCHW batch into patch rows.
///
/// Output shape `[N * OH * OW, Cin * k * k]`; row `(n * OH + oh) * OW + ow`
/// holds the receptive field of output pixel `(n, oh, ow)` with channel as
/// the slowest axis. Out-of-bounds (padding) taps are zero.
///
/// # Panics
///
/// Panics if `input` is not rank 4 or its channel count mismatches `spec`.
pub fn im2col(input: &Tensor, spec: &Conv2dSpec) -> Tensor {
    let shape = input.shape();
    assert_eq!(shape.len(), 4, "expected NCHW input");
    let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
    assert_eq!(c, spec.in_channels, "channel mismatch");
    let (oh, ow) = spec.out_hw(h, w);
    let k = spec.kernel;
    let patch = spec.patch_len();
    let mut out = vec![0.0f32; n * oh * ow * patch];
    let data = input.as_slice();
    for ni in 0..n {
        for oy in 0..oh {
            for ox in 0..ow {
                let row = ((ni * oh + oy) * ow + ox) * patch;
                let iy0 = (oy * spec.stride) as isize - spec.padding as isize;
                let ix0 = (ox * spec.stride) as isize - spec.padding as isize;
                for ci in 0..c {
                    let base_in = (ni * c + ci) * h * w;
                    let base_out = row + ci * k * k;
                    for ky in 0..k {
                        let iy = iy0 + ky as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..k {
                            let ix = ix0 + kx as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            out[base_out + ky * k + kx] =
                                data[base_in + iy as usize * w + ix as usize];
                        }
                    }
                }
            }
        }
    }
    Tensor::from_vec(out, &[n * oh * ow, patch])
}

/// Folds patch-row gradients back into an NCHW gradient (the adjoint of
/// [`im2col`]): overlapping taps accumulate.
///
/// # Panics
///
/// Panics if `cols` does not have the shape `im2col` would produce for an
/// `[n, spec.in_channels, h, w]` input.
pub fn col2im(cols: &Tensor, spec: &Conv2dSpec, n: usize, h: usize, w: usize) -> Tensor {
    let (oh, ow) = spec.out_hw(h, w);
    let k = spec.kernel;
    let c = spec.in_channels;
    let patch = spec.patch_len();
    assert_eq!(
        cols.shape(),
        &[n * oh * ow, patch],
        "col gradient shape mismatch"
    );
    let mut out = vec![0.0f32; n * c * h * w];
    let data = cols.as_slice();
    for ni in 0..n {
        for oy in 0..oh {
            for ox in 0..ow {
                let row = ((ni * oh + oy) * ow + ox) * patch;
                let iy0 = (oy * spec.stride) as isize - spec.padding as isize;
                let ix0 = (ox * spec.stride) as isize - spec.padding as isize;
                for ci in 0..c {
                    let base_out = (ni * c + ci) * h * w;
                    let base_in = row + ci * k * k;
                    for ky in 0..k {
                        let iy = iy0 + ky as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..k {
                            let ix = ix0 + kx as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            out[base_out + iy as usize * w + ix as usize] +=
                                data[base_in + ky * k + kx];
                        }
                    }
                }
            }
        }
    }
    Tensor::from_vec(out, &[n, c, h, w])
}

/// Reinterprets `[N * OH * OW, Cout]` rows as an `[N, Cout, OH, OW]` tensor.
pub fn rows_to_nchw(rows: &Tensor, n: usize, c: usize, oh: usize, ow: usize) -> Tensor {
    assert_eq!(rows.shape(), &[n * oh * ow, c], "row shape mismatch");
    let mut out = vec![0.0f32; n * c * oh * ow];
    let data = rows.as_slice();
    for ni in 0..n {
        for oy in 0..oh {
            for ox in 0..ow {
                let row = ((ni * oh + oy) * ow + ox) * c;
                for ci in 0..c {
                    out[((ni * c + ci) * oh + oy) * ow + ox] = data[row + ci];
                }
            }
        }
    }
    Tensor::from_vec(out, &[n, c, oh, ow])
}

/// Inverse of [`rows_to_nchw`].
pub fn nchw_to_rows(t: &Tensor) -> Tensor {
    let s = t.shape();
    assert_eq!(s.len(), 4, "expected NCHW tensor");
    let (n, c, oh, ow) = (s[0], s[1], s[2], s[3]);
    let mut out = vec![0.0f32; n * c * oh * ow];
    let data = t.as_slice();
    for ni in 0..n {
        for ci in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    out[(((ni * oh + oy) * ow + ox) * c) + ci] =
                        data[((ni * c + ci) * oh + oy) * ow + ox];
                }
            }
        }
    }
    Tensor::from_vec(out, &[n * oh * ow, c])
}

/// A standard (accurate, floating-point) 2-D convolution layer.
///
/// # Example
///
/// ```
/// use appmult_nn::{layers::Conv2d, Module, Tensor};
///
/// let mut conv = Conv2d::new(3, 8, 3, 1, 1, 7);
/// let x = Tensor::zeros(&[2, 3, 16, 16]);
/// let y = conv.forward(&x, true);
/// assert_eq!(y.shape(), &[2, 8, 16, 16]);
/// ```
#[derive(Debug, Clone)]
pub struct Conv2d {
    spec: Conv2dSpec,
    weight: Parameter,
    bias: Parameter,
    cols: Option<Tensor>,
    input_hw: (usize, usize, usize), // (n, h, w) of the cached forward
}

impl Conv2d {
    /// Creates a convolution with Kaiming-initialized weights.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        seed: u64,
    ) -> Self {
        assert!(in_channels > 0 && out_channels > 0 && kernel > 0 && stride > 0);
        let spec = Conv2dSpec {
            in_channels,
            out_channels,
            kernel,
            stride,
            padding,
        };
        Self::with_spec(spec, seed)
    }

    /// Creates a convolution from a [`Conv2dSpec`].
    pub fn with_spec(spec: Conv2dSpec, seed: u64) -> Self {
        let fan_in = spec.patch_len();
        let weight = kaiming_normal(&[spec.out_channels, fan_in], fan_in, seed);
        Self {
            spec,
            weight: Parameter::new(weight, true),
            bias: Parameter::new(Tensor::zeros(&[spec.out_channels]), false),
            cols: None,
            input_hw: (0, 0, 0),
        }
    }

    /// The shape specification.
    pub fn spec(&self) -> &Conv2dSpec {
        &self.spec
    }

    /// The weight parameter viewed as `[Cout, Cin * k * k]`.
    pub fn weight(&self) -> &Parameter {
        &self.weight
    }
}

impl Module for Conv2d {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        let s = input.shape();
        let (n, h, w) = (s[0], s[2], s[3]);
        let (oh, ow) = self.spec.out_hw(h, w);
        let cols = im2col(input, &self.spec);
        let wt = self.weight.value.transpose2d();
        let mut rows = cols.matmul(&wt);
        // Broadcast bias over rows.
        let c = self.spec.out_channels;
        let b = self.bias.value.as_slice().to_vec();
        for row in rows.as_mut_slice().chunks_mut(c) {
            for (v, bv) in row.iter_mut().zip(&b) {
                *v += bv;
            }
        }
        self.cols = Some(cols);
        self.input_hw = (n, h, w);
        rows_to_nchw(&rows, n, c, oh, ow)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cols = self.cols.as_ref().expect("backward before forward");
        let (n, h, w) = self.input_hw;
        let g_rows = nchw_to_rows(grad_out); // [M, Cout]
                                             // dW = g^T @ cols, db = column sums of g.
        let gt = g_rows.transpose2d(); // [Cout, M]
        let dw = gt.matmul(cols); // [Cout, K]
        self.weight.grad.add_scaled(&dw, 1.0);
        let c = self.spec.out_channels;
        {
            let db = self.bias.grad.as_mut_slice();
            for row in g_rows.as_slice().chunks(c) {
                for (d, g) in db.iter_mut().zip(row) {
                    *d += g;
                }
            }
        }
        // dX = col2im(g @ W).
        let dcols = g_rows.matmul(&self.weight.value); // [M, K]
        col2im(&dcols, &self.spec, n, h, w)
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Parameter)) {
        visitor(&mut self.weight);
        visitor(&mut self.bias);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Direct (definition-level) convolution for cross-checking.
    fn naive_conv(input: &Tensor, weight: &Tensor, bias: &Tensor, spec: &Conv2dSpec) -> Tensor {
        let s = input.shape();
        let (n, c, h, w) = (s[0], s[1], s[2], s[3]);
        let (oh, ow) = spec.out_hw(h, w);
        let k = spec.kernel;
        let co = spec.out_channels;
        let mut out = Tensor::zeros(&[n, co, oh, ow]);
        for ni in 0..n {
            for o in 0..co {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = bias.as_slice()[o];
                        for ci in 0..c {
                            for ky in 0..k {
                                for kx in 0..k {
                                    let iy =
                                        (oy * spec.stride + ky) as isize - spec.padding as isize;
                                    let ix =
                                        (ox * spec.stride + kx) as isize - spec.padding as isize;
                                    if iy < 0 || ix < 0 || iy >= h as isize || ix >= w as isize {
                                        continue;
                                    }
                                    let wv = weight.at(&[o, ci * k * k + ky * k + kx]);
                                    acc += wv * input.at(&[ni, ci, iy as usize, ix as usize]);
                                }
                            }
                        }
                        out.set(&[ni, o, oy, ox], acc);
                    }
                }
            }
        }
        out
    }

    fn ramp(shape: &[usize]) -> Tensor {
        let n: usize = shape.iter().product();
        Tensor::from_vec(
            (0..n)
                .map(|i| ((i * 7919) % 23) as f32 / 23.0 - 0.4)
                .collect(),
            shape,
        )
    }

    #[test]
    fn forward_matches_naive_convolution() {
        for (stride, padding) in [(1, 1), (2, 1), (1, 0), (2, 0)] {
            let mut conv = Conv2d::new(3, 4, 3, stride, padding, 11);
            let x = ramp(&[2, 3, 7, 7]);
            let got = conv.forward(&x, true);
            let want = naive_conv(&x, &conv.weight.value, &conv.bias.value, conv.spec());
            assert_eq!(got.shape(), want.shape(), "s={stride} p={padding}");
            for (a, b) in got.as_slice().iter().zip(want.as_slice()) {
                assert!((a - b).abs() < 1e-4, "s={stride} p={padding}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn im2col_col2im_are_adjoint() {
        // <im2col(x), y> == <x, col2im(y)> for all x, y (adjointness).
        let spec = Conv2dSpec {
            in_channels: 2,
            out_channels: 1,
            kernel: 3,
            stride: 2,
            padding: 1,
        };
        let x = ramp(&[1, 2, 5, 5]);
        let cols = im2col(&x, &spec);
        let y = ramp(&[cols.shape()[0], cols.shape()[1]]);
        let lhs = cols.dot(&y);
        let back = col2im(&y, &spec, 1, 5, 5);
        let rhs = x.dot(&back);
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn rows_nchw_round_trip() {
        let t = ramp(&[2, 3, 4, 5]);
        let rows = nchw_to_rows(&t);
        let back = rows_to_nchw(&rows, 2, 3, 4, 5);
        assert_eq!(back, t);
    }

    #[test]
    fn gradients_pass_finite_difference_check() {
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, 5);
        let x = ramp(&[2, 2, 5, 5]);
        let report = crate::gradcheck::check_module(&mut conv, &x, 99, 1e-2);
        assert!(
            report.max_rel_err < 0.02,
            "gradcheck failed: {}",
            report.summary()
        );
    }

    #[test]
    fn strided_gradients_pass_finite_difference_check() {
        let mut conv = Conv2d::new(2, 2, 3, 2, 1, 6);
        let x = ramp(&[1, 2, 6, 6]);
        let report = crate::gradcheck::check_module(&mut conv, &x, 100, 1e-2);
        assert!(
            report.max_rel_err < 0.02,
            "gradcheck failed: {}",
            report.summary()
        );
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_output_panics() {
        let spec = Conv2dSpec {
            in_channels: 1,
            out_channels: 1,
            kernel: 5,
            stride: 1,
            padding: 0,
        };
        spec.out_hw(3, 3);
    }
}
