//! Layer composition.

use crate::module::{Module, Parameter};
use crate::tensor::Tensor;

/// A chain of modules executed in order.
///
/// # Example
///
/// ```
/// use appmult_nn::{layers::{Linear, Relu, Sequential}, Module, Tensor};
///
/// let mut net = Sequential::new()
///     .push(Linear::new(4, 8, 0))
///     .push(Relu::new())
///     .push(Linear::new(8, 2, 1));
/// assert_eq!(net.len(), 3);
/// let y = net.forward(&Tensor::zeros(&[5, 4]), true);
/// assert_eq!(y.shape(), &[5, 2]);
/// ```
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Module>>,
}

impl Sequential {
    /// Creates an empty chain.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a layer (builder style).
    pub fn push<M: Module + 'static>(mut self, layer: M) -> Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Appends a boxed layer in place.
    pub fn push_boxed(&mut self, layer: Box<dyn Module>) {
        self.layers.push(layer);
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the chain is empty.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Sequential({} layers)", self.layers.len())
    }
}

impl Module for Sequential {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, train);
        }
        x
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut g = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Parameter)) {
        for layer in &mut self.layers {
            layer.visit_params(visitor);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Linear, Relu};

    #[test]
    fn composes_forward_and_backward() {
        let mut net = Sequential::new()
            .push(Linear::new(3, 4, 1))
            .push(Relu::new())
            .push(Linear::new(4, 2, 2));
        let x = Tensor::from_vec(vec![0.5, -1.0, 2.0], &[1, 3]);
        let report = crate::gradcheck::check_module(&mut net, &x, 30, 1e-2);
        assert!(report.max_rel_err < 0.02, "{}", report.summary());
    }

    #[test]
    fn param_visitation_is_stable() {
        let mut net = Sequential::new()
            .push(Linear::new(2, 2, 1))
            .push(Linear::new(2, 2, 2));
        let mut shapes1 = vec![];
        net.visit_params(&mut |p| shapes1.push(p.value.shape().to_vec()));
        let mut shapes2 = vec![];
        net.visit_params(&mut |p| shapes2.push(p.value.shape().to_vec()));
        assert_eq!(shapes1, shapes2);
        assert_eq!(shapes1.len(), 4); // 2 weights + 2 biases
    }

    #[test]
    fn empty_sequential_is_identity() {
        let mut net = Sequential::new();
        assert!(net.is_empty());
        let x = Tensor::from_vec(vec![1., 2.], &[2]);
        assert_eq!(net.forward(&x, true), x);
        assert_eq!(net.backward(&x), x);
    }
}
