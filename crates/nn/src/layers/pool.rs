//! Spatial pooling layers.

use crate::module::{Module, Parameter};
use crate::tensor::Tensor;

/// Max pooling with a square window.
///
/// # Example
///
/// ```
/// use appmult_nn::{layers::MaxPool2d, Module, Tensor};
///
/// let mut pool = MaxPool2d::new(2, 2);
/// let y = pool.forward(&Tensor::zeros(&[1, 3, 8, 8]), true);
/// assert_eq!(y.shape(), &[1, 3, 4, 4]);
/// ```
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    kernel: usize,
    stride: usize,
    argmax: Vec<usize>,
    in_shape: Vec<usize>,
}

impl MaxPool2d {
    /// Creates a max-pool layer.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` or `stride` is zero.
    pub fn new(kernel: usize, stride: usize) -> Self {
        assert!(kernel > 0 && stride > 0);
        Self {
            kernel,
            stride,
            argmax: vec![],
            in_shape: vec![],
        }
    }
}

impl Module for MaxPool2d {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        let s = input.shape();
        assert_eq!(s.len(), 4, "expected NCHW input");
        let (n, c, h, w) = (s[0], s[1], s[2], s[3]);
        assert!(
            h >= self.kernel && w >= self.kernel,
            "input smaller than window"
        );
        let oh = (h - self.kernel) / self.stride + 1;
        let ow = (w - self.kernel) / self.stride + 1;
        let data = input.as_slice();
        let mut out = vec![0.0f32; n * c * oh * ow];
        let mut argmax = vec![0usize; n * c * oh * ow];
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * h * w;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0usize;
                        for ky in 0..self.kernel {
                            for kx in 0..self.kernel {
                                let idx =
                                    base + (oy * self.stride + ky) * w + ox * self.stride + kx;
                                if data[idx] > best {
                                    best = data[idx];
                                    best_idx = idx;
                                }
                            }
                        }
                        let o = ((ni * c + ci) * oh + oy) * ow + ox;
                        out[o] = best;
                        argmax[o] = best_idx;
                    }
                }
            }
        }
        self.argmax = argmax;
        self.in_shape = s.to_vec();
        Tensor::from_vec(out, &[n, c, oh, ow])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        assert!(!self.in_shape.is_empty(), "backward before forward");
        let mut dx = Tensor::zeros(&self.in_shape);
        let g = grad_out.as_slice();
        assert_eq!(g.len(), self.argmax.len(), "gradient shape mismatch");
        let d = dx.as_mut_slice();
        for (gi, &src) in g.iter().zip(&self.argmax) {
            d[src] += gi;
        }
        dx
    }

    fn visit_params(&mut self, _visitor: &mut dyn FnMut(&mut Parameter)) {}
}

/// Global average pooling: `[N, C, H, W] -> [N, C]`.
///
/// Used as the classifier head of the ResNet models.
#[derive(Debug, Clone, Default)]
pub struct GlobalAvgPool {
    in_shape: Vec<usize>,
}

impl GlobalAvgPool {
    /// Creates a global average pooling layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Module for GlobalAvgPool {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        let s = input.shape();
        assert_eq!(s.len(), 4, "expected NCHW input");
        let (n, c, h, w) = (s[0], s[1], s[2], s[3]);
        let data = input.as_slice();
        let mut out = vec![0.0f32; n * c];
        let inv = 1.0 / (h * w) as f32;
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * h * w;
                out[ni * c + ci] = data[base..base + h * w].iter().sum::<f32>() * inv;
            }
        }
        self.in_shape = s.to_vec();
        Tensor::from_vec(out, &[n, c])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        assert!(!self.in_shape.is_empty(), "backward before forward");
        let (n, c, h, w) = (
            self.in_shape[0],
            self.in_shape[1],
            self.in_shape[2],
            self.in_shape[3],
        );
        assert_eq!(grad_out.shape(), &[n, c], "gradient shape mismatch");
        let inv = 1.0 / (h * w) as f32;
        let g = grad_out.as_slice();
        let mut dx = vec![0.0f32; n * c * h * w];
        for ni in 0..n {
            for ci in 0..c {
                let gv = g[ni * c + ci] * inv;
                let base = (ni * c + ci) * h * w;
                for v in &mut dx[base..base + h * w] {
                    *v = gv;
                }
            }
        }
        Tensor::from_vec(dx, &self.in_shape)
    }

    fn visit_params(&mut self, _visitor: &mut dyn FnMut(&mut Parameter)) {}
}

/// Windowed average pooling (non-overlapping or strided square windows).
#[derive(Debug, Clone)]
pub struct AvgPool2d {
    kernel: usize,
    stride: usize,
    in_shape: Vec<usize>,
}

impl AvgPool2d {
    /// Creates an average-pool layer.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` or `stride` is zero.
    pub fn new(kernel: usize, stride: usize) -> Self {
        assert!(kernel > 0 && stride > 0);
        Self {
            kernel,
            stride,
            in_shape: vec![],
        }
    }
}

impl Module for AvgPool2d {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        let s = input.shape();
        assert_eq!(s.len(), 4, "expected NCHW input");
        let (n, c, h, w) = (s[0], s[1], s[2], s[3]);
        assert!(
            h >= self.kernel && w >= self.kernel,
            "input smaller than window"
        );
        let oh = (h - self.kernel) / self.stride + 1;
        let ow = (w - self.kernel) / self.stride + 1;
        let inv = 1.0 / (self.kernel * self.kernel) as f32;
        let data = input.as_slice();
        let mut out = vec![0.0f32; n * c * oh * ow];
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * h * w;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = 0.0f32;
                        for ky in 0..self.kernel {
                            for kx in 0..self.kernel {
                                acc += data
                                    [base + (oy * self.stride + ky) * w + ox * self.stride + kx];
                            }
                        }
                        out[((ni * c + ci) * oh + oy) * ow + ox] = acc * inv;
                    }
                }
            }
        }
        self.in_shape = s.to_vec();
        Tensor::from_vec(out, &[n, c, oh, ow])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        assert!(!self.in_shape.is_empty(), "backward before forward");
        let (n, c, h, w) = (
            self.in_shape[0],
            self.in_shape[1],
            self.in_shape[2],
            self.in_shape[3],
        );
        let oh = (h - self.kernel) / self.stride + 1;
        let ow = (w - self.kernel) / self.stride + 1;
        assert_eq!(grad_out.shape(), &[n, c, oh, ow], "gradient shape mismatch");
        let inv = 1.0 / (self.kernel * self.kernel) as f32;
        let g = grad_out.as_slice();
        let mut dx = vec![0.0f32; n * c * h * w];
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * h * w;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let gv = g[((ni * c + ci) * oh + oy) * ow + ox] * inv;
                        for ky in 0..self.kernel {
                            for kx in 0..self.kernel {
                                dx[base + (oy * self.stride + ky) * w + ox * self.stride + kx] +=
                                    gv;
                            }
                        }
                    }
                }
            }
        }
        Tensor::from_vec(dx, &self.in_shape)
    }

    fn visit_params(&mut self, _visitor: &mut dyn FnMut(&mut Parameter)) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avgpool_averages_windows() {
        let mut pool = AvgPool2d::new(2, 2);
        let x = Tensor::from_vec(vec![1., 3., 5., 7.], &[1, 1, 2, 2]);
        let y = pool.forward(&x, true);
        assert_eq!(y.as_slice(), &[4.0]);
    }

    #[test]
    fn avgpool_gradcheck() {
        let mut pool = AvgPool2d::new(2, 2);
        let x = Tensor::from_vec((0..32).map(|i| i as f32 * 0.13).collect(), &[1, 2, 4, 4]);
        let r = crate::gradcheck::check_module(&mut pool, &x, 4, 1e-3);
        assert!(r.max_rel_err < 0.01, "{}", r.summary());
    }

    #[test]
    fn avgpool_equals_global_when_window_covers_input() {
        let mut a = AvgPool2d::new(4, 4);
        let mut g = GlobalAvgPool::new();
        let x = Tensor::from_vec((0..32).map(|i| i as f32).collect(), &[1, 2, 4, 4]);
        let ya = a.forward(&x, true);
        let yg = g.forward(&x, true);
        assert_eq!(ya.as_slice(), yg.as_slice());
    }

    #[test]
    fn maxpool_picks_window_maxima() {
        let mut pool = MaxPool2d::new(2, 2);
        let x = Tensor::from_vec(
            vec![
                1., 2., 5., 6., //
                3., 4., 7., 8., //
                0., 0., 1., 0., //
                9., 0., 0., 2.,
            ],
            &[1, 1, 4, 4],
        );
        let y = pool.forward(&x, true);
        assert_eq!(y.as_slice(), &[4., 8., 9., 2.]);
    }

    #[test]
    fn maxpool_routes_gradient_to_argmax() {
        let mut pool = MaxPool2d::new(2, 2);
        let x = Tensor::from_vec(vec![1., 2., 3., 4.], &[1, 1, 2, 2]);
        pool.forward(&x, true);
        let dx = pool.backward(&Tensor::from_vec(vec![5.0], &[1, 1, 1, 1]));
        assert_eq!(dx.as_slice(), &[0., 0., 0., 5.]);
    }

    #[test]
    fn maxpool_gradcheck() {
        let mut pool = MaxPool2d::new(2, 2);
        // Distinct values avoid tie-breaking kinks.
        let x = Tensor::from_vec(
            (0..32)
                .map(|i| ((i * 37) % 32) as f32 * 0.37 - 3.0)
                .collect(),
            &[1, 2, 4, 4],
        );
        let report = crate::gradcheck::check_module(&mut pool, &x, 5, 1e-3);
        assert!(report.max_rel_err < 0.01, "{}", report.summary());
    }

    #[test]
    fn global_avg_pool_averages() {
        let mut pool = GlobalAvgPool::new();
        let x = Tensor::from_vec(vec![1., 3., 5., 7.], &[1, 1, 2, 2]);
        let y = pool.forward(&x, true);
        assert_eq!(y.as_slice(), &[4.0]);
        let dx = pool.backward(&Tensor::from_vec(vec![8.0], &[1, 1]));
        assert_eq!(dx.as_slice(), &[2., 2., 2., 2.]);
    }

    #[test]
    fn global_avg_pool_gradcheck() {
        let mut pool = GlobalAvgPool::new();
        let x = Tensor::from_vec((0..18).map(|i| i as f32 * 0.2).collect(), &[2, 3, 1, 3]);
        let report = crate::gradcheck::check_module(&mut pool, &x, 6, 1e-3);
        assert!(report.max_rel_err < 0.01, "{}", report.summary());
    }

    #[test]
    fn overlapping_windows_accumulate_gradient() {
        let mut pool = MaxPool2d::new(2, 1);
        // Max at a single cell shared by all windows.
        let x = Tensor::from_vec(vec![0., 0., 0., 0., 9., 0., 0., 0., 0.], &[1, 1, 3, 3]);
        pool.forward(&x, true);
        let dx = pool.backward(&Tensor::full(&[1, 1, 2, 2], 1.0));
        assert_eq!(dx.at(&[0, 0, 1, 1]), 4.0);
    }
}
