//! Residual (skip) connections.

use crate::layers::Sequential;
use crate::module::{Module, Parameter};
use crate::tensor::Tensor;

/// A residual block: `y = relu(main(x) + shortcut(x))`.
///
/// The shortcut defaults to identity; supply a projection (e.g. a strided
/// 1x1 convolution + batch norm) when the main path changes shape, as in
/// the ResNet downsampling blocks.
#[derive(Debug)]
pub struct Residual {
    main: Sequential,
    shortcut: Option<Sequential>,
    relu_mask: Vec<bool>,
    out_shape: Vec<usize>,
}

impl Residual {
    /// Creates a residual block with an identity shortcut.
    pub fn new(main: Sequential) -> Self {
        Self {
            main,
            shortcut: None,
            relu_mask: vec![],
            out_shape: vec![],
        }
    }

    /// Creates a residual block with a projection shortcut.
    pub fn with_projection(main: Sequential, shortcut: Sequential) -> Self {
        Self {
            main,
            shortcut: Some(shortcut),
            relu_mask: vec![],
            out_shape: vec![],
        }
    }
}

impl Module for Residual {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let main_out = self.main.forward(input, train);
        let skip = match &mut self.shortcut {
            Some(proj) => proj.forward(input, train),
            None => input.clone(),
        };
        assert_eq!(
            main_out.shape(),
            skip.shape(),
            "main and shortcut shapes must agree"
        );
        let sum = main_out.add(&skip);
        self.relu_mask = sum.as_slice().iter().map(|&v| v > 0.0).collect();
        self.out_shape = sum.shape().to_vec();
        sum.map(|v| v.max(0.0))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        assert_eq!(
            grad_out.shape(),
            &self.out_shape[..],
            "gradient shape mismatch"
        );
        let gated: Vec<f32> = grad_out
            .as_slice()
            .iter()
            .zip(&self.relu_mask)
            .map(|(&g, &m)| if m { g } else { 0.0 })
            .collect();
        let gated = Tensor::from_vec(gated, &self.out_shape);
        let d_main = self.main.backward(&gated);
        let d_skip = match &mut self.shortcut {
            Some(proj) => proj.backward(&gated),
            None => gated,
        };
        d_main.add(&d_skip)
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Parameter)) {
        self.main.visit_params(visitor);
        if let Some(proj) = &mut self.shortcut {
            proj.visit_params(visitor);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Conv2d, Linear, Relu};

    #[test]
    fn identity_shortcut_gradcheck() {
        // Shrink weights and lift biases so every pre-activation — the inner
        // ReLU's and the outer `relu(main(x) + x)` sum — stays well above
        // zero (finite differences are invalid at kinks).
        let condition = |layer: &mut Linear, bias: f32| {
            layer.visit_params(&mut |p| {
                if p.value.shape().len() == 1 {
                    p.value.map_inplace(|_| bias);
                } else {
                    p.value.map_inplace(|v| v * 0.1);
                }
            });
        };
        let mut hidden = Linear::new(4, 4, 1);
        condition(&mut hidden, 1.5);
        let mut out = Linear::new(4, 4, 2);
        condition(&mut out, 2.5);
        let main = Sequential::new().push(hidden).push(Relu::new()).push(out);
        let mut block = Residual::new(main);
        let x = Tensor::from_vec((0..8).map(|i| (i as f32) * 0.3 - 1.0).collect(), &[2, 4]);
        let report = crate::gradcheck::check_module(&mut block, &x, 55, 1e-2);
        assert!(report.max_rel_err < 0.03, "{}", report.summary());
    }

    #[test]
    fn projection_shortcut_gradcheck() {
        // Bias the pre-activation sums well above zero so the final ReLU has
        // no kink crossings (finite differences are invalid at kinks).
        let mut main_conv = Conv2d::new(2, 3, 3, 1, 1, 3);
        main_conv.visit_params(&mut |p| {
            if p.value.shape().len() == 1 {
                p.value.map_inplace(|_| 2.5);
            }
        });
        let main = Sequential::new().push(main_conv);
        let proj = Sequential::new().push(Conv2d::new(2, 3, 1, 1, 0, 4));
        let mut block = Residual::with_projection(main, proj);
        let x = Tensor::from_vec(
            (0..18).map(|i| ((i * 13) % 9) as f32 * 0.2 - 0.7).collect(),
            &[1, 2, 3, 3],
        );
        let report = crate::gradcheck::check_module(&mut block, &x, 56, 1e-3);
        assert!(report.max_rel_err < 0.03, "{}", report.summary());
    }

    #[test]
    fn identity_path_passes_signal() {
        // Zero main path (zero weights): block reduces to relu(x).
        let mut main = Sequential::new();
        let mut conv = Conv2d::new(1, 1, 1, 1, 0, 9);
        conv.visit_params(&mut |p| p.value.map_inplace(|_| 0.0));
        main.push_boxed(Box::new(conv));
        let mut block = Residual::new(main);
        let x = Tensor::from_vec(vec![-1.0, 2.0, 0.5, -0.2], &[1, 1, 2, 2]);
        let y = block.forward(&x, true);
        assert_eq!(y.as_slice(), &[0.0, 2.0, 0.5, 0.0]);
    }
}
