//! Neural-network layers with explicit forward/backward passes.

mod act;
mod conv;
mod dropout;
mod flatten;
mod linear;
mod norm;
mod pool;
mod residual;
mod sequential;

pub use act::{Relu, Sigmoid, Tanh};
pub use conv::{col2im, im2col, nchw_to_rows, rows_to_nchw, Conv2d, Conv2dSpec};
pub use dropout::Dropout;
pub use flatten::Flatten;
pub use linear::Linear;
pub use norm::BatchNorm2d;
pub use pool::{AvgPool2d, GlobalAvgPool, MaxPool2d};
pub use residual::Residual;
pub use sequential::Sequential;
