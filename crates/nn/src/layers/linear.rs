//! Fully connected layer.

use crate::init::uniform_fan_in;
use crate::module::{Module, Parameter};
use crate::tensor::Tensor;

/// A fully connected layer: `y = x W^T + b` over `[N, in]` batches.
///
/// # Example
///
/// ```
/// use appmult_nn::{layers::Linear, Module, Tensor};
///
/// let mut fc = Linear::new(4, 2, 1);
/// let y = fc.forward(&Tensor::zeros(&[3, 4]), true);
/// assert_eq!(y.shape(), &[3, 2]);
/// ```
#[derive(Debug, Clone)]
pub struct Linear {
    weight: Parameter, // [out, in]
    bias: Parameter,   // [out]
    input: Option<Tensor>,
}

impl Linear {
    /// Creates a layer with fan-in uniform initialization.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(in_features: usize, out_features: usize, seed: u64) -> Self {
        assert!(in_features > 0 && out_features > 0);
        Self {
            weight: Parameter::new(
                uniform_fan_in(&[out_features, in_features], in_features, seed),
                true,
            ),
            bias: Parameter::new(Tensor::zeros(&[out_features]), false),
            input: None,
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.weight.value.shape()[1]
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.weight.value.shape()[0]
    }
}

impl Module for Linear {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        assert_eq!(input.shape().len(), 2, "linear expects [N, in]");
        assert_eq!(input.shape()[1], self.in_features(), "feature mismatch");
        let wt = self.weight.value.transpose2d();
        let mut out = input.matmul(&wt);
        let of = self.out_features();
        let b = self.bias.value.as_slice().to_vec();
        for row in out.as_mut_slice().chunks_mut(of) {
            for (v, bv) in row.iter_mut().zip(&b) {
                *v += bv;
            }
        }
        self.input = Some(input.clone());
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self.input.as_ref().expect("backward before forward");
        let gt = grad_out.transpose2d(); // [out, N]
        let dw = gt.matmul(input); // [out, in]
        self.weight.grad.add_scaled(&dw, 1.0);
        let of = self.out_features();
        {
            let db = self.bias.grad.as_mut_slice();
            for row in grad_out.as_slice().chunks(of) {
                for (d, g) in db.iter_mut().zip(row) {
                    *d += g;
                }
            }
        }
        grad_out.matmul(&self.weight.value)
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Parameter)) {
        visitor(&mut self.weight);
        visitor(&mut self.bias);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_matches_manual_matmul() {
        let mut fc = Linear::new(3, 2, 4);
        let x = Tensor::from_vec(vec![1., 0., -1., 0.5, 2., 1.], &[2, 3]);
        let y = fc.forward(&x, true);
        for n in 0..2 {
            for o in 0..2 {
                let mut acc = fc.bias.value.as_slice()[o];
                for i in 0..3 {
                    acc += x.at(&[n, i]) * fc.weight.value.at(&[o, i]);
                }
                assert!((y.at(&[n, o]) - acc).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn gradients_pass_finite_difference_check() {
        let mut fc = Linear::new(5, 4, 8);
        let x = Tensor::from_vec((0..15).map(|i| (i as f32) / 7.0 - 1.0).collect(), &[3, 5]);
        let report = crate::gradcheck::check_module(&mut fc, &x, 17, 1e-2);
        assert!(report.max_rel_err < 0.02, "{}", report.summary());
    }

    #[test]
    fn num_params_counts_weights_and_bias() {
        let mut fc = Linear::new(10, 3, 1);
        assert_eq!(fc.num_params(), 33);
    }
}
