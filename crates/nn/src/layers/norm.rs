//! Batch normalization.

use crate::module::{Module, Parameter};
use crate::tensor::Tensor;

/// 2-D batch normalization over NCHW batches (per-channel statistics).
///
/// Training mode uses batch statistics and updates exponential running
/// averages; evaluation mode uses the running statistics.
///
/// # Example
///
/// ```
/// use appmult_nn::{layers::BatchNorm2d, Module, Tensor};
///
/// let mut bn = BatchNorm2d::new(3);
/// let y = bn.forward(&Tensor::zeros(&[2, 3, 4, 4]), true);
/// assert_eq!(y.shape(), &[2, 3, 4, 4]);
/// ```
#[derive(Debug, Clone)]
pub struct BatchNorm2d {
    gamma: Parameter,
    beta: Parameter,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    momentum: f32,
    eps: f32,
    // Backward caches.
    xhat: Option<Tensor>,
    inv_std: Vec<f32>,
    trained_forward: bool,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer for `channels` feature maps.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero.
    pub fn new(channels: usize) -> Self {
        assert!(channels > 0);
        Self {
            gamma: Parameter::new(Tensor::full(&[channels], 1.0), false),
            beta: Parameter::new(Tensor::zeros(&[channels]), false),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            momentum: 0.1,
            eps: 1e-5,
            xhat: None,
            inv_std: vec![],
            trained_forward: false,
        }
    }

    /// Number of normalized channels.
    pub fn channels(&self) -> usize {
        self.running_mean.len()
    }

    /// Running mean per channel (for inspection / serialization).
    pub fn running_mean(&self) -> &[f32] {
        &self.running_mean
    }

    /// Running variance per channel.
    pub fn running_var(&self) -> &[f32] {
        &self.running_var
    }
}

impl Module for BatchNorm2d {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let s = input.shape();
        assert_eq!(s.len(), 4, "expected NCHW input");
        let (n, c, h, w) = (s[0], s[1], s[2], s[3]);
        assert_eq!(c, self.channels(), "channel mismatch");
        let m = (n * h * w) as f32;
        let data = input.as_slice();

        let (mean, var): (Vec<f32>, Vec<f32>) = if train {
            let mut mean = vec![0.0f32; c];
            let mut var = vec![0.0f32; c];
            for ni in 0..n {
                for ci in 0..c {
                    let base = ((ni * c) + ci) * h * w;
                    let mut s1 = 0.0f32;
                    let mut s2 = 0.0f32;
                    for &v in &data[base..base + h * w] {
                        s1 += v;
                        s2 += v * v;
                    }
                    mean[ci] += s1;
                    var[ci] += s2;
                }
            }
            for ci in 0..c {
                mean[ci] /= m;
                var[ci] = (var[ci] / m - mean[ci] * mean[ci]).max(0.0);
                self.running_mean[ci] =
                    (1.0 - self.momentum) * self.running_mean[ci] + self.momentum * mean[ci];
                self.running_var[ci] =
                    (1.0 - self.momentum) * self.running_var[ci] + self.momentum * var[ci];
            }
            (mean, var)
        } else {
            (self.running_mean.clone(), self.running_var.clone())
        };

        self.inv_std = var.iter().map(|&v| 1.0 / (v + self.eps).sqrt()).collect();
        let mut xhat = vec![0.0f32; data.len()];
        let mut out = vec![0.0f32; data.len()];
        let g = self.gamma.value.as_slice();
        let b = self.beta.value.as_slice();
        for ni in 0..n {
            for ci in 0..c {
                let base = ((ni * c) + ci) * h * w;
                let mu = mean[ci];
                let is = self.inv_std[ci];
                for k in base..base + h * w {
                    let xh = (data[k] - mu) * is;
                    xhat[k] = xh;
                    out[k] = g[ci] * xh + b[ci];
                }
            }
        }
        self.xhat = Some(Tensor::from_vec(xhat, s));
        self.trained_forward = train;
        Tensor::from_vec(out, s)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let xhat = self.xhat.as_ref().expect("backward before forward");
        let s = xhat.shape().to_vec();
        let (n, c, h, w) = (s[0], s[1], s[2], s[3]);
        let m = (n * h * w) as f32;
        let g = grad_out.as_slice();
        let xh = xhat.as_slice();
        let gamma = self.gamma.value.as_slice();

        // Per-channel reductions.
        let mut sum_g = vec![0.0f32; c];
        let mut sum_gx = vec![0.0f32; c];
        for ni in 0..n {
            for ci in 0..c {
                let base = ((ni * c) + ci) * h * w;
                for k in base..base + h * w {
                    sum_g[ci] += g[k];
                    sum_gx[ci] += g[k] * xh[k];
                }
            }
        }
        self.beta
            .grad
            .as_mut_slice()
            .iter_mut()
            .zip(&sum_g)
            .for_each(|(d, &v)| *d += v);
        self.gamma
            .grad
            .as_mut_slice()
            .iter_mut()
            .zip(&sum_gx)
            .for_each(|(d, &v)| *d += v);

        let mut dx = vec![0.0f32; g.len()];
        if self.trained_forward {
            // Full batch-stat backward.
            for ni in 0..n {
                for (ci, &gm) in gamma.iter().enumerate() {
                    let base = ((ni * c) + ci) * h * w;
                    let k1 = gm * self.inv_std[ci] / m;
                    for k in base..base + h * w {
                        dx[k] = k1 * (m * g[k] - sum_g[ci] - xh[k] * sum_gx[ci]);
                    }
                }
            }
        } else {
            // Eval mode: statistics are constants.
            for ni in 0..n {
                for (ci, &gm) in gamma.iter().enumerate() {
                    let base = ((ni * c) + ci) * h * w;
                    let k1 = gm * self.inv_std[ci];
                    for k in base..base + h * w {
                        dx[k] = k1 * g[k];
                    }
                }
            }
        }
        Tensor::from_vec(dx, &s)
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Parameter)) {
        visitor(&mut self.gamma);
        visitor(&mut self.beta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(shape: &[usize]) -> Tensor {
        let n: usize = shape.iter().product();
        Tensor::from_vec(
            (0..n).map(|i| ((i * 31) % 17) as f32 / 5.0 - 1.5).collect(),
            shape,
        )
    }

    #[test]
    fn normalizes_batch_statistics() {
        let mut bn = BatchNorm2d::new(2);
        let x = ramp(&[4, 2, 3, 3]);
        let y = bn.forward(&x, true);
        // Per-channel mean ~0, var ~1.
        let s = y.shape();
        for ci in 0..2 {
            let mut vals = vec![];
            for ni in 0..s[0] {
                for hy in 0..s[2] {
                    for wx in 0..s[3] {
                        vals.push(y.at(&[ni, ci, hy, wx]));
                    }
                }
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 =
                vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn eval_uses_running_statistics() {
        let mut bn = BatchNorm2d::new(1);
        let x = ramp(&[8, 1, 4, 4]);
        for _ in 0..50 {
            bn.forward(&x, true);
        }
        let y_eval = bn.forward(&x, false);
        let y_train = bn.forward(&x, true);
        // After many updates the running stats converge to batch stats.
        for (a, b) in y_eval.as_slice().iter().zip(y_train.as_slice()) {
            assert!((a - b).abs() < 0.05, "{a} vs {b}");
        }
    }

    #[test]
    fn train_gradients_pass_finite_difference_check() {
        let mut bn = BatchNorm2d::new(3);
        // Scale/shift away from the trivial fixed point.
        bn.gamma.value = Tensor::from_vec(vec![1.2, 0.8, 1.5], &[3]);
        bn.beta.value = Tensor::from_vec(vec![0.1, -0.2, 0.3], &[3]);
        let x = ramp(&[2, 3, 3, 3]);
        let report = crate::gradcheck::check_module(&mut bn, &x, 21, 1e-2);
        assert!(report.max_rel_err < 0.05, "{}", report.summary());
    }

    #[test]
    fn zero_variance_channel_is_stable() {
        let mut bn = BatchNorm2d::new(1);
        let x = Tensor::full(&[2, 1, 2, 2], 3.0);
        let y = bn.forward(&x, true);
        assert!(y.as_slice().iter().all(|v| v.is_finite()));
    }
}
