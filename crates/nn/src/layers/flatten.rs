//! Shape adapter between convolutional and dense stages.

use crate::module::{Module, Parameter};
use crate::tensor::Tensor;

/// Flattens `[N, ...]` to `[N, prod(...)]`; the backward pass restores the
/// original shape.
///
/// # Example
///
/// ```
/// use appmult_nn::{layers::Flatten, Module, Tensor};
///
/// let mut f = Flatten::new();
/// let y = f.forward(&Tensor::zeros(&[2, 3, 4, 4]), true);
/// assert_eq!(y.shape(), &[2, 48]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Flatten {
    in_shape: Vec<usize>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Module for Flatten {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        let s = input.shape();
        assert!(!s.is_empty(), "flatten needs at least rank 1");
        self.in_shape = s.to_vec();
        let n = s[0];
        input.reshape(&[n, input.len() / n.max(1)])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        assert!(!self.in_shape.is_empty(), "backward before forward");
        grad_out.reshape(&self.in_shape)
    }

    fn visit_params(&mut self, _visitor: &mut dyn FnMut(&mut Parameter)) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_module;

    #[test]
    fn round_trip_preserves_data() {
        let mut f = Flatten::new();
        let x = Tensor::from_vec((0..24).map(|v| v as f32).collect(), &[2, 3, 2, 2]);
        let y = f.forward(&x, true);
        assert_eq!(y.shape(), &[2, 12]);
        let back = f.backward(&y);
        assert_eq!(back, x);
    }

    #[test]
    fn gradcheck_matches_finite_differences() {
        let mut f = Flatten::new();
        let x = Tensor::from_vec(
            (0..24).map(|v| v as f32 * 0.1 - 1.0).collect(),
            &[2, 3, 2, 2],
        );
        let r = check_module(&mut f, &x, 12, 1e-3);
        assert!(r.max_rel_err < 1e-3, "{}", r.summary());
        assert_eq!(r.checked, 24, "all input coordinates sampled");
    }
}
