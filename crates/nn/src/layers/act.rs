//! Activation functions.

use crate::module::{Module, Parameter};
use crate::tensor::Tensor;

/// Rectified linear unit: `y = max(0, x)`.
///
/// # Example
///
/// ```
/// use appmult_nn::{layers::Relu, Module, Tensor};
///
/// let mut relu = Relu::new();
/// let y = relu.forward(&Tensor::from_vec(vec![-1.0, 2.0], &[2]), true);
/// assert_eq!(y.as_slice(), &[0.0, 2.0]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Relu {
    mask: Vec<bool>,
    shape: Vec<usize>,
}

impl Relu {
    /// Creates a ReLU activation.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Module for Relu {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        self.mask = input.as_slice().iter().map(|&v| v > 0.0).collect();
        self.shape = input.shape().to_vec();
        input.map(|v| v.max(0.0))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        assert_eq!(grad_out.shape(), &self.shape[..], "gradient shape mismatch");
        let data = grad_out
            .as_slice()
            .iter()
            .zip(&self.mask)
            .map(|(&g, &m)| if m { g } else { 0.0 })
            .collect();
        Tensor::from_vec(data, &self.shape)
    }

    fn visit_params(&mut self, _visitor: &mut dyn FnMut(&mut Parameter)) {}
}

/// Logistic sigmoid: `y = 1 / (1 + e^-x)`.
#[derive(Debug, Clone, Default)]
pub struct Sigmoid {
    output: Option<Tensor>,
}

impl Sigmoid {
    /// Creates a sigmoid activation.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Module for Sigmoid {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        let out = input.map(|v| 1.0 / (1.0 + (-v).exp()));
        self.output = Some(out.clone());
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let y = self.output.as_ref().expect("backward before forward");
        assert_eq!(grad_out.shape(), y.shape(), "gradient shape mismatch");
        let data = grad_out
            .as_slice()
            .iter()
            .zip(y.as_slice())
            .map(|(&g, &s)| g * s * (1.0 - s))
            .collect();
        Tensor::from_vec(data, y.shape())
    }

    fn visit_params(&mut self, _visitor: &mut dyn FnMut(&mut Parameter)) {}
}

/// Hyperbolic tangent activation (used by the classic LeNet-5 formulation).
#[derive(Debug, Clone, Default)]
pub struct Tanh {
    output: Option<Tensor>,
}

impl Tanh {
    /// Creates a tanh activation.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Module for Tanh {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        let out = input.map(f32::tanh);
        self.output = Some(out.clone());
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let y = self.output.as_ref().expect("backward before forward");
        assert_eq!(grad_out.shape(), y.shape(), "gradient shape mismatch");
        let data = grad_out
            .as_slice()
            .iter()
            .zip(y.as_slice())
            .map(|(&g, &t)| g * (1.0 - t * t))
            .collect();
        Tensor::from_vec(data, y.shape())
    }

    fn visit_params(&mut self, _visitor: &mut dyn FnMut(&mut Parameter)) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_saturates_and_centres() {
        let mut s = Sigmoid::new();
        let y = s.forward(&Tensor::from_vec(vec![-20.0, 0.0, 20.0], &[3]), true);
        assert!(y.as_slice()[0] < 1e-6);
        assert!((y.as_slice()[1] - 0.5).abs() < 1e-6);
        assert!(y.as_slice()[2] > 1.0 - 1e-6);
    }

    #[test]
    fn sigmoid_gradcheck() {
        let mut s = Sigmoid::new();
        let x = Tensor::from_vec(vec![-1.5, -0.2, 0.4, 2.0], &[4]);
        let r = crate::gradcheck::check_module(&mut s, &x, 8, 1e-3);
        assert!(r.max_rel_err < 0.01, "{}", r.summary());
    }

    #[test]
    fn tanh_gradcheck() {
        let mut t = Tanh::new();
        let x = Tensor::from_vec(vec![-2.0, -0.3, 0.0, 0.9], &[4]);
        let r = crate::gradcheck::check_module(&mut t, &x, 9, 1e-3);
        assert!(r.max_rel_err < 0.01, "{}", r.summary());
    }

    #[test]
    fn tanh_is_odd() {
        let mut t = Tanh::new();
        let y = t.forward(&Tensor::from_vec(vec![1.3, -1.3], &[2]), true);
        assert!((y.as_slice()[0] + y.as_slice()[1]).abs() < 1e-6);
    }

    #[test]
    fn backward_masks_negative_inputs() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(vec![-2.0, 0.0, 3.0], &[3]);
        relu.forward(&x, true);
        let g = relu.backward(&Tensor::from_vec(vec![1.0, 1.0, 1.0], &[3]));
        // Note x == 0 gets zero gradient (subgradient convention).
        assert_eq!(g.as_slice(), &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn gradcheck_away_from_kink() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, -0.4, 0.7, 2.0], &[4]);
        let report = crate::gradcheck::check_module(&mut relu, &x, 3, 1e-3);
        assert!(report.max_rel_err < 0.01, "{}", report.summary());
    }

    #[test]
    fn has_no_params() {
        let mut relu = Relu::new();
        assert_eq!(relu.num_params(), 0);
    }
}
