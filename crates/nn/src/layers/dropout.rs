//! Inverted dropout.

use appmult_rng::Rng64;

use crate::module::{Module, Parameter};
use crate::tensor::Tensor;

/// Inverted dropout: during training each element is zeroed with
/// probability `p` and the survivors are scaled by `1 / (1 - p)`;
/// evaluation is the identity.
///
/// # Example
///
/// ```
/// use appmult_nn::{layers::Dropout, Module, Tensor};
///
/// let mut d = Dropout::new(0.5, 1);
/// let x = Tensor::full(&[128], 1.0);
/// let y_eval = d.forward(&x, false);
/// assert_eq!(y_eval, x); // identity at eval time
/// ```
#[derive(Debug, Clone)]
pub struct Dropout {
    p: f32,
    rng: Rng64,
    mask: Vec<f32>,
    shape: Vec<usize>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p < 1`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "p must be in [0, 1)");
        Self {
            p,
            rng: Rng64::seed_from_u64(seed),
            mask: vec![],
            shape: vec![],
        }
    }
}

impl Module for Dropout {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        self.shape = input.shape().to_vec();
        if !train || self.p == 0.0 {
            self.mask = vec![1.0; input.len()];
            return input.clone();
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        self.mask = (0..input.len())
            .map(|_| {
                if self.rng.next_f32() < keep {
                    scale
                } else {
                    0.0
                }
            })
            .collect();
        let data = input
            .as_slice()
            .iter()
            .zip(&self.mask)
            .map(|(&v, &m)| v * m)
            .collect();
        Tensor::from_vec(data, &self.shape)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        assert_eq!(grad_out.shape(), &self.shape[..], "gradient shape mismatch");
        let data = grad_out
            .as_slice()
            .iter()
            .zip(&self.mask)
            .map(|(&g, &m)| g * m)
            .collect();
        Tensor::from_vec(data, &self.shape)
    }

    fn visit_params(&mut self, _visitor: &mut dyn FnMut(&mut Parameter)) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_module;

    #[test]
    fn gradcheck_at_p_zero_matches_finite_differences() {
        // With p = 0 the layer is deterministic (identity), so the general
        // finite-difference check applies; p > 0 resamples the mask per
        // forward call and is checked via the mask-consistency test below.
        let mut d = Dropout::new(0.0, 11);
        let x = Tensor::from_vec((0..16).map(|v| 0.2 * v as f32 - 1.5).collect(), &[4, 4]);
        let r = check_module(&mut d, &x, 13, 1e-3);
        assert!(r.max_rel_err < 1e-3, "{}", r.summary());
    }

    #[test]
    fn eval_is_identity() {
        let mut d = Dropout::new(0.9, 0);
        let x = Tensor::from_vec(vec![1., 2., 3.], &[3]);
        assert_eq!(d.forward(&x, false), x);
    }

    #[test]
    fn train_preserves_expectation() {
        let mut d = Dropout::new(0.3, 7);
        let x = Tensor::full(&[20000], 1.0);
        let y = d.forward(&x, true);
        let mean = y.sum() / y.len() as f32;
        assert!((mean - 1.0).abs() < 0.03, "mean {mean}");
    }

    #[test]
    fn backward_applies_same_mask() {
        let mut d = Dropout::new(0.5, 3);
        let x = Tensor::full(&[64], 1.0);
        let y = d.forward(&x, true);
        let g = d.backward(&Tensor::full(&[64], 1.0));
        // Gradient is zero exactly where the forward output was zero.
        for (a, b) in y.as_slice().iter().zip(g.as_slice()) {
            assert_eq!(a == &0.0, b == &0.0);
        }
    }
}
