//! Weight initialization.

use appmult_rng::Rng64;

use crate::tensor::Tensor;

/// Kaiming (He) normal initialization: `N(0, sqrt(2 / fan_in))`.
///
/// Deterministic for a given seed; every model in this workspace is
/// reproducible end to end.
///
/// # Example
///
/// ```
/// let w = appmult_nn::init::kaiming_normal(&[16, 8, 3, 3], 8 * 3 * 3, 1);
/// assert_eq!(w.shape(), &[16, 8, 3, 3]);
/// ```
pub fn kaiming_normal(shape: &[usize], fan_in: usize, seed: u64) -> Tensor {
    assert!(fan_in > 0, "fan_in must be positive");
    let std = (2.0 / fan_in as f64).sqrt();
    let mut rng = Rng64::seed_from_u64(seed);
    let data = (0..shape.iter().product::<usize>())
        .map(|_| (rng.normal_f64() * std) as f32)
        .collect();
    Tensor::from_vec(data, shape)
}

/// Uniform initialization in `[-bound, bound]` with
/// `bound = 1 / sqrt(fan_in)` (the classic linear-layer default).
pub fn uniform_fan_in(shape: &[usize], fan_in: usize, seed: u64) -> Tensor {
    assert!(fan_in > 0, "fan_in must be positive");
    let bound = 1.0 / (fan_in as f64).sqrt();
    let mut rng = Rng64::seed_from_u64(seed);
    let data = (0..shape.iter().product::<usize>())
        .map(|_| rng.uniform_f64(-bound, bound) as f32)
        .collect();
    Tensor::from_vec(data, shape)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = kaiming_normal(&[4, 4], 4, 7);
        let b = kaiming_normal(&[4, 4], 4, 7);
        let c = kaiming_normal(&[4, 4], 4, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn kaiming_std_tracks_fan_in() {
        let w = kaiming_normal(&[10000], 50, 1);
        let var: f32 = w.as_slice().iter().map(|v| v * v).sum::<f32>() / w.len() as f32;
        let expect = 2.0 / 50.0;
        assert!((var - expect).abs() / expect < 0.1, "var {var} vs {expect}");
    }

    #[test]
    fn uniform_respects_bound() {
        let w = uniform_fan_in(&[1000], 16, 3);
        let bound = 0.25;
        assert!(w.as_slice().iter().all(|v| v.abs() <= bound));
        let (lo, hi) = w.min_max();
        assert!(lo < -0.1 && hi > 0.1, "should fill the range: {lo}..{hi}");
    }
}
