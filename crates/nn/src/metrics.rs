//! Classification metrics (top-1 / top-5 accuracy, running averages).

use crate::tensor::Tensor;

/// Fraction of rows whose true label is among the `k` highest logits.
///
/// The paper reports top-1 accuracy for the CIFAR-10 experiments (Table II,
/// Fig. 5) and top-5 for the CIFAR-100 curves (Fig. 6).
///
/// # Panics
///
/// Panics if `logits` is not `[N, C]`, labels mismatch, or `k == 0`.
///
/// # Example
///
/// ```
/// use appmult_nn::{metrics::top_k_accuracy, Tensor};
///
/// let logits = Tensor::from_vec(vec![0.1, 0.9, 0.8, 0.2], &[2, 2]);
/// assert_eq!(top_k_accuracy(&logits, &[1, 0], 1), 1.0);
/// assert_eq!(top_k_accuracy(&logits, &[0, 1], 1), 0.0);
/// assert_eq!(top_k_accuracy(&logits, &[0, 1], 2), 1.0);
/// ```
pub fn top_k_accuracy(logits: &Tensor, labels: &[usize], k: usize) -> f64 {
    let s = logits.shape();
    assert_eq!(s.len(), 2, "expected [N, C] logits");
    assert!(k >= 1, "k must be positive");
    let (n, c) = (s[0], s[1]);
    assert_eq!(labels.len(), n, "one label per row");
    let k = k.min(c);
    let data = logits.as_slice();
    let mut hits = 0usize;
    for (i, &label) in labels.iter().enumerate() {
        let row = &data[i * c..(i + 1) * c];
        let target = row[label];
        // Rank of the label = number of strictly larger entries (ties are
        // resolved in favour of the label, matching common implementations).
        let larger = row.iter().filter(|&&v| v > target).count();
        if larger < k {
            hits += 1;
        }
    }
    hits as f64 / n as f64
}

/// Incremental mean for streaming loss/accuracy over batches.
///
/// # Example
///
/// ```
/// let mut avg = appmult_nn::metrics::RunningMean::new();
/// avg.add(1.0, 2);
/// avg.add(0.0, 2);
/// assert_eq!(avg.mean(), 0.5);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunningMean {
    sum: f64,
    count: u64,
}

impl RunningMean {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a value observed over `weight` samples.
    pub fn add(&mut self, value: f64, weight: u64) {
        self.sum += value * weight as f64;
        self.count += weight;
    }

    /// Current mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Number of samples seen.
    pub fn count(&self) -> u64 {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top5_is_at_least_top1() {
        let logits = Tensor::from_vec((0..30).map(|i| ((i * 17) % 13) as f32).collect(), &[3, 10]);
        let labels = [4usize, 9, 0];
        let t1 = top_k_accuracy(&logits, &labels, 1);
        let t5 = top_k_accuracy(&logits, &labels, 5);
        assert!(t5 >= t1);
    }

    #[test]
    fn k_saturates_at_class_count() {
        let logits = Tensor::from_vec(vec![0.5, 0.1], &[1, 2]);
        assert_eq!(top_k_accuracy(&logits, &[1], 10), 1.0);
    }

    #[test]
    fn running_mean_weighted() {
        let mut m = RunningMean::new();
        m.add(2.0, 1);
        m.add(5.0, 3);
        assert!((m.mean() - 4.25).abs() < 1e-12);
        assert_eq!(m.count(), 4);
    }

    #[test]
    fn empty_mean_is_zero() {
        assert_eq!(RunningMean::new().mean(), 0.0);
    }
}
