//! Parameter checkpointing.
//!
//! Saves and restores the trainable parameters of any [`Module`] in a
//! small self-describing binary format (magic, parameter count, per-param
//! shape + little-endian f32 data). Architecture is *not* serialized: the
//! caller rebuilds the module and loads parameters into it, which is also
//! how the Fig. 1 flow moves weights from the float model into the
//! AppMult version across process runs.

use std::io::{self, Read, Write};

use crate::module::Module;
use crate::tensor::Tensor;

const MAGIC: &[u8; 4] = b"APMT";
const VERSION: u32 = 1;

/// Serializes every parameter of `module` (in visitation order) to `w`.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn save_params<W: Write>(module: &mut dyn Module, mut w: W) -> io::Result<()> {
    let mut params: Vec<Tensor> = vec![];
    module.visit_params(&mut |p| params.push(p.value.clone()));
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(params.len() as u32).to_le_bytes())?;
    for t in &params {
        w.write_all(&(t.shape().len() as u32).to_le_bytes())?;
        for &d in t.shape() {
            w.write_all(&(d as u32).to_le_bytes())?;
        }
        for &v in t.as_slice() {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Loads parameters previously written by [`save_params`] into `module`.
///
/// The module must have the same architecture (same parameter count and
/// shapes, in the same visitation order).
///
/// # Errors
///
/// Returns `InvalidData` on a bad magic/version, a parameter count or
/// shape mismatch, or truncated input.
pub fn load_params<R: Read>(module: &mut dyn Module, mut r: R) -> io::Result<()> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
    }
    let version = read_u32(&mut r)?;
    if version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported checkpoint version {version}"),
        ));
    }
    let count = read_u32(&mut r)? as usize;
    let mut tensors = Vec::with_capacity(count);
    for _ in 0..count {
        let rank = read_u32(&mut r)? as usize;
        if rank > 8 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "absurd rank"));
        }
        let mut shape = Vec::with_capacity(rank);
        for _ in 0..rank {
            shape.push(read_u32(&mut r)? as usize);
        }
        let len: usize = shape.iter().product();
        let mut data = vec![0f32; len];
        for v in &mut data {
            let mut b = [0u8; 4];
            r.read_exact(&mut b)?;
            *v = f32::from_le_bytes(b);
        }
        tensors.push(Tensor::from_vec(data, &shape));
    }

    // Validate against the module before mutating anything.
    let mut shapes = vec![];
    module.visit_params(&mut |p| shapes.push(p.value.shape().to_vec()));
    if shapes.len() != tensors.len() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "checkpoint has {} parameters, module has {}",
                tensors.len(),
                shapes.len()
            ),
        ));
    }
    for (i, (s, t)) in shapes.iter().zip(&tensors).enumerate() {
        if s != t.shape() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("parameter {i}: checkpoint {:?} vs module {s:?}", t.shape()),
            ));
        }
    }
    let mut it = tensors.into_iter();
    module.visit_params(&mut |p| {
        p.value = it.next().expect("validated count");
    });
    Ok(())
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Conv2d, Flatten, Linear, Relu, Sequential};
    use crate::Tensor;

    fn model(seed: u64) -> Sequential {
        Sequential::new()
            .push(Conv2d::new(2, 3, 3, 1, 1, seed))
            .push(Relu::new())
            .push(Flatten::new())
            .push(Linear::new(3 * 4 * 4, 4, seed + 1))
    }

    #[test]
    fn round_trip_restores_parameters_and_outputs() {
        let mut src = model(7);
        let mut buf = Vec::new();
        save_params(&mut src, &mut buf).expect("serialize");

        let mut dst = model(999); // different init
        load_params(&mut dst, buf.as_slice()).expect("deserialize");

        let mut va = vec![];
        src.visit_params(&mut |p| va.push(p.value.clone()));
        let mut vb = vec![];
        dst.visit_params(&mut |p| vb.push(p.value.clone()));
        assert_eq!(va, vb);

        // And the restored model computes identically.
        let x = Tensor::from_vec((0..32).map(|i| i as f32 / 16.0).collect(), &[1, 2, 4, 4]);
        assert_eq!(src.forward(&x, false), dst.forward(&x, false));
    }

    #[test]
    fn rejects_bad_magic() {
        let mut m = model(1);
        let err = load_params(&mut m, &b"NOPE"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_architecture_mismatch() {
        let mut src = model(1);
        let mut buf = Vec::new();
        save_params(&mut src, &mut buf).expect("serialize");
        let mut other = Sequential::new().push(Linear::new(3, 3, 0));
        let err = load_params(&mut other, buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_truncated_input() {
        let mut src = model(1);
        let mut buf = Vec::new();
        save_params(&mut src, &mut buf).expect("serialize");
        buf.truncate(buf.len() / 2);
        let mut dst = model(2);
        assert!(load_params(&mut dst, buf.as_slice()).is_err());
    }

    #[test]
    fn mismatch_does_not_corrupt_the_module() {
        let mut src = Sequential::new().push(Linear::new(2, 2, 5));
        let mut buf = Vec::new();
        save_params(&mut src, &mut buf).expect("serialize");
        let mut dst = model(3);
        let mut before = vec![];
        dst.visit_params(&mut |p| before.push(p.value.clone()));
        let _ = load_params(&mut dst, buf.as_slice()).unwrap_err();
        let mut after = vec![];
        dst.visit_params(&mut |p| after.push(p.value.clone()));
        assert_eq!(before, after, "failed load must leave params untouched");
    }
}
