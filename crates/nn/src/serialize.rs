//! Parameter checkpointing.
//!
//! Saves and restores the trainable parameters of any [`Module`] in a
//! small self-describing binary format (magic, parameter count, per-param
//! shape + little-endian f32 data). Architecture is *not* serialized: the
//! caller rebuilds the module and loads parameters into it, which is also
//! how the Fig. 1 flow moves weights from the float model into the
//! AppMult version across process runs.

use std::io::{self, Read, Write};

use crate::module::Module;
use crate::tensor::Tensor;

const MAGIC: &[u8; 4] = b"APMT";
const VERSION: u32 = 1;

/// Serializes every parameter of `module` (in visitation order) to `w`.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn save_params<W: Write>(module: &mut dyn Module, mut w: W) -> io::Result<()> {
    let mut params: Vec<Tensor> = vec![];
    module.visit_params(&mut |p| params.push(p.value.clone()));
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(params.len() as u32).to_le_bytes())?;
    for t in &params {
        w.write_all(&(t.shape().len() as u32).to_le_bytes())?;
        for &d in t.shape() {
            w.write_all(&(d as u32).to_le_bytes())?;
        }
        for &v in t.as_slice() {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Loads parameters previously written by [`save_params`] into `module`.
///
/// The module must have the same architecture (same parameter count and
/// shapes, in the same visitation order).
///
/// # Errors
///
/// Returns `InvalidData` on a bad magic/version, a parameter count or
/// shape mismatch, or truncated input.
pub fn load_params<R: Read>(module: &mut dyn Module, mut r: R) -> io::Result<()> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
    }
    let version = read_u32(&mut r)?;
    if version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported checkpoint version {version}"),
        ));
    }
    let count = read_u32(&mut r)? as usize;

    // Validate against the module's own shapes as we parse, BEFORE any
    // size-dependent allocation: a corrupted count or shape field must
    // produce `InvalidData`, not an attempt to allocate gigabytes from
    // untrusted input. Nothing is mutated until everything checks out.
    let mut shapes = vec![];
    module.visit_params(&mut |p| shapes.push(p.value.shape().to_vec()));
    if shapes.len() != count {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "checkpoint has {count} parameters, module has {}",
                shapes.len()
            ),
        ));
    }
    let mut tensors = Vec::with_capacity(count);
    for (i, expected) in shapes.iter().enumerate() {
        let rank = read_u32(&mut r)? as usize;
        if rank > 8 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "absurd rank"));
        }
        let mut shape = Vec::with_capacity(rank);
        for _ in 0..rank {
            shape.push(read_u32(&mut r)? as usize);
        }
        if &shape != expected {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("parameter {i}: checkpoint {shape:?} vs module {expected:?}"),
            ));
        }
        let len: usize = shape.iter().product();
        let mut data = vec![0f32; len];
        for v in &mut data {
            let mut b = [0u8; 4];
            r.read_exact(&mut b)?;
            *v = f32::from_le_bytes(b);
        }
        tensors.push(Tensor::from_vec(data, &shape));
    }
    let mut it = tensors.into_iter();
    module.visit_params(&mut |p| {
        p.value = it.next().expect("validated count");
    });
    Ok(())
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Conv2d, Flatten, Linear, Relu, Sequential};
    use crate::Tensor;

    fn model(seed: u64) -> Sequential {
        Sequential::new()
            .push(Conv2d::new(2, 3, 3, 1, 1, seed))
            .push(Relu::new())
            .push(Flatten::new())
            .push(Linear::new(3 * 4 * 4, 4, seed + 1))
    }

    #[test]
    fn round_trip_restores_parameters_and_outputs() {
        let mut src = model(7);
        let mut buf = Vec::new();
        save_params(&mut src, &mut buf).expect("serialize");

        let mut dst = model(999); // different init
        load_params(&mut dst, buf.as_slice()).expect("deserialize");

        let mut va = vec![];
        src.visit_params(&mut |p| va.push(p.value.clone()));
        let mut vb = vec![];
        dst.visit_params(&mut |p| vb.push(p.value.clone()));
        assert_eq!(va, vb);

        // And the restored model computes identically.
        let x = Tensor::from_vec((0..32).map(|i| i as f32 / 16.0).collect(), &[1, 2, 4, 4]);
        assert_eq!(src.forward(&x, false), dst.forward(&x, false));
    }

    #[test]
    fn save_load_save_is_byte_identical() {
        // The format must be canonical: re-serializing a freshly loaded
        // model reproduces the original byte stream exactly, so checkpoint
        // files can be compared/deduplicated by hash.
        let mut src = model(7);
        let mut first = Vec::new();
        save_params(&mut src, &mut first).expect("serialize");

        let mut dst = model(999); // different init
        load_params(&mut dst, first.as_slice()).expect("deserialize");
        let mut second = Vec::new();
        save_params(&mut dst, &mut second).expect("re-serialize");

        assert_eq!(first, second, "round trip must be byte-identical");
    }

    #[test]
    fn rejects_bad_magic() {
        let mut m = model(1);
        let err = load_params(&mut m, &b"NOPE"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_architecture_mismatch() {
        let mut src = model(1);
        let mut buf = Vec::new();
        save_params(&mut src, &mut buf).expect("serialize");
        let mut other = Sequential::new().push(Linear::new(3, 3, 0));
        let err = load_params(&mut other, buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_truncated_input() {
        let mut src = model(1);
        let mut buf = Vec::new();
        save_params(&mut src, &mut buf).expect("serialize");
        buf.truncate(buf.len() / 2);
        let mut dst = model(2);
        assert!(load_params(&mut dst, buf.as_slice()).is_err());
    }

    /// Randomized round-trip property: for a spread of architectures and
    /// random parameter values (including negatives, zeros, and extremes),
    /// save -> load into a differently-initialized clone restores every
    /// parameter bit-for-bit.
    #[test]
    fn random_round_trip_property() {
        let mut rng = appmult_rng::Rng64::seed_from_u64(0xF1_5E_ED);
        for case in 0..20u64 {
            let mut src = model(case);
            src.visit_params(&mut |p| {
                for v in p.value.as_mut_slice() {
                    *v = match rng.index(10) {
                        0 => 0.0,
                        1 => f32::MAX,
                        2 => f32::MIN_POSITIVE,
                        _ => rng.normal_f32() * 100.0,
                    };
                }
            });
            let mut buf = Vec::new();
            save_params(&mut src, &mut buf).expect("serialize");

            let mut dst = model(case + 1000);
            load_params(&mut dst, buf.as_slice()).expect("deserialize");
            let mut va = vec![];
            src.visit_params(&mut |p| va.push(p.value.clone()));
            let mut vb = vec![];
            dst.visit_params(&mut |p| vb.push(p.value.clone()));
            assert_eq!(va, vb, "case {case}");
        }
    }

    #[test]
    fn rejects_corrupted_header() {
        let mut src = model(1);
        let mut buf = Vec::new();
        save_params(&mut src, &mut buf).expect("serialize");
        // Corrupt each header byte in turn: magic (0..4) must be rejected
        // outright; a corrupted parameter count (8..12) must either error
        // or — never — load successfully with wrong data.
        for pos in 0..4 {
            let mut bad = buf.clone();
            bad[pos] ^= 0xFF;
            let mut dst = model(2);
            let err = load_params(&mut dst, bad.as_slice()).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "byte {pos}");
        }
        for pos in 8..12 {
            let mut bad = buf.clone();
            bad[pos] ^= 0xFF;
            let mut dst = model(2);
            assert!(
                load_params(&mut dst, bad.as_slice()).is_err(),
                "corrupted count byte {pos} must not load"
            );
        }
    }

    #[test]
    fn rejects_unsupported_version() {
        let mut src = model(1);
        let mut buf = Vec::new();
        save_params(&mut src, &mut buf).expect("serialize");
        buf[4..8].copy_from_slice(&(VERSION + 1).to_le_bytes());
        let mut dst = model(2);
        let err = load_params(&mut dst, buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(
            err.to_string().contains("version"),
            "error should name the version: {err}"
        );
    }

    #[test]
    fn mismatch_does_not_corrupt_the_module() {
        let mut src = Sequential::new().push(Linear::new(2, 2, 5));
        let mut buf = Vec::new();
        save_params(&mut src, &mut buf).expect("serialize");
        let mut dst = model(3);
        let mut before = vec![];
        dst.visit_params(&mut |p| before.push(p.value.clone()));
        let _ = load_params(&mut dst, buf.as_slice()).unwrap_err();
        let mut after = vec![];
        dst.visit_params(&mut |p| after.push(p.value.clone()));
        assert_eq!(before, after, "failed load must leave params untouched");
    }
}
