//! A minimal CPU deep-learning framework with explicit backward passes.
//!
//! The paper retrains CNNs whose multiplications go through approximate
//! multiplier LUTs with custom gradients — something mainstream autograd
//! engines make awkward. This crate therefore implements the training stack
//! from scratch with *explicit* `forward`/`backward` methods per layer, so
//! the AppMult layers in `appmult-retrain` can plug their LUT-based
//! gradients (Eq. 9 of the paper) straight into the chain rule.
//!
//! Provided: [`Tensor`] (f32, NCHW), the [`Module`] trait, convolution /
//! linear / batch-norm / pooling / activation layers, softmax cross-entropy
//! with top-k metrics, SGD and Adam with the paper's step learning-rate
//! schedule, and finite-difference gradient checking used throughout the
//! test suite.
//!
//! # Example: train a tiny MLP on XOR
//!
//! ```
//! use appmult_nn::{
//!     layers::{Linear, Relu, Sequential},
//!     loss::softmax_cross_entropy,
//!     optim::{Optimizer, Sgd},
//!     Module, Tensor,
//! };
//!
//! let mut net = Sequential::new()
//!     .push(Linear::new(2, 8, 42))
//!     .push(Relu::new())
//!     .push(Linear::new(8, 2, 43));
//! let x = Tensor::from_vec(vec![0., 0., 0., 1., 1., 0., 1., 1.], &[4, 2]);
//! let labels = [0usize, 1, 1, 0];
//! let mut sgd = Sgd::new(0.5, 0.9);
//! let mut last = f32::MAX;
//! for _ in 0..200 {
//!     let logits = net.forward(&x, true);
//!     let (loss, grad) = softmax_cross_entropy(&logits, &labels);
//!     net.backward(&grad);
//!     sgd.step(&mut net);
//!     net.zero_grad();
//!     last = loss;
//! }
//! assert!(last < 0.1, "failed to fit XOR: loss {last}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gradcheck;
pub mod init;
pub mod layers;
pub mod loss;
pub mod metrics;
mod module;
pub mod optim;
pub mod serialize;
mod tensor;

pub use module::{Module, Parameter};
pub use tensor::Tensor;
