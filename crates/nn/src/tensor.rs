//! Dense f32 tensors in row-major (C) order.

use std::fmt;

/// A dense, contiguous, row-major f32 tensor.
///
/// Layout convention for images is NCHW. The type is deliberately small:
/// layers do their own indexing arithmetic, which keeps hot loops free of
/// abstraction overhead.
///
/// # Example
///
/// ```
/// use appmult_nn::Tensor;
///
/// let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
/// assert_eq!(t.shape(), &[2, 3]);
/// assert_eq!(t.at(&[1, 2]), 6.0);
/// assert_eq!(t.matmul(&t.transpose2d()).shape(), &[2, 2]);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Vec<usize>,
}

impl Tensor {
    /// Creates a zero-filled tensor.
    pub fn zeros(shape: &[usize]) -> Self {
        Self {
            data: vec![0.0; shape.iter().product()],
            shape: shape.to_vec(),
        }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        Self {
            data: vec![value; shape.iter().product()],
            shape: shape.to_vec(),
        }
    }

    /// Wraps a data vector with a shape.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the shape's element count.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        assert_eq!(
            data.len(),
            shape.iter().product::<usize>(),
            "data length {} does not match shape {:?}",
            data.len(),
            shape
        );
        Self {
            data,
            shape: shape.to_vec(),
        }
    }

    /// The shape (dimension sizes).
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the raw data (row-major).
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the raw data (row-major).
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning the raw data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any coordinate is out of range.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.offset(index)]
    }

    /// Sets the element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any coordinate is out of range.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let o = self.offset(index);
        self.data[o] = value;
    }

    fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(index.len(), self.shape.len(), "index rank mismatch");
        let mut off = 0;
        for (d, (&i, &s)) in index.iter().zip(&self.shape).enumerate() {
            assert!(i < s, "index {i} out of range for dim {d} (size {s})");
            off = off * s + i;
        }
        off
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Tensor {
        assert_eq!(
            self.len(),
            shape.iter().product::<usize>(),
            "cannot reshape {:?} to {:?}",
            self.shape,
            shape
        );
        Tensor {
            data: self.data.clone(),
            shape: shape.to_vec(),
        }
    }

    /// Element-wise map into a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            data: self.data.iter().map(|&v| f(v)).collect(),
            shape: self.shape.clone(),
        }
    }

    /// In-place element-wise update.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Element-wise addition.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape, other.shape, "shape mismatch in add");
        Tensor {
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a + b)
                .collect(),
            shape: self.shape.clone(),
        }
    }

    /// In-place `self += scale * other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_scaled(&mut self, other: &Tensor, scale: f32) {
        assert_eq!(self.shape, other.shape, "shape mismatch in add_scaled");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += scale * b;
        }
    }

    /// Element-wise multiplication by a scalar.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|v| v * s)
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Dot product of the flattened tensors.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn dot(&self, other: &Tensor) -> f32 {
        assert_eq!(self.len(), other.len(), "length mismatch in dot");
        self.data.iter().zip(&other.data).map(|(a, b)| a * b).sum()
    }

    /// 2-D matrix multiplication: `[m, k] x [k, n] -> [m, n]`.
    ///
    /// # Panics
    ///
    /// Panics unless both tensors are rank 2 with matching inner dimension.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2, "matmul lhs must be rank 2");
        assert_eq!(other.shape.len(), 2, "matmul rhs must be rank 2");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "inner dimensions {k} and {k2} differ");
        let mut out = vec![0.0f32; m * n];
        // i-k-j loop order keeps the inner loop streaming over `other` rows.
        for i in 0..m {
            let a_row = &self.data[i * k..(i + 1) * k];
            let o_row = &mut out[i * n..(i + 1) * n];
            for (kk, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.data[kk * n..(kk + 1) * n];
                for (o, &b) in o_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        Tensor {
            data: out,
            shape: vec![m, n],
        }
    }

    /// Transpose of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics unless the tensor is rank 2.
    pub fn transpose2d(&self) -> Tensor {
        assert_eq!(self.shape.len(), 2, "transpose2d needs rank 2");
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor {
            data: out,
            shape: vec![n, m],
        }
    }

    /// Minimum and maximum element; `(0.0, 0.0)` for empty tensors.
    pub fn min_max(&self) -> (f32, f32) {
        if self.data.is_empty() {
            return (0.0, 0.0);
        }
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        for &v in &self.data {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        (lo, hi)
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?} ({} elems)", self.shape, self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let mut t = Tensor::zeros(&[2, 3, 4]);
        assert_eq!(t.len(), 24);
        t.set(&[1, 2, 3], 7.5);
        assert_eq!(t.at(&[1, 2, 3]), 7.5);
        assert_eq!(t.as_slice()[23], 7.5);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(vec![1., 2., 3., 4.], &[2, 2]);
        let id = Tensor::from_vec(vec![1., 0., 0., 1.], &[2, 2]);
        assert_eq!(a.matmul(&id), a);
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(vec![1., 2., 3., 4., 5., 6.], &[2, 3]);
        let b = Tensor::from_vec(vec![7., 8., 9., 10., 11., 12.], &[3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn transpose_round_trip() {
        let a = Tensor::from_vec((0..12).map(|v| v as f32).collect(), &[3, 4]);
        assert_eq!(a.transpose2d().transpose2d(), a);
    }

    #[test]
    fn reshape_preserves_data() {
        let a = Tensor::from_vec(vec![1., 2., 3., 4.], &[4]);
        let b = a.reshape(&[2, 2]);
        assert_eq!(b.at(&[1, 0]), 3.0);
    }

    #[test]
    fn arithmetic_helpers() {
        let a = Tensor::from_vec(vec![1., 2.], &[2]);
        let b = Tensor::from_vec(vec![3., 5.], &[2]);
        assert_eq!(a.add(&b).as_slice(), &[4., 7.]);
        assert_eq!(a.scale(2.0).as_slice(), &[2., 4.]);
        assert_eq!(a.dot(&b), 13.0);
        assert_eq!(b.sum(), 8.0);
        let mut c = a.clone();
        c.add_scaled(&b, 0.5);
        assert_eq!(c.as_slice(), &[2.5, 4.5]);
    }

    #[test]
    fn min_max_scans_all() {
        let a = Tensor::from_vec(vec![3., -1., 7., 0.], &[4]);
        assert_eq!(a.min_max(), (-1.0, 7.0));
        assert_eq!(Tensor::zeros(&[0]).min_max(), (0.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_validates() {
        Tensor::from_vec(vec![1., 2., 3.], &[2, 2]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn indexing_validates() {
        Tensor::zeros(&[2, 2]).at(&[2, 0]);
    }
}
