//! Finite-difference gradient checking.
//!
//! The whole point of this workspace is custom backward passes, so every
//! layer is validated against central finite differences. The check drives
//! the module with a fixed random linear functional `L(out) = <c, out>`
//! whose analytic gradient w.r.t. the output is simply `c`.
//!
//! Only applicable to *deterministic* modules (no dropout): the module is
//! re-run many times and must compute the same function each time.

use appmult_rng::Rng64;

use crate::module::Module;
use crate::tensor::Tensor;

/// Outcome of a gradient check.
#[derive(Debug, Clone, PartialEq)]
pub struct GradCheckReport {
    /// Worst relative error across all checked coordinates.
    pub max_rel_err: f64,
    /// Number of coordinates compared.
    pub checked: usize,
    /// Description of the worst coordinate.
    pub worst: String,
}

impl GradCheckReport {
    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "max rel err {:.4} over {} coords (worst: {})",
            self.max_rel_err, self.checked, self.worst
        )
    }
}

/// Relative error with an absolute floor so tiny gradients compare sanely.
fn rel_err(a: f64, b: f64) -> f64 {
    let denom = a.abs().max(b.abs()).max(0.1);
    (a - b).abs() / denom
}

/// Checks analytic input and parameter gradients of `module` against
/// central finite differences at `input`.
///
/// `seed` fixes the random output functional; `eps` is the perturbation
/// step. Up to 64 coordinates of the input and of each parameter are
/// sampled (all of them when smaller).
///
/// # Panics
///
/// Panics if the module's forward pass panics.
pub fn check_module(
    module: &mut dyn Module,
    input: &Tensor,
    seed: u64,
    eps: f32,
) -> GradCheckReport {
    let mut rng = Rng64::seed_from_u64(seed);
    let out0 = module.forward(input, true);
    let coeffs = Tensor::from_vec(
        (0..out0.len())
            .map(|_| rng.uniform_f32(-1.0, 1.0))
            .collect(),
        out0.shape(),
    );

    // Analytic pass.
    module.zero_grad();
    let grad_in = module.backward(&coeffs);
    assert_eq!(grad_in.shape(), input.shape(), "input gradient shape");
    let mut param_grads: Vec<Tensor> = vec![];
    module.visit_params(&mut |p| param_grads.push(p.grad.clone()));

    let loss = |module: &mut dyn Module, x: &Tensor| -> f64 {
        let out = module.forward(x, true);
        f64::from(out.dot(&coeffs))
    };

    let mut report = GradCheckReport {
        max_rel_err: 0.0,
        checked: 0,
        worst: String::from("none"),
    };
    let note = |report: &mut GradCheckReport, analytic: f64, fd: f64, what: String| {
        let e = rel_err(analytic, fd);
        report.checked += 1;
        if e > report.max_rel_err {
            report.max_rel_err = e;
            report.worst = format!("{what}: analytic {analytic:.5} vs fd {fd:.5}");
        }
    };

    // Input coordinates.
    let mut x = input.clone();
    for i in sample_indices(input.len(), 64, &mut rng) {
        let orig = x.as_slice()[i];
        x.as_mut_slice()[i] = orig + eps;
        let lp = loss(module, &x);
        x.as_mut_slice()[i] = orig - eps;
        let lm = loss(module, &x);
        x.as_mut_slice()[i] = orig;
        let fd = (lp - lm) / (2.0 * f64::from(eps));
        note(
            &mut report,
            f64::from(grad_in.as_slice()[i]),
            fd,
            format!("input[{i}]"),
        );
    }

    // Parameter coordinates: perturb via visit_params.
    for (pi, pgrad) in param_grads.iter().enumerate() {
        let plen = pgrad.len();
        for k in sample_indices(plen, 64, &mut rng) {
            let mut orig = 0.0f32;
            perturb(module, pi, k, eps, &mut orig);
            let lp = loss(module, input);
            restore_then_perturb(module, pi, k, orig, -eps);
            let lm = loss(module, input);
            restore(module, pi, k, orig);
            let fd = (lp - lm) / (2.0 * f64::from(eps));
            note(
                &mut report,
                f64::from(pgrad.as_slice()[k]),
                fd,
                format!("param[{pi}][{k}]"),
            );
        }
    }
    report
}

fn sample_indices(len: usize, max: usize, rng: &mut Rng64) -> Vec<usize> {
    if len <= max {
        (0..len).collect()
    } else {
        (0..max).map(|_| rng.index(len)).collect()
    }
}

fn perturb(module: &mut dyn Module, target: usize, k: usize, eps: f32, orig: &mut f32) {
    let mut idx = 0usize;
    module.visit_params(&mut |p| {
        if idx == target {
            *orig = p.value.as_slice()[k];
            p.value.as_mut_slice()[k] = *orig + eps;
        }
        idx += 1;
    });
}

fn restore_then_perturb(module: &mut dyn Module, target: usize, k: usize, orig: f32, eps: f32) {
    let mut idx = 0usize;
    module.visit_params(&mut |p| {
        if idx == target {
            p.value.as_mut_slice()[k] = orig + eps;
        }
        idx += 1;
    });
}

fn restore(module: &mut dyn Module, target: usize, k: usize, orig: f32) {
    let mut idx = 0usize;
    module.visit_params(&mut |p| {
        if idx == target {
            p.value.as_mut_slice()[k] = orig;
        }
        idx += 1;
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Linear;
    use crate::module::Parameter;

    #[test]
    fn passes_for_a_correct_layer() {
        let mut fc = Linear::new(3, 3, 1);
        let x = Tensor::from_vec(vec![0.2, -0.8, 1.4], &[1, 3]);
        let r = check_module(&mut fc, &x, 2, 1e-2);
        assert!(r.max_rel_err < 0.01, "{}", r.summary());
        assert!(r.checked > 0);
    }

    /// A deliberately broken layer: backward returns 2x the right gradient.
    #[derive(Debug)]
    struct Broken {
        inner: Linear,
    }
    impl Module for Broken {
        fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
            self.inner.forward(input, train)
        }
        fn backward(&mut self, grad_out: &Tensor) -> Tensor {
            self.inner.backward(grad_out).scale(2.0)
        }
        fn visit_params(&mut self, v: &mut dyn FnMut(&mut Parameter)) {
            self.inner.visit_params(v);
        }
    }

    #[test]
    fn catches_a_broken_backward() {
        let mut broken = Broken {
            inner: Linear::new(3, 3, 4),
        };
        let x = Tensor::from_vec(vec![0.5, 0.5, -0.5], &[1, 3]);
        let r = check_module(&mut broken, &x, 2, 1e-2);
        assert!(
            r.max_rel_err > 0.3,
            "should detect the 2x bug: {}",
            r.summary()
        );
    }

    #[test]
    fn summary_mentions_worst_coordinate() {
        let mut fc = Linear::new(2, 2, 9);
        let x = Tensor::from_vec(vec![1.0, -1.0], &[1, 2]);
        let r = check_module(&mut fc, &x, 5, 1e-2);
        assert!(r.summary().contains("max rel err"));
    }
}
