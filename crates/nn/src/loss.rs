//! Loss functions.

use crate::tensor::Tensor;

/// Softmax cross-entropy over `[N, C]` logits with integer class labels.
///
/// Returns the mean loss and `dL/d(logits)` (already divided by the batch
/// size), ready to feed into [`crate::Module::backward`].
///
/// # Panics
///
/// Panics if `logits` is not rank 2, `labels.len()` differs from the batch
/// size, or any label is out of range.
///
/// # Example
///
/// ```
/// use appmult_nn::{loss::softmax_cross_entropy, Tensor};
///
/// let logits = Tensor::from_vec(vec![5.0, -5.0, -5.0, 5.0], &[2, 2]);
/// let (loss, grad) = softmax_cross_entropy(&logits, &[0, 1]);
/// assert!(loss < 0.01); // confidently correct
/// assert_eq!(grad.shape(), &[2, 2]);
/// ```
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    let s = logits.shape();
    assert_eq!(s.len(), 2, "expected [N, C] logits");
    let (n, c) = (s[0], s[1]);
    assert_eq!(labels.len(), n, "one label per batch row");
    let data = logits.as_slice();
    let mut grad = vec![0.0f32; n * c];
    let mut loss = 0.0f64;
    for (i, &label) in labels.iter().enumerate() {
        assert!(label < c, "label {label} out of range for {c} classes");
        let row = &data[i * c..(i + 1) * c];
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut denom = 0.0f64;
        for &v in row {
            denom += f64::from(v - max).exp();
        }
        let log_denom = denom.ln();
        loss += log_denom - f64::from(row[label] - max);
        for (j, &v) in row.iter().enumerate() {
            let p = (f64::from(v - max).exp() / denom) as f32;
            grad[i * c + j] = (p - if j == label { 1.0 } else { 0.0 }) / n as f32;
        }
    }
    ((loss / n as f64) as f32, Tensor::from_vec(grad, &[n, c]))
}

/// Softmax probabilities per row of `[N, C]` logits (numerically stable).
pub fn softmax(logits: &Tensor) -> Tensor {
    let s = logits.shape();
    assert_eq!(s.len(), 2, "expected [N, C] logits");
    let (n, c) = (s[0], s[1]);
    let data = logits.as_slice();
    let mut out = vec![0.0f32; n * c];
    for i in 0..n {
        let row = &data[i * c..(i + 1) * c];
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut denom = 0.0f32;
        for (j, &v) in row.iter().enumerate() {
            let e = (v - max).exp();
            out[i * c + j] = e;
            denom += e;
        }
        for v in &mut out[i * c..(i + 1) * c] {
            *v /= denom;
        }
    }
    Tensor::from_vec(out, &[n, c])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_c() {
        let logits = Tensor::zeros(&[4, 10]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0, 3, 5, 9]);
        assert!((loss - 10.0f32.ln()).abs() < 1e-5);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let mut logits = Tensor::from_vec(vec![0.3, -0.7, 1.2, 0.1, 0.0, -0.4], &[2, 3]);
        let labels = [2usize, 0];
        let (_, grad) = softmax_cross_entropy(&logits, &labels);
        let eps = 1e-3;
        for i in 0..logits.len() {
            let orig = logits.as_slice()[i];
            logits.as_mut_slice()[i] = orig + eps;
            let (lp, _) = softmax_cross_entropy(&logits, &labels);
            logits.as_mut_slice()[i] = orig - eps;
            let (lm, _) = softmax_cross_entropy(&logits, &labels);
            logits.as_mut_slice()[i] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - grad.as_slice()[i]).abs() < 1e-3,
                "elem {i}: fd {fd} vs {}",
                grad.as_slice()[i]
            );
        }
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let logits = Tensor::from_vec(vec![3.0, -1.0, 0.5, 2.0], &[2, 2]);
        let (_, grad) = softmax_cross_entropy(&logits, &[0, 1]);
        for row in grad.as_slice().chunks(2) {
            let s: f32 = row.iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_rows_are_distributions() {
        let p = softmax(&Tensor::from_vec(
            vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0],
            &[2, 3],
        ));
        for row in p.as_slice().chunks(3) {
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
            assert!(row.iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn extreme_logits_stay_finite() {
        let logits = Tensor::from_vec(vec![1000.0, -1000.0], &[1, 2]);
        let (loss, grad) = softmax_cross_entropy(&logits, &[1]);
        assert!(loss.is_finite());
        assert!(grad.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_labels() {
        softmax_cross_entropy(&Tensor::zeros(&[1, 3]), &[3]);
    }
}
