//! Optimizers and learning-rate schedules.

use crate::module::Module;
use crate::tensor::Tensor;

/// A gradient-descent optimizer over a module's parameters.
///
/// State is keyed on the deterministic parameter visitation order of
/// [`Module::visit_params`]; using one optimizer across structurally
/// different modules is a logic error and panics on shape mismatch.
pub trait Optimizer {
    /// Applies one update step from the accumulated gradients.
    fn step(&mut self, module: &mut dyn Module);

    /// Changes the learning rate (used by schedules between epochs).
    fn set_lr(&mut self, lr: f32);

    /// Current learning rate.
    fn lr(&self) -> f32;
}

/// Stochastic gradient descent with momentum and optional weight decay.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates SGD with the given learning rate and momentum.
    pub fn new(lr: f32, momentum: f32) -> Self {
        Self {
            lr,
            momentum,
            weight_decay: 0.0,
            velocity: vec![],
        }
    }

    /// Adds decoupled L2 weight decay (applied to `decay`-flagged params).
    pub fn with_weight_decay(mut self, weight_decay: f32) -> Self {
        self.weight_decay = weight_decay;
        self
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, module: &mut dyn Module) {
        let lr = self.lr;
        let momentum = self.momentum;
        let wd = self.weight_decay;
        let velocity = &mut self.velocity;
        let mut idx = 0usize;
        module.visit_params(&mut |p| {
            if velocity.len() == idx {
                velocity.push(Tensor::zeros(p.value.shape()));
            }
            let v = &mut velocity[idx];
            assert_eq!(
                v.shape(),
                p.value.shape(),
                "optimizer state shape mismatch at parameter {idx}"
            );
            let g = p.grad.as_slice();
            let w = p.value.as_mut_slice();
            let vel = v.as_mut_slice();
            let decay = if p.decay { wd } else { 0.0 };
            for k in 0..w.len() {
                let grad = g[k] + decay * w[k];
                vel[k] = momentum * vel[k] + grad;
                w[k] -= lr * vel[k];
            }
            idx += 1;
        });
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn lr(&self) -> f32 {
        self.lr
    }
}

/// Adam (Kingma & Ba) — the optimizer used in the paper's retraining setup.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Creates Adam with standard betas (0.9, 0.999) and eps 1e-8.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
            m: vec![],
            v: vec![],
        }
    }

    /// Adds L2 weight decay on `decay`-flagged parameters.
    pub fn with_weight_decay(mut self, weight_decay: f32) -> Self {
        self.weight_decay = weight_decay;
        self
    }
}

impl Optimizer for Adam {
    fn step(&mut self, module: &mut dyn Module) {
        self.t += 1;
        let bias1 = 1.0 - self.beta1.powi(self.t as i32);
        let bias2 = 1.0 - self.beta2.powi(self.t as i32);
        let (lr, b1, b2, eps, wd) = (self.lr, self.beta1, self.beta2, self.eps, self.weight_decay);
        let m_state = &mut self.m;
        let v_state = &mut self.v;
        let mut idx = 0usize;
        module.visit_params(&mut |p| {
            if m_state.len() == idx {
                m_state.push(Tensor::zeros(p.value.shape()));
                v_state.push(Tensor::zeros(p.value.shape()));
            }
            assert_eq!(
                m_state[idx].shape(),
                p.value.shape(),
                "optimizer state shape mismatch at parameter {idx}"
            );
            let g = p.grad.as_slice();
            let w = p.value.as_mut_slice();
            let m = m_state[idx].as_mut_slice();
            let v = v_state[idx].as_mut_slice();
            let decay = if p.decay { wd } else { 0.0 };
            for k in 0..w.len() {
                let grad = g[k] + decay * w[k];
                m[k] = b1 * m[k] + (1.0 - b1) * grad;
                v[k] = b2 * v[k] + (1.0 - b2) * grad * grad;
                let mhat = m[k] / bias1;
                let vhat = v[k] / bias2;
                w[k] -= lr * mhat / (vhat.sqrt() + eps);
            }
            idx += 1;
        });
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn lr(&self) -> f32 {
        self.lr
    }
}

/// A piecewise-constant learning-rate schedule over epochs.
#[derive(Debug, Clone, PartialEq)]
pub struct StepSchedule {
    /// `(first_epoch, lr)` pairs, sorted by epoch; epoch numbering is 1-based.
    steps: Vec<(usize, f32)>,
}

impl StepSchedule {
    /// Builds a schedule from `(first_epoch, lr)` milestones.
    ///
    /// # Panics
    ///
    /// Panics if `steps` is empty or not sorted by epoch.
    pub fn new(steps: Vec<(usize, f32)>) -> Self {
        assert!(!steps.is_empty(), "schedule needs at least one milestone");
        assert!(
            steps.windows(2).all(|w| w[0].0 < w[1].0),
            "milestones must be strictly increasing"
        );
        Self { steps }
    }

    /// The paper's default: 0.001 for epochs 1-10, 0.0005 for 11-20,
    /// 0.00025 for 21-30 (Sec. V-A).
    pub fn paper_default() -> Self {
        Self::new(vec![(1, 1e-3), (11, 5e-4), (21, 2.5e-4)])
    }

    /// Learning rate for a 1-based epoch index.
    pub fn lr_for_epoch(&self, epoch: usize) -> f32 {
        let mut lr = self.steps[0].1;
        for &(e, v) in &self.steps {
            if epoch >= e {
                lr = v;
            }
        }
        lr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Linear;
    use crate::loss::softmax_cross_entropy;
    use crate::Tensor;

    fn fit_linear<O: Optimizer>(opt: &mut O, steps: usize) -> f32 {
        let mut net = Linear::new(2, 2, 12);
        let x = Tensor::from_vec(vec![1., 0., 0., 1., 1., 1., -1., 0.], &[4, 2]);
        let labels = [0usize, 1, 1, 0];
        let mut loss = f32::MAX;
        for _ in 0..steps {
            let logits = net.forward(&x, true);
            let (l, grad) = softmax_cross_entropy(&logits, &labels);
            net.backward(&grad);
            opt.step(&mut net);
            net.zero_grad();
            loss = l;
        }
        loss
    }

    #[test]
    fn sgd_descends() {
        let mut sgd = Sgd::new(0.5, 0.9);
        assert!(fit_linear(&mut sgd, 100) < 0.05);
    }

    #[test]
    fn adam_descends() {
        let mut adam = Adam::new(0.05);
        assert!(fit_linear(&mut adam, 150) < 0.05);
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut net = Linear::new(4, 4, 3);
        let mut norm0 = 0.0f32;
        net.visit_params(&mut |p| {
            if p.decay {
                norm0 += p.value.dot(&p.value);
            }
        });
        let mut sgd = Sgd::new(0.1, 0.0).with_weight_decay(0.5);
        // No data gradient: decay alone must shrink the weights.
        for _ in 0..10 {
            sgd.step(&mut net);
        }
        let mut norm1 = 0.0f32;
        net.visit_params(&mut |p| {
            if p.decay {
                norm1 += p.value.dot(&p.value);
            }
        });
        assert!(norm1 < norm0 * 0.5, "{norm1} !< {norm0}");
    }

    #[test]
    fn paper_schedule_matches_section_5() {
        let s = StepSchedule::paper_default();
        assert_eq!(s.lr_for_epoch(1), 1e-3);
        assert_eq!(s.lr_for_epoch(10), 1e-3);
        assert_eq!(s.lr_for_epoch(11), 5e-4);
        assert_eq!(s.lr_for_epoch(20), 5e-4);
        assert_eq!(s.lr_for_epoch(21), 2.5e-4);
        assert_eq!(s.lr_for_epoch(30), 2.5e-4);
    }

    #[test]
    fn lr_is_settable() {
        let mut adam = Adam::new(0.1);
        adam.set_lr(0.01);
        assert_eq!(adam.lr(), 0.01);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn schedule_rejects_unsorted() {
        StepSchedule::new(vec![(5, 0.1), (2, 0.2)]);
    }
}
