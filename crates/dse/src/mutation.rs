//! Netlist mutation operators for the evolutionary search.
//!
//! [`Mutation`] generalizes the two ALS rewrites ([`AlsRewrite`]) with two
//! structural moves the greedy synthesizer never takes: swapping a gate's
//! boolean function in place and rewiring a single fanin. All four
//! operators preserve the primary input/output interface, so a mutated
//! multiplier stays a `2B`-in/`2B`-out netlist and remains exhaustively
//! simulable.

use appmult_circuit::{AlsRewrite, GateKind, Netlist, NetlistError, Signal};
use appmult_rng::Rng64;

/// One structural edit of a multiplier netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Swap a gate's function for another of the same arity (e.g.
    /// `And → Xor`, `Not → Buf`, `Const0 → Const1`), keeping its fanins.
    SubstituteKind {
        /// The gate whose function changes.
        gate: Signal,
        /// Its new kind (must match the old arity).
        kind: GateKind,
    },
    /// Redirect one fanin slot of a gate to a different existing signal.
    RewireFanin {
        /// The gate being rewired.
        gate: Signal,
        /// Which fanin slot (`0..arity`).
        slot: usize,
        /// The signal now feeding that slot.
        with: Signal,
    },
    /// Tie a gate's output to a constant (the ALS `Constant` rewrite);
    /// its fanin cone may become dead.
    ConstTie {
        /// The gate tied off.
        gate: Signal,
        /// The constant it now drives.
        value: bool,
    },
    /// Replace a gate's output with another signal (the ALS `Substitute`
    /// rewrite), deleting the gate's exclusive fanin cone from the live
    /// logic.
    DeleteCone {
        /// The gate whose cone dies.
        gate: Signal,
        /// The signal that takes over its fanout.
        with: Signal,
    },
}

impl From<AlsRewrite> for Mutation {
    fn from(rewrite: AlsRewrite) -> Self {
        match rewrite {
            AlsRewrite::Constant { gate, value } => Mutation::ConstTie { gate, value },
            AlsRewrite::Substitute { gate, with } => Mutation::DeleteCone { gate, with },
        }
    }
}

impl Mutation {
    /// Short operator name, used for obs counters and frontier lineage.
    pub fn op_name(&self) -> &'static str {
        match self {
            Mutation::SubstituteKind { .. } => "substitute_kind",
            Mutation::RewireFanin { .. } => "rewire_fanin",
            Mutation::ConstTie { .. } => "const_tie",
            Mutation::DeleteCone { .. } => "delete_cone",
        }
    }

    /// Compact human-readable description (recorded in frontier lineage).
    pub fn describe(&self) -> String {
        match self {
            Mutation::SubstituteKind { gate, kind } => {
                format!("substitute_kind(n{}={kind})", gate.index())
            }
            Mutation::RewireFanin { gate, slot, with } => {
                format!("rewire_fanin(n{}.{slot}=n{})", gate.index(), with.index())
            }
            Mutation::ConstTie { gate, value } => {
                format!("const_tie(n{}={})", gate.index(), u8::from(*value))
            }
            Mutation::DeleteCone { gate, with } => {
                format!("delete_cone(n{}=n{})", gate.index(), with.index())
            }
        }
    }

    /// Applies the edit to `netlist`.
    ///
    /// # Errors
    ///
    /// Propagates the [`NetlistError`] of the underlying netlist editor —
    /// e.g. an arity-mismatched kind swap, a rewrite of a primary input, or
    /// a cycle-creating substitution. The search treats a failed apply as
    /// an invalid candidate (discarded and counted), same as an oracle
    /// rejection.
    pub fn apply(&self, netlist: &mut Netlist) -> Result<(), NetlistError> {
        match *self {
            Mutation::SubstituteKind { gate, kind } => netlist.set_kind(gate, kind),
            Mutation::RewireFanin { gate, slot, with } => netlist.set_fanin(gate, slot, with),
            Mutation::ConstTie { gate, value } => netlist.replace_with_const(gate, value),
            Mutation::DeleteCone { gate, with } => netlist.replace_with_signal(gate, with),
        }
    }

    /// Draws a random mutation for `netlist` from `rng`.
    ///
    /// Sampling is deterministic in the RNG stream and structure-safe by
    /// construction: rewires and substitutions only ever pick replacement
    /// signals with a *lower* node index than the edited gate, which can
    /// never create a combinational cycle in an index-topological netlist.
    /// (Invalid mutations can still be constructed manually; the analysis
    /// oracle rejects them.)
    ///
    /// Returns `None` when the netlist has no editable gate (inputs only).
    pub fn sample(netlist: &Netlist, rng: &mut Rng64) -> Option<Mutation> {
        let editable: Vec<Signal> = netlist
            .iter()
            .filter(|(_, g)| g.kind != GateKind::Input)
            .map(|(s, _)| s)
            .collect();
        if editable.is_empty() {
            return None;
        }
        // A handful of retries lets a draw that lands on an inapplicable
        // (gate, operator) pair — e.g. a rewire of a constant — fall
        // through to another; the loop count is fixed so the RNG stream
        // consumption stays deterministic per draw sequence.
        for _ in 0..8 {
            let gate = editable[rng.index(editable.len())];
            let kind = netlist.gate(gate).kind;
            match rng.index(4) {
                0 => {
                    let to = match kind.arity() {
                        0 => match kind {
                            GateKind::Const0 => GateKind::Const1,
                            _ => GateKind::Const0,
                        },
                        1 => match kind {
                            GateKind::Not => GateKind::Buf,
                            _ => GateKind::Not,
                        },
                        _ => {
                            const BINARY: [GateKind; 6] = [
                                GateKind::And,
                                GateKind::Or,
                                GateKind::Xor,
                                GateKind::Nand,
                                GateKind::Nor,
                                GateKind::Xnor,
                            ];
                            BINARY[rng.index(BINARY.len())]
                        }
                    };
                    if to == kind {
                        continue;
                    }
                    return Some(Mutation::SubstituteKind { gate, kind: to });
                }
                1 => {
                    let arity = kind.arity();
                    if arity == 0 || gate.index() == 0 {
                        continue;
                    }
                    let slot = rng.index(arity);
                    let with = Signal::from_index(rng.index(gate.index()));
                    return Some(Mutation::RewireFanin { gate, slot, with });
                }
                2 => {
                    return Some(Mutation::ConstTie {
                        gate,
                        value: rng.chance(0.5),
                    });
                }
                _ => {
                    if gate.index() == 0 {
                        continue;
                    }
                    let with = Signal::from_index(rng.index(gate.index()));
                    if with == gate {
                        continue;
                    }
                    return Some(Mutation::DeleteCone { gate, with });
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use appmult_circuit::{ExhaustiveTable, MultiplierCircuit};

    /// Output words (over all input combinations) that changed between two
    /// same-shape netlists, as a per-node changed mask.
    fn changed_nodes(before: &Netlist, after: &Netlist) -> Vec<bool> {
        // Exhaustive tables only cover primary outputs, so compare the
        // function of every node via single-output probes.
        (0..before.num_nodes())
            .map(|node| {
                let probe = Signal::from_index(node);
                let mut b = before.clone();
                b.set_outputs(vec![probe]);
                let mut a = after.clone();
                a.set_outputs(vec![probe]);
                ExhaustiveTable::build(&b).values() != ExhaustiveTable::build(&a).values()
            })
            .collect()
    }

    /// Transitive fanout (including the node itself) of `root` in `nl`.
    fn fanout_cone(nl: &Netlist, root: Signal) -> Vec<bool> {
        let lists = nl.fanout_lists();
        let mut in_cone = vec![false; nl.num_nodes()];
        let mut stack = vec![root];
        while let Some(s) = stack.pop() {
            if std::mem::replace(&mut in_cone[s.index()], true) {
                continue;
            }
            for &f in &lists[s.index()] {
                stack.push(f);
            }
        }
        in_cone
    }

    fn assert_change_confined(before: &Netlist, after: &Netlist, root: Signal) {
        let changed = changed_nodes(before, after);
        let cone = fanout_cone(before, root);
        for (node, was_changed) in changed.iter().enumerate() {
            assert!(
                !was_changed || cone[node],
                "node n{node} changed outside the fanout cone of n{}",
                root.index()
            );
        }
    }

    #[test]
    fn substitute_kind_is_present_and_cone_confined() {
        let base = MultiplierCircuit::array(3).netlist().clone();
        // Find a 2-ary And gate to flip to Xor.
        let (gate, _) = base
            .iter()
            .find(|(_, g)| g.kind == GateKind::And)
            .expect("array multiplier has And gates");
        let m = Mutation::SubstituteKind {
            gate,
            kind: GateKind::Xor,
        };
        let mut mutated = base.clone();
        m.apply(&mut mutated).unwrap();
        // Structurally present: the gate's kind changed, fanins intact.
        assert_eq!(mutated.gate(gate).kind, GateKind::Xor);
        assert_eq!(mutated.gate(gate).fanins, base.gate(gate).fanins);
        assert_change_confined(&base, &mutated, gate);
    }

    #[test]
    fn rewire_fanin_is_present_and_cone_confined() {
        let base = MultiplierCircuit::array(3).netlist().clone();
        let (gate, g) = base
            .iter()
            .filter(|(s, g)| g.kind.arity() == 2 && s.index() > 2)
            .last()
            .expect("has binary gates");
        let with = Signal::from_index(0);
        assert_ne!(g.fanins[1], with, "pick a genuinely different source");
        let m = Mutation::RewireFanin {
            gate,
            slot: 1,
            with,
        };
        let mut mutated = base.clone();
        m.apply(&mut mutated).unwrap();
        assert_eq!(mutated.gate(gate).fanins[1], with);
        assert_eq!(mutated.gate(gate).fanins[0], base.gate(gate).fanins[0]);
        assert_change_confined(&base, &mutated, gate);
    }

    #[test]
    fn const_tie_is_present_and_cone_confined() {
        let base = MultiplierCircuit::array(3).netlist().clone();
        let gate = *base.outputs().first().expect("has outputs");
        let m = Mutation::ConstTie { gate, value: true };
        let mut mutated = base.clone();
        m.apply(&mut mutated).unwrap();
        assert_eq!(mutated.gate(gate).kind, GateKind::Const1);
        assert_change_confined(&base, &mutated, gate);
    }

    #[test]
    fn delete_cone_is_present_and_cone_confined() {
        let base = MultiplierCircuit::array(3).netlist().clone();
        let (gate, _) = base
            .iter()
            .filter(|(_, g)| g.kind.arity() == 2)
            .last()
            .expect("has binary gates");
        let with = Signal::from_index(1);
        let m = Mutation::DeleteCone { gate, with };
        let mut mutated = base.clone();
        m.apply(&mut mutated).unwrap();
        assert_eq!(mutated.gate(gate).kind, GateKind::Buf);
        assert_eq!(mutated.gate(gate).fanins[0], with);
        assert_change_confined(&base, &mutated, gate);
    }

    #[test]
    fn als_rewrites_convert_to_mutations() {
        let g = Signal::from_index(9);
        let w = Signal::from_index(4);
        assert_eq!(
            Mutation::from(AlsRewrite::Constant {
                gate: g,
                value: true
            }),
            Mutation::ConstTie {
                gate: g,
                value: true
            }
        );
        assert_eq!(
            Mutation::from(AlsRewrite::Substitute { gate: g, with: w }),
            Mutation::DeleteCone { gate: g, with: w }
        );
    }

    #[test]
    fn sampled_mutations_apply_cleanly_and_deterministically() {
        let base = MultiplierCircuit::array(4).netlist().clone();
        let mut rng_a = Rng64::seed_from_u64(11);
        let mut rng_b = Rng64::seed_from_u64(11);
        for _ in 0..200 {
            let ma = Mutation::sample(&base, &mut rng_a).expect("editable netlist");
            let mb = Mutation::sample(&base, &mut rng_b).expect("editable netlist");
            assert_eq!(ma, mb, "sampling must be a pure function of the stream");
            let mut mutated = base.clone();
            ma.apply(&mut mutated)
                .unwrap_or_else(|e| panic!("sampled mutation {ma:?} failed: {e}"));
            assert!(mutated.validate().is_ok(), "{ma:?} broke the netlist");
        }
    }

    #[test]
    fn invalid_mutations_are_rejected() {
        let mut nl = Netlist::new();
        let a = nl.input();
        let b = nl.input();
        let g = nl.and(a, b);
        let h = nl.or(g, a);
        nl.set_outputs(vec![h]);
        // Arity-mismatched kind swap fails at apply time.
        assert!(Mutation::SubstituteKind {
            gate: g,
            kind: GateKind::Not
        }
        .apply(&mut nl.clone())
        .is_err());
        // Editing a primary input fails at apply time.
        assert!(Mutation::ConstTie {
            gate: a,
            value: false
        }
        .apply(&mut nl.clone())
        .is_err());
        // A cycle-creating substitution fails at apply time.
        assert!(Mutation::DeleteCone { gate: g, with: h }
            .apply(&mut nl.clone())
            .is_err());
        // A cycle-creating *rewire* is allowed structurally (set_fanin
        // permits forward references) but must be caught by validation —
        // the analysis oracle path.
        let m = Mutation::RewireFanin {
            gate: g,
            slot: 0,
            with: h,
        };
        let mut cyclic = nl.clone();
        m.apply(&mut cyclic).unwrap();
        assert!(cyclic.validate().is_err());
    }
}
