//! The seeded μ+λ evolutionary loop with Pareto-rank selection.
//!
//! # Determinism contract
//!
//! The search result is a pure function of `(DseConfig, seeds)`; the
//! evaluation pool's thread count never changes it. Three rules enforce
//! this:
//!
//! 1. every offspring derives its private RNG stream from
//!    `seed ^ candidate_id`, and candidate ids are assigned by slot
//!    position, not completion order;
//! 2. mutation *and* evaluation happen inside the candidate's own
//!    disjoint [`Pool::run_rows`] slot — workers share only read-only
//!    state (the parent population, the config, the cost model);
//! 3. selection, ranking, and tie-breaks run serially after the parallel
//!    section, ordering candidates by id and comparing floats with
//!    [`f64::total_cmp`].

use std::cmp::Ordering;

use appmult_circuit::{CostModel, Netlist};
use appmult_pool::Pool;
use appmult_rng::Rng64;

use crate::eval::{build_lut, evaluate_netlist, DseConfig, Evaluation, Objective};
use crate::mutation::Mutation;

/// One evaluated design in the population.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// Globally unique, slot-assigned id (seeds get `0..seeds.len()`).
    pub id: u64,
    /// Id of the parent it was mutated from (`None` for seeds).
    pub parent: Option<u64>,
    /// Human-readable lineage: the mutations applied to the parent.
    pub mutations: Vec<String>,
    /// The design itself.
    pub netlist: Netlist,
    /// Oracle + objective scores.
    pub eval: Evaluation,
    /// Mini-retrain rung score, filled for frontier members when the
    /// config opts in (recorded only; never used for selection).
    pub rung: Option<f64>,
}

impl Candidate {
    /// Canonical design name, e.g. `dse6u_c42`.
    pub fn design_name(&self, bits: u32) -> String {
        format!("dse{bits}u_c{}", self.id)
    }
}

/// Per-generation progress numbers.
#[derive(Debug, Clone, Copy)]
pub struct GenerationStats {
    /// Generation index (0-based).
    pub generation: usize,
    /// Candidates evaluated this generation (λ).
    pub evaluated: usize,
    /// Candidates discarded as invalid this generation.
    pub invalid: usize,
    /// Size of the non-dominated front after selection.
    pub frontier_size: usize,
    /// Per-axis minima over the surviving population.
    pub best: Objective,
}

/// Outcome of one search run.
#[derive(Debug)]
pub struct DseResult {
    /// The non-dominated front of the final population, ordered by id.
    pub frontier: Vec<Candidate>,
    /// Per-generation statistics.
    pub stats: Vec<GenerationStats>,
    /// Total candidates evaluated (seeds included).
    pub evaluated: usize,
    /// Total candidates discarded as invalid.
    pub invalid: usize,
}

/// Pareto dominance on the minimized objective vector: `a` dominates `b`
/// iff it is no worse on every axis and strictly better on at least one.
/// Floats compare via [`f64::total_cmp`], so the relation is total even
/// in the presence of NaN (which evaluation rejects anyway).
pub fn dominates(a: &Objective, b: &Objective) -> bool {
    let (a, b) = (a.as_array(), b.as_array());
    let mut strictly = false;
    for axis in 0..3 {
        match a[axis].total_cmp(&b[axis]) {
            Ordering::Greater => return false,
            Ordering::Less => strictly = true,
            Ordering::Equal => {}
        }
    }
    strictly
}

/// Indices of the non-dominated members of `objs`, in input order.
pub fn pareto_front(objs: &[Objective]) -> Vec<usize> {
    (0..objs.len())
        .filter(|&i| {
            objs.iter()
                .enumerate()
                .all(|(j, other)| j == i || !dominates(other, &objs[i]))
        })
        .collect()
}

/// Peels the population into successive non-dominated fronts
/// (NSGA-II-style fast non-dominated sort, O(n²) which is plenty for
/// μ+λ-sized populations).
fn non_dominated_fronts(objs: &[Objective]) -> Vec<Vec<usize>> {
    let n = objs.len();
    let mut dominated_by = vec![0usize; n];
    let mut beats: Vec<Vec<usize>> = vec![Vec::new(); n];
    for i in 0..n {
        for j in 0..n {
            if i != j && dominates(&objs[i], &objs[j]) {
                beats[i].push(j);
                dominated_by[j] += 1;
            }
        }
    }
    let mut fronts = Vec::new();
    let mut current: Vec<usize> = (0..n).filter(|&i| dominated_by[i] == 0).collect();
    while !current.is_empty() {
        let mut next = Vec::new();
        for &i in &current {
            for &j in &beats[i] {
                dominated_by[j] -= 1;
                if dominated_by[j] == 0 {
                    next.push(j);
                }
            }
        }
        next.sort_unstable();
        fronts.push(std::mem::replace(&mut current, next));
    }
    fronts
}

/// Crowding distance of each member of `front` (parallel to `front`):
/// boundary designs on any axis get ∞, interior designs the sum of
/// normalized neighbor gaps.
fn crowding_distances(front: &[usize], objs: &[Objective]) -> Vec<f64> {
    let m = front.len();
    let mut distance = vec![0.0f64; m];
    if m <= 2 {
        return vec![f64::INFINITY; m];
    }
    for axis in 0..3 {
        let mut order: Vec<usize> = (0..m).collect();
        order.sort_by(|&a, &b| {
            objs[front[a]].as_array()[axis]
                .total_cmp(&objs[front[b]].as_array()[axis])
                .then(front[a].cmp(&front[b]))
        });
        let lo = objs[front[order[0]]].as_array()[axis];
        let hi = objs[front[order[m - 1]]].as_array()[axis];
        distance[order[0]] = f64::INFINITY;
        distance[order[m - 1]] = f64::INFINITY;
        let span = hi - lo;
        if span <= 0.0 {
            continue;
        }
        for w in 1..m - 1 {
            let prev = objs[front[order[w - 1]]].as_array()[axis];
            let next = objs[front[order[w + 1]]].as_array()[axis];
            distance[order[w]] += (next - prev) / span;
        }
    }
    distance
}

/// μ-selection: fill whole fronts in rank order; break the cut front by
/// crowding distance (descending), then id (ascending). The surviving
/// population is returned in id order — the canonical ordering every
/// deterministic downstream step relies on.
fn select(mut population: Vec<Candidate>, mu: usize) -> Vec<Candidate> {
    if population.len() <= mu {
        population.sort_by_key(|c| c.id);
        return population;
    }
    let objs: Vec<Objective> = population.iter().map(|c| c.eval.objective).collect();
    let fronts = non_dominated_fronts(&objs);
    let mut keep = vec![false; population.len()];
    let mut kept = 0usize;
    for front in fronts {
        if kept + front.len() <= mu {
            for &i in &front {
                keep[i] = true;
            }
            kept += front.len();
            if kept == mu {
                break;
            }
        } else {
            let crowd = crowding_distances(&front, &objs);
            let mut order: Vec<usize> = (0..front.len()).collect();
            order.sort_by(|&a, &b| {
                crowd[b]
                    .total_cmp(&crowd[a])
                    .then(population[front[a]].id.cmp(&population[front[b]].id))
            });
            for &w in order.iter().take(mu - kept) {
                keep[front[w]] = true;
            }
            break;
        }
    }
    let mut survivors: Vec<Candidate> = population
        .drain(..)
        .zip(keep)
        .filter_map(|(c, k)| k.then_some(c))
        .collect();
    survivors.sort_by_key(|c| c.id);
    survivors
}

fn axis_minima(population: &[Candidate]) -> Objective {
    let fold = |f: fn(&Objective) -> f64| {
        population
            .iter()
            .map(|c| f(&c.eval.objective))
            .fold(f64::INFINITY, f64::min)
    };
    Objective {
        hw: fold(|o| o.hw),
        err: fold(|o| o.err),
        proxy: fold(|o| o.proxy),
    }
}

/// Runs the seeded evolutionary search.
///
/// `seeds` are evaluated first (ids `0..seeds.len()`); invalid seeds are
/// discarded and counted like any other candidate. Each generation draws
/// λ offspring — parent choice, mutation count, and the mutations
/// themselves all come from the offspring's private RNG stream — then
/// keeps the best μ by Pareto rank.
///
/// # Panics
///
/// Panics if no seed survives evaluation: a search with an empty
/// population has no meaningful result.
pub fn run(cfg: &DseConfig, seeds: &[Netlist], pool: &Pool) -> DseResult {
    let obs = appmult_obs::global();
    let _span = obs.span("dse.run");
    let model = CostModel::asap7();
    let mut evaluated = 0usize;
    let mut invalid = 0usize;

    // Seed evaluation: one disjoint slot per seed.
    let mut slots: Vec<Option<Candidate>> = seeds.iter().map(|_| None).collect();
    pool.run_rows(&mut slots, 1, |first, chunk| {
        for (k, slot) in chunk.iter_mut().enumerate() {
            let i = first + k;
            if let Ok(eval) = evaluate_netlist(&seeds[i], cfg, &model) {
                *slot = Some(Candidate {
                    id: i as u64,
                    parent: None,
                    mutations: Vec::new(),
                    netlist: seeds[i].clone(),
                    eval,
                    rung: None,
                });
            }
        }
    });
    evaluated += seeds.len();
    let mut population: Vec<Candidate> = slots.into_iter().flatten().collect();
    invalid += seeds.len() - population.len();
    obs.counter_add("dse.candidate.evaluated", seeds.len() as u64);
    obs.counter_add(
        "dse.candidate.invalid",
        (seeds.len() - population.len()) as u64,
    );
    assert!(
        !population.is_empty(),
        "design-space exploration needs at least one valid seed"
    );

    let mut next_id = seeds.len() as u64;
    let mut stats = Vec::with_capacity(cfg.generations);
    for generation in 0..cfg.generations {
        let _gen_span = obs.span("dse.generation");
        let base_id = next_id;
        let parents = &population;
        let mut offspring: Vec<Option<Candidate>> = (0..cfg.lambda).map(|_| None).collect();
        pool.run_rows(&mut offspring, 1, |first, chunk| {
            for (k, slot) in chunk.iter_mut().enumerate() {
                let id = base_id + (first + k) as u64;
                let mut rng = Rng64::seed_from_u64(cfg.seed ^ id);
                let parent = &parents[rng.index(parents.len())];
                let mut netlist = parent.netlist.clone();
                let count = 1 + rng.index(cfg.max_mutations.max(1));
                let mut applied = Vec::with_capacity(count);
                for _ in 0..count {
                    let Some(m) = Mutation::sample(&netlist, &mut rng) else {
                        applied.clear();
                        break;
                    };
                    if m.apply(&mut netlist).is_err() {
                        applied.clear();
                        break;
                    }
                    applied.push(m.describe());
                }
                if applied.is_empty() {
                    continue;
                }
                if let Ok(eval) = evaluate_netlist(&netlist, cfg, &model) {
                    *slot = Some(Candidate {
                        id,
                        parent: Some(parent.id),
                        mutations: applied,
                        netlist,
                        eval,
                        rung: None,
                    });
                }
            }
        });
        next_id += cfg.lambda as u64;
        evaluated += cfg.lambda;
        let valid: Vec<Candidate> = offspring.into_iter().flatten().collect();
        let gen_invalid = cfg.lambda - valid.len();
        invalid += gen_invalid;
        obs.counter_add("dse.candidate.evaluated", cfg.lambda as u64);
        obs.counter_add("dse.candidate.invalid", gen_invalid as u64);

        population.extend(valid);
        population = select(population, cfg.mu);
        let objs: Vec<Objective> = population.iter().map(|c| c.eval.objective).collect();
        let frontier_size = pareto_front(&objs).len();
        obs.gauge_set("dse.frontier.size", frontier_size as f64);
        stats.push(GenerationStats {
            generation,
            evaluated: cfg.lambda,
            invalid: gen_invalid,
            frontier_size,
            best: axis_minima(&population),
        });
    }

    let objs: Vec<Objective> = population.iter().map(|c| c.eval.objective).collect();
    let front = pareto_front(&objs);
    let mut frontier: Vec<Candidate> = {
        let mut keep = vec![false; population.len()];
        for &i in &front {
            keep[i] = true;
        }
        population
            .into_iter()
            .zip(keep)
            .filter_map(|(c, k)| k.then_some(c))
            .collect()
    };
    frontier.sort_by_key(|c| c.id);
    if let Some(rung) = &cfg.rung {
        let _rung_span = obs.span("dse.rung");
        for candidate in &mut frontier {
            let lut = build_lut(
                &candidate.netlist,
                cfg.bits,
                &candidate.design_name(cfg.bits),
            );
            candidate.rung = Some(rung(&lut));
        }
    }
    obs.event(
        "dse.complete",
        &[
            ("frontier", appmult_obs::Value::U64(frontier.len() as u64)),
            ("evaluated", appmult_obs::Value::U64(evaluated as u64)),
            ("invalid", appmult_obs::Value::U64(invalid as u64)),
        ],
    );
    DseResult {
        frontier,
        stats,
        evaluated,
        invalid,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use appmult_circuit::{MultiplierCircuit, MultiplierStructure};

    fn obj(hw: f64, err: f64, proxy: f64) -> Objective {
        Objective { hw, err, proxy }
    }

    #[test]
    fn dominance_is_strict_and_directional() {
        let a = obj(0.5, 0.1, 0.1);
        let b = obj(0.6, 0.1, 0.1);
        assert!(dominates(&a, &b));
        assert!(!dominates(&b, &a));
        assert!(!dominates(&a, &a), "a point never dominates itself");
        let c = obj(0.4, 0.2, 0.1);
        assert!(!dominates(&a, &c) && !dominates(&c, &a), "trade-offs tie");
    }

    #[test]
    fn pareto_front_drops_dominated_points() {
        let objs = [
            obj(1.0, 0.0, 0.0),
            obj(0.5, 0.5, 0.5),
            obj(0.6, 0.6, 0.6), // dominated by the previous point
            obj(0.0, 1.0, 1.0),
        ];
        assert_eq!(pareto_front(&objs), vec![0, 1, 3]);
    }

    #[test]
    fn fronts_peel_in_rank_order() {
        let objs = [obj(0.1, 0.1, 0.1), obj(0.2, 0.2, 0.2), obj(0.3, 0.3, 0.3)];
        let fronts = non_dominated_fronts(&objs);
        assert_eq!(fronts, vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn search_runs_and_frontier_is_mutually_non_dominated() {
        let cfg = DseConfig::smoke(4, 3);
        let seeds = vec![
            MultiplierCircuit::array(4).netlist().clone(),
            MultiplierCircuit::with_removed_columns(4, 2, MultiplierStructure::default())
                .netlist()
                .clone(),
        ];
        let result = run(&cfg, &seeds, &Pool::serial());
        assert!(!result.frontier.is_empty());
        assert!(result.evaluated >= seeds.len() + cfg.lambda * cfg.generations);
        for a in &result.frontier {
            for b in &result.frontier {
                assert!(
                    a.id == b.id || !dominates(&a.eval.objective, &b.eval.objective),
                    "frontier member {} dominates {}",
                    a.id,
                    b.id
                );
            }
        }
    }
}
